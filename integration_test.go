package tinysdr

// Full-platform integration test: one simulated tinySDR endpoint lives the
// lifecycle the paper's testbed vision describes — it is reprogrammed over
// the air between protocols, beacons as a BLE device, then runs a
// TTN-compatible LoRaWAN uplink over the sample-level PHY, duty-cycling
// through 30 µW sleep between activities.

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/lorawan"
)

func TestPlatformLifecycle(t *testing.T) {
	dev := New(Config{ID: 77})
	gateway := New(Config{ID: 1})

	// --- Phase 1: OTA-program the device with the BLE beacon bitstream.
	bleDesign := BLEDesign()
	bleImage := SynthBitstream(bleDesign)
	update, err := BuildUpdate(TargetFPGA, bleImage)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewOTASession(dev, -85, 1)
	rep, err := sess.Program(update, bleDesign)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration < 45*time.Second {
		t.Fatalf("BLE OTA update suspiciously fast: %v", rep.Duration)
	}
	if dev.FPGA.Design().Name != bleDesign.Name {
		t.Fatal("device not running the BLE design")
	}

	// --- Phase 2: the device advertises; a sniffer decodes the beacon.
	beacon := Beacon{
		AdvAddress: [6]byte{0xAA, 0xBB, 0xCC, 0x01, 0x02, 0x03},
		AdvData:    []byte{0x02, 0x01, 0x06},
	}
	if err := dev.ConfigureBLE(beacon); err != nil {
		t.Fatal(err)
	}
	events, err := dev.TransmitBeaconBurst(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("beacon burst produced %d events", len(events))
	}
	adv, err := NewAdvertiser(beacon, 4)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := adv.Mod.ModulateBeacon(beacon, 37)
	if err != nil {
		t.Fatal(err)
	}
	sniffer, err := NewBLEDemodulator(4)
	if err != nil {
		t.Fatal(err)
	}
	ch24 := NewChannel(2, -98)
	got, err := sniffer.Receive(ch24.Apply(wave, -75), 37)
	if err != nil {
		t.Fatal(err)
	}
	if got.AdvAddress != beacon.AdvAddress {
		t.Fatal("sniffer decoded wrong advertiser address")
	}

	// --- Phase 3: deep sleep between roles; the 30 µW state.
	dev.Sleep()
	if p := dev.SystemPowerW(); math.Abs(p-30e-6) > 4e-6 {
		t.Fatalf("sleep power %.1f µW", p*1e6)
	}
	dev.Clock.Advance(time.Hour) // a night on the testbed

	// The wake timer fires for the OTA listen window: reboot from the
	// staged BLE image (22 ms, Table 4).
	if _, err := dev.Wake(bleDesign); err != nil {
		t.Fatal(err)
	}

	// --- Phase 4: OTA-reprogram to the LoRa modem over the air.
	loraDesign := LoRaDesign(8)
	loraImage := SynthBitstream(loraDesign)
	update2, err := BuildUpdate(TargetFPGA, loraImage)
	if err != nil {
		t.Fatal(err)
	}
	sess2 := NewOTASession(dev, -85, 3)
	if _, err := sess2.Program(update2, loraDesign); err != nil {
		t.Fatal(err)
	}
	if dev.FPGA.Design().Name != loraDesign.Name {
		t.Fatal("device not running the LoRa design after second update")
	}

	// --- Phase 5: TTN-style LoRaWAN uplink over the sample-level PHY.
	var nwk, app [16]byte
	for i := range nwk {
		nwk[i] = byte(i + 1)
		app[i] = byte(0x80 + i)
	}
	session := NewABPSession(0x26011234, nwk, app)
	frame := &LoRaWANFrame{
		MType: lorawan.MTypeUnconfirmedUp, DevAddr: session.DevAddr,
		FCnt: 0, FPort: 1, FRMPayload: []byte("temp=21.4C"),
	}
	phy, err := frame.Encode(session)
	if err != nil {
		t.Fatal(err)
	}

	p := DefaultLoRaParams()
	if err := dev.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	if err := gateway.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	air, err := dev.TransmitLoRa(phy, 14)
	if err != nil {
		t.Fatal(err)
	}
	ch915 := NewChannel(4, LoRaNoiseFloorDBm(p))
	pkt, err := gateway.ReceiveLoRa(ch915.Apply(air, -118))
	if err != nil {
		t.Fatal(err)
	}
	if !pkt.CRCOK {
		t.Fatal("uplink CRC failed")
	}
	decoded, err := lorawan.DecodeData(session, pkt.Payload, lorawan.Uplink, 0)
	if err != nil {
		t.Fatalf("gateway could not verify the LoRaWAN frame: %v", err)
	}
	if !bytes.Equal(decoded.FRMPayload, []byte("temp=21.4C")) {
		t.Fatalf("application payload %q", decoded.FRMPayload)
	}

	// --- Phase 6: the energy story holds across the whole lifecycle.
	total := dev.PMU.Ledger().Energy()
	if total <= 0 {
		t.Fatal("no energy accounted")
	}
	// The hour of sleep must be a tiny share despite being ~97% of time.
	dev.PMU.Ledger().Reset()
	dev.Sleep()
	dev.Clock.Advance(time.Hour)
	sleepHour := dev.PMU.Ledger().Energy()
	if sleepHour > 0.15 {
		t.Errorf("an hour of sleep cost %.3f J; duty-cycling broken", sleepHour)
	}
}

func TestPlatformLifecycleOTAA(t *testing.T) {
	// The OTAA join flow between a device and a network server, carried
	// over the sample-level PHY in both directions.
	dev := New(Config{ID: 5})
	gw := New(Config{ID: 6})
	p := DefaultLoRaParams()
	if err := dev.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	if err := gw.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	ch := NewChannel(9, LoRaNoiseFloorDBm(p))

	id := lorawan.DeviceIdentity{AppEUI: lorawan.EUI{1}, DevEUI: lorawan.EUI{2}}
	for i := range id.AppKey {
		id.AppKey[i] = byte(i * 3)
	}

	// Device -> network: join request over the air.
	req := &lorawan.JoinRequest{AppEUI: id.AppEUI, DevEUI: id.DevEUI, DevNonce: 0x1234}
	air, err := dev.TransmitLoRa(req.Encode(id.AppKey), 14)
	if err != nil {
		t.Fatal(err)
	}
	rxReq, err := gw.ReceiveLoRa(ch.Apply(air, -110))
	if err != nil {
		t.Fatal(err)
	}
	gotReq, err := lorawan.DecodeJoinRequest(id.AppKey, rxReq.Payload)
	if err != nil {
		t.Fatal(err)
	}

	// Network -> device: join accept over the air.
	accept := &lorawan.JoinAccept{AppNonce: 0xABCDE, NetID: 0x13, DevAddr: 0x26017777, RXDelay: 1}
	air2, err := gw.TransmitLoRa(accept.Encode(id.AppKey), 14)
	if err != nil {
		t.Fatal(err)
	}
	rxAcc, err := dev.ReceiveLoRa(ch.Apply(air2, -110))
	if err != nil {
		t.Fatal(err)
	}
	gotAcc, err := lorawan.DecodeJoinAccept(id.AppKey, rxAcc.Payload)
	if err != nil {
		t.Fatal(err)
	}

	// Both sides derive matching sessions and exchange a frame.
	devSess := lorawan.DeriveSession(id.AppKey, gotAcc, req.DevNonce)
	netSess := lorawan.DeriveSession(id.AppKey, accept, gotReq.DevNonce)
	f := &LoRaWANFrame{MType: lorawan.MTypeUnconfirmedUp, DevAddr: devSess.DevAddr, FPort: 2, FRMPayload: []byte("joined!")}
	phy, err := f.Encode(devSess)
	if err != nil {
		t.Fatal(err)
	}
	air3, err := dev.TransmitLoRa(phy, 14)
	if err != nil {
		t.Fatal(err)
	}
	up, err := gw.ReceiveLoRa(ch.Apply(air3, -115))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := lorawan.DecodeData(netSess, up.Payload, lorawan.Uplink, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.FRMPayload, []byte("joined!")) {
		t.Fatalf("payload %q", dec.FRMPayload)
	}

	// Class-A timing: the radio turnaround fits the RX1 window by orders
	// of magnitude (Table 4 vs the 1 s LoRaWAN delay).
	rx1, _ := lorawan.ReceiveWindows(dev.Clock.Now())
	if rx1-dev.Clock.Now() != lorawan.RX1Delay {
		t.Error("RX1 window arithmetic wrong")
	}
}
