package radio

import "github.com/uwsdr/tinysdr/internal/channel"

// Canonical receive-chain profiles for the radios the simulation models.
// A channel.RadioProfile bundles a chain's noise figure so modems derive
// sensitivity and noise floor from one place (see internal/phy).

// SX1276Profile is the Semtech LoRa chain: NF 7 dB reproduces the -126 dBm
// SF8/BW125 datasheet sensitivity the paper measures. The tinySDR FPGA
// demodulator is calibrated against this chain in Figs. 10/11, so it is
// also the LoRa modem's default profile.
func SX1276Profile() channel.RadioProfile {
	return channel.RadioProfile{Name: "sx1276", NoiseFigureDB: SX1276NoiseFigureDB}
}

// AT86RF215Profile is the platform's I/Q radio receive chain (NF 8.8 dB),
// the figure behind the wideband experiments that sample at the radio's
// full interface rate.
func AT86RF215Profile() channel.RadioProfile {
	return channel.RadioProfile{Name: "at86rf215", NoiseFigureDB: NoiseFigureDB}
}

// CC2650Profile is the TI BLE reference receiver of Fig. 12 (NF 4.2 dB);
// the BLE discriminator demodulator stands in for this chain.
func CC2650Profile() channel.RadioProfile {
	return channel.RadioProfile{Name: "cc2650", NoiseFigureDB: CC2650NoiseFigureDB}
}
