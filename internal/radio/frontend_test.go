package radio

import (
	"testing"

	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/sim"
)

func TestFrontEndRatings(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	fe900 := NewSE2435L(p)
	fe24 := NewSKY66112(p)
	// §3.1.1: 900 MHz PA up to 30 dBm, 2.4 GHz up to 27 dBm.
	if fe900.MaxPADBm != 30 || fe24.MaxPADBm != 27 {
		t.Errorf("PA ratings = %v / %v, want 30 / 27", fe900.MaxPADBm, fe24.MaxPADBm)
	}
}

func TestFrontEndPAChain(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	fe := NewSE2435L(p)
	out, err := fe.EnablePA(14)
	if err != nil {
		t.Fatal(err)
	}
	if out != 14+fe.PAGainDB {
		t.Errorf("PA output = %v, want %v", out, 14+fe.PAGainDB)
	}
	if !fe.PAOn() || fe.LNAOn() {
		t.Error("PA path state wrong")
	}
	// Driving past the rating must fail.
	if _, err := fe.EnablePA(fe.MaxPADBm); err == nil {
		t.Error("over-rating drive accepted")
	}
}

func TestFrontEndPowerLadder(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	fe := NewSKY66112(p)
	sleep := p.Ledger().Power("pa-2400")
	if sleep > 4e-6 {
		t.Errorf("sleep draw %v, want ~1 µA x 3.7 V", sleep)
	}
	fe.Bypass()
	bypass := p.Ledger().Power("pa-2400")
	if bypass <= sleep {
		t.Error("bypass must draw more than sleep")
	}
	if bypass > 1.1e-3 {
		t.Errorf("bypass draw %v, want ~280 µA x 3.7 V", bypass)
	}
	fe.EnablePA(10)
	if pa := p.Ledger().Power("pa-2400"); pa <= bypass {
		t.Error("PA active must draw more than bypass")
	}
	fe.EnableLNA()
	if !fe.LNAOn() || fe.PAOn() {
		t.Error("LNA path state wrong")
	}
	fe.Sleep()
	if got := p.Ledger().Power("pa-2400"); got != sleep {
		t.Errorf("sleep draw after cycle = %v, want %v", got, sleep)
	}
}

func TestFrontEndWithRadioReaches30DBm(t *testing.T) {
	// The platform story: 14 dBm radio + SE2435L 16 dB = 30 dBm FCC limit.
	p := power.NewPMU(sim.NewClock())
	fe := NewSE2435L(p)
	out, err := fe.EnablePA(MaxTXPowerDBm)
	if err != nil {
		t.Fatal(err)
	}
	if out != 30 {
		t.Errorf("max chain output = %v dBm, want 30", out)
	}
}
