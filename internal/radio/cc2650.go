package radio

// CC2650 models the TI SimpleLink BLE chip used as the reference receiver
// in the Fig. 12 BLE beacon evaluation.
const (
	// CC2650SensitivityDBm is the datasheet receive sensitivity at the
	// 0.1% BER point for BLE 1 Mbps. The paper measures tinySDR beacons
	// within 2 dB of it.
	CC2650SensitivityDBm = -96
	// CC2650NoiseFigureDB is the effective noise figure used with the
	// quadrature-discriminator demodulator in internal/ble. It is a
	// calibration constant: the simple discriminator gives up several dB
	// against the chip's matched-filter demodulator, so the effective NF
	// is set below the physical one such that the modeled chain's 0.1%
	// BER point lands on the paper's -94 dBm measurement.
	CC2650NoiseFigureDB = 4.2
	// CC2650RXPowerW is the receive draw (6.1 mA at 3 V), for comparisons.
	CC2650RXPowerW = 18.3e-3
)
