// Package radio models the RF silicon on tinySDR: the AT86RF215 I/Q
// transceiver (the platform's software-radio front end), the LVDS I/Q word
// interface between radio and FPGA (Fig. 4), the SE2435L / SKY66112 RF
// front-end modules, and the comparator chips the evaluation measures
// against (Semtech SX1276, TI CC2650).
//
// Models are behavioural: they expose the registers, state machines, timing
// and power that the paper's results depend on, and they transform sample
// buffers the way the analog chain does (gain, clipping, 13-bit conversion).
// Thermal noise is injected by the channel package using the noise figures
// declared here.
package radio

import (
	"fmt"
	"math"
	"time"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/power"
)

// AT86RF215 interface constants (§3.1.1, §3.2.1).
const (
	// SampleRate is the baseband I/Q rate: 4 MHz in both directions.
	SampleRate = 4e6
	// ADCBits is the converter resolution per I/Q component.
	ADCBits = 13
	// LVDSClockHz is the DDR bit clock of the serial interface.
	LVDSClockHz = 64e6
	// LVDSBitRate is the resulting data rate: 128 Mbit/s.
	LVDSBitRate = 2 * LVDSClockHz

	// MaxTXPowerDBm is the transceiver's built-in PA limit.
	MaxTXPowerDBm = 14
	// MinTXPowerDBm is the lowest programmable output.
	MinTXPowerDBm = -14

	// NoiseFigureDB is the receive-path effective system noise figure for
	// link simulations: the 3-5 dB analog front end of the paper plus
	// converter, synthesizer and baseband implementation losses. It is
	// calibrated so the measured SF8/BW125 packet waterfall (10% PER)
	// lands at the -126 dBm sensitivity the paper reports — the software
	// demodulator alone is ~1.8 dB better than commercial silicon, and
	// this constant absorbs that difference.
	NoiseFigureDB = 8.8
)

// Operating state timing (Table 4).
const (
	// SetupTime is command/PLL programming after wake: 1.2 ms.
	SetupTime = 1200 * time.Microsecond
	// TXToRXTime is the TX→RX turnaround: 45 µs.
	TXToRXTime = 45 * time.Microsecond
	// RXToTXTime is the RX→TX turnaround: 11 µs.
	RXToTXTime = 11 * time.Microsecond
	// FreqSwitchTime is a synthesizer retune: 220 µs.
	FreqSwitchTime = 220 * time.Microsecond
)

// Power draw per state, battery-side. RX is the datasheet's 50 mW plus
// 9 mW for the active LVDS I/Q interface (together the 59 mW the paper
// reports for LoRa reception). TX follows txBasePowerW + P_RF/paEfficiency,
// which reproduces the flat-then-rising Fig. 9 curve and the 179 mW radio
// draw at 14 dBm.
const (
	sleepPowerW  = 0.11e-6
	trxOffPowerW = 2.0e-3
	rxCorePowerW = 50e-3
	lvdsPowerW   = 9e-3
	txBasePowerW = 131e-3
	paEfficiency = 0.5
)

// RadioState is the AT86RF215 state machine (simplified to the states the
// platform uses).
type RadioState int

const (
	// StateSleep is deep sleep: registers retained, everything else off.
	StateSleep RadioState = iota
	// StateTRXOff is the idle state with the crystal running.
	StateTRXOff
	// StateRX is receive with the I/Q stream active.
	StateRX
	// StateTX is transmit with the I/Q stream active.
	StateTX
)

// String names the state.
func (s RadioState) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateTRXOff:
		return "trxoff"
	case StateRX:
		return "rx"
	case StateTX:
		return "tx"
	default:
		return fmt.Sprintf("RadioState(%d)", int(s))
	}
}

// Band is one of the AT86RF215 tuning ranges (Table 1's frequency spectrum
// row: 389.5-510, 779-1020, 2400-2483 MHz).
type Band struct {
	Name  string
	MinHz float64
	MaxHz float64
}

// The supported bands.
var (
	BandSub500 = Band{"sub-500", 389.5e6, 510e6}
	Band900    = Band{"900 MHz", 779e6, 1020e6}
	Band2400   = Band{"2.4 GHz", 2400e6, 2483.5e6}
)

// Bands lists all tuning ranges.
func Bands() []Band { return []Band{BandSub500, Band900, Band2400} }

// BandFor returns the band containing the frequency, or an error if the
// radio cannot tune there.
func BandFor(hz float64) (Band, error) {
	for _, b := range Bands() {
		if hz >= b.MinHz && hz <= b.MaxHz {
			return b, nil
		}
	}
	return Band{}, fmt.Errorf("radio: %0.1f MHz outside AT86RF215 tuning ranges", hz/1e6)
}

// AT86RF215 is one transceiver instance.
type AT86RF215 struct {
	sink   power.Sink
	state  RadioState
	freqHz float64
	txDBm  float64
}

// NewAT86RF215 returns a transceiver in deep sleep, tuned to 915 MHz at
// 0 dBm, reporting power to sink.
func NewAT86RF215(sink power.Sink) *AT86RF215 {
	r := &AT86RF215{sink: sink, freqHz: 915e6}
	r.setState(StateSleep)
	return r
}

// State returns the current radio state.
func (r *AT86RF215) State() RadioState { return r.state }

// Frequency returns the tuned carrier frequency in Hz.
func (r *AT86RF215) Frequency() float64 { return r.freqHz }

// TXPower returns the programmed output power in dBm.
func (r *AT86RF215) TXPower() float64 { return r.txDBm }

func (r *AT86RF215) setState(s RadioState) {
	r.state = s
	switch s {
	case StateSleep:
		r.sink.SetPower("iq-radio", sleepPowerW)
	case StateTRXOff:
		r.sink.SetPower("iq-radio", trxOffPowerW)
	case StateRX:
		r.sink.SetPower("iq-radio", rxCorePowerW+lvdsPowerW)
	case StateTX:
		draw := TXPowerW(r.txDBm)
		if r.freqHz >= 2.4e9 {
			draw += band24TXAdderW
		}
		r.sink.SetPower("iq-radio", draw)
	}
}

// band24TXAdderW is the extra synthesizer/PA draw of the 2.4 GHz path —
// the offset between the two Fig. 9 curves.
const band24TXAdderW = 4e-3

// TXPowerW returns the transceiver's battery-side draw when transmitting at
// the given output power.
func TXPowerW(dbm float64) float64 {
	return txBasePowerW + iq.DBmToWatts(dbm)/paEfficiency
}

// SetFrequency retunes the synthesizer, validating the target against the
// part's bands. It returns the 220 µs settle time (Table 4).
func (r *AT86RF215) SetFrequency(hz float64) (time.Duration, error) {
	if _, err := BandFor(hz); err != nil {
		return 0, err
	}
	if r.state == StateSleep {
		return 0, fmt.Errorf("radio: cannot retune in sleep state")
	}
	r.freqHz = hz
	r.setState(r.state) // refresh band-dependent draw
	return FreqSwitchTime, nil
}

// SetTXPower programs the output power in dBm within the part's range.
func (r *AT86RF215) SetTXPower(dbm float64) error {
	if dbm < MinTXPowerDBm || dbm > MaxTXPowerDBm {
		return fmt.Errorf("radio: TX power %.1f dBm outside [%d, %d]", dbm, MinTXPowerDBm, MaxTXPowerDBm)
	}
	r.txDBm = dbm
	if r.state == StateTX {
		r.setState(StateTX) // refresh draw
	}
	return nil
}

// transition durations between states.
func transitionTime(from, to RadioState) time.Duration {
	switch {
	case from == to:
		return 0
	case from == StateSleep:
		return SetupTime
	case from == StateTX && to == StateRX:
		return TXToRXTime
	case from == StateRX && to == StateTX:
		return RXToTXTime
	default:
		// TRXOFF to active states and active to TRXOFF/sleep are fast
		// register transitions dominated by the baseband enable.
		return RXToTXTime
	}
}

// Transition moves the state machine and returns how long the hardware
// takes; the caller advances the simulation clock.
func (r *AT86RF215) Transition(to RadioState) (time.Duration, error) {
	if to < StateSleep || to > StateTX {
		return 0, fmt.Errorf("radio: unknown state %d", int(to))
	}
	d := transitionTime(r.state, to)
	r.setState(to)
	return d, nil
}

// Transmit converts a unit-scale baseband buffer into the on-air waveform at
// the programmed output power: DAC quantization to 13 bits, then scaling so
// the mean envelope power equals the programmed dBm. The radio must be in TX.
func (r *AT86RF215) Transmit(bb iq.Samples) (iq.Samples, error) {
	if r.state != StateTX {
		return nil, fmt.Errorf("radio: transmit in state %v", r.state)
	}
	out := bb.Clone()
	iq.Quantize(out, ADCBits, 1.0)
	out.ScaleToDBm(r.txDBm)
	return out, nil
}

// Capture converts an on-air waveform into the receiver's digital output:
// AGC scaling to fit the converter range followed by 13-bit quantization.
// The radio must be in RX.
func (r *AT86RF215) Capture(air iq.Samples) (iq.Samples, error) {
	if r.state != StateRX {
		return nil, fmt.Errorf("radio: capture in state %v", r.state)
	}
	out := air.Clone()
	// AGC: normalize the strongest envelope toward 70% of full scale.
	var peak float64
	for _, x := range out {
		if m := real(x)*real(x) + imag(x)*imag(x); m > peak {
			peak = m
		}
	}
	if peak > 0 {
		out.Scale(0.7 / math.Sqrt(peak))
	}
	iq.Quantize(out, ADCBits, 1.0)
	return out, nil
}
