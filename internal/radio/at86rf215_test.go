package radio

import (
	"math"
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/sim"
)

func newRadio(t *testing.T) (*AT86RF215, *power.PMU) {
	t.Helper()
	p := power.NewPMU(sim.NewClock())
	return NewAT86RF215(p), p
}

func TestBandValidation(t *testing.T) {
	valid := []float64{389.5e6, 450e6, 510e6, 779e6, 915e6, 1020e6, 2400e6, 2480e6}
	for _, f := range valid {
		if _, err := BandFor(f); err != nil {
			t.Errorf("BandFor(%.1f MHz) rejected: %v", f/1e6, err)
		}
	}
	invalid := []float64{100e6, 600e6, 1500e6, 2500e6, 5800e6}
	for _, f := range invalid {
		if _, err := BandFor(f); err == nil {
			t.Errorf("BandFor(%.1f MHz) accepted, want error", f/1e6)
		}
	}
}

func TestStateMachineTimings(t *testing.T) {
	r, _ := newRadio(t)
	// Sleep -> TRXOff costs the 1.2 ms setup (Table 4).
	d, err := r.Transition(StateTRXOff)
	if err != nil {
		t.Fatal(err)
	}
	if d != SetupTime {
		t.Errorf("sleep wake = %v, want %v", d, SetupTime)
	}
	if _, err := r.Transition(StateTX); err != nil {
		t.Fatal(err)
	}
	d, _ = r.Transition(StateRX)
	if d != TXToRXTime {
		t.Errorf("TX->RX = %v, want 45 µs", d)
	}
	d, _ = r.Transition(StateTX)
	if d != RXToTXTime {
		t.Errorf("RX->TX = %v, want 11 µs", d)
	}
	d, _ = r.Transition(StateTX)
	if d != 0 {
		t.Errorf("self transition = %v, want 0", d)
	}
	if _, err := r.Transition(RadioState(17)); err == nil {
		t.Error("invalid state accepted")
	}
}

func TestFrequencySwitch(t *testing.T) {
	r, _ := newRadio(t)
	if _, err := r.SetFrequency(868e6); err == nil {
		t.Error("retune in sleep must fail")
	}
	r.Transition(StateTRXOff)
	d, err := r.SetFrequency(2402e6)
	if err != nil {
		t.Fatal(err)
	}
	if d != FreqSwitchTime {
		t.Errorf("freq switch = %v, want 220 µs", d)
	}
	if r.Frequency() != 2402e6 {
		t.Errorf("frequency = %v", r.Frequency())
	}
	if _, err := r.SetFrequency(1.8e9); err == nil {
		t.Error("out-of-band retune accepted")
	}
}

func TestTXPowerRange(t *testing.T) {
	r, _ := newRadio(t)
	if err := r.SetTXPower(14); err != nil {
		t.Fatal(err)
	}
	if err := r.SetTXPower(-14); err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{15, 30, -20} {
		if err := r.SetTXPower(p); err == nil {
			t.Errorf("SetTXPower(%v) accepted", p)
		}
	}
}

func TestPowerStateLadder(t *testing.T) {
	r, p := newRadio(t)
	sleep := p.Ledger().Power("iq-radio")
	if sleep > 1e-6 {
		t.Errorf("sleep draw %v W, want sub-µW", sleep)
	}
	r.Transition(StateRX)
	rx := p.Ledger().Power("iq-radio")
	if math.Abs(rx-59e-3) > 1e-6 {
		t.Errorf("RX draw = %v W, want 59 mW (paper §5.2)", rx)
	}
	r.SetTXPower(14)
	r.Transition(StateTX)
	tx := p.Ledger().Power("iq-radio")
	// ≈179 mW at 14 dBm (paper: LoRa TX radio share).
	if tx < 0.17 || tx > 0.19 {
		t.Errorf("TX@14dBm draw = %v W, want ≈0.179", tx)
	}
}

func TestTXPowerCurveShape(t *testing.T) {
	// Fig. 9: flat at low output, rising at high output.
	low := TXPowerW(-14)
	mid := TXPowerW(0)
	high := TXPowerW(14)
	if (mid-low)/low > 0.02 {
		t.Errorf("draw not flat below 0 dBm: %v vs %v", low, mid)
	}
	if high-mid < 30e-3 {
		t.Errorf("draw rise 0->14 dBm = %v W, want > 30 mW", high-mid)
	}
}

func TestTransmitScalesToProgrammedPower(t *testing.T) {
	r, _ := newRadio(t)
	r.Transition(StateTX)
	r.SetTXPower(-13)
	bb := make(iq.Samples, 256)
	for i := range bb {
		ang := 2 * math.Pi * float64(i) / 16
		bb[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	out, err := r.Transmit(bb)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.PowerDBm(); math.Abs(got-(-13)) > 0.1 {
		t.Errorf("on-air power = %v dBm, want -13", got)
	}
}

func TestTransmitRequiresTXState(t *testing.T) {
	r, _ := newRadio(t)
	if _, err := r.Transmit(make(iq.Samples, 4)); err == nil {
		t.Error("transmit in sleep accepted")
	}
}

func TestCaptureAGCAndQuantization(t *testing.T) {
	r, _ := newRadio(t)
	r.Transition(StateRX)
	// A very weak input must be scaled up into the converter range.
	air := make(iq.Samples, 128)
	for i := range air {
		ang := 2 * math.Pi * float64(i) / 8
		air[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	iq.Samples(air).ScaleToDBm(-100)
	got, err := r.Capture(air)
	if err != nil {
		t.Fatal(err)
	}
	p := got.PowerDBm()
	if p < -6 || p > 0 {
		t.Errorf("AGC output power = %v dBm, want near full scale", p)
	}
}

func TestCaptureRequiresRXState(t *testing.T) {
	r, _ := newRadio(t)
	if _, err := r.Capture(make(iq.Samples, 4)); err == nil {
		t.Error("capture in sleep accepted")
	}
}

func TestTransitionAdvancesNoClock(t *testing.T) {
	clock := sim.NewClock()
	p := power.NewPMU(clock)
	r := NewAT86RF215(p)
	r.Transition(StateRX)
	if clock.Now() != 0 {
		t.Error("radio model must not advance the clock itself")
	}
}

func TestStateStrings(t *testing.T) {
	names := map[RadioState]string{StateSleep: "sleep", StateTRXOff: "trxoff", StateRX: "rx", StateTX: "tx"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestWakeupPlusSetupWithinTable4(t *testing.T) {
	// Radio setup (1.2 ms) runs in parallel with the 22 ms FPGA boot, so
	// it must be far below the 22 ms wake budget.
	if SetupTime >= 22*time.Millisecond {
		t.Error("radio setup must be much shorter than FPGA boot")
	}
}
