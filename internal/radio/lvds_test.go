package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/sim"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(re, im float64) bool {
		re = math.Mod(re, 1.0)
		im = math.Mod(im, 1.0)
		s := complex(re, im)
		got, err := UnpackWord(PackWord(s))
		if err != nil {
			return false
		}
		// Error bounded by one 13-bit step.
		step := 1.0 / 4096
		return math.Abs(real(got)-re) <= step && math.Abs(imag(got)-im) <= step
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordSyncFields(t *testing.T) {
	w := PackWord(complex(0.5, -0.5))
	if (w>>30)&0b11 != 0b10 {
		t.Errorf("I_SYNC = %b, want 10", (w>>30)&0b11)
	}
	if (w>>14)&0b11 != 0b01 {
		t.Errorf("Q_SYNC = %b, want 01", (w>>14)&0b11)
	}
	if (w>>16)&1 != 0 || w&1 != 0 {
		t.Error("control bits must be zero")
	}
}

func TestUnpackRejectsBadSync(t *testing.T) {
	w := PackWord(complex(0.1, 0.1))
	if _, err := UnpackWord(w &^ (0b11 << 30)); err == nil {
		t.Error("corrupt I_SYNC accepted")
	}
	if _, err := UnpackWord(w ^ (0b11 << 14)); err == nil {
		t.Error("corrupt Q_SYNC accepted")
	}
}

func TestNegativeSampleSignExtension(t *testing.T) {
	s := complex(-0.75, -0.25)
	got, err := UnpackWord(PackWord(s))
	if err != nil {
		t.Fatal(err)
	}
	if real(got) > 0 || imag(got) > 0 {
		t.Errorf("sign lost: %v -> %v", s, got)
	}
}

func TestSerializeDeserializeAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in := make(iq.Samples, 64)
	for i := range in {
		in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1) * 0.9
	}
	bits := Serialize(in)
	if len(bits) != 64*32 {
		t.Fatalf("bit count = %d, want %d", len(bits), 64*32)
	}
	out, err := Deserialize(bits)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("sample count = %d, want %d", len(out), len(in))
	}
	step := 1.0 / 4096
	for i := range in {
		if math.Abs(real(out[i])-real(in[i])) > step || math.Abs(imag(out[i])-imag(in[i])) > step {
			t.Fatalf("sample %d: %v != %v", i, out[i], in[i])
		}
	}
}

func TestDeserializeRecoversFromMisalignment(t *testing.T) {
	// The FPGA deserializer must lock onto the sync patterns even when the
	// stream starts mid-word.
	in := make(iq.Samples, 32)
	for i := range in {
		in[i] = complex(math.Sin(float64(i)), math.Cos(float64(i))) * 0.7
	}
	bits := Serialize(in)
	for _, skip := range []int{1, 7, 13, 31} {
		out, err := Deserialize(bits[skip:])
		if err != nil {
			t.Fatalf("skip %d: %v", skip, err)
		}
		// First decodable word is sample 1 (sample 0's head is cut off).
		if len(out) != len(in)-1 {
			t.Fatalf("skip %d: got %d samples, want %d", skip, len(out), len(in)-1)
		}
		step := 1.0 / 4096
		for i := range out {
			if math.Abs(real(out[i])-real(in[i+1])) > step {
				t.Fatalf("skip %d: sample %d mismatched", skip, i)
			}
		}
	}
}

func TestDeserializeTooShort(t *testing.T) {
	if _, err := Deserialize(make([]byte, 40)); err == nil {
		t.Error("short stream accepted")
	}
}

func TestDeserializeGarbage(t *testing.T) {
	bits := make([]byte, 512)
	for i := range bits {
		bits[i] = 1 // all ones: I_SYNC can never read 0b10... except rolling? 11 != 10
	}
	if _, err := Deserialize(bits); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestLVDSRateBudget(t *testing.T) {
	// 4 Mwords/s x 32 bits must equal the 128 Mbps DDR budget (§3.2.1).
	if SampleRate*lvdsWordBits != LVDSBitRate {
		t.Errorf("word rate x 32 = %v, want %v", SampleRate*lvdsWordBits, float64(LVDSBitRate))
	}
}

func TestSX1276Sensitivity(t *testing.T) {
	// Paper/datasheet anchor: SF8 BW125 -> -126 dBm.
	got := LoRaSensitivityDBm(8, 125e3)
	if math.Abs(got-(-126)) > 0.1 {
		t.Errorf("SF8/BW125 sensitivity = %v, want -126", got)
	}
	// Wider bandwidth is less sensitive; higher SF more sensitive.
	if LoRaSensitivityDBm(8, 250e3) <= got {
		t.Error("BW250 must be less sensitive than BW125")
	}
	if LoRaSensitivityDBm(12, 125e3) >= got {
		t.Error("SF12 must be more sensitive than SF8")
	}
}

func TestSX1276StateMachine(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	r := NewSX1276(p)
	if r.State() != StateSleep {
		t.Fatal("must boot in sleep")
	}
	d, err := r.Transition(StateRX)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("wake must take time")
	}
	if err := r.SetTXPower(25); err == nil {
		t.Error("over-limit TX power accepted")
	}
	if err := r.SetTXPower(14); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Transition(RadioState(9)); err == nil {
		t.Error("bad state accepted")
	}
}

func TestSNRLimitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SF13 must panic")
		}
	}()
	LoRaSNRLimitDB(13)
}
