package radio

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// LVDS I/Q word format (Fig. 4). Each 32-bit word carries one complex
// sample, MSB first:
//
//	[31:30] I_SYNC = 0b10      [29:17] I data (13-bit two's complement)
//	[16]    control = 0        [15:14] Q_SYNC = 0b01
//	[13:1]  Q data (13-bit two's complement)   [0] control = 0
//
// The radio emits 4 Mwords/s; at 32 bits per word this is the 128 Mbit/s
// stream carried on the 64 MHz DDR clock. The deserializer uses the sync
// patterns to find word boundaries in the raw bit stream.
const (
	iSyncPattern = 0b10
	qSyncPattern = 0b01
	lvdsWordBits = 32
	sampleMask   = 0x1FFF // 13 bits
	signBit      = 0x1000
)

// PackWord frames one complex sample (unit full scale) into an LVDS word.
func PackWord(s complex128) uint32 {
	i := uint32(iq.QuantizeCode(real(s), ADCBits, 1.0)) & sampleMask
	q := uint32(iq.QuantizeCode(imag(s), ADCBits, 1.0)) & sampleMask
	var w uint32
	w |= iSyncPattern << 30
	w |= i << 17
	// control bit 16 = 0
	w |= qSyncPattern << 14
	w |= q << 1
	// control bit 0 = 0
	return w
}

// UnpackWord recovers the complex sample from an LVDS word, validating the
// sync patterns.
func UnpackWord(w uint32) (complex128, error) {
	if (w>>30)&0b11 != iSyncPattern {
		return 0, fmt.Errorf("radio: bad I_SYNC in word %#08x", w)
	}
	if (w>>14)&0b11 != qSyncPattern {
		return 0, fmt.Errorf("radio: bad Q_SYNC in word %#08x", w)
	}
	i := signExtend13((w >> 17) & sampleMask)
	q := signExtend13((w >> 1) & sampleMask)
	return complex(iq.CodeToValue(i, ADCBits, 1.0), iq.CodeToValue(q, ADCBits, 1.0)), nil
}

func signExtend13(v uint32) int32 {
	if v&signBit != 0 {
		return int32(v) - (1 << ADCBits)
	}
	return int32(v)
}

// Serialize frames a sample buffer into the raw LVDS bit stream (one bit per
// byte, in transmission order). This is the I/Q Serializer block of the
// modulator designs.
func Serialize(s iq.Samples) []byte {
	bits := make([]byte, 0, len(s)*lvdsWordBits)
	for _, x := range s {
		w := PackWord(x)
		for b := lvdsWordBits - 1; b >= 0; b-- {
			bits = append(bits, byte((w>>uint(b))&1))
		}
	}
	return bits
}

// Deserialize recovers samples from a raw bit stream with unknown word
// alignment. It mirrors the FPGA's I/Q deserializer: scan for the first
// offset where I_SYNC and Q_SYNC verify across two consecutive words, then
// decode words until the stream ends, skipping any trailing partial word.
func Deserialize(bits []byte) (iq.Samples, error) {
	if len(bits) < 2*lvdsWordBits {
		return nil, fmt.Errorf("radio: bit stream too short to synchronize (%d bits)", len(bits))
	}
	wordAt := func(off int) uint32 {
		var w uint32
		for b := 0; b < lvdsWordBits; b++ {
			w = w<<1 | uint32(bits[off+b])
		}
		return w
	}
	start := -1
	for off := 0; off+2*lvdsWordBits <= len(bits) && off < lvdsWordBits; off++ {
		if _, err := UnpackWord(wordAt(off)); err != nil {
			continue
		}
		if _, err := UnpackWord(wordAt(off + lvdsWordBits)); err != nil {
			continue
		}
		start = off
		break
	}
	if start < 0 {
		return nil, fmt.Errorf("radio: no LVDS word alignment found")
	}
	var out iq.Samples
	for off := start; off+lvdsWordBits <= len(bits); off += lvdsWordBits {
		s, err := UnpackWord(wordAt(off))
		if err != nil {
			return out, fmt.Errorf("radio: lost sync at bit %d: %w", off, err)
		}
		out = append(out, s)
	}
	return out, nil
}
