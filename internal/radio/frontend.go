package radio

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/power"
)

// FrontEnd models the external PA/LNA modules: the SE2435L on the 900 MHz
// path and the SKY66112 on the 2.4 GHz path (§3.1.1). Both integrate a PA,
// an LNA, and bypass switches for either, letting the platform trade
// power for gain in software.
type FrontEnd struct {
	Name string
	// MaxPADBm is the module's maximum output power.
	MaxPADBm float64
	// PAGainDB is the amplifier gain when engaged.
	PAGainDB float64
	// LNAGainDB is the receive amplifier gain when engaged.
	LNAGainDB float64
	// LNANoiseFigureDB is the LNA noise figure.
	LNANoiseFigureDB float64
	// PAEfficiency is the added drain efficiency of the external PA.
	PAEfficiency float64

	sink      power.Sink
	component string
	paOn      bool
	lnaOn     bool
}

// Front-end electrical constants shared by both modules.
const (
	// feBypassPowerW is the draw when bypassed but powered (280 µA max).
	feBypassPowerW = 280e-6 * power.BatteryVoltage
	// feSleepPowerW is the sleep draw (1 µA).
	feSleepPowerW = 1e-6 * power.BatteryVoltage
	// PASwitchTime is the PA/LNA/bypass path switch latency.
	PASwitchTime = 5 * time.Microsecond
)

// NewSE2435L returns the 900 MHz front end (30 dBm max output).
func NewSE2435L(sink power.Sink) *FrontEnd {
	f := &FrontEnd{
		Name: "SE2435L", MaxPADBm: 30, PAGainDB: 16, LNAGainDB: 12,
		LNANoiseFigureDB: 1.5, PAEfficiency: 0.35,
		sink: sink, component: "pa-900",
	}
	f.Sleep()
	return f
}

// NewSKY66112 returns the 2.4 GHz front end (27 dBm max output).
func NewSKY66112(sink power.Sink) *FrontEnd {
	f := &FrontEnd{
		Name: "SKY66112", MaxPADBm: 27, PAGainDB: 13, LNAGainDB: 11,
		LNANoiseFigureDB: 2.0, PAEfficiency: 0.3,
		sink: sink, component: "pa-2400",
	}
	f.Sleep()
	return f
}

// Sleep puts the module in its 1 µA sleep state with both paths bypassed.
func (f *FrontEnd) Sleep() {
	f.paOn, f.lnaOn = false, false
	f.sink.SetPower(f.component, feSleepPowerW)
}

// PowerOff models the module's supply domain (V6/V7) being gated by the
// PMU: zero draw, as in the platform's deep-sleep state.
func (f *FrontEnd) PowerOff() {
	f.paOn, f.lnaOn = false, false
	f.sink.SetPower(f.component, 0)
}

// Bypass powers the module with both amplifiers bypassed (receive or
// transmit directly through, <14 dBm TX).
func (f *FrontEnd) Bypass() {
	f.paOn, f.lnaOn = false, false
	f.sink.SetPower(f.component, feBypassPowerW)
}

// EnablePA engages the transmit amplifier for the given radio drive level,
// validating that the result stays within the module's rating. It returns
// the resulting output power.
func (f *FrontEnd) EnablePA(driveDBm float64) (float64, error) {
	out := driveDBm + f.PAGainDB
	if out > f.MaxPADBm {
		return 0, fmt.Errorf("radio: %s output %.1f dBm exceeds %.1f dBm rating", f.Name, out, f.MaxPADBm)
	}
	f.paOn, f.lnaOn = true, false
	f.sink.SetPower(f.component, feBypassPowerW+iq.DBmToWatts(out)/f.PAEfficiency)
	return out, nil
}

// EnableLNA engages the receive amplifier.
func (f *FrontEnd) EnableLNA() {
	f.lnaOn, f.paOn = true, false
	f.sink.SetPower(f.component, feBypassPowerW+3e-3)
}

// PAOn and LNAOn report the engaged paths.
func (f *FrontEnd) PAOn() bool  { return f.paOn }
func (f *FrontEnd) LNAOn() bool { return f.lnaOn }
