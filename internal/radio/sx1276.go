package radio

import (
	"fmt"
	"math"
	"time"

	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/power"
)

// SX1276 models the Semtech LoRa transceiver that tinySDR uses as its OTA
// backbone radio and that the evaluation compares against (Fig. 10/11).
// Its LoRa modem demodulates with the same dechirp+FFT structure the
// tinySDR FPGA implements; the chip model here carries the RF-side
// constants: datasheet sensitivity, demodulator SNR limits, state power.
type SX1276 struct {
	sink  power.Sink
	state RadioState
	txDBm float64
}

// SX1276 constants.
const (
	// SX1276NoiseFigureDB matches the -126 dBm SF8/BW125 datasheet
	// sensitivity given the Semtech demodulator SNR limits.
	SX1276NoiseFigureDB = 7
	// SX1276MaxTXPowerDBm is the PA_BOOST limit used by the OTA AP.
	SX1276MaxTXPowerDBm = 20
	// SX1276CostUSD is the unit cost that motivated choosing LoRa for the
	// backbone (§3.1.2).
	SX1276CostUSD = 4.5
)

// SX1276 power draw per state, battery-side. The RX figure is calibrated
// with the MCU idle draw so an OTA session averages the ≈41 mW implied by
// the paper's 6144 mJ / 150 s LoRa update measurement.
const (
	sx1276SleepPowerW = 0.7e-6
	sx1276IdlePowerW  = 5.0e-6
	sx1276RXPowerW    = 32e-3
	sx1276TXBaseW     = 15e-3
	sx1276PAEff       = 0.25
)

// NewSX1276 returns a backbone radio in sleep, reporting power to sink.
func NewSX1276(sink power.Sink) *SX1276 {
	r := &SX1276{sink: sink, txDBm: 14}
	r.setState(StateSleep)
	return r
}

// State returns the current state.
func (r *SX1276) State() RadioState { return r.state }

// SetTXPower programs the output power (up to PA_BOOST's 20 dBm).
func (r *SX1276) SetTXPower(dbm float64) error {
	if dbm < -4 || dbm > SX1276MaxTXPowerDBm {
		return fmt.Errorf("radio: SX1276 TX power %.1f dBm outside [-4, 20]", dbm)
	}
	r.txDBm = dbm
	if r.state == StateTX {
		r.setState(StateTX)
	}
	return nil
}

// TXPower returns the programmed output power.
func (r *SX1276) TXPower() float64 { return r.txDBm }

func (r *SX1276) setState(s RadioState) {
	r.state = s
	switch s {
	case StateSleep:
		r.sink.SetPower("backbone-radio", sx1276SleepPowerW)
	case StateTRXOff:
		r.sink.SetPower("backbone-radio", sx1276IdlePowerW)
	case StateRX:
		r.sink.SetPower("backbone-radio", sx1276RXPowerW)
	case StateTX:
		r.sink.SetPower("backbone-radio", sx1276TXBaseW+math.Pow(10, r.txDBm/10)*1e-3/sx1276PAEff)
	}
}

// Transition moves the modem state machine; SX1276 mode switches are
// sub-millisecond, dominated by the 62.5 µs PLL lock.
func (r *SX1276) Transition(to RadioState) (time.Duration, error) {
	if to < StateSleep || to > StateTX {
		return 0, fmt.Errorf("radio: unknown state %d", int(to))
	}
	d := 62500 * time.Nanosecond
	if r.state == to {
		d = 0
	}
	if r.state == StateSleep && to != StateSleep {
		d = 240 * time.Microsecond // oscillator start
	}
	r.setState(to)
	return d, nil
}

// LoRaSNRLimitDB returns the Semtech demodulator's minimum SNR for a
// spreading factor (datasheet table: -5 dB at SF6 stepping -2.5 dB per SF).
func LoRaSNRLimitDB(sf int) float64 { return lora.SNRLimitDB(sf) }

// LoRaSensitivityDBm returns the datasheet sensitivity for a configuration:
// thermal floor + noise figure + SNR limit. For SF8/BW125 this is the
// -126 dBm the paper quotes.
func LoRaSensitivityDBm(sf int, bwHz float64) float64 {
	return lora.SensitivityDBm(sf, bwHz, SX1276NoiseFigureDB)
}
