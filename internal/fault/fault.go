// Package fault is the deterministic fault-plan engine behind the chaos
// evaluation: it decides, ahead of time, which faults strike which node at
// which protocol event. Every decision is a pure function of
// (plan seed, node, event index, fault kind) through the same SplitMix64
// finalizer the trial-parallel runner uses (internal/par), so a chaos
// campaign's faults — and therefore its reports — are byte-identical at any
// worker count, exactly the determinism contract of the Monte-Carlo sweeps.
//
// The injectable kinds model the failure modes a real OTA testbed
// deployment survives or dies on:
//
//   - node crash/reboot with loss of in-progress update state
//   - flash program failures and bit-rot in stored data
//   - RX desync bursts (the node misses a run of consecutive frames)
//   - duty-cycle dropouts (the node sleeps through a fraction of frames)
//   - AP outage windows (nobody hears anything for a run of frames)
//
// A Spec is parsed from a compact textual grammar parallel to the channel
// scenario grammar (internal/sim/scenario), e.g.
//
//	crash=0.02,flashfail=0.01,bitrot=0.002,desync=0.05:4,duty=0.1,apoutage=0.01:8
//
// and bound to a seed with NewPlan. Plans hold no mutable state: queries
// may be issued in any order, from any schedule, and always agree.
package fault

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrFlashWrite marks injected flash program failures, so protocol code
// can classify them (errors.Is) apart from genuine protocol errors.
var ErrFlashWrite = errors.New("flash program fault")

// Kind enumerates the injectable fault kinds. The numeric values are part
// of the determinism contract (they salt the per-event hash), so new kinds
// must be appended, never renumbered.
type Kind uint8

// Fault kinds.
const (
	KindCrash Kind = iota + 1
	KindFlashWrite
	KindBitRot
	KindDesync
	KindDutyCycle
	KindAPOutage
)

// Defaults for the burst-shaped kinds when the grammar omits a length.
const (
	// DefaultDesyncFrames is the frames lost per RX desync burst.
	DefaultDesyncFrames = 4
	// DefaultOutageFrames is the frames per AP outage window.
	DefaultOutageFrames = 8
)

// Spec describes fault intensities. The zero value injects nothing.
type Spec struct {
	// CrashProb is the per-frame probability a node crashes and reboots,
	// losing all in-progress update state (crash=P).
	CrashProb float64 `json:"crash,omitempty"`
	// FlashFailProb is the per-write probability a flash program fails,
	// leaving the device untouched (flashfail=P).
	FlashFailProb float64 `json:"flashfail,omitempty"`
	// BitRotProb is the per-write probability one stored bit flips
	// silently (bitrot=P).
	BitRotProb float64 `json:"bitrot,omitempty"`
	// DesyncProb is the per-frame probability a node starts an RX desync
	// burst of DesyncFrames frames (desync=P[:LEN]).
	DesyncProb float64 `json:"desync,omitempty"`
	// DesyncFrames is the burst length; 0 means DefaultDesyncFrames.
	DesyncFrames int `json:"desync_frames,omitempty"`
	// DutyCycleOff is the fraction of frames a node sleeps through on its
	// duty cycle (duty=P).
	DutyCycleOff float64 `json:"duty,omitempty"`
	// APOutageProb is the per-frame probability the AP starts an outage
	// window of APOutageFrames frames (apoutage=P[:LEN]).
	APOutageProb float64 `json:"apoutage,omitempty"`
	// APOutageFrames is the outage length; 0 means DefaultOutageFrames.
	APOutageFrames int `json:"apoutage_frames,omitempty"`
}

// Enabled reports whether the spec injects any fault at all.
func (s Spec) Enabled() bool {
	return s.CrashProb > 0 || s.FlashFailProb > 0 || s.BitRotProb > 0 ||
		s.DesyncProb > 0 || s.DutyCycleOff > 0 || s.APOutageProb > 0
}

// Validate rejects probabilities outside [0, 1] and negative lengths.
func (s Spec) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"crash", s.CrashProb}, {"flashfail", s.FlashFailProb},
		{"bitrot", s.BitRotProb}, {"desync", s.DesyncProb},
		{"duty", s.DutyCycleOff}, {"apoutage", s.APOutageProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0, 1]", p.name, p.v)
		}
	}
	if s.DesyncFrames < 0 || s.APOutageFrames < 0 {
		return fmt.Errorf("fault: negative burst length")
	}
	return nil
}

// Scale multiplies every probability by x (clamped to [0, 1]), keeping the
// burst lengths — the intensity axis of the chaos sweep.
func (s Spec) Scale(x float64) Spec {
	clamp := func(p float64) float64 {
		p *= x
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	s.CrashProb = clamp(s.CrashProb)
	s.FlashFailProb = clamp(s.FlashFailProb)
	s.BitRotProb = clamp(s.BitRotProb)
	s.DesyncProb = clamp(s.DesyncProb)
	s.DutyCycleOff = clamp(s.DutyCycleOff)
	s.APOutageProb = clamp(s.APOutageProb)
	return s
}

// Parse parses the compact comma-separated fault grammar:
//
//	crash=P  flashfail=P  bitrot=P  duty=P
//	desync=P[:FRAMES]  apoutage=P[:FRAMES]
//
// e.g. "crash=0.02,flashfail=0.01,desync=0.05:4". Like the scenario
// grammar, unknown terms and trailing arguments are rejected, never
// silently dropped.
func Parse(s string) (Spec, error) {
	spec := Spec{}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok || val == "" {
			return spec, fmt.Errorf("fault: term %q needs a value", part)
		}
		args := strings.Split(val, ":")
		prob, err := strconv.ParseFloat(args[0], 64)
		if err != nil {
			return spec, fmt.Errorf("fault: bad term %q: %w", part, err)
		}
		frames := 0
		switch key {
		case "desync", "apoutage":
			if len(args) > 2 {
				return spec, fmt.Errorf("fault: term %q has %d arguments, at most 2 allowed", part, len(args))
			}
			if len(args) == 2 {
				if frames, err = strconv.Atoi(args[1]); err != nil {
					return spec, fmt.Errorf("fault: bad term %q: %w", part, err)
				}
				if frames < 1 {
					return spec, fmt.Errorf("fault: term %q: burst length %d", part, frames)
				}
			}
		default:
			if len(args) > 1 {
				return spec, fmt.Errorf("fault: term %q takes a single probability", part)
			}
		}
		switch key {
		case "crash":
			spec.CrashProb = prob
		case "flashfail":
			spec.FlashFailProb = prob
		case "bitrot":
			spec.BitRotProb = prob
		case "desync":
			spec.DesyncProb, spec.DesyncFrames = prob, frames
		case "duty":
			spec.DutyCycleOff = prob
		case "apoutage":
			spec.APOutageProb, spec.APOutageFrames = prob, frames
		default:
			return spec, fmt.Errorf("fault: unknown term %q", key)
		}
	}
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// String renders the spec back into the Parse grammar ("none" when empty).
func (s Spec) String() string {
	var parts []string
	add := func(term string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", term, p))
		}
	}
	add("crash", s.CrashProb)
	add("flashfail", s.FlashFailProb)
	add("bitrot", s.BitRotProb)
	if s.DesyncProb > 0 {
		parts = append(parts, fmt.Sprintf("desync=%g:%d", s.DesyncProb, s.desyncFrames()))
	}
	add("duty", s.DutyCycleOff)
	if s.APOutageProb > 0 {
		parts = append(parts, fmt.Sprintf("apoutage=%g:%d", s.APOutageProb, s.outageFrames()))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

func (s Spec) desyncFrames() int {
	if s.DesyncFrames > 0 {
		return s.DesyncFrames
	}
	return DefaultDesyncFrames
}

func (s Spec) outageFrames() int {
	if s.APOutageFrames > 0 {
		return s.APOutageFrames
	}
	return DefaultOutageFrames
}

// Plan binds a Spec to a seed. Plans are immutable and stateless: every
// query is a pure function of (seed, kind, node, event), so they are safe
// to share across goroutines and always agree regardless of query order.
type Plan struct {
	Spec Spec
	seed int64
}

// NewPlan returns the fault plan for a spec and seed.
func NewPlan(spec Spec, seed int64) *Plan {
	return &Plan{Spec: spec, seed: seed}
}

// roll maps (seed, kind, node, event) to a uniform [0, 1) draw via the
// SplitMix64 finalizer — the same mixing the par/channel substreams use,
// applied to a composite stream index so kinds, nodes and events never
// share a draw.
func (p *Plan) roll(kind Kind, node uint16, event int64) float64 {
	z := uint64(p.seed)*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
	z ^= uint64(kind) * 0xD6E8FEB86659FD93
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z ^= uint64(node)*0xCA5A826395121157 + uint64(event)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// CrashAt reports whether the node crashes (and reboots, losing update
// state) at the given protocol frame.
func (p *Plan) CrashAt(node uint16, frame int64) bool {
	return p.Spec.CrashProb > 0 && p.roll(KindCrash, node, frame) < p.Spec.CrashProb
}

// Asleep reports whether the node's duty cycle has it sleeping through the
// given frame.
func (p *Plan) Asleep(node uint16, frame int64) bool {
	return p.Spec.DutyCycleOff > 0 && p.roll(KindDutyCycle, node, frame) < p.Spec.DutyCycleOff
}

// Desynced reports whether the node is inside an RX desync burst at the
// given frame: a burst starting at any of the preceding DesyncFrames
// frames (inclusive) covers it.
func (p *Plan) Desynced(node uint16, frame int64) bool {
	if p.Spec.DesyncProb <= 0 {
		return false
	}
	n := int64(p.Spec.desyncFrames())
	for g := frame - n + 1; g <= frame; g++ {
		if g >= 0 && p.roll(KindDesync, node, g) < p.Spec.DesyncProb {
			return true
		}
	}
	return false
}

// APDown reports whether the AP is inside an outage window at the given
// frame. Outages are node-independent: everybody misses the frame.
func (p *Plan) APDown(frame int64) bool {
	if p.Spec.APOutageProb <= 0 {
		return false
	}
	n := int64(p.Spec.outageFrames())
	for g := frame - n + 1; g <= frame; g++ {
		if g >= 0 && p.roll(KindAPOutage, 0, g) < p.Spec.APOutageProb {
			return true
		}
	}
	return false
}

// WriteFails reports whether the node's i-th flash program fails.
func (p *Plan) WriteFails(node uint16, write int64) bool {
	return p.Spec.FlashFailProb > 0 && p.roll(KindFlashWrite, node, write) < p.Spec.FlashFailProb
}

// BitRot returns the bit to flip in the node's i-th flash write of n
// bytes, or ok=false when the write stores cleanly.
func (p *Plan) BitRot(node uint16, write int64, n int) (byteIdx, bitIdx int, ok bool) {
	if p.Spec.BitRotProb <= 0 || n <= 0 {
		return 0, 0, false
	}
	if p.roll(KindBitRot, node, write) >= p.Spec.BitRotProb {
		return 0, 0, false
	}
	// A second independent draw places the flip inside the write.
	u := p.roll(KindBitRot, node, write+(1<<40))
	bit := int(u * float64(n*8))
	if bit >= n*8 {
		bit = n*8 - 1
	}
	return bit / 8, bit % 8, true
}

// NodeFaults binds a plan to one node and counts its flash writes, making
// the write-fault draws a fixed function of (seed, node, write index). It
// implements the flash.WriteFaults hook. Like the protocol state it rides
// on, it is single-goroutine.
type NodeFaults struct {
	plan   *Plan
	node   uint16
	writes int64
}

// Node returns the per-node fault injector for the plan (nil-safe: a nil
// plan yields a nil injector, which flash treats as "no faults").
func (p *Plan) Node(id uint16) *NodeFaults {
	if p == nil {
		return nil
	}
	return &NodeFaults{plan: p, node: id}
}

// FaultWrite is the flash.WriteFaults hook: consulted once per program
// operation, it either fails the write, flips one stored bit, or lets the
// write through untouched. A nil injector (from a nil plan) passes every
// write, so installing plan.Node(id) unconditionally is safe.
func (n *NodeFaults) FaultWrite(addr int, data []byte) (flipByte, flipBit int, err error) {
	if n == nil {
		return -1, 0, nil
	}
	w := n.writes
	n.writes++
	if n.plan.WriteFails(n.node, w) {
		return -1, 0, fmt.Errorf("fault: %w at %#x (node %d, write %d)", ErrFlashWrite, addr, n.node, w)
	}
	if b, bit, ok := n.plan.BitRot(n.node, w, len(data)); ok {
		return b, bit, nil
	}
	return -1, 0, nil
}
