package fault

import (
	"errors"
	"fmt"
	"math"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"crash=0.02",
		"crash=0.02,flashfail=0.01,bitrot=0.002,desync=0.05:4,duty=0.1,apoutage=0.01:8",
		"desync=0.05:7",
		"apoutage=0.3:2",
		"",
	}
	for _, in := range cases {
		spec, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := spec.String()
		back, err := Parse(out)
		if err != nil && out != "none" {
			t.Fatalf("Parse(String(%q)=%q): %v", in, out, err)
		}
		if out != "none" && back != spec {
			t.Errorf("round trip %q -> %q -> %+v != %+v", in, out, back, spec)
		}
	}
	if s, _ := Parse(""); s.String() != "none" {
		t.Errorf("empty spec renders %q", s.String())
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"crash",             // no value
		"crash=",            // empty value
		"crash=2",           // probability out of range
		"crash=-0.1",        // negative
		"crash=0.1:4",       // trailing arg on a scalar term
		"desync=0.1:4:9",    // too many args
		"desync=0.1:0",      // zero-length burst
		"warp=0.5",          // unknown term
		"crash=zero",        // not a number
		"apoutage=0.1:-3",   // negative burst
		"crash=0.1,,duty=2", // second term out of range
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestScale(t *testing.T) {
	s, err := Parse("crash=0.2,desync=0.4:4")
	if err != nil {
		t.Fatal(err)
	}
	half := s.Scale(0.5)
	if half.CrashProb != 0.1 || half.DesyncProb != 0.2 {
		t.Errorf("Scale(0.5) = %+v", half)
	}
	if half.DesyncFrames != 4 {
		t.Error("Scale must keep burst lengths")
	}
	if x4 := s.Scale(4); x4.DesyncProb != 1 {
		t.Errorf("Scale must clamp at 1, got %g", x4.DesyncProb)
	}
	if zero := s.Scale(0); zero.Enabled() {
		t.Error("Scale(0) still enabled")
	}
}

func TestPlanDeterministicAndOrderFree(t *testing.T) {
	spec, _ := Parse("crash=0.1,flashfail=0.1,bitrot=0.1,desync=0.1:3,duty=0.1,apoutage=0.1:2")
	a := NewPlan(spec, 42)
	b := NewPlan(spec, 42)
	// Query b in reverse order: stateless plans must agree regardless.
	type q struct{ crash, sleep, desync, ap, wf bool }
	var qa, qb []q
	for node := uint16(0); node < 8; node++ {
		for f := int64(0); f < 200; f++ {
			qa = append(qa, q{a.CrashAt(node, f), a.Asleep(node, f), a.Desynced(node, f), a.APDown(f), a.WriteFails(node, f)})
		}
	}
	for node := int(7); node >= 0; node-- {
		var rev []q
		for f := int64(199); f >= 0; f-- {
			rev = append([]q{{b.CrashAt(uint16(node), f), b.Asleep(uint16(node), f), b.Desynced(uint16(node), f), b.APDown(f), b.WriteFails(uint16(node), f)}}, rev...)
		}
		qb = append(rev, qb...)
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("query %d disagrees across orders: %+v vs %+v", i, qa[i], qb[i])
		}
	}
	if c := NewPlan(spec, 43); func() bool {
		for node := uint16(0); node < 8; node++ {
			for f := int64(0); f < 200; f++ {
				if a.CrashAt(node, f) != c.CrashAt(node, f) {
					return true
				}
			}
		}
		return false
	}() == false {
		t.Error("different seeds produced identical crash schedules")
	}
}

func TestRollDistribution(t *testing.T) {
	// Each kind's empirical hit rate over many (node, frame) cells must
	// track its probability: the hash must behave like a uniform draw.
	spec := Spec{CrashProb: 0.25, DutyCycleOff: 0.1, FlashFailProb: 0.05}
	p := NewPlan(spec, 7)
	const nodes, frames = 64, 400
	total := float64(nodes * frames)
	var crash, sleep, wf int
	for n := uint16(0); n < nodes; n++ {
		for f := int64(0); f < frames; f++ {
			if p.CrashAt(n, f) {
				crash++
			}
			if p.Asleep(n, f) {
				sleep++
			}
			if p.WriteFails(n, f) {
				wf++
			}
		}
	}
	check := func(name string, hits int, want float64) {
		got := float64(hits) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s rate %.3f, want %.3f±0.02", name, got, want)
		}
	}
	check("crash", crash, 0.25)
	check("sleep", sleep, 0.1)
	check("flashfail", wf, 0.05)
}

func TestDesyncBurstCoversWindow(t *testing.T) {
	spec := Spec{DesyncProb: 0.01, DesyncFrames: 5}
	p := NewPlan(spec, 3)
	// Find a burst start and check the following frames are covered.
	for f := int64(0); f < 10000; f++ {
		if p.roll(KindDesync, 1, f) < spec.DesyncProb {
			for g := f; g < f+5; g++ {
				if !p.Desynced(1, g) {
					t.Fatalf("frame %d inside burst at %d not desynced", g, f)
				}
			}
			return
		}
	}
	t.Fatal("no burst found in 10000 frames")
}

func TestBitRotPlacement(t *testing.T) {
	spec := Spec{BitRotProb: 1} // every write rots
	p := NewPlan(spec, 9)
	for w := int64(0); w < 100; w++ {
		byteIdx, bitIdx, ok := p.BitRot(5, w, 60)
		if !ok {
			t.Fatalf("write %d did not rot at prob 1", w)
		}
		if byteIdx < 0 || byteIdx >= 60 || bitIdx < 0 || bitIdx > 7 {
			t.Fatalf("write %d: flip at byte %d bit %d out of range", w, byteIdx, bitIdx)
		}
	}
	if _, _, ok := p.BitRot(5, 0, 0); ok {
		t.Error("zero-length write rotted")
	}
}

func TestNodeFaultsNilSafe(t *testing.T) {
	var p *Plan
	n := p.Node(3)
	if n != nil {
		t.Fatal("nil plan must yield a nil injector")
	}
	// The nil injector must pass writes untouched (typed-nil interface
	// hazard: flash stores it behind an interface and calls it).
	flipByte, _, err := n.FaultWrite(0, make([]byte, 8))
	if err != nil || flipByte != -1 {
		t.Fatalf("nil injector: flip %d err %v", flipByte, err)
	}
}

func TestNodeFaultsWriteStream(t *testing.T) {
	spec := Spec{FlashFailProb: 0.5}
	a := NewPlan(spec, 11).Node(2)
	b := NewPlan(spec, 11).Node(2)
	sawErr := false
	for w := 0; w < 64; w++ {
		_, _, errA := a.FaultWrite(w*256, make([]byte, 60))
		_, _, errB := b.FaultWrite(w*256, make([]byte, 60))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("write %d: injectors disagree", w)
		}
		if errA != nil {
			sawErr = true
			if !errors.Is(errA, ErrFlashWrite) {
				t.Fatalf("write %d: %v does not wrap ErrFlashWrite", w, errA)
			}
		}
	}
	if !sawErr {
		t.Error("no write failed at prob 0.5 over 64 writes")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{CrashProb: 1.5}).Validate(); err == nil {
		t.Error("probability 1.5 accepted")
	}
	if err := (Spec{DesyncFrames: -1}).Validate(); err == nil {
		t.Error("negative burst accepted")
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Errorf("zero spec rejected: %v", err)
	}
}

func ExampleParse() {
	spec, _ := Parse("crash=0.02,desync=0.05:4")
	fmt.Println(spec)
	// Output: crash=0.02,desync=0.05:4
}
