package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay pins the journal's recovery contract on arbitrary
// bytes: whatever prefix Parse accepts must re-encode byte-identically
// (canonical framing), and Open on the same bytes must replay the same
// records, truncate the torn/corrupt tail away, and leave the file
// append-clean — recovery never errors on anything but a bad header.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(Header())
	seed := Header()
	seed, _ = AppendFrame(seed, Record{Type: 1, Data: []byte(`{"id":"c1","spec":{"nodes":40}}`)})
	seed, _ = AppendFrame(seed, Record{Type: 2, Data: []byte(`{"id":"c1"}`)})
	f.Add(seed)
	f.Add(append(append([]byte{}, seed...), 0xDE, 0xAD)) // torn tail
	trunc := append([]byte{}, seed[:len(seed)-3]...)
	f.Add(trunc)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, err := Parse(data)
		if err != nil {
			return // bad header: rejected outright
		}
		if good > len(data) {
			t.Fatalf("accepted prefix %d beyond input length %d", good, len(data))
		}
		re := Header()
		for _, r := range recs {
			if re, err = AppendFrame(re, r); err != nil {
				t.Fatalf("accepted record fails to re-encode: %v", err)
			}
		}
		if !bytes.Equal(re, data[:good]) {
			t.Fatalf("re-encoded journal differs from the accepted prefix")
		}

		// Open must recover the same state from a file of these bytes and
		// leave it append-clean.
		path := filepath.Join(t.TempDir(), "f.journal")
		if len(data) == 0 {
			return // Open would create a fresh journal; nothing to cross-check
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, replayed, err := Open(path)
		if err != nil {
			t.Fatalf("Parse accepted but Open failed: %v", err)
		}
		defer j.Close()
		if len(replayed) != len(recs) {
			t.Fatalf("Open replayed %d records, Parse %d", len(replayed), len(recs))
		}
		if err := j.Append(Record{Type: 0xFF, Data: []byte("post")}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j.Close()
		j2, again, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		j2.Close()
		if len(again) != len(recs)+1 {
			t.Fatalf("post-recovery append not replayed: %d records", len(again))
		}
	})
}
