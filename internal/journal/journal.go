// Package journal is the control plane's write-ahead log: an append-only
// record file that survives a SIGKILL at any byte. The fleet campaign
// server writes a record through the journal on every state transition and
// replays the file on startup, so a control-plane crash orphans nothing —
// a campaign interrupted mid-run resumes from its last journaled shard.
//
// File format (all integers little-endian):
//
//	header  magic "TSCJ", version u16 (1)
//	record  length u32 (payload bytes), type u8, payload, crc u32
//	        (IEEE CRC-32 of the record's length+type+payload bytes)
//	...     records repeat to end of file
//
// Parsing is strict and canonical: a record's only valid encoding is the
// one Append writes, every declared length is validated against MaxRecord
// and the remaining file before any allocation, and Parse re-encodes to
// the identical bytes (the fuzz harness pins this). Recovery is torn-tail
// tolerant: a crash mid-append leaves a truncated or CRC-broken final
// frame, which Open discards and truncates away so the journal is again
// append-clean. Records carry no wall-clock timestamps — replaying a
// journal is a pure function of its bytes.
//
// Durability model: appends reach the OS page cache, not stable storage
// (no fsync) — the journal survives process death (kill -9) on a healthy
// machine, which is the failure the control plane models; power-loss
// durability would need Sync batching and is out of scope.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

const (
	magic   = "TSCJ"
	version = 1

	// headerLen is the fixed file prelude: magic + version.
	headerLen = 6
	// frameOverhead is a record's framing cost: length u32 + type u8 +
	// crc u32.
	frameOverhead = 9

	// MaxRecord bounds one record's payload. Campaign `done` records carry
	// a full per-node result set (a 65000-node fleet marshals to tens of
	// MB), so the cap is generous; it exists so a corrupt length field
	// cannot demand an absurd allocation.
	MaxRecord = 1 << 26
)

// Record is one journaled entry: an application-defined type tag and an
// opaque payload. The journal never interprets payloads.
type Record struct {
	Type uint8
	Data []byte
}

// AppendFrame appends r's canonical wire encoding to buf and returns the
// extended slice. It is the only encoding Parse accepts.
func AppendFrame(buf []byte, r Record) ([]byte, error) {
	if len(r.Data) > MaxRecord {
		return buf, fmt.Errorf("journal: %d-byte record exceeds the %d cap", len(r.Data), MaxRecord)
	}
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Data)))
	buf = append(buf, r.Type)
	buf = append(buf, r.Data...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// Header returns the canonical file prelude.
func Header() []byte {
	out := make([]byte, 0, headerLen)
	out = append(out, magic...)
	return binary.LittleEndian.AppendUint16(out, version)
}

// Parse validates data as a journal file and returns its records plus the
// byte length of the accepted prefix. A malformed header is an error; a
// malformed record is not — parsing stops there and good reports how many
// bytes were accepted, so a torn tail (crash mid-append) recovers to the
// last complete record. Payload slices are copies; data is not retained.
func Parse(data []byte) (recs []Record, good int, err error) {
	if len(data) < headerLen || string(data[:4]) != magic {
		return nil, 0, fmt.Errorf("journal: bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != version {
		return nil, 0, fmt.Errorf("journal: version %d, want %d", v, version)
	}
	off := headerLen
	for {
		rec, n, ok := parseFrame(data[off:])
		if !ok {
			return recs, off, nil
		}
		recs = append(recs, rec)
		off += n
	}
}

// parseFrame decodes one record from the front of b, reporting its full
// frame length. ok is false for a truncated, oversized, or CRC-broken
// frame. The payload length is validated against both MaxRecord and the
// bytes actually present before the copy is allocated.
func parseFrame(b []byte) (rec Record, n int, ok bool) {
	if len(b) < frameOverhead {
		return rec, 0, false
	}
	pl := int(binary.LittleEndian.Uint32(b))
	if pl > MaxRecord || pl > len(b)-frameOverhead {
		return rec, 0, false
	}
	n = frameOverhead + pl
	want := binary.LittleEndian.Uint32(b[n-4:])
	if crc32.ChecksumIEEE(b[:n-4]) != want {
		return rec, 0, false
	}
	rec = Record{Type: b[4], Data: append([]byte(nil), b[5:5+pl]...)}
	return rec, n, true
}

// Journal is an open journal file positioned for appends. Methods are not
// safe for concurrent use; the owning server serializes access.
type Journal struct {
	path string
	f    *os.File
	// size is the accepted file length — the offset every append lands at.
	size   int64
	closed bool
}

// Open reads, validates, and truncates the journal at path, returning the
// replayable records and the journal opened for append. A missing file is
// created empty. A torn or corrupt tail is discarded by truncating the
// file to its accepted prefix, so the next append writes a clean frame;
// only a malformed header (wrong magic or version) is an error.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if info.Size() == 0 {
		hdr := Header()
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &Journal{path: path, f: f, size: int64(len(hdr))}, nil, nil
	}

	data := make([]byte, info.Size())
	if _, err := f.ReadAt(data, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, good, err := Parse(data)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %s: %w", path, err)
	}
	if int64(good) != info.Size() {
		// Torn tail: drop the partial frame so appends start clean.
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return &Journal{path: path, f: f, size: int64(good)}, recs, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one record through to the file. On a write error the
// in-memory offset is left at the last fully accepted frame, so recovery
// (and the torn-tail logic of the next Open) see a consistent prefix.
func (j *Journal) Append(r Record) error {
	if j.closed {
		return fmt.Errorf("journal: append to closed journal %s", j.path)
	}
	frame, err := AppendFrame(nil, r)
	if err != nil {
		return err
	}
	n, err := j.f.WriteAt(frame, j.size)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(n)
	return nil
}

// Compact atomically replaces the journal's contents with the given
// records: the snapshot is written to a sibling temp file and renamed into
// place, so a crash at any point leaves either the old journal or the new
// one, never a mix. The journal stays open for appends afterward.
func (j *Journal) Compact(recs []Record) error {
	if j.closed {
		return fmt.Errorf("journal: compact of closed journal %s", j.path)
	}
	out := Header()
	for _, r := range recs {
		var err error
		if out, err = AppendFrame(out, r); err != nil {
			return err
		}
	}
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	nf, err := os.OpenFile(tmp, os.O_RDWR, 0o644)
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		nf.Close()
		os.Remove(tmp)
		return err
	}
	j.f.Close()
	j.f = nf
	j.size = int64(len(out))
	return nil
}

// Close releases the file. Further appends fail; Close is idempotent.
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}
