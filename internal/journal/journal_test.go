package journal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return j, recs
}

func reencode(t *testing.T, recs []Record) []byte {
	t.Helper()
	out := Header()
	for _, r := range recs {
		var err error
		if out, err = AppendFrame(out, r); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestAppendReopenReplaysIdentically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		{Type: 1, Data: []byte(`{"id":"c1"}`)},
		{Type: 2, Data: nil},
		{Type: 3, Data: bytes.Repeat([]byte{0xAB}, 1000)},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, got := openT(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Errorf("record %d: got type %d len %d", i, got[i].Type, len(got[i].Data))
		}
	}
	// The file is exactly the canonical re-encoding of its records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, reencode(t, got)) {
		t.Error("file bytes differ from the canonical re-encoding")
	}
}

// TestTornTailRecovery simulates a SIGKILL mid-append at every byte of the
// final frame: Open must recover the intact prefix, truncate the tail, and
// accept new appends cleanly.
func TestTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	if err := j.Append(Record{Type: 1, Data: []byte("first")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: 2, Data: []byte("second-record-payload")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	frame1, _ := AppendFrame(nil, Record{Type: 1, Data: []byte("first")})
	intact := headerLen + len(frame1)

	for cut := intact + 1; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs := openT(t, path)
		if len(recs) != 1 || recs[0].Type != 1 {
			t.Fatalf("cut %d: recovered %d records", cut, len(recs))
		}
		if err := j.Append(Record{Type: 9, Data: []byte("post-crash")}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		j.Close()
		_, recs = openT(t, path)
		if len(recs) != 2 || recs[1].Type != 9 {
			t.Fatalf("cut %d: post-recovery journal replayed %d records", cut, len(recs))
		}
	}
}

func TestCorruptTailBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	if err := j.Append(Record{Type: 1, Data: []byte("keep")}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: 2, Data: []byte("doomed")}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, _ := os.ReadFile(path)
	data[len(data)-6] ^= 0x40 // flip a bit inside the last frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := openT(t, path)
	defer j.Close()
	if len(recs) != 1 || string(recs[0].Data) != "keep" {
		t.Fatalf("recovered %d records", len(recs))
	}
}

func TestHostileLengthRejectedBeforeAllocation(t *testing.T) {
	// A frame declaring a huge payload must stop the parse (treated as a
	// torn tail), not allocate.
	buf := Header()
	buf = binary.LittleEndian.AppendUint32(buf, 1<<31-1)
	buf = append(buf, 7)
	buf = append(buf, bytes.Repeat([]byte{0}, 64)...)
	recs, good, err := Parse(buf)
	if err != nil || len(recs) != 0 || good != headerLen {
		t.Fatalf("recs=%d good=%d err=%v", len(recs), good, err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("TSC"),
		[]byte("TSIQ\x01\x00"),
		append([]byte(magic), 0xFF, 0x00), // version 255
	} {
		if _, _, err := Parse(data); err == nil {
			t.Errorf("Parse(%q) accepted a bad header", data)
		}
	}
	path := filepath.Join(t.TempDir(), "bad.journal")
	if err := os.WriteFile(path, []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Error("Open accepted a bad header")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	defer j.Close()
	if err := j.Append(Record{Type: 1, Data: make([]byte, MaxRecord+1)}); err == nil {
		t.Error("append accepted a record over MaxRecord")
	}
}

func TestCompactRewritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Type: 3, Data: []byte("shard")}); err != nil {
			t.Fatal(err)
		}
	}
	snap := []Record{{Type: 4, Data: []byte("terminal")}}
	if err := j.Compact(snap); err != nil {
		t.Fatal(err)
	}
	// The journal stays appendable after the rename swap.
	if err := j.Append(Record{Type: 1, Data: []byte("after")}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, recs := openT(t, path)
	if len(recs) != 2 || recs[0].Type != 4 || recs[1].Type != 1 {
		t.Fatalf("compacted journal replayed %v", recs)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("compaction left its temp file behind")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if err := j.Append(Record{Type: 1}); err == nil {
		t.Error("append after close succeeded")
	}
	if err := j.Compact(nil); err == nil {
		t.Error("compact after close succeeded")
	}
}

func TestParseEmptyJournal(t *testing.T) {
	recs, good, err := Parse(Header())
	if err != nil || len(recs) != 0 || good != headerLen {
		t.Fatalf("recs=%d good=%d err=%v", len(recs), good, err)
	}
}

func TestOpenErrorPaths(t *testing.T) {
	// A directory at the journal path cannot be opened for append.
	dir := t.TempDir()
	if _, _, err := Open(dir); err == nil {
		t.Error("Open accepted a directory")
	}
	// A missing parent directory is the caller's bug, not a create case.
	if _, _, err := Open(filepath.Join(dir, "no", "such", "c.journal")); err == nil {
		t.Error("Open created parents it was never asked to")
	}
}

func TestPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	defer j.Close()
	if j.Path() != path {
		t.Errorf("Path() = %q, want %q", j.Path(), path)
	}
}

func TestCompactRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	defer j.Close()
	if err := j.Compact([]Record{{Type: 1, Data: make([]byte, MaxRecord+1)}}); err == nil {
		t.Error("compact accepted a record over MaxRecord")
	}
	// The failed compaction must leave the journal usable.
	if err := j.Append(Record{Type: 1, Data: []byte("ok")}); err != nil {
		t.Errorf("append after failed compact: %v", err)
	}
}

func TestAppendSurfacesWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	// Kill the fd out from under the journal — the torn-write case where
	// the OS, not the caller, fails the append.
	j.f.Close()
	if err := j.Append(Record{Type: 1, Data: []byte("x")}); err == nil {
		t.Error("append over a dead fd succeeded")
	}
}

func TestCompactSurfacesTempWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.journal")
	j, _ := openT(t, path)
	defer j.Close()
	// Point the journal at a path whose parent does not exist: the temp
	// snapshot cannot be written, and the original file must survive.
	orig := j.path
	j.path = filepath.Join(t.TempDir(), "gone", "c.journal")
	if err := j.Compact(nil); err == nil {
		t.Error("compact into a missing directory succeeded")
	}
	j.path = orig
	if err := j.Append(Record{Type: 1, Data: []byte("ok")}); err != nil {
		t.Errorf("append after failed compact: %v", err)
	}
}
