package phy

import (
	"errors"
	"io"
	"math/rand"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// fakeSource serves fixed packets through the Source contract, reusing
// one scratch buffer between calls like the trace source does.
type fakeSource struct {
	pkts    []iq.Samples
	scratch iq.Samples
	failAt  int // packet index that errors, -1 for none
}

func (f *fakeSource) Name() string        { return "fake" }
func (f *fakeSource) SampleRate() float64 { return 4e6 }
func (f *fakeSource) Packets() int        { return len(f.pkts) }

func (f *fakeSource) ReadPacket(k int) (iq.Samples, error) {
	if k == f.failAt {
		return nil, errors.New("disk on fire")
	}
	f.scratch = append(f.scratch[:0], f.pkts[k]...)
	return f.scratch, nil
}

func makePackets(seed int64, sizes ...int) []iq.Samples {
	rng := rand.New(rand.NewSource(seed))
	var pkts []iq.Samples
	for _, n := range sizes {
		p := make(iq.Samples, n)
		for i := range p {
			p[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		pkts = append(pkts, p)
	}
	return pkts
}

func concat(pkts []iq.Samples) iq.Samples {
	var all iq.Samples
	for _, p := range pkts {
		all = append(all, p...)
	}
	return all
}

// drain reads the stream to EOF with the given chunk size, checking the
// full-chunks-until-the-last contract along the way.
func drain(t *testing.T, s Stream, chunk int) iq.Samples {
	t.Helper()
	var got iq.Samples
	buf := make(iq.Samples, chunk)
	sawShort := false
	for {
		n, err := s.ReadChunk(buf)
		if err == io.EOF {
			if n != 0 {
				t.Fatalf("EOF with %d samples", n)
			}
			return got
		}
		if err != nil {
			t.Fatalf("ReadChunk: %v", err)
		}
		if sawShort {
			t.Fatalf("read after a short chunk")
		}
		if n < chunk {
			sawShort = true
		}
		got = append(got, buf[:n]...)
	}
}

func TestStreamSourceConcatenatesPackets(t *testing.T) {
	pkts := makePackets(1, 37, 64, 5, 128)
	want := concat(pkts)
	for _, chunk := range []int{1, 7, 64, 300} {
		s, err := StreamSource(&fakeSource{pkts: makePackets(1, 37, 64, 5, 128), failAt: -1})
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, s, chunk)
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d samples, want %d", chunk, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: sample %d differs", chunk, i)
			}
		}
		if s.SampleRate() != 4e6 || s.Name() != "source:fake" {
			t.Fatalf("identity: %s @ %g", s.Name(), s.SampleRate())
		}
	}
}

func TestStreamSourcePropagatesDeviceError(t *testing.T) {
	s, err := StreamSource(&fakeSource{pkts: makePackets(2, 16, 16, 16), failAt: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf := make(iq.Samples, 16)
	if _, err := s.ReadChunk(buf); err != nil {
		t.Fatalf("first packet: %v", err)
	}
	_, err = s.ReadChunk(buf)
	if err == nil || !errors.Is(err, errDevice) {
		t.Fatalf("want a device error, got %v", err)
	}
	if _, err := StreamSource(nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestStreamSamples(t *testing.T) {
	x := concat(makePackets(3, 100))
	s := StreamSamples("synth", 1e6, x)
	got := drain(t, s, 33)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	if n, err := s.ReadChunk(make(iq.Samples, 4)); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF read: %d, %v", n, err)
	}
	if s.Name() != "synth" || s.SampleRate() != 1e6 {
		t.Fatalf("identity: %s @ %g", s.Name(), s.SampleRate())
	}
}

func TestStreamSourceEmpty(t *testing.T) {
	s, err := StreamSource(&fakeSource{failAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.ReadChunk(make(iq.Samples, 8)); n != 0 || err != io.EOF {
		t.Fatalf("empty source read: %d, %v", n, err)
	}
}
