package phy

import (
	"fmt"
	"io"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// The chunked RX seam. Packet links hand the demodulator one whole
// waveform at a time (Modem.DemodulateFrom); real-time workloads — the
// spectrum sensors of internal/sense, and eventually hardware RX — see
// samples as an unbounded stream and must consume it in fixed-size
// chunks. Stream is that contract, generalizing the incremental paths
// that already exist per protocol (dsp.Discriminator.ExtendInto, BLE's
// StreamBits) and the packet-indexed replay Source: a consumer pulls
// chunks, never the whole capture, so its working set is the chunk, not
// the record.

// Stream delivers a contiguous IQ sample stream in caller-sized chunks.
//
// Streams own scratch and are single-goroutine, like the Sources and
// Modems they feed; concurrent consumers each bind their own Stream.
type Stream interface {
	// Name identifies the stream, e.g. "source:trace:lora" or
	// "sense:node42".
	Name() string
	// SampleRate is the stream's baseband rate in Hz.
	SampleRate() float64
	// ReadChunk fills dst from the stream and returns how many samples
	// were written. It returns 0, io.EOF once the stream is exhausted
	// (and never a short count alongside an error): every read before
	// that fills dst completely except possibly the last, so chunk
	// boundaries are determined by the consumer's buffer alone.
	ReadChunk(dst iq.Samples) (int, error)
}

// samplesStream serves one in-memory buffer as a Stream.
type samplesStream struct {
	name string
	rate float64
	rem  iq.Samples
}

// StreamSamples returns a Stream serving the buffer x — the adapter that
// lets a synthesized or captured waveform feed a chunked consumer. The
// stream reads from x without copying it; the caller must not mutate x
// until the stream is exhausted.
func StreamSamples(name string, rate float64, x iq.Samples) Stream {
	return &samplesStream{name: name, rate: rate, rem: x}
}

func (s *samplesStream) Name() string        { return s.name }
func (s *samplesStream) SampleRate() float64 { return s.rate }

func (s *samplesStream) ReadChunk(dst iq.Samples) (int, error) {
	if len(s.rem) == 0 {
		return 0, io.EOF
	}
	n := copy(dst, s.rem)
	s.rem = s.rem[n:]
	return n, nil
}

// sourceStream concatenates a Source's packets into one Stream.
type sourceStream struct {
	src Source
	pkt iq.Samples // current packet's unread tail
	k   int        // next packet index to read
}

// StreamSource returns a Stream serving a Source's packets back to back —
// the replay seam rebased to the streaming contract, so a stored trace
// (or any later packet device) can drive a chunked consumer such as a
// spectrum sensor without materializing the whole capture.
func StreamSource(src Source) (Stream, error) {
	if src == nil {
		return nil, fmt.Errorf("phy: stream needs a source")
	}
	return &sourceStream{src: src}, nil
}

func (s *sourceStream) Name() string        { return "source:" + s.src.Name() }
func (s *sourceStream) SampleRate() float64 { return s.src.SampleRate() }

func (s *sourceStream) ReadChunk(dst iq.Samples) (int, error) {
	filled := 0
	for filled < len(dst) {
		if len(s.pkt) == 0 {
			if s.k >= s.src.Packets() {
				break
			}
			pkt, err := s.src.ReadPacket(s.k)
			if err != nil {
				return 0, fmt.Errorf("%w: stream packet %d: %w", errDevice, s.k, err)
			}
			s.k++
			s.pkt = pkt
		}
		n := copy(dst[filled:], s.pkt)
		s.pkt = s.pkt[n:]
		filled += n
	}
	if filled == 0 {
		return 0, io.EOF
	}
	return filled, nil
}
