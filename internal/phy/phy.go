// Package phy defines the protocol-agnostic physical-layer contract of the
// platform: one Modem interface that LoRa, BLE and backscatter all satisfy,
// a deterministic registry keyed by protocol name, and a Link pipeline that
// binds a TX modem, a composed channel scenario and an RX modem into a
// reproducible measurement loop.
//
// This is the waveform-agnostic abstraction the tinySDR hardware argument
// implies: the platform's radio/FPGA substrate does not care which IoT PHY
// runs on it, so neither should the experiment harness. Adding a protocol
// means implementing Modem and calling Register — the scenario grammar's
// interferer terms, the eval sweeps' -phy selection and the facade's
// OpenLink all pick it up without further wiring.
package phy

import (
	"time"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Modem is one protocol's physical layer: waveform synthesis, packet
// recovery and the link-budget anchors, all tied to a single radio profile
// so sensitivity and noise floor can never come from different noise
// figures.
//
// Modems own scratch arenas (demodulator FFT state, filter history) and are
// NOT safe for concurrent use: give each goroutine its own instance.
// Construction is deterministic, so copies behave identically — the
// property the trial-parallel sweeps rely on.
type Modem interface {
	// Name is the protocol's registry name, e.g. "lora".
	Name() string
	// SampleRate is the baseband rate of Modulate/Demodulate waveforms in
	// Hz.
	SampleRate() float64
	// Airtime returns the on-air duration of a packet carrying an n-byte
	// payload.
	Airtime(payloadBytes int) time.Duration
	// Radio is the receive-chain profile the modem is calibrated against;
	// SensitivityDBm and NoiseFloorDBm both derive from it.
	Radio() channel.RadioProfile
	// SensitivityDBm is the minimum received power for reliable packet
	// recovery.
	SensitivityDBm() float64
	// NoiseFloorDBm is the receiver noise integrated over the modem's full
	// sampled bandwidth — the figure to hand to a Noise stage or AWGN
	// channel driving this modem.
	NoiseFloorDBm() float64
	// ModulateInto synthesizes the packet waveform for a payload into
	// dst's capacity and returns the resized slice. The LoRa modem writes
	// every chirp in place, so steady-state callers reusing one buffer
	// see no waveform allocation; protocols whose synthesis chains
	// allocate internally (BLE's Gaussian filter, the backscatter tag)
	// still honor the append-into-dst shape, and the Link pipeline caches
	// the waveform of a repeated payload so no protocol pays per-packet
	// synthesis in a sweep.
	ModulateInto(dst iq.Samples, payload []byte) (iq.Samples, error)
	// DemodulateFrom recovers one packet from sig and appends its payload
	// to dst[:0]. Undecodable or corrupt (failed CRC) packets return an
	// error — the Link pipeline counts them as losses.
	DemodulateFrom(dst []byte, sig iq.Samples) ([]byte, error)
}

// SymbolStreamer is an optional capability of modems with an aligned
// symbol-stream hot path (the LoRa chirp-symbol experiments): with a
// capacity-sized dst the demod loop performs zero heap allocations, so the
// composed-scenario sweeps keep their 0 allocs/op contract through the
// Modem interface.
type SymbolStreamer interface {
	Modem
	DemodAlignedSymbolsInto(dst []int, sig iq.Samples) []int
}
