package phy

import (
	"fmt"
	"sort"
	"sync"
)

// Builder constructs a protocol's default modem. Builders must be pure:
// every call returns a fresh, identically-configured modem, so worker
// pools can build per-goroutine instances that behave bit-identically.
type Builder func() (Modem, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a protocol to the registry under its name. It panics on an
// empty name or a duplicate registration — protocol wiring is a
// program-structure error, not a runtime condition.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("phy: Register needs a name and a builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("phy: protocol %q registered twice", name))
	}
	registry[name] = b
}

// Names returns every registered protocol name in sorted order — the
// deterministic iteration order sweeps and CLIs must use so results are
// independent of registration order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Registered reports whether a protocol name is known.
func Registered(name string) bool {
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// New builds the named protocol's default modem.
func New(name string) (Modem, error) {
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("phy: unknown protocol %q (registered: %v)", name, Names())
	}
	return b()
}
