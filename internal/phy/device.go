package phy

import "github.com/uwsdr/tinysdr/internal/iq"

// The device seam: Source and Sink are the two directions of a sample
// device, mirroring the Pluto/SoapySDR-class abstractions of real SDR
// stacks. Demod code never learns whether its samples came from the live
// modulator-and-scenario pipeline, a stored trace, or (later) hardware —
// a Link binds whichever side is present and the measurement loop is
// unchanged. internal/trace implements both sides for the record/replay
// store; a hardware backend would implement them over a USB or network
// stream.

// Source supplies received baseband packets by index. A replay Link pulls
// packet k from its Source instead of running the modulator and channel,
// so a stored capture reproduces a live run bit for bit.
//
// Sources own scratch (the returned slice is typically reused between
// calls) and are single-goroutine, like the modems they stand in for;
// trial-parallel replay gives each worker its own Source.
type Source interface {
	// Name identifies the device, e.g. "trace:lora".
	Name() string
	// SampleRate is the baseband rate of the packets in Hz; it must match
	// the RX modem the source is bound to.
	SampleRate() float64
	// Packets is how many packet indices the source can serve; ReadPacket
	// accepts 0..Packets()-1.
	Packets() int
	// ReadPacket returns the received waveform of packet k. The slice is
	// valid until the next call.
	ReadPacket(k int) (iq.Samples, error)
}

// Sink observes received baseband packets as a Link produces them — the
// capture tap on the channel output. A recording Sink models the receive
// ADC: it MAY quantize sig in place (the converter the real platform puts
// between antenna and demodulator), and the Link demodulates the waveform
// the Sink left behind. That contract is what makes replay exact: the
// recorded run itself demodulates the quantized samples a later replay
// will decode, so live and replayed metrics are byte-identical rather
// than merely close.
//
// Sinks are single-goroutine; packets arrive in ascending k order within
// one Run/Probe sequence.
type Sink interface {
	// Name identifies the device, e.g. "trace-recorder".
	Name() string
	// SampleRate is the baseband rate the sink expects in Hz.
	SampleRate() float64
	// WritePacket hands over packet k's received waveform. It may modify
	// sig in place (quantization); it must not retain the slice.
	WritePacket(k int, sig iq.Samples) error
}
