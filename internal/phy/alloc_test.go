package phy

import (
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// TestSymbolDemodZeroAllocsThroughModem pins the acceptance contract of the
// API redesign: the composed-scenario symbol-demod hot path must stay at
// zero heap allocations per trial when driven through the phy.Modem
// interface (SymbolStreamer capability) instead of the concrete lora
// demodulator. Interface dispatch must not give back what the
// zero-allocation DSP path bought.
func TestSymbolDemodZeroAllocsThroughModem(t *testing.T) {
	m, err := New("lora")
	if err != nil {
		t.Fatal(err)
	}
	sm, ok := m.(SymbolStreamer)
	if !ok {
		t.Fatal("lora modem does not expose the aligned-symbol hot path")
	}

	p := lora.DefaultParams()
	mod, err := lora.NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	shifts := []int{37, 129, 5, 201}
	sig, err := mod.ModulateSymbols(shifts)
	if err != nil {
		t.Fatal(err)
	}
	interf, err := mod.ModulateSymbols([]int{88, 12})
	if err != nil {
		t.Fatal(err)
	}
	sc := channel.NewScenario(
		channel.NewGain(-110),
		channel.NewFlatFading(10),
		channel.NewCFO(100, 50, 10, p.SampleRate()),
		channel.NewInterferer("lora", interf, -120, 256),
		channel.NewNoise(-116),
	)
	rx := make([]complex128, len(sig))
	dst := make([]int, 0, len(shifts))
	sc.Reset(1, 0)
	sm.DemodAlignedSymbolsInto(dst, sc.ApplyInto(rx, sig)) // warm scratch
	trial := 0
	if n := testing.AllocsPerRun(50, func() {
		sc.Reset(1, trial)
		trial++
		sm.DemodAlignedSymbolsInto(dst, sc.ApplyInto(rx, sig))
	}); n != 0 {
		t.Errorf("scenario+demod through Modem interface allocates %.1f/op, want 0", n)
	}
}

// TestModulateIntoSteadyStateReusesBuffer verifies the ModulateInto side of
// the zero-alloc contract: once the waveform buffer has grown, re-modulating
// the same packet reuses it (the registry modem's waveform path performs no
// per-packet waveform allocation).
func TestModulateIntoSteadyStateReusesBuffer(t *testing.T) {
	m, err := lora.NewModem(lora.DefaultParams(), radio.SX1276Profile())
	if err != nil {
		t.Fatal(err)
	}
	buf, err := m.ModulateInto(nil, goldenPayload)
	if err != nil {
		t.Fatal(err)
	}
	again, err := m.ModulateInto(buf, goldenPayload)
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &buf[0] {
		t.Error("ModulateInto reallocated a sufficient buffer")
	}
}
