package phy

import (
	"bytes"
	"errors"
	"fmt"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// errDevice marks Source/Sink I/O failures inside the pipeline. Probe and
// Run propagate these as hard errors — a truncated trace or a full disk is
// a harness problem, never a packet loss.
var errDevice = errors.New("phy: device I/O")

// Link binds a TX modem, a composed channel scenario and an RX modem into
// one reproducible pipeline: modulate → scenario → demodulate. Every
// packet's channel randomness is a fixed function of (Seed, packet index),
// so a Link measurement is bit-identical wherever it runs — the same
// determinism contract the eval sweeps are built on.
//
// A Link owns waveform scratch and wraps single-goroutine modems, so it is
// NOT safe for concurrent use; trial-parallel sweeps give each worker its
// own Link.
type Link struct {
	tx, rx   Modem
	scenario *channel.Scenario
	seed     int64
	sent     int

	// src replaces the modulate→scenario front half when non-nil: packet
	// waveforms come from the device (a stored trace, later hardware)
	// instead of the live pipeline. tap observes (and may quantize) every
	// received waveform before demodulation — the capture seam.
	src Source
	tap Sink

	txBuf   iq.Samples
	txValid bool   // txBuf holds the waveform for lastPld
	lastPld []byte // payload txBuf currently encodes
	rxBuf   iq.Samples
	pld     []byte
}

// Stats summarizes one Link measurement run.
type Stats struct {
	// Packets is how many packets were pushed through the pipeline.
	Packets int
	// Failures counts packets that failed to demodulate or decoded to the
	// wrong payload.
	Failures int
	// PER is Failures/Packets.
	PER float64
	// RSSIdBm is the mean received power measured at the scenario output
	// across the run (not the configured budget: fading, interference and
	// noise all land in it).
	RSSIdBm float64
}

// Open binds the pipeline. The TX and RX modems must agree on the sample
// rate (the scenario operates at that common rate); a nil scenario means an
// identity channel. Seed drives all channel randomness.
func Open(tx, rx Modem, sc *channel.Scenario, seed int64) (*Link, error) {
	if tx == nil || rx == nil {
		return nil, fmt.Errorf("phy: link needs a TX and an RX modem")
	}
	if tx.SampleRate() != rx.SampleRate() {
		return nil, fmt.Errorf("phy: TX %s at %g Hz vs RX %s at %g Hz — resample one side first",
			tx.Name(), tx.SampleRate(), rx.Name(), rx.SampleRate())
	}
	if sc == nil {
		sc = channel.NewScenario()
	}
	return &Link{tx: tx, rx: rx, scenario: sc, seed: seed}, nil
}

// OpenReplay binds a Source to an RX modem: packet k comes from the
// device instead of the live modulator and channel, and demodulation,
// loss accounting and power measurement run exactly as in a live Link.
// The source and modem must agree on the sample rate. Replay needs no
// seed — every waveform is literal — so runs are deterministic by
// construction at any worker count.
func OpenReplay(src Source, rx Modem) (*Link, error) {
	if src == nil || rx == nil {
		return nil, fmt.Errorf("phy: replay link needs a source and an RX modem")
	}
	if src.SampleRate() != rx.SampleRate() {
		return nil, fmt.Errorf("phy: source %s at %g Hz vs RX %s at %g Hz — resample one side first",
			src.Name(), src.SampleRate(), rx.Name(), rx.SampleRate())
	}
	return &Link{rx: rx, src: src, scenario: channel.NewScenario()}, nil
}

// Tap installs a Sink on the channel output: every subsequent packet's
// received waveform is handed to it (which may quantize in place — see
// Sink) before demodulation. A nil sink removes the tap. The sink must
// match the link's RX sample rate.
func (l *Link) Tap(s Sink) error {
	if s != nil && s.SampleRate() != l.rx.SampleRate() {
		return fmt.Errorf("phy: tap %s at %g Hz vs RX %s at %g Hz",
			s.Name(), s.SampleRate(), l.rx.Name(), l.rx.SampleRate())
	}
	l.tap = s
	return nil
}

// Source returns the bound replay source, or nil for a live link.
func (l *Link) Source() Source { return l.src }

// Rebind swaps the channel scenario and seed while keeping the modems,
// scratch buffers and cached TX waveform: a sweep rebinds its worker's
// Link per grid point instead of reopening, so the victim packet is
// synthesized once per worker, not once per point. Send's packet counter
// restarts with the new binding.
func (l *Link) Rebind(sc *channel.Scenario, seed int64) {
	if sc == nil {
		sc = channel.NewScenario()
	}
	l.scenario = sc
	l.seed = seed
	l.sent = 0
}

// TX returns the transmit-side modem.
func (l *Link) TX() Modem { return l.tx }

// RX returns the receive-side modem.
func (l *Link) RX() Modem { return l.rx }

// Scenario returns the composed channel between the modems.
func (l *Link) Scenario() *channel.Scenario { return l.scenario }

// Send pushes one packet through the pipeline and returns the payload the
// RX modem recovered (valid until the next call). Each call advances the
// channel to the next packet index, so a sequence of Sends is
// deterministic in call order.
func (l *Link) Send(payload []byte) ([]byte, error) {
	got, _, err := l.transfer(l.sent, payload)
	l.sent++
	return got, err
}

// ensureWave fills txBuf with the payload's waveform. Modulation is
// deterministic, so a repeated payload reuses the cached waveform — a Run
// sweep synthesizes its packet once, not once per trial.
func (l *Link) ensureWave(payload []byte) error {
	if l.txValid && bytes.Equal(payload, l.lastPld) {
		return nil
	}
	l.txValid = false
	if l.src == nil {
		wave, err := l.tx.ModulateInto(l.txBuf, payload)
		if err != nil {
			return err
		}
		l.txBuf = wave
	}
	// A replay link never modulates: the payload is only the comparison
	// baseline for loss accounting.
	l.lastPld = append(l.lastPld[:0], payload...)
	l.txValid = true
	return nil
}

// transfer runs packet index k: modulate, apply the scenario for (seed, k),
// demodulate. All buffers are Link scratch; the returned rx waveform stays
// valid until the next call.
func (l *Link) transfer(k int, payload []byte) (got []byte, rx iq.Samples, err error) {
	if err := l.ensureWave(payload); err != nil {
		return nil, nil, err
	}
	return l.transferCached(k)
}

// transferCached runs packet index k against the already-ensured waveform.
// It never reads the caller's payload slice, so a payload that aliases the
// demod scratch (e.g. the slice a previous Send returned) cannot be
// clobbered mid-run.
func (l *Link) transferCached(k int) (got []byte, rx iq.Samples, err error) {
	if l.src != nil {
		// Replay: the stored waveform already includes the channel and
		// the capture quantization. Reading past the trace is a harness
		// bug, surfaced as an error rather than counted as packet loss.
		if k < 0 || k >= l.src.Packets() {
			return nil, nil, fmt.Errorf("%w: replay packet %d outside trace of %d", errDevice, k, l.src.Packets())
		}
		if rx, err = l.src.ReadPacket(k); err != nil {
			return nil, nil, fmt.Errorf("%w: replay packet %d: %w", errDevice, k, err)
		}
	} else {
		wave := l.txBuf
		if cap(l.rxBuf) < len(wave) {
			l.rxBuf = make(iq.Samples, len(wave))
		}
		l.scenario.Reset(l.seed, k)
		rx = l.scenario.ApplyInto(l.rxBuf[:len(wave)], wave)
	}
	if l.tap != nil {
		// The tap is the ADC model: it may quantize rx in place, and the
		// demodulator below sees what the tap left — which is exactly what
		// a replay of the capture will decode. A tap failure is an I/O
		// error (disk, encode), not a channel loss.
		if err := l.tap.WritePacket(k, rx); err != nil {
			return nil, rx, fmt.Errorf("%w: tap packet %d: %w", errDevice, k, err)
		}
	}
	got, err = l.rx.DemodulateFrom(l.pld, rx)
	if err != nil {
		return nil, rx, err
	}
	l.pld = got
	return got, rx, nil
}

// Probe pushes packet index k of payload through the pipeline and reports
// whether it was lost: a demodulation error or a recovered payload that
// differs from the transmitted one counts as a loss, exactly as Run counts
// failures. Because the channel draw is a fixed function of (seed, k), a
// sequence of Probes for k = 0..n-1 reproduces the first n packets of
// Run(payload, m) for any m >= n — the prefix property the adaptive
// sequential-stopping sweeps rely on. A payload the TX modem cannot
// modulate is returned as an error, not a loss.
func (l *Link) Probe(payload []byte, k int) (lost bool, err error) {
	if err := l.ensureWave(payload); err != nil {
		return false, err
	}
	got, _, err := l.transferCached(k)
	if errors.Is(err, errDevice) {
		return false, err
	}
	return err != nil || !bytes.Equal(got, l.lastPld), nil
}

// Run measures the link: the payload is sent packets times (packet indices
// 0..packets-1, independent of any prior Sends), and the PER and mean
// received power are returned. A packet counts as failed when demodulation
// errors or the recovered payload differs from the transmitted one; a
// payload the TX modem cannot modulate at all is the caller's error, not a
// channel loss, and is returned as such.
func (l *Link) Run(payload []byte, packets int) (Stats, error) {
	if packets <= 0 {
		return Stats{}, fmt.Errorf("phy: run needs at least one packet, got %d", packets)
	}
	if l.src != nil && packets > l.src.Packets() {
		return Stats{}, fmt.Errorf("phy: run of %d packets exceeds trace of %d", packets, l.src.Packets())
	}
	if err := l.ensureWave(payload); err != nil {
		return Stats{}, err
	}
	st := Stats{Packets: packets}
	var rxPowerMilliwatts float64
	for k := 0; k < packets; k++ {
		// Compare against the Link-owned snapshot (l.lastPld), never the
		// caller's slice: if that slice aliases the demod scratch, a
		// decode would overwrite the comparison baseline in place.
		got, rx, err := l.transferCached(k)
		if errors.Is(err, errDevice) {
			return Stats{}, err
		}
		if err != nil || !bytes.Equal(got, l.lastPld) {
			st.Failures++
		}
		rxPowerMilliwatts += rx.Power()
	}
	st.PER = float64(st.Failures) / float64(packets)
	st.RSSIdBm = iq.MilliwattsToDBm(rxPowerMilliwatts / float64(packets))
	return st, nil
}
