package phy

// Default protocol registrations. Each builder constructs the protocol's
// canonical configuration with its calibrated radio profile; importing phy
// is enough to make every platform PHY available to the registry, the
// scenario grammar and the -phy experiment selection.

import (
	"github.com/uwsdr/tinysdr/internal/backscatter"
	"github.com/uwsdr/tinysdr/internal/ble"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// DefaultBLESPS is the registry BLE modem's oversampling: 4 samples per
// symbol matches the AT86RF215's 4 MHz I/Q interface at 1 Mbps.
const DefaultBLESPS = 4

func init() {
	Register("lora", func() (Modem, error) {
		// The paper's case-study configuration against the SX1276-class
		// chain it is calibrated to (-126 dBm at SF8/BW125).
		return lora.NewModem(lora.DefaultParams(), radio.SX1276Profile())
	})
	Register("ble", func() (Modem, error) {
		// The CC2650 chain of Fig. 12 (-94 dBm beacon sensitivity).
		return ble.NewModem(DefaultBLESPS, radio.CC2650Profile())
	})
	Register("backscatter", func() (Modem, error) {
		// The §7 subcarrier reader on the platform's own I/Q chain.
		return backscatter.NewModem(backscatter.DefaultConfig(), radio.AT86RF215Profile())
	})
}
