package phy

import (
	"bytes"
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// goldenPayload is the canonical round-trip payload: it has both bit
// values in every byte position a slicer could threshold on, and fits
// BLE's 31-byte advertising limit.
var goldenPayload = []byte("tinysdr-phy-golden")

// TestRegistryCoversPlatformPHYs pins the seed registrations: the three
// protocols of the paper, in sorted (deterministic) order.
func TestRegistryCoversPlatformPHYs(t *testing.T) {
	want := []string{"backscatter", "ble", "lora"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		if !Registered(name) {
			t.Errorf("Registered(%q) = false", name)
		}
	}
	if Registered("wifi") {
		t.Error("Registered(wifi) = true")
	}
	if _, err := New("wifi"); err == nil {
		t.Error("New(wifi) succeeded")
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() { Register("lora", func() (Modem, error) { return New("lora") }) })
	mustPanic("empty", func() { Register("", func() (Modem, error) { return New("lora") }) })
	mustPanic("nil builder", func() { Register("new-phy", nil) })
}

// TestModemContract checks the interface invariants every registered PHY
// must satisfy: positive rates, airtime growing with payload, a
// sensitivity above the bit-bandwidth floor, and sensitivity/noise floor
// derived from one radio profile.
func TestModemContract(t *testing.T) {
	for _, name := range Names() {
		m, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("%s: Name() = %q", name, m.Name())
		}
		if m.SampleRate() <= 0 {
			t.Errorf("%s: sample rate %v", name, m.SampleRate())
		}
		if a, b := m.Airtime(4), m.Airtime(16); a <= 0 || b <= a {
			t.Errorf("%s: airtime not increasing: %v then %v", name, a, b)
		}
		prof := m.Radio()
		if prof.Name == "" || prof.NoiseFigureDB <= 0 {
			t.Errorf("%s: radio profile %+v", name, prof)
		}
		if got, want := m.NoiseFloorDBm(), prof.NoiseFloorDBm(m.SampleRate()); got != want {
			t.Errorf("%s: NoiseFloorDBm %v not derived from the radio profile (%v)", name, got, want)
		}
		if m.SensitivityDBm() <= -174 {
			t.Errorf("%s: sensitivity %v below thermal", name, m.SensitivityDBm())
		}
	}
}

// TestGoldenRoundTripEveryPHY is the protocol-generic loopback test that
// replaces the per-protocol scenario smoke tests: every registered PHY
// must round-trip the golden payload exactly through an identity scenario,
// and keep a low PER through the reference scenario (flat Rician fading, a
// small oscillator offset and receiver noise, 18 dB above sensitivity).
func TestGoldenRoundTripEveryPHY(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			m, err := New(name)
			if err != nil {
				t.Fatal(err)
			}

			// Identity: exact payload recovery, no channel at all.
			wave, err := m.ModulateInto(nil, goldenPayload)
			if err != nil {
				t.Fatal(err)
			}
			if len(wave) == 0 || wave.Power() == 0 {
				t.Fatal("empty waveform")
			}
			if wantSamples := m.Airtime(len(goldenPayload)).Seconds() * m.SampleRate(); float64(len(wave)) < wantSamples {
				t.Errorf("waveform %d samples, shorter than airtime %v implies (%.0f)",
					len(wave), m.Airtime(len(goldenPayload)), wantSamples)
			}
			got, err := m.DemodulateFrom(nil, wave)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, goldenPayload) {
				t.Fatalf("identity round trip = %q, want %q", got, goldenPayload)
			}

			// Reference scenario through the Link pipeline.
			tx, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			rssi := m.SensitivityDBm() + 18
			sc := channel.NewScenario(
				channel.NewGain(rssi),
				channel.NewFlatFading(iq.FromDB(12)),
				channel.NewCFO(0, 50, 0, m.SampleRate()),
				channel.NewNoise(m.NoiseFloorDBm()),
			)
			link, err := Open(tx, m, sc, 7)
			if err != nil {
				t.Fatal(err)
			}
			st, err := link.Run(goldenPayload, 12)
			if err != nil {
				t.Fatal(err)
			}
			if st.PER > 0.25 {
				t.Errorf("reference-scenario PER = %.2f at %0.f dBm (sens %.0f), want <= 0.25",
					st.PER, rssi, m.SensitivityDBm())
			}
			// The measured RSSI must track the configured budget: fading is
			// unit-mean and noise sits 18 dB down, so a few dB of slack
			// covers both.
			if st.RSSIdBm < rssi-4 || st.RSSIdBm > rssi+4 {
				t.Errorf("measured RSSI %.1f dBm, configured %.1f dBm", st.RSSIdBm, rssi)
			}
		})
	}
}

// TestLinkDeterministicAndSequential pins the Link randomness contract:
// Run is a fixed function of (seed, packet index), and Send advances
// packet indices in call order.
func TestLinkDeterministicAndSequential(t *testing.T) {
	open := func(seed int64) *Link {
		tx, err := New("lora")
		if err != nil {
			t.Fatal(err)
		}
		rx, err := New("lora")
		if err != nil {
			t.Fatal(err)
		}
		sc := channel.NewScenario(
			channel.NewGain(rx.SensitivityDBm()+2),
			channel.NewNoise(rx.NoiseFloorDBm()),
		)
		link, err := Open(tx, rx, sc, seed)
		if err != nil {
			t.Fatal(err)
		}
		return link
	}
	a, err := open(3).Run(goldenPayload, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := open(3).Run(goldenPayload, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}

	link := open(11)
	if _, err := link.Send(goldenPayload); err != nil {
		t.Fatal(err)
	}
	if got, err := link.Send(goldenPayload); err != nil || !bytes.Equal(got, goldenPayload) {
		t.Fatalf("second Send = %q, %v", got, err)
	}
	// The waveform cache must not leak across payload changes: a
	// different payload re-modulates and round-trips exactly.
	other := []byte("a-different-payload!")
	if got, err := link.Send(other); err != nil || !bytes.Equal(got, other) {
		t.Fatalf("Send after payload change = %q, %v", got, err)
	}
	if got, err := link.Send(goldenPayload); err != nil || !bytes.Equal(got, goldenPayload) {
		t.Fatalf("Send switching back = %q, %v", got, err)
	}
}

// TestRunPayloadAliasingDemodScratch pins the aliasing contract: handing
// Run the very slice a previous Send returned (which aliases the Link's
// demod scratch) must still measure PER against a stable snapshot of the
// payload — a corrupted decode must not rewrite the comparison baseline
// in place. Backscatter is the sensitive case: no CRC, the slicer always
// returns bytes.
func TestRunPayloadAliasingDemodScratch(t *testing.T) {
	tx, err := New("backscatter")
	if err != nil {
		t.Fatal(err)
	}
	rx, err := New("backscatter")
	if err != nil {
		t.Fatal(err)
	}
	// A clean link first, to get a Send-returned slice aliasing l.pld.
	link, err := Open(tx, rx, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := link.Send(goldenPayload)
	if err != nil {
		t.Fatal(err)
	}
	// Now wreck the channel (noise far above the tag sideband) and run
	// with the aliased slice: PER must be ~1, not the ~0 an in-place
	// overwrite of the baseline would fake.
	link.Rebind(channel.NewScenario(
		channel.NewGain(-40),
		channel.NewNoise(-20),
	), 5)
	st, err := link.Run(pkt, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.PER < 0.9 {
		t.Errorf("dead-link PER = %.2f with aliased payload, want ~1 (baseline clobbered?)", st.PER)
	}
}

// TestLoRaModemRejectsImplicitHeader pins construction-time validation:
// an implicit-header configuration must fail at NewModem, not as a silent
// 100% packet loss at receive time.
func TestLoRaModemRejectsImplicitHeader(t *testing.T) {
	p := lora.DefaultParams()
	p.ExplicitHeader = false
	if _, err := lora.NewModem(p, radio.SX1276Profile()); err == nil {
		t.Error("implicit-header params accepted by NewModem")
	}
}

func TestOpenRejectsMismatchedRates(t *testing.T) {
	loraM, err := New("lora")
	if err != nil {
		t.Fatal(err)
	}
	bleM, err := New("ble")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(loraM, bleM, nil, 1); err == nil {
		t.Error("mismatched sample rates accepted")
	}
	if _, err := Open(nil, loraM, nil, 1); err == nil {
		t.Error("nil TX accepted")
	}
	if link, err := Open(loraM, loraM, nil, 1); err != nil || link.Scenario() == nil {
		t.Errorf("nil scenario not defaulted to identity: %v", err)
	}
}

func TestLinkAccessorsAndRunValidation(t *testing.T) {
	tx, err := New("lora")
	if err != nil {
		t.Fatal(err)
	}
	rx, err := New("lora")
	if err != nil {
		t.Fatal(err)
	}
	link, err := Open(tx, rx, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if link.TX() != tx || link.RX() != rx {
		t.Error("TX/RX accessors do not return the bound modems")
	}
	if _, err := link.Run(goldenPayload, 0); err == nil {
		t.Error("Run with zero packets accepted")
	}
	// An unmodulatable payload is the caller's error, not 100% PER: a BLE
	// link rejects payloads over the 31-byte advertising limit up front.
	btx, err := New("ble")
	if err != nil {
		t.Fatal(err)
	}
	brx, err := New("ble")
	if err != nil {
		t.Fatal(err)
	}
	blink, err := Open(btx, brx, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blink.Run(make([]byte, 40), 4); err == nil {
		t.Error("oversize BLE payload reported as channel loss, want modulation error")
	}
	if d := link.TX().Airtime(0); d <= 0 {
		t.Errorf("zero-payload airtime %v", d)
	}
}
