package flash

import (
	"fmt"
	"time"
)

// SDCard models the microSD interface on tinySDR. The board wires the card
// to the FPGA's SPI block; SPI mode sustains the 104 Mbps needed to record
// the 4 MHz x 2 x 13-bit I/Q stream in real time (§3.2.2).
type SDCard struct {
	capacity int
	used     int
}

// SPIRate is the microSD SPI-mode throughput in bits per second.
const SPIRate = 104e6

// IQStreamRate is the raw I/Q sample stream rate the card must absorb for
// real-time capture: 4 Mwords/s x 32-bit LVDS words, of which 26 bits are
// sample payload. The SPI block strips framing, so the stored rate is
// 4 MHz x 26 bits = 104 Mbps.
const IQStreamRate = 4e6 * 26

// NewSDCard returns a card with the given capacity in bytes.
func NewSDCard(capacity int) *SDCard {
	return &SDCard{capacity: capacity}
}

// Append records n more bytes, failing when the card is full.
func (c *SDCard) Append(n int) error {
	if n < 0 {
		return fmt.Errorf("flash: negative append %d", n)
	}
	if c.used+n > c.capacity {
		return fmt.Errorf("flash: sd card full (%d of %d bytes used)", c.used, c.capacity)
	}
	c.used += n
	return nil
}

// Used returns the bytes recorded so far.
func (c *SDCard) Used() int { return c.used }

// WriteTime returns the SPI-mode transfer time for n bytes.
func (c *SDCard) WriteTime(n int) time.Duration {
	return time.Duration(float64(n*8) / SPIRate * float64(time.Second))
}

// CanSustainIQStream reports whether SPI mode keeps up with the live I/Q
// stream — the design check in §3.2.2 that justified using SPI mode.
func CanSustainIQStream() bool { return SPIRate >= IQStreamRate }
