// Package flash models the non-volatile storage on the tinySDR board: the
// MX25R6435F 8 MB SPI NOR flash that holds FPGA bitstreams and MCU firmware
// for the OTA system, and the microSD card reachable from the FPGA.
//
// The NOR model enforces real flash semantics: writes can only clear bits,
// so regions must be erased (to 0xFF) before programming, and erases happen
// in 4 KB sectors. Timing helpers expose transfer durations; models never
// advance the simulation clock themselves.
package flash

import (
	"fmt"
	"time"
)

// MX25R6435F geometry and interface timing.
const (
	// Size is the flash capacity: 64 Mbit = 8 MB.
	Size = 8 * 1024 * 1024
	// SectorSize is the erase granularity.
	SectorSize = 4096
	// PageSize is the program granularity.
	PageSize = 256

	// spiWriteRate is the SPI programming throughput used by the OTA path.
	spiWriteRate = 8e6 // bits/s effective, incl. page program time
	// quadReadRate is the quad-SPI read rate the FPGA boots from:
	// 62 MHz x 4 lines (§3.4), which yields the 22 ms configuration time.
	quadReadRate = 62e6 * 4 // bits/s
	// eraseTimePerSector is the typical 4 KB sector erase time.
	eraseTimePerSector = 35 * time.Millisecond

	// StandbyPowerW is the deep-power-down draw.
	StandbyPowerW = 1.3e-6
	// ActivePowerW is the draw during program/erase.
	ActivePowerW = 15e-3
	// ReadPowerW is the draw during quad-SPI read.
	ReadPowerW = 10e-3
)

// Flash is one MX25R6435F device. Storage is sector-sparse: a sector with
// no entry in the map is in the erased state (all 0xFF), so a fleet of
// thousands of simulated nodes costs memory proportional to the bytes each
// node actually stages, not 8 MB per chip.
type Flash struct {
	sectors map[int][]byte
	faults  WriteFaults
}

// WriteFaults injects program-time faults — the chaos harness's flash
// seam (implemented by fault.NodeFaults). FaultWrite is consulted once per
// Program call after NOR validation: a non-nil error fails the write with
// the device untouched; a non-negative flipByte flips the given bit of the
// stored copy (bit-rot), silently corrupting what was written without
// touching the caller's buffer.
type WriteFaults interface {
	FaultWrite(addr int, data []byte) (flipByte, flipBit int, err error)
}

// New returns a flash chip in the erased state (all 0xFF), as shipped.
func New() *Flash {
	return &Flash{sectors: make(map[int][]byte)}
}

// SetWriteFaults installs (or, with nil, removes) the program-time fault
// injector. Reads and erases are unaffected.
func (f *Flash) SetWriteFaults(w WriteFaults) { f.faults = w }

// sector returns the backing storage for one sector, materializing it in
// the erased state on first touch.
func (f *Flash) sector(idx int) []byte {
	s, ok := f.sectors[idx]
	if !ok {
		s = make([]byte, SectorSize)
		for i := range s {
			s[i] = 0xFF
		}
		f.sectors[idx] = s
	}
	return s
}

func (f *Flash) bounds(addr, n int) error {
	if addr < 0 || n < 0 || addr+n > Size {
		return fmt.Errorf("flash: access [%#x, %#x) outside %d-byte device", addr, addr+n, Size)
	}
	return nil
}

// Erase resets whole sectors covering [addr, addr+n) to 0xFF. addr must be
// sector-aligned, mirroring the real command set.
func (f *Flash) Erase(addr, n int) error {
	if addr%SectorSize != 0 {
		return fmt.Errorf("flash: erase address %#x not sector-aligned", addr)
	}
	if err := f.bounds(addr, n); err != nil {
		return err
	}
	end := addr + n
	if rem := end % SectorSize; rem != 0 {
		end += SectorSize - rem
	}
	if end > Size {
		end = Size
	}
	// Erased sectors revert to the sparse representation.
	for idx := addr / SectorSize; idx < end/SectorSize; idx++ {
		delete(f.sectors, idx)
	}
	return nil
}

// Program writes data at addr. NOR semantics: each written byte may only
// clear bits of the stored byte; programming over non-erased data that would
// require setting a bit fails, catching missing-erase protocol bugs.
func (f *Flash) Program(addr int, data []byte) error {
	if err := f.bounds(addr, len(data)); err != nil {
		return err
	}
	// Validate the whole write against NOR semantics before mutating, so a
	// rejected program leaves the device untouched.
	err := forSpans(addr, len(data), func(idx, in, off, span int) error {
		s, ok := f.sectors[idx]
		if !ok {
			return nil // erased sector accepts anything
		}
		for i := 0; i < span; i++ {
			if cur, b := s[in+i], data[off+i]; cur&b != b {
				return fmt.Errorf("flash: program at %#x requires erase (stored %#02x, want %#02x)",
					addr+off+i, cur, b)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	flipByte, flipBit := -1, 0
	if f.faults != nil {
		if flipByte, flipBit, err = f.faults.FaultWrite(addr, data); err != nil {
			return err
		}
	}
	if err := forSpans(addr, len(data), func(idx, in, off, span int) error {
		copy(f.sector(idx)[in:in+span], data[off:off+span])
		return nil
	}); err != nil {
		return err
	}
	// Bit-rot corrupts the stored copy only, never the caller's buffer.
	if flipByte >= 0 && flipByte < len(data) {
		at := addr + flipByte
		f.sector(at / SectorSize)[at%SectorSize] ^= 1 << (flipBit & 7)
	}
	return nil
}

// Read copies n bytes starting at addr.
func (f *Flash) Read(addr, n int) ([]byte, error) {
	if err := f.bounds(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	_ = forSpans(addr, n, func(idx, in, off, span int) error {
		if s, ok := f.sectors[idx]; ok {
			copy(out[off:off+span], s[in:in+span])
		} else {
			for i := off; i < off+span; i++ {
				out[i] = 0xFF
			}
		}
		return nil
	})
	return out, nil
}

// forSpans decomposes the device range [addr, addr+n) into per-sector
// spans, calling fn with the sector index, the offset into that sector,
// the offset into the caller's buffer, and the span length. It stops at
// the first error.
func forSpans(addr, n int, fn func(idx, in, off, span int) error) error {
	for off := 0; off < n; {
		idx := (addr + off) / SectorSize
		in := (addr + off) % SectorSize
		span := SectorSize - in
		if span > n-off {
			span = n - off
		}
		if err := fn(idx, in, off, span); err != nil {
			return err
		}
		off += span
	}
	return nil
}

// ProgramTime returns how long SPI programming of n bytes takes.
func ProgramTime(n int) time.Duration {
	return time.Duration(float64(n*8) / spiWriteRate * float64(time.Second))
}

// QuadReadTime returns how long a quad-SPI read of n bytes takes — the
// dominant term of the FPGA's 22 ms boot.
func QuadReadTime(n int) time.Duration {
	return time.Duration(float64(n*8) / quadReadRate * float64(time.Second))
}

// EraseTime returns how long erasing the sectors covering n bytes takes.
func EraseTime(n int) time.Duration {
	sectors := (n + SectorSize - 1) / SectorSize
	return time.Duration(sectors) * eraseTimePerSector
}
