package flash

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestNewFlashIsErased(t *testing.T) {
	f := New()
	got, err := f.Read(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0xFF {
			t.Fatalf("byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	f := New()
	data := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	if err := f.Program(100, data); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %x, want %x", got, data)
	}
}

func TestProgramWithoutEraseFails(t *testing.T) {
	f := New()
	if err := f.Program(0, []byte{0x0F}); err != nil {
		t.Fatal(err)
	}
	// 0x0F -> 0xF0 would need setting bits: must fail.
	if err := f.Program(0, []byte{0xF0}); err == nil {
		t.Fatal("overwrite without erase must fail")
	}
	// But clearing more bits is legal NOR behaviour.
	if err := f.Program(0, []byte{0x0E}); err != nil {
		t.Fatalf("bit-clearing program rejected: %v", err)
	}
}

func TestEraseRestoresProgrammability(t *testing.T) {
	f := New()
	if err := f.Program(0, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Erase(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Program(0, []byte{0xAB}); err != nil {
		t.Fatalf("program after erase failed: %v", err)
	}
}

func TestEraseWholeSectors(t *testing.T) {
	f := New()
	if err := f.Program(SectorSize-1, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Program(SectorSize, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	// Erasing 1 byte at sector 0 wipes all of sector 0, not sector 1.
	if err := f.Erase(0, 1); err != nil {
		t.Fatal(err)
	}
	b0, _ := f.Read(SectorSize-1, 1)
	b1, _ := f.Read(SectorSize, 1)
	if b0[0] != 0xFF {
		t.Error("sector 0 tail not erased")
	}
	if b1[0] != 0x00 {
		t.Error("sector 1 must be untouched")
	}
}

func TestEraseAlignment(t *testing.T) {
	f := New()
	if err := f.Erase(1, 10); err == nil {
		t.Fatal("unaligned erase must fail")
	}
}

func TestBounds(t *testing.T) {
	f := New()
	if err := f.Program(Size-1, []byte{1, 2}); err == nil {
		t.Error("out-of-bounds program accepted")
	}
	if _, err := f.Read(-1, 4); err == nil {
		t.Error("negative read accepted")
	}
	if err := f.Erase(Size, SectorSize); err == nil {
		t.Error("out-of-bounds erase accepted")
	}
}

func TestProgramReadAcrossSectors(t *testing.T) {
	// Writes and reads spanning sector boundaries must behave exactly as a
	// flat array, including the erased gap around the written span (the
	// sparse backing store materializes sectors on demand).
	f := New()
	data := make([]byte, 3*SectorSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	addr := 5*SectorSize - 100
	if err := f.Program(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(addr-8, len(data)+16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got[i] != 0xFF || got[len(got)-1-i] != 0xFF {
			t.Fatal("margin around programmed span not erased")
		}
	}
	if !bytes.Equal(got[8:8+len(data)], data) {
		t.Error("cross-sector round trip mismatch")
	}
	// A rejected program must leave the device untouched.
	if err := f.Program(addr, []byte{0xFF}); err == nil {
		t.Fatal("bit-setting program accepted")
	}
	got2, _ := f.Read(addr, 1)
	if got2[0] != data[0] {
		t.Error("failed program mutated flash")
	}
}

func TestReadFarErasedRegion(t *testing.T) {
	f := New()
	got, err := f.Read(Size-SectorSize, SectorSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0xFF {
			t.Fatal("untouched high region not erased")
		}
	}
}

func TestBitstreamFitsWithRoomForMultiple(t *testing.T) {
	// §3.1.2: 8 MB stores multiple 579 kB bitstreams plus MCU programs.
	const bitstream = 579 * 1024
	const mcuProg = 256 * 1024
	if n := Size / (bitstream + mcuProg); n < 9 {
		t.Errorf("flash stores %d firmware pairs, want >= 9", n)
	}
}

func TestQuadReadTimeMatchesBootBudget(t *testing.T) {
	// Reading a 579 kB bitstream over 62 MHz quad SPI ≈ 19 ms, within the
	// paper's 22 ms FPGA configuration time.
	d := QuadReadTime(579 * 1024)
	if d < 15*time.Millisecond || d > 22*time.Millisecond {
		t.Errorf("quad read of bitstream = %v, want ≈19 ms", d)
	}
}

func TestProgramTimeScalesLinearly(t *testing.T) {
	if ProgramTime(2000) != 2*ProgramTime(1000) {
		t.Error("program time must scale linearly")
	}
	if ProgramTime(0) != 0 {
		t.Error("zero bytes take zero time")
	}
}

func TestEraseTimeSectorGranular(t *testing.T) {
	if EraseTime(1) != EraseTime(SectorSize) {
		t.Error("sub-sector erase must cost one sector")
	}
	if EraseTime(SectorSize+1) != 2*EraseTime(SectorSize) {
		t.Error("erase must round up to sectors")
	}
}

func TestSDCard(t *testing.T) {
	c := NewSDCard(1024)
	if err := c.Append(1000); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(100); err == nil {
		t.Fatal("overflow accepted")
	}
	if c.Used() != 1000 {
		t.Errorf("used = %d", c.Used())
	}
	if err := c.Append(-1); err == nil {
		t.Fatal("negative append accepted")
	}
}

func TestSDCardSustainsIQStream(t *testing.T) {
	// The §3.2.2 design argument: SPI mode must sustain the 104 Mbps
	// real-time sample stream.
	if !CanSustainIQStream() {
		t.Fatal("SPI mode cannot sustain the I/Q stream; contradicts §3.2.2")
	}
}

// stubFaults scripts the WriteFaults hook for one Program call at a time.
type stubFaults struct {
	err      error
	flipByte int
	flipBit  int
	calls    int
}

func (s *stubFaults) FaultWrite(addr int, data []byte) (int, int, error) {
	s.calls++
	return s.flipByte, s.flipBit, s.err
}

func TestWriteFaultsErrorLeavesFlashUntouched(t *testing.T) {
	f := New()
	stub := &stubFaults{err: errFault, flipByte: -1}
	f.SetWriteFaults(stub)
	if err := f.Program(0, []byte{0x12, 0x34}); err == nil {
		t.Fatal("faulted program succeeded")
	}
	if stub.calls != 1 {
		t.Fatalf("hook called %d times", stub.calls)
	}
	got, _ := f.Read(0, 2)
	for i, b := range got {
		if b != 0xFF {
			t.Errorf("byte %d = %#x after failed write, want erased 0xFF", i, b)
		}
	}
}

func TestWriteFaultsBitFlipHitsStoredCopyOnly(t *testing.T) {
	f := New()
	f.SetWriteFaults(&stubFaults{flipByte: 1, flipBit: 3})
	data := []byte{0xF0, 0xFF, 0xF0}
	if err := f.Program(0, data); err != nil {
		t.Fatal(err)
	}
	if data[1] != 0xFF {
		t.Fatal("bit-rot mutated the caller's buffer")
	}
	got, _ := f.Read(0, 3)
	if got[1] != 0xFF^(1<<3) {
		t.Errorf("stored byte 1 = %#x, want %#x", got[1], 0xFF^(1<<3))
	}
	if got[0] != 0xF0 || got[2] != 0xF0 {
		t.Error("bit-rot spread beyond the flipped byte")
	}
}

func TestWriteFaultsClearedHookPassesWrites(t *testing.T) {
	f := New()
	stub := &stubFaults{err: errFault, flipByte: -1}
	f.SetWriteFaults(stub)
	f.SetWriteFaults(nil)
	if err := f.Program(0, []byte{0x55}); err != nil {
		t.Fatalf("program after clearing hook: %v", err)
	}
	if stub.calls != 0 {
		t.Error("cleared hook still consulted")
	}
}

var errFault = errors.New("stub write fault")
