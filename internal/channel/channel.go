// Package channel models the RF medium between simulated radios: thermal
// noise at the receiver, log-distance path loss for the campus testbed, and
// superposition of concurrent transmitters.
//
// Every stochastic element draws from a caller-seeded PRNG so experiments
// are reproducible bit-for-bit.
package channel

import (
	"math"
	"math/rand"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// ThermalNoiseDBmPerHz is the kT floor at 290 K.
const ThermalNoiseDBmPerHz = -174

// NoiseFloorDBm returns the receiver noise power integrated over a bandwidth
// for a given system noise figure.
func NoiseFloorDBm(bwHz, noiseFigureDB float64) float64 {
	return ThermalNoiseDBmPerHz + 10*math.Log10(bwHz) + noiseFigureDB
}

// AWGN is an additive-white-Gaussian-noise channel anchored at a receiver
// noise floor. The floor corresponds to the simulation sample rate: callers
// must pass the noise power integrated across the full sampled bandwidth.
type AWGN struct {
	rng      *rand.Rand
	floorDBm float64
	noise    iq.Samples // ApplyInto scratch, grown to the largest record
}

// NewAWGN returns a channel with the given integrated noise floor in dBm.
func NewAWGN(seed int64, floorDBm float64) *AWGN {
	return &AWGN{rng: rand.New(rand.NewSource(seed)), floorDBm: floorDBm}
}

// FloorDBm returns the configured noise floor.
func (c *AWGN) FloorDBm() float64 { return c.floorDBm }

// NoiseInto fills dst with receiver noise at the floor power and returns
// dst. It performs no allocation.
func (c *AWGN) NoiseInto(dst iq.Samples) iq.Samples {
	sigma := math.Sqrt(iq.DBmToMilliwatts(c.floorDBm) / 2)
	for i := range dst {
		dst[i] = complex(c.rng.NormFloat64()*sigma, c.rng.NormFloat64()*sigma)
	}
	return dst
}

// Noise returns n samples of receiver noise at the floor power.
func (c *AWGN) Noise(n int) iq.Samples {
	return c.NoiseInto(make(iq.Samples, n))
}

// ApplyInto writes sig received at the given RSSI into dst: the transmit
// waveform is scaled so its mean power equals rssiDBm, then summed with
// noise at the floor. len(dst) must equal len(sig); dst may alias sig only
// if they are the same slice. It draws exactly the same RNG sequence as
// Apply, so a sweep rewritten onto caller scratch reproduces Apply's
// output bit for bit, without the two allocations per packet.
func (c *AWGN) ApplyInto(dst, sig iq.Samples, rssiDBm float64) iq.Samples {
	if len(dst) != len(sig) {
		panic("channel: ApplyInto length mismatch")
	}
	copy(dst, sig)
	dst.ScaleToDBm(rssiDBm)
	return dst.Add(c.NoiseInto(c.scratchNoise(len(dst))))
}

// scratchNoise returns the channel's noise scratch buffer at size n.
func (c *AWGN) scratchNoise(n int) iq.Samples {
	if cap(c.noise) < n {
		c.noise = make(iq.Samples, n)
	}
	return c.noise[:n]
}

// Apply returns sig received at the given RSSI with noise added: the
// transmit waveform is scaled so its mean power equals rssiDBm, then summed
// with noise at the floor. The input is not modified.
func (c *AWGN) Apply(sig iq.Samples, rssiDBm float64) iq.Samples {
	return c.ApplyInto(make(iq.Samples, len(sig)), sig, rssiDBm)
}

// ApplyMulti superimposes several transmissions, each at its own RSSI and
// sample offset, over a noise record of length n — the §6 concurrent
// reception scenario. Source i is scaled to rssis[i] and added starting at
// offsets[i].
func (c *AWGN) ApplyMulti(n int, sigs []iq.Samples, rssis []float64, offsets []int) iq.Samples {
	if len(sigs) != len(rssis) || len(sigs) != len(offsets) {
		panic("channel: sigs/rssis/offsets length mismatch")
	}
	out := c.Noise(n)
	for i, s := range sigs {
		scaled := s.Clone()
		scaled.ScaleToDBm(rssis[i])
		out.AddAt(offsets[i], scaled)
	}
	return out
}

// SNRAt returns the SNR in dB of a signal at rssiDBm over this channel.
func (c *AWGN) SNRAt(rssiDBm float64) float64 { return rssiDBm - c.floorDBm }
