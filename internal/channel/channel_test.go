package channel

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func TestNoiseFloorKnownValues(t *testing.T) {
	// 125 kHz, NF 7 -> -116.03 dBm.
	got := NoiseFloorDBm(125e3, 7)
	if math.Abs(got-(-116.03)) > 0.05 {
		t.Errorf("floor = %v, want -116.03", got)
	}
	// 1 Hz, NF 0 -> -174.
	if got := NoiseFloorDBm(1, 0); math.Abs(got-(-174)) > 1e-9 {
		t.Errorf("floor = %v, want -174", got)
	}
}

func TestNoisePowerCalibration(t *testing.T) {
	c := NewAWGN(1, -100)
	n := c.Noise(200000)
	if got := n.PowerDBm(); math.Abs(got-(-100)) > 0.1 {
		t.Errorf("noise power = %v dBm, want -100 ± 0.1", got)
	}
}

func TestNoiseIsComplexCircular(t *testing.T) {
	c := NewAWGN(2, -90)
	n := c.Noise(100000)
	var rePow, imPow float64
	for _, x := range n {
		rePow += real(x) * real(x)
		imPow += imag(x) * imag(x)
	}
	ratio := rePow / imPow
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("I/Q power ratio = %v, want ~1", ratio)
	}
}

func TestNoiseDeterministicBySeed(t *testing.T) {
	a := NewAWGN(7, -90).Noise(64)
	b := NewAWGN(7, -90).Noise(64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical noise")
		}
	}
	cSamples := NewAWGN(8, -90).Noise(64)
	same := true
	for i := range a {
		if a[i] != cSamples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical noise")
	}
}

func TestApplySetsRSSIAndSNR(t *testing.T) {
	c := NewAWGN(3, -116)
	sig := make(iq.Samples, 100000)
	for i := range sig {
		ang := 2 * math.Pi * float64(i) / 32
		sig[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	rx := c.Apply(sig, -110)
	// Total power should be signal + noise ≈ -109 dBm.
	want := iq.MilliwattsToDBm(iq.DBmToMilliwatts(-110) + iq.DBmToMilliwatts(-116))
	if got := rx.PowerDBm(); math.Abs(got-want) > 0.2 {
		t.Errorf("rx power = %v, want %v", got, want)
	}
	if got := c.SNRAt(-110); math.Abs(got-6) > 1e-9 {
		t.Errorf("SNR = %v, want 6", got)
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	c := NewAWGN(4, -100)
	sig := iq.Samples{1, 1, 1, 1}
	c.Apply(sig, -50)
	for _, x := range sig {
		if x != 1 {
			t.Fatal("Apply mutated its input")
		}
	}
}

func TestApplyMultiSuperposition(t *testing.T) {
	c := NewAWGN(5, -150) // negligible noise
	s1 := make(iq.Samples, 1000)
	s2 := make(iq.Samples, 1000)
	for i := range s1 {
		s1[i], s2[i] = 1, 1
	}
	rx := c.ApplyMulti(2000, []iq.Samples{s1, s2}, []float64{-100, -100}, []int{0, 1000})
	// Each half carries one signal at -100 dBm.
	if got := rx[:1000].PowerDBm(); math.Abs(got-(-100)) > 0.3 {
		t.Errorf("first half = %v dBm", got)
	}
	if got := rx[1000:].PowerDBm(); math.Abs(got-(-100)) > 0.3 {
		t.Errorf("second half = %v dBm", got)
	}
}

func TestApplyMultiValidation(t *testing.T) {
	c := NewAWGN(6, -100)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched args must panic")
		}
	}()
	c.ApplyMulti(10, []iq.Samples{{1}}, []float64{}, []int{0})
}

func TestPathLossMonotonic(t *testing.T) {
	m := LogDistance{FreqHz: 915e6, Exponent: 2.9}
	prev := -1.0
	for _, d := range []float64{1, 10, 100, 1000} {
		loss := m.PathLossDB(d, 0)
		if loss <= prev {
			t.Fatalf("loss not monotonic at %v m", d)
		}
		prev = loss
	}
}

func TestPathLossReference(t *testing.T) {
	m := LogDistance{FreqHz: 915e6, Exponent: 2.0}
	// FSPL at 1 m, 915 MHz ≈ 31.7 dB.
	if got := m.ReferenceLossDB(); math.Abs(got-31.7) > 0.2 {
		t.Errorf("reference loss = %v, want ≈31.7", got)
	}
	// Clamp below 1 m.
	if m.PathLossDB(0.1, 0) != m.PathLossDB(1, 0) {
		t.Error("sub-meter distances must clamp")
	}
}

func TestShadowingDeterministicPerSeed(t *testing.T) {
	m := LogDistance{FreqHz: 915e6, Exponent: 2.9, ShadowSigmaDB: 4}
	a := m.PathLossDB(100, 11)
	b := m.PathLossDB(100, 11)
	if a != b {
		t.Error("same seed must give same shadowing")
	}
	if m.PathLossDB(100, 12) == a {
		t.Error("different seeds should differ")
	}
}

func TestRSSILinkBudget(t *testing.T) {
	m := LogDistance{FreqHz: 915e6, Exponent: 2.9}
	rssi := m.RSSIdBm(14, 2, 0, 500, 0)
	if rssi > -80 || rssi < -130 {
		t.Errorf("RSSI at 500 m = %v dBm, outside plausible LoRa range", rssi)
	}
}

func TestRangeForLoRaKilometerScale(t *testing.T) {
	// The motivating property: a 14 dBm LoRa link with -126 dBm sensitivity
	// reaches kilometer scale.
	m := LogDistance{FreqHz: 915e6, Exponent: 2.9}
	r := m.RangeFor(14, 2, 0, -126)
	if r < 1000 {
		t.Errorf("LoRa range = %v m, want kilometer scale", r)
	}
	// And the inverse is consistent.
	rssi := m.RSSIdBm(14, 2, 0, r, 0)
	if math.Abs(rssi-(-126)) > 0.5 {
		t.Errorf("RSSI at computed range = %v, want -126", rssi)
	}
}
