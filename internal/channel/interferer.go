package channel

import (
	"math"
	"math/rand"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// Interferer injects a co-channel transmission captured from a second live
// modulator — a LoRa packet over a LoRa link, a BLE beacon bleeding into a
// LoRa sweep, and so on. The interfering waveform is supplied at
// construction (see internal/sim for the builders that run the real
// modulators); each Reset re-draws the victim/interferer time alignment and
// rescales the waveform to the configured received power, so every trial
// sees a fresh asynchronous overlap.
type Interferer struct {
	// PowerDBm is the interferer's mean received power.
	PowerDBm float64
	// FreqOffsetHz shifts the interferer's carrier relative to the victim
	// channel (0 = co-channel).
	FreqOffsetHz float64
	// SampleRate converts FreqOffsetHz to radians per sample; required
	// when FreqOffsetHz is non-zero.
	SampleRate float64
	// MaxOffsetSamples bounds the random start offset drawn per trial.
	MaxOffsetSamples int

	kind     string
	waveform iq.Samples // read-only source waveform, shareable across workers
	scaled   iq.Samples
	offset   int
	rng      *rand.Rand
	src      rand.Source

	// cachedFor remembers the parameters the scaled record was built
	// with: only the start offset is trial-dependent, so Reset rebuilds
	// the record only when a caller mutated the exported fields.
	cachedFor struct {
		powerDBm, freqOffsetHz, sampleRate float64
		valid                              bool
	}
}

// NewInterferer returns an interferer stage. kind labels the source in
// scenario descriptions ("lora", "ble", ...). The waveform is treated as
// read-only and may be shared across worker-private stages.
func NewInterferer(kind string, waveform iq.Samples, powerDBm float64, maxOffsetSamples int) *Interferer {
	if len(waveform) == 0 {
		panic("channel: interferer needs a waveform")
	}
	if maxOffsetSamples < 0 {
		maxOffsetSamples = 0
	}
	rng, src := seededRand()
	it := &Interferer{
		PowerDBm:         powerDBm,
		MaxOffsetSamples: maxOffsetSamples,
		kind:             kind,
		waveform:         waveform,
		rng:              rng,
		src:              src,
	}
	it.Reset(0)
	return it
}

// Name implements Stage.
func (it *Interferer) Name() string {
	if it.kind == "" {
		return "interferer"
	}
	return "interferer(" + it.kind + ")"
}

// Offset returns the start offset drawn by the last Reset.
func (it *Interferer) Offset() int { return it.offset }

// Reset implements Stage: it draws the trial's time alignment and, when a
// caller changed the power/offset configuration since the last Reset,
// rebuilds the scaled (and frequency-shifted) interference record.
func (it *Interferer) Reset(seed int64) {
	it.src.Seed(seed)
	it.offset = 0
	if it.MaxOffsetSamples > 0 {
		it.offset = it.rng.Intn(it.MaxOffsetSamples + 1)
	}
	if it.FreqOffsetHz != 0 && it.SampleRate <= 0 {
		panic("channel: interferer FreqOffsetHz set without SampleRate")
	}
	if it.cachedFor.valid &&
		it.cachedFor.powerDBm == it.PowerDBm &&
		it.cachedFor.freqOffsetHz == it.FreqOffsetHz &&
		it.cachedFor.sampleRate == it.SampleRate {
		return
	}
	it.scaled = growScratch(it.scaled, len(it.waveform))
	copy(it.scaled, it.waveform)
	it.scaled.ScaleToDBm(it.PowerDBm)
	if it.FreqOffsetHz != 0 {
		inc := 2 * math.Pi * it.FreqOffsetHz / it.SampleRate
		phase := 0.0
		for i := range it.scaled {
			sin, cos := math.Sincos(phase)
			it.scaled[i] *= complex(cos, sin)
			phase += inc
			if phase > 2*math.Pi {
				phase -= 2 * math.Pi
			} else if phase < -2*math.Pi {
				phase += 2 * math.Pi
			}
		}
	}
	it.cachedFor.powerDBm = it.PowerDBm
	it.cachedFor.freqOffsetHz = it.FreqOffsetHz
	it.cachedFor.sampleRate = it.SampleRate
	it.cachedFor.valid = true
}

// ApplyInto implements Stage: superposition of the interference record at
// the drawn offset, clipped to the victim's record.
func (it *Interferer) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	if !aliased(dst, sig) {
		copy(dst, sig)
	}
	return dst.AddAt(it.offset, it.scaled)
}
