package channel

import (
	"strings"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/par"
)

// Scenario composes stages into one reproducible link condition. The stage
// order is the physical signal path: typically Gain or Mobility (link
// budget), Fading, CFO, Interferer, then Noise last.
//
// Reset(seed, trial) derives a decorrelated substream for every stage from
// (seed, trialIndex) alone via the same SplitMix64 splitting the eval
// runner uses, so a sweep fanned across any number of workers reproduces
// each trial's waveform bit for bit — the PR-1 determinism contract
// extended to composed channels.
//
// A Scenario owns no sample scratch of its own but its stages do, so like
// them it is single-goroutine: give each worker its own instance.
type Scenario struct {
	stages []Stage
}

// NewScenario composes the given stages in order.
func NewScenario(stages ...Stage) *Scenario {
	return &Scenario{stages: stages}
}

// Stages returns the composed stages in signal-path order.
func (s *Scenario) Stages() []Stage { return s.stages }

// String describes the composition, e.g.
// "gain→fading→cfo→interferer(lora)→noise".
func (s *Scenario) String() string {
	if len(s.stages) == 0 {
		return "identity"
	}
	names := make([]string, len(s.stages))
	for i, st := range s.stages {
		names[i] = st.Name()
	}
	return strings.Join(names, "→")
}

// Reset re-derives every stage's randomness from (seed, trial). Stage i
// receives the substream SplitSeed(SplitSeed(seed, trial), i+1), so stages
// never share a stream and trials never overlap.
func (s *Scenario) Reset(seed int64, trial int) {
	base := par.SplitSeed(seed, int64(trial))
	for i, st := range s.stages {
		st.Reset(par.SplitSeed(base, int64(i+1)))
	}
}

// ApplyInto runs the composed stages over sig into dst. len(dst) must
// equal len(sig); dst may alias sig. After each stage's scratch has grown
// to the record size, the call performs no heap allocation.
func (s *Scenario) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	if len(s.stages) == 0 {
		if !aliased(dst, sig) {
			copy(dst, sig)
		}
		return dst
	}
	s.stages[0].ApplyInto(dst, sig)
	for _, st := range s.stages[1:] {
		st.ApplyInto(dst, dst)
	}
	return dst
}

// Apply is ApplyInto onto a fresh buffer, leaving sig untouched.
func (s *Scenario) Apply(sig iq.Samples) iq.Samples {
	return s.ApplyInto(make(iq.Samples, len(sig)), sig)
}
