package channel

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// testScenario composes the canonical coexistence chain: gain → flat
// fading → CFO → interferer → noise.
func testScenario() *Scenario {
	interf := tone(512, 0.2)
	return NewScenario(
		NewGain(-110),
		NewFlatFading(10),
		NewCFO(200, 50, 20, 125e3),
		NewInterferer("lora", interf, -115, 256),
		NewNoise(-116),
	)
}

func TestScenarioStringAndStages(t *testing.T) {
	s := testScenario()
	want := "gain→fading→cfo→interferer(lora)→noise"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if len(s.Stages()) != 5 {
		t.Errorf("Stages() = %d, want 5", len(s.Stages()))
	}
	if got := NewScenario().String(); got != "identity" {
		t.Errorf("empty scenario = %q", got)
	}
}

func TestScenarioDeterministicPerSeedAndTrial(t *testing.T) {
	sig := tone(2048, 0.1)
	a := testScenario()
	b := testScenario()
	a.Reset(42, 7)
	b.Reset(42, 7)
	outA := a.Apply(sig)
	outB := b.Apply(sig)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("two instances diverge at sample %d for identical (seed, trial)", i)
		}
	}
	// Different trial indices of the same seed must decorrelate.
	b.Reset(42, 8)
	outC := b.Apply(sig)
	same := 0
	for i := range outA {
		if outA[i] == outC[i] {
			same++
		}
	}
	if same == len(outA) {
		t.Error("trial 7 and 8 produced identical waveforms")
	}
}

func TestScenarioResetIsReentrant(t *testing.T) {
	// Reset → Apply → Reset with the same pair must reproduce the output
	// even after the stages consumed their streams.
	s := testScenario()
	sig := tone(2048, 0.1)
	s.Reset(1, 3)
	first := s.Apply(sig)
	s.Reset(9, 9)
	s.Apply(sig)
	s.Reset(1, 3)
	second := s.Apply(sig)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replayed trial diverges at sample %d", i)
		}
	}
}

func TestScenarioApplyIntoAliasing(t *testing.T) {
	s := testScenario()
	sig := tone(1024, 0.1)
	s.Reset(5, 0)
	separate := s.Apply(sig)
	inPlace := sig.Clone()
	s.Reset(5, 0)
	s.ApplyInto(inPlace, inPlace)
	for i := range separate {
		if separate[i] != inPlace[i] {
			t.Fatalf("in-place application diverges at sample %d", i)
		}
	}
}

func TestScenarioEmptyIsIdentity(t *testing.T) {
	s := NewScenario()
	sig := tone(64, 0.1)
	out := s.Apply(sig)
	for i := range sig {
		if out[i] != sig[i] {
			t.Fatal("empty scenario must be the identity")
		}
	}
}

// TestScenarioZeroAllocSteadyState pins the hot-path contract: once every
// stage's scratch has grown to the record size, Reset + ApplyInto allocate
// nothing.
func TestScenarioZeroAllocSteadyState(t *testing.T) {
	s := testScenario()
	sig := tone(2048, 0.1)
	dst := make(iq.Samples, len(sig))
	s.Reset(1, 0)
	s.ApplyInto(dst, sig) // warm the scratch arenas
	trial := 0
	if n := testing.AllocsPerRun(50, func() {
		trial++
		s.Reset(1, trial)
		s.ApplyInto(dst, sig)
	}); n != 0 {
		t.Errorf("Reset+ApplyInto allocates %.0f times per trial, want 0", n)
	}
}

func TestScenarioOutputPowerPlausible(t *testing.T) {
	// Gain to -110 dBm with noise at -116: composed output power must be
	// near the analytic sum (fading and interference perturb it, so the
	// tolerance is loose but the order of magnitude is pinned).
	s := NewScenario(NewGain(-110), NewNoise(-116))
	s.Reset(3, 0)
	out := s.Apply(tone(65536, 0.1))
	want := iq.MilliwattsToDBm(iq.DBmToMilliwatts(-110) + iq.DBmToMilliwatts(-116))
	if got := out.PowerDBm(); math.Abs(got-want) > 0.3 {
		t.Errorf("composed power = %v dBm, want ≈%v", got, want)
	}
}
