package channel

// RadioProfile describes one receive chain for link-budget purposes: the
// effective system noise figure that turns a sampled bandwidth into an
// integrated noise floor. A modem carries exactly one profile and derives
// both its sensitivity and its noise floor from it, so a link can never
// silently mix noise figures the way independent per-protocol helpers
// could. The canonical chip profiles live in internal/radio; this type
// sits in channel so protocol packages can reference it without importing
// the radio models (which import them back).
type RadioProfile struct {
	// Name identifies the chain, e.g. "sx1276" or "cc2650".
	Name string
	// NoiseFigureDB is the receive-path effective system noise figure.
	NoiseFigureDB float64
}

// NoiseFloorDBm returns the receiver noise power integrated over a
// bandwidth for this chain — the floor to hand to NewNoise or NewAWGN.
func (p RadioProfile) NoiseFloorDBm(bwHz float64) float64 {
	return NoiseFloorDBm(bwHz, p.NoiseFigureDB)
}
