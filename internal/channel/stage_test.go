package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// tone returns a unit-amplitude complex exponential of n samples at the
// given cycles-per-sample frequency.
func tone(n int, cyclesPerSample float64) iq.Samples {
	s := make(iq.Samples, n)
	for i := range s {
		ang := 2 * math.Pi * cyclesPerSample * float64(i)
		s[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	return s
}

func TestGainSetsPower(t *testing.T) {
	g := NewGain(-87)
	out := g.ApplyInto(make(iq.Samples, 4096), tone(4096, 0.1))
	if got := out.PowerDBm(); math.Abs(got-(-87)) > 0.01 {
		t.Errorf("gain output = %v dBm, want -87", got)
	}
}

func TestNoiseStageMatchesFloorAndSeed(t *testing.T) {
	n := NewNoise(-100)
	n.Reset(3)
	zero := make(iq.Samples, 200000)
	out := n.ApplyInto(make(iq.Samples, len(zero)), zero)
	if got := out.PowerDBm(); math.Abs(got-(-100)) > 0.1 {
		t.Errorf("noise power = %v dBm, want -100 ± 0.1", got)
	}
	// Reset must reproduce the identical record.
	n.Reset(3)
	again := n.ApplyInto(make(iq.Samples, len(zero)), zero)
	for i := range out {
		if out[i] != again[i] {
			t.Fatal("same seed must reproduce identical noise")
		}
	}
	n.Reset(4)
	other := n.ApplyInto(make(iq.Samples, len(zero)), zero)
	if other[0] == out[0] && other[1] == out[1] {
		t.Error("different seeds should decorrelate")
	}
}

func TestFlatFadingPreservesAveragePower(t *testing.T) {
	f := NewFlatFading(0)
	sig := tone(256, 0.1)
	// Average |g|² over many block draws must approach 1 (unit-mean
	// Rayleigh profile).
	var acc float64
	const draws = 20000
	for i := 0; i < draws; i++ {
		f.Reset(int64(i))
		g := f.Gains()[0]
		acc += real(g)*real(g) + imag(g)*imag(g)
	}
	if mean := acc / draws; math.Abs(mean-1) > 0.03 {
		t.Errorf("mean fading power = %v, want 1 ± 0.03", mean)
	}
	// And a single application scales the waveform by exactly |g|.
	f.Reset(7)
	out := f.ApplyInto(make(iq.Samples, len(sig)), sig)
	g := f.Gains()[0]
	want := sig.Power() * (real(g)*real(g) + imag(g)*imag(g))
	if got := out.Power(); math.Abs(got-want) > 1e-12 {
		t.Errorf("faded power = %v, want %v", got, want)
	}
}

func TestRicianKFactorConcentratesGain(t *testing.T) {
	// With K → large the gain magnitude must concentrate near 1. The
	// scatter rail at K=100 has σ ≈ 0.07, so the extremes of 2000 Gaussian
	// draws land around 1 ± 4σ; the bounds leave tail headroom (a Rayleigh
	// channel, the failure this test guards against, spans ≈ 0..2.5 over
	// the same draws and blows far through them).
	f := NewFlatFading(100)
	var minMag, maxMag = math.Inf(1), math.Inf(-1)
	for i := 0; i < 1000; i++ {
		f.Reset(int64(i))
		m := cmplx.Abs(f.Gains()[0])
		minMag = math.Min(minMag, m)
		maxMag = math.Max(maxMag, m)
	}
	if minMag < 0.6 || maxMag > 1.4 {
		t.Errorf("K=100 gain magnitude spans [%v, %v], want tight around 1", minMag, maxMag)
	}
}

func TestFadingDelayLine(t *testing.T) {
	// A two-tap channel applied to an impulse must place the tap gains at
	// the tap delays.
	f := NewFading([]Tap{{0, 0}, {3, -3}}, 0)
	f.Reset(11)
	sig := make(iq.Samples, 8)
	sig[0] = 1
	out := f.ApplyInto(make(iq.Samples, 8), sig)
	g := f.Gains()
	if out[0] != g[0] || out[3] != g[1] {
		t.Errorf("impulse response %v does not match gains %v", out, g)
	}
	for _, i := range []int{1, 2, 4, 5, 6, 7} {
		if out[i] != 0 {
			t.Errorf("echo at sample %d", i)
		}
	}
}

func TestExponentialTapsShape(t *testing.T) {
	taps := ExponentialTaps(4, 2, 9)
	if len(taps) != 4 {
		t.Fatalf("got %d taps", len(taps))
	}
	if taps[0].PowerDB != 0 || taps[3].PowerDB != -9 {
		t.Errorf("decay endpoints = %v, %v", taps[0].PowerDB, taps[3].PowerDB)
	}
	if taps[3].DelaySamples != 6 {
		t.Errorf("last delay = %d, want 6", taps[3].DelaySamples)
	}
}

func TestCFOShiftsTone(t *testing.T) {
	const fs = 125e3
	const shift = 2000.0
	c := NewCFO(shift, 0, 0, fs)
	c.Reset(1)
	sig := tone(4096, 1000/fs) // 1 kHz tone
	out := c.ApplyInto(make(iq.Samples, len(sig)), sig)
	// Measure the dominant frequency by average phase increment.
	var acc float64
	for i := 1; i < len(out); i++ {
		acc += cmplx.Phase(out[i] * cmplx.Conj(out[i-1]))
	}
	gotHz := acc / float64(len(out)-1) / (2 * math.Pi) * fs
	if math.Abs(gotHz-3000) > 20 {
		t.Errorf("shifted tone at %v Hz, want 3000", gotHz)
	}
}

func TestCFOJitterDeterministicPerSeed(t *testing.T) {
	c := NewCFO(0, 100, 0, 125e3)
	c.Reset(5)
	a := c.EffectiveOffsetHz()
	c.Reset(5)
	if c.EffectiveOffsetHz() != a {
		t.Error("same seed must draw the same offset")
	}
	c.Reset(6)
	if c.EffectiveOffsetHz() == a {
		t.Error("different seeds should draw different offsets")
	}
}

func TestCFODriftStretchesTimebase(t *testing.T) {
	// A large positive drift reads the source faster: the last output
	// sample must come from beyond its own index.
	const ppm = 1000.0 // 0.1%: 4 samples over 4096
	c := NewCFO(0, 0, ppm, 125e3)
	c.Reset(1)
	sig := make(iq.Samples, 4096)
	for i := range sig {
		sig[i] = complex(float64(i), 0) // ramp makes resampling visible
	}
	out := c.ApplyInto(make(iq.Samples, len(sig)), sig)
	// CFO offset 0 with a random start phase: magnitude is preserved, so
	// compare |out| to the resampled ramp value.
	i := 3000
	want := float64(i) * (1 + ppm*1e-6)
	if got := cmplx.Abs(out[i]); math.Abs(got-want) > 0.01 {
		t.Errorf("sample %d reads %v, want resampled %v", i, got, want)
	}
}

func TestMobilityRampsPowerAcrossRecord(t *testing.T) {
	m := NewMobility(LogDistance{FreqHz: 915e6, Exponent: 2.9}, 14, 6, 0, 500, 4000, 125e3)
	m.Reset(1)
	sig := tone(65536, 0.05) // ~0.5 s at 125 kHz: 500 m → 2.5 km (extreme, for test visibility)
	out := m.ApplyInto(make(iq.Samples, len(sig)), sig)
	head := out[:1024].PowerDBm()
	tail := out[len(out)-4096:].PowerDBm()
	if head <= tail {
		t.Errorf("receding trajectory must lose power: head %v dBm, tail %v dBm", head, tail)
	}
	// Head must sit near the static link budget at the start distance
	// (the first 1024 samples span ~33 m of travel, so allow that drift).
	want := m.Model.RSSIdBm(14, 6, 0, 500, 0)
	if math.Abs(head-want) > 1 {
		t.Errorf("head power %v dBm, want ≈%v", head, want)
	}
}

func TestMobilityShadowingPerReset(t *testing.T) {
	model := LogDistance{FreqHz: 915e6, Exponent: 2.9, ShadowSigmaDB: 4}
	m := NewMobility(model, 14, 6, 0, 500, 0, 125e3)
	m.Reset(1)
	a := m.RSSIAt(0)
	m.Reset(1)
	if m.RSSIAt(0) != a {
		t.Error("same seed must draw the same shadowing")
	}
	m.Reset(2)
	if m.RSSIAt(0) == a {
		t.Error("different seeds should draw different shadowing")
	}
}

func TestInterfererAddsAtDrawnOffset(t *testing.T) {
	wave := tone(64, 0.25)
	it := NewInterferer("lora", wave, -90, 100)
	it.Reset(9)
	off := it.Offset()
	if off < 0 || off > 100 {
		t.Fatalf("offset %d outside [0,100]", off)
	}
	sig := make(iq.Samples, 256)
	out := it.ApplyInto(make(iq.Samples, len(sig)), sig)
	// Power concentrated in [off, off+64) at -90 dBm.
	seg := out[off : off+64]
	if got := seg.PowerDBm(); math.Abs(got-(-90)) > 0.01 {
		t.Errorf("interference power = %v dBm, want -90", got)
	}
	for i := 0; i < off; i++ {
		if out[i] != 0 {
			t.Fatalf("leakage before offset at %d", i)
		}
	}
}

func TestInterfererFreqOffsetMovesEnergy(t *testing.T) {
	const fs = 125e3
	wave := tone(4096, 0) // DC tone
	it := NewInterferer("lora", wave, -90, 0)
	it.FreqOffsetHz = 10e3
	it.SampleRate = fs
	it.Reset(1)
	sig := make(iq.Samples, 4096)
	out := it.ApplyInto(make(iq.Samples, len(sig)), sig)
	var acc float64
	for i := 1; i < len(out); i++ {
		acc += cmplx.Phase(out[i] * cmplx.Conj(out[i-1]))
	}
	gotHz := acc / float64(len(out)-1) / (2 * math.Pi) * fs
	if math.Abs(gotHz-10e3) > 50 {
		t.Errorf("shifted interferer at %v Hz, want 10000", gotHz)
	}
}

func TestInterfererRecacheOnFieldChange(t *testing.T) {
	wave := tone(256, 0.1)
	it := NewInterferer("lora", wave, -90, 0)
	sig := make(iq.Samples, 256)
	it.Reset(1)
	before := it.ApplyInto(make(iq.Samples, 256), sig).PowerDBm()
	// Mutating an exported field must invalidate the cached record on
	// the next Reset.
	it.PowerDBm = -80
	it.Reset(1)
	after := it.ApplyInto(make(iq.Samples, 256), sig).PowerDBm()
	if math.Abs(before-(-90)) > 0.01 || math.Abs(after-(-80)) > 0.01 {
		t.Errorf("powers %v / %v, want -90 then -80", before, after)
	}
}

func TestInterfererFreqOffsetWithoutRatePanics(t *testing.T) {
	it := NewInterferer("lora", tone(64, 0.1), -90, 0)
	it.FreqOffsetHz = 10e3 // SampleRate deliberately left unset
	defer func() {
		if recover() == nil {
			t.Fatal("FreqOffsetHz without SampleRate must panic, not silently run co-channel")
		}
	}()
	it.Reset(1)
}

func TestStageLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	NewGain(-50).ApplyInto(make(iq.Samples, 3), make(iq.Samples, 4))
}

func TestDropoutAttenuatesWindow(t *testing.T) {
	d := NewDropout(1, 40) // always drops
	d.Reset(3)
	if !d.Active() {
		t.Fatal("prob 1 dropout inactive")
	}
	sig := tone(4096, 0.1)
	out := d.ApplyInto(make(iq.Samples, len(sig)), sig)
	want := math.Pow(10, -40.0/20)
	deep, clean := 0, 0
	for i := range out {
		ratio := cmplx.Abs(out[i])
		switch {
		case math.Abs(ratio-want) < 1e-9:
			deep++
		case math.Abs(ratio-1) < 1e-9:
			clean++
		default:
			t.Fatalf("sample %d gain %v is neither unity nor -40 dB", i, ratio)
		}
	}
	// Window extent is drawn in [10%, 60%] of the record.
	if deep < len(out)/10 || deep > len(out)*6/10 {
		t.Errorf("dropout covers %d of %d samples, want 10%%..60%%", deep, len(out))
	}
	if deep+clean != len(out) {
		t.Error("window accounting does not cover the record")
	}
}

func TestDropoutDeterministicAndLengthFree(t *testing.T) {
	// The window is drawn as record fractions at Reset: the same seed must
	// place it proportionally in records of different length.
	d := NewDropout(1, 0)
	if d.DepthDB != DefaultDropoutDepthDB {
		t.Fatalf("default depth = %v", d.DepthDB)
	}
	cover := func(n int) (lo, hi int) {
		d.Reset(7)
		sig := make(iq.Samples, n)
		for i := range sig {
			sig[i] = 1
		}
		out := d.ApplyInto(make(iq.Samples, n), sig)
		lo, hi = -1, -1
		for i := range out {
			if cmplx.Abs(out[i]) < 0.5 {
				if lo < 0 {
					lo = i
				}
				hi = i + 1
			}
		}
		return lo, hi
	}
	lo1, hi1 := cover(1000)
	lo4, hi4 := cover(4000)
	if lo4/4 != lo1 && lo4/4 != lo1-1 && lo4/4 != lo1+1 {
		t.Errorf("window start %d at n=1000 vs %d at n=4000 not proportional", lo1, lo4)
	}
	if (hi4-lo4)/4-(hi1-lo1) > 1 || (hi1-lo1)-(hi4-lo4)/4 > 1 {
		t.Errorf("window length %d vs %d/4 not proportional", hi1-lo1, hi4-lo4)
	}
	// And the same seed reproduces the identical window.
	a0, a1 := cover(1000)
	if a0 != lo1 || a1 != hi1 {
		t.Error("same seed drew a different window")
	}
}

func TestDropoutActivationTracksProbability(t *testing.T) {
	d := NewDropout(0.3, 0)
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		d.Reset(int64(i))
		if d.Active() {
			hits++
		}
	}
	if rate := float64(hits) / trials; math.Abs(rate-0.3) > 0.03 {
		t.Errorf("activation rate %.3f, want 0.3±0.03", rate)
	}
}

func TestDropoutInactivePassThrough(t *testing.T) {
	d := NewDropout(0, 0) // never drops
	d.Reset(1)
	sig := tone(256, 0.1)
	out := d.ApplyInto(make(iq.Samples, len(sig)), sig)
	for i := range out {
		if out[i] != sig[i] {
			t.Fatal("inactive dropout altered the signal")
		}
	}
	// Aliased application must be safe.
	buf := append(iq.Samples(nil), sig...)
	d.ApplyInto(buf, buf)
	for i := range buf {
		if buf[i] != sig[i] {
			t.Fatal("aliased inactive dropout altered the signal")
		}
	}
}
