package channel

import (
	"math"
	"math/rand"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// DefaultDropoutDepthDB is the attenuation applied inside a dropout window
// when the scenario does not specify one: 40 dB puts the signal well under
// any practical noise floor, modeling a full receiver squelch.
const DefaultDropoutDepthDB = 40.0

// Dropout models an RX desync / frame-loss burst inside the record: with
// probability Prob per trial the receiver loses the signal for a contiguous
// window, which is attenuated by DepthDB while the noise floor (a later
// Noise stage) persists. It is the waveform-level counterpart of the
// internal/fault desync and duty-cycle faults — the same impairment the
// chaos harness injects at the OTA protocol layer, here visible to the
// demodulators.
//
// The window's position and extent are drawn as fractions of the record at
// Reset, so a trial's dropout is a pure function of the seed and is
// independent of the record length the stage is later applied to.
type Dropout struct {
	// Prob is the per-trial probability the record contains a dropout.
	Prob float64
	// DepthDB is the attenuation inside the window (positive dB).
	DepthDB float64

	active    bool
	startFrac float64
	lenFrac   float64
	rng       *rand.Rand
	src       rand.Source
}

// NewDropout returns a dropout stage with the given per-trial probability
// and attenuation depth; depthDB <= 0 selects DefaultDropoutDepthDB.
func NewDropout(prob, depthDB float64) *Dropout {
	if depthDB <= 0 {
		depthDB = DefaultDropoutDepthDB
	}
	rng, src := seededRand()
	d := &Dropout{Prob: prob, DepthDB: depthDB, rng: rng, src: src}
	d.Reset(0)
	return d
}

// Name implements Stage.
func (d *Dropout) Name() string { return "dropout" }

// Active reports whether the last Reset drew a dropout for this trial.
func (d *Dropout) Active() bool { return d.active }

// Reset implements Stage: it draws whether this trial drops out, and where.
func (d *Dropout) Reset(seed int64) {
	d.src.Seed(seed)
	// All three draws are consumed every Reset so the (start, length)
	// stream stays aligned with the activation stream across trials.
	hit := d.rng.Float64()
	d.startFrac = d.rng.Float64()
	// Window extent: 10%..60% of the record, clipped at the record end.
	d.lenFrac = 0.1 + 0.5*d.rng.Float64()
	d.active = hit < d.Prob
}

// ApplyInto implements Stage.
func (d *Dropout) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	if !aliased(dst, sig) {
		copy(dst, sig)
	}
	if !d.active || len(dst) == 0 {
		return dst
	}
	lo := int(d.startFrac * float64(len(dst)))
	hi := lo + int(d.lenFrac*float64(len(dst)))
	if hi > len(dst) {
		hi = len(dst)
	}
	g := complex(math.Pow(10, -d.DepthDB/20), 0)
	for i := lo; i < hi; i++ {
		dst[i] *= g
	}
	return dst
}
