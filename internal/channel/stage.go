package channel

// The composable scenario engine. A Stage is one impairment of the RF
// medium; a Scenario (scenario.go) chains stages into a full link
// condition. Two contracts make stages safe inside the trial-parallel eval
// runner:
//
//   - ApplyInto(dst, sig) transforms sig into dst with len(dst)==len(sig);
//     dst may alias sig. After construction (and one warm-up call that
//     grows internal scratch), ApplyInto and Reset perform no heap
//     allocation, matching the DSP hot-path conventions in internal/dsp.
//   - All randomness a stage consumes is re-derived by Reset(seed) from the
//     seed alone — never from call order or wall clock — so a sweep
//     re-running a trial with the same (seed, trialIndex) reproduces its
//     output bit for bit at any worker count.
//
// A Stage is single-goroutine (it owns scratch); give each worker its own
// instance, like the demodulators.

import (
	"math"
	"math/rand"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// Stage is one impairment in a composed channel scenario.
type Stage interface {
	// Name identifies the stage in scenario descriptions.
	Name() string
	// Reset re-derives every random element of the stage from seed.
	Reset(seed int64)
	// ApplyInto writes the impaired signal into dst; dst may alias sig.
	ApplyInto(dst, sig iq.Samples) iq.Samples
}

// checkLen panics on the contract violation shared by every stage.
func checkLen(dst, sig iq.Samples) {
	if len(dst) != len(sig) {
		panic("channel: stage ApplyInto length mismatch")
	}
}

// aliased reports whether dst and sig share a backing array start.
func aliased(dst, sig iq.Samples) bool {
	return len(dst) == 0 || &dst[0] == &sig[0]
}

// growScratch returns buf resized to n, reallocating only on growth.
func growScratch(buf iq.Samples, n int) iq.Samples {
	if cap(buf) < n {
		return make(iq.Samples, n)
	}
	return buf[:n]
}

// splitmixSource is a SplitMix64 rand.Source64: one word of state, so
// Seed is a single store. Scenario.Reset reseeds every stage once per
// trial, and math/rand's default source pays a 607-word expansion loop per
// Seed — reseeding cost was half of the composed-scenario hot path
// (Reset + ApplyInto + demod) before the swap. The draw machinery on top
// (math/rand's ziggurat NormFloat64 etc.) is unchanged; only the
// underlying uniform stream differs, so scenario Monte-Carlo draws are
// re-randomized but remain a pure function of the stage's Reset seed.
type splitmixSource struct{ s uint64 }

func (m *splitmixSource) Seed(seed int64) { m.s = uint64(seed) }

func (m *splitmixSource) Uint64() uint64 {
	m.s += 0x9E3779B97F4A7C15
	z := m.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (m *splitmixSource) Int63() int64 { return int64(m.Uint64() >> 1) }

// seededRand returns a PRNG whose source can be cheaply re-seeded by Reset
// without allocating.
func seededRand() (*rand.Rand, rand.Source) {
	src := &splitmixSource{}
	return rand.New(src), src
}

// Gain scales the signal so its mean power equals a fixed received level —
// the static-link counterpart of Mobility.
type Gain struct {
	// RSSIdBm is the target mean received power.
	RSSIdBm float64
}

// NewGain returns a gain stage targeting the given RSSI.
func NewGain(rssiDBm float64) *Gain { return &Gain{RSSIdBm: rssiDBm} }

// Name implements Stage.
func (g *Gain) Name() string { return "gain" }

// Reset implements Stage; a gain has no randomness.
func (g *Gain) Reset(int64) {}

// ApplyInto implements Stage.
func (g *Gain) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	if !aliased(dst, sig) {
		copy(dst, sig)
	}
	return dst.ScaleToDBm(g.RSSIdBm)
}

// Noise adds receiver noise at a fixed integrated floor — the terminal
// stage of almost every scenario. Unlike AWGN.ApplyInto it does not rescale
// the signal; compose it after a Gain or Mobility stage.
type Noise struct {
	floorDBm float64
	sigma    float64
	rng      *rand.Rand
	src      rand.Source
}

// NewNoise returns a noise stage at the given integrated floor in dBm.
func NewNoise(floorDBm float64) *Noise {
	rng, src := seededRand()
	return &Noise{
		floorDBm: floorDBm,
		sigma:    math.Sqrt(iq.DBmToMilliwatts(floorDBm) / 2),
		rng:      rng,
		src:      src,
	}
}

// FloorDBm returns the configured noise floor.
func (n *Noise) FloorDBm() float64 { return n.floorDBm }

// Name implements Stage.
func (n *Noise) Name() string { return "noise" }

// Reset implements Stage.
func (n *Noise) Reset(seed int64) { n.src.Seed(seed) }

// ApplyInto implements Stage.
func (n *Noise) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	for i := range sig {
		dst[i] = sig[i] + complex(n.rng.NormFloat64()*n.sigma, n.rng.NormFloat64()*n.sigma)
	}
	return dst
}

// Tap is one path of a tapped-delay-line fading channel.
type Tap struct {
	// DelaySamples is the excess delay of this path in samples.
	DelaySamples int
	// PowerDB is the average relative path power; taps are normalized so
	// the profile's total average gain is unity.
	PowerDB float64
}

// Fading is a block-fading tapped delay line: Reset draws one complex gain
// per tap for the whole record (LoRa/BLE packets are far shorter than
// typical coherence times, so per-packet block fading is the right model).
// Tap 0 is Rician with factor K; K=0 degenerates to Rayleigh. The profile
// is normalized to unit average power, preserving the RSSI semantics of the
// surrounding Gain/Mobility stage.
type Fading struct {
	taps    []Tap
	kFactor float64

	// Precomputed draw parameters: per-tap scatter sigma, plus the tap-0
	// line-of-sight amplitude when Rician. Taps and K are fixed at
	// construction, so Reset is pure PRNG draws.
	sigmas []float64
	losAmp float64

	gains    []complex128
	maxDelay int
	rng      *rand.Rand
	src      rand.Source
	scratch  iq.Samples
}

// NewFading returns a fading stage over the given power-delay profile with
// Rician factor kFactor (linear; 0 means Rayleigh) on the first tap.
// The taps slice must be non-empty; delays must be non-negative.
func NewFading(taps []Tap, kFactor float64) *Fading {
	if len(taps) == 0 {
		panic("channel: fading needs at least one tap")
	}
	maxDelay := 0
	for _, t := range taps {
		if t.DelaySamples < 0 {
			panic("channel: negative fading tap delay")
		}
		if t.DelaySamples > maxDelay {
			maxDelay = t.DelaySamples
		}
	}
	if kFactor < 0 {
		kFactor = 0
	}
	rng, src := seededRand()
	f := &Fading{
		taps:     append([]Tap(nil), taps...),
		kFactor:  kFactor,
		sigmas:   make([]float64, len(taps)),
		gains:    make([]complex128, len(taps)),
		maxDelay: maxDelay,
		rng:      rng,
		src:      src,
	}
	var total float64
	for _, t := range taps {
		total += iq.FromDB(t.PowerDB)
	}
	for i, t := range taps {
		p := iq.FromDB(t.PowerDB) / total
		if i == 0 && kFactor > 0 {
			f.losAmp = math.Sqrt(kFactor / (kFactor + 1) * p)
			f.sigmas[i] = math.Sqrt(p / (kFactor + 1) / 2)
			continue
		}
		f.sigmas[i] = math.Sqrt(p / 2)
	}
	f.Reset(0)
	return f
}

// NewFlatFading returns a single-tap fading stage — the correct model for
// narrowband links like LoRa at 125 kHz, where multipath delay spread is
// far below a sample period.
func NewFlatFading(kFactor float64) *Fading {
	return NewFading([]Tap{{DelaySamples: 0, PowerDB: 0}}, kFactor)
}

// ExponentialTaps builds an n-tap profile with the given delay spacing and
// an exponential power decay of decayDB across the profile — a standard
// wideband urban model.
func ExponentialTaps(n, spacingSamples int, decayDB float64) []Tap {
	if n < 1 {
		n = 1
	}
	taps := make([]Tap, n)
	for i := range taps {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		taps[i] = Tap{DelaySamples: i * spacingSamples, PowerDB: -decayDB * frac}
	}
	return taps
}

// Name implements Stage.
func (f *Fading) Name() string { return "fading" }

// Gains returns the tap gains drawn by the last Reset.
func (f *Fading) Gains() []complex128 { return f.gains }

// Reset implements Stage: it draws the block's tap gains.
func (f *Fading) Reset(seed int64) {
	f.src.Seed(seed)
	for i := range f.taps {
		if i == 0 && f.kFactor > 0 {
			// Rician: fixed line-of-sight component at a random phase
			// plus diffuse scatter.
			theta := f.rng.Float64() * 2 * math.Pi
			f.gains[i] = complex(f.losAmp*math.Cos(theta), f.losAmp*math.Sin(theta)) +
				complex(f.rng.NormFloat64()*f.sigmas[i], f.rng.NormFloat64()*f.sigmas[i])
			continue
		}
		f.gains[i] = complex(f.rng.NormFloat64()*f.sigmas[i], f.rng.NormFloat64()*f.sigmas[i])
	}
}

// ApplyInto implements Stage: dst[i] = Σ_k g_k · sig[i-d_k].
func (f *Fading) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	src := sig
	if f.maxDelay > 0 && aliased(dst, sig) {
		// Only the aliased delay line reads behind the write index and
		// needs a stable copy; flat fading reads each index before
		// writing it, and a disjoint dst never clobbers sig.
		f.scratch = growScratch(f.scratch, len(sig))
		copy(f.scratch, sig)
		src = f.scratch
	}
	for i := range dst {
		var acc complex128
		for k, t := range f.taps {
			if j := i - t.DelaySamples; j >= 0 {
				acc += f.gains[k] * src[j]
			}
		}
		dst[i] = acc
	}
	return dst
}

// CFO models the oscillator mismatch between transmitter and receiver:
// a carrier frequency offset (fixed plus a per-trial Gaussian draw), a
// uniformly random carrier phase, and a sample-clock error that stretches
// the receive timebase (linear-interpolation resampler).
type CFO struct {
	// OffsetHz is the deterministic carrier offset component.
	OffsetHz float64
	// JitterHz is the standard deviation of the random per-trial offset.
	JitterHz float64
	// DriftPPM is the TX/RX sample-clock mismatch in parts per million;
	// positive means the transmitter's clock runs fast.
	DriftPPM float64
	// SampleRate converts the offset to radians per sample.
	SampleRate float64

	offset float64 // effective offset for this trial
	phase0 float64
	rng    *rand.Rand
	src    rand.Source
	buf    iq.Samples
}

// NewCFO returns a CFO stage. sampleRate must be positive.
func NewCFO(offsetHz, jitterHz, driftPPM, sampleRate float64) *CFO {
	if sampleRate <= 0 {
		panic("channel: CFO needs a positive sample rate")
	}
	rng, src := seededRand()
	c := &CFO{OffsetHz: offsetHz, JitterHz: jitterHz, DriftPPM: driftPPM,
		SampleRate: sampleRate, rng: rng, src: src}
	c.Reset(0)
	return c
}

// Name implements Stage.
func (c *CFO) Name() string { return "cfo" }

// EffectiveOffsetHz returns the carrier offset drawn by the last Reset.
func (c *CFO) EffectiveOffsetHz() float64 { return c.offset }

// Reset implements Stage.
func (c *CFO) Reset(seed int64) {
	c.src.Seed(seed)
	c.phase0 = c.rng.Float64() * 2 * math.Pi
	c.offset = c.OffsetHz
	if c.JitterHz > 0 {
		c.offset += c.rng.NormFloat64() * c.JitterHz
	}
}

// ApplyInto implements Stage.
func (c *CFO) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	n := len(sig)
	if n == 0 {
		return dst
	}
	src := sig
	if c.DriftPPM != 0 {
		// The resampler reads ahead of the write index; work from a copy.
		c.buf = growScratch(c.buf, n)
		copy(c.buf, sig)
		src = c.buf
	}
	ratio := 1 + c.DriftPPM*1e-6
	inc := 2 * math.Pi * c.offset / c.SampleRate
	phase := c.phase0
	for i := 0; i < n; i++ {
		v := src[i]
		if c.DriftPPM != 0 {
			pos := float64(i) * ratio
			i0 := int(pos)
			switch {
			case i0 >= n-1:
				v = src[n-1]
			case i0 < 0:
				v = src[0]
			default:
				frac := pos - float64(i0)
				v = src[i0]*complex(1-frac, 0) + src[i0+1]*complex(frac, 0)
			}
		}
		sin, cos := math.Sincos(phase)
		dst[i] = v * complex(cos, sin)
		phase += inc
		if phase > 2*math.Pi {
			phase -= 2 * math.Pi
		} else if phase < -2*math.Pi {
			phase += 2 * math.Pi
		}
	}
	return dst
}

// Mobility varies the link gain over the record as the endpoint moves along
// a radial trajectory through a log-distance field — path loss is re-solved
// block by block from the instantaneous distance, so a packet long enough
// (or a node fast enough) sees its own RSSI change mid-air. Shadowing, when
// the model carries it, is drawn once per Reset (per packet), matching the
// block-fading convention.
type Mobility struct {
	// Model is the propagation field (frequency, exponent, shadowing).
	Model LogDistance
	// TxPowerDBm, TxGainDB and RxGainDB form the link budget.
	TxPowerDBm, TxGainDB, RxGainDB float64
	// StartM is the distance at the first sample.
	StartM float64
	// SpeedMPS is the radial speed; positive moves away from the source.
	SpeedMPS float64
	// SampleRate converts sample index to trajectory time.
	SampleRate float64
	// BlockSamples is the gain-update granularity (default 64).
	BlockSamples int

	shadowDB float64
	rng      *rand.Rand
	src      rand.Source
}

// NewMobility returns a mobility stage. sampleRate must be positive.
func NewMobility(model LogDistance, txPowerDBm, txGainDB, rxGainDB, startM, speedMPS, sampleRate float64) *Mobility {
	if sampleRate <= 0 {
		panic("channel: mobility needs a positive sample rate")
	}
	rng, src := seededRand()
	return &Mobility{
		Model: model, TxPowerDBm: txPowerDBm, TxGainDB: txGainDB, RxGainDB: rxGainDB,
		StartM: startM, SpeedMPS: speedMPS, SampleRate: sampleRate,
		BlockSamples: 64, rng: rng, src: src,
	}
}

// Name implements Stage.
func (m *Mobility) Name() string { return "mobility" }

// RSSIAt returns the mean received power at trajectory time t seconds,
// using the shadowing drawn by the last Reset.
func (m *Mobility) RSSIAt(t float64) float64 {
	d := m.StartM + m.SpeedMPS*t
	if d < 1 {
		d = 1
	}
	loss := m.Model.ReferenceLossDB() + 10*m.Model.Exponent*math.Log10(d) + m.shadowDB
	return m.TxPowerDBm + m.TxGainDB + m.RxGainDB - loss
}

// Reset implements Stage: it draws the packet's shadowing term.
func (m *Mobility) Reset(seed int64) {
	m.src.Seed(seed)
	m.shadowDB = 0
	if m.Model.ShadowSigmaDB > 0 {
		m.shadowDB = m.rng.NormFloat64() * m.Model.ShadowSigmaDB
	}
}

// ApplyInto implements Stage: each block is scaled so the unit-mean-power
// input sits at the trajectory's instantaneous RSSI.
func (m *Mobility) ApplyInto(dst, sig iq.Samples) iq.Samples {
	checkLen(dst, sig)
	p := sig.Power()
	if p == 0 {
		if !aliased(dst, sig) {
			copy(dst, sig)
		}
		return dst
	}
	block := m.BlockSamples
	if block < 1 {
		block = 64
	}
	norm := math.Sqrt(p)
	for lo := 0; lo < len(sig); lo += block {
		hi := lo + block
		if hi > len(sig) {
			hi = len(sig)
		}
		tMid := (float64(lo+hi) / 2) / m.SampleRate
		amp := iq.DBmToAmplitude(m.RSSIAt(tMid)) / norm
		g := complex(amp, 0)
		for i := lo; i < hi; i++ {
			dst[i] = sig[i] * g
		}
	}
	return dst
}
