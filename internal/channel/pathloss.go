package channel

import (
	"math"
	"math/rand"
)

// LogDistance is the standard log-distance path-loss model with optional
// lognormal shadowing, used to map the campus testbed geometry (Fig. 7) to
// per-node link budgets.
type LogDistance struct {
	// FreqHz is the carrier frequency (sets the 1 m reference loss).
	FreqHz float64
	// Exponent is the path-loss exponent; ~2.7-3.5 for a campus with
	// buildings. The testbed uses 2.9.
	Exponent float64
	// ShadowSigmaDB is the standard deviation of lognormal shadowing.
	ShadowSigmaDB float64
}

// ReferenceLossDB returns free-space loss at 1 m for the carrier.
func (m LogDistance) ReferenceLossDB() float64 {
	// FSPL(d=1m) = 20 log10(4*pi*d*f/c)
	return 20 * math.Log10(4*math.Pi*m.FreqHz/299792458.0)
}

// PathLossDB returns the loss at distance d in meters, with deterministic
// shadowing drawn from the given seed (one seed per link keeps the testbed
// reproducible). Distances under 1 m clamp to 1 m.
func (m LogDistance) PathLossDB(d float64, shadowSeed int64) float64 {
	if d < 1 {
		d = 1
	}
	loss := m.ReferenceLossDB() + 10*m.Exponent*math.Log10(d)
	if m.ShadowSigmaDB > 0 {
		rng := rand.New(rand.NewSource(shadowSeed))
		loss += rng.NormFloat64() * m.ShadowSigmaDB
	}
	return loss
}

// RSSIdBm returns the received power for a transmit power and antenna gains
// over a link of distance d.
func (m LogDistance) RSSIdBm(txDBm, txGainDB, rxGainDB, d float64, shadowSeed int64) float64 {
	return txDBm + txGainDB + rxGainDB - m.PathLossDB(d, shadowSeed)
}

// RangeFor returns the distance at which RSSI falls to the given sensitivity
// (ignoring shadowing) — used to sanity-check testbed geometry against LoRa
// link budgets.
func (m LogDistance) RangeFor(txDBm, txGainDB, rxGainDB, sensitivityDBm float64) float64 {
	budget := txDBm + txGainDB + rxGainDB - sensitivityDBm
	exp := (budget - m.ReferenceLossDB()) / (10 * m.Exponent)
	return math.Pow(10, exp)
}
