// Package power models the tinySDR power management unit: the seven power
// domains of Table 3, their regulators, an energy ledger that integrates
// per-component power over the simulated clock, and the LiPo battery used
// for lifetime projections.
//
// Every power figure in the evaluation (sleep power, Fig. 9 transmit curve,
// LoRa/BLE packet power, OTA update energy, battery lifetimes) is an output
// of this ledger, not a hard-coded answer: component models push their state
// power and the ledger integrates state x time.
package power

import (
	"fmt"
	"sort"
	"time"

	"github.com/uwsdr/tinysdr/internal/sim"
)

// Sink receives power-state updates from component models. The PMU is the
// canonical implementation; tests may substitute their own.
type Sink interface {
	// SetPower declares that the named component now draws watts.
	SetPower(component string, watts float64)
}

// Ledger integrates per-component power draw over simulated time.
type Ledger struct {
	clock *sim.Clock
	items map[string]*ledgerItem
}

type ledgerItem struct {
	power  float64       // current draw in watts
	since  time.Duration // last integration point
	energy float64       // accumulated joules
}

// NewLedger returns an empty ledger driven by the given clock.
func NewLedger(clock *sim.Clock) *Ledger {
	return &Ledger{clock: clock, items: map[string]*ledgerItem{}}
}

func (l *Ledger) sync(it *ledgerItem) {
	now := l.clock.Now()
	it.energy += it.power * (now - it.since).Seconds()
	it.since = now
}

// SetPower updates the draw of a component, integrating the energy consumed
// at its previous level first. Negative power panics: components cannot
// generate energy.
func (l *Ledger) SetPower(component string, watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("power: negative draw %v W for %s", watts, component))
	}
	it, ok := l.items[component]
	if !ok {
		it = &ledgerItem{since: l.clock.Now()}
		l.items[component] = it
	}
	l.sync(it)
	it.power = watts
}

// Power returns the current draw of a component in watts (0 if unknown).
func (l *Ledger) Power(component string) float64 {
	if it, ok := l.items[component]; ok {
		return it.power
	}
	return 0
}

// names returns the ledger's components in sorted order. Summing in a fixed
// order keeps every energy and power figure bit-reproducible: float addition
// is not associative, and Go randomizes map iteration per run.
func (l *Ledger) names() []string {
	out := make([]string, 0, len(l.items))
	for name := range l.items {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TotalPower returns the current system draw in watts.
func (l *Ledger) TotalPower() float64 {
	var sum float64
	for _, name := range l.names() {
		sum += l.items[name].power
	}
	return sum
}

// EnergyOf returns the joules consumed so far by one component.
func (l *Ledger) EnergyOf(component string) float64 {
	it, ok := l.items[component]
	if !ok {
		return 0
	}
	l.sync(it)
	return it.energy
}

// Energy returns the total joules consumed by all components.
func (l *Ledger) Energy() float64 {
	var sum float64
	for _, name := range l.names() {
		it := l.items[name]
		l.sync(it)
		sum += it.energy
	}
	return sum
}

// Reset zeroes the accumulated energy of every component, keeping current
// power levels. Use it to scope a measurement window, e.g. one OTA session.
func (l *Ledger) Reset() {
	for _, it := range l.items {
		it.energy = 0
		it.since = l.clock.Now()
	}
}

// Entry is one component's share of a ledger report.
type Entry struct {
	Component string
	PowerW    float64
	EnergyJ   float64
}

// Report returns per-component power and energy, sorted by descending energy
// then name, for the evaluation printouts.
func (l *Ledger) Report() []Entry {
	out := make([]Entry, 0, len(l.items))
	for name, it := range l.items {
		l.sync(it)
		out = append(out, Entry{Component: name, PowerW: it.power, EnergyJ: it.energy})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyJ != out[j].EnergyJ {
			return out[i].EnergyJ > out[j].EnergyJ
		}
		return out[i].Component < out[j].Component
	})
	return out
}
