package power

import (
	"math"
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/sim"
)

func TestLedgerIntegratesEnergy(t *testing.T) {
	clock := sim.NewClock()
	l := NewLedger(clock)
	l.SetPower("radio", 0.1) // 100 mW
	clock.Advance(10 * time.Second)
	if got := l.EnergyOf("radio"); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("energy = %v J, want 1 J", got)
	}
	l.SetPower("radio", 0.2)
	clock.Advance(5 * time.Second)
	if got := l.EnergyOf("radio"); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("energy = %v J, want 2 J", got)
	}
}

func TestLedgerMultipleComponents(t *testing.T) {
	clock := sim.NewClock()
	l := NewLedger(clock)
	l.SetPower("a", 0.001)
	l.SetPower("b", 0.002)
	clock.Advance(time.Second)
	if got := l.Energy(); math.Abs(got-0.003) > 1e-12 {
		t.Errorf("total energy = %v, want 0.003", got)
	}
	if got := l.TotalPower(); math.Abs(got-0.003) > 1e-12 {
		t.Errorf("total power = %v, want 0.003", got)
	}
}

func TestLedgerReset(t *testing.T) {
	clock := sim.NewClock()
	l := NewLedger(clock)
	l.SetPower("x", 1)
	clock.Advance(time.Second)
	l.Reset()
	if got := l.Energy(); got != 0 {
		t.Errorf("energy after reset = %v", got)
	}
	clock.Advance(time.Second)
	if got := l.Energy(); math.Abs(got-1) > 1e-12 {
		t.Errorf("energy after reset+1s = %v, want 1 (power level must survive reset)", got)
	}
}

func TestLedgerSumsAreBitReproducible(t *testing.T) {
	// Energy and TotalPower must sum components in a fixed order: float
	// addition is not associative and Go randomizes map iteration, so an
	// order-sensitive sum would differ in its low bits between identical
	// runs — breaking the fleet campaigns' bit-identical contract.
	build := func() *Ledger {
		clock := sim.NewClock()
		l := NewLedger(clock)
		// Draws with no short exact binary representation expose
		// order-dependent rounding.
		l.SetPower("radio", 0.1)
		l.SetPower("mcu", 0.007)
		l.SetPower("fpga", 0.0301)
		l.SetPower("flash", 1.3e-6)
		l.SetPower("pa", 0.223)
		clock.Advance(137 * time.Second)
		return l
	}
	wantE, wantP := build().Energy(), build().TotalPower()
	for i := 0; i < 50; i++ {
		l := build()
		if got := l.Energy(); got != wantE {
			t.Fatalf("Energy differs between identical ledgers: %v vs %v", got, wantE)
		}
		if got := l.TotalPower(); got != wantP {
			t.Fatalf("TotalPower differs between identical ledgers: %v vs %v", got, wantP)
		}
	}
}

func TestLedgerRejectsNegativePower(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative power must panic")
		}
	}()
	NewLedger(sim.NewClock()).SetPower("x", -1)
}

func TestLedgerReportOrdering(t *testing.T) {
	clock := sim.NewClock()
	l := NewLedger(clock)
	l.SetPower("small", 0.001)
	l.SetPower("big", 0.1)
	clock.Advance(time.Second)
	rep := l.Report()
	if len(rep) != 2 || rep[0].Component != "big" {
		t.Errorf("report = %+v, want big first", rep)
	}
}

func TestPMUDomainGating(t *testing.T) {
	p := NewPMU(sim.NewClock())
	if !p.DomainOn(V1) {
		t.Fatal("V1 must be on at power-up")
	}
	if p.DomainOn(V2) {
		t.Fatal("V2 must be off at power-up")
	}
	if err := p.SetDomain(V2, true); err != nil {
		t.Fatal(err)
	}
	if !p.DomainOn(V2) {
		t.Fatal("V2 should be on")
	}
	if err := p.SetDomain(V1, false); err == nil {
		t.Fatal("V1 shutdown must be rejected")
	}
	if err := p.SetDomain(Domain(99), true); err == nil {
		t.Fatal("unknown domain must be rejected")
	}
}

func TestPMUV5Range(t *testing.T) {
	p := NewPMU(sim.NewClock())
	if p.V5() != 1.8 {
		t.Errorf("V5 initial = %v, want 1.8 (minimum-power default)", p.V5())
	}
	if err := p.SetV5(3.3); err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{1.7, 3.7, 0} {
		if err := p.SetV5(v); err == nil {
			t.Errorf("SetV5(%v) accepted, want error", v)
		}
	}
}

func TestPMUSleepWake(t *testing.T) {
	p := NewPMU(sim.NewClock())
	p.WakeAll()
	for d := V1; d < numDomains; d++ {
		if !p.DomainOn(d) {
			t.Fatalf("domain %v off after WakeAll", d)
		}
	}
	p.Sleep()
	if !p.DomainOn(V1) {
		t.Fatal("V1 must survive Sleep")
	}
	for d := V2; d < numDomains; d++ {
		if p.DomainOn(d) {
			t.Fatalf("domain %v on after Sleep", d)
		}
	}
}

func TestPMUConversionOverheadTracksLoad(t *testing.T) {
	p := NewPMU(sim.NewClock())
	base := p.Ledger().Power("regulators")
	p.SetPower("fpga", 0.1)
	withLoad := p.Ledger().Power("regulators")
	want := 0.1 * converterLoss
	if math.Abs((withLoad-base)-want) > 1e-9 {
		t.Errorf("overhead delta = %v, want %v", withLoad-base, want)
	}
}

func TestSleepFloorBelowPaperBudget(t *testing.T) {
	// The regulator+board floor must leave room for the MCU LPM3 draw
	// within the paper's measured 30 µW system sleep power.
	floor := SleepFloorW()
	if floor >= 30e-6 {
		t.Errorf("sleep floor %v W leaves no budget for the MCU", floor)
	}
	if floor < 5e-6 {
		t.Errorf("sleep floor %v W implausibly low", floor)
	}
}

func TestDomainsTable(t *testing.T) {
	ds := Domains()
	if len(ds) != 7 {
		t.Fatalf("domain count = %d, want 7 (Table 3)", len(ds))
	}
	seen := map[Domain]bool{}
	for _, d := range ds {
		if seen[d.Domain] {
			t.Fatalf("duplicate domain %v", d.Domain)
		}
		seen[d.Domain] = true
		if len(d.Components) == 0 {
			t.Errorf("domain %v has no components", d.Domain)
		}
		if d.QuiescentA < d.ShutdownA {
			t.Errorf("domain %v: quiescent < shutdown current", d.Domain)
		}
	}
	// Table 3 component spot checks.
	if ds[V5.index()].Regulator != "SC195 (adjustable)" {
		t.Errorf("V5 regulator = %q", ds[V5.index()].Regulator)
	}
}

func (d Domain) index() int { return int(d) }

func TestDomainString(t *testing.T) {
	if V5.String() != "V5" {
		t.Errorf("V5.String() = %q", V5.String())
	}
	if Domain(42).String() == "V1" {
		t.Error("out-of-range domain must not alias V1")
	}
}

func TestBattery(t *testing.T) {
	b := DefaultBattery()
	if got := b.EnergyJ(); math.Abs(got-13320) > 1 {
		t.Errorf("1000 mAh @ 3.7 V = %v J, want 13320", got)
	}
	// §5.3: at 71 µW average the battery should last multiple years.
	life := b.Lifetime(71e-6)
	if y := Years(life); y < 5 {
		t.Errorf("lifetime at 71 µW = %.1f years, want > 5", y)
	}
	// 6.144 J per LoRa OTA update → ≈2100 updates (paper).
	ops := b.Operations(6.144)
	if ops < 2000 || ops > 2300 {
		t.Errorf("OTA updates per battery = %d, want ≈2168", ops)
	}
}

func TestBatteryDegenerateInputs(t *testing.T) {
	b := DefaultBattery()
	if b.Lifetime(0) <= 0 {
		t.Error("zero draw must return positive capped lifetime")
	}
	if b.Operations(0) <= 0 {
		t.Error("zero-energy ops must return positive cap")
	}
}

func TestPMUEnergyThroughSleepCycle(t *testing.T) {
	// One duty cycle: 1 s active at 100 mW, 9 s sleep at ~30 µW.
	clock := sim.NewClock()
	p := NewPMU(clock)
	p.WakeAll()
	p.SetPower("radio", 0.1)
	clock.Advance(time.Second)
	p.SetPower("radio", 0)
	p.SetPower("mcu", 19e-6) // LPM3-level draw
	p.Sleep()
	clock.Advance(9 * time.Second)
	e := p.Ledger().Energy()
	// Active: ~0.1 J x 1.08 overhead; sleep: ~30 µW x 9 s ≈ 0.27 mJ.
	if e < 0.1 || e > 0.12 {
		t.Errorf("cycle energy = %v J, want ≈0.108", e)
	}
}
