package power

import (
	"math"
	"time"
)

// Battery models the LiPo cell the paper's lifetime projections use.
type Battery struct {
	CapacityMAh float64
	VoltageV    float64
}

// DefaultBattery is the 1000 mAh 3.7 V LiPo cell of §5.2/§5.3.
func DefaultBattery() Battery { return Battery{CapacityMAh: 1000, VoltageV: BatteryVoltage} }

// EnergyJ returns the battery's total energy in joules.
func (b Battery) EnergyJ() float64 {
	return b.CapacityMAh / 1e3 * b.VoltageV * 3600
}

// Lifetime returns how long the battery sustains the given average draw.
// A non-positive draw yields an effectively infinite duration, capped at
// 100 years to stay representable.
func (b Battery) Lifetime(avgPowerW float64) time.Duration {
	const century = 100 * 365 * 24 * float64(time.Hour)
	if avgPowerW <= 0 {
		return time.Duration(century)
	}
	sec := b.EnergyJ() / avgPowerW
	d := sec * float64(time.Second)
	if d > century || math.IsInf(d, 1) {
		return time.Duration(century)
	}
	return time.Duration(d)
}

// Operations returns how many operations of the given energy the battery
// can supply (e.g. OTA reprogramming cycles in §5.3).
func (b Battery) Operations(energyPerOpJ float64) int {
	if energyPerOpJ <= 0 {
		return math.MaxInt32
	}
	n := b.EnergyJ() / energyPerOpJ
	if n > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(n)
}

// Years converts a duration to fractional years for lifetime reporting.
func Years(d time.Duration) float64 {
	return d.Hours() / (24 * 365)
}
