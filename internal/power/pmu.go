package power

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/sim"
)

// Domain identifies one of the seven power domains of Table 3.
type Domain int

// The tinySDR power domains (Table 3).
const (
	V1 Domain = iota // MCU — always on, TPS78218 LDO
	V2               // FPGA core 1.1 V — TPS62240
	V3               // FPGA 1.8 V I/O, flash — TPS62240
	V4               // FPGA 2.5 V — TPS62240
	V5               // I/Q radio, backbone radio, FPGA LVDS bank — SC195, programmable 1.8-3.6 V
	V6               // sub-GHz PA 3.5 V — TPS62080
	V7               // 2.4 GHz PA 3.0 V, microSD — TPS62240
	numDomains
)

// String returns the domain name as used in Table 3.
func (d Domain) String() string {
	if d < V1 || d >= numDomains {
		return fmt.Sprintf("Domain(%d)", int(d))
	}
	return [...]string{"V1", "V2", "V3", "V4", "V5", "V6", "V7"}[d]
}

// DomainInfo describes one row of Table 3 plus its regulator.
type DomainInfo struct {
	Domain     Domain
	Regulator  string
	VoltageV   float64 // nominal output voltage (V5 is programmable)
	Components []string
	// QuiescentA and ShutdownA are the regulator's quiescent and shutdown
	// currents, drawn from the battery rail.
	QuiescentA float64
	ShutdownA  float64
}

// BatteryVoltage is the nominal 3.7 V LiPo rail feeding all regulators.
const BatteryVoltage = 3.7

// converterLoss is the fractional input-power overhead of the switching
// regulators when delivering load power (≈92% efficiency). It is calibrated
// together with the component power constants against the paper's
// end-to-end measurements (Fig. 9, §5.2).
const converterLoss = 0.08

// boardLeakageW is the residual board-level draw (pull-ups, decoupling and
// PCB leakage, level shifting) present whenever the battery is connected.
// It is calibrated so that deep-sleep total lands on the paper's measured
// 30 µW (the BOM-ideal sum of sleep currents alone is ≈11 µW).
const boardLeakageW = 18.9e-6

// Domains returns the Table 3 power-domain inventory.
func Domains() []DomainInfo {
	return []DomainInfo{
		{V1, "TPS78218 (LDO)", 1.8, []string{"MCU"}, 0.45e-6, 0.45e-6},
		{V2, "TPS62240", 1.1, []string{"FPGA core"}, 25e-6, 0.1e-6},
		{V3, "TPS62240", 1.8, []string{"FPGA 1.8V I/O", "flash memory"}, 25e-6, 0.1e-6},
		{V4, "TPS62240", 2.5, []string{"FPGA 2.5V bank"}, 25e-6, 0.1e-6},
		{V5, "SC195 (adjustable)", 1.8, []string{"I/Q radio", "backbone radio", "FPGA LVDS bank"}, 28e-6, 1.0e-6},
		{V6, "TPS62080", 3.5, []string{"sub-GHz PA"}, 6e-6, 0.3e-6},
		{V7, "TPS62240", 3.0, []string{"2.4 GHz PA", "microSD"}, 25e-6, 0.1e-6},
	}
}

// PMU is the power management unit: it gates the seven domains, tracks the
// programmable V5 rail, and charges regulator overhead (quiescent or
// shutdown current plus conversion loss) to the energy ledger.
//
// PMU implements Sink; component models report their draw through it so the
// conversion overhead stays consistent with the instantaneous load.
type PMU struct {
	ledger *Ledger
	on     [numDomains]bool
	v5     float64
	loadW  map[string]float64 // component draws, excluding overhead items
}

// NewPMU returns a PMU with only the always-on MCU domain (V1) enabled —
// the state the board powers up in — and board leakage charged.
func NewPMU(clock *sim.Clock) *PMU {
	p := &PMU{
		ledger: NewLedger(clock),
		v5:     1.8,
		loadW:  map[string]float64{},
	}
	p.on[V1] = true
	p.ledger.SetPower("board-leakage", boardLeakageW)
	p.refresh()
	return p
}

// Ledger exposes the underlying energy ledger.
func (p *PMU) Ledger() *Ledger { return p.ledger }

// SetPower implements Sink: components report their instantaneous draw here.
func (p *PMU) SetPower(component string, watts float64) {
	if watts < 0 {
		panic(fmt.Sprintf("power: negative draw %v W for %s", watts, component))
	}
	p.loadW[component] = watts
	p.ledger.SetPower(component, watts)
	p.refresh()
}

// SetDomain switches one power domain on or off. V1 cannot be switched off:
// the MCU must stay powered to perform power management at all.
func (p *PMU) SetDomain(d Domain, on bool) error {
	if d < V1 || d >= numDomains {
		return fmt.Errorf("power: unknown domain %v", d)
	}
	if d == V1 && !on {
		return fmt.Errorf("power: V1 (MCU) domain cannot be shut down")
	}
	p.on[d] = on
	p.refresh()
	return nil
}

// DomainOn reports whether a domain is currently enabled.
func (p *PMU) DomainOn(d Domain) bool {
	return d >= V1 && d < numDomains && p.on[d]
}

// SetV5 programs the shared radio rail; the SC195 supports 1.8-3.6 V.
func (p *PMU) SetV5(voltage float64) error {
	if voltage < 1.8 || voltage > 3.6 {
		return fmt.Errorf("power: V5 voltage %.2f V outside SC195 range 1.8-3.6 V", voltage)
	}
	p.v5 = voltage
	return nil
}

// V5 returns the programmed radio-rail voltage.
func (p *PMU) V5() float64 { return p.v5 }

// Sleep gates every domain except V1, the deep-sleep state of §5.1.
// Component models must separately drop to their sleep draw.
func (p *PMU) Sleep() {
	for d := V2; d < numDomains; d++ {
		p.on[d] = false
	}
	p.refresh()
}

// WakeAll enables every domain.
func (p *PMU) WakeAll() {
	for d := V1; d < numDomains; d++ {
		p.on[d] = true
	}
	p.refresh()
}

// refresh recomputes the regulator-overhead ledger entry from the domain
// states and the current component load.
func (p *PMU) refresh() {
	var overhead float64
	for _, info := range Domains() {
		if p.on[info.Domain] {
			overhead += info.QuiescentA * BatteryVoltage
		} else {
			overhead += info.ShutdownA * BatteryVoltage
		}
	}
	var load float64
	for _, w := range p.loadW {
		load += w
	}
	overhead += load * converterLoss
	p.ledger.SetPower("regulators", overhead)
}

// SleepFloorW returns the theoretical deep-sleep draw of the regulators and
// board alone (no component draw): the budget the MCU's LPM3 current adds to.
func SleepFloorW() float64 {
	var overhead float64
	for _, info := range Domains() {
		if info.Domain == V1 {
			overhead += info.QuiescentA * BatteryVoltage
		} else {
			overhead += info.ShutdownA * BatteryVoltage
		}
	}
	return overhead + boardLeakageW
}
