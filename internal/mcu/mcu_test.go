package mcu

import (
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/sim"
)

func newTestMCU() (*MCU, *power.PMU) {
	p := power.NewPMU(sim.NewClock())
	return New(p), p
}

func TestStateTransitionsUpdatePower(t *testing.T) {
	m, p := newTestMCU()
	if m.State() != StateActive {
		t.Fatal("MCU must boot active")
	}
	active := p.Ledger().Power("mcu")
	m.SetState(StateLPM3)
	sleep := p.Ledger().Power("mcu")
	if sleep >= active {
		t.Errorf("LPM3 draw %v >= active %v", sleep, active)
	}
	if sleep > 5e-6 {
		t.Errorf("LPM3 draw %v W, want < 5 µW", sleep)
	}
	m.SetState(StateIdle)
	if got := p.Ledger().Power("mcu"); got <= sleep || got >= active {
		t.Errorf("idle draw %v not between LPM3 and active", got)
	}
}

func TestStateString(t *testing.T) {
	if StateLPM3.String() != "LPM3" || StateActive.String() != "active" {
		t.Error("state names wrong")
	}
	if State(9).String() == "active" {
		t.Error("unknown state must not alias")
	}
}

func TestSRAMBudget(t *testing.T) {
	m, _ := newTestMCU()
	// The OTA decompressor allocates one 30 kB block — must fit.
	if err := m.AllocSRAM(30 * 1024); err != nil {
		t.Fatalf("30 kB block rejected: %v", err)
	}
	// A full 579 kB bitstream cannot fit — this is why the OTA protocol
	// compresses per-block (§3.4).
	if err := m.AllocSRAM(579 * 1024); err == nil {
		t.Fatal("579 kB allocation must fail on a 64 kB part")
	}
	m.FreeSRAM(30 * 1024)
	if m.SRAMUsed() != 0 {
		t.Errorf("SRAM used = %d after free", m.SRAMUsed())
	}
}

func TestSRAMFreeValidation(t *testing.T) {
	m, _ := newTestMCU()
	defer func() {
		if recover() == nil {
			t.Fatal("over-free must panic")
		}
	}()
	m.FreeSRAM(1)
}

func TestAllocNegative(t *testing.T) {
	m, _ := newTestMCU()
	if err := m.AllocSRAM(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestProgramBudget(t *testing.T) {
	m, _ := newTestMCU()
	// Paper: MCU programs are ≈78 kB — well within 256 kB.
	if err := m.LoadProgram(78 * 1024); err != nil {
		t.Fatal(err)
	}
	if m.ProgramSize() != 78*1024 {
		t.Errorf("program size = %d", m.ProgramSize())
	}
	if err := m.LoadProgram(300 * 1024); err == nil {
		t.Fatal("oversized program accepted")
	}
}

func TestMACFootprintFitsComfortably(t *testing.T) {
	// §5.2: TTN MAC + radio control + PMU + decompressor take 18% of MCU
	// resources. Verify an 18%-of-flash program plus a 30 kB SRAM block
	// leaves most of the part free.
	m, _ := newTestMCU()
	if err := m.LoadProgram(FlashSize * 18 / 100); err != nil {
		t.Fatal(err)
	}
	if err := m.AllocSRAM(30 * 1024); err != nil {
		t.Fatal(err)
	}
	if free := SRAMSize - m.SRAMUsed(); free < SRAMSize/2 {
		t.Errorf("only %d bytes SRAM free", free)
	}
}

func TestExecTime(t *testing.T) {
	if got := ExecTime(48_000_000); got != time.Second {
		t.Errorf("48M cycles = %v, want 1s", got)
	}
	if got := ExecTime(0); got != 0 {
		t.Errorf("0 cycles = %v", got)
	}
}

func TestDecompressTimeMeetsPaperBudget(t *testing.T) {
	// §5.3: decompressing received files takes at most 450 ms.
	d := DecompressTime(579 * 1024)
	if d > 450*time.Millisecond {
		t.Errorf("full bitstream decompress = %v, exceeds 450 ms budget", d)
	}
	if d < 200*time.Millisecond {
		t.Errorf("decompress = %v, implausibly fast for a Cortex-M4F", d)
	}
}
