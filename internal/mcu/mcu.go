// Package mcu models the MSP432P401R microcontroller on tinySDR: its sleep
// states, memory budgets, and a cycle-cost model for on-board computation
// such as the miniLZO decompression of OTA updates.
//
// The MCU is the always-powered controller of the platform (power domain V1):
// it runs the MAC layers, drives every SPI peripheral, performs power
// management, and orchestrates OTA reprogramming.
package mcu

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/power"
)

// MSP432P401R budgets (§3.1.1).
const (
	// SRAMSize is the on-chip SRAM: 64 KB.
	SRAMSize = 64 * 1024
	// FlashSize is the on-chip flash for MCU programs: 256 KB.
	FlashSize = 256 * 1024
	// ClockHz is the Cortex-M4F core clock.
	ClockHz = 48e6
)

// State is an MCU operating state.
type State int

const (
	// StateActive is the full-speed run state (CPU + peripherals).
	StateActive State = iota
	// StateIdle is a wait-for-interrupt state with peripherals clocked:
	// the MCU's posture while DMA/SPI move data (e.g. OTA reception).
	StateIdle
	// StateLPM3 is the deep sleep state: RTC wakeup timer only. Entering
	// LPM3 is what enables the platform's 30 µW system sleep (§5.1).
	StateLPM3
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateIdle:
		return "idle"
	case StateLPM3:
		return "LPM3"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Per-state battery draw. Active/idle values are calibrated together with
// the FPGA and radio models against the paper's end-to-end measurements;
// LPM3 is the datasheet's ~0.85 µA RTC-mode current at the battery rail.
const (
	activePowerW = 12e-3
	idlePowerW   = 7e-3
	lpm3PowerW   = 3.1e-6
)

// DecompressCyclesPerByte is the cost of the miniLZO decompressor on the
// Cortex-M4F. At 48 MHz this yields ≈0.42 s for a full 579 kB bitstream,
// matching the paper's "maximum of 450 ms" (§5.3).
const DecompressCyclesPerByte = 35

// MCU is one MSP432 instance.
type MCU struct {
	sink      power.Sink
	state     State
	sramUsed  int
	flashUsed int
}

// New returns an MCU in the active state reporting power to sink.
func New(sink power.Sink) *MCU {
	m := &MCU{sink: sink}
	m.SetState(StateActive)
	return m
}

// SetState transitions the MCU and updates its power draw.
func (m *MCU) SetState(s State) {
	m.state = s
	switch s {
	case StateActive:
		m.sink.SetPower("mcu", activePowerW)
	case StateIdle:
		m.sink.SetPower("mcu", idlePowerW)
	case StateLPM3:
		m.sink.SetPower("mcu", lpm3PowerW)
	default:
		panic(fmt.Sprintf("mcu: unknown state %d", int(s)))
	}
}

// State returns the current operating state.
func (m *MCU) State() State { return m.state }

// AllocSRAM reserves n bytes of working memory, enforcing the 64 KB budget
// that shapes the OTA block size (§3.4: 30 kB blocks "that will fit in the
// MCU memory").
func (m *MCU) AllocSRAM(n int) error {
	if n < 0 {
		return fmt.Errorf("mcu: negative allocation %d", n)
	}
	if m.sramUsed+n > SRAMSize {
		return fmt.Errorf("mcu: SRAM exhausted: %d + %d > %d", m.sramUsed, n, SRAMSize)
	}
	m.sramUsed += n
	return nil
}

// FreeSRAM releases n bytes.
func (m *MCU) FreeSRAM(n int) {
	if n < 0 || n > m.sramUsed {
		panic(fmt.Sprintf("mcu: bad free of %d with %d used", n, m.sramUsed))
	}
	m.sramUsed -= n
}

// SRAMUsed returns the bytes currently allocated.
func (m *MCU) SRAMUsed() int { return m.sramUsed }

// LoadProgram records a firmware image of n bytes into MCU flash, enforcing
// the 256 KB budget the OTA system assumes.
func (m *MCU) LoadProgram(n int) error {
	if n < 0 || n > FlashSize {
		return fmt.Errorf("mcu: program of %d bytes exceeds %d-byte flash", n, FlashSize)
	}
	m.flashUsed = n
	return nil
}

// ProgramSize returns the loaded firmware size.
func (m *MCU) ProgramSize() int { return m.flashUsed }

// ExecTime converts a cycle count to run time at the 48 MHz core clock.
func ExecTime(cycles int64) time.Duration {
	return time.Duration(float64(cycles) / ClockHz * float64(time.Second))
}

// DecompressTime returns the CPU time to LZO-decompress n output bytes.
func DecompressTime(n int) time.Duration {
	return ExecTime(int64(n) * DecompressCyclesPerByte)
}
