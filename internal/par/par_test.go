package par

import (
	"fmt"
	"testing"
)

func TestTrialsPositionalResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Trials(workers, 50,
			func() (int, error) { return 0, nil },
			func(_ int, trial int) (int, error) { return trial * 2, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range got {
			if r != i*2 {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, r, i*2)
			}
		}
	}
}

func TestTrialsEveryTrialRunsOnError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ran := make([]bool, 20)
		_, err := Do(workers, 20, func(trial int) (int, error) {
			ran[trial] = true
			if trial == 5 || trial == 2 {
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial, nil
		})
		if err == nil || err.Error() != "trial 2 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index trial 2", workers, err)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: trial %d never ran", workers, i)
			}
		}
	}
}

func TestTrialsNewStateFailure(t *testing.T) {
	_, err := Trials(4, 10,
		func() (int, error) { return 0, fmt.Errorf("no state") },
		func(int, int) (int, error) { return 0, nil })
	if err == nil || err.Error() != "no state" {
		t.Fatalf("err = %v, want state-construction failure", err)
	}
}

func TestTrialsClampsWorkers(t *testing.T) {
	got, err := Do(-5, 3, func(trial int) (int, error) { return trial, nil })
	if err != nil || len(got) != 3 {
		t.Fatalf("got %v, %v", got, err)
	}
	if empty, err := Do(8, 0, func(int) (int, error) { return 0, fmt.Errorf("must not run") }); err != nil || len(empty) != 0 {
		t.Fatalf("n=0: got %v, %v", empty, err)
	}
}
