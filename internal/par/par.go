// Package par provides the deterministic worker-pool primitive shared by
// the Monte-Carlo eval runner and the testbed fleet programmer.
//
// The contract: trials are claimed in index order from an atomic counter,
// each worker owns private state, results are stored positionally, every
// trial runs even after a failure, and the lowest-index error wins — so
// the output (results and error alike) is independent of the worker count
// and of goroutine scheduling.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers maps a configured pool size to a concrete one: positive
// values pass through, anything else means all CPUs. The shared convention
// for eval.Config.Workers and fleet.Spec.Workers.
func ResolveWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return runtime.NumCPU()
}

// SplitSeed derives a decorrelated child seed from a parent seed and a
// stream index using the SplitMix64 finalizer. Monte-Carlo trials that
// need fresh randomness draw their own substream from (seed, trialIndex)
// — see eval.TrialSeed — so results stay bit-reproducible regardless of
// how trials are scheduled across workers.
func SplitSeed(seed, stream int64) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(stream) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Trials executes fn for trials 0..n-1 across a worker pool of the given
// size (minimum 1, clamped to n). Each worker constructs its own state
// with newState — single-goroutine objects like demodulator scratch
// arenas get a private deterministic copy per worker. fn must depend only
// on (state, trial). On failure the error of the lowest trial index is
// returned and the results slice is nil.
func Trials[S, R any](workers, n int, newState func() (S, error), fn func(state S, trial int) (R, error)) ([]R, error) {
	results := make([]R, n)
	if n == 0 {
		return results, nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}

	var next atomic.Int64
	var mu sync.Mutex
	var errTrial int
	var firstErr error
	record := func(trial int, err error) {
		mu.Lock()
		if firstErr == nil || trial < errTrial {
			errTrial, firstErr = trial, err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state, err := newState()
			if err != nil {
				record(0, err)
				return
			}
			// Workers record failures and keep claiming: every trial
			// runs regardless of scheduling, so the reported
			// lowest-index error is independent of the worker count.
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, err := fn(state, i)
				if err != nil {
					record(i, err)
					continue
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Do is Trials for stateless trial bodies.
func Do[R any](workers, n int, fn func(trial int) (R, error)) ([]R, error) {
	return Trials(workers, n, func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, trial int) (R, error) { return fn(trial) })
}
