// Package analysis is a dependency-free subset of the
// golang.org/x/tools/go/analysis API: just enough surface (Analyzer, Pass,
// Diagnostic) for the tinysdr-vet suite to be written in the upstream
// idiom. The container this repo builds in has no module proxy access, so
// the real x/tools cannot be vendored; every analyzer in internal/lint is
// written against this shim so that swapping the import path to
// golang.org/x/tools/go/analysis (and deleting this package) is a
// mechanical change once the dependency is allowed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Unlike the upstream type it carries
// the waiver token that suppresses its diagnostics: a source line ending in
// "//lint:<Waiver> <reason>" (or preceded by a comment line of that form)
// is exempt, and the driver requires the reason to be non-empty.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and golden counts.
	Name string
	// Doc is the one-paragraph help text (first line = summary).
	Doc string
	// Waiver is the //lint: directive token that waives this analyzer's
	// diagnostics ("allocok", "detok", ...). Empty means unwaivable.
	Waiver string
	// Run executes the check over one package.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked form to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
