// Package analysistest runs lint analyzers over seeded fixture packages
// under testdata/src and compares the diagnostics against `// want`
// expectations — a dependency-free equivalent of
// golang.org/x/tools/go/analysis/analysistest, built on the same
// go-list-export loader as the real driver so fixtures are type-checked
// exactly like production packages.
//
// A fixture line asserts its diagnostics with a trailing comment:
//
//	buf := make([]byte, n) // want `allocates`
//
// The backquoted pattern is an unanchored regexp matched against every
// diagnostic reported on that line (after waiver filtering, so fixtures
// exercise //lint: waivers too). Lines without a want comment must produce
// no diagnostics.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"github.com/uwsdr/tinysdr/internal/lint"
)

// wantRE extracts the expectation pattern from a fixture comment.
var wantRE = regexp.MustCompile("// want `([^`]+)`")

// Run lints every fixture package found under dir (each directory with
// .go files is one package, its import path the slash path relative to
// dir) with the given analyzers and reports mismatches through t.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) *lint.Result {
	t.Helper()
	fset, pkgs := LoadFixtures(t, dir)
	res, err := lint.RunPackages(fset, pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}
	compare(t, fset, pkgs, res)
	return res
}

// LoadFixtures parses and type-checks every fixture package under dir,
// resolving their stdlib imports through compiled export data.
func LoadFixtures(t *testing.T, dir string) (*token.FileSet, []*lint.Package) {
	t.Helper()
	byDir := map[string][]string{}
	var dirs []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		pd := filepath.Dir(path)
		if len(byDir[pd]) == 0 {
			dirs = append(dirs, pd)
		}
		byDir[pd] = append(byDir[pd], filepath.Base(path))
		return nil
	})
	if err != nil {
		t.Fatalf("walking fixtures %s: %v", dir, err)
	}
	if len(dirs) == 0 {
		t.Fatalf("no fixture packages under %s", dir)
	}
	sort.Strings(dirs)

	imports := fixtureImports(t, dirs, byDir)
	exports, err := lint.StdlibExports(imports)
	if err != nil {
		t.Fatalf("resolving fixture imports %v: %v", imports, err)
	}

	fset := token.NewFileSet()
	var pkgs []*lint.Package
	for _, pd := range dirs {
		rel, err := filepath.Rel(dir, pd)
		if err != nil {
			t.Fatalf("fixture path %s: %v", pd, err)
		}
		files := byDir[pd]
		sort.Strings(files)
		pkg, err := lint.CheckFixture(fset, filepath.ToSlash(rel), pd, files, exports)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", pd, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs
}

// fixtureImports collects the union of import paths across all fixture
// files by a lightweight parse of their import clauses.
func fixtureImports(t *testing.T, dirs []string, byDir map[string][]string) []string {
	t.Helper()
	seen := map[string]bool{}
	var out []string
	fset := token.NewFileSet()
	for _, pd := range dirs {
		for _, name := range byDir[pd] {
			f, err := parseImportsOnly(fset, filepath.Join(pd, name))
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", name, err)
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// expectation is one `// want` assertion.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// compare diffs the run's diagnostics against the fixtures' want comments:
// every diagnostic must be wanted, every want must be matched.
func compare(t *testing.T, fset *token.FileSet, pkgs []*lint.Package, res *lint.Result) {
	t.Helper()
	wants := collectWants(t, fset, pkgs)
	matched := make([]bool, len(wants))
	for _, d := range res.Diags {
		ok := false
		for i, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts all want comments from the fixture ASTs.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*lint.Package) []expectation {
	t.Helper()
	var wants []expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						pos := fset.Position(c.Slash)
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					pos := fset.Position(c.Slash)
					wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseImportsOnly parses just the import clause of a file.
func parseImportsOnly(fset *token.FileSet, path string) (*ast.File, error) {
	return parser.ParseFile(fset, path, nil, parser.ImportsOnly)
}
