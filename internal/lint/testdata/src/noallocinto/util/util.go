// Package util has no hot-path segment in its import path: *Into
// functions here are not zero-alloc contracts.
package util

// CopyInto may allocate freely — the package is outside the hot set.
func CopyInto(dst []byte, n int) []byte {
	buf := make([]byte, n)
	return append(dst[:0], buf...)
}
