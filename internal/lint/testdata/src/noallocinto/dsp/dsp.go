// Package dsp is a seeded fixture for the noallocinto analyzer: the
// import path carries the "dsp" hot segment, so exported *Into/*From
// functions are zero-alloc contracts.
package dsp

import (
	"errors"
	"fmt"
)

type pair struct{ a, b int }

func emit(v any) int {
	if v == nil {
		return 0
	}
	return 1
}

// ProcessInto exercises every allocation form the analyzer must flag.
func ProcessInto(dst []float64, n int, name string, e error) []float64 {
	if n < 0 {
		panic(fmt.Sprintf("dsp: negative length %d", n)) // guard path: exempt
	}
	buf := make([]float64, n) // want `make allocates`
	_ = buf
	p := new(int) // want `new allocates`
	_ = p
	dst = append(dst, 1) // want `append may grow`
	s := []int{1, 2}     // want `slice literal allocates`
	_ = s
	m := map[int]int{1: 2} // want `map literal allocates`
	_ = m
	q := &pair{1, 2} // want `composite literal escapes`
	_ = q
	f := func() int { return n } // want `closure literal allocates`
	_ = f
	label := name + "-x" // want `string concatenation allocates`
	_ = label
	msg := fmt.Sprintf("n=%d", n) // want `formatting call allocates`
	_ = msg
	err := errors.New("dsp: bad input") // want `formatting call allocates`
	_ = err
	_ = emit(n) // want `boxes the value`
	_ = emit(e) // interface-to-interface: no box

	v := pair{3, 4} // value composite stays on the stack: exempt
	_ = v
	//lint:allocok fixture: deliberate cold-path growth under waiver
	w := make([]float64, n)
	return w
}

// ScaleBy is exported but not *Into/*From: allocation is fine here.
func ScaleBy(n int) []float64 {
	return make([]float64, n)
}

// helperInto is unexported: not part of the hot-path contract.
func helperInto(n int) []int {
	return make([]int, n)
}
