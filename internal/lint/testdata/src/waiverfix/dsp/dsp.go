// Package dsp is a seeded fixture for the waiver mechanism itself: an
// empty-reason waiver, an unused waiver and an unknown token. It is NOT
// run through the want-comment comparison (directive lines cannot carry a
// second comment); TestWaiverMechanism asserts on the driver diagnostics
// directly.
package dsp

// GrowInto has a reasonless waiver: the waiver is rejected AND the make
// diagnostic survives.
func GrowInto(dst []int, n int) []int {
	//lint:allocok
	buf := make([]int, n)
	return append(dst[:0], buf...)
}

// CleanInto carries a waiver that suppresses nothing.
func CleanInto(dst []int) []int {
	//lint:allocok this line allocates nothing, so the waiver is dead weight
	copy(dst, dst)
	return dst
}

// TokenInto carries an unknown token.
func TokenInto(dst []int) []int {
	//lint:bogusok no analyzer owns this token
	copy(dst, dst)
	return dst
}
