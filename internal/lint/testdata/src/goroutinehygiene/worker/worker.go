// Package worker is a seeded fixture for the goroutinehygiene analyzer:
// it is outside internal/par, internal/fleet and cmd/, so goroutines are
// forbidden, and it holds mutexes across sends and handler calls.
package worker

import (
	"net/http"
	"sync"
)

type state struct {
	mu sync.Mutex
	ch chan int
}

func work() {}

// Spawn launches a goroutine outside the sanctioned packages.
func Spawn() {
	go work() // want `goroutines outside internal/par, internal/fleet and cmd/`
}

// SendHeld sends on a channel with the mutex held.
func (s *state) SendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while a sync mutex is held`
	s.mu.Unlock()
}

// SendDeferHeld holds via a deferred unlock until function exit.
func (s *state) SendDeferHeld(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v // want `channel send while a sync mutex is held`
}

// SendReleased unlocks before sending: fine.
func (s *state) SendReleased(v int) {
	s.mu.Lock()
	v *= 2
	s.mu.Unlock()
	s.ch <- v
}

func writeJSON(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// ServeHeld calls into an http.ResponseWriter-taking function under the
// lock: the response should be served from a snapshot instead.
func (s *state) ServeHeld(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, 200) // want `HTTP handler call while a sync mutex is held`
}

// ServeSnapshot copies under the lock, serves after: fine.
func (s *state) ServeSnapshot(w http.ResponseWriter) {
	s.mu.Lock()
	code := 200
	s.mu.Unlock()
	writeJSON(w, code)
}
