// Package par is a seeded fixture: the "par" path segment marks the one
// place worker goroutines belong.
package par

import "sync"

// Fan runs fn n times across goroutines — allowed here.
func Fan(n int, fn func(int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // sanctioned package: no diagnostic
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
