// Package sim is a seeded fixture for the determinism analyzer in a
// non-metrics package: global rand and wall-clock reads are flagged
// everywhere, map iteration only where the function encodes JSON.
package sim

import (
	"encoding/json"
	"math/rand"
	"time"
)

// Draw uses the process-global source: never reproducible.
func Draw() int {
	return rand.Intn(6) // want `global math/rand.Intn`
}

// DrawSeeded derives everything from the seed: the approved pattern.
func DrawSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6) // methods on a seeded *rand.Rand are fine
}

// Stamp reads the wall clock outside cmd/ and the fleet server.
func Stamp() time.Time {
	return time.Now() // want `time.Now makes results depend on wall-clock`
}

// Encode serializes a map it iterates: the PR 2 Ledger bug class.
func Encode(m map[string]float64) ([]byte, error) {
	total := 0.0
	for _, v := range m { // want `map iteration order is random`
		total += v
	}
	type payload struct {
		Total float64 `json:"total"`
	}
	return json.Marshal(payload{Total: total})
}

// EncodeWaived carries a reviewed waiver for a commutative fold.
func EncodeWaived(m map[string]float64) ([]byte, error) {
	total := 0.0
	//lint:detok fixture: addition commutes, order cannot leak into the output
	for _, v := range m {
		total += v
	}
	return json.Marshal(total)
}

// Sum never touches an encoding path and is not in a metrics package:
// map iteration is unconstrained here.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
