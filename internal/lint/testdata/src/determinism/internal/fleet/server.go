// Package fleet is a seeded fixture: server.go in the fleet package is
// the one non-cmd file allowed to observe real time (HTTP serving).
package fleet

import "time"

// Uptime lives in server.go: exempt.
func Uptime(start time.Time) time.Duration {
	return time.Since(start)
}
