package fleet

import "time"

// ShardStamp is in the fleet package but NOT in server.go: the exemption
// is per-file, so this wall-clock read is still a violation.
func ShardStamp() time.Time {
	return time.Now() // want `time.Now makes results depend on wall-clock`
}
