// Package eval is a seeded fixture for the determinism analyzer inside a
// metrics package (the "eval" path segment): every map iteration is
// order-suspect, JSON or not.
package eval

// Collect aggregates per-trial metrics; iteration order would change the
// report byte stream.
func Collect(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m { // want `map iteration order is random`
		out = append(out, v)
	}
	return out
}
