// Command tool is a seeded fixture: cmd/ binaries may read the wall clock
// (they report human-facing timings, not simulated results).
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now() // cmd/ is exempt
	fmt.Println(time.Since(start))
}
