// Package sim is a seeded fixture for the seedflow analyzer: functions
// taking a seed (or rand source) must not read package-level mutable
// state.
package sim

import (
	"encoding/binary"
	"errors"
	"math/rand"
)

// counter is written by Bump below, so it is mutable state.
var counter int

// table is never written after initialization: an init-only lookup,
// constant for a build and exempt.
var table = []int{3, 1, 4, 1, 5}

// errBad is an error sentinel: exempt by convention.
var errBad = errors.New("sim: bad draw")

// Bump mutates counter (and takes no seed, so it is not checked).
func Bump() {
	counter++
}

// NewSim takes a seed but folds in the mutable counter: two runs with the
// same seed can diverge.
func NewSim(seed int64) int {
	return int(seed) + counter // want `reads package-level mutable state sim\.counter`
}

// Mix takes a rand source — same contract, same violation.
func Mix(src rand.Source64) int64 {
	return int64(src.Uint64()) + int64(counter) // want `reads package-level mutable state sim\.counter`
}

// FromTable reads only the init-only table: exempt.
func FromTable(seed int64) int {
	return table[int(seed)%len(table)]
}

// Pack uses binary.LittleEndian, an empty-struct method bundle: exempt.
func Pack(seed uint64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, seed)
	return out
}

// Checked returns the sentinel: exempt.
func Checked(seed int64) error {
	if seed == 0 {
		return errBad
	}
	return nil
}

// WaivedSim documents why its read is safe.
func WaivedSim(seed int64) int {
	//lint:seedok fixture: counter is only bumped in tests that run single-threaded
	return int(seed) + counter
}

// Plain takes no seed: reading counter is fine.
func Plain() int {
	return counter
}
