package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/uwsdr/tinysdr/internal/lint/analysis"
)

// Determinism enforces the bit-reproducibility contract repo-wide: every
// random draw must be a pure function of (seed, node/trial, index) and no
// simulated result may depend on wall-clock time or map iteration order.
// It flags (1) the global math/rand source (rand.Intn and friends — use a
// seeded rand.New/SplitMix64 source), (2) time.Now/time.Since/time.Until
// outside cmd/ and the fleet HTTP server, and (3) range over a map inside
// any function on a metrics/report/JSON path — the exact failure class of
// the PR 2 Ledger.Energy bug, where map iteration broke byte-identical
// fleet reports.
var Determinism = &analysis.Analyzer{
	Name:   "determinism",
	Waiver: "detok",
	Doc: "flag global math/rand, wall-clock reads outside cmd/ and the fleet " +
		"server, and map iteration in metrics/report/JSON-encoding paths",
	Run: runDeterminism,
}

// seededConstructors are the math/rand names that build explicit seeded
// sources — the allowed way in.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// metricsPackageSegments name the packages whose outputs are compared
// byte-for-byte across worker counts (eval metrics, fleet reports, OTA
// campaign reports, testbed CDFs); any map iteration there is
// order-suspect.
var metricsPackageSegments = map[string]bool{
	"eval": true, "fleet": true, "ota": true, "testbed": true,
}

func runDeterminism(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	wallClockExempt := hasSegment(path, "cmd")
	inMetricsPkg := false
	for _, seg := range strings.Split(path, "/") {
		if metricsPackageSegments[seg] {
			inMetricsPkg = true
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			metricsFn := inMetricsPkg || callsJSONEncoding(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkRandGlobal(pass, n)
					checkWallClock(pass, n, wallClockExempt)
				case *ast.RangeStmt:
					if metricsFn && isMapType(pass, n.X) {
						pass.Reportf(n.Pos(),
							"%s: map iteration order is random; this function feeds metrics/report/JSON output (sort keys first — the PR 2 Ledger.Energy bug class)",
							fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkRandGlobal flags calls to math/rand package-level draw functions —
// they share one process-global, racy source that no seed controls.
func checkRandGlobal(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	p := obj.Pkg().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return
	}
	// Methods on *rand.Rand / Source are seeded instances — fine. Only
	// package-level functions hit the global source.
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	if seededConstructors[obj.Name()] {
		return
	}
	pass.Reportf(call.Pos(),
		"global math/rand.%s draws from the process-wide source; derive a seeded source (rand.New(rand.NewSource(seed)) or par.SplitSeed)",
		obj.Name())
}

// checkWallClock flags time.Now/Since/Until outside the exempt locations:
// cmd/ binaries may report wall time, and the fleet HTTP server
// (internal/fleet/server.go) legitimately observes real time.
func checkWallClock(pass *analysis.Pass, call *ast.CallExpr, pkgExempt bool) {
	if pkgExempt {
		return
	}
	name := ""
	switch {
	case isPkgFuncCall(pass, call, "time", "Now"):
		name = "Now"
	case isPkgFuncCall(pass, call, "time", "Since"):
		name = "Since"
	case isPkgFuncCall(pass, call, "time", "Until"):
		name = "Until"
	default:
		return
	}
	pos := pass.Fset.Position(call.Pos())
	if filepath.Base(pos.Filename) == "server.go" && hasSegment(pass.Pkg.Path(), "fleet") {
		return
	}
	pass.Reportf(call.Pos(),
		"time.%s makes results depend on wall-clock time; simulated paths must use the device clock (allowed only in cmd/ and the fleet server)",
		name)
}

// callsJSONEncoding reports whether the body contains any call into
// encoding/json — the marker that the function's output is serialized and
// so must be ordering-stable.
func callsJSONEncoding(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "encoding/json" {
			found = true
			return false
		}
		return true
	})
	return found
}

func isMapType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// hasSegment reports whether a slash-separated import path contains the
// segment.
func hasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
