// Package lint is the tinysdr-vet analyzer suite: custom static checks
// that compile the repo's three load-bearing conventions — zero-alloc
// *Into hot paths, seed-determinism of every random draw, and concurrency
// confined to internal/par — into CI. cmd/tinysdr-vet runs the suite
// (plus the stock `go vet` passes) over ./...; see PERFORMANCE.md
// ("Static analysis & invariants").
package lint

import (
	"bufio"
	"fmt"
	"go/token"
	"sort"
	"strings"

	"github.com/uwsdr/tinysdr/internal/lint/analysis"
)

// Suite returns the four tinysdr analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{NoAllocInto, Determinism, GoroutineHygiene, SeedFlow}
}

// Analyzer re-exports the shim's analyzer type as the package's public
// face (the tinysdr facade aliases it for VetAnalyzers).
type Analyzer = analysis.Analyzer

// Diag is one finding after waiver filtering, with positions resolved.
type Diag struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Result is one suite run: surviving diagnostics plus how many waivers
// each token consumed (the ratchet recorded in testdata/vet.golden).
type Result struct {
	Diags []Diag
	// Waivers maps waiver token -> number of diagnostics it suppressed.
	Waivers map[string]int
}

// Run loads the packages matched by patterns under the module rooted at
// dir and applies every analyzer, resolving waivers. The returned
// diagnostics include driver-level findings: waivers with no reason,
// waivers that suppressed nothing, and waivers with unknown tokens.
func Run(dir string, patterns []string, analyzers []*Analyzer) (*Result, error) {
	prog, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(prog.Fset, prog.Packages, analyzers)
}

// RunPackages applies the analyzers to already-loaded packages — the entry
// point analysistest uses to lint fixture packages that live outside the
// module's package graph.
func RunPackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{Waivers: map[string]int{}}
	for _, az := range analyzers {
		res.Waivers[az.Waiver] = 0
	}
	for _, pkg := range pkgs {
		diags, err := runPackage(fset, pkg, analyzers, res.Waivers)
		if err != nil {
			return nil, err
		}
		res.Diags = append(res.Diags, diags...)
	}
	sort.Slice(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
	return res, nil
}

// runPackage applies the analyzers to one loaded package and filters the
// raw diagnostics through the package's waivers, crediting used counts.
func runPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, used map[string]int) ([]Diag, error) {
	var waivers []*Waiver
	for _, f := range pkg.Files {
		waivers = append(waivers, collectWaivers(fset, f)...)
	}
	idx := waiverIndex(waivers)
	known := map[string]bool{}
	var out []Diag

	for _, az := range analyzers {
		known[az.Waiver] = true
		var raw []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  az,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
		}
		if err := az.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", az.Name, pkg.Path, err)
		}
		for _, d := range raw {
			pos := fset.Position(d.Pos)
			if w, ok := idx[waiverKey{az.Waiver, pos.Filename, pos.Line}]; ok && w.Reason != "" {
				w.used = true
				used[az.Waiver]++
				continue
			}
			out = append(out, Diag{
				Analyzer: az.Name,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
	}

	// Driver-level findings: the waiver mechanism polices itself.
	for _, w := range waivers {
		switch {
		case !known[w.Token]:
			out = append(out, waiverDiag(w, fmt.Sprintf("unknown waiver token %q (valid: %s)", w.Token, strings.Join(waiverTokens(analyzers), ", "))))
		case w.Reason == "":
			out = append(out, waiverDiag(w, fmt.Sprintf("//lint:%s waiver requires a non-empty reason", w.Token)))
		case !w.used:
			out = append(out, waiverDiag(w, fmt.Sprintf("//lint:%s waiver suppresses nothing; delete it", w.Token)))
		}
	}
	return out, nil
}

func waiverDiag(w *Waiver, msg string) Diag {
	return Diag{Analyzer: "waiver", File: w.File, Line: w.Line, Col: 1, Message: msg}
}

func waiverTokens(analyzers []*Analyzer) []string {
	out := make([]string, 0, len(analyzers))
	for _, az := range analyzers {
		out = append(out, az.Waiver)
	}
	sort.Strings(out)
	return out
}

// FormatGolden renders the counts the golden file pins: total diagnostics
// (zero on a healthy tree) and per-token waiver consumption, so adding a
// waiver is a conscious, reviewed change.
func FormatGolden(res *Result) string {
	var b strings.Builder
	b.WriteString("# tinysdr-vet golden counts. Regenerate: go run ./cmd/tinysdr-vet -update-golden ./...\n")
	fmt.Fprintf(&b, "diagnostics %d\n", len(res.Diags))
	tokens := make([]string, 0, len(res.Waivers))
	for tok := range res.Waivers {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	for _, tok := range tokens {
		fmt.Fprintf(&b, "waivers %s %d\n", tok, res.Waivers[tok])
	}
	return b.String()
}

// CompareGolden diffs a run against the committed golden counts. Any
// difference — new diagnostics, or waiver counts drifting in either
// direction — is an error naming the regeneration command.
func CompareGolden(res *Result, golden string) error {
	want := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(golden))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var key string
		var n int
		switch fields := strings.Fields(line); len(fields) {
		case 2:
			key = fields[0]
			fmt.Sscanf(fields[1], "%d", &n)
		case 3:
			key = fields[0] + " " + fields[1]
			fmt.Sscanf(fields[2], "%d", &n)
		default:
			return fmt.Errorf("lint: malformed golden line %q", line)
		}
		want[key] = n
	}
	var errs []string
	if got := len(res.Diags); got != want["diagnostics"] {
		errs = append(errs, fmt.Sprintf("diagnostics: got %d, golden %d", got, want["diagnostics"]))
	}
	tokens := make([]string, 0, len(res.Waivers))
	for tok := range res.Waivers {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	for _, tok := range tokens {
		if got, w := res.Waivers[tok], want["waivers "+tok]; got != w {
			errs = append(errs, fmt.Sprintf("waivers %s: got %d, golden %d", tok, got, w))
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("lint: counts drifted from vet.golden (%s); if intentional, regenerate with -update-golden",
			strings.Join(errs, "; "))
	}
	return nil
}
