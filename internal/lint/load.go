package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks the module without golang.org/x/tools/go/packages
// (the build container has no module proxy): `go list -export -deps`
// produces compiled export data for every dependency — stdlib included —
// and the stock gc importer accepts a lookup hook that serves those files,
// so a full go/types load needs nothing beyond the standard toolchain.

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path (or, for test fixtures, the synthetic path
	// the test assigned — analyzers match on its slash-separated segments).
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// goList runs `go list -export -deps -json` in dir over the patterns and
// decodes the stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup serves compiled export data to the gc importer.
func exportLookup(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// checkPackage parses srcFiles and type-checks them as one package under
// the given import path, resolving imports through lookup.
func checkPackage(fset *token.FileSet, path string, dir string, srcFiles []string,
	lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	files := make([]*ast.File, 0, len(srcFiles))
	for _, name := range srcFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %v", full, err)
		}
		files = append(files, f)
	}
	var typeErrs []string
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	info := newInfo()
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// mainModulePath reports the import path of the main module rooted at dir.
func mainModulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// Load type-checks the packages matched by patterns (and only those in the
// main module — dependencies are consumed as export data, never re-parsed)
// rooted at dir.
func Load(dir string, patterns []string) (*Program, error) {
	mod, err := mainModulePath(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := exportLookup(exports)
	prog := &Program{Fset: token.NewFileSet()}
	for _, p := range listed {
		if p.Standard || p.Module == nil || p.Module.Path != mod {
			continue
		}
		pkg, err := checkPackage(prog.Fset, p.ImportPath, p.Dir, p.GoFiles, lookup)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %s", strings.Join(patterns, " "))
	}
	return prog, nil
}

// StdlibExports resolves export data for a set of standard-library import
// paths (building them into the cache if needed) — the fixture loader in
// analysistest uses it to type-check testdata packages that import only
// the stdlib.
func StdlibExports(deps []string) (map[string]string, error) {
	if len(deps) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(".", deps)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// CheckFixture type-checks one directory of fixture files as a package
// under the synthetic import path, resolving imports from exports.
func CheckFixture(fset *token.FileSet, path, dir string, srcFiles []string,
	exports map[string]string) (*Package, error) {
	return checkPackage(fset, path, dir, srcFiles, exportLookup(exports))
}
