package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/uwsdr/tinysdr/internal/lint/analysis"
)

// SeedFlow guards the purity of seeded constructors and trial bodies: a
// function that accepts a seed (or a rand source) promises that its output
// is a function of its arguments alone. Reading package-level mutable
// state inside such a function smuggles in hidden input that no seed
// controls, so two runs with the same seed can diverge. Three classes of
// package-level vars are exempt because they cannot vary between runs:
// error sentinels (`var errFoo = errors.New(...)`), stateless method
// bundles (empty structs like binary.LittleEndian), and same-package vars
// the package never writes after initialization (read-only lookup
// tables).
var SeedFlow = &analysis.Analyzer{
	Name:   "seedflow",
	Waiver: "seedok",
	Doc: "flag functions taking a seed or rand source that also read " +
		"package-level mutable state",
	Run: runSeedFlow,
}

func runSeedFlow(pass *analysis.Pass) error {
	written := writtenPackageVars(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !takesSeed(pass, fd) {
				continue
			}
			checkSeedPurity(pass, fd, written)
		}
	}
	return nil
}

// writtenPackageVars collects every package-level var of this package that
// any code in the package writes to after its declaration — directly, via
// index/field/star assignment, or by having its address taken (which lets
// anyone write it later). Vars outside this set are init-only lookup
// tables, constant for a given build, and therefore not hidden inputs.
func writtenPackageVars(pass *analysis.Pass) map[*types.Var]bool {
	written := map[*types.Var]bool{}
	mark := func(e ast.Expr) {
		// Strip the paths a write can reach the var through.
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && isPackageLevel(v) {
						written[v] = true
					}
				}
				return
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					mark(n.X)
				}
			}
			return true
		})
	}
	return written
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// takesSeed reports whether the function declares a parameter that makes
// it part of the deterministic-randomness contract: an integer named
// "seed", or any parameter of a math/rand source/generator type.
func takesSeed(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isRandSourceType(t) {
			return true
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			for _, name := range field.Names {
				if name.Name == "seed" {
					return true
				}
			}
		}
	}
	return false
}

// isRandSourceType matches math/rand(.v2) Source, Source64, *Rand and
// their pointers.
func isRandSourceType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	var obj *types.TypeName
	switch t := t.(type) {
	case *types.Named:
		obj = t.Obj()
	case *types.Interface:
		return false // matched via the named form below
	default:
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	if p != "math/rand" && p != "math/rand/v2" {
		return false
	}
	switch obj.Name() {
	case "Source", "Source64", "Rand", "PCG", "ChaCha8":
		return true
	}
	return false
}

// checkSeedPurity flags identifier uses inside the body that resolve to
// package-level variables (any package, exported or not), modulo the
// constant-for-a-build exemptions.
func checkSeedPurity(pass *analysis.Pass, fd *ast.FuncDecl, written map[*types.Var]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !isPackageLevel(v) {
			return true
		}
		if isErrorSentinel(v) || isEmptyStruct(v.Type()) {
			return true
		}
		// Same-package vars the package never writes are init-only
		// tables; foreign vars can't be proven read-only, so they stay
		// flagged (waive with a reason if genuinely immutable).
		if v.Pkg() == pass.Pkg && !written[v] {
			return true
		}
		pass.Reportf(id.Pos(),
			"%s takes a seed but reads package-level mutable state %s.%s; results are no longer a pure function of the seed",
			fd.Name.Name, v.Pkg().Name(), v.Name())
		return true
	})
}

// isEmptyStruct matches stateless method-bundle vars like
// encoding/binary.LittleEndian: no fields, nothing to mutate.
func isEmptyStruct(t types.Type) bool {
	s, ok := t.Underlying().(*types.Struct)
	return ok && s.NumFields() == 0
}

// isErrorSentinel reports whether the package-level var is an error —
// treated as an immutable sentinel by convention.
func isErrorSentinel(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
