package lint

import (
	"go/ast"
	"go/types"

	"github.com/uwsdr/tinysdr/internal/lint/analysis"
)

// GoroutineHygiene enforces the concurrency layering: all parallelism
// flows through the deterministic pool in internal/par (plus the fleet
// scheduler and the cmd/ binaries that own their process). A `go`
// statement anywhere else is a bypass of the worker-count-independence
// contract. It also flags a sync.Mutex/RWMutex held across a channel send
// or an HTTP handler call — the deadlock/latency shape that bit campaign
// cancellation in the fleet server.
var GoroutineHygiene = &analysis.Analyzer{
	Name:   "goroutinehygiene",
	Waiver: "gook",
	Doc: "flag `go` statements outside internal/par, internal/fleet and cmd/, " +
		"and mutexes held across channel sends or HTTP handler calls",
	Run: runGoroutineHygiene,
}

func goStmtAllowed(path string) bool {
	return hasSegment(path, "par") || hasSegment(path, "fleet") || hasSegment(path, "cmd")
}

func runGoroutineHygiene(pass *analysis.Pass) error {
	allowed := goStmtAllowed(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !allowed {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if g, ok := n.(*ast.GoStmt); ok {
						pass.Reportf(g.Pos(),
							"%s: goroutines outside internal/par, internal/fleet and cmd/ break worker-count determinism; use par.Trials/par.Do",
							fd.Name.Name)
					}
					return true
				})
			}
			name := fd.Name.Name
			checkMutexHeld(pass, name, fd.Body)
			// Closures are separate execution contexts (often goroutine
			// bodies): each gets its own independent lock-state scan.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkMutexHeld(pass, name+" (closure)", fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkMutexHeld performs a linear scan of one function body: after a
// sync mutex Lock/RLock (or a deferred Unlock, which holds to function
// exit), a channel send or a call into an http.ResponseWriter-taking
// function is flagged until the matching Unlock. The scan is a
// straight-line approximation — branches that unlock on one arm only are
// treated as still held, which errs on the loud side for lock hygiene.
func checkMutexHeld(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // scanned separately with fresh lock state
		case *ast.DeferStmt:
			if isMutexOp(pass, n.Call, "Unlock") || isMutexOp(pass, n.Call, "RUnlock") {
				held = true
			}
			return false
		case *ast.CallExpr:
			switch {
			case isMutexOp(pass, n, "Lock"), isMutexOp(pass, n, "RLock"):
				held = true
			case isMutexOp(pass, n, "Unlock"), isMutexOp(pass, n, "RUnlock"):
				held = false
			case held && callTakesResponseWriter(pass, n):
				pass.Reportf(n.Pos(),
					"%s: HTTP handler call while a sync mutex is held; serve from a snapshot instead",
					name)
			}
		case *ast.SendStmt:
			if held {
				pass.Reportf(n.Pos(),
					"%s: channel send while a sync mutex is held can deadlock against the receiver; send after Unlock",
					name)
			}
		}
		return true
	})
}

// isMutexOp reports whether call is <sync.Mutex|sync.RWMutex>.<name>().
func isMutexOp(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// callTakesResponseWriter reports whether any parameter of the callee's
// static signature is net/http.ResponseWriter (handler funcs, ServeHTTP).
func callTakesResponseWriter(pass *analysis.Pass, call *ast.CallExpr) bool {
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if named, ok := params.At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
				return true
			}
		}
	}
	return false
}
