package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// A Waiver is one "//lint:<token> <reason>" directive. It exempts exactly
// one source line — its own, or the line below when it stands alone — from
// the analyzer owning the token. The reason is mandatory: a waiver is a
// documented decision, not an off switch, and the driver reports empty or
// unused waivers as violations in their own right.
type Waiver struct {
	Token  string
	Reason string
	File   string
	Line   int
	// used records whether any diagnostic was suppressed by this waiver.
	used bool
}

// waiverRE matches the directive anywhere a comment line starts with it
// (directive comments have no space after //, matching //go: style).
var waiverRE = regexp.MustCompile(`^//lint:([a-z]+)(?:[ \t]+(.*))?$`)

// collectWaivers extracts every waiver directive from a file's comments.
func collectWaivers(fset *token.FileSet, f *ast.File) []*Waiver {
	var out []*Waiver
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := waiverRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Slash)
			out = append(out, &Waiver{
				Token:  m[1],
				Reason: strings.TrimSpace(m[2]),
				File:   pos.Filename,
				Line:   pos.Line,
			})
		}
	}
	return out
}

// waiverKey indexes waivers by position for O(1) diagnostic matching.
type waiverKey struct {
	token string
	file  string
	line  int
}

// waiverIndex maps both the directive's own line and the line below it, so
// a waiver suppresses a trailing-comment line or the statement under a
// standalone comment.
func waiverIndex(ws []*Waiver) map[waiverKey]*Waiver {
	idx := make(map[waiverKey]*Waiver, 2*len(ws))
	for _, w := range ws {
		idx[waiverKey{w.Token, w.File, w.Line}] = w
		idx[waiverKey{w.Token, w.File, w.Line + 1}] = w
	}
	return idx
}
