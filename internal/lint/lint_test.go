// Analyzer contract tests: each analyzer runs over a seeded fixture tree
// under testdata/src/<analyzer>/ whose `// want` comments pin the positive
// cases and whose unannotated lines pin the negatives (see analysistest).
package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/uwsdr/tinysdr/internal/lint"
	"github.com/uwsdr/tinysdr/internal/lint/analysistest"
)

func TestNoAllocIntoFixtures(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "noallocinto"), lint.NoAllocInto)
	if got := res.Waivers["allocok"]; got != 1 {
		t.Errorf("fixture should consume exactly 1 allocok waiver, got %d", got)
	}
}

func TestDeterminismFixtures(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "determinism"), lint.Determinism)
	if got := res.Waivers["detok"]; got != 1 {
		t.Errorf("fixture should consume exactly 1 detok waiver, got %d", got)
	}
}

func TestGoroutineHygieneFixtures(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "goroutinehygiene"), lint.GoroutineHygiene)
	if got := res.Waivers["gook"]; got != 0 {
		t.Errorf("fixture consumes no gook waivers, got %d", got)
	}
}

func TestSeedFlowFixtures(t *testing.T) {
	res := analysistest.Run(t, filepath.Join("testdata", "src", "seedflow"), lint.SeedFlow)
	if got := res.Waivers["seedok"]; got != 1 {
		t.Errorf("fixture should consume exactly 1 seedok waiver, got %d", got)
	}
}

// TestWaiverMechanism pins the driver-level waiver rules on the waiverfix
// fixture: an empty-reason waiver is itself a diagnostic AND suppresses
// nothing, an unused waiver is flagged, and an unknown token is flagged.
// (These fixtures bypass the want-comment comparison because a directive
// line cannot carry a second comment.)
func TestWaiverMechanism(t *testing.T) {
	fset, pkgs := analysistest.LoadFixtures(t, filepath.Join("testdata", "src", "waiverfix"))
	res, err := lint.RunPackages(fset, pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		"waiver requires a non-empty reason", // //lint:allocok with no reason
		"make allocates",                     // ...and the diagnostic it failed to waive survives
		"waiver suppresses nothing",          // reasoned waiver over clean code
		"unknown waiver token",               // //lint:bogusok
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range res.Diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q; got:\n%s", want, diagList(res.Diags))
		}
	}
	if got := res.Waivers["allocok"]; got != 0 {
		t.Errorf("reasonless waiver must not be consumed: allocok count %d", got)
	}
}

// TestRepoIsBurnedDown runs the full suite over the real module and
// requires zero diagnostics with exactly the waiver counts committed in
// testdata/vet.golden — the same gate cmd/tinysdr-vet applies in CI.
func TestRepoIsBurnedDown(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is not short")
	}
	root := filepath.Join("..", "..")
	res, err := lint.Run(root, []string{"./..."}, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	golden, err := os.ReadFile(filepath.Join(root, "testdata", "vet.golden"))
	if err != nil {
		t.Fatalf("missing vet.golden (run: go run ./cmd/tinysdr-vet -update-golden ./...): %v", err)
	}
	if err := lint.CompareGolden(res, string(golden)); err != nil {
		t.Error(err)
	}
}

// TestGoldenRoundTrip pins the golden format: format then compare is
// always clean, and any drift in either direction is an error.
func TestGoldenRoundTrip(t *testing.T) {
	res := &lint.Result{Waivers: map[string]int{"allocok": 2, "detok": 1}}
	golden := lint.FormatGolden(res)
	if err := lint.CompareGolden(res, golden); err != nil {
		t.Fatalf("round trip must be clean: %v", err)
	}
	drifted := &lint.Result{Waivers: map[string]int{"allocok": 3, "detok": 1}}
	if err := lint.CompareGolden(drifted, golden); err == nil {
		t.Fatal("a new waiver must fail the golden gate")
	}
	withDiag := &lint.Result{
		Diags:   []lint.Diag{{Analyzer: "determinism", File: "x.go", Line: 1, Message: "m"}},
		Waivers: map[string]int{"allocok": 2, "detok": 1},
	}
	if err := lint.CompareGolden(withDiag, golden); err == nil {
		t.Fatal("a new diagnostic must fail the golden gate")
	}
}

func diagList(diags []lint.Diag) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
