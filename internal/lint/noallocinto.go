package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/uwsdr/tinysdr/internal/lint/analysis"
)

// NoAllocInto flags allocation in the zero-alloc hot paths: any exported
// function or method named *Into or *From in the DSP-adjacent packages
// (dsp, lora, ble, backscatter, channel, phy, iq). These are the contracts
// PERFORMANCE.md pins with testing.AllocsPerRun; the analyzer turns the
// runtime contract into a compile-time one. Allocation on a panicking
// guard path is exempt (it only runs when the program is already dying),
// and deliberate cold-path growth carries a "//lint:allocok reason"
// waiver.
var NoAllocInto = &analysis.Analyzer{
	Name:   "noallocinto",
	Waiver: "allocok",
	Doc: "flag make/new/append growth, escaping composite literals, closures, " +
		"fmt and string concatenation, and interface boxing inside exported " +
		"*Into/*From hot-path functions",
	Run: runNoAllocInto,
}

// hotPackageSegments are the path segments naming the zero-alloc packages.
var hotPackageSegments = map[string]bool{
	"dsp": true, "lora": true, "ble": true, "backscatter": true,
	"channel": true, "phy": true, "iq": true,
}

func isHotPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if hotPackageSegments[seg] {
			return true
		}
	}
	return false
}

func isHotFuncName(name string) bool {
	return ast.IsExported(name) &&
		(strings.HasSuffix(name, "Into") || strings.HasSuffix(name, "From")) &&
		name != "Into" && name != "From"
}

func runNoAllocInto(pass *analysis.Pass) error {
	if !isHotPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotFuncName(fd.Name.Name) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

// checkHotBody walks one hot function's body, skipping the arguments of
// panic(...) calls: a panicking guard allocates only on the crash path.
func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltinCall(pass, n, "panic") {
				return false // crash path: allocation never reaches steady state
			}
			checkHotCall(pass, name, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s: closure literal allocates in zero-alloc hot path", name)
			return false
		case *ast.CompositeLit:
			checkHotComposite(pass, name, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s: &composite literal escapes to the heap in zero-alloc hot path", name)
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass, n.X) {
				pass.Reportf(n.Pos(), "%s: string concatenation allocates in zero-alloc hot path", name)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

func checkHotCall(pass *analysis.Pass, fn string, call *ast.CallExpr) {
	switch {
	case isBuiltinCall(pass, call, "make"):
		pass.Reportf(call.Pos(), "%s: make allocates in zero-alloc hot path", fn)
	case isBuiltinCall(pass, call, "new"):
		pass.Reportf(call.Pos(), "%s: new allocates in zero-alloc hot path", fn)
	case isBuiltinCall(pass, call, "append"):
		pass.Reportf(call.Pos(), "%s: append may grow its backing array in zero-alloc hot path", fn)
	case isPkgFuncCall(pass, call, "fmt", "") || isPkgFuncCall(pass, call, "errors", "New"):
		pass.Reportf(call.Pos(), "%s: formatting call allocates in zero-alloc hot path", fn)
	default:
		checkBoxing(pass, fn, call)
	}
}

// checkHotComposite flags slice and map literals (always heap-backed) but
// lets plain struct/array value literals through — those live on the stack
// unless something else makes them escape.
func checkHotComposite(pass *analysis.Pass, fn string, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "%s: slice literal allocates in zero-alloc hot path", fn)
	case *types.Map:
		pass.Reportf(lit.Pos(), "%s: map literal allocates in zero-alloc hot path", fn)
	}
}

// checkBoxing flags call arguments whose parameter is an interface while
// the argument's static type is concrete — the conversion boxes the value.
func checkBoxing(pass *analysis.Pass, fn string, call *ast.CallExpr) {
	sig, ok := calleeSignature(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			sl, ok := last.(*types.Slice)
			if !ok {
				continue
			}
			pt = sl.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s: passing concrete %s as interface %s boxes the value in zero-alloc hot path",
			fn, at, pt)
	}
}

// --- shared type helpers ---

func isBuiltinCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// isPkgFuncCall reports whether call invokes a package-level function of
// the named package ("" matches any function in the package).
func isPkgFuncCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	return name == "" || obj.Name() == name
}

func calleeSignature(pass *analysis.Pass, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func isStringType(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
