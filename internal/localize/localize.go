// Package localize implements the IoT localization building blocks §7 of
// the TinySDR paper proposes: because the platform exposes raw I/Q samples,
// it measures carrier phase, and phase across multiple frequencies in the
// 900 MHz / 2.4 GHz bands yields range; ranges from distributed anchors
// yield position.
//
// The pipeline is multi-carrier phase ranging: a transmitter emits tones at
// several carrier frequencies; the receiver measures each tone's phase from
// its I/Q samples; pairwise phase differences Δφ = 2π·Δf·d/c encode the
// range d modulo c/Δf, and a coarse-to-fine unwrap across frequency pairs
// recovers the absolute range. Trilateration over three or more anchors
// then solves for position.
package localize

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// C is the propagation speed in meters per second.
const C = 299792458.0

// Ranger measures range by multi-carrier phase. Freqs are the carrier
// frequencies the exciter steps through (within the platform's bands).
type Ranger struct {
	// Freqs are the measurement carriers in Hz, at least two, distinct.
	Freqs []float64
	// SamplesPerTone is the I/Q integration length per carrier.
	SamplesPerTone int
}

// NewRanger validates and returns a ranger.
func NewRanger(freqs []float64, samplesPerTone int) (*Ranger, error) {
	if len(freqs) < 2 {
		return nil, fmt.Errorf("localize: need at least two carriers, got %d", len(freqs))
	}
	seen := map[float64]bool{}
	for _, f := range freqs {
		if f <= 0 {
			return nil, fmt.Errorf("localize: non-positive carrier %v", f)
		}
		if seen[f] {
			return nil, fmt.Errorf("localize: duplicate carrier %v", f)
		}
		seen[f] = true
	}
	if samplesPerTone < 8 {
		return nil, fmt.Errorf("localize: %d samples per tone too few", samplesPerTone)
	}
	return &Ranger{Freqs: append([]float64(nil), freqs...), SamplesPerTone: samplesPerTone}, nil
}

// UnambiguousRange returns the maximum resolvable distance: c over the
// smallest pairwise frequency difference.
func (r *Ranger) UnambiguousRange() float64 {
	minDiff := math.Inf(1)
	fs := append([]float64(nil), r.Freqs...)
	sort.Float64s(fs)
	for i := 1; i < len(fs); i++ {
		if d := fs[i] - fs[i-1]; d < minDiff {
			minDiff = d
		}
	}
	return C / minDiff
}

// phaseAt returns the ideal received carrier phase for a range.
func phaseAt(freqHz, d float64) float64 {
	ph := -2 * math.Pi * freqHz * d / C
	return math.Mod(ph, 2*math.Pi)
}

// SimulatePhases produces the phase measurements a tinySDR receiver makes
// at distance d from the exciter, with receiver noise at the channel's
// floor and the tone received at rssiDBm. One complex correlation per
// carrier — exactly what the FPGA computes from the I/Q stream.
func (r *Ranger) SimulatePhases(d, rssiDBm float64, ch *channel.AWGN) []float64 {
	phases := make([]float64, len(r.Freqs))
	amp := iq.DBmToAmplitude(rssiDBm)
	for i, f := range r.Freqs {
		ph := phaseAt(f, d)
		tone := make(iq.Samples, r.SamplesPerTone)
		rot := cmplx.Exp(complex(0, ph))
		for k := range tone {
			tone[k] = rot * complex(amp, 0)
		}
		tone.Add(ch.Noise(len(tone)))
		// Coherent integration: arg of the mean.
		var acc complex128
		for _, x := range tone {
			acc += x
		}
		phases[i] = cmplx.Phase(acc)
	}
	return phases
}

// EstimateRange recovers distance from per-carrier phases via
// coarse-to-fine unwrapping: the smallest frequency gap fixes the
// unambiguous estimate, and each larger gap refines it within its own
// wavelength.
func (r *Ranger) EstimateRange(phases []float64) (float64, error) {
	if len(phases) != len(r.Freqs) {
		return 0, fmt.Errorf("localize: %d phases for %d carriers", len(phases), len(r.Freqs))
	}
	type pair struct {
		df  float64
		dph float64
	}
	var pairs []pair
	for i := 0; i < len(r.Freqs); i++ {
		for j := i + 1; j < len(r.Freqs); j++ {
			df := r.Freqs[j] - r.Freqs[i]
			dph := phases[j] - phases[i]
			if df < 0 {
				df, dph = -df, -dph
			}
			pairs = append(pairs, pair{df: df, dph: dph})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].df < pairs[j].df })

	// Each pair gives d ≡ -dph·c/(2π·df) (mod c/df).
	frac := func(p pair) float64 {
		lambda := C / p.df
		d := -p.dph * C / (2 * math.Pi * p.df)
		d = math.Mod(d, lambda)
		if d < 0 {
			d += lambda
		}
		return d
	}
	est := frac(pairs[0])
	for _, p := range pairs[1:] {
		lambda := C / p.df
		fine := frac(p)
		k := math.Round((est - fine) / lambda)
		est = k*lambda + fine
	}
	if est < 0 {
		return 0, fmt.Errorf("localize: negative range %v; phases inconsistent", est)
	}
	return est, nil
}

// Anchor is a reference node at a known position (meters).
type Anchor struct {
	X, Y float64
}

// Trilaterate solves 2D position from anchor ranges by Gauss-Newton least
// squares. It needs at least three non-collinear anchors.
func Trilaterate(anchors []Anchor, ranges []float64) (x, y float64, err error) {
	if len(anchors) < 3 {
		return 0, 0, fmt.Errorf("localize: need >= 3 anchors, got %d", len(anchors))
	}
	if len(anchors) != len(ranges) {
		return 0, 0, fmt.Errorf("localize: %d anchors, %d ranges", len(anchors), len(ranges))
	}
	if collinear(anchors) {
		return 0, 0, fmt.Errorf("localize: anchors are collinear")
	}
	// Start from the anchor centroid.
	for _, a := range anchors {
		x += a.X
		y += a.Y
	}
	x /= float64(len(anchors))
	y /= float64(len(anchors))

	for iter := 0; iter < 100; iter++ {
		// Normal equations J^T J Δ = -J^T r for the range residuals.
		var jtj00, jtj01, jtj11, jtr0, jtr1 float64
		for i, a := range anchors {
			dx, dy := x-a.X, y-a.Y
			dist := math.Hypot(dx, dy)
			if dist < 1e-9 {
				dist = 1e-9
			}
			res := dist - ranges[i]
			j0, j1 := dx/dist, dy/dist
			jtj00 += j0 * j0
			jtj01 += j0 * j1
			jtj11 += j1 * j1
			jtr0 += j0 * res
			jtr1 += j1 * res
		}
		det := jtj00*jtj11 - jtj01*jtj01
		if math.Abs(det) < 1e-12 {
			return 0, 0, fmt.Errorf("localize: degenerate geometry")
		}
		dx := (-jtr0*jtj11 + jtr1*jtj01) / det
		dy := (jtr0*jtj01 - jtr1*jtj00) / det
		x += dx
		y += dy
		if math.Hypot(dx, dy) < 1e-6 {
			break
		}
	}
	return x, y, nil
}

func collinear(anchors []Anchor) bool {
	if len(anchors) < 3 {
		return true
	}
	a, b := anchors[0], anchors[1]
	for _, c := range anchors[2:] {
		cross := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
		if math.Abs(cross) > 1e-6 {
			return false
		}
	}
	return true
}

// System is a distributed localization deployment: anchors that each range
// to the target over their own channel — the "large MIMO sensing system"
// direction §7 sketches.
type System struct {
	Anchors []Anchor
	Ranger  *Ranger
}

// Locate simulates ranging from every anchor to the target at (tx, ty) and
// solves for the position. RSSI per anchor follows the supplied function
// (e.g. a path-loss model); seed drives the noise.
func (s *System) Locate(tx, ty float64, rssiAt func(d float64) float64, floorDBm float64, seed int64) (x, y float64, err error) {
	ranges := make([]float64, len(s.Anchors))
	for i, a := range s.Anchors {
		d := math.Hypot(tx-a.X, ty-a.Y)
		ch := channel.NewAWGN(seed+int64(i)*101, floorDBm)
		phases := s.Ranger.SimulatePhases(d, rssiAt(d), ch)
		est, err := s.Ranger.EstimateRange(phases)
		if err != nil {
			return 0, 0, fmt.Errorf("localize: anchor %d: %w", i, err)
		}
		ranges[i] = est
	}
	return Trilaterate(s.Anchors, ranges)
}
