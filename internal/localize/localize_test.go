package localize

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/uwsdr/tinysdr/internal/channel"
)

// testFreqs spans 2 MHz steps over 16 MHz in the 900 MHz band: 150 m
// unambiguous range, sub-meter resolution from the widest pair.
func testFreqs() []float64 {
	return []float64{902e6, 904e6, 910e6, 918e6}
}

func testRanger(t *testing.T) *Ranger {
	t.Helper()
	r, err := NewRanger(testFreqs(), 256)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRangerValidation(t *testing.T) {
	if _, err := NewRanger([]float64{915e6}, 64); err == nil {
		t.Error("single carrier accepted")
	}
	if _, err := NewRanger([]float64{915e6, 915e6}, 64); err == nil {
		t.Error("duplicate carriers accepted")
	}
	if _, err := NewRanger([]float64{915e6, -1}, 64); err == nil {
		t.Error("negative carrier accepted")
	}
	if _, err := NewRanger(testFreqs(), 2); err == nil {
		t.Error("too-short integration accepted")
	}
}

func TestUnambiguousRange(t *testing.T) {
	r := testRanger(t)
	// Smallest gap 2 MHz -> ~150 m.
	if got := r.UnambiguousRange(); math.Abs(got-149.9) > 1 {
		t.Errorf("unambiguous range = %v m, want ≈150", got)
	}
}

func TestRangeEstimationNoiselessExact(t *testing.T) {
	r := testRanger(t)
	// Quiet channel: floor far below the tone.
	ch := channel.NewAWGN(1, -200)
	for _, d := range []float64{0.5, 3, 17.2, 42, 80, 125} {
		phases := r.SimulatePhases(d, -60, ch)
		got, err := r.EstimateRange(phases)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if math.Abs(got-d) > 0.05 {
			t.Errorf("d=%v: estimated %v", d, got)
		}
	}
}

func TestRangeEstimationWithNoise(t *testing.T) {
	r := testRanger(t)
	// 20 dB post-integration SNR regime: floor -90, tone -80, 256 samples
	// of coherent gain.
	ch := channel.NewAWGN(7, -90)
	var worst float64
	for _, d := range []float64{5, 25, 60, 110} {
		phases := r.SimulatePhases(d, -80, ch)
		got, err := r.EstimateRange(phases)
		if err != nil {
			t.Fatalf("d=%v: %v", d, err)
		}
		if e := math.Abs(got - d); e > worst {
			worst = e
		}
	}
	if worst > 2 {
		t.Errorf("worst range error %v m at 10 dB SNR, want < 2 m", worst)
	}
}

func TestEstimateRangeValidatesInput(t *testing.T) {
	r := testRanger(t)
	if _, err := r.EstimateRange([]float64{1, 2}); err == nil {
		t.Error("wrong phase count accepted")
	}
}

func TestTrilaterateExact(t *testing.T) {
	anchors := []Anchor{{0, 0}, {100, 0}, {0, 100}, {100, 100}}
	f := func(xRaw, yRaw float64) bool {
		tx := math.Mod(math.Abs(xRaw), 100)
		ty := math.Mod(math.Abs(yRaw), 100)
		ranges := make([]float64, len(anchors))
		for i, a := range anchors {
			ranges[i] = math.Hypot(tx-a.X, ty-a.Y)
		}
		x, y, err := Trilaterate(anchors, ranges)
		return err == nil && math.Hypot(x-tx, y-ty) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrilaterateNoisyRanges(t *testing.T) {
	anchors := []Anchor{{0, 0}, {80, 0}, {40, 70}}
	tx, ty := 30.0, 25.0
	ranges := make([]float64, len(anchors))
	for i, a := range anchors {
		ranges[i] = math.Hypot(tx-a.X, ty-a.Y) + []float64{0.4, -0.3, 0.2}[i]
	}
	x, y, err := Trilaterate(anchors, ranges)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Hypot(x-tx, y-ty); e > 1.5 {
		t.Errorf("position error %v m with ±0.4 m range noise", e)
	}
}

func TestTrilaterateRejectsDegenerate(t *testing.T) {
	if _, _, err := Trilaterate([]Anchor{{0, 0}, {1, 1}}, []float64{1, 1}); err == nil {
		t.Error("two anchors accepted")
	}
	collinearAnchors := []Anchor{{0, 0}, {10, 0}, {20, 0}}
	if _, _, err := Trilaterate(collinearAnchors, []float64{5, 5, 5}); err == nil {
		t.Error("collinear anchors accepted")
	}
	if _, _, err := Trilaterate([]Anchor{{0, 0}, {1, 0}, {0, 1}}, []float64{1, 1}); err == nil {
		t.Error("mismatched ranges accepted")
	}
}

func TestSystemEndToEnd(t *testing.T) {
	// Four tinySDR anchors on a 100 m courtyard locate a target from
	// phase measurements over a noisy channel.
	r := testRanger(t)
	sys := &System{
		Anchors: []Anchor{{0, 0}, {100, 0}, {0, 100}, {100, 100}},
		Ranger:  r,
	}
	rssiAt := func(d float64) float64 { return -60 - 20*math.Log10(math.Max(d, 1)) }
	x, y, err := sys.Locate(34, 61, rssiAt, -100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Hypot(x-34, y-61); e > 2 {
		t.Errorf("localization error %v m, want < 2 m", e)
	}
}

func TestSystemDeterministic(t *testing.T) {
	r := testRanger(t)
	sys := &System{Anchors: []Anchor{{0, 0}, {50, 0}, {0, 50}}, Ranger: r}
	rssiAt := func(d float64) float64 { return -70 }
	x1, y1, err1 := sys.Locate(10, 20, rssiAt, -95, 9)
	x2, y2, err2 := sys.Locate(10, 20, rssiAt, -95, 9)
	if err1 != nil || err2 != nil || x1 != x2 || y1 != y2 {
		t.Error("localization not deterministic for fixed seed")
	}
}
