package ota

import (
	"testing"

	"github.com/uwsdr/tinysdr/internal/fpga"
)

func broadcastFleet(t *testing.T, n int, rssi float64) []BroadcastTarget {
	t.Helper()
	targets := make([]BroadcastTarget, n)
	for i := range targets {
		node, _ := testNode(t, uint16(i+1))
		targets[i] = BroadcastTarget{Node: node, RSSIdBm: rssi}
	}
	return targets
}

func TestBroadcastDeliversExactImages(t *testing.T) {
	img := fpga.SynthMCUFirmware(16*1024, 3)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	targets := broadcastFleet(t, 5, -90)
	sess := NewBroadcastSession(targets, 1)
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BroadcastPackets != len(u.Chunks) {
		t.Errorf("broadcast packets = %d, want %d", rep.BroadcastPackets, len(u.Chunks))
	}
	for _, tg := range targets {
		if err := tg.Node.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", tg.Node.ID, err)
		}
	}
	if len(rep.PerNode) != 5 {
		t.Errorf("per-node stats = %d", len(rep.PerNode))
	}
}

func TestBroadcastRepairsLossyNodes(t *testing.T) {
	img := fpga.SynthMCUFirmware(12*1024, 4)
	u, _ := BuildUpdate(TargetMCU, img)
	// One strong and one marginal node: the marginal one needs repair.
	strong, _ := testNode(t, 1)
	weak, _ := testNode(t, 2)
	sess := NewBroadcastSession([]BroadcastTarget{
		{Node: strong, RSSIdBm: -80},
		{Node: weak, RSSIdBm: -120}, // at sensitivity: ~16% packet loss
	}, 2)
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairPackets == 0 {
		t.Error("marginal node needed no repairs; loss model suspect")
	}
	for _, n := range []*Node{strong, weak} {
		if err := n.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", n.ID, err)
		}
	}
}

func TestBroadcastBeatsSequentialOnFleets(t *testing.T) {
	// The §7 motivation: for a fleet, broadcasting the shared transfer
	// must be much faster than programming nodes one at a time.
	img := fpga.SynthMCUFirmware(16*1024, 5)
	u, _ := BuildUpdate(TargetMCU, img)

	const fleet = 8
	// Sequential: total fleet time is the sum of per-node sessions.
	var sequential float64
	for i := 0; i < fleet; i++ {
		node, _ := testNode(t, uint16(100+i))
		sess := NewSession(node, -85, int64(10+i))
		rep, err := sess.Program(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		sequential += rep.Duration.Seconds()
	}

	targets := broadcastFleet(t, fleet, -85)
	bsess := NewBroadcastSession(targets, 3)
	brep, err := bsess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	speedup := sequential / brep.FleetTime.Seconds()
	if speedup < 3 {
		t.Errorf("broadcast speedup = %.1fx over sequential, want > 3x for an 8-node fleet", speedup)
	}
	t.Logf("sequential %.0f s, broadcast %.0f s (%.1fx)", sequential, brep.FleetTime.Seconds(), speedup)
}

func TestBroadcastFPGAUpdate(t *testing.T) {
	design := fpga.BLEBeaconDesign()
	img := fpga.SynthBitstream(design)
	u, err := BuildUpdate(TargetFPGA, img)
	if err != nil {
		t.Fatal(err)
	}
	targets := broadcastFleet(t, 3, -85)
	sess := NewBroadcastSession(targets, 4)
	if _, err := sess.ProgramFleet(u, design); err != nil {
		t.Fatal(err)
	}
	for _, tg := range targets {
		if tg.Node.FPGA.State() != fpga.StateRunning {
			t.Errorf("node %d FPGA not running", tg.Node.ID)
		}
	}
}

func TestBroadcastEmptyFleetRejected(t *testing.T) {
	u, _ := BuildUpdate(TargetMCU, fpga.SynthMCUFirmware(1024, 1))
	sess := NewBroadcastSession(nil, 1)
	if _, err := sess.ProgramFleet(u, nil); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestBroadcastUnreachableNodeFails(t *testing.T) {
	u, _ := BuildUpdate(TargetMCU, fpga.SynthMCUFirmware(4096, 2))
	node, _ := testNode(t, 1)
	sess := NewBroadcastSession([]BroadcastTarget{{Node: node, RSSIdBm: -140}}, 5)
	sess.MaxRepairRounds = 3
	if _, err := sess.ProgramFleet(u, nil); err == nil {
		t.Error("unreachable node programmed")
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	img := fpga.SynthMCUFirmware(8*1024, 7)
	u, _ := BuildUpdate(TargetMCU, img)
	run := func() (int, float64) {
		targets := broadcastFleet(t, 4, -117)
		sess := NewBroadcastSession(targets, 9)
		rep, err := sess.ProgramFleet(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.RepairPackets, rep.FleetTime.Seconds()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Errorf("broadcast not deterministic: (%d, %v) vs (%d, %v)", r1, t1, r2, t2)
	}
}
