package ota

import (
	"bytes"
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
)

func broadcastFleet(t *testing.T, n int, rssi float64) []BroadcastTarget {
	t.Helper()
	targets := make([]BroadcastTarget, n)
	for i := range targets {
		node, _ := testNode(t, uint16(i+1))
		targets[i] = BroadcastTarget{Node: node, RSSIdBm: rssi}
	}
	return targets
}

func TestBroadcastDeliversExactImages(t *testing.T) {
	img := fpga.SynthMCUFirmware(16*1024, 3)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	targets := broadcastFleet(t, 5, -90)
	sess := NewBroadcastSession(targets, 1)
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BroadcastPackets != len(u.Chunks) {
		t.Errorf("broadcast packets = %d, want %d", rep.BroadcastPackets, len(u.Chunks))
	}
	for _, tg := range targets {
		if err := tg.Node.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", tg.Node.ID, err)
		}
	}
	if len(rep.PerNode) != 5 {
		t.Errorf("per-node stats = %d", len(rep.PerNode))
	}
	for _, p := range rep.PerNode {
		if p.Err != nil {
			t.Errorf("node %d failed: %v", p.NodeID, p.Err)
		}
		if p.Duration <= 0 {
			t.Errorf("node %d duration = %v", p.NodeID, p.Duration)
		}
	}
	if rep.Failed() != 0 {
		t.Errorf("failed = %d, want 0", rep.Failed())
	}
	if rep.AirBytes == 0 {
		t.Error("no air bytes accounted")
	}
}

func TestBroadcastDataFramesUseBroadcastAddr(t *testing.T) {
	// A node in update mode must accept broadcast-addressed data (the §7
	// broadcast phase has no per-node addressing) while still rejecting
	// unicast frames for other nodes.
	img := fpga.SynthMCUFirmware(4*1024, 11)
	u, _ := BuildUpdate(TargetMCU, img)
	node, _ := testNode(t, 7)
	m := u.Manifest()
	mb, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.HandleProgramRequest(&Frame{Type: FrameProgramRequest, Device: 7, Payload: mb}); err != nil {
		t.Fatal(err)
	}
	ack, err := node.HandleData(&Frame{Type: FrameData, Device: BroadcastAddr, Seq: 0, Payload: u.Chunks[0]})
	if err != nil {
		t.Fatalf("broadcast-addressed data rejected: %v", err)
	}
	if ack.Type != FrameAck || ack.Seq != 0 {
		t.Errorf("bad ack %v seq %d", ack.Type, ack.Seq)
	}
	if _, err := node.HandleData(&Frame{Type: FrameData, Device: 8, Seq: 1, Payload: u.Chunks[1]}); err == nil {
		t.Error("unicast data for another node accepted")
	}
}

func TestBroadcastRepairsLossyNodes(t *testing.T) {
	img := fpga.SynthMCUFirmware(12*1024, 4)
	u, _ := BuildUpdate(TargetMCU, img)
	// One strong and one marginal node: the marginal one needs repair.
	strong, _ := testNode(t, 1)
	weak, _ := testNode(t, 2)
	sess := NewBroadcastSession([]BroadcastTarget{
		{Node: strong, RSSIdBm: -80},
		{Node: weak, RSSIdBm: -120}, // at sensitivity: ~16% packet loss
	}, 2)
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RepairPackets == 0 {
		t.Error("marginal node needed no repairs; loss model suspect")
	}
	for _, n := range []*Node{strong, weak} {
		if err := n.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", n.ID, err)
		}
	}
}

func TestBroadcastBeatsSequentialOnFleets(t *testing.T) {
	// The §7 motivation: for a fleet, broadcasting the shared transfer
	// must be much faster than programming nodes one at a time.
	img := fpga.SynthMCUFirmware(16*1024, 5)
	u, _ := BuildUpdate(TargetMCU, img)

	const fleet = 8
	// Sequential: total fleet time is the sum of per-node sessions.
	var sequential float64
	for i := 0; i < fleet; i++ {
		node, _ := testNode(t, uint16(100+i))
		sess := NewSession(node, -85, int64(10+i))
		rep, err := sess.Program(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		sequential += rep.Duration.Seconds()
	}

	targets := broadcastFleet(t, fleet, -85)
	bsess := NewBroadcastSession(targets, 3)
	brep, err := bsess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	speedup := sequential / brep.FleetTime.Seconds()
	if speedup < 3 {
		t.Errorf("broadcast speedup = %.1fx over sequential, want > 3x for an 8-node fleet", speedup)
	}
	t.Logf("sequential %.0f s, broadcast %.0f s (%.1fx)", sequential, brep.FleetTime.Seconds(), speedup)
}

func TestBroadcastFPGAUpdate(t *testing.T) {
	design := fpga.BLEBeaconDesign()
	img := fpga.SynthBitstream(design)
	u, err := BuildUpdate(TargetFPGA, img)
	if err != nil {
		t.Fatal(err)
	}
	targets := broadcastFleet(t, 3, -85)
	sess := NewBroadcastSession(targets, 4)
	if _, err := sess.ProgramFleet(u, design); err != nil {
		t.Fatal(err)
	}
	for _, tg := range targets {
		if tg.Node.FPGA.State() != fpga.StateRunning {
			t.Errorf("node %d FPGA not running", tg.Node.ID)
		}
	}
}

func TestBroadcastEmptyFleetRejected(t *testing.T) {
	u, _ := BuildUpdate(TargetMCU, fpga.SynthMCUFirmware(1024, 1))
	sess := NewBroadcastSession(nil, 1)
	if _, err := sess.ProgramFleet(u, nil); err == nil {
		t.Error("empty fleet accepted")
	}
}

func TestBroadcastUnreachableNodeFailsAlone(t *testing.T) {
	// One node out of repair rounds is a per-node failure, not a fleet
	// abort: the reachable nodes must still be programmed, matching the
	// per-node semantics of Campus.ProgramAll.
	img := fpga.SynthMCUFirmware(4096, 2)
	u, _ := BuildUpdate(TargetMCU, img)
	dead, _ := testNode(t, 1)
	alive, _ := testNode(t, 2)
	sess := NewBroadcastSession([]BroadcastTarget{
		{Node: dead, RSSIdBm: -140},
		{Node: alive, RSSIdBm: -80},
	}, 5)
	sess.MaxRepairRounds = 3
	rep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		t.Fatalf("fleet aborted for one bad node: %v", err)
	}
	if rep.PerNode[0].Err == nil {
		t.Error("unreachable node reported as programmed")
	}
	if rep.PerNode[1].Err != nil {
		t.Errorf("reachable node failed: %v", rep.PerNode[1].Err)
	}
	if rep.Failed() != 1 {
		t.Errorf("failed = %d, want 1", rep.Failed())
	}
	if err := alive.VerifyImage(img, TargetMCU); err != nil {
		t.Errorf("surviving node image: %v", err)
	}
}

func TestBroadcastFleetTimeWithSkewedClocks(t *testing.T) {
	// FleetTime is each node's own elapsed time, so starting one node's
	// clock ahead of the rest must not change the result.
	img := fpga.SynthMCUFirmware(8*1024, 6)
	u, _ := BuildUpdate(TargetMCU, img)
	run := func(skew time.Duration) time.Duration {
		targets := broadcastFleet(t, 3, -90)
		targets[1].Node.Clock.Advance(skew)
		sess := NewBroadcastSession(targets, 8)
		rep, err := sess.ProgramFleet(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.FleetTime
	}
	base := run(0)
	skewed := run(3 * time.Hour)
	if base != skewed {
		t.Errorf("fleet time depends on starting clocks: %v vs %v", base, skewed)
	}
}

func TestBroadcastMatchesUnicastImages(t *testing.T) {
	// Equivalence: a broadcast session and per-node unicast sessions must
	// stage byte-identical firmware on every node.
	img := fpga.SynthMCUFirmware(16*1024, 9)
	u, _ := BuildUpdate(TargetMCU, img)

	const fleet = 4
	targets := broadcastFleet(t, fleet, -100)
	bsess := NewBroadcastSession(targets, 12)
	if _, err := bsess.ProgramFleet(u, nil); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < fleet; i++ {
		un, _ := testNode(t, uint16(50+i))
		sess := NewSession(un, -100, int64(20+i))
		if _, err := sess.Program(u, nil); err != nil {
			t.Fatal(err)
		}
		want, err := un.Flash.Read(MCURegion, len(img))
		if err != nil {
			t.Fatal(err)
		}
		got, err := targets[i].Node.Flash.Read(MCURegion, len(img))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("node %d: broadcast and unicast staged different images", targets[i].Node.ID)
		}
	}
}

func TestBroadcastDeterministic(t *testing.T) {
	img := fpga.SynthMCUFirmware(8*1024, 7)
	u, _ := BuildUpdate(TargetMCU, img)
	run := func() (int, float64) {
		targets := broadcastFleet(t, 4, -117)
		sess := NewBroadcastSession(targets, 9)
		rep, err := sess.ProgramFleet(u, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.RepairPackets, rep.FleetTime.Seconds()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Errorf("broadcast not deterministic: (%d, %v) vs (%d, %v)", r1, t1, r2, t2)
	}
}
