package ota

import (
	"encoding/binary"
	"fmt"

	"github.com/uwsdr/tinysdr/internal/lzo"
)

// BlockSize is the §3.4 compression granularity: 30 kB blocks fit the
// MCU's 64 kB SRAM with room for the working set.
const BlockSize = 30 * 1024

// Update is a firmware image prepared for OTA distribution: compressed
// block-wise and serialized into a stream of data-frame chunks.
type Update struct {
	Target Target
	// Image is the uncompressed firmware.
	Image []byte
	// Stream is the serialized compressed representation: a block table
	// followed by the compressed blocks.
	Stream []byte
	// Chunks is Stream split into MaxChunk-sized data-frame payloads.
	Chunks [][]byte
}

// UpdateOptions tunes the distribution format for design-space studies.
type UpdateOptions struct {
	// PacketSize is the LoRa packet payload budget; the paper's design
	// point is 60 bytes (DataPacketSize).
	PacketSize int
	// Compress selects miniLZO block compression (the §3.4 design) or
	// stored blocks, the baseline the compression ablation measures.
	Compress bool
}

// BuildUpdate compresses an image on the AP side (§3.4: "we perform
// compression on the AP") and packetizes it with the paper's parameters.
func BuildUpdate(target Target, image []byte) (*Update, error) {
	return BuildUpdateOptions(target, image, UpdateOptions{PacketSize: DataPacketSize, Compress: true})
}

// BuildUpdateOptions builds an update with explicit format parameters.
func BuildUpdateOptions(target Target, image []byte, opts UpdateOptions) (*Update, error) {
	if len(image) == 0 {
		return nil, fmt.Errorf("ota: empty image")
	}
	chunkSize := opts.PacketSize - frameOverhead
	if chunkSize < 8 || chunkSize > 255 {
		return nil, fmt.Errorf("ota: packet size %d unusable (chunk %d)", opts.PacketSize, chunkSize)
	}
	var blocks []lzo.Block
	if opts.Compress {
		blocks = lzo.CompressBlocks(image, BlockSize)
	} else {
		blocks = lzo.StoreBlocks(image, BlockSize)
	}
	stream := serializeBlocks(blocks)
	var chunks [][]byte
	for off := 0; off < len(stream); off += chunkSize {
		end := min(off+chunkSize, len(stream))
		chunks = append(chunks, stream[off:end])
	}
	if len(chunks) > 65535 {
		return nil, fmt.Errorf("ota: image needs %d packets, exceeding 16-bit sequence space", len(chunks))
	}
	return &Update{Target: target, Image: image, Stream: stream, Chunks: chunks}, nil
}

// Manifest returns the update's manifest.
func (u *Update) Manifest() Manifest {
	blocks, _ := parseBlockTable(u.Stream)
	chunk := 0
	if len(u.Chunks) > 0 {
		chunk = len(u.Chunks[0])
	}
	return Manifest{
		Target:     u.Target,
		ImageSize:  uint32(len(u.Image)),
		StreamSize: uint32(len(u.Stream)),
		NumPackets: uint16(len(u.Chunks)),
		NumBlocks:  uint16(blocks),
		ChunkSize:  uint8(chunk),
	}
}

// CompressedSize returns the on-air payload volume.
func (u *Update) CompressedSize() int { return len(u.Stream) }

// serializeBlocks encodes: numBlocks(2) then per block rawLen(4) compLen(4),
// then the concatenated compressed data.
func serializeBlocks(blocks []lzo.Block) []byte {
	out := binary.BigEndian.AppendUint16(nil, uint16(len(blocks)))
	for _, b := range blocks {
		out = binary.BigEndian.AppendUint32(out, uint32(b.RawLen))
		out = binary.BigEndian.AppendUint32(out, uint32(len(b.Data)))
	}
	for _, b := range blocks {
		out = append(out, b.Data...)
	}
	return out
}

func parseBlockTable(stream []byte) (numBlocks int, err error) {
	if len(stream) < 2 {
		return 0, fmt.Errorf("ota: stream too short for block table")
	}
	return int(binary.BigEndian.Uint16(stream)), nil
}

// DeserializeBlocks parses a stream back into blocks, validating structure.
func DeserializeBlocks(stream []byte) ([]lzo.Block, error) {
	n, err := parseBlockTable(stream)
	if err != nil {
		return nil, err
	}
	tableEnd := 2 + 8*n
	if len(stream) < tableEnd {
		return nil, fmt.Errorf("ota: truncated block table")
	}
	blocks := make([]lzo.Block, n)
	off := tableEnd
	for i := 0; i < n; i++ {
		raw := int(binary.BigEndian.Uint32(stream[2+8*i:]))
		comp := int(binary.BigEndian.Uint32(stream[2+8*i+4:]))
		if raw < 0 || raw > BlockSize || off+comp > len(stream) {
			return nil, fmt.Errorf("ota: block %d table entry invalid", i)
		}
		blocks[i] = lzo.Block{RawLen: raw, Data: stream[off : off+comp]}
		off += comp
	}
	if off != len(stream) {
		return nil, fmt.Errorf("ota: %d trailing bytes after blocks", len(stream)-off)
	}
	return blocks, nil
}
