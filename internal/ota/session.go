package ota

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// BackboneParams is the §5.3 OTA link configuration: SF8, 500 kHz,
// coding rate 4/6, 8-chirp preamble, 60-byte packets.
func BackboneParams() lora.Params {
	return lora.Params{
		SF: 8, BW: 500e3, CR: lora.CR46, PreambleLen: 8, SyncWord: 0x34,
		ExplicitHeader: true, CRC: true, OSR: 1,
	}
}

// Session drives one node's firmware update from the AP side, advancing the
// node's simulated clock through every exchange. Packet losses are drawn
// from the analytic LoRa link model at the session's RSSI.
type Session struct {
	Node *Node
	// RSSIdBm is the received power at the node (and, symmetrically, at
	// the AP for ACKs — both ends transmit at 14 dBm in §5.3).
	RSSIdBm float64
	// PHY is the backbone configuration.
	PHY lora.Params
	// MaxRetries bounds per-packet retransmissions before the session
	// fails (the AP gives up on unreachable nodes).
	MaxRetries int

	rng *rand.Rand
}

// NewSession returns a session for one node at the given link RSSI.
func NewSession(node *Node, rssiDBm float64, seed int64) *Session {
	return &Session{
		Node:       node,
		RSSIdBm:    rssiDBm,
		PHY:        BackboneParams(),
		MaxRetries: 50,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Report summarizes one programming session for the Fig. 14 analysis.
type Report struct {
	Duration        time.Duration
	DataPackets     int
	Retransmissions int
	AirBytes        int
	Decompress      DecompressStats
	EnergyJ         float64 // filled by callers that scope a ledger window
}

// Per-exchange processing allowances (MCU turnaround on both ends; the
// handlers are interrupt-driven, so these are sub-millisecond).
const (
	apProcessing   = 200 * time.Microsecond
	nodeProcessing = 200 * time.Microsecond
	ackPayloadLen  = frameOverhead
	reqPayloadLen  = frameOverhead + manifestLen
)

func (s *Session) lost(payloadLen int) bool {
	per := lora.PacketErrorRate(s.PHY, payloadLen, s.RSSIdBm, radio.SX1276NoiseFigureDB)
	return s.rng.Float64() < per
}

// airTime is the on-air duration of a backbone packet with n payload bytes.
func (s *Session) airTime(n int) time.Duration { return s.PHY.TimeOnAir(n) }

// exchange transmits one frame and waits for the expected reply, with
// retransmission on data or reply loss. It advances the node clock through
// airtimes, turnarounds and processing, and returns the reply.
func (s *Session) exchange(f *Frame, handle func(*Frame) (*Frame, error), replyLen int) (*Frame, int, error) {
	clock := s.Node.Clock
	wire, err := f.MarshalBinary()
	if err != nil {
		return nil, 0, err
	}
	retries := 0
	for {
		if retries > s.MaxRetries {
			return nil, retries, fmt.Errorf("ota: device %d unreachable after %d retries (%v at %.1f dBm)",
				f.Device, retries, f.Type, s.RSSIdBm)
		}
		// AP transmit.
		clock.Advance(s.airTime(len(wire)) + apProcessing)
		if s.lost(len(wire)) {
			// Node missed it; AP times out waiting for the reply.
			clock.Advance(s.airTime(replyLen) + nodeProcessing)
			retries++
			continue
		}
		var parsed Frame
		if err := parsed.UnmarshalBinary(wire); err != nil {
			return nil, retries, err
		}
		reply, err := handle(&parsed)
		if err != nil {
			return nil, retries, err
		}
		// Node turnaround and reply.
		clock.Advance(radio.RXToTXTime + nodeProcessing)
		clock.Advance(s.airTime(replyLen))
		if s.lost(replyLen) {
			retries++
			continue
		}
		return reply, retries, nil
	}
}

// Program runs the complete §3.4 update sequence against the node and
// returns the session report. design accompanies FPGA updates for the
// resource model (see Node.Finish).
func (s *Session) Program(u *Update, design *fpga.Design) (*Report, error) {
	if err := s.PHY.Validate(); err != nil {
		return nil, err
	}
	node := s.Node
	start := node.Clock.Now()
	rep := &Report{}

	// Wake the backbone and put the MCU in its transfer posture.
	d, err := node.Backbone.Transition(radio.StateRX)
	if err != nil {
		return nil, err
	}
	node.Clock.Advance(d)
	node.MCU.SetState(mcu.StateIdle)

	// Program request -> ready.
	m := u.Manifest()
	mb, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	req := &Frame{Type: FrameProgramRequest, Device: node.ID, Payload: mb}
	reply, retries, err := s.exchange(req, node.HandleProgramRequest, reqPayloadLen)
	if err != nil {
		return nil, err
	}
	rep.Retransmissions += retries
	if reply.Type != FrameReady {
		return nil, fmt.Errorf("ota: expected ready, got %v", reply.Type)
	}

	// Data transfer with per-packet ACK.
	for seq, chunk := range u.Chunks {
		f := &Frame{Type: FrameData, Device: node.ID, Seq: uint16(seq), Payload: chunk}
		ack, retries, err := s.exchange(f, node.HandleData, ackPayloadLen)
		if err != nil {
			return nil, err
		}
		if ack.Type != FrameAck || ack.Seq != uint16(seq) {
			return nil, fmt.Errorf("ota: bad ack %v seq %d", ack.Type, ack.Seq)
		}
		rep.DataPackets++
		rep.Retransmissions += retries
		rep.AirBytes += (retries + 1) * (len(chunk) + frameOverhead)
	}

	// Finish: acknowledged, then the node reprograms itself.
	fin := &Frame{Type: FrameFinish, Device: node.ID}
	finish := func(f *Frame) (*Frame, error) {
		if f.Type != FrameFinish {
			return nil, fmt.Errorf("ota: expected finish")
		}
		return &Frame{Type: FrameAck, Device: node.ID, Seq: f.Seq}, nil
	}
	if _, retries, err = s.exchange(fin, finish, ackPayloadLen); err != nil {
		return nil, err
	}
	rep.Retransmissions += retries

	stats, err := node.Finish(design)
	if err != nil {
		return nil, err
	}
	rep.Decompress = stats
	rep.Duration = node.Clock.Now() - start
	return rep, nil
}
