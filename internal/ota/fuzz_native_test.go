package ota

import (
	"bytes"
	"testing"
)

// Native go test -fuzz harnesses for the OTA wire parsers — the frames a
// node accepts straight off the radio. The seed corpora cover every frame
// type plus canonical corruptions; CI runs each target for a bounded time
// (see .github/workflows/ci.yml) and the seeds run on every plain
// `go test`.

// frameSeeds returns marshaled frames of every type for the seed corpus.
func frameSeeds(t interface{ Fatal(...any) }) [][]byte {
	var out [][]byte
	for _, f := range []Frame{
		{Type: FrameProgramRequest, Device: 1, Seq: 0, Payload: mustManifest()},
		{Type: FrameReady, Device: 2, Seq: 0},
		{Type: FrameData, Device: 3, Seq: 17, Payload: bytes.Repeat([]byte{0xAB}, MaxChunk)},
		{Type: FrameAck, Device: 3, Seq: 17},
		{Type: FrameFinish, Device: 0xFFFF, Seq: 99},
	} {
		wire, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wire)
	}
	return out
}

func mustManifest() []byte {
	m := Manifest{Target: TargetMCU, ImageSize: 1024, StreamSize: 512,
		NumPackets: 10, NumBlocks: 1, ChunkSize: 52}
	b, err := m.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return b
}

func FuzzFrameUnmarshal(f *testing.F) {
	for _, seed := range frameSeeds(f) {
		f.Add(seed)
		// Canonical corruptions: truncation, bit flip in the CRC, bad
		// length byte.
		f.Add(seed[:len(seed)-1])
		flipped := append([]byte(nil), seed...)
		flipped[len(flipped)-1] ^= 0x01
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.UnmarshalBinary(data); err != nil {
			return
		}
		// Anything that parses must re-marshal to the identical wire
		// form: the CRC and length byte leave no slack.
		wire, err := fr.MarshalBinary()
		if err != nil {
			t.Fatalf("parsed frame fails to marshal: %v", err)
		}
		if !bytes.Equal(wire, data) {
			t.Fatalf("round trip diverges:\n in  %x\n out %x", data, wire)
		}
	})
}

func FuzzManifestUnmarshal(f *testing.F) {
	f.Add(mustManifest())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, manifestLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Manifest
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		wire, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("parsed manifest fails to marshal: %v", err)
		}
		if !bytes.Equal(wire, data) {
			t.Fatalf("round trip diverges:\n in  %x\n out %x", data, wire)
		}
	})
}

func FuzzDeserializeBlocks(f *testing.F) {
	// Seed with a real compressed stream.
	u, err := BuildUpdate(TargetMCU, bytes.Repeat([]byte("tinysdr firmware "), 64))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(u.Stream)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		// Arbitrary bytes must produce blocks or a clean error — the
		// node runs this on radio-received data before reprogramming.
		_, _ = DeserializeBlocks(stream)
	})
}
