package ota

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/flash"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lzo"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/sim"
)

// Flash layout for the OTA system (the 8 MB MX25R6435F holds multiple
// firmware images so nodes can switch protocols without re-transfer, §3.1.2).
const (
	// BootRegion holds the active FPGA bitstream the FPGA boots from.
	BootRegion = 0x000000
	// StagingRegion receives the compressed update stream.
	StagingRegion = 0x0A0000
	// MCURegion holds the staged MCU firmware.
	MCURegion = 0x740000
	// RegionSize bounds each firmware region.
	RegionSize = 0x0A0000
)

// Node is the device-side OTA engine: it owns the backbone radio, writes
// received chunks straight to flash ("considering the LoRa radio takes more
// power than the MCU, we immediately write the data to flash", §3.4), and
// performs the decompress-and-reprogram sequence on Finish.
type Node struct {
	ID       uint16
	Clock    *sim.Clock
	Backbone *radio.SX1276
	MCU      *mcu.MCU
	Flash    *flash.Flash
	FPGA     *fpga.FPGA

	manifest   *Manifest
	received   []bool
	haveAll    bool
	updateBusy bool
}

// NewNode wires a node from its hardware models.
func NewNode(id uint16, clock *sim.Clock, bb *radio.SX1276, m *mcu.MCU, fl *flash.Flash, fp *fpga.FPGA) *Node {
	return &Node{ID: id, Clock: clock, Backbone: bb, MCU: m, Flash: fl, FPGA: fp}
}

// HandleProgramRequest processes a program-request frame addressed to this
// node: it validates the manifest, erases the staging region, and enters
// update mode. It returns the ready frame to transmit.
func (n *Node) HandleProgramRequest(f *Frame) (*Frame, error) {
	if f.Type != FrameProgramRequest {
		return nil, fmt.Errorf("ota: node got %v, want program-request", f.Type)
	}
	if f.Device != n.ID {
		return nil, fmt.Errorf("ota: request for device %d at node %d", f.Device, n.ID)
	}
	var m Manifest
	if err := m.UnmarshalBinary(f.Payload); err != nil {
		return nil, err
	}
	if m.StreamSize > RegionSize {
		return nil, fmt.Errorf("ota: stream of %d bytes exceeds staging region", m.StreamSize)
	}
	// Erase the staging region. The erase runs during the scheduled-wake
	// window the AP's request grants (§3.4), so it costs no transfer
	// time in the session accounting.
	if err := n.Flash.Erase(StagingRegion, int(m.StreamSize)); err != nil {
		return nil, err
	}
	n.manifest = &m
	n.received = make([]bool, m.NumPackets)
	n.haveAll = false
	n.updateBusy = true
	return &Frame{Type: FrameReady, Device: n.ID}, nil
}

// HandleData processes one data frame: sequence check, flash write, and the
// ACK to send. Duplicate chunks are acknowledged without rewriting. Frames
// addressed to BroadcastAddr are accepted by every node in update mode (the
// §7 broadcast phase); unicast frames for another node are still rejected.
func (n *Node) HandleData(f *Frame) (*Frame, error) {
	if !n.updateBusy {
		return nil, fmt.Errorf("ota: data frame outside update")
	}
	if f.Type != FrameData || (f.Device != n.ID && f.Device != BroadcastAddr) {
		return nil, fmt.Errorf("ota: unexpected frame %v for %d", f.Type, f.Device)
	}
	if int(f.Seq) >= len(n.received) {
		return nil, fmt.Errorf("ota: sequence %d beyond manifest %d", f.Seq, len(n.received))
	}
	if !n.received[f.Seq] {
		addr := StagingRegion + int(f.Seq)*int(n.manifest.ChunkSize)
		if err := n.Flash.Program(addr, f.Payload); err != nil {
			return nil, err
		}
		n.Clock.Advance(flash.ProgramTime(len(f.Payload)))
		n.received[f.Seq] = true
	}
	return &Frame{Type: FrameAck, Device: n.ID, Seq: f.Seq}, nil
}

// Reboot models a node crash: the device restarts with all in-progress
// update state lost (the staging flash keeps its bytes, but the node no
// longer knows a transfer was underway and must be re-announced). The
// chaos harness calls it when the fault plan crashes a node mid-campaign.
func (n *Node) Reboot() {
	n.manifest = nil
	n.received = nil
	n.haveAll = false
	n.updateBusy = false
	n.MCU.SetState(mcu.StateIdle)
}

// InUpdate reports whether the node is inside an announced transfer.
func (n *Node) InUpdate() bool { return n.updateBusy }

// Missing returns the chunk sequence numbers the node has not received, in
// ascending order — the NACK bitmap the self-healing repair protocol polls
// for. A node outside an update reports nil (it needs re-announce, not
// repair).
func (n *Node) Missing() []int {
	if !n.updateBusy || n.received == nil {
		return nil
	}
	var out []int
	for seq, ok := range n.received {
		if !ok {
			out = append(out, seq)
		}
	}
	return out
}

// Complete reports whether every chunk has been received.
func (n *Node) Complete() bool {
	if n.received == nil {
		return false
	}
	for _, ok := range n.received {
		if !ok {
			return false
		}
	}
	return true
}

// Finish executes the §3.4 end-of-update sequence: turn the backbone radio
// off, decompress block-by-block through a 30 kB SRAM buffer back into the
// target region of flash, then reprogram the FPGA (or stage MCU firmware).
// design carries the resource-model object the bitstream encodes; hardware
// reads it from the image itself.
func (n *Node) Finish(design *fpga.Design) (DecompressStats, error) {
	var stats DecompressStats
	if !n.updateBusy || n.manifest == nil {
		return stats, fmt.Errorf("ota: finish outside update")
	}
	if !n.Complete() {
		return stats, fmt.Errorf("ota: finish with missing chunks")
	}
	// Radio off during decompression (§3.4).
	if _, err := n.Backbone.Transition(radio.StateSleep); err != nil {
		return stats, err
	}
	stream, err := n.Flash.Read(StagingRegion, int(n.manifest.StreamSize))
	if err != nil {
		return stats, err
	}
	blocks, err := DeserializeBlocks(stream)
	if err != nil {
		return stats, err
	}

	// One 30 kB SRAM working buffer (§3.4).
	if err := n.MCU.AllocSRAM(BlockSize); err != nil {
		return stats, err
	}
	defer n.MCU.FreeSRAM(BlockSize)
	n.MCU.SetState(mcu.StateActive)
	defer n.MCU.SetState(mcu.StateIdle)

	// Erase the target region. The firmware interleaves this with packet
	// reception using the MX25R's program/erase suspend (35 ms sector
	// erases hide entirely inside 60 ms packet windows), so by Finish it
	// has already completed and adds no wall time.
	target := BootRegion
	if n.manifest.Target == TargetMCU {
		target = MCURegion
	}
	if err := n.Flash.Erase(target, int(n.manifest.ImageSize)); err != nil {
		return stats, err
	}

	addr := target
	for i, b := range blocks {
		raw, err := lzo.DecompressLimit(b.Data, b.RawLen, BlockSize)
		if err != nil {
			return stats, fmt.Errorf("ota: block %d: %w", i, err)
		}
		d := mcu.DecompressTime(b.RawLen)
		n.Clock.Advance(d)
		stats.DecompressTime += d
		if err := n.Flash.Program(addr, raw); err != nil {
			return stats, err
		}
		w := flash.ProgramTime(len(raw))
		n.Clock.Advance(w)
		stats.FlashTime += w
		addr += len(raw)
	}
	stats.ImageBytes = addr - target

	// Reprogram.
	switch n.manifest.Target {
	case TargetFPGA:
		d, err := n.FPGA.Configure(design)
		if err != nil {
			return stats, err
		}
		n.Clock.Advance(d)
		stats.ReprogramTime = d
	case TargetMCU:
		if err := n.MCU.LoadProgram(int(n.manifest.ImageSize)); err != nil {
			return stats, err
		}
		// Self-programming MCU flash at its write rate.
		d := flash.ProgramTime(int(n.manifest.ImageSize))
		n.Clock.Advance(d)
		stats.ReprogramTime = d
	}
	n.updateBusy = false
	return stats, nil
}

// VerifyImage compares the staged image in flash against want.
func (n *Node) VerifyImage(want []byte, target Target) error {
	region := BootRegion
	if target == TargetMCU {
		region = MCURegion
	}
	got, err := n.Flash.Read(region, len(want))
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("ota: image mismatch at byte %d", i)
		}
	}
	return nil
}

// DecompressStats reports the node-side finish phase.
type DecompressStats struct {
	// DecompressTime is CPU time in the miniLZO decompressor alone — the
	// quantity the paper bounds at 450 ms.
	DecompressTime time.Duration
	// FlashTime is spent writing the decompressed image back to flash.
	FlashTime time.Duration
	// ReprogramTime is the FPGA configuration (or MCU flash) time.
	ReprogramTime time.Duration
	// ImageBytes is the installed image size.
	ImageBytes int
}
