package ota

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// Broadcast programming (§7, "Better programming interface and protocols"):
// instead of programming nodes sequentially, the AP broadcasts every data
// chunk once to the whole fleet, then runs a short per-node repair phase
// for the chunks each node missed. Fleet programming time becomes one
// transfer plus loss repair instead of N sequential transfers — the
// extension the paper proposes to reduce network programming time.

// BroadcastAddr is the all-nodes device address for broadcast data frames.
const BroadcastAddr = 0xFFFF

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// BroadcastTarget is one node in a broadcast session with its link quality.
type BroadcastTarget struct {
	Node    *Node
	RSSIdBm float64
}

// BroadcastSession drives a fleet update in broadcast mode. All node clocks
// advance in lockstep: the fleet shares the broadcast phase, waits through
// each node's repair phase, and reprograms concurrently at the end.
type BroadcastSession struct {
	Targets []BroadcastTarget
	PHY     lora.Params
	// MaxRepairRounds bounds repair sweeps per node before the session
	// fails.
	MaxRepairRounds int

	rng *rand.Rand
}

// NewBroadcastSession returns a broadcast session over the given fleet.
func NewBroadcastSession(targets []BroadcastTarget, seed int64) *BroadcastSession {
	return &BroadcastSession{
		Targets:         targets,
		PHY:             BackboneParams(),
		MaxRepairRounds: 20,
		rng:             rand.New(rand.NewSource(seed)),
	}
}

// BroadcastReport summarizes a fleet broadcast.
type BroadcastReport struct {
	// FleetTime is the wall time to program the whole fleet: broadcast
	// phase plus all repair phases plus the (concurrent) reprogramming.
	FleetTime time.Duration
	// BroadcastPackets is the number of chunks sent in the shared phase.
	BroadcastPackets int
	// RepairPackets counts per-node repair transmissions.
	RepairPackets int
	// PerNode holds each node's finish stats.
	PerNode []DecompressStats
}

func (s *BroadcastSession) lost(rssi float64, payloadLen int) bool {
	per := lora.PacketErrorRate(s.PHY, payloadLen, rssi, radio.SX1276NoiseFigureDB)
	return s.rng.Float64() < per
}

// advanceAll moves every node's clock forward by d, keeping the fleet in
// lockstep.
func (s *BroadcastSession) advanceAll(d time.Duration) {
	for _, t := range s.Targets {
		t.Node.Clock.Advance(d)
	}
}

// ProgramFleet runs the broadcast protocol end to end. design accompanies
// FPGA updates (nil for MCU targets), as in Session.Program.
func (s *BroadcastSession) ProgramFleet(u *Update, design *fpga.Design) (*BroadcastReport, error) {
	if len(s.Targets) == 0 {
		return nil, fmt.Errorf("ota: empty fleet")
	}
	start := s.Targets[0].Node.Clock.Now()
	rep := &BroadcastReport{}

	// Announce: per-node request/ready so every node erases staging and
	// enters update mode. Sequential, but one exchange per node.
	m := u.Manifest()
	mb, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	reqTime := s.PHY.TimeOnAir(reqPayloadLen) + apProcessing +
		radio.RXToTXTime + nodeProcessing + s.PHY.TimeOnAir(ackPayloadLen)
	for _, t := range s.Targets {
		d, err := t.Node.Backbone.Transition(radio.StateRX)
		if err != nil {
			return nil, err
		}
		t.Node.Clock.Advance(d)
		t.Node.MCU.SetState(mcu.StateIdle)
		req := &Frame{Type: FrameProgramRequest, Device: t.Node.ID, Payload: mb}
		if _, err := t.Node.HandleProgramRequest(req); err != nil {
			return nil, err
		}
		s.advanceAll(reqTime)
	}

	// Broadcast phase: every chunk once, fleet-wide, no ACKs. Each node
	// independently keeps or misses each packet.
	chunkTime := s.PHY.TimeOnAir(DataPacketSize) + apProcessing
	missing := make([]map[int]bool, len(s.Targets))
	for i := range missing {
		missing[i] = map[int]bool{}
	}
	for seq, chunk := range u.Chunks {
		s.advanceAll(chunkTime)
		rep.BroadcastPackets++
		for i, t := range s.Targets {
			if s.lost(t.RSSIdBm, len(chunk)+frameOverhead) {
				missing[i][seq] = true
				continue
			}
			data := &Frame{Type: FrameData, Device: t.Node.ID, Seq: uint16(seq), Payload: chunk}
			if _, err := t.Node.HandleData(data); err != nil {
				return nil, err
			}
		}
	}

	// Repair phase: unicast each node's missing chunks with ACKs, in
	// sequence order so the simulation stays deterministic.
	repairTime := chunkTime + radio.RXToTXTime + nodeProcessing + s.PHY.TimeOnAir(ackPayloadLen)
	for i, t := range s.Targets {
		gaps := sortedKeys(missing[i])
		for round := 0; len(gaps) > 0; round++ {
			if round >= s.MaxRepairRounds {
				return nil, fmt.Errorf("ota: node %d unreachable after %d repair rounds", t.Node.ID, round)
			}
			var still []int
			for _, seq := range gaps {
				s.advanceAll(repairTime)
				rep.RepairPackets++
				if s.lost(t.RSSIdBm, len(u.Chunks[seq])+frameOverhead) || s.lost(t.RSSIdBm, ackPayloadLen) {
					still = append(still, seq)
					continue
				}
				f := &Frame{Type: FrameData, Device: t.Node.ID, Seq: uint16(seq), Payload: u.Chunks[seq]}
				if _, err := t.Node.HandleData(f); err != nil {
					return nil, err
				}
			}
			gaps = still
		}
	}

	// Finish marker, then every node decompresses and reprograms. The
	// finish phases run concurrently in the field, so each node's clock
	// advances independently and the fleet time follows the slowest.
	s.advanceAll(s.PHY.TimeOnAir(ackPayloadLen) + apProcessing)
	for _, t := range s.Targets {
		stats, err := t.Node.Finish(design)
		if err != nil {
			return nil, err
		}
		rep.PerNode = append(rep.PerNode, stats)
	}

	var latest time.Duration
	for _, t := range s.Targets {
		if now := t.Node.Clock.Now(); now > latest {
			latest = now
		}
	}
	rep.FleetTime = latest - start
	return rep, nil
}
