package ota

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// Broadcast programming (§7, "Better programming interface and protocols"):
// instead of programming nodes sequentially, the AP broadcasts every data
// chunk once to the whole fleet, then runs a short per-node repair phase
// for the chunks each node missed. Fleet programming time becomes one
// transfer plus loss repair instead of N sequential transfers — the
// extension the paper proposes to reduce network programming time.

// BroadcastAddr is the all-nodes device address for broadcast data frames.
const BroadcastAddr = 0xFFFF

// sortedKeys returns the map's keys in ascending order.
func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	//lint:detok order-insensitive: the keys are sorted before any caller iterates them
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// BroadcastTarget is one node in a broadcast session with its link quality.
type BroadcastTarget struct {
	Node    *Node
	RSSIdBm float64
}

// BroadcastSession drives a fleet update in broadcast mode. All node clocks
// advance in lockstep: the fleet shares the broadcast phase, waits through
// each node's repair phase, and reprograms concurrently at the end.
type BroadcastSession struct {
	Targets []BroadcastTarget
	PHY     lora.Params
	// MaxRepairRounds bounds repair sweeps per node before the session
	// fails.
	MaxRepairRounds int

	rng *rand.Rand
}

// NewBroadcastSession returns a broadcast session over the given fleet.
func NewBroadcastSession(targets []BroadcastTarget, seed int64) *BroadcastSession {
	return &BroadcastSession{
		Targets:         targets,
		PHY:             BackboneParams(),
		MaxRepairRounds: 20,
		rng:             rand.New(rand.NewSource(seed)),
	}
}

// FailureClass is the per-node failure taxonomy: why a node could not be
// programmed. It separates "never reachable" (the announce never landed
// and nothing was delivered) from "failed after repairs" (the node took
// data but the repair budget or rounds ran out) — two outcomes a testbed
// operator triages very differently — plus the chaos-harness classes.
type FailureClass string

// Failure classes.
const (
	// FailNone marks a successfully programmed node.
	FailNone FailureClass = ""
	// FailUnreachable: the node never entered the transfer — no announce
	// completed and no data was delivered.
	FailUnreachable FailureClass = "unreachable"
	// FailExhausted: the node took data but exhausted its repair rounds
	// or retry budget before completing — failed after repairs.
	FailExhausted FailureClass = "exhausted-retries"
	// FailCrashed: the node ended the campaign in a crashed/rebooted
	// state with its update state lost.
	FailCrashed FailureClass = "crashed"
	// FailFlash: flash write failures or bit-rot corrupted the transfer
	// (including decompress failures at finish).
	FailFlash FailureClass = "flash-fault"
	// FailProtocol: a non-fault protocol error (bad frame, bad state).
	FailProtocol FailureClass = "protocol"
)

// BroadcastNodeResult is one node's outcome in a fleet broadcast. Failures
// are per node, matching testbed.ProgramResult: one unreachable node does
// not abort the rest of the fleet.
type BroadcastNodeResult struct {
	NodeID uint16
	// Repairs counts the unicast repair transmissions spent on this node.
	Repairs int
	// Duration is this node's own elapsed time over the session, measured
	// on its own clock. The fleet advances in lockstep, so a failed node
	// still observes the whole session; its Duration is the session's
	// elapsed time at that node, not the time to its failure.
	Duration time.Duration
	// Stats holds the finish-phase stats for successfully programmed nodes.
	Stats DecompressStats
	// Err is the node's failure, nil on success.
	Err error
	// Class is the failure taxonomy for Err (FailNone on success).
	Class FailureClass
	// Crashes and FlashFaults count the injected faults this node
	// absorbed (healing campaigns only; zero elsewhere).
	Crashes     int
	FlashFaults int
}

// BroadcastReport summarizes a fleet broadcast.
type BroadcastReport struct {
	// FleetTime is the wall time to program the whole fleet: broadcast
	// phase plus all repair phases plus the (concurrent) reprogramming.
	// It is the maximum per-node elapsed time, so it is correct even when
	// the fleet's clocks start skewed.
	FleetTime time.Duration
	// BroadcastPackets is the number of chunks sent in the shared phase.
	BroadcastPackets int
	// RepairPackets counts per-node repair transmissions.
	RepairPackets int
	// AirBytes is the AP-transmitted data bytes (broadcast chunks plus
	// repairs, each counted with frame overhead) — comparable to the sum
	// of unicast Report.AirBytes.
	AirBytes int
	// PerNode holds each node's outcome, in Targets order.
	PerNode []BroadcastNodeResult
}

// Failed returns the number of nodes that could not be programmed.
func (r *BroadcastReport) Failed() int {
	n := 0
	for _, p := range r.PerNode {
		if p.Err != nil {
			n++
		}
	}
	return n
}

// FailedByClass breaks the failure count down by taxonomy class, so
// "never reachable" no longer collapses into the same number as "failed
// after repairs".
func (r *BroadcastReport) FailedByClass() map[FailureClass]int {
	out := map[FailureClass]int{}
	for _, p := range r.PerNode {
		if p.Err != nil {
			out[p.Class]++
		}
	}
	return out
}

// Completed returns the number of successfully programmed nodes.
func (r *BroadcastReport) Completed() int { return len(r.PerNode) - r.Failed() }

func (s *BroadcastSession) lost(rssi float64, payloadLen int) bool {
	per := lora.PacketErrorRate(s.PHY, payloadLen, rssi, radio.SX1276NoiseFigureDB)
	return s.rng.Float64() < per
}

// advanceAll moves every node's clock forward by d, keeping the fleet in
// lockstep.
func (s *BroadcastSession) advanceAll(d time.Duration) {
	for _, t := range s.Targets {
		t.Node.Clock.Advance(d)
	}
}

// ProgramFleet runs the broadcast protocol end to end. design accompanies
// FPGA updates (nil for MCU targets), as in Session.Program.
//
// Failures are per node: a node that errors during announce, transfer, or
// finish — or exhausts MaxRepairRounds — is recorded in its
// BroadcastNodeResult and the rest of the fleet keeps going, matching the
// semantics of testbed.Campus.ProgramAll. Only protocol-building errors
// (empty fleet, unmarshalable manifest) fail the whole session.
func (s *BroadcastSession) ProgramFleet(u *Update, design *fpga.Design) (*BroadcastReport, error) {
	if len(s.Targets) == 0 {
		return nil, fmt.Errorf("ota: empty fleet")
	}
	rep := &BroadcastReport{PerNode: make([]BroadcastNodeResult, len(s.Targets))}
	// Per-node start times make FleetTime correct even when the fleet's
	// clocks begin skewed: every phase advances all clocks in lockstep,
	// and the fleet time is the largest per-node elapsed time.
	starts := make([]time.Duration, len(s.Targets))
	for i, t := range s.Targets {
		rep.PerNode[i].NodeID = t.Node.ID
		starts[i] = t.Node.Clock.Now()
	}
	fail := func(i int, err error, class FailureClass) {
		if rep.PerNode[i].Err == nil {
			rep.PerNode[i].Err = err
			rep.PerNode[i].Class = class
		}
	}

	// Announce: per-node request/ready so every node erases staging and
	// enters update mode. Sequential, but one exchange per node. The whole
	// fleet shares the air, so every clock advances through each exchange.
	m := u.Manifest()
	mb, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	reqTime := s.PHY.TimeOnAir(reqPayloadLen) + apProcessing +
		radio.RXToTXTime + nodeProcessing + s.PHY.TimeOnAir(ackPayloadLen)
	for i, t := range s.Targets {
		d, err := t.Node.Backbone.Transition(radio.StateRX)
		if err != nil {
			// The node never entered the transfer: never reachable.
			fail(i, err, FailUnreachable)
		} else {
			s.advanceAll(d)
			t.Node.MCU.SetState(mcu.StateIdle)
			req := &Frame{Type: FrameProgramRequest, Device: t.Node.ID, Payload: mb}
			if _, err := t.Node.HandleProgramRequest(req); err != nil {
				fail(i, err, FailUnreachable)
			}
		}
		// The AP spends the request/ready airtime whether or not the node
		// played along — a failed exchange ends in an AP timeout, exactly
		// as in the unicast Session.exchange.
		s.advanceAll(reqTime)
	}

	// Broadcast phase: every chunk once, fleet-wide, no ACKs, addressed to
	// BroadcastAddr so a single transmission serves every listener. Each
	// node independently keeps or misses each packet.
	chunkTime := s.PHY.TimeOnAir(DataPacketSize) + apProcessing
	missing := make([]map[int]bool, len(s.Targets))
	for i := range missing {
		missing[i] = map[int]bool{}
	}
	for seq, chunk := range u.Chunks {
		s.advanceAll(chunkTime)
		rep.BroadcastPackets++
		rep.AirBytes += len(chunk) + frameOverhead
		data := &Frame{Type: FrameData, Device: BroadcastAddr, Seq: uint16(seq), Payload: chunk}
		for i, t := range s.Targets {
			if rep.PerNode[i].Err != nil {
				continue
			}
			if s.lost(t.RSSIdBm, len(chunk)+frameOverhead) {
				missing[i][seq] = true
				continue
			}
			if _, err := t.Node.HandleData(data); err != nil {
				fail(i, err, FailProtocol)
			}
		}
	}

	// Repair phase: unicast each node's missing chunks with ACKs, in
	// sequence order so the simulation stays deterministic. A node that
	// exhausts its repair rounds is marked failed; the sweep moves on.
	repairTime := chunkTime + radio.RXToTXTime + nodeProcessing + s.PHY.TimeOnAir(ackPayloadLen)
	for i, t := range s.Targets {
		if rep.PerNode[i].Err != nil {
			continue
		}
		gaps := sortedKeys(missing[i])
		for round := 0; len(gaps) > 0; round++ {
			if round >= s.MaxRepairRounds {
				// The node did take broadcast data; it failed after
				// repairs, which is not the same as never reachable.
				fail(i, fmt.Errorf("ota: node %d not repaired after %d rounds", t.Node.ID, round), FailExhausted)
				break
			}
			var still []int
			for _, seq := range gaps {
				s.advanceAll(repairTime)
				rep.RepairPackets++
				rep.PerNode[i].Repairs++
				rep.AirBytes += len(u.Chunks[seq]) + frameOverhead
				if s.lost(t.RSSIdBm, len(u.Chunks[seq])+frameOverhead) {
					still = append(still, seq)
					continue
				}
				// The node has the chunk even if its ACK is lost — the AP
				// re-sends and HandleData deduplicates, matching the
				// unicast exchange semantics.
				f := &Frame{Type: FrameData, Device: t.Node.ID, Seq: uint16(seq), Payload: u.Chunks[seq]}
				if _, err := t.Node.HandleData(f); err != nil {
					fail(i, err, FailProtocol)
					still = nil
					break
				}
				if s.lost(t.RSSIdBm, ackPayloadLen) {
					still = append(still, seq)
				}
			}
			gaps = still
		}
	}

	// Finish marker, then every node decompresses and reprograms. The
	// finish phases run concurrently in the field, so each node's clock
	// advances independently and the fleet time follows the slowest.
	s.advanceAll(s.PHY.TimeOnAir(ackPayloadLen) + apProcessing)
	for i, t := range s.Targets {
		if rep.PerNode[i].Err != nil {
			rep.PerNode[i].Duration = t.Node.Clock.Now() - starts[i]
			continue
		}
		stats, err := t.Node.Finish(design)
		if err != nil {
			fail(i, err, FailProtocol)
		} else {
			rep.PerNode[i].Stats = stats
		}
		rep.PerNode[i].Duration = t.Node.Clock.Now() - starts[i]
	}

	for i := range s.Targets {
		if d := rep.PerNode[i].Duration; d > rep.FleetTime {
			rep.FleetTime = d
		}
	}
	return rep, nil
}
