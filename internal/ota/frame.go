// Package ota implements tinySDR's over-the-air programming system (§3.4):
// the MAC protocol on top of the LoRa backbone radio (programming request,
// ready, sequence-numbered data packets with CRC and ACK/retransmission,
// finish), block-wise miniLZO compression of firmware images, staging in
// external flash, and the decompress-and-reprogram sequence on the node.
package ota

import (
	"encoding/binary"
	"fmt"
)

// FrameType identifies an OTA MAC frame.
type FrameType byte

// The §3.4 protocol frames.
const (
	// FrameProgramRequest announces an update to specific device IDs,
	// with the wake time and update manifest.
	FrameProgramRequest FrameType = iota + 1
	// FrameReady is the node's "ready to receive" response.
	FrameReady
	// FrameData carries one sequence-numbered chunk of compressed image.
	FrameData
	// FrameAck acknowledges one data frame.
	FrameAck
	// FrameFinish ends the transfer and triggers reprogramming.
	FrameFinish
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameProgramRequest:
		return "program-request"
	case FrameReady:
		return "ready"
	case FrameData:
		return "data"
	case FrameAck:
		return "ack"
	case FrameFinish:
		return "finish"
	default:
		return fmt.Sprintf("FrameType(%d)", byte(t))
	}
}

// Frame is one OTA MAC frame. The wire format is:
//
//	type(1) device(2) seq(2) len(1) payload(len) crc16(2)
//
// carried as the payload of one backbone LoRa packet.
type Frame struct {
	Type    FrameType
	Device  uint16
	Seq     uint16
	Payload []byte
}

// frameOverhead is the header plus trailing CRC.
const frameOverhead = 6 + 2

// DataPacketSize is the §5.3 design point: 60-byte LoRa packets balance
// preamble overhead against packet error rate at range.
const DataPacketSize = 60

// MaxChunk is the compressed-image bytes carried per data frame.
const MaxChunk = DataPacketSize - frameOverhead

// MarshalBinary encodes the frame.
func (f *Frame) MarshalBinary() ([]byte, error) {
	if len(f.Payload) > 255 {
		return nil, fmt.Errorf("ota: payload %d exceeds 255", len(f.Payload))
	}
	out := make([]byte, 0, frameOverhead+len(f.Payload))
	out = append(out, byte(f.Type))
	out = binary.BigEndian.AppendUint16(out, f.Device)
	out = binary.BigEndian.AppendUint16(out, f.Seq)
	out = append(out, byte(len(f.Payload)))
	out = append(out, f.Payload...)
	return binary.BigEndian.AppendUint16(out, frameCRC(out)), nil
}

// UnmarshalBinary decodes and validates a frame.
func (f *Frame) UnmarshalBinary(data []byte) error {
	if len(data) < frameOverhead {
		return fmt.Errorf("ota: frame of %d bytes too short", len(data))
	}
	n := int(data[5])
	if len(data) != frameOverhead+n {
		return fmt.Errorf("ota: frame length %d does not match header %d", len(data), n)
	}
	body := data[:len(data)-2]
	want := binary.BigEndian.Uint16(data[len(data)-2:])
	if frameCRC(body) != want {
		return fmt.Errorf("ota: frame CRC mismatch")
	}
	f.Type = FrameType(data[0])
	if f.Type < FrameProgramRequest || f.Type > FrameFinish {
		return fmt.Errorf("ota: unknown frame type %d", data[0])
	}
	f.Device = binary.BigEndian.Uint16(data[1:3])
	f.Seq = binary.BigEndian.Uint16(data[3:5])
	f.Payload = append([]byte(nil), data[6:6+n]...)
	return nil
}

// frameCRCTable is the byte-at-a-time lookup table for the CCITT CRC-16
// polynomial 0x1021 (MSB-first), the same recurrence the bitwise loop
// computed — frame CRCs are unchanged, each byte just costs one table read
// instead of eight shift/xor steps. The fleet simulations hash every frame
// of every node, so this was the single hottest function of the full eval
// run.
var frameCRCTable = func() (t [256]uint16) {
	for b := range t {
		crc := uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[b] = crc
	}
	return
}()

// frameCRC is the CCITT CRC-16 over the frame body.
func frameCRC(body []byte) uint16 {
	var crc uint16
	for _, b := range body {
		crc = crc<<8 ^ frameCRCTable[byte(crc>>8)^b]
	}
	return crc
}

// Target selects what an update reprograms.
type Target byte

// Update targets.
const (
	TargetFPGA Target = 1
	TargetMCU  Target = 2
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetFPGA:
		return "fpga"
	case TargetMCU:
		return "mcu"
	default:
		return fmt.Sprintf("Target(%d)", byte(t))
	}
}

// Manifest describes an update, carried in the program-request payload.
type Manifest struct {
	Target     Target
	ImageSize  uint32 // uncompressed bytes
	StreamSize uint32 // compressed stream bytes (blocks + block table)
	NumPackets uint16
	NumBlocks  uint16
	// ChunkSize is the stream bytes per data frame (all frames but the
	// last); the node uses it as the flash staging stride.
	ChunkSize uint8
}

// manifestLen is the encoded manifest size.
const manifestLen = 14

// MarshalBinary encodes the manifest.
func (m *Manifest) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, manifestLen)
	out = append(out, byte(m.Target))
	out = binary.BigEndian.AppendUint32(out, m.ImageSize)
	out = binary.BigEndian.AppendUint32(out, m.StreamSize)
	out = binary.BigEndian.AppendUint16(out, m.NumPackets)
	out = binary.BigEndian.AppendUint16(out, m.NumBlocks)
	out = append(out, m.ChunkSize)
	return out, nil
}

// UnmarshalBinary decodes a manifest.
func (m *Manifest) UnmarshalBinary(data []byte) error {
	if len(data) != manifestLen {
		return fmt.Errorf("ota: manifest of %d bytes", len(data))
	}
	m.Target = Target(data[0])
	if m.Target != TargetFPGA && m.Target != TargetMCU {
		return fmt.Errorf("ota: unknown target %d", data[0])
	}
	m.ImageSize = binary.BigEndian.Uint32(data[1:5])
	m.StreamSize = binary.BigEndian.Uint32(data[5:9])
	m.NumPackets = binary.BigEndian.Uint16(data[9:11])
	m.NumBlocks = binary.BigEndian.Uint16(data[11:13])
	m.ChunkSize = data[13]
	if m.ChunkSize == 0 {
		return fmt.Errorf("ota: zero chunk size")
	}
	return nil
}
