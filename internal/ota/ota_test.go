package ota

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"github.com/uwsdr/tinysdr/internal/flash"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(devID, seq uint16, payload []byte) bool {
		if len(payload) > 255 {
			payload = payload[:255]
		}
		in := &Frame{Type: FrameData, Device: devID, Seq: seq, Payload: payload}
		wire, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Frame
		if err := out.UnmarshalBinary(wire); err != nil {
			return false
		}
		return out.Type == in.Type && out.Device == in.Device &&
			out.Seq == in.Seq && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	in := &Frame{Type: FrameData, Device: 7, Seq: 42, Payload: []byte("chunk")}
	wire, _ := in.MarshalBinary()
	for i := range wire {
		mut := append([]byte(nil), wire...)
		mut[i] ^= 0x40
		var out Frame
		if err := out.UnmarshalBinary(mut); err == nil {
			// A length-field corruption could still parse if it
			// matched; with a fixed buffer it must not.
			t.Errorf("corruption at byte %d accepted", i)
		}
	}
	var out Frame
	if err := out.UnmarshalBinary(wire[:4]); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestFrameTypeStrings(t *testing.T) {
	if FrameData.String() != "data" || FrameProgramRequest.String() != "program-request" {
		t.Error("frame type names wrong")
	}
	if TargetFPGA.String() != "fpga" || TargetMCU.String() != "mcu" {
		t.Error("target names wrong")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	in := Manifest{Target: TargetFPGA, ImageSize: 579 * 1024, StreamSize: 99 * 1024, NumPackets: 1950, NumBlocks: 20, ChunkSize: 52}
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Manifest
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip %+v != %+v", out, in)
	}
	if err := out.UnmarshalBinary(b[:5]); err == nil {
		t.Error("short manifest accepted")
	}
}

func TestBuildUpdateStreamStructure(t *testing.T) {
	img := fpga.SynthBitstream(fpga.BLEBeaconDesign())
	u, err := BuildUpdate(TargetFPGA, img)
	if err != nil {
		t.Fatal(err)
	}
	// 579 kB image -> 20 blocks of <= 30 kB.
	m := u.Manifest()
	if m.NumBlocks != 20 {
		t.Errorf("blocks = %d, want 20", m.NumBlocks)
	}
	if int(m.ImageSize) != len(img) {
		t.Errorf("image size = %d", m.ImageSize)
	}
	// Chunks reassemble to the stream.
	var joined []byte
	for _, c := range u.Chunks {
		joined = append(joined, c...)
	}
	if !bytes.Equal(joined, u.Stream) {
		t.Error("chunks do not reassemble the stream")
	}
	// Blocks deserialize and carry the image.
	blocks, err := DeserializeBlocks(u.Stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 20 {
		t.Errorf("deserialized %d blocks", len(blocks))
	}
}

func TestBuildUpdateRejectsEmpty(t *testing.T) {
	if _, err := BuildUpdate(TargetFPGA, nil); err == nil {
		t.Error("empty image accepted")
	}
}

func TestDeserializeBlocksRejectsCorruption(t *testing.T) {
	img := fpga.SynthMCUFirmware(8192, 3)
	u, _ := BuildUpdate(TargetMCU, img)
	if _, err := DeserializeBlocks(u.Stream[:8]); err == nil {
		t.Error("truncated table accepted")
	}
	mut := append([]byte(nil), u.Stream...)
	mut = mut[:len(mut)-3]
	if _, err := DeserializeBlocks(mut); err == nil {
		t.Error("truncated data accepted")
	}
}

// testNode builds a node with a fresh hardware stack.
func testNode(t *testing.T, id uint16) (*Node, *power.PMU) {
	t.Helper()
	clock := sim.NewClock()
	pmu := power.NewPMU(clock)
	node := NewNode(id, clock,
		radio.NewSX1276(pmu),
		mcu.New(pmu),
		flash.New(),
		fpga.New(pmu))
	return node, pmu
}

func TestEndToEndUpdatePerfectLink(t *testing.T) {
	node, _ := testNode(t, 3)
	design := fpga.BLEBeaconDesign()
	img := fpga.SynthBitstream(design)
	u, err := BuildUpdate(TargetFPGA, img)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(node, -60, 1) // strong link, PER ~ 0
	rep, err := sess.Program(u, design)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retransmissions != 0 {
		t.Errorf("retransmissions = %d on a -60 dBm link", rep.Retransmissions)
	}
	if rep.DataPackets != len(u.Chunks) {
		t.Errorf("data packets = %d, want %d", rep.DataPackets, len(u.Chunks))
	}
	// The node must now hold the exact image and be running the design.
	if err := node.VerifyImage(img, TargetFPGA); err != nil {
		t.Error(err)
	}
	if node.FPGA.State() != fpga.StateRunning {
		t.Error("FPGA not running after update")
	}
	if node.FPGA.Design().Name != design.Name {
		t.Error("wrong design loaded")
	}
}

func TestUpdateTimeMatchesPaperBLE(t *testing.T) {
	// §5.3: BLE FPGA updates average 59 s. At a clean link our protocol
	// should land in the same regime (the paper's numbers are averages
	// over links with losses, so accept 45-75 s).
	node, _ := testNode(t, 1)
	design := fpga.BLEBeaconDesign()
	u, _ := BuildUpdate(TargetFPGA, fpga.SynthBitstream(design))
	sess := NewSession(node, -80, 2)
	rep, err := sess.Program(u, design)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration < 45*time.Second || rep.Duration > 80*time.Second {
		t.Errorf("BLE update = %v, want ≈59 s", rep.Duration)
	}
	// Decompression (CPU) must respect the paper's 450 ms bound.
	if rep.Decompress.DecompressTime > 450*time.Millisecond {
		t.Errorf("decompress = %v, exceeds 450 ms", rep.Decompress.DecompressTime)
	}
}

func TestUpdateMCUFirmware(t *testing.T) {
	node, _ := testNode(t, 9)
	img := fpga.SynthMCUFirmware(78*1024, 11)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(node, -75, 3)
	rep, err := sess.Program(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.VerifyImage(img, TargetMCU); err != nil {
		t.Error(err)
	}
	if node.MCU.ProgramSize() != len(img) {
		t.Error("MCU program not loaded")
	}
	// §5.3: MCU updates average 39 s.
	if rep.Duration < 28*time.Second || rep.Duration > 55*time.Second {
		t.Errorf("MCU update = %v, want ≈39 s", rep.Duration)
	}
}

func TestUpdateSurvivesLossyLink(t *testing.T) {
	// Near sensitivity the link drops packets; the ARQ must still deliver
	// a byte-exact image, just more slowly.
	node, _ := testNode(t, 5)
	img := fpga.SynthMCUFirmware(16*1024, 4)
	u, _ := BuildUpdate(TargetMCU, img)
	sens := BackboneParams()
	rssi := -112.0 // ≈ sensitivity for SF8/BW500 with NF 7 is -120; margin 8
	_ = sens
	sess := NewSession(node, rssi, 5)
	rep, err := sess.Program(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.VerifyImage(img, TargetMCU); err != nil {
		t.Error(err)
	}
	_ = rep
}

func TestUpdateRetransmitsOnLoss(t *testing.T) {
	node, _ := testNode(t, 6)
	img := fpga.SynthMCUFirmware(8*1024, 6)
	u, _ := BuildUpdate(TargetMCU, img)
	// Margin ~0: PER ≈ 10%, so retransmissions must appear.
	sess := NewSession(node, -120, 7)
	rep, err := sess.Program(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retransmissions == 0 {
		t.Error("no retransmissions at sensitivity-level RSSI")
	}
	if err := node.VerifyImage(img, TargetMCU); err != nil {
		t.Error(err)
	}
}

func TestUpdateFailsWhenOutOfRange(t *testing.T) {
	node, _ := testNode(t, 7)
	img := fpga.SynthMCUFirmware(4*1024, 8)
	u, _ := BuildUpdate(TargetMCU, img)
	sess := NewSession(node, -140, 9) // far below sensitivity
	sess.MaxRetries = 10
	if _, err := sess.Program(u, nil); err == nil {
		t.Error("unreachable node programmed successfully")
	}
}

func TestNodeRejectsWrongDevice(t *testing.T) {
	node, _ := testNode(t, 8)
	m := Manifest{Target: TargetMCU, ImageSize: 100, StreamSize: 100, NumPackets: 2, NumBlocks: 1, ChunkSize: 52}
	mb, _ := m.MarshalBinary()
	f := &Frame{Type: FrameProgramRequest, Device: 99, Payload: mb}
	if _, err := node.HandleProgramRequest(f); err == nil {
		t.Error("request for another device accepted")
	}
}

func TestNodeRejectsDataOutsideUpdate(t *testing.T) {
	node, _ := testNode(t, 8)
	f := &Frame{Type: FrameData, Device: 8, Seq: 0, Payload: []byte("x")}
	if _, err := node.HandleData(f); err == nil {
		t.Error("data outside update accepted")
	}
}

func TestNodeFinishRequiresAllChunks(t *testing.T) {
	node, _ := testNode(t, 8)
	m := Manifest{Target: TargetMCU, ImageSize: 1000, StreamSize: 200, NumPackets: 4, NumBlocks: 1, ChunkSize: 52}
	mb, _ := m.MarshalBinary()
	req := &Frame{Type: FrameProgramRequest, Device: 8, Payload: mb}
	if _, err := node.HandleProgramRequest(req); err != nil {
		t.Fatal(err)
	}
	if _, err := node.Finish(nil); err == nil {
		t.Error("finish with zero chunks accepted")
	}
}

func TestDuplicateDataChunksAcked(t *testing.T) {
	node, _ := testNode(t, 4)
	img := fpga.SynthMCUFirmware(4*1024, 10)
	u, _ := BuildUpdate(TargetMCU, img)
	m := u.Manifest()
	mb, _ := m.MarshalBinary()
	if _, err := node.HandleProgramRequest(&Frame{Type: FrameProgramRequest, Device: 4, Payload: mb}); err != nil {
		t.Fatal(err)
	}
	f := &Frame{Type: FrameData, Device: 4, Seq: 0, Payload: u.Chunks[0]}
	if _, err := node.HandleData(f); err != nil {
		t.Fatal(err)
	}
	// Duplicate (AP missed the ACK): must ACK again without error.
	ack, err := node.HandleData(f)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != FrameAck || ack.Seq != 0 {
		t.Error("duplicate not re-acked")
	}
}

func TestSessionEnergyRegime(t *testing.T) {
	// §5.3: a BLE FPGA update costs ≈2342 mJ. Scope the ledger around one
	// session and compare within 25%.
	node, pmu := testNode(t, 2)
	design := fpga.BLEBeaconDesign()
	u, _ := BuildUpdate(TargetFPGA, fpga.SynthBitstream(design))
	pmu.Ledger().Reset()
	sess := NewSession(node, -80, 12)
	if _, err := sess.Program(u, design); err != nil {
		t.Fatal(err)
	}
	e := pmu.Ledger().Energy()
	if e < 2.342*0.7 || e > 2.342*1.3 {
		t.Errorf("BLE update energy = %.3f J, want 2.342 ±30%%", e)
	}
}
