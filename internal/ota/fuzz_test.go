package ota

import (
	"testing"
	"testing/quick"
)

// The OTA parsers sit on the radio receive path: arbitrary bytes must
// produce clean errors, never panics.

func TestFrameUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var fr Frame
		err := fr.UnmarshalBinary(data)
		// If it parsed, it must re-marshal consistently.
		if err == nil {
			wire, err2 := fr.MarshalBinary()
			if err2 != nil || len(wire) != len(data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestManifestUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var m Manifest
		_ = m.UnmarshalBinary(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestDeserializeBlocksNeverPanics(t *testing.T) {
	f := func(stream []byte) bool {
		_, _ = DeserializeBlocks(stream)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestBuildUpdateOptionsValidation(t *testing.T) {
	img := []byte("firmware")
	for _, size := range []int{0, 8, 12, 300} {
		if _, err := BuildUpdateOptions(TargetMCU, img, UpdateOptions{PacketSize: size, Compress: true}); err == nil {
			t.Errorf("packet size %d accepted", size)
		}
	}
	if _, err := BuildUpdateOptions(TargetMCU, img, UpdateOptions{PacketSize: 60, Compress: false}); err != nil {
		t.Errorf("stored mode rejected: %v", err)
	}
}
