package ota

// Self-healing broadcast campaigns: the hardened form of the §7 broadcast
// protocol for fleets that crash, lose flash writes and drop off the air
// mid-transfer. Where ProgramFleet runs one broadcast pass plus per-node
// ACKed repair, ProgramFleetHealing runs multi-round NACK-driven block
// repair: after the shared broadcast phase the AP polls each incomplete
// node for its missing-chunk bitmap, unicasts exactly those blocks without
// per-chunk ACKs (the next round's poll reveals what stuck), re-announces
// nodes that crashed and lost their transfer state, backs off
// exponentially (capped) on nodes that make no progress, and stops
// spending on a node once its retry budget is gone. Faults are injected
// from a deterministic fault plan (internal/fault), so a chaos campaign's
// report is a pure function of (spec, seed) — byte-identical at any
// worker count.

import (
	"errors"
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/fault"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// Self-healing protocol defaults.
const (
	// DefaultHealRounds bounds the repair rounds of a healing campaign.
	DefaultHealRounds = 40
	// DefaultMaxBackoff caps the exponential poll backoff, in rounds.
	DefaultMaxBackoff = 8
	// announceAttempts bounds the round-0 announce sweep per node. The
	// legacy protocol models the announce exchange as reliable; under
	// faults one lost announce would otherwise cost a node the whole
	// broadcast phase, so the initial sweep retries a few times before
	// leaving the node to the (budgeted) repair rounds.
	announceAttempts = 3
	// nackPayloadLen models the compact missing-chunk bitmap a node
	// returns to a repair poll (a run-length summary fits a handful of
	// bytes for the gap patterns loss bursts produce).
	nackPayloadLen = frameOverhead + 8
)

// HealConfig tunes the self-healing protocol. The zero value is runnable:
// no injected faults and the default budgets.
type HealConfig struct {
	// Plan injects deterministic faults; nil runs the healing protocol
	// over the plain loss channel.
	Plan *fault.Plan
	// RetryBudget caps the AP transmissions (re-announces, NACK polls,
	// repair chunks) charged to one node; 0 means max(64, two full
	// images' worth of chunks) — enough to recover a node that crashed
	// late and must re-take the whole image.
	RetryBudget int
	// MaxRounds bounds the repair rounds; 0 means DefaultHealRounds.
	MaxRounds int
	// MaxBackoff caps the exponential per-node backoff in rounds; 0
	// means DefaultMaxBackoff.
	MaxBackoff int
	// Canceled, when non-nil, is polled between rounds so a controller
	// can abort a campaign (see fleet.Server); a canceled session
	// returns ErrCanceled.
	Canceled func() bool
}

// ErrCanceled is returned by ProgramFleetHealing when HealConfig.Canceled
// reports cancellation mid-campaign.
var ErrCanceled = errors.New("ota: campaign canceled")

// healNode is the per-node repair state machine.
type healNode struct {
	announced bool // completed announce since last crash
	delivered int  // chunks accepted since the campaign began
	spent     int  // retry budget consumed
	backoff   int  // current backoff in rounds
	nextRound int  // earliest round of the next attempt
	finished  bool // transfer complete, awaiting finish phase
}

// ProgramFleetHealing runs the self-healing broadcast campaign. design
// accompanies FPGA updates (nil for MCU targets). Failures are per node
// and classified (BroadcastNodeResult.Class); only protocol-building
// errors or cancellation fail the session.
//
// The fault plan's frame index advances with every on-air frame, so every
// fault is a fixed function of (plan seed, node, frame) — the campaign
// report is byte-identical regardless of how shards are scheduled.
func (s *BroadcastSession) ProgramFleetHealing(u *Update, design *fpga.Design, hc HealConfig) (*BroadcastReport, error) {
	if len(s.Targets) == 0 {
		return nil, fmt.Errorf("ota: empty fleet")
	}
	maxRounds := hc.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultHealRounds
	}
	maxBackoff := hc.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}
	budget := hc.RetryBudget
	if budget <= 0 {
		budget = 2 * len(u.Chunks)
		if budget < 64 {
			budget = 64
		}
	}
	plan := hc.Plan

	rep := &BroadcastReport{PerNode: make([]BroadcastNodeResult, len(s.Targets))}
	starts := make([]time.Duration, len(s.Targets))
	nodes := make([]healNode, len(s.Targets))
	for i, t := range s.Targets {
		rep.PerNode[i].NodeID = t.Node.ID
		starts[i] = t.Node.Clock.Now()
		if plan != nil {
			t.Node.Flash.SetWriteFaults(plan.Node(t.Node.ID))
			defer t.Node.Flash.SetWriteFaults(nil)
		}
	}
	fail := func(i int, err error, class FailureClass) {
		if rep.PerNode[i].Err == nil {
			rep.PerNode[i].Err = err
			rep.PerNode[i].Class = class
		}
	}

	m := u.Manifest()
	mb, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	chunkTime := s.PHY.TimeOnAir(DataPacketSize) + apProcessing
	reqTime := s.PHY.TimeOnAir(reqPayloadLen) + apProcessing +
		radio.RXToTXTime + nodeProcessing + s.PHY.TimeOnAir(ackPayloadLen)
	pollTime := s.PHY.TimeOnAir(ackPayloadLen) + apProcessing +
		radio.RXToTXTime + nodeProcessing + s.PHY.TimeOnAir(nackPayloadLen)

	// frame is the campaign-global on-air frame index every fault draw is
	// keyed on; it advances once per transmission whether or not anyone
	// heard it.
	var frame int64

	// crashCheck rolls the node's crash fault for the current frame; on a
	// crash the node reboots and loses its transfer state.
	crashCheck := func(i int) bool {
		if plan == nil || !plan.CrashAt(s.Targets[i].Node.ID, frame) {
			return false
		}
		s.Targets[i].Node.Reboot()
		nodes[i].announced = false
		nodes[i].finished = false
		rep.PerNode[i].Crashes++
		return true
	}
	// hears reports whether node i receives the current frame at all:
	// crash, duty-cycle sleep, desync burst, then the channel loss draw.
	// The loss draw is consumed for every listening node (one RNG stream,
	// fixed order), keeping the campaign deterministic.
	hears := func(i int, payloadLen int) bool {
		t := s.Targets[i]
		if crashCheck(i) {
			return false
		}
		if plan != nil && (plan.Asleep(t.Node.ID, frame) || plan.Desynced(t.Node.ID, frame)) {
			return false
		}
		return !s.lost(t.RSSIdBm, payloadLen)
	}
	// apUp rolls the AP outage window for the current frame; during an
	// outage nothing is transmitted (no air bytes) but time still passes.
	apUp := func() bool { return plan == nil || !plan.APDown(frame) }

	// announce attempts the program-request/ready exchange with node i at
	// the current frame, returning true when the AP gets the ready back.
	announce := func(i int) bool {
		t := s.Targets[i]
		s.advanceAll(reqTime)
		if !apUp() {
			return false
		}
		rep.AirBytes += reqPayloadLen
		if !hears(i, reqPayloadLen) {
			return false
		}
		if !t.Node.InUpdate() {
			d, err := t.Node.Backbone.Transition(radio.StateRX)
			if err != nil {
				fail(i, err, FailProtocol)
				return false
			}
			s.advanceAll(d)
			t.Node.MCU.SetState(mcu.StateIdle)
		}
		req := &Frame{Type: FrameProgramRequest, Device: t.Node.ID, Payload: mb}
		if _, err := t.Node.HandleProgramRequest(req); err != nil {
			fail(i, err, FailProtocol)
			return false
		}
		// The ready reply shares the frame's fate drawn above except for
		// its own uplink loss.
		if s.lost(t.RSSIdBm, ackPayloadLen) {
			// The node is announced but the AP does not know yet; the
			// next poll discovers it. Conservatively count it announced —
			// the node is in the transfer and will collect broadcast data.
			nodes[i].announced = true
			return false
		}
		nodes[i].announced = true
		return true
	}

	// deliver hands one data frame to node i, classifying injected flash
	// faults as recoverable (the chunk is simply still missing and the
	// next NACK round re-requests it).
	deliver := func(i int, f *Frame) {
		if _, err := s.Targets[i].Node.HandleData(f); err != nil {
			if errors.Is(err, fault.ErrFlashWrite) {
				rep.PerNode[i].FlashFaults++
				return
			}
			fail(i, err, FailProtocol)
			return
		}
		nodes[i].delivered++
	}

	// Round 0 — initial announce sweep (not charged against budgets, like
	// the legacy protocol's announce phase, which models the exchange as
	// reliable; here each attempt rolls the fault and loss channel, so a
	// node gets a few tries before the broadcast starts without it).
	for i := range s.Targets {
		for a := 0; a < announceAttempts; a++ {
			if rep.PerNode[i].Err != nil || nodes[i].announced {
				break
			}
			frame++
			announce(i)
		}
	}

	// Broadcast phase: every chunk once to BroadcastAddr. Nodes missing
	// their announce still advance in lockstep; they catch up via
	// re-announce and repair rounds.
	for seq, chunk := range u.Chunks {
		frame++
		s.advanceAll(chunkTime)
		if !apUp() {
			// The AP is down: the frame slot passes unused; every node
			// keeps the gap and the repair rounds resend it.
			continue
		}
		rep.BroadcastPackets++
		rep.AirBytes += len(chunk) + frameOverhead
		data := &Frame{Type: FrameData, Device: BroadcastAddr, Seq: uint16(seq), Payload: chunk}
		for i := range s.Targets {
			if rep.PerNode[i].Err != nil || !nodes[i].announced {
				// Unannounced nodes are not in update mode; their loss
				// draw is still consumed so the stream stays aligned.
				_ = s.lost(s.Targets[i].RSSIdBm, len(chunk)+frameOverhead)
				continue
			}
			if hears(i, len(chunk)+frameOverhead) {
				deliver(i, data)
			}
		}
	}

	// Repair rounds: NACK-driven, budgeted, with capped exponential
	// backoff for nodes that make no progress.
	for round := 1; round <= maxRounds; round++ {
		if hc.Canceled != nil && hc.Canceled() {
			return nil, ErrCanceled
		}
		active := false
		for i := range s.Targets {
			t := s.Targets[i]
			st := &nodes[i]
			if rep.PerNode[i].Err != nil || st.finished {
				continue
			}
			if st.announced && t.Node.InUpdate() && t.Node.Complete() {
				st.finished = true
				continue
			}
			active = true
			if round < st.nextRound {
				continue
			}
			if st.spent >= budget {
				class, why := FailExhausted, "retry budget exhausted"
				if st.delivered == 0 && !st.announced {
					class, why = FailUnreachable, "never reachable"
				}
				fail(i, fmt.Errorf("ota: node %d %s after %d transmissions, %d rounds",
					t.Node.ID, why, st.spent, round-1), class)
				continue
			}
			progress := false

			// Crashed or never-announced nodes need the announce first.
			if !st.announced || !t.Node.InUpdate() {
				st.announced = false
				frame++
				st.spent++
				rep.RepairPackets++
				rep.PerNode[i].Repairs++
				if announce(i) {
					progress = true
				}
				if rep.PerNode[i].Err != nil || !st.announced {
					s.backoffStep(st, round, maxBackoff, progress)
					continue
				}
			}

			// NACK poll: one exchange that yields the node's missing set.
			frame++
			st.spent++
			rep.RepairPackets++
			rep.PerNode[i].Repairs++
			s.advanceAll(pollTime)
			polled := apUp() && hears(i, ackPayloadLen) && !s.lost(t.RSSIdBm, nackPayloadLen)
			if apUp() {
				rep.AirBytes += ackPayloadLen
			}
			if rep.PerNode[i].Err != nil {
				continue
			}
			if !polled || !t.Node.InUpdate() {
				s.backoffStep(st, round, maxBackoff, progress)
				continue
			}

			// Unicast the missing chunks, no per-chunk ACKs: the next
			// round's poll reveals what stuck.
			before := len(t.Node.Missing())
			for _, seq := range t.Node.Missing() {
				if st.spent >= budget {
					break
				}
				frame++
				st.spent++
				rep.RepairPackets++
				rep.PerNode[i].Repairs++
				s.advanceAll(chunkTime)
				if !apUp() {
					continue
				}
				rep.AirBytes += len(u.Chunks[seq]) + frameOverhead
				if !hears(i, len(u.Chunks[seq])+frameOverhead) {
					continue
				}
				if rep.PerNode[i].Err != nil || !t.Node.InUpdate() {
					break // crashed mid-repair; re-announce next round
				}
				f := &Frame{Type: FrameData, Device: t.Node.ID, Seq: uint16(seq), Payload: u.Chunks[seq]}
				deliver(i, f)
			}
			if t.Node.InUpdate() && len(t.Node.Missing()) < before {
				progress = true
			}
			s.backoffStep(st, round, maxBackoff, progress)
		}
		if !active {
			break
		}
	}

	// Classify what is still incomplete after the rounds ran out.
	for i, t := range s.Targets {
		st := &nodes[i]
		if rep.PerNode[i].Err != nil || st.finished ||
			(st.announced && t.Node.InUpdate() && t.Node.Complete()) {
			continue
		}
		switch {
		case st.delivered == 0 && !st.announced:
			fail(i, fmt.Errorf("ota: node %d never reachable", t.Node.ID), FailUnreachable)
		case !t.Node.InUpdate():
			fail(i, fmt.Errorf("ota: node %d crashed and was not recovered", t.Node.ID), FailCrashed)
		default:
			fail(i, fmt.Errorf("ota: node %d not repaired after %d rounds", t.Node.ID, maxRounds), FailExhausted)
		}
	}

	// Finish marker, then each complete node decompresses and reprograms.
	// The write-fault hook is scoped to the transfer: staging writes are
	// the faulted path, so flashfail stays a recoverable fault (the repair
	// rounds re-deliver the chunk), while bit-rot planted in the staged
	// stream surfaces here as a terminal decompress failure (FailFlash).
	if plan != nil {
		for _, t := range s.Targets {
			t.Node.Flash.SetWriteFaults(nil)
		}
	}
	frame++
	s.advanceAll(s.PHY.TimeOnAir(ackPayloadLen) + apProcessing)
	for i, t := range s.Targets {
		if rep.PerNode[i].Err == nil {
			stats, err := t.Node.Finish(design)
			if err != nil {
				fail(i, err, FailFlash)
			} else {
				rep.PerNode[i].Stats = stats
			}
		}
		rep.PerNode[i].Duration = t.Node.Clock.Now() - starts[i]
		if d := rep.PerNode[i].Duration; d > rep.FleetTime {
			rep.FleetTime = d
		}
	}
	return rep, nil
}

// backoffStep advances a node's backoff schedule: progress resets it to
// the next round; a dry round doubles it up to the cap.
func (s *BroadcastSession) backoffStep(st *healNode, round, maxBackoff int, progress bool) {
	if progress {
		st.backoff = 1
	} else {
		st.backoff *= 2
		if st.backoff < 1 {
			st.backoff = 1
		}
		if st.backoff > maxBackoff {
			st.backoff = maxBackoff
		}
	}
	st.nextRound = round + st.backoff
}
