package ota

import (
	"errors"
	"testing"

	"github.com/uwsdr/tinysdr/internal/fault"
	"github.com/uwsdr/tinysdr/internal/fpga"
)

func TestHealingNoFaultsDeliversExactImages(t *testing.T) {
	// With no fault plan the healing protocol must still program every
	// node bit-exactly — it only adds NACK polls over the loss channel.
	img := fpga.SynthMCUFirmware(16*1024, 3)
	u, err := BuildUpdate(TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	targets := broadcastFleet(t, 5, -90)
	sess := NewBroadcastSession(targets, 1)
	rep, err := sess.ProgramFleetHealing(u, nil, HealConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() != 0 {
		t.Fatalf("failed = %d: %+v", rep.Failed(), rep.FailedByClass())
	}
	for _, tg := range targets {
		if err := tg.Node.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", tg.Node.ID, err)
		}
	}
	for _, p := range rep.PerNode {
		if p.Class != FailNone {
			t.Errorf("node %d class %q on success", p.NodeID, p.Class)
		}
	}
}

func TestHealingSurvivesFlashFaults(t *testing.T) {
	// Flash write failures are recoverable: the chunk stays missing and a
	// later repair round re-delivers it.
	img := fpga.SynthMCUFirmware(16*1024, 5)
	u, _ := BuildUpdate(TargetMCU, img)
	targets := broadcastFleet(t, 4, -80)
	sess := NewBroadcastSession(targets, 2)
	plan := fault.NewPlan(fault.Spec{FlashFailProb: 0.05}, 7)
	rep, err := sess.ProgramFleetHealing(u, nil, HealConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	faults := 0
	for _, p := range rep.PerNode {
		faults += p.FlashFaults
	}
	if faults == 0 {
		t.Error("no flash faults injected at prob 0.05")
	}
	if rep.Failed() != 0 {
		t.Fatalf("failed = %d despite repairable faults: %+v", rep.Failed(), rep.FailedByClass())
	}
	for _, tg := range targets {
		if err := tg.Node.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", tg.Node.ID, err)
		}
	}
}

func TestHealingRecoversCrashedNodes(t *testing.T) {
	// A crash loses the node's transfer state; the repair rounds must
	// re-announce it and re-deliver what the erase threw away.
	img := fpga.SynthMCUFirmware(8*1024, 9)
	u, _ := BuildUpdate(TargetMCU, img)
	targets := broadcastFleet(t, 4, -80)
	sess := NewBroadcastSession(targets, 3)
	plan := fault.NewPlan(fault.Spec{CrashProb: 0.002}, 21)
	rep, err := sess.ProgramFleetHealing(u, nil, HealConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	crashes := 0
	for _, p := range rep.PerNode {
		crashes += p.Crashes
	}
	if crashes == 0 {
		t.Skip("no crash drawn for this seed; adjust the spec")
	}
	if rep.Failed() != 0 {
		t.Fatalf("failed = %d, want full recovery: %+v", rep.Failed(), rep.FailedByClass())
	}
	for _, tg := range targets {
		if err := tg.Node.VerifyImage(img, TargetMCU); err != nil {
			t.Errorf("node %d: %v", tg.Node.ID, err)
		}
	}
}

func TestHealingBudgetExhaustionClassified(t *testing.T) {
	// A hopeless link with a tiny budget must fail as exhausted-retries
	// (it took broadcast data) or unreachable (it never announced), and
	// the rest of the fleet must still program.
	img := fpga.SynthMCUFirmware(8*1024, 2)
	u, _ := BuildUpdate(TargetMCU, img)
	targets := broadcastFleet(t, 3, -80)
	targets[1].RSSIdBm = -160 // hopeless
	sess := NewBroadcastSession(targets, 4)
	rep, err := sess.ProgramFleetHealing(u, nil, HealConfig{RetryBudget: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerNode[1].Err == nil {
		t.Fatal("hopeless node succeeded")
	}
	if c := rep.PerNode[1].Class; c != FailUnreachable && c != FailExhausted {
		t.Errorf("hopeless node class %q", c)
	}
	for _, i := range []int{0, 2} {
		if rep.PerNode[i].Err != nil {
			t.Errorf("node %d failed: %v", rep.PerNode[i].NodeID, rep.PerNode[i].Err)
		}
	}
	if got := rep.Completed(); got != 2 {
		t.Errorf("completed = %d", got)
	}
	byClass := rep.FailedByClass()
	total := 0
	for _, n := range byClass {
		total += n
	}
	if total != rep.Failed() {
		t.Errorf("taxonomy %v does not sum to failed %d", byClass, rep.Failed())
	}
}

func TestHealingCancellation(t *testing.T) {
	img := fpga.SynthMCUFirmware(8*1024, 6)
	u, _ := BuildUpdate(TargetMCU, img)
	// A lossy fleet guarantees at least one repair round runs.
	targets := broadcastFleet(t, 3, -115)
	sess := NewBroadcastSession(targets, 5)
	_, err := sess.ProgramFleetHealing(u, nil, HealConfig{
		Canceled: func() bool { return true },
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestHealingDeterministicReports(t *testing.T) {
	// Same spec, same seed: the chaos campaign report must be identical in
	// every field, including fault counters and failure classes.
	img := fpga.SynthMCUFirmware(16*1024, 4)
	u, _ := BuildUpdate(TargetMCU, img)
	spec, err := fault.Parse("crash=0.001,flashfail=0.02,bitrot=0.002,desync=0.04:4,duty=0.05,apoutage=0.002:8")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *BroadcastReport {
		targets := broadcastFleet(t, 6, -95)
		sess := NewBroadcastSession(targets, 8)
		rep, err := sess.ProgramFleetHealing(u, nil, HealConfig{Plan: fault.NewPlan(spec, 17)})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.FleetTime != b.FleetTime || a.AirBytes != b.AirBytes ||
		a.BroadcastPackets != b.BroadcastPackets || a.RepairPackets != b.RepairPackets {
		t.Fatalf("session totals differ: %+v vs %+v", a, b)
	}
	for i := range a.PerNode {
		pa, pb := a.PerNode[i], b.PerNode[i]
		if pa.Repairs != pb.Repairs || pa.Duration != pb.Duration ||
			pa.Class != pb.Class || pa.Crashes != pb.Crashes || pa.FlashFaults != pb.FlashFaults ||
			(pa.Err == nil) != (pb.Err == nil) {
			t.Errorf("node %d differs: %+v vs %+v", pa.NodeID, pa, pb)
		}
	}
}

func TestNodeRebootLosesState(t *testing.T) {
	img := fpga.SynthMCUFirmware(4*1024, 8)
	u, _ := BuildUpdate(TargetMCU, img)
	node, _ := testNode(t, 9)
	m := u.Manifest()
	mb, _ := m.MarshalBinary()
	if _, err := node.HandleProgramRequest(&Frame{Type: FrameProgramRequest, Device: 9, Payload: mb}); err != nil {
		t.Fatal(err)
	}
	if _, err := node.HandleData(&Frame{Type: FrameData, Device: 9, Seq: 0, Payload: u.Chunks[0]}); err != nil {
		t.Fatal(err)
	}
	if !node.InUpdate() || len(node.Missing()) != len(u.Chunks)-1 {
		t.Fatalf("update state wrong before reboot: inUpdate=%v missing=%d", node.InUpdate(), len(node.Missing()))
	}
	node.Reboot()
	if node.InUpdate() {
		t.Error("still in update after reboot")
	}
	if node.Missing() != nil {
		t.Error("rebooted node reports a missing set")
	}
	if _, err := node.HandleData(&Frame{Type: FrameData, Device: 9, Seq: 1, Payload: u.Chunks[1]}); err == nil {
		t.Error("rebooted node accepted data without re-announce")
	}
}
