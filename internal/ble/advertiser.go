package ble

import (
	"time"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// Advertiser transmits one beacon sequentially on the three advertising
// channels, hopping as fast as the radio's synthesizer allows. tinySDR
// achieves a 220 µs inter-beacon gap (Fig. 13) — the AT86RF215 frequency
// switch time — versus ≈350 µs on an iPhone 8.
type Advertiser struct {
	Beacon Beacon
	Mod    *Modulator
	// HopDelay is the gap between channels; default is the radio's
	// 220 µs retune time.
	HopDelay time.Duration
}

// NewAdvertiser returns an advertiser using the radio's hop latency.
func NewAdvertiser(b Beacon, sps int) (*Advertiser, error) {
	m, err := NewModulator(sps)
	if err != nil {
		return nil, err
	}
	return &Advertiser{Beacon: b, Mod: m, HopDelay: radio.FreqSwitchTime}, nil
}

// BeaconEvent records one on-air beacon within a burst.
type BeaconEvent struct {
	Channel AdvChannel
	Start   time.Duration
	End     time.Duration
}

// AirTime returns the duration of one beacon transmission.
func (a *Advertiser) AirTime() (time.Duration, error) {
	air, err := a.Beacon.AirBytes(AdvChannels[0].Number)
	if err != nil {
		return 0, err
	}
	return time.Duration(float64(len(air)*8) / BitRate * float64(time.Second)), nil
}

// Burst produces the envelope-level waveform of one advertising event:
// three beacons separated by the hop delay, as an envelope detector sees it
// (Fig. 13). It also returns the event timeline.
func (a *Advertiser) Burst() (iq.Samples, []BeaconEvent, error) {
	sampleRate := a.Mod.SampleRate()
	toSamples := func(d time.Duration) int {
		return int(d.Seconds() * sampleRate)
	}
	var events []BeaconEvent
	var out iq.Samples
	now := time.Duration(0)
	for i, ch := range AdvChannels {
		wave, err := a.Mod.ModulateBeacon(a.Beacon, ch.Number)
		if err != nil {
			return nil, nil, err
		}
		dur := time.Duration(float64(len(wave)) / sampleRate * float64(time.Second))
		events = append(events, BeaconEvent{Channel: ch, Start: now, End: now + dur})
		out = append(out, wave...)
		now += dur
		if i < len(AdvChannels)-1 {
			gap := make(iq.Samples, toSamples(a.HopDelay))
			out = append(out, gap...)
			now += a.HopDelay
		}
	}
	return out, events, nil
}

// BurstDuration returns the total advertising-event duration.
func (a *Advertiser) BurstDuration() (time.Duration, error) {
	at, err := a.AirTime()
	if err != nil {
		return 0, err
	}
	return 3*at + 2*a.HopDelay, nil
}
