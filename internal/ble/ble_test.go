package ble

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/uwsdr/tinysdr/internal/channel"
)

func testBeacon() Beacon {
	return Beacon{
		AdvAddress: [6]byte{0xC0, 0x01, 0xC0, 0xDE, 0xBA, 0x5E},
		AdvData:    []byte{0x02, 0x01, 0x06, 0x07, 0xFF, 0x55, 0x44, 0x33, 0x22, 0x11},
	}
}

func TestPDUAssembly(t *testing.T) {
	b := testBeacon()
	pdu, err := b.PDU()
	if err != nil {
		t.Fatal(err)
	}
	if pdu[0]&0x0F != PDUTypeAdvNonconnInd {
		t.Errorf("PDU type = %#x", pdu[0]&0x0F)
	}
	if int(pdu[1]) != 6+len(b.AdvData) {
		t.Errorf("PDU length = %d", pdu[1])
	}
	if len(pdu) != 2+6+len(b.AdvData) {
		t.Errorf("PDU size = %d", len(pdu))
	}
}

func TestPDURejectsOversizedData(t *testing.T) {
	b := Beacon{AdvData: make([]byte, 32)}
	if _, err := b.PDU(); err == nil {
		t.Error("32-byte adv data accepted")
	}
}

func TestCRC24Properties(t *testing.T) {
	// 24-bit range and sensitivity to single-bit corruption.
	f := func(data []byte, idx int, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		crc := CRC24(data)
		if crc > 0xFFFFFF {
			return false
		}
		idx = (idx%len(data) + len(data)) % len(data)
		mut := append([]byte(nil), data...)
		mut[idx] ^= 1 << (bit % 8)
		return CRC24(mut) != crc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWhitenInvolutionPerChannel(t *testing.T) {
	for _, ch := range AdvChannels {
		data := []byte("whitening test payload")
		orig := append([]byte(nil), data...)
		Whiten(ch.Number, data)
		if bytes.Equal(data, orig) {
			t.Errorf("channel %d: whitening is identity", ch.Number)
		}
		Whiten(ch.Number, data)
		if !bytes.Equal(data, orig) {
			t.Errorf("channel %d: whitening not involutive", ch.Number)
		}
	}
}

func TestWhitenChannelsDiffer(t *testing.T) {
	// Different channels must use different whitening streams — that is
	// the point of seeding with the channel number.
	a := make([]byte, 16)
	b := make([]byte, 16)
	Whiten(37, a)
	Whiten(38, b)
	if bytes.Equal(a, b) {
		t.Error("channels 37 and 38 whiten identically")
	}
}

func TestAirBytesParseRoundTrip(t *testing.T) {
	b := testBeacon()
	for _, ch := range AdvChannels {
		air, err := b.AirBytes(ch.Number)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseAir(ch.Number, air)
		if err != nil {
			t.Fatalf("channel %d: %v", ch.Number, err)
		}
		if got.AdvAddress != b.AdvAddress || !bytes.Equal(got.AdvData, b.AdvData) {
			t.Fatalf("channel %d: round trip mismatch", ch.Number)
		}
	}
}

func TestParseAirDetectsCorruption(t *testing.T) {
	b := testBeacon()
	air, _ := b.AirBytes(37)
	for _, idx := range []int{0, 2, 6, 10, len(air) - 1} {
		mut := append([]byte(nil), air...)
		mut[idx] ^= 0x10
		if _, err := ParseAir(37, mut); err == nil {
			t.Errorf("corruption at byte %d accepted", idx)
		}
	}
}

func TestAirBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := AirBits(data)
		return bytes.Equal(BitsToBytes(bits), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGFSKLoopbackClean(t *testing.T) {
	for _, sps := range []int{4, 8} {
		mod, err := NewModulator(sps)
		if err != nil {
			t.Fatal(err)
		}
		demod, err := NewDemodulator(sps)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := mod.ModulateBeacon(testBeacon(), 38)
		if err != nil {
			t.Fatal(err)
		}
		got, err := demod.Receive(sig, 38)
		if err != nil {
			t.Fatalf("sps %d: %v", sps, err)
		}
		if !bytes.Equal(got.AdvData, testBeacon().AdvData) {
			t.Fatalf("sps %d: payload mismatch", sps)
		}
	}
}

func TestGFSKLoopbackWithNoiseAndOffset(t *testing.T) {
	mod, _ := NewModulator(4)
	demod, _ := NewDemodulator(4)
	sig, _ := mod.ModulateBeacon(testBeacon(), 37)
	ch := channel.NewAWGN(3, channel.NoiseFloorDBm(4e6, 9.5))
	// Strong signal (-60 dBm), arbitrary start offset.
	buf := ch.Noise(333)
	buf = append(buf, ch.Apply(sig, -60)...)
	buf = append(buf, ch.Noise(200)...)
	got, err := demod.Receive(buf, 37)
	if err != nil {
		t.Fatal(err)
	}
	if got.AdvAddress != testBeacon().AdvAddress {
		t.Error("address mismatch")
	}
}

func TestGFSKModulatorConstantEnvelope(t *testing.T) {
	mod, _ := NewModulator(8)
	sig := mod.Modulate([]int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0})
	for i, x := range sig {
		m := real(x)*real(x) + imag(x)*imag(x)
		if m < 0.98 || m > 1.02 {
			t.Fatalf("sample %d power %v; GFSK must be constant envelope", i, m)
		}
	}
}

func TestGFSKBitErrorsAppearBelowSensitivity(t *testing.T) {
	// Far below sensitivity the discriminator must produce many errors.
	mod, _ := NewModulator(4)
	demod, _ := NewDemodulator(4)
	rng := rand.New(rand.NewSource(1))
	bits := make([]int, 400)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	sig := mod.Modulate(bits)
	ch := channel.NewAWGN(4, channel.NoiseFloorDBm(4e6, 9.5))
	rx := ch.Apply(sig, -110)
	pad := gaussianSpan / 2 * 4
	got := demod.DemodBits(rx, pad, len(bits))
	errs := 0
	for i := range got {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs < len(bits)/10 {
		t.Errorf("errors = %d/%d at -110 dBm; noise model too optimistic", errs, len(bits))
	}
}

func TestModulatorValidation(t *testing.T) {
	if _, err := NewModulator(1); err == nil {
		t.Error("sps 1 accepted")
	}
	if _, err := NewDemodulator(100); err == nil {
		t.Error("sps 100 accepted")
	}
}

func TestAdvertiserBurstTimeline(t *testing.T) {
	a, err := NewAdvertiser(testBeacon(), 4)
	if err != nil {
		t.Fatal(err)
	}
	_, events, err := a.Burst()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	// Channels in hop order.
	for i, want := range []int{37, 38, 39} {
		if events[i].Channel.Number != want {
			t.Errorf("event %d on channel %d", i, events[i].Channel.Number)
		}
	}
	// Fig. 13: the inter-beacon gap equals the 220 µs radio retune.
	for i := 1; i < 3; i++ {
		gap := events[i].Start - events[i-1].End
		if gap != 220*time.Microsecond {
			t.Errorf("gap %d = %v, want 220 µs", i, gap)
		}
	}
}

func TestAdvertiserBurstFasterThanIPhone(t *testing.T) {
	// The paper compares tinySDR's 220 µs hop gap against 350 µs on an
	// iPhone 8; the burst with our gap must be shorter.
	a, _ := NewAdvertiser(testBeacon(), 4)
	fast, err := a.BurstDuration()
	if err != nil {
		t.Fatal(err)
	}
	a.HopDelay = 350 * time.Microsecond
	slow, _ := a.BurstDuration()
	if fast >= slow {
		t.Error("220 µs hops not faster than 350 µs hops")
	}
}

func TestAirTimeScale(t *testing.T) {
	a, _ := NewAdvertiser(testBeacon(), 4)
	at, err := a.AirTime()
	if err != nil {
		t.Fatal(err)
	}
	// 5 + 2 + 16 + 3 = 26 bytes = 208 µs at 1 Mbps.
	if at != 208*time.Microsecond {
		t.Errorf("air time = %v, want 208 µs", at)
	}
}
