package ble

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Golden-vector conformance for the GFSK modem, mirroring the LoRa
// captures: committed fixed IQ beacons pin the Gaussian filter, phase
// integrator and whitening/CRC chain in both directions. Regenerate after
// an intentional waveform change with:
//
//	go test ./internal/ble -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite golden IQ captures from the current modulator")

const (
	goldenBits      = 13
	goldenFullScale = 2.0
	goldenSPS       = 4
)

func goldenBeacon() Beacon {
	return Beacon{
		AdvAddress: [6]byte{0xC0, 0xEE, 0x11, 0x57, 0xEC, 0x01},
		AdvData:    []byte("tinysdr!"),
	}
}

// goldenChannels pins one capture per advertising channel the whitener
// sequences differ on.
var goldenChannels = []int{37, 39}

func goldenPath(ch int) string {
	return filepath.Join("testdata", "golden_beacon_ch"+strconv.Itoa(ch)+".iq")
}

func TestGoldenBeaconWaveforms(t *testing.T) {
	mod, err := NewModulator(goldenSPS)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range goldenChannels {
		sig, err := mod.ModulateBeacon(goldenBeacon(), ch)
		if err != nil {
			t.Fatal(err)
		}
		got := iq.EncodeInt16(sig, goldenBits, goldenFullScale)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath(ch), got, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s (%d samples)", goldenPath(ch), len(sig))
			continue
		}
		want, err := os.ReadFile(goldenPath(ch))
		if err != nil {
			t.Fatalf("missing golden capture (regenerate with -update-golden): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("channel %d beacon waveform diverges from golden capture; "+
				"if intentional, regenerate with -update-golden", ch)
		}
	}
}

func TestGoldenBeaconDemodulatesExactly(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	demod, err := NewDemodulator(goldenSPS)
	if err != nil {
		t.Fatal(err)
	}
	want := goldenBeacon()
	for _, ch := range goldenChannels {
		raw, err := os.ReadFile(goldenPath(ch))
		if err != nil {
			t.Fatalf("missing golden capture (regenerate with -update-golden): %v", err)
		}
		sig, err := iq.DecodeInt16(raw, goldenBits, goldenFullScale)
		if err != nil {
			t.Fatal(err)
		}
		got, err := demod.Receive(sig, ch)
		if err != nil {
			t.Fatalf("channel %d golden capture no longer decodes: %v", ch, err)
		}
		if got.AdvAddress != want.AdvAddress {
			t.Errorf("channel %d address = %x, want %x", ch, got.AdvAddress, want.AdvAddress)
		}
		if !bytes.Equal(got.AdvData, want.AdvData) {
			t.Errorf("channel %d payload = %q, want %q", ch, got.AdvData, want.AdvData)
		}
		// The exact air bits must round-trip too: CRC and whitening are
		// part of the pinned surface.
		air, err := want.AirBytes(ch)
		if err != nil {
			t.Fatal(err)
		}
		gotAir, err := got.AirBytes(ch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(air, gotAir) {
			t.Errorf("channel %d air bytes diverge", ch)
		}
	}
}

// TestGoldenBeaconUnderScenario closes the loop through the composed
// channel: the committed capture pushed through gain + flat fading + noise
// at a strong RSSI must still decode — the BLE receive path stays wired to
// the scenario engine.
func TestGoldenBeaconUnderScenario(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	raw, err := os.ReadFile(goldenPath(37))
	if err != nil {
		t.Fatalf("missing golden capture: %v", err)
	}
	sig, err := iq.DecodeInt16(raw, goldenBits, goldenFullScale)
	if err != nil {
		t.Fatal(err)
	}
	demod, err := NewDemodulator(goldenSPS)
	if err != nil {
		t.Fatal(err)
	}
	// -70 dBm is ~30 dB above the 4 MHz floor: mild Rician fading, a
	// 1 kHz oscillator offset and slight clock drift must not break it.
	sc := channel.NewScenario(
		channel.NewGain(-70),
		channel.NewFlatFading(15),
		channel.NewCFO(1000, 0, 5, BitRate*goldenSPS),
		channel.NewNoise(-101),
	)
	ok := 0
	const trials = 8
	for k := 0; k < trials; k++ {
		sc.Reset(1, k)
		if got, err := demod.Receive(sc.Apply(sig), 37); err == nil &&
			got.AdvAddress == goldenBeacon().AdvAddress {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("only %d/%d beacons decoded under mild composed scenario", ok, trials)
	}
}
