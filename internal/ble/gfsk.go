package ble

import (
	"fmt"
	"math"
	"math/cmplx"

	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// GFSK modulation parameters for BLE 4.0: Gaussian BT product 0.5 and
// modulation index 0.5 (within the 0.45-0.55 the spec allows), i.e. a
// ±250 kHz deviation at 1 Mbps.
const (
	// BT is the Gaussian filter bandwidth-time product.
	BT = 0.5
	// ModulationIndex is the frequency-deviation index h.
	ModulationIndex = 0.5
	// gaussianSpan is the pulse truncation in symbols.
	gaussianSpan = 3
)

// Modulator converts air bytes into the baseband GFSK waveform exactly as
// the tinySDR FPGA does (§4.2): upsample the bit stream, apply the Gaussian
// filter, integrate the frequency trajectory into phase, and map phase
// through sine/cosine.
type Modulator struct {
	// SPS is samples per symbol; at BLE's 1 Mbps, 4 SPS matches the
	// AT86RF215's 4 MHz I/Q interface.
	SPS    int
	filter *dsp.FIR
}

// NewModulator returns a GFSK modulator at the given oversampling.
func NewModulator(sps int) (*Modulator, error) {
	if sps < 2 || sps > 64 {
		return nil, fmt.Errorf("ble: samples per symbol %d outside 2..64", sps)
	}
	return &Modulator{SPS: sps, filter: dsp.NewGaussian(BT, sps, gaussianSpan)}, nil
}

// SampleRate returns the waveform rate in Hz.
func (m *Modulator) SampleRate() float64 { return BitRate * float64(m.SPS) }

// Modulate converts bits into I/Q samples. The waveform includes
// gaussianSpan/2 symbols of filter ramp at each end.
func (m *Modulator) Modulate(bits []int) iq.Samples {
	// NRZ at sample rate.
	pad := gaussianSpan / 2
	nrz := make([]float64, (len(bits)+2*pad)*m.SPS)
	for i, b := range bits {
		v := -1.0
		if b != 0 {
			v = 1.0
		}
		for s := 0; s < m.SPS; s++ {
			nrz[(i+pad)*m.SPS+s] = v
		}
	}
	// Pad edges with the value of the adjacent bit to avoid spectral
	// splatter from a hard edge.
	if len(bits) > 0 {
		for s := 0; s < pad*m.SPS; s++ {
			nrz[s] = nrz[pad*m.SPS]
			nrz[len(nrz)-1-s] = nrz[len(nrz)-1-pad*m.SPS]
		}
	}
	shaped := m.filter.FilterReal(nrz)

	// Frequency deviation: h/2 cycles per symbol at full scale.
	devPerSample := ModulationIndex / 2 / float64(m.SPS)
	out := make(iq.Samples, len(shaped))
	phase := 0.0
	for i, f := range shaped {
		out[i] = cmplx.Exp(complex(0, 2*math.Pi*phase))
		phase += f * devPerSample
		phase -= math.Floor(phase)
	}
	return out
}

// ModulateBeacon produces the waveform for one beacon on a channel.
func (m *Modulator) ModulateBeacon(b Beacon, channel int) (iq.Samples, error) {
	air, err := b.AirBytes(channel)
	if err != nil {
		return nil, err
	}
	return m.Modulate(AirBits(air)), nil
}

// Demodulator is a quadrature-discriminator GFSK receiver — the
// architecture of commercial BLE silicon like the CC2650 that Fig. 12
// measures against. The chain is: channel-select low-pass fused with phase
// differentiation (dsp.Discriminator), integrate-and-dump over each bit,
// threshold.
//
// A Demodulator reuses internal scratch buffers across calls, so it is NOT
// safe for concurrent use; give each goroutine its own instance.
type Demodulator struct {
	SPS  int
	disc *dsp.Discriminator

	// Scratch arena, grown to the largest signal seen.
	freq []float64 // instantaneous frequency track
	bits []int     // candidate-bit scan buffer (Receive only)
}

// NewDemodulator returns a receiver matching the modulator's oversampling.
func NewDemodulator(sps int) (*Demodulator, error) {
	if sps < 2 || sps > 64 {
		return nil, fmt.Errorf("ble: samples per symbol %d outside 2..64", sps)
	}
	// Channel filter: ~1.1 MHz single-sided at the sample rate.
	cutoff := 0.55 / float64(sps)
	return &Demodulator{SPS: sps, disc: dsp.NewDiscriminator(dsp.NewLowpass(4*sps+1, cutoff))}, nil
}

// growFreq sizes the frequency-track scratch for a signal.
func (d *Demodulator) growFreq(n int) []float64 {
	if cap(d.freq) < n {
		d.freq = make([]float64, n)
	}
	return d.freq[:n]
}

// discriminate computes the per-sample instantaneous frequency (radians per
// sample) of the filtered signal into the demodulator's scratch, which
// stays valid until the next discriminate/StreamBits call. The filter and
// the phase differentiator run as one fused pass (dsp.Discriminator).
func (d *Demodulator) discriminate(sig iq.Samples) []float64 {
	return d.disc.DiscriminateInto(d.growFreq(len(sig)), sig)
}

// StreamReset begins incremental demodulation of a new signal for
// StreamBits.
func (d *Demodulator) StreamReset() { d.disc.Reset() }

// StreamBits recovers bit decisions [from, from+nbits) of sig, where bit
// 0's samples begin at startOffset, extending the cached frequency track
// only as far as the requested bits need. Successive calls on the same
// signal after one StreamReset reuse the already-discriminated prefix, so a
// sequential-stopping BER sweep pays only for the bits it inspects — and
// the decisions are identical to a full DemodBits pass over the same
// signal. dst is truncated and appended to; with a capacity-sized dst the
// call performs no allocation.
func (d *Demodulator) StreamBits(dst []int, sig iq.Samples, startOffset, from, nbits int) []int {
	need := startOffset + (from+nbits)*d.SPS
	if need > len(sig) {
		need = len(sig)
	}
	freq := d.growFreq(len(sig))
	d.disc.ExtendInto(freq, sig, need)
	return d.sliceBits(dst, freq[:need], startOffset+from*d.SPS, nbits)
}

// sliceBits integrates and dumps nbits bit decisions from a frequency track
// into dst, starting at startOffset samples. dst is truncated where the
// track ends. It performs no allocation.
func (d *Demodulator) sliceBits(dst []int, freq []float64, startOffset, nbits int) []int {
	dst = dst[:0]
	for i := 0; i < nbits; i++ {
		lo := startOffset + i*d.SPS
		hi := lo + d.SPS
		if hi > len(freq) {
			break
		}
		var acc float64
		for _, f := range freq[lo:hi] {
			acc += f
		}
		if acc >= 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	return dst
}

// DemodBits recovers nbits bits from sig, where the first bit's samples
// begin at startOffset. Integrate-and-dump over each bit period.
func (d *Demodulator) DemodBits(sig iq.Samples, startOffset, nbits int) []int {
	return d.sliceBits(make([]int, 0, nbits), d.discriminate(sig), startOffset, nbits)
}

// Receive locates one beacon in sig by scanning bit-timing offsets for the
// preamble + access address, then decodes and validates the whole packet.
// maxLen bounds the advertising-data length to try.
func (d *Demodulator) Receive(sig iq.Samples, channel int) (Beacon, error) {
	const aaBits = 5 * 8 // preamble + access address
	want := make([]int, 0, aaBits)
	aa := uint32(AccessAddress)
	aahdr := [5]byte{Preamble, byte(aa), byte(aa >> 8), byte(aa >> 16), byte(aa >> 24)}
	want = append(want, AirBits(aahdr[:])...)

	// Discriminate once and scan bit-timing offsets over the cached
	// frequency track — the filter is the dominant cost and is identical
	// for every offset.
	freq := d.discriminate(sig)
	if cap(d.bits) < aaBits {
		d.bits = make([]int, 0, aaBits)
	}
	limit := len(sig) - (aaBits+8)*d.SPS
	for off := 0; off <= limit; off++ {
		// aaBits never exceeds d.bits's preallocated capacity, so
		// sliceBits fills the same backing array every iteration.
		got := d.sliceBits(d.bits, freq, off, aaBits)
		if len(got) < aaBits {
			break
		}
		match := 0
		for i := range got {
			if got[i] == want[i] {
				match++
			}
		}
		if match < aaBits-2 { // allow up to 2 training errors
			continue
		}
		// Decode the header to learn the length, then the full PDU.
		hdrBits := d.sliceBits(make([]int, 0, 16), freq, off+aaBits*d.SPS, 16)
		if len(hdrBits) < 16 {
			continue
		}
		hdr := BitsToBytes(hdrBits)
		Whiten(channel, hdr)
		length := int(hdr[1])
		if length < 6 || length > 6+MaxAdvData {
			continue
		}
		totalBits := (5 + 2 + length + 3) * 8
		bits := d.sliceBits(make([]int, 0, totalBits), freq, off, totalBits)
		if len(bits) < totalBits {
			continue
		}
		b, err := ParseAir(channel, BitsToBytes(bits))
		if err != nil {
			continue
		}
		return b, nil
	}
	return Beacon{}, fmt.Errorf("ble: no beacon found on channel %d", channel)
}
