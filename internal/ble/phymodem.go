package ble

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// airOverheadBytes is everything around the advertising payload on air:
// preamble (1) + access address (4) + PDU header (2) + advertiser address
// (6) + CRC (3).
const airOverheadBytes = 1 + 4 + 2 + 6 + 3

// bleDetectionSNRdB is the in-channel SNR the discriminator receiver needs
// for reliable beacon decode. 16 dB over the ~1 MHz signal bandwidth puts
// the CC2650-profile sensitivity at -94 dBm, the Fig. 12 measurement.
const bleDetectionSNRdB = 16

// Modem adapts the BLE beacon stack to the protocol-agnostic PHY contract
// of internal/phy (satisfied structurally): a packet's payload is its
// advertising data, transmitted as a beacon from a fixed advertiser
// address on one advertising channel.
//
// The wrapped Demodulator owns scratch arenas, so a Modem is NOT safe for
// concurrent use; give each goroutine its own instance.
type Modem struct {
	// AdvAddress is the advertiser address stamped on transmitted beacons.
	AdvAddress [6]byte
	// Channel is the advertising channel (37, 38 or 39).
	Channel int

	mod     *Modulator
	demod   *Demodulator
	profile channel.RadioProfile
}

// DefaultModemAddress is the canonical advertiser address of registry-built
// modems — also the source address of the canonical coexistence
// interference waveform.
var DefaultModemAddress = [6]byte{0xC0, 0xEE, 0x11, 0x57, 0xEC, 0x02}

// NewModem returns a BLE modem at the given oversampling, calibrated
// against the given receive chain, beaconing on channel 37.
func NewModem(sps int, profile channel.RadioProfile) (*Modem, error) {
	mod, err := NewModulator(sps)
	if err != nil {
		return nil, err
	}
	demod, err := NewDemodulator(sps)
	if err != nil {
		return nil, err
	}
	return &Modem{
		AdvAddress: DefaultModemAddress,
		Channel:    AdvChannels[0].Number,
		mod:        mod,
		demod:      demod,
		profile:    profile,
	}, nil
}

// Name implements phy.Modem.
func (m *Modem) Name() string { return "ble" }

// SampleRate implements phy.Modem.
func (m *Modem) SampleRate() float64 { return m.mod.SampleRate() }

// Airtime implements phy.Modem: the on-air duration of a beacon carrying an
// n-byte advertising payload.
func (m *Modem) Airtime(payloadBytes int) time.Duration {
	bits := (airOverheadBytes + payloadBytes) * 8
	return time.Duration(float64(bits) / BitRate * float64(time.Second))
}

// Radio implements phy.Modem.
func (m *Modem) Radio() channel.RadioProfile { return m.profile }

// SensitivityDBm implements phy.Modem: the profile's floor over the ~1 MHz
// signal bandwidth plus the discriminator's detection SNR. Independent of
// the oversampling ratio — oversampled noise beyond the channel filter does
// not reach the detector.
func (m *Modem) SensitivityDBm() float64 {
	return m.profile.NoiseFloorDBm(BitRate) + bleDetectionSNRdB
}

// NoiseFloorDBm implements phy.Modem: the profile's floor integrated over
// the full sampled bandwidth — the figure to hand to a Noise stage.
func (m *Modem) NoiseFloorDBm() float64 {
	return m.profile.NoiseFloorDBm(m.mod.SampleRate())
}

// ModulateInto implements phy.Modem: the beacon waveform for an advertising
// payload, appended to dst[:0]. The GFSK chain (Gaussian filter, phase
// integration) synthesizes into fresh intermediates, so unlike the LoRa
// modem this path allocates per call — sweeps amortize it through the Link
// pipeline's waveform cache.
func (m *Modem) ModulateInto(dst iq.Samples, payload []byte) (iq.Samples, error) {
	if len(payload) > MaxAdvData {
		//lint:allocok error guard formats only on an invalid payload, never in a sweep
		return nil, fmt.Errorf("ble: payload %d exceeds %d-byte advertising limit", len(payload), MaxAdvData)
	}
	wave, err := m.mod.ModulateBeacon(Beacon{AdvAddress: m.AdvAddress, AdvData: payload}, m.Channel)
	if err != nil {
		return nil, err
	}
	//lint:allocok appends into caller capacity; growth amortizes through the Link waveform cache
	return append(dst[:0], wave...), nil
}

// DemodulateFrom implements phy.Modem: it locates one beacon in sig (CRC
// verified by the parser) and appends its advertising data to dst[:0].
func (m *Modem) DemodulateFrom(dst []byte, sig iq.Samples) ([]byte, error) {
	b, err := m.demod.Receive(sig, m.Channel)
	if err != nil {
		return nil, err
	}
	//lint:allocok appends into caller capacity; steady state pinned by the AllocsPerRun contracts
	return append(dst[:0], b.AdvData...), nil
}
