package ble

import (
	"math/rand"
	"testing"
)

// TestStreamBitsMatchesDemodBits pins the incremental demod contract the
// adaptive BER sweep relies on: bit decisions recovered chunk by chunk
// through StreamBits — at any chunk boundaries — are identical to one
// DemodBits pass over the same signal, and the stream path performs no
// allocation in steady state.
func TestStreamBitsMatchesDemodBits(t *testing.T) {
	const nbits = 400
	mod, err := NewModulator(4)
	if err != nil {
		t.Fatal(err)
	}
	demod, err := NewDemodulator(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	bits := make([]int, nbits)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	sig := mod.Modulate(bits)
	pad := mod.SPS * 3 / 2

	want := demod.DemodBits(sig, pad, nbits)
	if len(want) != nbits {
		t.Fatalf("DemodBits returned %d bits, want %d", len(want), nbits)
	}
	errs := 0
	for i := range want {
		if want[i] != bits[i] {
			errs++
		}
	}
	if errs > 0 {
		t.Fatalf("clean-channel demod has %d bit errors", errs)
	}

	for _, chunk := range []int{1, 7, 100, nbits} {
		demod.StreamReset()
		dst := make([]int, 0, chunk)
		pos := 0
		for pos < nbits {
			c := chunk
			if pos+c > nbits {
				c = nbits - pos
			}
			got := demod.StreamBits(dst, sig, pad, pos, c)
			if len(got) != c {
				t.Fatalf("chunk %d at %d: %d bits, want %d", chunk, pos, len(got), c)
			}
			for i, b := range got {
				if b != want[pos+i] {
					t.Fatalf("chunk %d: bit %d = %d, want %d", chunk, pos+i, b, want[pos+i])
				}
			}
			pos += c
		}
	}

	// Steady state: one warm signal, per-bit streaming allocates nothing.
	one := make([]int, 0, 1)
	demod.StreamReset()
	demod.StreamBits(one, sig, pad, 0, 1)
	k := 1
	if n := testing.AllocsPerRun(50, func() {
		demod.StreamBits(one, sig, pad, k, 1)
		k++
	}); n != 0 {
		t.Errorf("StreamBits allocates %.0f times per bit, want 0", n)
	}
}
