// Package ble implements Bluetooth Low Energy non-connectable advertising
// (beacons) as tinySDR generates them on its FPGA (§4.2): PDU assembly, the
// 24-bit CRC LFSR, the 7-bit whitening LFSR, GFSK modulation with a
// Gaussian pulse filter and phase integration, and a discriminator
// demodulator standing in for the TI CC2650 reference receiver of Fig. 12.
package ble

import (
	"encoding/binary"
	"fmt"
)

// BLE 4.0 constants for advertising packets.
const (
	// Preamble is the alternating training byte (LSB first: 01010101...).
	Preamble = 0xAA
	// AccessAddress is the fixed advertising-channel access address.
	AccessAddress = 0x8E89BED6
	// PDUTypeAdvNonconnInd is the non-connectable undirected advertising
	// PDU type the paper's beacons use.
	PDUTypeAdvNonconnInd = 0x02
	// MaxAdvData is the longest advertising payload.
	MaxAdvData = 31
	// BitRate is BLE 4.0's 1 Mbps.
	BitRate = 1e6
	// crcInit is the advertising-channel CRC seed (0x555555).
	crcInit = 0x555555
)

// AdvChannel is one of the three advertising channels.
type AdvChannel struct {
	Number int
	FreqHz float64
}

// The advertising channels, in the hop order beacons use.
var AdvChannels = []AdvChannel{
	{37, 2402e6},
	{38, 2426e6},
	{39, 2480e6},
}

// Beacon describes one non-connectable advertisement.
type Beacon struct {
	// AdvAddress is the 6-byte advertiser address.
	AdvAddress [6]byte
	// AdvData is the manufacturer payload, at most 31 bytes.
	AdvData []byte
	// PublicAddress clears the header's TxAdd bit (public rather than
	// random advertiser address). The zero value matches the header this
	// stack has always transmitted (TxAdd set).
	PublicAddress bool
}

// headerByte returns the PDU header the beacon transmits.
func (b Beacon) headerByte() byte {
	if b.PublicAddress {
		return PDUTypeAdvNonconnInd
	}
	return PDUTypeAdvNonconnInd | 0x40 // TxAdd: random address
}

// PDU assembles the packet data unit: 2-byte header, address, data.
func (b Beacon) PDU() ([]byte, error) {
	if len(b.AdvData) > MaxAdvData {
		return nil, fmt.Errorf("ble: advertising data %d bytes exceeds %d", len(b.AdvData), MaxAdvData)
	}
	pdu := make([]byte, 0, 2+6+len(b.AdvData))
	pdu = append(pdu, b.headerByte())
	pdu = append(pdu, byte(6+len(b.AdvData)))
	pdu = append(pdu, b.AdvAddress[:]...)
	pdu = append(pdu, b.AdvData...)
	return pdu, nil
}

// CRC24 computes the BLE CRC over a PDU with the LFSR of §4.2: polynomial
// x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1, seeded with 0x555555,
// input LSB first. The returned value is transmitted LSB first.
func CRC24(pdu []byte) uint32 {
	crc := uint32(crcInit)
	for _, b := range pdu {
		for i := 0; i < 8; i++ {
			inBit := uint32(b>>i) & 1
			fb := (crc>>23)&1 ^ inBit
			crc = (crc << 1) & 0xFFFFFF
			if fb == 1 {
				crc ^= 0x00065B // taps 10,9,6,4,3,1,0
			}
		}
	}
	return crc
}

// whitenerSeq produces n bytes of the data-whitening stream for a channel:
// 7-bit LFSR x^7 + x^4 + 1 initialized with bit6=1 and the channel number
// (§4.2), clocked per bit, LSB first.
func whitenerSeq(channel, n int) []byte {
	state := byte(0x40 | (channel & 0x3F))
	out := make([]byte, n)
	for i := range out {
		var b byte
		for bit := 0; bit < 8; bit++ {
			msb := (state >> 6) & 1
			b |= msb << bit
			state = (state << 1) & 0x7F
			if msb == 1 {
				state ^= 0x11 // x^4 + 1 taps
			}
		}
		out[i] = b
	}
	return out
}

// Whiten XORs data in place with the whitening stream for a channel and
// returns it; applying it twice recovers the input.
func Whiten(channel int, data []byte) []byte {
	seq := whitenerSeq(channel, len(data))
	for i := range data {
		data[i] ^= seq[i]
	}
	return data
}

// AirBytes assembles the full over-the-air byte sequence for a channel:
// preamble, access address, then the whitened PDU and CRC. All bytes are
// transmitted LSB first by the modulator.
func (b Beacon) AirBytes(channel int) ([]byte, error) {
	pdu, err := b.PDU()
	if err != nil {
		return nil, err
	}
	crc := CRC24(pdu)
	body := make([]byte, 0, len(pdu)+3)
	body = append(body, pdu...)
	body = append(body, byte(crc), byte(crc>>8), byte(crc>>16))
	Whiten(channel, body)

	out := make([]byte, 0, 5+len(body))
	out = append(out, Preamble)
	var aa [4]byte
	binary.LittleEndian.PutUint32(aa[:], AccessAddress)
	out = append(out, aa[:]...)
	return append(out, body...), nil
}

// ParseAir inverts AirBytes: it validates the access address, de-whitens,
// checks the CRC and returns the beacon fields.
func ParseAir(channel int, air []byte) (Beacon, error) {
	if len(air) < 5+2+6+3 {
		return Beacon{}, fmt.Errorf("ble: air frame of %d bytes too short", len(air))
	}
	if air[0] != Preamble {
		return Beacon{}, fmt.Errorf("ble: bad preamble %#02x", air[0])
	}
	if aa := binary.LittleEndian.Uint32(air[1:5]); aa != AccessAddress {
		return Beacon{}, fmt.Errorf("ble: bad access address %#08x", aa)
	}
	body := append([]byte(nil), air[5:]...)
	Whiten(channel, body)
	hdr, length := body[0], int(body[1])
	// Accept non-connectable undirected advertising with either address
	// type; reserved header bits reject the frame, so anything parsed
	// reassembles through AirBytes to the identical wire form.
	if hdr != PDUTypeAdvNonconnInd && hdr != PDUTypeAdvNonconnInd|0x40 {
		return Beacon{}, fmt.Errorf("ble: unsupported PDU header %#02x", hdr)
	}
	if length < 6 || length > 6+MaxAdvData || len(body) < 2+length+3 {
		return Beacon{}, fmt.Errorf("ble: bad PDU length %d", length)
	}
	pdu := body[:2+length]
	wantCRC := CRC24(pdu)
	gotCRC := uint32(body[2+length]) | uint32(body[2+length+1])<<8 | uint32(body[2+length+2])<<16
	if wantCRC != gotCRC {
		return Beacon{}, fmt.Errorf("ble: CRC mismatch %06x != %06x", gotCRC, wantCRC)
	}
	var b Beacon
	b.PublicAddress = hdr&0x40 == 0
	copy(b.AdvAddress[:], pdu[2:8])
	b.AdvData = append([]byte(nil), pdu[8:]...)
	return b, nil
}

// AirBits expands air bytes to bits in transmission order (LSB first).
func AirBits(air []byte) []int {
	bits := make([]int, 0, len(air)*8)
	for _, b := range air {
		for i := 0; i < 8; i++ {
			bits = append(bits, int(b>>i)&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (LSB first) back into bytes; len(bits) must be a
// multiple of 8.
func BitsToBytes(bits []int) []byte {
	out := make([]byte, len(bits)/8)
	for i, bit := range bits {
		if bit != 0 {
			out[i/8] |= 1 << uint(i%8)
		}
	}
	return out
}
