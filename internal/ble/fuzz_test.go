package ble

import (
	"bytes"
	"testing"
)

// Native go test -fuzz harness for the advertising-frame parser — the
// header decode the Receive scan runs on every candidate bit alignment, so
// it must take arbitrary bytes without panicking and must agree with the
// assembler on everything it accepts.

func FuzzParseAir(f *testing.F) {
	// Seed with real beacons on each channel, plus canonical corruptions.
	b := Beacon{
		AdvAddress: [6]byte{0xC0, 0xEE, 0x11, 0x57, 0xEC, 0x01},
		AdvData:    []byte("seed"),
	}
	pub := b
	pub.PublicAddress = true
	for _, ch := range []int{37, 38, 39} {
		for _, seed := range []Beacon{b, pub} {
			air, err := seed.AirBytes(ch)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(ch, air)
			f.Add(ch, air[:len(air)-2])
			flipped := append([]byte(nil), air...)
			flipped[7] ^= 0x10
			f.Add(ch, flipped)
		}
	}
	f.Add(0, []byte{})
	f.Fuzz(func(t *testing.T, channel int, air []byte) {
		channel &= 0x3F // the whitener seeds from 6 bits
		got, err := ParseAir(channel, air)
		if err != nil {
			return
		}
		// Accepted frames must reassemble to the identical air bytes up
		// to the CRC (trailing junk past the PDU is tolerated on parse).
		back, err := got.AirBytes(channel)
		if err != nil {
			t.Fatalf("parsed beacon fails to assemble: %v", err)
		}
		if len(air) < len(back) || !bytes.Equal(back, air[:len(back)]) {
			t.Fatalf("round trip diverges for channel %d:\n in  %x\n out %x", channel, air, back)
		}
	})
}

func FuzzWhitenInvolution(f *testing.F) {
	f.Add(37, []byte("whitening test vector"))
	f.Add(39, []byte{})
	f.Fuzz(func(t *testing.T, channel int, data []byte) {
		channel &= 0x3F
		orig := append([]byte(nil), data...)
		Whiten(channel, data)
		Whiten(channel, data)
		if !bytes.Equal(orig, data) {
			t.Fatal("whitening is not an involution")
		}
	})
}
