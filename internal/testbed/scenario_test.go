package testbed

import (
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

func TestLinkScenarioTracksGeometry(t *testing.T) {
	c := NewCampus(1)
	near, far := c.Nodes[0], c.Nodes[len(c.Nodes)-1]
	if near.Distance() >= far.Distance() {
		t.Fatal("campus nodes not ordered by distance")
	}
	const rate = 125e3
	sig := make(iq.Samples, 8192)
	for i := range sig {
		ang := 2 * math.Pi * 0.1 * float64(i)
		sig[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	power := func(n *Node) float64 {
		// Shadowing swings individual draws by several dB; average a few
		// trials so geometry dominates.
		sc := c.LinkScenario(n, 0, rate, -200) // noise far below signal
		var acc float64
		for trial := 0; trial < 8; trial++ {
			sc.Reset(1, trial)
			acc += sc.Apply(sig).PowerDBm()
		}
		return acc / 8
	}
	if pn, pf := power(near), power(far); pn <= pf {
		t.Errorf("near node %v dBm not stronger than far node %v dBm", pn, pf)
	}
}

func TestLinkScenarioDeterministicPerTrial(t *testing.T) {
	c := NewCampus(3)
	n := c.Nodes[4]
	sig := make(iq.Samples, 2048)
	for i := range sig {
		sig[i] = complex(1, 0)
	}
	a := c.LinkScenario(n, 30, 125e3, -116)
	b := c.LinkScenario(n, 30, 125e3, -116)
	a.Reset(9, 2)
	b.Reset(9, 2)
	outA := a.Apply(sig)
	outB := b.Apply(sig)
	for i := range outA {
		if outA[i] != outB[i] {
			t.Fatalf("independent instances diverge at sample %d", i)
		}
	}
	if got := a.String(); got != "mobility→cfo→noise" {
		t.Errorf("link scenario composition = %q", got)
	}
}
