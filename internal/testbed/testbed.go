// Package testbed models the paper's 20-device campus deployment (Fig. 7):
// deterministic node geometry, per-link budgets through the log-distance
// channel, and fleet-wide OTA programming that produces the Fig. 14 CDFs.
package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/flash"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/par"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/sim"
	"github.com/uwsdr/tinysdr/internal/sim/scenario"
)

// DefaultNodeCount matches the paper's deployment.
const DefaultNodeCount = 20

// Node is one deployed tinySDR with its position and hardware stack.
type Node struct {
	ID   uint16
	X, Y float64 // meters from the AP

	Clock *sim.Clock
	PMU   *power.PMU
	OTA   *ota.Node
}

// Distance returns the node's range from the AP at the origin.
func (n *Node) Distance() float64 { return math.Hypot(n.X, n.Y) }

// Campus is the deployment: an AP at the origin and nodes spread over the
// campus with a log-distance + shadowing channel.
type Campus struct {
	Nodes []*Node
	Model channel.LogDistance
	// APTXPowerDBm and APAntennaGainDB describe the §5.3 AP: a LoRa
	// transceiver at 14 dBm on a patch antenna.
	APTXPowerDBm    float64
	APAntennaGainDB float64

	seed int64
}

// NewCampus builds the deterministic 20-node deployment of the paper's
// Fig. 7 map.
func NewCampus(seed int64) *Campus {
	return NewCampusN(seed, DefaultNodeCount)
}

// NewCampusN builds a deterministic n-node deployment. Node positions are
// drawn once from the seed: distances span ~150 m to ~1.8 km across campus
// regardless of n, so larger fleets densify the same footprint rather than
// stretching it. n is clamped to [1, 65000] — device addresses are uint16
// and 0xFFFF is the OTA broadcast address.
func NewCampusN(seed int64, n int) *Campus {
	if n < 1 {
		n = 1
	}
	if n > 65000 {
		n = 65000
	}
	c := &Campus{
		Model: channel.LogDistance{
			FreqHz:        915e6,
			Exponent:      2.9,
			ShadowSigmaDB: 4,
		},
		APTXPowerDBm:    14,
		APAntennaGainDB: 6,
		seed:            seed,
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		dist := 150.0
		if n > 1 {
			dist += 1650 * float64(i) / float64(n-1)
		}
		angle := rng.Float64() * 2 * math.Pi
		node := newHardwareNode(uint16(i + 1))
		node.X = dist * math.Cos(angle)
		node.Y = dist * math.Sin(angle)
		c.Nodes = append(c.Nodes, node)
	}
	return c
}

func newHardwareNode(id uint16) *Node {
	clock := sim.NewClock()
	pmu := power.NewPMU(clock)
	return &Node{
		ID:    id,
		Clock: clock,
		PMU:   pmu,
		OTA: ota.NewNode(id, clock,
			radio.NewSX1276(pmu),
			mcu.New(pmu),
			flash.New(),
			fpga.New(pmu)),
	}
}

// RSSI returns the downlink received power at a node.
func (c *Campus) RSSI(n *Node) float64 {
	return c.Model.RSSIdBm(c.APTXPowerDBm, c.APAntennaGainDB, 0,
		n.Distance(), c.seed*1000+int64(n.ID))
}

// LinkScenario returns the composable IQ-level downlink condition for one
// node: a mobility stage solving path loss from the campus geometry (with
// the campus shadowing model redrawn per trial), Doppler for an endpoint
// moving radially at speedMPS, and receiver noise at floorDBm. Reset it
// with (seed, trialIndex) before each packet; every worker needs its own
// instance, like a demodulator.
func (c *Campus) LinkScenario(n *Node, speedMPS, sampleRate, floorDBm float64) *channel.Scenario {
	mob := channel.NewMobility(c.Model, c.APTXPowerDBm, c.APAntennaGainDB, 0,
		n.Distance(), speedMPS, sampleRate)
	cfo := channel.NewCFO(scenario.DopplerHz(speedMPS, c.Model.FreqHz), 0, 0, sampleRate)
	return channel.NewScenario(mob, cfo, channel.NewNoise(floorDBm))
}

// ProgramResult is one node's outcome in a fleet update.
type ProgramResult struct {
	NodeID   uint16
	Distance float64
	RSSIdBm  float64
	Report   *ota.Report
	Err      error
}

// ProgramAll pushes one update to every node and returns per-node results
// in node order. design accompanies FPGA images.
//
// Each node owns its simulated clock, PMU ledger and per-node session RNG
// (seeded from the campus seed and the node ID), so the fleet runs
// trial-parallel across the machine's cores with results bit-identical to
// a sequential pass — the wall-clock time is what the §3.4 AP's sequential
// schedule reports on each node's own clock, not the host's.
func (c *Campus) ProgramAll(u *ota.Update, design *fpga.Design) []ProgramResult {
	return c.ProgramAllWorkers(u, design, runtime.NumCPU())
}

// ProgramAllWorkers is ProgramAll with an explicit worker-pool size
// (minimum 1). Results are identical for every value.
func (c *Campus) ProgramAllWorkers(u *ota.Update, design *fpga.Design, workers int) []ProgramResult {
	// Session failures are part of a node's result, not a pool error, so
	// the par.Do error path never triggers.
	results, _ := par.Do(workers, len(c.Nodes), func(i int) (ProgramResult, error) {
		n := c.Nodes[i]
		rssi := c.RSSI(n)
		n.PMU.Ledger().Reset()
		sess := ota.NewSession(n.OTA, rssi, c.seed*7919+int64(n.ID))
		rep, err := sess.Program(u, design)
		if err == nil {
			rep.EnergyJ = n.PMU.Ledger().Energy()
		}
		return ProgramResult{
			NodeID: n.ID, Distance: n.Distance(), RSSIdBm: rssi,
			Report: rep, Err: err,
		}, nil
	})
	return results
}

// CDF summarizes programming durations as (duration, fraction) points —
// the Fig. 14 presentation. Failed nodes are excluded.
func CDF(results []ProgramResult) []CDFPoint {
	var durations []time.Duration
	for _, r := range results {
		if r.Err == nil {
			durations = append(durations, r.Report.Duration)
		}
	}
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	out := make([]CDFPoint, len(durations))
	for i, d := range durations {
		out[i] = CDFPoint{Duration: d, Fraction: float64(i+1) / float64(len(durations))}
	}
	return out
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Duration time.Duration
	Fraction float64
}

// MeanDuration averages the successful programming times.
func MeanDuration(results []ProgramResult) (time.Duration, error) {
	var sum time.Duration
	n := 0
	for _, r := range results {
		if r.Err == nil {
			sum += r.Report.Duration
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("testbed: no node programmed successfully")
	}
	return sum / time.Duration(n), nil
}

// MeanEnergy averages the per-node session energy in joules.
func MeanEnergy(results []ProgramResult) (float64, error) {
	var sum float64
	n := 0
	for _, r := range results {
		if r.Err == nil {
			sum += r.Report.EnergyJ
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("testbed: no node programmed successfully")
	}
	return sum / float64(n), nil
}
