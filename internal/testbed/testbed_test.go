package testbed

import (
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/radio"
)

func TestCampusGeometry(t *testing.T) {
	c := NewCampus(1)
	if len(c.Nodes) != 20 {
		t.Fatalf("nodes = %d, want 20 (paper deployment)", len(c.Nodes))
	}
	minD, maxD := 1e9, 0.0
	for _, n := range c.Nodes {
		d := n.Distance()
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD < 100 || maxD > 2000 {
		t.Errorf("distance span [%0.f, %0.f] m outside campus scale", minD, maxD)
	}
	if maxD-minD < 1000 {
		t.Errorf("deployment span %0.f m too compact for a campus", maxD-minD)
	}
}

func TestCampusDeterminism(t *testing.T) {
	a := NewCampus(7)
	b := NewCampus(7)
	for i := range a.Nodes {
		if a.Nodes[i].X != b.Nodes[i].X || a.Nodes[i].Y != b.Nodes[i].Y {
			t.Fatal("same seed must give same geometry")
		}
		if a.RSSI(a.Nodes[i]) != b.RSSI(b.Nodes[i]) {
			t.Fatal("same seed must give same link budgets")
		}
	}
}

func TestLinkBudgetsAboveSensitivity(t *testing.T) {
	// Every node must be reachable on the OTA backbone configuration —
	// the deployment was designed to be programmable.
	c := NewCampus(1)
	phy := ota.BackboneParams()
	sens := lora.SensitivityDBm(phy.SF, phy.BW, radio.SX1276NoiseFigureDB)
	for _, n := range c.Nodes {
		if rssi := c.RSSI(n); rssi < sens-1 {
			t.Errorf("node %d at %.0f m: RSSI %.1f below sensitivity %.1f", n.ID, n.Distance(), rssi, sens)
		}
	}
}

func TestProgramAllMCUUpdate(t *testing.T) {
	// A fleet MCU update (small image keeps the test fast) must reach all
	// 20 nodes with byte-exact images.
	c := NewCampus(2)
	img := fpga.SynthMCUFirmware(16*1024, 5)
	u, err := ota.BuildUpdate(ota.TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	results := c.ProgramAll(u, nil)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("node %d at %.0f m (%.1f dBm): %v", r.NodeID, r.Distance, r.RSSIdBm, r.Err)
		}
	}
	for _, n := range c.Nodes {
		if err := n.OTA.VerifyImage(img, ota.TargetMCU); err != nil {
			t.Errorf("node %d: %v", n.ID, err)
		}
	}

	// CDF sanity: monotone fractions ending at 1.
	cdf := CDF(results)
	if len(cdf) != 20 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Duration < cdf[i-1].Duration || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Error("CDF must end at 1")
	}

	// Far nodes should not be faster than near nodes on average: compare
	// mean duration of nearest five vs farthest five.
	near, far := time.Duration(0), time.Duration(0)
	for i := 0; i < 5; i++ {
		near += results[i].Report.Duration
		far += results[len(results)-1-i].Report.Duration
	}
	if far < near {
		t.Errorf("far nodes programmed faster than near: %v < %v", far, near)
	}

	if _, err := MeanDuration(results); err != nil {
		t.Error(err)
	}
	if e, err := MeanEnergy(results); err != nil || e <= 0 {
		t.Errorf("mean energy = %v, %v", e, err)
	}
}

func TestMeansRejectAllFailed(t *testing.T) {
	results := []ProgramResult{{Err: errFake}}
	if _, err := MeanDuration(results); err == nil {
		t.Error("mean over failures accepted")
	}
	if _, err := MeanEnergy(results); err == nil {
		t.Error("mean energy over failures accepted")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }
