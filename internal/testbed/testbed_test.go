package testbed

import (
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/radio"
)

func TestCampusGeometry(t *testing.T) {
	c := NewCampus(1)
	if len(c.Nodes) != 20 {
		t.Fatalf("nodes = %d, want 20 (paper deployment)", len(c.Nodes))
	}
	minD, maxD := 1e9, 0.0
	for _, n := range c.Nodes {
		d := n.Distance()
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD < 100 || maxD > 2000 {
		t.Errorf("distance span [%0.f, %0.f] m outside campus scale", minD, maxD)
	}
	if maxD-minD < 1000 {
		t.Errorf("deployment span %0.f m too compact for a campus", maxD-minD)
	}
}

func TestCampusDeterminism(t *testing.T) {
	a := NewCampus(7)
	b := NewCampus(7)
	for i := range a.Nodes {
		if a.Nodes[i].X != b.Nodes[i].X || a.Nodes[i].Y != b.Nodes[i].Y {
			t.Fatal("same seed must give same geometry")
		}
		if a.RSSI(a.Nodes[i]) != b.RSSI(b.Nodes[i]) {
			t.Fatal("same seed must give same link budgets")
		}
	}
}

func TestLinkBudgetsAboveSensitivity(t *testing.T) {
	// Every node must be reachable on the OTA backbone configuration —
	// the deployment was designed to be programmable.
	c := NewCampus(1)
	phy := ota.BackboneParams()
	sens := lora.SensitivityDBm(phy.SF, phy.BW, radio.SX1276NoiseFigureDB)
	for _, n := range c.Nodes {
		if rssi := c.RSSI(n); rssi < sens-1 {
			t.Errorf("node %d at %.0f m: RSSI %.1f below sensitivity %.1f", n.ID, n.Distance(), rssi, sens)
		}
	}
}

func TestProgramAllMCUUpdate(t *testing.T) {
	// A fleet MCU update (small image keeps the test fast) must reach all
	// 20 nodes with byte-exact images.
	c := NewCampus(2)
	img := fpga.SynthMCUFirmware(16*1024, 5)
	u, err := ota.BuildUpdate(ota.TargetMCU, img)
	if err != nil {
		t.Fatal(err)
	}
	results := c.ProgramAll(u, nil)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("node %d at %.0f m (%.1f dBm): %v", r.NodeID, r.Distance, r.RSSIdBm, r.Err)
		}
	}
	for _, n := range c.Nodes {
		if err := n.OTA.VerifyImage(img, ota.TargetMCU); err != nil {
			t.Errorf("node %d: %v", n.ID, err)
		}
	}

	// CDF sanity: monotone fractions ending at 1.
	cdf := CDF(results)
	if len(cdf) != 20 {
		t.Fatalf("CDF points = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Duration < cdf[i-1].Duration || cdf[i].Fraction <= cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Error("CDF must end at 1")
	}

	// Far nodes should not be faster than near nodes on average: compare
	// mean duration of nearest five vs farthest five.
	near, far := time.Duration(0), time.Duration(0)
	for i := 0; i < 5; i++ {
		near += results[i].Report.Duration
		far += results[len(results)-1-i].Report.Duration
	}
	if far < near {
		t.Errorf("far nodes programmed faster than near: %v < %v", far, near)
	}

	if _, err := MeanDuration(results); err != nil {
		t.Error(err)
	}
	if e, err := MeanEnergy(results); err != nil || e <= 0 {
		t.Errorf("mean energy = %v, %v", e, err)
	}
}

func TestMeansRejectAllFailed(t *testing.T) {
	results := []ProgramResult{{Err: errFake}}
	if _, err := MeanDuration(results); err == nil {
		t.Error("mean over failures accepted")
	}
	if _, err := MeanEnergy(results); err == nil {
		t.Error("mean energy over failures accepted")
	}
}

func TestAllNodesFailedPaths(t *testing.T) {
	// Every summary must behave when no node programmed successfully: the
	// CDF is empty (never a divide-by-zero or a phantom point) and both
	// means report the failure instead of returning zero.
	results := []ProgramResult{
		{NodeID: 1, Err: errFake},
		{NodeID: 2, Err: errFake},
		{NodeID: 3, Err: errFake},
	}
	if cdf := CDF(results); len(cdf) != 0 {
		t.Errorf("CDF over all-failed fleet has %d points, want 0", len(cdf))
	}
	if d, err := MeanDuration(results); err == nil || d != 0 {
		t.Errorf("MeanDuration = (%v, %v), want error", d, err)
	}
	if e, err := MeanEnergy(results); err == nil || e != 0 {
		t.Errorf("MeanEnergy = (%v, %v), want error", e, err)
	}
	// Empty result sets take the same path.
	if cdf := CDF(nil); len(cdf) != 0 {
		t.Error("CDF over empty results not empty")
	}
	if _, err := MeanDuration(nil); err == nil {
		t.Error("MeanDuration over empty results accepted")
	}
	if _, err := MeanEnergy(nil); err == nil {
		t.Error("MeanEnergy over empty results accepted")
	}
}

func TestNewCampusNSizes(t *testing.T) {
	for _, n := range []int{1, 2, 20, 137} {
		c := NewCampusN(5, n)
		if len(c.Nodes) != n {
			t.Fatalf("NewCampusN(5, %d) built %d nodes", n, len(c.Nodes))
		}
		seen := map[uint16]bool{}
		for _, node := range c.Nodes {
			if seen[node.ID] {
				t.Fatalf("duplicate node ID %d", node.ID)
			}
			seen[node.ID] = true
			if d := node.Distance(); d < 100 || d > 2000 {
				t.Fatalf("n=%d node %d at %.0f m outside campus scale", n, node.ID, d)
			}
		}
	}
	if len(NewCampusN(1, 0).Nodes) != 1 {
		t.Error("n=0 must clamp to a single node")
	}
}

func TestNewCampusMatchesNewCampusN(t *testing.T) {
	a, b := NewCampus(9), NewCampusN(9, DefaultNodeCount)
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ")
	}
	for i := range a.Nodes {
		if a.Nodes[i].X != b.Nodes[i].X || a.Nodes[i].Y != b.Nodes[i].Y {
			t.Fatal("NewCampus must be NewCampusN at the default size")
		}
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }
