package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedManifest builds a small real manifest for the fuzz corpus.
func fuzzSeedManifest(tb testing.TB) []byte {
	tb.Helper()
	m := Manifest{
		Meta: Meta{
			PHY:        "lora",
			Seed:       7,
			SampleRate: 1e6,
			Bits:       13,
			Scenario:   "fading=rician:12,cfojitter=50",
			Payload:    []byte("tinysdr-phy-golden"),
		},
		Failures: 1,
		RSSIdBm:  -108.25,
		Packets: []Packet{
			{Hash: 0xdeadbeefcafe0001, Samples: 64, FullScale: 2.5e-6},
			{Hash: 0xdeadbeefcafe0002, Samples: 96, FullScale: 1.25e-6},
			{Hash: 0xdeadbeefcafe0001, Samples: 64, FullScale: 2.5e-6},
		},
		Failed: []bool{false, true, false},
	}
	wire, err := m.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return wire
}

// FuzzManifestUnmarshal feeds mutated wire manifests through the strict
// parser: it must never panic, and — the canonical-form contract — any
// input it accepts must re-marshal to the identical bytes.
func FuzzManifestUnmarshal(f *testing.F) {
	f.Add(fuzzSeedManifest(f))
	f.Add([]byte{})
	f.Add([]byte(manifestMagic))
	f.Add(bytes.Repeat([]byte{0xff}, 128))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Manifest
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		wire, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted manifest does not re-marshal: %v", err)
		}
		if !bytes.Equal(wire, data) {
			t.Fatalf("accepted manifest is not canonical:\n in  %x\n out %x", data, wire)
		}
	})
}

func TestManifestWireRoundTrip(t *testing.T) {
	wire := fuzzSeedManifest(t)
	var m Manifest
	if err := m.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	again, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, wire) {
		t.Fatal("manifest wire form not canonical")
	}
	if m.PHY != "lora" || m.Bits != 13 || len(m.Packets) != 3 || !m.Failed[1] {
		t.Fatalf("manifest fields lost: %+v", m)
	}
	st := m.Stats()
	if st.Packets != 3 || st.Failures != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestManifestUnmarshalRejectsCorruption(t *testing.T) {
	wire := fuzzSeedManifest(t)
	cases := map[string]func([]byte) []byte{
		"bad magic":     func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":   func(b []byte) []byte { b[4] = 0xff; return b },
		"truncated":     func(b []byte) []byte { return b[:len(b)-5] },
		"trailing":      func(b []byte) []byte { return append(b, 0) },
		"flipped crc":   func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"flipped body":  func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b },
		"empty":         func(b []byte) []byte { return nil },
		"magic only":    func(b []byte) []byte { return b[:4] },
		"empty phyName": func(b []byte) []byte { b[6] = 0; return b },
	}
	for name, mutate := range cases {
		in := mutate(append([]byte(nil), wire...))
		var m Manifest
		if err := m.UnmarshalBinary(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestManifestMarshalRejectsInvalid(t *testing.T) {
	valid := Manifest{
		Meta:    Meta{PHY: "lora", SampleRate: 1e6, Bits: 13},
		Packets: []Packet{{Hash: 1, Samples: 4, FullScale: 1}},
		Failed:  []bool{false},
	}
	if _, err := valid.MarshalBinary(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Manifest){
		"empty phy":       func(m *Manifest) { m.PHY = "" },
		"bits":            func(m *Manifest) { m.Bits = 17 },
		"rate":            func(m *Manifest) { m.SampleRate = -1 },
		"no packets":      func(m *Manifest) { m.Packets = nil },
		"flags mismatch":  func(m *Manifest) { m.Failed = nil },
		"failures count":  func(m *Manifest) { m.Failures = 1 },
		"packet samples":  func(m *Manifest) { m.Packets[0].Samples = MaxPacketSamples + 1 },
		"packet scale":    func(m *Manifest) { m.Packets[0].FullScale = 0 },
		"scenario length": func(m *Manifest) { m.Scenario = string(make([]byte, 65536)) },
	}
	for name, mutate := range mutations {
		m := valid
		m.Packets = append([]Packet(nil), valid.Packets...)
		m.Failed = append([]bool(nil), valid.Failed...)
		mutate(&m)
		if _, err := m.MarshalBinary(); err == nil {
			t.Errorf("%s: marshaled", name)
		}
	}
}
