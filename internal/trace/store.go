package trace

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/uwsdr/tinysdr/internal/lzo"
)

// Store is a content-addressed trace store on a directory:
//
//	<dir>/<name>.trace        binary manifest (see manifest.go)
//	<dir>/blobs/<hash16>.lzo  u32-LE raw length + lzo stream of codes
//
// Blobs are shared between traces (the content address is the FNV-64a of
// the uncompressed codes), written once and never rewritten; GC removes
// the ones no manifest references. All writes go through a temp file and
// rename, so a crashed writer never leaves a half-written manifest or
// blob under its final name.
type Store struct {
	dir string
}

const (
	manifestExt = ".trace"
	blobExt     = ".lzo"
	// maxBlobBytes caps a blob's declared decompressed size — the code
	// bytes of a MaxPacketSamples packet.
	maxBlobBytes = 4 * MaxPacketSamples
)

// OpenStore opens (creating if needed) a store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("trace: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// validName rejects names that would escape the store directory or
// collide with its own layout.
func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("trace: invalid trace name %q", name)
	}
	return nil
}

// List returns the stored trace names in sorted order.
func (s *Store) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("trace: list: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), manifestExt) {
			names = append(names, strings.TrimSuffix(e.Name(), manifestExt))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Put stores a trace under name, writing any blobs the store does not
// already hold. An existing trace of the same name is replaced.
func (s *Store) Put(name string, t *Trace) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := t.validate(); err != nil {
		return err
	}
	wire, err := t.Manifest.MarshalBinary()
	if err != nil {
		return err
	}
	for _, b := range t.Blobs {
		path := s.blobPath(b.Hash)
		if _, err := os.Stat(path); err == nil {
			// Content-addressed: an existing file already holds these
			// exact bytes.
			continue
		}
		comp := make([]byte, 4, 4+len(b.Codes))
		binary.LittleEndian.PutUint32(comp, uint32(len(b.Codes)))
		if err := atomicWrite(path, lzo.Compress(b.Codes, comp)); err != nil {
			return err
		}
	}
	return atomicWrite(filepath.Join(s.dir, name+manifestExt), wire)
}

// Get loads a trace by name, decompresses its blobs and verifies every
// content hash and packet size.
func (s *Store) Get(name string) (*Trace, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	wire, err := os.ReadFile(filepath.Join(s.dir, name+manifestExt))
	if err != nil {
		return nil, fmt.Errorf("trace: get %s: %w", name, err)
	}
	var m Manifest
	if err := m.UnmarshalBinary(wire); err != nil {
		return nil, fmt.Errorf("trace: get %s: %w", name, err)
	}
	t := &Trace{Manifest: m}
	for _, p := range m.Packets {
		if t.Blob(p.Hash) != nil {
			continue
		}
		codes, err := s.readBlob(p.Hash)
		if err != nil {
			return nil, fmt.Errorf("trace: get %s: %w", name, err)
		}
		t.Blobs = append(t.Blobs, Blob{Hash: p.Hash, Codes: codes})
		sort.Slice(t.Blobs, func(i, j int) bool { return t.Blobs[i].Hash < t.Blobs[j].Hash })
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("trace: get %s: %w", name, err)
	}
	return t, nil
}

// Remove deletes a trace's manifest. Its blobs stay until GC (another
// manifest may share them).
func (s *Store) Remove(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(s.dir, name+manifestExt)); err != nil {
		return fmt.Errorf("trace: remove %s: %w", name, err)
	}
	return nil
}

// GC removes blobs no stored manifest references and returns their
// hashes in sorted order.
func (s *Store) GC() ([]uint64, error) {
	names, err := s.List()
	if err != nil {
		return nil, err
	}
	live := map[uint64]bool{}
	for _, name := range names {
		wire, err := os.ReadFile(filepath.Join(s.dir, name+manifestExt))
		if err != nil {
			return nil, fmt.Errorf("trace: gc: %w", err)
		}
		var m Manifest
		if err := m.UnmarshalBinary(wire); err != nil {
			return nil, fmt.Errorf("trace: gc: manifest %s: %w", name, err)
		}
		for _, p := range m.Packets {
			live[p.Hash] = true
		}
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "blobs"))
	if err != nil {
		return nil, fmt.Errorf("trace: gc: %w", err)
	}
	var removed []uint64
	for _, e := range entries {
		hex, ok := strings.CutSuffix(e.Name(), blobExt)
		if e.IsDir() || !ok {
			continue
		}
		hash, err := strconv.ParseUint(hex, 16, 64)
		if err != nil || len(hex) != 16 {
			continue // not a blob of ours; leave it alone
		}
		if live[hash] {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, "blobs", e.Name())); err != nil {
			return removed, fmt.Errorf("trace: gc: %w", err)
		}
		removed = append(removed, hash)
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	return removed, nil
}

func (s *Store) blobPath(hash uint64) string {
	return filepath.Join(s.dir, "blobs", fmt.Sprintf("%016x%s", hash, blobExt))
}

// readBlob loads and decompresses one blob, bounding the declared size
// before any allocation (the lzo cap fix this store depends on).
func (s *Store) readBlob(hash uint64) ([]byte, error) {
	raw, err := os.ReadFile(s.blobPath(hash))
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("blob %016x truncated", hash)
	}
	rawLen := int(binary.LittleEndian.Uint32(raw))
	codes, err := lzo.DecompressLimit(raw[4:], rawLen, maxBlobBytes)
	if err != nil {
		return nil, fmt.Errorf("blob %016x: %w", hash, err)
	}
	return codes, nil
}

// atomicWrite writes data next to path and renames it into place.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}
