// Package trace is the record/replay IQ trace store: content-addressed,
// lzo-compressed captures of the waveforms a phy.Link delivers to its
// demodulator, with enough metadata to replay them bit-exactly.
//
// A trace is recorded through the Device seam (phy.Source / phy.Sink):
// a Recorder taps the channel output of a live Link and models the
// receive ADC — it quantizes each packet in place through the same
// mid-tread converter as iq.EncodeInt16, so the recorded run itself
// demodulates the very samples a later replay will decode. Replay binds a
// PacketSource to a fresh RX modem with phy.OpenReplay, bypassing the
// modulator and channel entirely; demod output, per-packet losses and the
// RSSI accumulation are byte-identical to the recorded run, at any worker
// count.
//
// On disk (see Store) a trace is one binary manifest plus FNV-addressed
// blobs of iq.EncodeInt16 codes, compressed with internal/lzo. Identical
// packets (a clean channel repeating one waveform) deduplicate to one
// blob. PERFORMANCE.md documents the corpus layout and the determinism
// contract; testdata/traces holds the committed CI corpus.
package trace

import (
	"fmt"
	"sort"

	"github.com/uwsdr/tinysdr/internal/phy"
)

// Source is the replay side of the device seam — an alias of phy.Source,
// re-exported so trace consumers name the seam without importing phy.
type Source = phy.Source

// Sink is the capture side of the device seam — an alias of phy.Sink.
type Sink = phy.Sink

// Meta identifies what a trace captured: the protocol, the channel
// scenario recipe, and the quantization of the stored samples.
type Meta struct {
	// PHY is the registered protocol name the waveforms were demodulated
	// as (phy.Names()).
	PHY string
	// Seed drove the channel randomness of the recorded run.
	Seed int64
	// SampleRate is the baseband rate of every packet in Hz.
	SampleRate float64
	// Bits is the converter resolution of the stored codes (1..16).
	Bits int
	// Scenario is the sim/scenario grammar string the channel was built
	// from — provenance, not replayed (the waveforms are literal).
	Scenario string
	// Payload is the transmitted payload, the loss-accounting baseline.
	Payload []byte
}

// Packet locates one captured packet: the content hash of its code blob,
// its sample count, and the per-packet full scale the recording ADC
// auto-ranged to.
type Packet struct {
	// Hash is the FNV-64a of the packet's uncompressed code bytes.
	Hash uint64
	// Samples is the packet length in complex samples.
	Samples int
	// FullScale is the converter full scale the packet was quantized at.
	FullScale float64
}

// Blob is one content-addressed run of uncompressed iq.EncodeInt16 bytes.
type Blob struct {
	Hash  uint64
	Codes []byte
}

// Trace is a manifest together with the blobs its packets reference,
// sorted by hash and deduplicated.
type Trace struct {
	Manifest Manifest
	Blobs    []Blob
}

// Blob returns the codes for a hash, or nil if the trace does not carry
// it.
func (t *Trace) Blob(hash uint64) []byte {
	i := sort.Search(len(t.Blobs), func(i int) bool { return t.Blobs[i].Hash >= hash })
	if i < len(t.Blobs) && t.Blobs[i].Hash == hash {
		return t.Blobs[i].Codes
	}
	return nil
}

// validate checks that every packet's blob is present with the exact code
// length its sample count implies, and that the blob hashes are honest.
func (t *Trace) validate() error {
	for i, b := range t.Blobs {
		if i > 0 && t.Blobs[i-1].Hash >= b.Hash {
			return fmt.Errorf("trace: blobs not sorted/unique at %d", i)
		}
		if got := HashCodes(b.Codes); got != b.Hash {
			return fmt.Errorf("trace: blob %016x content hashes to %016x", b.Hash, got)
		}
	}
	for i, p := range t.Manifest.Packets {
		codes := t.Blob(p.Hash)
		if codes == nil {
			return fmt.Errorf("trace: packet %d references missing blob %016x", i, p.Hash)
		}
		if len(codes) != 4*p.Samples {
			return fmt.Errorf("trace: packet %d wants %d samples, blob %016x holds %d bytes",
				i, p.Samples, p.Hash, len(codes))
		}
	}
	return nil
}

// HashCodes is the content address of a code blob: FNV-64a over the
// uncompressed bytes.
func HashCodes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
