package trace

import (
	"bytes"
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/phy"
)

// goldenPayload mirrors the phy package's canonical round-trip payload.
var goldenPayload = []byte("tinysdr-phy-golden")

// referenceMeta describes the reference capture scenario of the golden
// tests: the same flat-Rician + CFO-jitter + noise channel the phy
// golden round-trip pins, 18 dB above sensitivity.
func referenceMeta(m phy.Modem) Meta {
	return Meta{
		PHY:        m.Name(),
		Seed:       7,
		SampleRate: m.SampleRate(),
		Bits:       13,
		Scenario:   "fading=rician:12,cfojitter=50",
		Payload:    goldenPayload,
	}
}

func referenceScenario(m phy.Modem) *channel.Scenario {
	return channel.NewScenario(
		channel.NewGain(m.SensitivityDBm()+18),
		channel.NewFlatFading(iq.FromDB(12)),
		channel.NewCFO(0, 50, 0, m.SampleRate()),
		channel.NewNoise(m.NoiseFloorDBm()),
	)
}

func recordReference(t *testing.T, name string, packets int) *Trace {
	t.Helper()
	tx, err := phy.New(name)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := phy.New(name)
	if err != nil {
		t.Fatal(err)
	}
	meta := referenceMeta(rx)
	link, err := phy.Open(tx, rx, referenceScenario(rx), meta.Seed)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(link, meta, packets)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenRecordReplayEveryPHY is the tentpole contract: every
// registered PHY records through the reference scenario and replays to
// byte-identical demod output and metrics, at one worker and at several.
func TestGoldenRecordReplayEveryPHY(t *testing.T) {
	for _, name := range phy.Names() {
		t.Run(name, func(t *testing.T) {
			const packets = 8
			tr := recordReference(t, name, packets)
			if len(tr.Manifest.Packets) != packets {
				t.Fatalf("recorded %d packets, want %d", len(tr.Manifest.Packets), packets)
			}

			// Replay metrics must be bit-identical to the recorded run,
			// independent of worker count.
			for _, workers := range []int{1, 3} {
				if err := Verify(tr, workers); err != nil {
					t.Fatalf("verify at %d workers: %v", workers, err)
				}
				st, err := Replay(tr, workers)
				if err != nil {
					t.Fatal(err)
				}
				if st != tr.Manifest.Stats() {
					t.Fatalf("replay stats %+v, recorded %+v", st, tr.Manifest.Stats())
				}
			}

			// Byte-identical demod output: a second live tapped run (same
			// modems, scenario, seed — deterministic by the Link contract)
			// against a replay of the stored trace, packet by packet.
			rxLive, err := phy.New(name)
			if err != nil {
				t.Fatal(err)
			}
			txLive, err := phy.New(name)
			if err != nil {
				t.Fatal(err)
			}
			live, err := phy.Open(txLive, rxLive, referenceScenario(rxLive), tr.Manifest.Seed)
			if err != nil {
				t.Fatal(err)
			}
			rec, err := NewRecorder(referenceMeta(rxLive))
			if err != nil {
				t.Fatal(err)
			}
			if err := live.Tap(rec); err != nil {
				t.Fatal(err)
			}
			rep, err := OpenReplay(tr)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < packets; k++ {
				liveGot, liveErr := live.Send(goldenPayload)
				repGot, repErr := rep.Send(goldenPayload)
				if (liveErr != nil) != (repErr != nil) {
					t.Fatalf("packet %d: live err %v, replay err %v", k, liveErr, repErr)
				}
				if !bytes.Equal(liveGot, repGot) {
					t.Fatalf("packet %d: demod output diverged\n live   %x\n replay %x", k, liveGot, repGot)
				}
			}
		})
	}
}

// TestRecordAutoRangesWeakSignals pins the per-packet AGC: a capture far
// below full scale must not quantize to silence.
func TestRecordAutoRangesWeakSignals(t *testing.T) {
	tr := recordReference(t, "lora", 2)
	for i, p := range tr.Manifest.Packets {
		if p.FullScale >= 1e-3 {
			// -126+18 = -108 dBm signals have amplitudes around 1e-6 —
			// a full scale near 1.0 would mean no auto-ranging happened.
			t.Errorf("packet %d full scale %g, expected weak-signal auto-range", i, p.FullScale)
		}
		codes := tr.Blob(p.Hash)
		allZero := true
		for _, c := range codes {
			if c != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			t.Errorf("packet %d quantized to silence", i)
		}
	}
}

func TestRecorderContracts(t *testing.T) {
	if _, err := NewRecorder(Meta{PHY: "lora", Bits: 0, SampleRate: 1}); err == nil {
		t.Error("bits 0 accepted")
	}
	if _, err := NewRecorder(Meta{PHY: "lora", Bits: 13, SampleRate: 0}); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := NewRecorder(Meta{Bits: 13, SampleRate: 1}); err == nil {
		t.Error("empty phy accepted")
	}
	r, err := NewRecorder(Meta{PHY: "lora", Bits: 13, SampleRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() == "" || r.SampleRate() != 1 {
		t.Error("recorder identity")
	}
	if err := r.WritePacket(3, make(iq.Samples, 4)); err == nil {
		t.Error("out-of-order packet accepted")
	}
	if err := r.WritePacket(0, make(iq.Samples, MaxPacketSamples+1)); err == nil {
		t.Error("oversize packet accepted")
	}
	// All-zero packets take the fallback full scale.
	if err := r.WritePacket(0, make(iq.Samples, 8)); err != nil {
		t.Fatal(err)
	}
	if fs := r.packets[0].FullScale; fs != 1 {
		t.Errorf("all-zero packet full scale %g, want 1", fs)
	}
}

func TestRecordValidation(t *testing.T) {
	tx, _ := phy.New("lora")
	rx, _ := phy.New("lora")
	link, err := phy.Open(tx, rx, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	meta := referenceMeta(rx)
	if _, err := Record(link, meta, 0); err == nil {
		t.Error("zero packets accepted")
	}
	badRate := meta
	badRate.SampleRate = meta.SampleRate * 2
	if _, err := Record(link, badRate, 1); err == nil {
		t.Error("mismatched tap rate accepted")
	}
}

// TestReplayIsPureFunctionOfTrace pins the device seam against the live
// path: a replay link refuses to run past the trace and exposes its
// source.
func TestReplaySourceBounds(t *testing.T) {
	tr := recordReference(t, "ble", 3)
	link, err := OpenReplay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if link.Source() == nil || link.Source().Packets() != 3 {
		t.Fatal("replay link source not exposed")
	}
	if link.TX() != nil {
		t.Error("replay link claims a TX modem")
	}
	if _, err := link.Run(goldenPayload, 4); err == nil {
		t.Error("run past the trace accepted")
	}
	st, err := link.Run(goldenPayload, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(st.RSSIdBm) != math.Float64bits(tr.Manifest.RSSIdBm) || st.Failures != tr.Manifest.Failures {
		t.Errorf("sequential replay Run %+v, recorded %+v", st, tr.Manifest.Stats())
	}
	// A fourth Send must hard-error (trace exhausted), not count a loss.
	for k := 0; k < 3; k++ {
		if _, err := link.Send(goldenPayload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := link.Send(goldenPayload); err == nil {
		t.Error("send past the trace accepted")
	}
}

func TestVerifyDetectsTamperedManifest(t *testing.T) {
	tr := recordReference(t, "ble", 4)
	flipped := *tr
	flipped.Manifest.Failed = append([]bool(nil), tr.Manifest.Failed...)
	flipped.Manifest.Failed[2] = !flipped.Manifest.Failed[2]
	if flipped.Manifest.Failed[2] {
		flipped.Manifest.Failures++
	} else {
		flipped.Manifest.Failures--
	}
	if err := Verify(&flipped, 1); err == nil {
		t.Error("tampered loss record verified")
	}
	rssi := *tr
	rssi.Manifest.RSSIdBm = tr.Manifest.RSSIdBm + 1e-9
	if err := Verify(&rssi, 1); err == nil {
		t.Error("tampered RSSI verified")
	}
}

func TestSourceValidatesTrace(t *testing.T) {
	tr := recordReference(t, "ble", 2)
	missing := &Trace{Manifest: tr.Manifest} // no blobs
	if _, err := NewSource(missing); err == nil {
		t.Error("missing blobs accepted")
	}
	corrupt := &Trace{Manifest: tr.Manifest, Blobs: make([]Blob, len(tr.Blobs))}
	copy(corrupt.Blobs, tr.Blobs)
	corrupt.Blobs[0] = Blob{Hash: corrupt.Blobs[0].Hash, Codes: append([]byte(nil), corrupt.Blobs[0].Codes...)}
	corrupt.Blobs[0].Codes[0] ^= 0x01
	if _, err := NewSource(corrupt); err == nil {
		t.Error("blob content not matching its hash accepted")
	}
	src, err := NewSource(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.ReadPacket(-1); err == nil {
		t.Error("negative packet accepted")
	}
	if _, err := src.ReadPacket(2); err == nil {
		t.Error("past-end packet accepted")
	}
}
