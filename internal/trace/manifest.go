package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/uwsdr/tinysdr/internal/phy"
)

// Binary manifest format (all integers little-endian):
//
//	magic    "TSIQ"
//	version  u16   (1)
//	phyLen   u8    + phy name bytes
//	seed     u64   (int64 bits)
//	rate     u64   (float64 bits, positive finite)
//	bits     u8    (1..16)
//	scenLen  u16   + scenario spec bytes
//	pldLen   u16   + payload bytes
//	failures u32
//	rssi     u64   (float64 bits)
//	npkts    u32
//	packets  npkts × { hash u64, samples u32, fullScale u64 }
//	failBits ceil(npkts/8), packet k's loss in bit k&7 of byte k>>3,
//	         padding bits zero
//	crc      u32   (IEEE CRC-32 of everything above)
//
// Parsing is strict and canonical: any accepted input re-marshals to the
// identical bytes (the fuzz harness pins this), every length is validated
// against hard caps before allocation, and trailing bytes, CRC mismatches
// or non-zero padding are corruption.
const (
	manifestMagic   = "TSIQ"
	manifestVersion = 1

	// MaxPacketSamples bounds one packet's length (4 MiB of codes): far
	// above any real waveform, low enough that a hostile manifest cannot
	// demand a huge allocation.
	MaxPacketSamples = 1 << 22
	// MaxPackets bounds a trace's packet count.
	MaxPackets = 1 << 20
)

// Manifest is the stored description of one trace: its Meta, the
// per-packet blob references, and the recorded run's loss record — the
// baseline replay is verified against.
type Manifest struct {
	Meta
	// Failures is the recorded run's lost-packet count (equal to the set
	// bits of Failed; the redundancy is validated on load).
	Failures int
	// RSSIdBm is the recorded run's mean received power, accumulated in
	// packet order exactly as phy.Link.Run accumulates it, so a replay
	// must reproduce its bits.
	RSSIdBm float64
	// Packets references each packet's blob in transmit order.
	Packets []Packet
	// Failed records per-packet loss of the recorded run.
	Failed []bool
}

// Stats reconstructs the recorded run's phy.Stats.
func (m *Manifest) Stats() phy.Stats {
	n := len(m.Packets)
	return phy.Stats{
		Packets:  n,
		Failures: m.Failures,
		PER:      float64(m.Failures) / float64(n),
		RSSIdBm:  m.RSSIdBm,
	}
}

// MarshalBinary renders the canonical wire form.
func (m *Manifest) MarshalBinary() ([]byte, error) {
	if len(m.PHY) == 0 || len(m.PHY) > 255 {
		return nil, fmt.Errorf("trace: phy name of %d bytes", len(m.PHY))
	}
	if m.Bits < 1 || m.Bits > 16 {
		return nil, fmt.Errorf("trace: quantization %d bits outside [1, 16]", m.Bits)
	}
	if !(m.SampleRate > 0) || math.IsInf(m.SampleRate, 0) {
		return nil, fmt.Errorf("trace: sample rate %g", m.SampleRate)
	}
	if len(m.Scenario) > 65535 || len(m.Payload) > 65535 {
		return nil, fmt.Errorf("trace: scenario/payload too long (%d/%d)", len(m.Scenario), len(m.Payload))
	}
	n := len(m.Packets)
	if n == 0 || n > MaxPackets {
		return nil, fmt.Errorf("trace: %d packets outside [1, %d]", n, MaxPackets)
	}
	if len(m.Failed) != n {
		return nil, fmt.Errorf("trace: %d fail flags for %d packets", len(m.Failed), n)
	}
	failures := 0
	for _, f := range m.Failed {
		if f {
			failures++
		}
	}
	if failures != m.Failures {
		return nil, fmt.Errorf("trace: Failures %d but %d flags set", m.Failures, failures)
	}

	out := make([]byte, 0, 64+len(m.PHY)+len(m.Scenario)+len(m.Payload)+20*n+(n+7)/8)
	out = append(out, manifestMagic...)
	out = binary.LittleEndian.AppendUint16(out, manifestVersion)
	out = append(out, byte(len(m.PHY)))
	out = append(out, m.PHY...)
	out = binary.LittleEndian.AppendUint64(out, uint64(m.Seed))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m.SampleRate))
	out = append(out, byte(m.Bits))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Scenario)))
	out = append(out, m.Scenario...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(m.Payload)))
	out = append(out, m.Payload...)
	out = binary.LittleEndian.AppendUint32(out, uint32(m.Failures))
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m.RSSIdBm))
	out = binary.LittleEndian.AppendUint32(out, uint32(n))
	for _, p := range m.Packets {
		if p.Samples < 0 || p.Samples > MaxPacketSamples {
			return nil, fmt.Errorf("trace: packet of %d samples outside [0, %d]", p.Samples, MaxPacketSamples)
		}
		if !(p.FullScale > 0) || math.IsInf(p.FullScale, 0) {
			return nil, fmt.Errorf("trace: packet full scale %g", p.FullScale)
		}
		out = binary.LittleEndian.AppendUint64(out, p.Hash)
		out = binary.LittleEndian.AppendUint32(out, uint32(p.Samples))
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(p.FullScale))
	}
	fail := make([]byte, (n+7)/8)
	for k, f := range m.Failed {
		if f {
			fail[k>>3] |= 1 << (k & 7)
		}
	}
	out = append(out, fail...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out)), nil
}

// UnmarshalBinary parses and validates a manifest. It never allocates
// proportionally to declared counts before validating them against the
// package caps.
func (m *Manifest) UnmarshalBinary(data []byte) error {
	r := reader{data: data}
	if string(r.take(4)) != manifestMagic {
		return fmt.Errorf("trace: bad manifest magic")
	}
	if v := r.u16(); v != manifestVersion {
		return fmt.Errorf("trace: manifest version %d, want %d", v, manifestVersion)
	}
	phyLen := int(r.u8())
	if phyLen == 0 {
		return fmt.Errorf("trace: empty phy name")
	}
	phyName := string(r.take(phyLen))
	seed := int64(r.u64())
	rate := math.Float64frombits(r.u64())
	bits := int(r.u8())
	scen := string(r.take(int(r.u16())))
	pld := append([]byte(nil), r.take(int(r.u16()))...)
	failures := int(r.u32())
	rssiBits := r.u64()
	n := int(r.u32())
	if r.err != nil {
		return r.err
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return fmt.Errorf("trace: sample rate %g", rate)
	}
	if bits < 1 || bits > 16 {
		return fmt.Errorf("trace: quantization %d bits outside [1, 16]", bits)
	}
	if n == 0 || n > MaxPackets {
		return fmt.Errorf("trace: %d packets outside [1, %d]", n, MaxPackets)
	}
	if failures > n {
		return fmt.Errorf("trace: %d failures over %d packets", failures, n)
	}
	// The remaining length is fully determined now — check it before the
	// per-packet allocation.
	if want := 20*n + (n+7)/8 + 4; len(r.data)-r.off != want {
		return fmt.Errorf("trace: %d trailing bytes, want %d", len(r.data)-r.off, want)
	}
	packets := make([]Packet, n)
	for i := range packets {
		packets[i] = Packet{Hash: r.u64(), Samples: int(r.u32()), FullScale: math.Float64frombits(r.u64())}
		if packets[i].Samples > MaxPacketSamples {
			return fmt.Errorf("trace: packet %d of %d samples over %d", i, packets[i].Samples, MaxPacketSamples)
		}
		if fs := packets[i].FullScale; !(fs > 0) || math.IsInf(fs, 0) {
			return fmt.Errorf("trace: packet %d full scale %g", i, fs)
		}
	}
	fail := r.take((n + 7) / 8)
	failed := make([]bool, n)
	set := 0
	for k := range failed {
		if fail[k>>3]&(1<<(k&7)) != 0 {
			failed[k] = true
			set++
		}
	}
	for b := n; b < 8*len(fail); b++ {
		if fail[b>>3]&(1<<(b&7)) != 0 {
			return fmt.Errorf("trace: non-zero fail-bit padding")
		}
	}
	if set != failures {
		return fmt.Errorf("trace: failures field %d but %d bits set", failures, set)
	}
	crc := r.u32()
	if r.err != nil {
		return r.err
	}
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != crc {
		return fmt.Errorf("trace: manifest CRC %08x, want %08x", crc, got)
	}
	*m = Manifest{
		Meta:     Meta{PHY: phyName, Seed: seed, SampleRate: rate, Bits: bits, Scenario: scen, Payload: pld},
		Failures: failures,
		RSSIdBm:  math.Float64frombits(rssiBits),
		Packets:  packets,
		Failed:   failed,
	}
	return nil
}

// reader is a bounds-checked cursor; the first short read poisons it.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("trace: manifest truncated at byte %d", r.off)
		}
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
