package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Dir() != dir {
		t.Fatal("store dir")
	}
	tr := recordReference(t, "lora", 3)
	if err := store.Put("lora-ref", tr); err != nil {
		t.Fatal(err)
	}
	// Putting again must be a no-op for blobs (content-addressed) and a
	// clean replace for the manifest.
	if err := store.Put("lora-ref", tr); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get("lora-ref")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("stored trace did not round-trip")
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "lora-ref" {
		t.Fatalf("list %v", names)
	}
}

func TestStoreRejectsBadNames(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := recordReference(t, "ble", 1)
	for _, name := range []string{"", "a/b", `a\b`, ".hidden", "../escape"} {
		if err := store.Put(name, tr); err == nil {
			t.Errorf("name %q accepted by Put", name)
		}
		if _, err := store.Get(name); err == nil {
			t.Errorf("name %q accepted by Get", name)
		}
		if err := store.Remove(name); err == nil {
			t.Errorf("name %q accepted by Remove", name)
		}
	}
	if _, err := store.Get("absent"); err == nil {
		t.Error("missing trace returned")
	}
}

func TestStoreGC(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := recordReference(t, "lora", 2)
	b := recordReference(t, "ble", 2)
	if err := store.Put("a", a); err != nil {
		t.Fatal(err)
	}
	if err := store.Put("b", b); err != nil {
		t.Fatal(err)
	}
	// Nothing unreferenced yet.
	removed, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 {
		t.Fatalf("gc removed %v with all traces live", removed)
	}
	if err := store.Remove("a"); err != nil {
		t.Fatal(err)
	}
	removed, err = store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != len(a.Blobs) {
		t.Fatalf("gc removed %d blobs, want %d", len(removed), len(a.Blobs))
	}
	for i := 1; i < len(removed); i++ {
		if removed[i-1] >= removed[i] {
			t.Fatal("gc result not sorted")
		}
	}
	// b must still load intact.
	if _, err := store.Get("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("a"); err == nil {
		t.Error("removed trace still loads")
	}
}

func TestStoreDetectsCorruptBlob(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := recordReference(t, "ble", 2)
	if err := store.Put("c", tr); err != nil {
		t.Fatal(err)
	}
	// Truncate one blob on disk: Get must refuse, whichever of the lzo
	// stream or the content hash breaks first.
	path := store.blobPath(tr.Blobs[0].Hash)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("c"); err == nil {
		t.Error("truncated blob loaded")
	}
	// A blob whose bytes decompress but hash differently must also fail.
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	other := store.blobPath(tr.Blobs[0].Hash ^ 1)
	if err := os.Rename(path, other); err != nil {
		t.Fatal(err)
	}
	forged := *tr
	forged.Manifest.Packets = append([]Packet(nil), tr.Manifest.Packets...)
	for i := range forged.Manifest.Packets {
		if forged.Manifest.Packets[i].Hash == tr.Blobs[0].Hash {
			forged.Manifest.Packets[i].Hash ^= 1
		}
	}
	wire, err := forged.Manifest.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.Dir(), "c"+manifestExt), wire, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("c"); err == nil {
		t.Error("content-hash mismatch loaded")
	}
}

func TestStoreDetectsCorruptManifest(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tr := recordReference(t, "lora", 1)
	if err := store.Put("m", tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(store.Dir(), "m"+manifestExt)
	wire, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)/2] ^= 0x40
	if err := os.WriteFile(path, wire, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get("m"); err == nil {
		t.Error("bit-flipped manifest loaded")
	}
	if _, err := store.GC(); err == nil {
		t.Error("gc walked over a corrupt manifest")
	}
}
