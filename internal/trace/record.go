package trace

import (
	"fmt"
	"math"
	"sort"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/par"
	"github.com/uwsdr/tinysdr/internal/phy"
)

// Recorder is the capture Sink: installed as a tap on a live Link, it
// models the receive ADC. Each packet is auto-ranged (full scale = the
// packet's peak |I|/|Q|, so a -120 dBm waveform keeps its resolution),
// encoded to int16 codes, content-hashed — and then decoded back into the
// caller's buffer IN PLACE, so the live demodulator consumes exactly the
// samples a replay will reconstruct. Packets must arrive in sequence from
// k = 0, which is how Link.Run and a Probe loop deliver them.
type Recorder struct {
	meta    Meta
	packets []Packet
	blobs   []Blob
	byHash  map[uint64]int
	powerMW float64
	next    int
}

// NewRecorder returns a recorder for the given capture description.
func NewRecorder(meta Meta) (*Recorder, error) {
	if meta.Bits < 1 || meta.Bits > 16 {
		return nil, fmt.Errorf("trace: quantization %d bits outside [1, 16]", meta.Bits)
	}
	if !(meta.SampleRate > 0) || math.IsInf(meta.SampleRate, 0) {
		return nil, fmt.Errorf("trace: sample rate %g", meta.SampleRate)
	}
	if meta.PHY == "" {
		return nil, fmt.Errorf("trace: recorder needs a phy name")
	}
	return &Recorder{meta: meta, byHash: map[uint64]int{}}, nil
}

// Name implements Sink.
func (r *Recorder) Name() string { return "trace-recorder" }

// SampleRate implements Sink.
func (r *Recorder) SampleRate() float64 { return r.meta.SampleRate }

// WritePacket implements Sink: capture packet k and quantize sig in
// place.
func (r *Recorder) WritePacket(k int, sig iq.Samples) error {
	if k != r.next {
		return fmt.Errorf("trace: recorder got packet %d, want %d (packets must arrive in order)", k, r.next)
	}
	if len(sig) > MaxPacketSamples {
		return fmt.Errorf("trace: packet of %d samples over %d", len(sig), MaxPacketSamples)
	}
	fullScale := autoFullScale(sig)
	codes := iq.EncodeInt16(sig, r.meta.Bits, fullScale)
	h := HashCodes(codes)
	if _, dup := r.byHash[h]; !dup {
		r.byHash[h] = len(r.blobs)
		r.blobs = append(r.blobs, Blob{Hash: h, Codes: codes})
	}
	// The ADC contract: the demodulator (and Run's power accumulation)
	// sees the dequantized samples, which replay reconstructs bit-exactly.
	iq.DecodeInt16Into(sig, codes, r.meta.Bits, fullScale)
	r.powerMW += sig.Power()
	r.packets = append(r.packets, Packet{Hash: h, Samples: len(sig), FullScale: fullScale})
	r.next++
	return nil
}

// autoFullScale picks the converter full scale for one packet: its peak
// component amplitude, so quantization resolution follows the signal
// level instead of vanishing for weak captures. An all-zero packet gets
// full scale 1 (any value encodes zeros identically).
func autoFullScale(sig iq.Samples) float64 {
	peak := 0.0
	for _, x := range sig {
		if v := math.Abs(real(x)); v > peak {
			peak = v
		}
		if v := math.Abs(imag(x)); v > peak {
			peak = v
		}
	}
	if peak == 0 {
		return 1
	}
	return peak
}

// Record captures a trace from a live link: meta.Payload is pushed
// through packet indices 0..packets-1 with the recorder tapped on the
// channel output, and the recorded per-packet losses and RSSI — the
// metrics a replay must reproduce byte-for-byte — land in the manifest.
// The link's existing tap is replaced and removed again on return.
func Record(link *phy.Link, meta Meta, packets int) (*Trace, error) {
	if packets <= 0 {
		return nil, fmt.Errorf("trace: record needs at least one packet, got %d", packets)
	}
	if packets > MaxPackets {
		return nil, fmt.Errorf("trace: %d packets over %d", packets, MaxPackets)
	}
	rec, err := NewRecorder(meta)
	if err != nil {
		return nil, err
	}
	if err := link.Tap(rec); err != nil {
		return nil, err
	}
	defer link.Tap(nil)
	failed := make([]bool, packets)
	failures := 0
	for k := 0; k < packets; k++ {
		lost, err := link.Probe(meta.Payload, k)
		if err != nil {
			return nil, fmt.Errorf("trace: record packet %d: %w", k, err)
		}
		if lost {
			failed[k] = true
			failures++
		}
	}
	sort.Slice(rec.blobs, func(i, j int) bool { return rec.blobs[i].Hash < rec.blobs[j].Hash })
	t := &Trace{
		Manifest: Manifest{
			Meta:     meta,
			Failures: failures,
			RSSIdBm:  iq.MilliwattsToDBm(rec.powerMW / float64(packets)),
			Packets:  rec.packets,
			Failed:   failed,
		},
		Blobs: rec.blobs,
	}
	return t, t.validate()
}

// PacketSource is the replay Source: it serves a trace's packets through
// one scratch buffer, decoding each blob with the stored per-packet full
// scale. Like the modems it stands in for it is single-goroutine; give
// each replay worker its own (NewSource is cheap — blobs are shared
// read-only).
type PacketSource struct {
	m      *Manifest
	codes  map[uint64][]byte
	buf    iq.Samples
	device string
}

// NewSource returns a Source over a validated trace.
func NewSource(t *Trace) (*PacketSource, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	codes := make(map[uint64][]byte, len(t.Blobs))
	for i := range t.Blobs {
		codes[t.Blobs[i].Hash] = t.Blobs[i].Codes
	}
	return &PacketSource{m: &t.Manifest, codes: codes, device: "trace:" + t.Manifest.PHY}, nil
}

// Name implements Source.
func (s *PacketSource) Name() string { return s.device }

// SampleRate implements Source.
func (s *PacketSource) SampleRate() float64 { return s.m.SampleRate }

// Packets implements Source.
func (s *PacketSource) Packets() int { return len(s.m.Packets) }

// ReadPacket implements Source; the returned slice is scratch, valid
// until the next call.
func (s *PacketSource) ReadPacket(k int) (iq.Samples, error) {
	if k < 0 || k >= len(s.m.Packets) {
		return nil, fmt.Errorf("trace: packet %d outside trace of %d", k, len(s.m.Packets))
	}
	p := s.m.Packets[k]
	if cap(s.buf) < p.Samples {
		s.buf = make(iq.Samples, p.Samples)
	}
	buf := s.buf[:p.Samples]
	iq.DecodeInt16Into(buf, s.codes[p.Hash], s.m.Bits, p.FullScale)
	return buf, nil
}

// OpenReplay binds the trace to a fresh RX modem of its recorded PHY,
// returning a Link whose packets come from the trace instead of a live
// modulator and channel.
func OpenReplay(t *Trace) (*phy.Link, error) {
	src, err := NewSource(t)
	if err != nil {
		return nil, err
	}
	rx, err := phy.New(t.Manifest.PHY)
	if err != nil {
		return nil, err
	}
	return phy.OpenReplay(src, rx)
}

// powerTap measures per-packet received power during replay, matching the
// accumulation Run performs on a live link. It never modifies the
// samples (they are already quantized).
type powerTap struct {
	rate float64
	mw   float64
}

func (p *powerTap) Name() string        { return "trace-power" }
func (p *powerTap) SampleRate() float64 { return p.rate }
func (p *powerTap) WritePacket(k int, sig iq.Samples) error {
	p.mw = sig.Power()
	return nil
}

// packetResult is one replayed packet's outcome.
type packetResult struct {
	lost bool
	mw   float64
}

// replay runs every packet of the trace across a worker pool, each worker
// holding its own RX modem and source. Per-packet results are indexed by
// packet, so aggregation order — and therefore every derived metric bit —
// is independent of the worker count.
func replay(t *Trace, workers int) ([]packetResult, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	n := len(t.Manifest.Packets)
	type state struct {
		link *phy.Link
		tap  *powerTap
	}
	return par.Trials(par.ResolveWorkers(workers), n,
		func() (*state, error) {
			link, err := OpenReplay(t)
			if err != nil {
				return nil, err
			}
			tap := &powerTap{rate: t.Manifest.SampleRate}
			if err := link.Tap(tap); err != nil {
				return nil, err
			}
			return &state{link: link, tap: tap}, nil
		},
		func(st *state, k int) (packetResult, error) {
			lost, err := st.link.Probe(t.Manifest.Payload, k)
			if err != nil {
				return packetResult{}, err
			}
			return packetResult{lost: lost, mw: st.tap.mw}, nil
		})
}

// Replay re-demodulates the whole trace and returns the measured Stats,
// computed exactly as a live Run computes them: failures counted and
// packet powers summed in packet order. The result is byte-identical at
// any worker count.
func Replay(t *Trace, workers int) (phy.Stats, error) {
	results, err := replay(t, workers)
	if err != nil {
		return phy.Stats{}, err
	}
	st := phy.Stats{Packets: len(results)}
	var mw float64
	for _, r := range results {
		if r.lost {
			st.Failures++
		}
		mw += r.mw
	}
	st.PER = float64(st.Failures) / float64(st.Packets)
	st.RSSIdBm = iq.MilliwattsToDBm(mw / float64(st.Packets))
	return st, nil
}

// Verify replays the trace and diffs the result against the recorded
// manifest byte-for-byte: every per-packet loss flag must match, and the
// recomputed PER and RSSI must equal the recorded ones to the last bit.
// This is the cross-version A/B gate: any demodulator change that bends
// behavior on committed waveforms fails here.
func Verify(t *Trace, workers int) error {
	results, err := replay(t, workers)
	if err != nil {
		return err
	}
	failures := 0
	var mw float64
	for k, r := range results {
		if r.lost != t.Manifest.Failed[k] {
			return fmt.Errorf("trace: packet %d replayed lost=%v, recorded lost=%v", k, r.lost, t.Manifest.Failed[k])
		}
		if r.lost {
			failures++
		}
		mw += r.mw
	}
	if failures != t.Manifest.Failures {
		return fmt.Errorf("trace: replay counted %d failures, recorded %d", failures, t.Manifest.Failures)
	}
	got := iq.MilliwattsToDBm(mw / float64(len(results)))
	if math.Float64bits(got) != math.Float64bits(t.Manifest.RSSIdBm) {
		return fmt.Errorf("trace: replay RSSI %v (%016x), recorded %v (%016x)",
			got, math.Float64bits(got), t.Manifest.RSSIdBm, math.Float64bits(t.Manifest.RSSIdBm))
	}
	return nil
}
