package trace

import (
	"runtime"
	"testing"
)

// TestCommittedCorpusReplays is the cross-version A/B gate: every trace
// committed under testdata/traces must replay byte-identically to the run
// that recorded it, at one worker and at full parallelism. A demodulator
// change that bends behavior on these waveforms fails here — regenerate
// the corpus with cmd/tinysdr-trace only when the change is intentional.
func TestCommittedCorpusReplays(t *testing.T) {
	store, err := OpenStore("../../testdata/traces")
	if err != nil {
		t.Fatal(err)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("committed corpus is empty")
	}
	sawFailures := false
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			tr, err := store.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Manifest.Failures > 0 {
				sawFailures = true
			}
			for _, workers := range []int{1, runtime.NumCPU()} {
				if err := Verify(tr, workers); err != nil {
					t.Fatalf("verify at %d workers: %v", workers, err)
				}
			}
		})
	}
	if !sawFailures {
		// The corpus must keep exercising the loss-record path, not only
		// clean captures.
		t.Error("no committed trace records any packet loss")
	}
}
