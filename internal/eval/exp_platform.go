package eval

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/core"
	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// Table4 measures the operating-mode transition timings on the device's
// simulated clock (sleep wake, radio setup, TX/RX turnarounds, retune).
func Table4(cfg Config) (*Result, error) {
	t, err := core.MeasureOperationTimings()
	if err != nil {
		return nil, err
	}
	rows := [][]string{
		{"Sleep to radio operation", fmtMS(t.SleepToRadio), "22"},
		{"Radio setup", fmtMS(t.RadioSetup), "1.2"},
		{"TX to RX", fmtMS(t.TXToRX), "0.045"},
		{"RX to TX", fmtMS(t.RXToTX), "0.011"},
		{"Frequency switch", fmtMS(t.FreqSwitch), "0.220"},
	}
	text := RenderTable([]string{"Operation", "Measured (ms)", "Paper (ms)"}, rows)
	return &Result{ID: "table4", Title: "Operation timings", Text: text,
		Metrics: map[string]float64{
			"sleep_to_radio_ms": ms(t.SleepToRadio),
			"radio_setup_ms":    ms(t.RadioSetup),
			"tx_to_rx_ms":       ms(t.TXToRX),
			"rx_to_tx_ms":       ms(t.RXToTX),
			"freq_switch_ms":    ms(t.FreqSwitch),
		}}, nil
}

func ms(d time.Duration) float64   { return float64(d.Nanoseconds()) / 1e6 }
func fmtMS(d time.Duration) string { return fmt.Sprintf("%.3f", ms(d)) }

// Fig8 runs the single-tone modulator (FPGA NCO at 13-bit resolution into
// the radio DAC) and estimates the transmit spectrum, checking for
// spurious harmonics.
func Fig8(cfg Config) (*Result, error) {
	// 500 kHz offset tone inside the 4 MHz interface, as in the paper's
	// 915 MHz measurement window.
	nco := dsp.NewNCO(500e3 / radio.SampleRate)
	bb := nco.Generate(1 << 16)
	iq.Quantize(bb, radio.ADCBits, 1.0)
	bb.ScaleToDBm(-13) // the paper's drive level

	spec := dsp.Welch(bb, 2048, radio.SampleRate)
	peakBin, peakDBm := spec.Peak()
	sfdr := spec.SFDR(4)

	series := Series{Name: "tinySDR single tone"}
	step := len(spec.PowerDBm) / 128
	for i := 0; i < len(spec.PowerDBm); i += step {
		series.X = append(series.X, spec.Freq(i)/1e6)
		series.Y = append(series.Y, spec.PowerDBm[i])
	}
	text := RenderXY("Single-tone transmit spectrum (baseband offset)",
		"offset (MHz)", "power (dBm)", []Series{series}, 64, 16)
	text += fmt.Sprintf("\npeak %.1f dBm at %+.3f MHz, SFDR %.1f dB (no unexpected harmonics above -55 dBc)\n",
		peakDBm, spec.Freq(peakBin)/1e6, sfdr)
	return &Result{ID: "fig8", Title: "Single-tone spectrum", Text: text,
		Metrics: map[string]float64{
			"peak_dBm":        peakDBm,
			"peak_offset_MHz": spec.Freq(peakBin) / 1e6,
			"sfdr_dB":         sfdr,
		}}, nil
}

// Fig9 sweeps radio output power from -14 to +14 dBm on both bands and
// records end-to-end system draw (radio + FPGA + MCU + regulators).
func Fig9(cfg Config) (*Result, error) {
	run := func(freqHz float64) (Series, error) {
		d := core.New(core.Config{ID: 1})
		if _, err := d.FPGA.Configure(fpga.SingleToneDesign()); err != nil {
			return Series{}, err
		}
		if _, err := d.Radio.Transition(radio.StateTRXOff); err != nil {
			return Series{}, err
		}
		if _, err := d.Radio.SetFrequency(freqHz); err != nil {
			return Series{}, err
		}
		if _, err := d.Radio.Transition(radio.StateTX); err != nil {
			return Series{}, err
		}
		var s Series
		for p := -14.0; p <= 14.0; p += 2 {
			if err := d.Radio.SetTXPower(p); err != nil {
				return Series{}, err
			}
			s.X = append(s.X, p)
			s.Y = append(s.Y, d.SystemPowerW()*1e3)
		}
		return s, nil
	}
	s900, err := run(915e6)
	if err != nil {
		return nil, err
	}
	s900.Name = "tinySDR 900 MHz"
	s24, err := run(2440e6)
	if err != nil {
		return nil, err
	}
	s24.Name = "tinySDR 2.4 GHz"

	at := func(s Series, dbm float64) float64 {
		for i, x := range s.X {
			if x == dbm {
				return s.Y[i]
			}
		}
		return 0
	}
	text := RenderXY("Single-tone transmitter system power",
		"radio output power (dBm)", "power (mW)", []Series{s900, s24}, 64, 14)
	text += fmt.Sprintf("\n900 MHz: %.0f mW @0 dBm, %.0f mW @14 dBm (paper: 231, 283; USRP E310 is 15-16x higher)\n",
		at(s900, 0), at(s900, 14))
	return &Result{ID: "fig9", Title: "Transmit power sweep", Text: text,
		Metrics: map[string]float64{
			"p0dBm_mW":   at(s900, 0),
			"p14dBm_mW":  at(s900, 14),
			"pm14dBm_mW": at(s900, -14),
			"p14_24G_mW": at(s24, 14),
		}}, nil
}

// SleepPower measures the §5.1 deep-sleep system draw and the resulting
// duty-cycling advantage.
func SleepPower(cfg Config) (*Result, error) {
	d := core.New(core.Config{ID: 1})
	d.Sleep()
	sleepW := d.SystemPowerW()
	// Charge a 10 s sleep on the ledger to confirm the integral.
	d.PMU.Ledger().Reset()
	d.Clock.Advance(10 * time.Second)
	energy := d.PMU.Ledger().Energy()

	batt := power.DefaultBattery()
	rows := [][]string{
		{"System sleep power", fmt.Sprintf("%.1f µW", sleepW*1e6), "30 µW"},
		{"Energy over 10 s sleep", fmt.Sprintf("%.0f µJ", energy*1e6), "-"},
		{"Sleep-only battery life", fmt.Sprintf("%.1f years", power.Years(batt.Lifetime(sleepW))), "-"},
	}
	text := RenderTable([]string{"Quantity", "Measured", "Paper"}, rows)
	return &Result{ID: "sleep", Title: "Sleep power", Text: text,
		Metrics: map[string]float64{
			"sleep_uW":      sleepW * 1e6,
			"sleep_years":   power.Years(batt.Lifetime(sleepW)),
			"energy_10s_uJ": energy * 1e6,
		}}, nil
}

// LoRaPacketPower measures §5.2's packet power: TX at SF9/BW500/14 dBm and
// RX, with the radio's share broken out.
func LoRaPacketPower(cfg Config) (*Result, error) {
	p := lora.Params{SF: 9, BW: 500e3, CR: lora.CR45, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	tx := core.New(core.Config{ID: 1})
	if err := tx.ConfigureLoRa(p); err != nil {
		return nil, err
	}
	air, err := tx.TransmitLoRa(make([]byte, 16), 14)
	if err != nil {
		return nil, err
	}
	txTotal := tx.SystemPowerW()
	txRadio := tx.PMU.Ledger().Power("iq-radio")

	rx := core.New(core.Config{ID: 2})
	if err := rx.ConfigureLoRa(p); err != nil {
		return nil, err
	}
	if _, err := rx.ReceiveLoRa(air); err != nil {
		return nil, err
	}
	rxTotal := rx.SystemPowerW()
	rxRadio := rx.PMU.Ledger().Power("iq-radio")

	rows := [][]string{
		{"LoRa TX total (14 dBm)", fmt.Sprintf("%.0f mW", txTotal*1e3), "287 mW"},
		{"LoRa TX radio share", fmt.Sprintf("%.0f mW", txRadio*1e3), "179 mW"},
		{"LoRa RX total", fmt.Sprintf("%.0f mW", rxTotal*1e3), "186 mW"},
		{"LoRa RX radio share", fmt.Sprintf("%.0f mW", rxRadio*1e3), "59 mW"},
	}
	text := RenderTable([]string{"Mode", "Measured", "Paper"}, rows)
	return &Result{ID: "lorapower", Title: "LoRa packet power", Text: text,
		Metrics: map[string]float64{
			"tx_total_mW": txTotal * 1e3,
			"tx_radio_mW": txRadio * 1e3,
			"rx_total_mW": rxTotal * 1e3,
			"rx_radio_mW": rxRadio * 1e3,
		}}, nil
}

// ConcurrentResources reports the §6 FPGA utilization and system power of
// the dual-configuration demodulator.
func ConcurrentResources(cfg Config) (*Result, error) {
	design := fpga.ConcurrentRXDesign(8, 8)
	d := core.New(core.Config{ID: 1})
	if _, err := d.FPGA.Configure(design); err != nil {
		return nil, err
	}
	if _, err := d.Radio.Transition(radio.StateRX); err != nil {
		return nil, err
	}
	total := d.SystemPowerW()
	rows := [][]string{
		{"FPGA LUTs", fmt.Sprintf("%d (%d%%)", design.LUTs(), design.UtilizationPct()), "17%"},
		{"System power while decoding", fmt.Sprintf("%.0f mW", total*1e3), "207 mW"},
	}
	text := RenderTable([]string{"Quantity", "Measured", "Paper"}, rows)
	return &Result{ID: "concurrentres", Title: "Concurrent demod resources", Text: text,
		Metrics: map[string]float64{
			"util_pct": float64(design.UtilizationPct()),
			"power_mW": total * 1e3,
		}}, nil
}
