package eval

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/fleet"
)

// FleetScale sweeps the fleet campaign scheduler across fleet sizes,
// comparing the §7 broadcast+repair protocol against sequential unicast on
// fleet programming time and air bytes. Each fleet hangs off a single
// gateway (ShardSize = N), so the sweep measures the paper's literal claim:
// one transfer plus repair versus N sequential transfers.
func FleetScale(cfg Config) (*Result, error) {
	sizes := []int{20, 100, 500, 1000}
	if cfg.Quick {
		sizes = []int{20, 100}
	}

	run := func(n int, mode fleet.Mode) (*fleet.Result, error) {
		res, err := fleet.Run(fleet.Spec{
			Seed:      cfg.Seed,
			Nodes:     n,
			ShardSize: n,
			Mode:      mode,
			Workers:   resolveWorkers(cfg.Workers),
		})
		if err != nil {
			return nil, err
		}
		if res.Failed > 0 {
			return nil, fmt.Errorf("fleet: %s at N=%d left %d nodes unprogrammed", mode, n, res.Failed)
		}
		return res, nil
	}

	var rows [][]string
	var sBcast, sUni Series
	sBcast.Name = "broadcast"
	sUni.Name = "unicast"
	metrics := map[string]float64{}
	for _, n := range sizes {
		b, err := run(n, fleet.ModeBroadcast)
		if err != nil {
			return nil, err
		}
		u, err := run(n, fleet.ModeUnicast)
		if err != nil {
			return nil, err
		}
		speedup := u.FleetTime.Seconds() / b.FleetTime.Seconds()
		airRatio := float64(u.AirBytes) / float64(b.AirBytes)
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f s", b.FleetTime.Seconds()),
			fmt.Sprintf("%.0f s", u.FleetTime.Seconds()),
			fmt.Sprintf("%.1fx", speedup),
			fmt.Sprintf("%.0f kB", float64(b.AirBytes)/1e3),
			fmt.Sprintf("%.0f kB", float64(u.AirBytes)/1e3),
			fmt.Sprintf("%.1fx", airRatio),
		})
		sBcast.X = append(sBcast.X, float64(n))
		sBcast.Y = append(sBcast.Y, b.FleetTime.Seconds())
		sUni.X = append(sUni.X, float64(n))
		sUni.Y = append(sUni.Y, u.FleetTime.Seconds())
		metrics[fmt.Sprintf("broadcast_s_%d", n)] = b.FleetTime.Seconds()
		metrics[fmt.Sprintf("unicast_s_%d", n)] = u.FleetTime.Seconds()
		metrics[fmt.Sprintf("speedup_x_%d", n)] = speedup
		metrics[fmt.Sprintf("air_ratio_x_%d", n)] = airRatio
	}

	text := RenderXY("Fleet programming time vs fleet size (78 kB MCU image, one gateway)",
		"fleet size (nodes)", "fleet time (s)", []Series{sBcast, sUni}, 64, 14)
	text += "\n" + RenderTable(
		[]string{"N", "Broadcast", "Unicast", "Speedup", "Air (bcast)", "Air (uni)", "Air ratio"}, rows)
	text += "\nunicast fleet time is N sequential transfers; broadcast stays one shared transfer plus per-node announce and repair (§7)\n"
	return &Result{ID: "fleetscale", Title: "Fleet-scale broadcast vs unicast", Text: text, Metrics: metrics}, nil
}
