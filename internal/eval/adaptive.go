package eval

import "math"

// This file implements the deterministic sequential-stopping mode of the
// Monte-Carlo harness. A sweep point's trials run in fixed-size chunks, and
// the point stops as soon as the Wilson score interval around its measured
// error rate is tighter than a configured epsilon — pinned points (PER 0 or
// 1) therefore stop at the minimum chunk count, while points on the curve's
// knee keep their full budget. The stopping decision is a pure function of
// the chunk results, which in turn derive only from (seed, point, trial
// index) — never from scheduling — so adaptive curves are bit-identical at
// any worker count, and every adaptive point is an exact prefix of the
// full-budget run of the same point.

// Default sequential-stopping parameters. The epsilon is deliberately loose
// (a ±0.2 PER bound): the adaptive mode exists to make sweep campaigns
// tractable, and points that matter — where the estimate is genuinely
// uncertain — keep burning budget until it runs out. Tighten -eps (or
// disable -adaptive) for publication-grade curves.
const (
	// DefaultEps is the Wilson half-width target when Adaptive.Eps is unset.
	DefaultEps = 0.2
	// DefaultChunk is the trials-per-chunk granularity when Adaptive.Chunk
	// is unset. With the default epsilon and confidence, a saturated point
	// stops after exactly one chunk.
	DefaultChunk = 8
	// DefaultZ is the 95% normal quantile used when Adaptive.Z is unset.
	DefaultZ = 1.96
)

// Adaptive configures the sequential-stopping Monte-Carlo mode (the CLI's
// -adaptive / -eps flags). The zero value disables it: every trial of every
// point runs, exactly as the fixed-budget harness always has.
type Adaptive struct {
	// Enabled turns sequential stopping on.
	Enabled bool
	// Eps is the Wilson-interval half-width at which a point stops
	// early; <= 0 selects DefaultEps.
	Eps float64
	// Chunk is the number of trials run between stopping checks; <= 0
	// selects DefaultChunk.
	Chunk int
	// Z is the normal quantile of the interval's confidence level; <= 0
	// selects DefaultZ (95%).
	Z float64
}

func (a Adaptive) eps() float64 {
	if a.Eps > 0 {
		return a.Eps
	}
	return DefaultEps
}

func (a Adaptive) chunk() int {
	if a.Chunk > 0 {
		return a.Chunk
	}
	return DefaultChunk
}

func (a Adaptive) z() float64 {
	if a.Z > 0 {
		return a.Z
	}
	return DefaultZ
}

// WilsonHalfWidth returns the half-width of the Wilson score interval for f
// failures in n trials at normal quantile z. Unlike the Wald interval it
// stays honest at p-hat 0 or 1, which is exactly where sweep points
// saturate — the property that makes it a sound sequential-stopping bound.
func WilsonHalfWidth(f, n int, z float64) float64 {
	if n == 0 {
		return math.Inf(1)
	}
	nf := float64(n)
	p := float64(f) / nf
	z2 := z * z
	return z / (1 + z2/nf) * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
}

// MinTrials returns the trial count at which a saturated point (zero
// failures, or all failures) satisfies the stopping rule, rounded up to
// whole chunks and clamped to the budget — the floor every adaptive point
// runs, and the exact count a pinned point stops at.
func (a Adaptive) MinTrials(budget int) int {
	if !a.Enabled {
		return budget
	}
	ch := a.chunk()
	n := ch
	for n < budget && WilsonHalfWidth(0, n, a.z()) > a.eps() {
		n += ch
	}
	if n > budget {
		n = budget
	}
	return n
}

// runRule executes up to budget Bernoulli trials through fail (trial
// indices 0..), consulting stop at every chunk boundary, and returns the
// failure count and the number of trials actually run. With Enabled false
// it runs the whole budget in one chunk — byte-identical to the historical
// fixed-budget loops. fail must depend only on its trial index (and
// whatever per-point seed the caller closed over).
func (a Adaptive) runRule(budget int, stop func(failures, n int) bool, fail func(k int) (bool, error)) (failures, n int, err error) {
	ch := budget
	if a.Enabled {
		ch = a.chunk()
	}
	for n < budget {
		c := ch
		if n+c > budget {
			c = budget - n
		}
		for k := 0; k < c; k++ {
			bad, err := fail(n + k)
			if err != nil {
				return failures, n, err
			}
			if bad {
				failures++
			}
		}
		n += c
		if a.Enabled && stop(failures, n) {
			break
		}
	}
	return failures, n, nil
}

// run is the epsilon stopping rule: the point ends once the Wilson interval
// around its error rate is tighter than eps — the right rule for sweeps
// whose headline metrics (50%-PER knees, curve shapes) live at the same
// scale as eps.
func (a Adaptive) run(budget int, fail func(k int) (bool, error)) (failures, n int, err error) {
	eps, z := a.eps(), a.z()
	return a.runRule(budget, func(f, n int) bool {
		return WilsonHalfWidth(f, n, z) <= eps
	}, fail)
}

// runThreshold is the threshold-exclusion stopping rule for sweeps whose
// headline is a threshold crossing (fig10/fig11 at 10% error, fig12 at BER
// 1e-3): a point stops only when its Wilson interval excludes thr, i.e.
// its side of the crossing is statistically settled. Points bracketing the
// crossing — the ones interpolation reads — keep their full budget, so the
// reported sensitivity stays faithful to the fixed-budget figure at any
// epsilon; saturated points far from the crossing still stop at the first
// chunks. The plain eps rule would happily stop a low-rate point at an
// estimate of 0 long before it could resolve rates at thr's scale.
func (a Adaptive) runThreshold(budget int, thr float64, fail func(k int) (bool, error)) (failures, n int, err error) {
	z := a.z()
	return a.runRule(budget, func(f, n int) bool {
		nf := float64(n)
		z2 := z * z
		center := (float64(f)/nf + z2/(2*nf)) / (1 + z2/nf)
		half := WilsonHalfWidth(f, n, z)
		return center-half > thr || center+half < thr
	}, fail)
}

// failRate is the error-rate estimate after a run: failures over trials run.
func failRate(failures, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(failures) / float64(n)
}
