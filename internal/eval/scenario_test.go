package eval

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/phy"
)

func TestCoexistenceMetricsPlausible(t *testing.T) {
	r := runExp(t, "coexistence")
	// The LoRa-on-LoRa knee must sit in the neighborhood of the receiver
	// noise floor (§6 power-control story: interference starts to matter
	// when it rivals noise).
	if got := r.Metrics["coex_lora_knee_dBm"]; got < -127 || got > -105 {
		t.Errorf("LoRa-on-LoRa knee = %.0f dBm, want near the noise floor", got)
	}
	// Co-channel interference at -108 dBm (10 dB over the victim) must
	// cripple the link.
	if got := r.Metrics["coex_offset_cochannel_per"]; got < 0.5 {
		t.Errorf("co-channel PER = %.2f, want >= 0.5", got)
	}
	// A short BLE beacon must hurt less than a full-length LoRa packet at
	// the 50% level: its p50 power is higher (or never reached).
	if r.Metrics["coex_ble_p50_dBm"] < r.Metrics["coex_lora_p50_dBm"] {
		t.Errorf("BLE p50 %.0f dBm below LoRa p50 %.0f dBm; short bursts should hurt less",
			r.Metrics["coex_ble_p50_dBm"], r.Metrics["coex_lora_p50_dBm"])
	}
}

func TestMobilityKneeAtHalfBinDoppler(t *testing.T) {
	r := runExp(t, "mobility")
	if got := r.Metrics["mob_per_static"]; got > 0.35 {
		t.Errorf("static PER = %.2f, want a mostly working link", got)
	}
	// The PER cliff must land within one sweep step of the speed whose
	// Doppler is half a chirp bin (~80 m/s at SF8/BW125, 915 MHz).
	knee, halfBin := r.Metrics["mob_knee_mps"], r.Metrics["mob_halfbin_mps"]
	if math.Abs(knee-halfBin) > 20 {
		t.Errorf("mobility knee %.0f m/s, want within 20 of the half-bin speed %.0f", knee, halfBin)
	}
}

func TestScenarioExperimentPenalty(t *testing.T) {
	r := runExp(t, "scenario")
	// The composed default (Rician fading + CFO + drift) must cost
	// sensitivity versus clean AWGN, and the clean curve must still fail
	// below sensitivity.
	if got := r.Metrics["scn_penalty_dB"]; got < 0 {
		t.Errorf("scenario penalty = %.1f dB, want >= 0", got)
	}
}

// TestScenarioExperimentProtocolGeneric runs the composed-scenario RSSI
// sweep with every registered PHY as the victim — the -phy flag's
// contract: any protocol in the registry drives the same Link pipeline
// with its own sensitivity and noise anchors.
func TestScenarioExperimentProtocolGeneric(t *testing.T) {
	e, ok := ByID("scenario")
	if !ok {
		t.Fatal("scenario experiment not registered")
	}
	for _, name := range phy.Names() {
		cfg := quickCfg()
		cfg.PHY = name
		r, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s victim: %v", name, err)
		}
		// The clean curve must anchor near the modem's own sensitivity:
		// its 50%-PER point sits inside the swept ±(4..14) dB margin
		// window around it.
		sens := r.Metrics["scn_sens_dBm"]
		p50 := r.Metrics["clean_p50_dBm"]
		if p50 < sens-6 || p50 > sens+16 {
			t.Errorf("%s: clean 50%%-PER at %.1f dBm, sensitivity anchor %.1f dBm", name, p50, sens)
		}
		if r.Metrics["scn_penalty_dB"] < 0 {
			t.Errorf("%s: composed penalty %.1f dB negative", name, r.Metrics["scn_penalty_dB"])
		}
	}
	cfg := quickCfg()
	cfg.PHY = "wifi"
	if _, err := e.Run(cfg); err == nil {
		t.Error("unregistered -phy accepted")
	}
}

func TestScenarioExperimentRejectsBadSpec(t *testing.T) {
	e, ok := ByID("scenario")
	if !ok {
		t.Fatal("scenario experiment not registered")
	}
	cfg := quickCfg()
	cfg.Scenario = "fading=unobtainium"
	if _, err := e.Run(cfg); err == nil {
		t.Error("bad -scenario spec accepted")
	}
	// Mobility terms pin the link budget to a trajectory, which would
	// silently flatten an RSSI sweep — they must be rejected here and
	// routed to the mobility experiment instead.
	cfg.Scenario = "speed=30"
	if _, err := e.Run(cfg); err == nil {
		t.Error("speed= spec accepted by the RSSI sweep")
	}
}

// TestScenarioSweepsDeterministicAcrossWorkers is the satellite acceptance
// test: the scenario-engine sweeps, serialized exactly as the CLI's
// -bench-json output serializes them, must be byte-for-byte identical at 1
// and 8 workers — PR 1's determinism guarantee extended to composed
// channels (fading draws, CFO jitter, interferer alignment, shadowing).
func TestScenarioSweepsDeterministicAcrossWorkers(t *testing.T) {
	for _, id := range []string{"coexistence", "mobility", "scenario"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var wantJSON []byte
		var wantText string
		for _, workers := range []int{1, 8} {
			r, err := e.Run(Config{Quick: true, Seed: 1, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			got, err := json.Marshal(r.Metrics)
			if err != nil {
				t.Fatalf("%s: metrics not JSON-serializable: %v", id, err)
			}
			if workers == 1 {
				wantJSON, wantText = got, r.Text
				continue
			}
			if !bytes.Equal(got, wantJSON) {
				t.Errorf("%s: metrics JSON differs between 1 and %d workers:\n  1: %s\n  %d: %s",
					id, workers, wantJSON, workers, got)
			}
			if r.Text != wantText {
				t.Errorf("%s: rendered text differs between 1 and %d workers", id, workers)
			}
		}
	}
}
