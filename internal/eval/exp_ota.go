package eval

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/testbed"
)

// updateImages builds the three §5.3 firmware images.
func updateImages(seed int64) (loraImg, bleImg, mcuImg []byte, loraDes, bleDes *fpga.Design) {
	loraDes = fpga.LoRaTRXDesign(8)
	bleDes = fpga.BLEBeaconDesign()
	return fpga.SynthBitstream(loraDes), fpga.SynthBitstream(bleDes),
		fpga.SynthMCUFirmware(78*1024, seed), loraDes, bleDes
}

// CompressionResults reproduces the §5.3 firmware compression table.
func CompressionResults(cfg Config) (*Result, error) {
	loraImg, bleImg, mcuImg, _, _ := updateImages(cfg.Seed)
	entries := []struct {
		name    string
		img     []byte
		paperKB float64
	}{
		{"FPGA bitstream: LoRa modem", loraImg, 99},
		{"FPGA bitstream: BLE beacon", bleImg, 40},
		{"MCU firmware (LoRa/BLE)", mcuImg, 24},
	}
	var rows [][]string
	metrics := map[string]float64{}
	for _, e := range entries {
		u, err := ota.BuildUpdate(ota.TargetFPGA, e.img)
		if err != nil {
			return nil, err
		}
		gotKB := float64(u.CompressedSize()) / 1024
		rows = append(rows, []string{
			e.name,
			fmt.Sprintf("%.0f kB", float64(len(e.img))/1024),
			fmt.Sprintf("%.1f kB", gotKB),
			fmt.Sprintf("%.0f kB", e.paperKB),
		})
		metrics[e.name] = gotKB
	}
	decompress := mcu.DecompressTime(fpga.BitstreamSize)
	rows = append(rows, []string{"Full-bitstream decompression (MCU CPU)", "-",
		fmt.Sprintf("%.0f ms", ms(decompress)), "<= 450 ms"})
	metrics["decompress_ms"] = ms(decompress)
	text := RenderTable([]string{"Image", "Raw", "Compressed (measured)", "Paper"}, rows)
	return &Result{ID: "compression", Title: "Firmware compression", Text: text, Metrics: metrics}, nil
}

// Fig14 programs the 20-node campus testbed over the air with all three
// §5.3 updates and reports the programming-time CDFs.
func Fig14(cfg Config) (*Result, error) {
	loraImg, bleImg, mcuImg, loraDes, bleDes := updateImages(cfg.Seed)
	jobs := []struct {
		name   string
		key    string
		target ota.Target
		img    []byte
		design *fpga.Design
		paperS float64
	}{
		{"FPGA: LoRa", "fpga_lora", ota.TargetFPGA, loraImg, loraDes, 150},
		{"FPGA: BLE", "fpga_ble", ota.TargetFPGA, bleImg, bleDes, 59},
		{"MCU: LoRa/BLE", "mcu", ota.TargetMCU, mcuImg, nil, 39},
	}
	var series []Series
	var rows [][]string
	metrics := map[string]float64{}
	for _, job := range jobs {
		campus := testbed.NewCampus(cfg.Seed)
		u, err := ota.BuildUpdate(job.target, job.img)
		if err != nil {
			return nil, err
		}
		// Fleet programming fans out across nodes; per-node clocks and
		// RNG substreams keep the CDF identical for any worker count.
		results := campus.ProgramAllWorkers(u, job.design, resolveWorkers(cfg.Workers))
		failed := 0
		for _, r := range results {
			if r.Err != nil {
				failed++
			}
		}
		cdf := testbed.CDF(results)
		var s Series
		s.Name = job.name
		for _, p := range cdf {
			s.X = append(s.X, p.Duration.Minutes())
			s.Y = append(s.Y, p.Fraction)
		}
		series = append(series, s)
		mean, err := testbed.MeanDuration(results)
		if err != nil {
			return nil, err
		}
		meanE, err := testbed.MeanEnergy(results)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{
			job.name,
			fmt.Sprintf("%.0f s", mean.Seconds()),
			fmt.Sprintf("%.0f s", job.paperS),
			fmt.Sprintf("%.2f J", meanE),
			fmt.Sprintf("%d/%d", len(results)-failed, len(results)),
		})
		metrics["mean_s_"+job.key] = mean.Seconds()
		metrics["mean_J_"+job.key] = meanE
	}
	text := RenderXY("OTA programming time CDF (20-node campus testbed)",
		"duration (minutes)", "CDF", series, 64, 14)
	text += "\n" + RenderTable([]string{"Update", "Mean (measured)", "Mean (paper)", "Energy", "Programmed"}, rows)
	return &Result{ID: "fig14", Title: "OTA programming CDF", Text: text, Metrics: metrics}, nil
}

// OTAEnergy reproduces the §5.3 energy budget: per-update energy, number of
// updates per battery, and the average power at one update per day.
func OTAEnergy(cfg Config) (*Result, error) {
	loraImg, bleImg, _, loraDes, bleDes := updateImages(cfg.Seed)
	batt := power.DefaultBattery()
	day := 24 * time.Hour

	entries := []struct {
		name         string
		key          string
		img          []byte
		design       *fpga.Design
		paperJ       float64
		paperUpdates float64
		paperAvgUW   float64
	}{
		{"LoRa FPGA update", "lora", loraImg, loraDes, 6.144, 2100, 71},
		{"BLE FPGA update", "ble", bleImg, bleDes, 2.342, 5600, 27},
	}
	var rows [][]string
	metrics := map[string]float64{}
	for _, e := range entries {
		campus := testbed.NewCampus(cfg.Seed + 7)
		node := campus.Nodes[4] // a mid-range node
		u, err := ota.BuildUpdate(ota.TargetFPGA, e.img)
		if err != nil {
			return nil, err
		}
		node.PMU.Ledger().Reset()
		sess := ota.NewSession(node.OTA, campus.RSSI(node), cfg.Seed+99)
		if _, err := sess.Program(u, e.design); err != nil {
			return nil, err
		}
		energy := node.PMU.Ledger().Energy()
		updates := batt.Operations(energy)
		avgW := energy / day.Seconds()
		rows = append(rows, []string{
			e.name,
			fmt.Sprintf("%.2f J (paper %.3f)", energy, e.paperJ),
			fmt.Sprintf("%d (paper %.0f)", updates, e.paperUpdates),
			fmt.Sprintf("%.0f µW (paper %.0f)", avgW*1e6, e.paperAvgUW),
		})
		metrics[e.key+"_J"] = energy
		metrics[e.key+"_updates"] = float64(updates)
		metrics[e.key+"_avg_uW"] = avgW * 1e6
	}
	text := RenderTable([]string{"Update", "Energy", "Updates per 1000 mAh", "Avg power @1/day"}, rows)
	return &Result{ID: "otaenergy", Title: "OTA energy budget", Text: text, Metrics: metrics}, nil
}
