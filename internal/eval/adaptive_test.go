package eval

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
)

func TestWilsonHalfWidth(t *testing.T) {
	if !math.IsInf(WilsonHalfWidth(0, 0, DefaultZ), 1) {
		t.Error("zero trials must give an unbounded interval")
	}
	// The interval tightens monotonically with n at fixed p-hat.
	prev := math.Inf(1)
	for _, n := range []int{4, 8, 16, 64, 256} {
		w := WilsonHalfWidth(n/2, n, DefaultZ)
		if w >= prev {
			t.Errorf("half-width %v at n=%d did not shrink from %v", w, n, prev)
		}
		prev = w
	}
	// Symmetric in failures vs successes.
	if a, b := WilsonHalfWidth(2, 10, DefaultZ), WilsonHalfWidth(8, 10, DefaultZ); a != b {
		t.Errorf("asymmetric: %v vs %v", a, b)
	}
	// Saturated estimates give the tightest interval at a given n.
	if WilsonHalfWidth(0, 8, DefaultZ) >= WilsonHalfWidth(1, 8, DefaultZ) {
		t.Error("saturated interval not tighter than 1/8")
	}
}

// TestAdaptiveSaturatedStopsAtMinTrials is the satellite acceptance test:
// a point pinned at PER 0 or PER 1 stops at exactly the minimum chunk
// count — MinTrials, the first chunk boundary where even a saturated
// Wilson interval meets epsilon — while a point in the interesting region
// keeps burning budget.
func TestAdaptiveSaturatedStopsAtMinTrials(t *testing.T) {
	ad := Adaptive{Enabled: true}
	const budget = 120
	want := ad.MinTrials(budget)
	if want >= budget {
		t.Fatalf("MinTrials(%d) = %d: defaults give saturated points no early stop", budget, want)
	}
	if want%ad.chunk() != 0 {
		t.Fatalf("MinTrials %d is not whole chunks of %d", want, ad.chunk())
	}

	for name, outcome := range map[string]bool{"all-pass": false, "all-fail": true} {
		fails, n, err := ad.run(budget, func(int) (bool, error) { return outcome, nil })
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Errorf("%s: stopped after %d trials, want exactly MinTrials %d", name, n, want)
		}
		if outcome && fails != n || !outcome && fails != 0 {
			t.Errorf("%s: %d failures in %d trials", name, fails, n)
		}
	}

	// At a tight epsilon a 50% point cannot meet the bound inside this
	// budget (it needs z²/4eps² ≈ 384 trials at eps 0.05) and must run to
	// exhaustion, while a pinned point still stops early.
	tight := Adaptive{Enabled: true, Eps: 0.05}
	flip := false
	_, n, err := tight.run(budget, func(int) (bool, error) { flip = !flip; return flip, nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != budget {
		t.Errorf("mid-curve point stopped at %d, want full budget %d", n, budget)
	}
	if _, n, _ = tight.run(budget, func(int) (bool, error) { return false, nil }); n != tight.MinTrials(budget) || n >= budget {
		t.Errorf("tight-eps saturated point ran %d trials, want MinTrials %d < budget", n, tight.MinTrials(budget))
	}

	// Disabled: the full budget runs regardless of outcome.
	off := Adaptive{}
	if _, n, _ := off.run(budget, func(int) (bool, error) { return false, nil }); n != budget {
		t.Errorf("disabled adaptive ran %d trials, want %d", n, budget)
	}
}

// TestAdaptiveIsPrefixOfFullBudget pins the determinism story end to end
// on a real link: the adaptive PER of every sweep point must be computable
// from the first MinTrials..budget packets of the full-budget run — i.e.
// the trials adaptive did run saw exactly the same losses — and the two
// estimates must agree within the configured epsilon.
func TestAdaptiveIsPrefixOfFullBudget(t *testing.T) {
	const budget = 48
	ad := Adaptive{Enabled: true, Eps: 0.25}
	state, err := newLinkState("lora")()
	if err != nil {
		t.Fatal(err)
	}
	sens := state.modem.SensitivityDBm()
	floor := state.modem.NoiseFloorDBm()
	for i, margin := range []float64{-6, -2, 0, 2, 6} {
		sc := func() *channel.Scenario {
			return channel.NewScenario(channel.NewGain(sens+margin), channel.NewNoise(floor))
		}
		seed := TrialSeed(9, i)

		// Full budget, recording every packet outcome.
		state.link = nil
		full, err := state.linkPER(sc(), seed, budget, Adaptive{})
		if err != nil {
			t.Fatal(err)
		}
		losses := make([]bool, budget)
		state.link.Rebind(sc(), seed)
		for k := 0; k < budget; k++ {
			losses[k], err = state.link.Probe(coexPayload, k)
			if err != nil {
				t.Fatal(err)
			}
		}

		// Adaptive run on a fresh binding of the same (scenario, seed).
		state.link.Rebind(sc(), seed)
		fails, n, err := ad.run(budget, func(k int) (bool, error) {
			return state.link.Probe(coexPayload, k)
		})
		if err != nil {
			t.Fatal(err)
		}

		// Prefix property: the adaptive outcomes are the full run's first n.
		prefixFails := 0
		for k := 0; k < n; k++ {
			if losses[k] {
				prefixFails++
			}
		}
		if fails != prefixFails {
			t.Errorf("margin %+.0f dB: adaptive saw %d losses in %d packets, full run's prefix has %d",
				margin, fails, n, prefixFails)
		}
		if diff := math.Abs(failRate(fails, n) - full); diff > ad.Eps {
			t.Errorf("margin %+.0f dB: adaptive PER %.3f vs full %.3f differ by %.3f > eps %.2f",
				margin, failRate(fails, n), full, diff, ad.Eps)
		}
	}
}

// TestAdaptiveSweepsDeterministicAcrossWorkers extends the PR-3 determinism
// guarantee to the sequential-stopping mode: with -adaptive on, the
// scenario-engine sweeps must serialize byte-for-byte identically at 1 and
// 8 workers — the stopping decision depends only on (seed, point, chunk
// results), never on scheduling.
func TestAdaptiveSweepsDeterministicAcrossWorkers(t *testing.T) {
	for _, id := range []string{"coexistence", "mobility", "scenario", "fig10", "fig11", "fig12"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var want []byte
		for _, workers := range []int{1, 8} {
			cfg := Config{Quick: true, Seed: 1, Workers: workers, Adaptive: Adaptive{Enabled: true}}
			r, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			got, err := json.Marshal(r.Metrics)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if workers == 1 {
				want = got
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: adaptive metrics differ between 1 and %d workers:\n  1: %s\n  %d: %s",
					id, workers, want, workers, got)
			}
		}
	}
}

// TestAdaptiveCurvesAgreeWithFullBudget runs the composed-scenario RSSI
// sweep both ways and requires the headline knee metrics to agree within
// one sweep step — the curve-level consequence of every point agreeing
// within epsilon.
func TestAdaptiveCurvesAgreeWithFullBudget(t *testing.T) {
	e, ok := ByID("scenario")
	if !ok {
		t.Fatal("scenario experiment not registered")
	}
	cfg := quickCfg()
	full, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = Adaptive{Enabled: true, Eps: 0.25}
	adapt, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const step = 2.0 // the sweep's RSSI grid spacing in dB
	for _, key := range []string{"scn_p50_dBm", "clean_p50_dBm"} {
		if diff := math.Abs(full.Metrics[key] - adapt.Metrics[key]); diff > step {
			t.Errorf("%s: full %.1f vs adaptive %.1f, differ by %.1f dB > one sweep step",
				key, full.Metrics[key], adapt.Metrics[key], diff)
		}
	}
}
