package eval

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// fig10Params returns the §5.2 LoRa case-study configuration for a
// bandwidth: SF8, 3-byte payloads, transmitted at -13 dBm.
func fig10Params(bw float64, ideal bool) lora.Params {
	return lora.Params{
		SF: 8, BW: bw, CR: lora.CR45, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1, Ideal: ideal,
	}
}

// measurePER runs packets through modulator -> AWGN -> receiver and returns
// the packet error rate at each RSSI. Each RSSI point is one trial of the
// parallel runner: its channel RNG derives only from (seed, point index),
// and each worker demodulates with its own scratch arena, so the PER curve
// is bit-identical for any worker count. The AWGN draw is a sequential
// stream per point, so the adaptive stopping rule's early exit measures an
// exact prefix of the full-budget point.
func measurePER(p lora.Params, rssis []float64, packets int, seed int64, workers int, ad Adaptive) ([]float64, error) {
	mod, err := lora.NewModulator(p)
	if err != nil {
		return nil, err
	}
	rxParams := p
	rxParams.Ideal = false
	floor := channel.NoiseFloorDBm(p.SampleRate(), radio.NoiseFigureDB)
	payload := []byte{0xA5, 0x5A, 0x3C}
	sig, err := mod.Modulate(payload)
	if err != nil {
		return nil, err
	}
	type perState struct {
		demod *lora.Demodulator
		rx    iq.Samples
	}
	return runTrials(workers, len(rssis),
		func() (*perState, error) {
			demod, err := lora.NewDemodulator(rxParams)
			if err != nil {
				return nil, err
			}
			return &perState{demod: demod, rx: make(iq.Samples, len(sig))}, nil
		},
		func(s *perState, i int) (float64, error) {
			ch := channel.NewAWGN(seed+int64(i)*1000, floor)
			failures, n, err := ad.runThreshold(packets, sensThresholdPER, func(int) (bool, error) {
				rx := ch.ApplyInto(s.rx, sig, rssis[i])
				pkt, err := s.demod.Receive(rx)
				return err != nil || !pkt.CRCOK || !bytes.Equal(pkt.Payload, payload), nil
			})
			if err != nil {
				return 0, err
			}
			return failRate(failures, n), nil
		})
}

// sensThresholdPER is the error rate whose RSSI crossing defines the
// paper's sensitivity figures (Figs. 10 and 11). The adaptive runner stops
// a point only once its Wilson interval excludes this threshold, so the
// interpolated sensitivity keeps full fixed-budget fidelity.
const sensThresholdPER = 0.10

// Fig10 evaluates the LoRa modulator: tinySDR's LUT-datapath transmitter
// versus an SX1276-class ideal transmitter, both received by the SX1276
// receiver model, PER vs RSSI at SF8 with 125 and 250 kHz bandwidths.
func Fig10(cfg Config) (*Result, error) {
	packets := 120
	if cfg.Quick {
		packets = 25
	}
	var series []Series
	metrics := map[string]float64{}
	for _, bw := range []float64{250e3, 125e3} {
		sens := lora.SensitivityDBm(8, bw, radio.NoiseFigureDB)
		var rssis []float64
		for m := -5.0; m <= 7; m += 1.5 {
			rssis = append(rssis, sens+m)
		}
		for _, tx := range []struct {
			name  string
			ideal bool
		}{
			{"TinySDR", false},
			{"SX1276", true},
		} {
			p := fig10Params(bw, tx.ideal)
			pers, err := measurePER(p, rssis, packets, cfg.Seed+int64(bw), cfg.Workers, cfg.Adaptive)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("%s: SF8, BW%.0fkHz", tx.name, bw/1e3)
			series = append(series, Series{Name: name, X: rssis, Y: percent(pers)})
			s := Interpolate(rssis, pers, sensThresholdPER)
			metrics[fmt.Sprintf("sens_%s_bw%.0f_dBm", tx.name, bw/1e3)] = s
		}
	}
	text := RenderXY("LoRa modulator evaluation (PER vs RSSI)",
		"RSSI (dBm)", "PER (%)", series, 64, 16)
	text += fmt.Sprintf("\nTinySDR BW125 sensitivity (PER 10%%): %.1f dBm — paper: -126 dBm; SX1276 delta: %.1f dB\n",
		metrics["sens_TinySDR_bw125_dBm"],
		metrics["sens_TinySDR_bw125_dBm"]-metrics["sens_SX1276_bw125_dBm"])
	return &Result{ID: "fig10", Title: "LoRa modulator PER", Text: text, Metrics: metrics}, nil
}

func percent(fracs []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		out[i] = f * 100
	}
	return out
}

// Fig11 evaluates the LoRa demodulator: SX1276-class transmissions of
// random chirp symbols, demodulated by the tinySDR FPGA pipeline;
// chirp-symbol error rate vs RSSI.
func Fig11(cfg Config) (*Result, error) {
	symbols := 600
	if cfg.Quick {
		symbols = 150
	}
	var series []Series
	metrics := map[string]float64{}
	for _, bw := range []float64{250e3, 125e3} {
		p := fig10Params(bw, true) // SX1276-class transmitter
		mod, err := lora.NewModulator(p)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed + int64(bw)))
		shifts := make([]int, symbols)
		for i := range shifts {
			shifts[i] = rng.Intn(p.NumChips())
		}
		sig, err := mod.ModulateSymbols(shifts)
		if err != nil {
			return nil, err
		}
		floor := channel.NoiseFloorDBm(p.SampleRate(), radio.NoiseFigureDB)
		sens := lora.SensitivityDBm(8, bw, radio.NoiseFigureDB)
		margins := sweep(-6, 8, 1.75)
		rssis := make([]float64, len(margins))
		for i, m := range margins {
			rssis[i] = sens + m
		}
		type serState struct {
			demod *lora.Demodulator
			rx    iq.Samples
			one   []int // single-window demod scratch
		}
		symLen := len(sig) / symbols
		sers, err := runTrials(cfg.Workers, len(margins),
			func() (*serState, error) {
				demod, err := lora.NewDemodulator(fig10Params(bw, false))
				if err != nil {
					return nil, err
				}
				return &serState{demod: demod, rx: make(iq.Samples, len(sig)), one: make([]int, 0, 1)}, nil
			},
			func(s *serState, i int) (float64, error) {
				m := margins[i]
				ch := channel.NewAWGN(cfg.Seed+int64(m*100)+int64(bw), floor)
				// Noise is applied to the whole point up front (cheap);
				// the adaptive stopper then trims the expensive part —
				// the per-symbol FFT demod. At OSR 1 the aligned windows
				// are independent, so window-at-a-time demodulation is
				// bit-identical to one DemodAlignedSymbols pass.
				rx := ch.ApplyInto(s.rx, sig, rssis[i])
				errs, n, err := cfg.Adaptive.runThreshold(symbols, sensThresholdPER, func(k int) (bool, error) {
					got := s.demod.DemodAlignedSymbolsInto(s.one, rx[k*symLen:(k+1)*symLen])
					return got[0] != shifts[k], nil
				})
				if err != nil {
					return 0, err
				}
				return failRate(errs, n), nil
			})
		if err != nil {
			return nil, err
		}
		series = append(series, Series{
			Name: fmt.Sprintf("SF8, BW%.0fkHz", bw/1e3), X: rssis, Y: percent(sers)})
		metrics[fmt.Sprintf("sens_bw%.0f_dBm", bw/1e3)] = Interpolate(rssis, sers, sensThresholdPER)
	}
	text := RenderXY("LoRa demodulator evaluation (chirp symbol error rate vs RSSI)",
		"RSSI (dBm)", "SER (%)", series, 64, 16)
	text += fmt.Sprintf("\nBW125 demodulation sensitivity (SER 10%%): %.1f dBm — paper: -126 dBm\n",
		metrics["sens_bw125_dBm"])
	return &Result{ID: "fig11", Title: "LoRa demodulator SER", Text: text, Metrics: metrics}, nil
}

// Table6 reports the FPGA resource usage of the LoRa modem per spreading
// factor from the synthesis model.
func Table6(cfg Config) (*Result, error) {
	var rows [][]string
	metrics := map[string]float64{}
	for sf := 6; sf <= 12; sf++ {
		tx := fpga.LoRaTXDesign(sf)
		rx := fpga.LoRaRXDesign(sf)
		rows = append(rows, []string{
			fmt.Sprintf("%d", sf),
			fmt.Sprintf("%d (%d%%)", tx.LUTs(), tx.UtilizationPct()),
			fmt.Sprintf("%d (%d%%)", rx.LUTs(), rx.UtilizationPct()),
		})
		metrics[fmt.Sprintf("tx_luts_sf%d", sf)] = float64(tx.LUTs())
		metrics[fmt.Sprintf("rx_luts_sf%d", sf)] = float64(rx.LUTs())
	}
	text := RenderTable([]string{"SF", "LoRa TX (LUT)", "LoRa RX (LUT)"}, rows)
	text += fmt.Sprintf("\nPart: LFE5U-25F, %d LUTs; modulator is SF-independent, demodulator grows with the FFT\n",
		fpga.TotalLUTs)
	return &Result{ID: "table6", Title: "FPGA utilization", Text: text, Metrics: metrics}, nil
}
