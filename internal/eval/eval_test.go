package eval

import (
	"math"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{Quick: true, Seed: 1} }

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	r, err := e.Run(quickCfg())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Fatalf("result ID %q != %q", r.ID, id)
	}
	if strings.TrimSpace(r.Text) == "" {
		t.Fatalf("%s: empty rendering", id)
	}
	return r
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %q", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	// Every table and figure of the paper must be covered.
	for _, want := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15a", "fig15b",
	} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Error("unknown experiment found")
	}
}

func TestTable1SleepAdvantage(t *testing.T) {
	r := runExp(t, "table1")
	if r.Metrics["sleep_advantage_x"] < 10000 {
		t.Errorf("sleep advantage = %.0fx, want >= 10000x (paper headline)", r.Metrics["sleep_advantage_x"])
	}
	if math.Abs(r.Metrics["tinysdr_sleep_uW"]-30) > 3 {
		t.Errorf("sleep = %.1f µW", r.Metrics["tinysdr_sleep_uW"])
	}
}

func TestFig2RadioPower(t *testing.T) {
	r := runExp(t, "fig2")
	if got := r.Metrics["tinysdr_tx14_mW"]; got < 170 || got > 190 {
		t.Errorf("TX@14 = %.0f mW, want ≈179", got)
	}
	if got := r.Metrics["tinysdr_rx_mW"]; got != 59 {
		t.Errorf("RX = %.0f mW, want 59", got)
	}
}

func TestTable4Timings(t *testing.T) {
	r := runExp(t, "table4")
	checks := map[string]float64{
		"sleep_to_radio_ms": 22,
		"radio_setup_ms":    1.2,
		"tx_to_rx_ms":       0.045,
		"rx_to_tx_ms":       0.011,
		"freq_switch_ms":    0.220,
	}
	for k, want := range checks {
		if got := r.Metrics[k]; math.Abs(got-want) > want*0.1 {
			t.Errorf("%s = %v, want %v", k, got, want)
		}
	}
}

func TestTable5Total(t *testing.T) {
	r := runExp(t, "table5")
	if got := r.Metrics["total_usd"]; math.Abs(got-54.53) > 0.01 {
		t.Errorf("BOM total = $%.2f, want $54.53", got)
	}
}

func TestFig8SpectrumClean(t *testing.T) {
	r := runExp(t, "fig8")
	if got := r.Metrics["sfdr_dB"]; got < 55 {
		t.Errorf("SFDR = %.1f dB, want > 55 (no unexpected harmonics)", got)
	}
	if got := r.Metrics["peak_offset_MHz"]; math.Abs(got-0.5) > 0.01 {
		t.Errorf("tone at %+.3f MHz, want +0.5", got)
	}
}

func TestFig9PowerCurve(t *testing.T) {
	r := runExp(t, "fig9")
	if got := r.Metrics["p0dBm_mW"]; math.Abs(got-231) > 15 {
		t.Errorf("system power @0 dBm = %.0f mW, want ≈231", got)
	}
	if got := r.Metrics["p14dBm_mW"]; math.Abs(got-283) > 15 {
		t.Errorf("system power @14 dBm = %.0f mW, want ≈283", got)
	}
	// Flat below 0 dBm.
	if d := r.Metrics["p0dBm_mW"] - r.Metrics["pm14dBm_mW"]; d > 10 {
		t.Errorf("curve not flat at low power: delta %.1f mW", d)
	}
	// 2.4 GHz curve slightly above 900 MHz.
	if r.Metrics["p14_24G_mW"] <= r.Metrics["p14dBm_mW"] {
		t.Error("2.4 GHz curve must sit above 900 MHz")
	}
}

func TestFig10Sensitivity(t *testing.T) {
	r := runExp(t, "fig10")
	// Paper: -126 dBm at SF8/BW125; allow the quick-mode Monte Carlo ±2 dB.
	if got := r.Metrics["sens_TinySDR_bw125_dBm"]; math.Abs(got-(-126)) > 2 {
		t.Errorf("BW125 sensitivity = %.1f dBm, want -126 ±2", got)
	}
	// tinySDR within 1 dB of the SX1276-class transmitter.
	d := r.Metrics["sens_TinySDR_bw125_dBm"] - r.Metrics["sens_SX1276_bw125_dBm"]
	if math.Abs(d) > 1 {
		t.Errorf("TinySDR vs SX1276 delta = %.2f dB, want < 1", d)
	}
	// BW250 is ~3 dB less sensitive.
	d = r.Metrics["sens_TinySDR_bw250_dBm"] - r.Metrics["sens_TinySDR_bw125_dBm"]
	if d < 1.5 || d > 4.5 {
		t.Errorf("BW250-BW125 gap = %.1f dB, want ≈3", d)
	}
}

func TestFig11Sensitivity(t *testing.T) {
	r := runExp(t, "fig11")
	// Our full-precision FFT demodulator reaches 10% SER at the
	// theoretical 256-ary noncoherent limit, 2-3 dB below the Semtech
	// silicon's effective -126 dBm. Accept the band between theory and
	// the datasheet point.
	if got := r.Metrics["sens_bw125_dBm"]; got < -131 || got > -125 {
		t.Errorf("demod sensitivity = %.1f dBm, want in [-131, -125]", got)
	}
	// BW250 tracks ~3 dB above BW125.
	gap := r.Metrics["sens_bw250_dBm"] - r.Metrics["sens_bw125_dBm"]
	if gap < 1.5 || gap > 4.5 {
		t.Errorf("BW gap = %.1f dB, want ≈3", gap)
	}
}

func TestFig12BLESensitivity(t *testing.T) {
	r := runExp(t, "fig12")
	if got := r.Metrics["sensitivity_dBm"]; math.Abs(got-(-94)) > 2.5 {
		t.Errorf("BLE sensitivity = %.1f dBm, want -94 ±2.5", got)
	}
	if d := math.Abs(r.Metrics["cc2650_delta_dB"]); d > 4 {
		t.Errorf("CC2650 delta = %.1f dB", d)
	}
}

func TestFig13HopGap(t *testing.T) {
	r := runExp(t, "fig13")
	for _, k := range []string{"gap1_us", "gap2_us"} {
		if got := r.Metrics[k]; got < 220 || got > 300 {
			t.Errorf("%s = %.0f µs, want ≈220", k, got)
		}
	}
}

func TestFig14OTAMeans(t *testing.T) {
	r := runExp(t, "fig14")
	cases := map[string]struct{ want, tol float64 }{
		"mean_s_fpga_lora": {150, 30},
		"mean_s_fpga_ble":  {59, 15},
		"mean_s_mcu":       {39, 10},
	}
	for k, c := range cases {
		if got := r.Metrics[k]; math.Abs(got-c.want) > c.tol {
			t.Errorf("%s = %.0f s, want %.0f ±%.0f", k, got, c.want, c.tol)
		}
	}
}

func TestFig15aSensitivityLoss(t *testing.T) {
	r := runExp(t, "fig15a")
	// Paper: ~2 dB loss for BW125, ~0.5 dB for BW250. With a
	// floating-point receive pipeline the equal-power interferer sits
	// ~13 dB below the noise floor, so the measurable loss is near zero.
	// Assert the reproducible shape: the BW125 chain suffers at least as
	// much as BW250, and both stay small.
	l125, l250 := r.Metrics["loss125_dB"], r.Metrics["loss250_dB"]
	if l125 < l250-0.3 {
		t.Errorf("BW125 loss %.1f dB below BW250 loss %.1f dB; paper ordering violated", l125, l250)
	}
	if l125 > 4.5 || l250 > 3 {
		t.Errorf("losses %.1f / %.1f dB implausibly large", l125, l250)
	}
}

func TestFig15bInterferenceKnee(t *testing.T) {
	r := runExp(t, "fig15b")
	// Paper: degradation sets in around -116 dBm.
	if got := r.Metrics["knee_dBm"]; got < -122 || got > -106 {
		t.Errorf("knee = %.0f dBm, want ≈-116", got)
	}
}

func TestSleepPowerExperiment(t *testing.T) {
	r := runExp(t, "sleep")
	if got := r.Metrics["sleep_uW"]; math.Abs(got-30) > 3 {
		t.Errorf("sleep = %.1f µW", got)
	}
}

func TestLoRaPacketPowerExperiment(t *testing.T) {
	r := runExp(t, "lorapower")
	cases := map[string]struct{ want, tol float64 }{
		"tx_total_mW": {287, 20},
		"tx_radio_mW": {179, 10},
		"rx_total_mW": {186, 15},
		"rx_radio_mW": {59, 3},
	}
	for k, c := range cases {
		if got := r.Metrics[k]; math.Abs(got-c.want) > c.tol {
			t.Errorf("%s = %.0f, want %.0f ±%.0f", k, got, c.want, c.tol)
		}
	}
}

func TestBLEBatteryLifeExperiment(t *testing.T) {
	r := runExp(t, "blebattery")
	// Paper: over 2 years at one beacon per second.
	if got := r.Metrics["bypass_years"]; got < 2 {
		t.Errorf("bypass lifetime = %.1f years, want > 2", got)
	}
	// The FPGA-boot-per-wake ablation must be far worse.
	if r.Metrics["fpga_years"] >= r.Metrics["bypass_years"]/2 {
		t.Errorf("FPGA mode %.1f years not clearly worse than bypass %.1f",
			r.Metrics["fpga_years"], r.Metrics["bypass_years"])
	}
}

func TestCompressionExperiment(t *testing.T) {
	r := runExp(t, "compression")
	if got := r.Metrics["decompress_ms"]; got > 450 {
		t.Errorf("decompress = %.0f ms, exceeds the 450 ms budget", got)
	}
}

func TestOTAEnergyExperiment(t *testing.T) {
	r := runExp(t, "otaenergy")
	if got := r.Metrics["lora_J"]; math.Abs(got-6.144) > 1.6 {
		t.Errorf("LoRa update energy = %.2f J, want ≈6.1", got)
	}
	if got := r.Metrics["lora_updates"]; got < 1500 || got > 3000 {
		t.Errorf("updates per battery = %.0f, want ≈2100", got)
	}
	if got := r.Metrics["lora_avg_uW"]; got < 45 || got > 100 {
		t.Errorf("avg power @1/day = %.0f µW, want ≈71", got)
	}
}

func TestConcurrentResourcesExperiment(t *testing.T) {
	r := runExp(t, "concurrentres")
	if got := r.Metrics["util_pct"]; got != 17 {
		t.Errorf("utilization = %.0f%%, want 17", got)
	}
	if got := r.Metrics["power_mW"]; math.Abs(got-207) > 15 {
		t.Errorf("power = %.0f mW, want ≈207", got)
	}
}

func TestInterpolate(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 0.8, 0.2, 0}
	got := Interpolate(x, y, 0.5)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("Interpolate = %v, want 1.5", got)
	}
	if !math.IsNaN(Interpolate(x, y, 2)) {
		t.Error("non-crossing target must return NaN")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable([]string{"A", "LongHeader"}, [][]string{{"xx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("rule width mismatch")
	}
}

func TestRenderXYEmpty(t *testing.T) {
	out := RenderXY("t", "x", "y", nil, 20, 5)
	if !strings.Contains(out, "no data") {
		t.Error("empty plot must say so")
	}
}
