package eval

import (
	"bytes"
	"fmt"
	"math"

	"github.com/uwsdr/tinysdr/internal/sense"
)

// SenseSweep drives the crowd-sourced spectrum sensing subsystem at fleet
// scale: thousands of mobile nodes walk the campus propagation field,
// each measuring the band through the chunked RX seam and reporting
// quantized spectra over the real wire format into one aggregator. The
// experiment is also the subsystem's determinism gate: the sweep runs at
// the configured pool and again at one worker, and the marshaled
// occupancy maps must be byte-identical — the scaled-up form of the
// property CI pins with unit tests.
func SenseSweep(cfg Config) (*Result, error) {
	nodes, ticks, fft := 10000, 6, 256
	if cfg.Quick {
		nodes, ticks, fft = 1000, 4, 128
	}
	world := sense.DefaultWorld()
	// The fleet covers a fixed 1.5 km stretch regardless of its size —
	// density, not reach, is what scales with crowd size.
	world.NodeStepM = 1500.0 / float64(nodes)
	const thresholdDBm = -85.0

	sw := sense.SweepConfig{
		World: world, FFTSize: fft,
		Nodes: nodes, Ticks: ticks,
		Seed: cfg.Seed, Workers: cfg.Workers,
		ThresholdDBm: thresholdDBm,
	}
	res, err := sense.Sweep(sw)
	if err != nil {
		return nil, err
	}
	one := sw
	one.Workers = 1
	serial, err := sense.Sweep(one)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(res.MapBytes, serial.MapBytes) {
		return nil, fmt.Errorf("eval: sense occupancy map differs between the configured pool and 1 worker")
	}

	var m sense.Map
	if err := m.UnmarshalBinary(res.MapBytes); err != nil {
		return nil, err
	}
	sum := m.Summarize()

	rows := [][]string{
		{"Fleet", fmt.Sprintf("%d nodes × %d ticks (%d-bin spectra)", nodes, ticks, fft)},
		{"Reports ingested", fmt.Sprintf("%d (%.2f MiB over the wire)", res.Reports, float64(res.WireBytes)/(1<<20))},
		{"Occupancy map", fmt.Sprintf("%d×%d cells, %d bytes marshaled", m.Ticks, m.Bins, len(res.MapBytes))},
		{"Determinism", "map byte-identical at the configured pool and at 1 worker"},
		{"Mean occupancy", fmt.Sprintf("%.3f at %g dBm threshold", sum.Occupancy, thresholdDBm)},
		{"Peak power seen", fmt.Sprintf("%.2f dBm", sum.PeakDBm)},
	}
	metrics := map[string]float64{
		"nodes":      float64(nodes),
		"reports":    float64(res.Reports),
		"wire_bytes": float64(res.WireBytes),
		"map_bytes":  float64(len(res.MapBytes)),
		"occupancy":  sum.Occupancy,
		"peak_dbm":   sum.PeakDBm,
	}
	// Per-emitter view: occupancy in each emitter's own bin, averaged over
	// ticks — the map column a regulator would read to find the transmitter.
	for j, e := range world.Emitters {
		bin := fft/2 + int(math.Round(e.FreqHz/world.SampleRate*float64(fft)))
		var occ float64
		for tick := 0; tick < m.Ticks; tick++ {
			occ += m.Cell(tick, bin).Occupancy()
		}
		occ /= float64(m.Ticks)
		rows = append(rows, []string{
			fmt.Sprintf("Emitter %d (%+.0f kHz, duty %.1f)", j, e.FreqHz/1e3, e.Duty),
			fmt.Sprintf("bin %d occupancy %.3f", bin, occ),
		})
		metrics[fmt.Sprintf("emitter%d_occ", j)] = occ
	}

	text := RenderTable([]string{"Quantity", "Value"}, rows)
	return &Result{
		ID: "sense", Title: "Crowd-sourced spectrum sensing sweep",
		Text: text, Metrics: metrics,
	}, nil
}
