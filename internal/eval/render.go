// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5, §6) from the simulation models, and
// renders them as ASCII tables and plots for the CLI and the benchmark
// suite. Monte-Carlo sweeps fan out across a deterministic trial-parallel
// runner (see runner.go and PERFORMANCE.md at the repository root).
package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RenderTable renders rows with aligned columns.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named trace of an XY plot.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguish series in ASCII plots.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderXY renders series as an ASCII scatter plot with axes and a legend.
func RenderXY(title, xlabel, ylabel string, series []Series, width, height int) string {
	var xmin, xmax, ymin, ymax float64
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if math.IsInf(xmin, 1) {
		return title + ": (no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			grid[height-1-row][col] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (%.4g .. %.4g)\n", ylabel, ymin, ymax)
	for _, line := range grid {
		fmt.Fprintf(&b, "  |%s|\n", line)
	}
	fmt.Fprintf(&b, "  +%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   %s (%.4g .. %.4g)\n", xlabel, xmin, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "   %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Interpolate returns the x at which the series crosses the target y,
// scanning in x order (linear interpolation between bracketing points).
// It returns NaN if the series never crosses.
func Interpolate(x, y []float64, target float64) float64 {
	type pt struct{ x, y float64 }
	pts := make([]pt, len(x))
	for i := range x {
		pts[i] = pt{x[i], y[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })
	for i := 1; i < len(pts); i++ {
		y0, y1 := pts[i-1].y, pts[i].y
		if (y0-target)*(y1-target) <= 0 && y0 != y1 {
			frac := (target - y0) / (y1 - y0)
			return pts[i-1].x + frac*(pts[i].x-pts[i-1].x)
		}
	}
	return math.NaN()
}

// Result is one regenerated experiment.
type Result struct {
	// ID is the experiment identifier, e.g. "fig10" or "table6".
	ID string
	// Title describes the experiment.
	Title string
	// Text is the rendered table/plot output.
	Text string
	// Metrics holds the key scalars (sensitivities, powers, durations)
	// for programmatic comparison against the paper.
	Metrics map[string]float64
}

// Config controls experiment execution.
type Config struct {
	// Quick reduces Monte-Carlo trial counts for CI-speed runs.
	Quick bool
	// Seed drives all experiment randomness.
	Seed int64
	// Workers bounds the trial-parallel runner's pool; 0 means
	// runtime.NumCPU(). Results are identical for every value — each
	// trial's randomness is a fixed function of Seed and the trial's
	// index, never of scheduling (see runner.go).
	Workers int
	// Scenario is the composed-channel spec for the "scenario"
	// experiment, in the internal/sim/scenario grammar (e.g.
	// "fading=rician:10,cfo=200,interferer=lora:-110"). Empty selects a
	// mild default.
	Scenario string
	// PHY selects the victim protocol for the protocol-generic
	// experiments (the CLI's -phy flag): any registered phy.Names()
	// entry. Empty selects "lora".
	PHY string
	// Adaptive configures the sequential-stopping Monte-Carlo mode of
	// the PER/SER/BER sweeps (the CLI's -adaptive / -eps flags). The
	// zero value keeps the historical fixed trial budgets.
	Adaptive Adaptive
	// Faults is the base fault spec for the "chaos" experiment, in the
	// internal/fault grammar (the CLI's -faults flag). Empty selects the
	// experiment's default mix; the sweep scales it across intensities.
	Faults string
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: SDR platform comparison", Table1},
		{"fig2", "Fig. 2: radio module power consumption per platform", Fig2},
		{"table2", "Table 2: off-the-shelf I/Q radio modules", Table2},
		{"table3", "Table 3: tinySDR power domains", Table3},
		{"table4", "Table 4: operation timings", Table4},
		{"table5", "Table 5: cost breakdown (1000 units)", Table5},
		{"fig8", "Fig. 8: single-tone transmit spectrum", Fig8},
		{"fig9", "Fig. 9: transmit power consumption sweep", Fig9},
		{"fig10", "Fig. 10: LoRa modulator PER vs RSSI", Fig10},
		{"fig11", "Fig. 11: LoRa demodulator symbol error rate vs RSSI", Fig11},
		{"table6", "Table 6: FPGA utilization for the LoRa modem", Table6},
		{"fig12", "Fig. 12: BLE beacon BER vs RSSI", Fig12},
		{"fig13", "Fig. 13: BLE advertising burst timing", Fig13},
		{"fig14", "Fig. 14: OTA programming time CDF (20-node testbed)", Fig14},
		{"fig15a", "Fig. 15a: concurrent LoRa, equal received power", Fig15a},
		{"fig15b", "Fig. 15b: concurrent LoRa, interference power sweep", Fig15b},
		{"sleep", "§5.1: system sleep power", SleepPower},
		{"lorapower", "§5.2: LoRa packet TX/RX power", LoRaPacketPower},
		{"blebattery", "§5.2: BLE beacon battery lifetime", BLEBatteryLife},
		{"compression", "§5.3: firmware compression results", CompressionResults},
		{"otaenergy", "§5.3: OTA update energy and battery budget", OTAEnergy},
		{"concurrentres", "§6: concurrent demodulation resources and power", ConcurrentResources},
		{"coexistence", "coexistence: PER vs live interferer power (every registered PHY) and carrier offset", Coexistence},
		{"mobility", "mobility: PER vs endpoint speed on the campus downlink", Mobility},
		{"scenario", "composed-scenario PER vs RSSI for any -phy victim (-scenario flag)", ScenarioPER},
		{"tracereplay", "trace store record/replay A/B gate for any -phy victim (-scenario flag)", TraceReplay},
		{"sense", "crowd sensing: fleet spectrum sweep into a workers-invariant occupancy map", SenseSweep},
		{"ablation-broadcast", "ablation: sequential vs broadcast fleet programming (§7)", AblationBroadcast},
		{"fleetscale", "fleet-scale campaigns: broadcast vs unicast across N (§7 at scale)", FleetScale},
		{"chaos", "chaos: completion and repair overhead vs fault intensity (-faults flag)", Chaos},
		{"fleetcrash", "fleet crash harness: kill/restart the control plane at every journal append; campaigns must survive bit-identically", FleetCrash},
		{"ablation-packet", "ablation: OTA packet-size trade-off (§5.3 design point)", AblationPacketSize},
		{"ablation-compression", "ablation: miniLZO vs raw OTA transfer (§3.4)", AblationCompression},
		{"ablation-blocksize", "ablation: compression block size vs MCU SRAM (§3.4)", AblationBlockSize},
		{"ablation-adr", "ablation: rate adaptation benefit (§7)", AblationRateAdaptation},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
