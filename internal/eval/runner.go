package eval

import (
	"github.com/uwsdr/tinysdr/internal/par"
)

// This file adapts the generic worker pool in internal/par to the
// experiment harness. Every sweep in the evaluation (PER vs RSSI, SER
// sweeps, campus node runs) is a set of independent trials whose
// randomness derives only from the configured seed and the trial's index —
// never from execution order — so fanning the trials across workers
// produces bit-identical Result.Metrics for any worker count.
//
// The ported experiments keep their historical per-point seed formulas
// (e.g. seed+i*1000) so their curves stay seed-identical with the
// pre-parallel harness; new sweeps should derive per-trial seeds with
// TrialSeed instead.

// TrialSeed derives the deterministic RNG substream for one trial of a
// sweep, splitting (seed, trialIndex) through SplitMix64.
func TrialSeed(seed int64, trial int) int64 {
	return par.SplitSeed(seed, int64(trial))
}

// resolveWorkers maps a Config.Workers value to a concrete pool size.
func resolveWorkers(workers int) int {
	return par.ResolveWorkers(workers)
}

// runTrials executes fn for trials 0..n-1 across the configured worker
// pool, giving each worker private state (demodulators and their scratch
// arenas are single-goroutine objects). See internal/par for the
// determinism contract.
func runTrials[S, R any](workers, n int, newState func() (S, error), fn func(state S, trial int) (R, error)) ([]R, error) {
	return par.Trials(resolveWorkers(workers), n, newState, fn)
}

// forTrials is runTrials for stateless trial bodies.
func forTrials[R any](workers, n int, fn func(trial int) (R, error)) ([]R, error) {
	return par.Do(resolveWorkers(workers), n, fn)
}

// sweep enumerates the grid points of a linear parameter sweep
// (start, start+step, ... <= stop) ahead of fan-out, so trial indices and
// parameter values stay in lockstep across worker counts. The float
// accumulation matches the legacy inline loops exactly, keeping the
// ported experiments' curves seed-identical.
func sweep(start, stop, step float64) []float64 {
	var out []float64
	for v := start; v <= stop; v += step {
		out = append(out, v)
	}
	return out
}
