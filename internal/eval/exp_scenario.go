package eval

// The scenario-engine sweeps: coexistence (PER vs co-channel interferer
// power and carrier offset, with the interference produced by the live
// modulator of every registered PHY) and mobility (PER vs endpoint speed
// through the campus propagation field). Both run protocol-generically on
// the phy registry and Link pipeline, so every trial's waveform is a fixed
// function of (seed, trial index) and the curves are bit-identical at any
// worker count.

import (
	"fmt"
	"hash/fnv"
	"strings"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/phy"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/sim/scenario"
	"github.com/uwsdr/tinysdr/internal/testbed"
)

// coexPayload is the victim packet used by the scenario sweeps.
var coexPayload = []byte{0xA5, 0x5A, 0x3C}

// victimPHY resolves the -phy selection: empty means the paper's LoRa case
// study.
func victimPHY(cfg Config) string {
	if cfg.PHY == "" {
		return "lora"
	}
	return cfg.PHY
}

// kindSeed derives a stable per-protocol seed offset from the registry
// name, so adding or removing a PHY never reshuffles another protocol's
// curves (an index-based offset would).
func kindSeed(seed int64, kind string) int64 {
	h := fnv.New32a()
	h.Write([]byte(kind))
	return seed + int64(h.Sum32()&0xFFFF)
}

// linkState is the worker-private state of every scenario sweep: one modem
// (playing both roles of the single-goroutine Link pipeline) and the Link
// it keeps across grid points, so the victim waveform is synthesized once
// per worker and only the scenario is rebound per point.
type linkState struct {
	modem phy.Modem
	link  *phy.Link
}

// newLinkState builds per-worker modems for a registered PHY.
func newLinkState(name string) func() (*linkState, error) {
	return func() (*linkState, error) {
		m, err := phy.New(name)
		if err != nil {
			return nil, err
		}
		return &linkState{modem: m}, nil
	}
}

// linkPER binds the worker's Link to a scenario and measures PER over at
// most packets trials, with all channel randomness derived from (seed,
// packet index). The adaptive stopping rule, when enabled, ends the point
// at the first chunk boundary whose Wilson bound is tighter than epsilon;
// because every packet is a fixed function of (seed, index), the adaptive
// measurement is an exact prefix of the full-budget one.
func (s *linkState) linkPER(sc *channel.Scenario, seed int64, packets int, ad Adaptive) (float64, error) {
	if s.link == nil {
		link, err := phy.Open(s.modem, s.modem, sc, seed)
		if err != nil {
			return 0, err
		}
		s.link = link
	} else {
		s.link.Rebind(sc, seed)
	}
	failures, n, err := ad.run(packets, func(k int) (bool, error) {
		return s.link.Probe(coexPayload, k)
	})
	if err != nil {
		return 0, err
	}
	return failRate(failures, n), nil
}

// coexVictim is the victim configuration of the coexistence sweep: the
// paper's SF8 case study at OSR 2, so the front-end FIR is in the loop and
// interferer carrier offsets see a real channel filter. It keeps the LoRa
// modem's calibrated radio profile.
func coexVictim() (*lora.Modem, error) {
	p := lora.DefaultParams()
	p.OSR = 2
	return lora.NewModem(p, radio.SX1276Profile())
}

// kneeAt returns the first x whose y meets or exceeds the threshold, or
// the last x when the curve never crosses (metrics must stay JSON-finite).
func kneeAt(x, y []float64, threshold float64) float64 {
	for i := range x {
		if y[i] >= threshold {
			return x[i]
		}
	}
	return x[len(x)-1]
}

// Coexistence sweeps the victim LoRa link against live co-channel
// interference from every registered PHY: PER vs interferer power per
// protocol, plus PER vs the LoRa interferer's carrier offset — the
// power-control and guard-band questions of §6 asked of the composed
// scenario engine. A newly registered PHY joins the sweep with no changes
// here.
func Coexistence(cfg Config) (*Result, error) {
	packets := 60
	if cfg.Quick {
		packets = 16
	}
	victim, err := coexVictim()
	if err != nil {
		return nil, err
	}
	sig, err := victim.ModulateInto(nil, coexPayload)
	if err != nil {
		return nil, err
	}
	floor := victim.NoiseFloorDBm()
	rssi := victim.SensitivityDBm() + 8
	rate := victim.SampleRate()

	// The interference sources are real modulator output (the same
	// canonical waveforms the -scenario CLI injects), resampled to the
	// victim rate once and shared read-only across workers.
	kinds := phy.Names()
	waves := map[string]iq.Samples{}
	for _, kind := range kinds {
		if waves[kind], err = scenario.DefaultInterfererWaveform(kind, rate); err != nil {
			return nil, err
		}
	}

	// One trial per sweep point: the trial builds its own scenario (the
	// interferer power differs per point) and resets it per packet from
	// (seed, point, packet) alone.
	buildScenario := func(wave iq.Samples, kind string, powerDBm, freqOffHz float64) *channel.Scenario {
		it := channel.NewInterferer(kind, wave, powerDBm, max(len(sig)-len(wave), 1))
		it.FreqOffsetHz = freqOffHz
		it.SampleRate = rate
		return channel.NewScenario(
			channel.NewGain(rssi),
			channel.NewFlatFading(iq.FromDB(12)),
			channel.NewCFO(0, 100, 10, rate),
			it,
			channel.NewNoise(floor),
		)
	}
	newCoexState := func() (*linkState, error) {
		m, err := coexVictim()
		if err != nil {
			return nil, err
		}
		return &linkState{modem: m}, nil
	}

	powers := sweep(-132, -102, 3)
	var series []Series
	metrics := map[string]float64{}
	for _, kind := range kinds {
		wave := waves[kind]
		kind := kind
		pers, err := runTrials(cfg.Workers, len(powers), newCoexState,
			func(s *linkState, i int) (float64, error) {
				sc := buildScenario(wave, kind, powers[i], 0)
				return s.linkPER(sc, TrialSeed(kindSeed(cfg.Seed, kind), i), packets, cfg.Adaptive)
			})
		if err != nil {
			return nil, err
		}
		series = append(series, Series{
			Name: fmt.Sprintf("%s interferer (PER vs power)", kind),
			X:    powers, Y: percent(pers)})
		// The interference-free baseline is estimated from the three
		// weakest points so one Monte-Carlo outlier cannot fake a knee.
		base := (pers[0] + pers[1] + pers[2]) / 3
		metrics["coex_"+kind+"_base_per"] = base
		metrics["coex_"+kind+"_knee_dBm"] = kneeAt(powers, pers, max(2*base, base+0.15))
		metrics["coex_"+kind+"_p50_dBm"] = kneeAt(powers, pers, 0.5)
	}

	// Carrier-offset sweep: the LoRa interferer held 8 dB over the victim
	// budget — a power that cripples the link co-channel — walked off the
	// victim carrier. Anchoring to the budget (not an absolute power)
	// keeps the sweep's relative geometry stable across radio profiles.
	offsets := sweep(0, 75e3, 12.5e3)
	offPower := rssi + 8
	offPers, err := runTrials(cfg.Workers, len(offsets), newCoexState,
		func(s *linkState, i int) (float64, error) {
			sc := buildScenario(waves["lora"], "lora", offPower, offsets[i])
			return s.linkPER(sc, TrialSeed(cfg.Seed+977, i), packets, cfg.Adaptive)
		})
	if err != nil {
		return nil, err
	}
	offKHz := make([]float64, len(offsets))
	for i, o := range offsets {
		offKHz[i] = o / 1e3
	}
	series = append(series, Series{
		Name: fmt.Sprintf("lora interferer @ %d dBm (PER vs carrier offset, kHz)", int(offPower)),
		X:    offKHz, Y: percent(offPers)})
	metrics["coex_offset_cochannel_per"] = offPers[0]
	metrics["coex_offset_max_per"] = offPers[len(offPers)-1]
	metrics["coex_offset_escape_kHz"] = kneeAndBack(offKHz, offPers)

	knees := make([]string, len(kinds))
	for i, kind := range kinds {
		knees[i] = fmt.Sprintf("%s-on-LoRa %.0f dBm", kind, metrics["coex_"+kind+"_knee_dBm"])
	}
	text := RenderXY(
		fmt.Sprintf("Coexistence: SF8/BW125 victim at %.0f dBm under live interference from every registered PHY (%s)",
			rssi, "gain→fading→cfo→interferer→noise"),
		"interferer power (dBm) / carrier offset (kHz)", "PER (%)", series, 64, 16)
	text += fmt.Sprintf("\nknee: %s; offset sweep PER: %.0f%% co-channel, %.0f%% at %.1f kHz (14-tap front end)\n",
		strings.Join(knees, ", "),
		metrics["coex_offset_cochannel_per"]*100, metrics["coex_offset_max_per"]*100,
		offKHz[len(offKHz)-1])
	return &Result{ID: "coexistence", Title: "Coexistence interference sweeps", Text: text, Metrics: metrics}, nil
}

// kneeAndBack returns the first x where the curve falls to 10% or below —
// the offset at which the interferer has left the victim channel — or the
// last x if it never recovers.
func kneeAndBack(x, y []float64) float64 {
	for i := range x {
		if y[i] <= 0.10 {
			return x[i]
		}
	}
	return x[len(x)-1]
}

// Mobility sweeps PER against the endpoint's radial speed on the campus
// testbed link: the scenario composes per-packet path-loss trajectories
// (with the campus shadowing model) and the matching Doppler shift, driving
// the LoRa modem through the phy.Link pipeline. The knee lands where
// Doppler crosses half a chirp bin — the §7 rate-adaptation question
// extended to moving endpoints.
func Mobility(cfg Config) (*Result, error) {
	packets := 40
	if cfg.Quick {
		packets = 12
	}
	probe, err := phy.New("lora")
	if err != nil {
		return nil, err
	}
	p := lora.DefaultParams()
	floor := probe.NoiseFloorDBm()
	campus := testbed.NewCampus(cfg.Seed)
	node := campus.Nodes[len(campus.Nodes)/2]

	speeds := sweep(0, 160, 16)
	pers, err := runTrials(cfg.Workers, len(speeds), newLinkState("lora"),
		func(s *linkState, i int) (float64, error) {
			sc := campus.LinkScenario(node, speeds[i], s.modem.SampleRate(), floor)
			return s.linkPER(sc, TrialSeed(cfg.Seed+1543, i), packets, cfg.Adaptive)
		})
	if err != nil {
		return nil, err
	}

	binHz := p.BW / float64(p.NumChips())
	series := []Series{{
		Name: fmt.Sprintf("node %d at %.0f m (PER vs speed)", node.ID, node.Distance()),
		X:    speeds, Y: percent(pers)}}
	metrics := map[string]float64{
		"mob_per_static":   pers[0],
		"mob_knee_mps":     kneeAt(speeds, pers, 0.5),
		"mob_halfbin_mps":  binHz / 2 * scenario.SpeedOfLight / campus.Model.FreqHz,
		"mob_node_dist_m":  node.Distance(),
		"mob_doppler_knee": scenario.DopplerHz(kneeAt(speeds, pers, 0.5), campus.Model.FreqHz),
	}
	text := RenderXY("Mobility: PER vs radial speed on the campus downlink (mobility→cfo→noise)",
		"speed (m/s)", "PER (%)", series, 64, 14)
	text += fmt.Sprintf("\nstatic PER %.0f%%; link collapses at ≈%.0f m/s — Doppler %.0f Hz vs half-bin %.0f Hz\n",
		pers[0]*100, metrics["mob_knee_mps"], -metrics["mob_doppler_knee"], binHz/2)
	return &Result{ID: "mobility", Title: "Mobility speed sweep", Text: text, Metrics: metrics}, nil
}

// ScenarioPER measures PER vs RSSI for an arbitrary composed scenario
// (Config.Scenario, the CLI's -scenario flag) against the clean-AWGN
// baseline, quantifying the composed impairments' sensitivity penalty. The
// victim protocol is Config.PHY (the CLI's -phy flag): any registered PHY
// runs through the same Link pipeline with its own sensitivity and noise
// anchors.
func ScenarioPER(cfg Config) (*Result, error) {
	packets := 60
	if cfg.Quick {
		packets = 16
	}
	specStr := cfg.Scenario
	if specStr == "" {
		specStr = "fading=rician:10,cfo=200,drift=20"
	}
	spec, err := scenario.Parse(specStr)
	if err != nil {
		return nil, err
	}
	if spec.SpeedMPS != 0 || spec.Mobile {
		// A Mobility stage replaces the Gain stage and pins the link
		// budget to the trajectory, so an RSSI sweep would silently
		// flatten — moving endpoints are the "mobility" experiment's job.
		return nil, fmt.Errorf("eval: -scenario speed/mobile terms are incompatible with the RSSI sweep; use -run mobility")
	}
	name := victimPHY(cfg)
	probe, err := phy.New(name)
	if err != nil {
		return nil, err
	}
	floor := probe.NoiseFloorDBm()
	sens := probe.SensitivityDBm()
	rate := probe.SampleRate()
	margins := sweep(-4, 14, 2)
	rssis := make([]float64, len(margins))
	for i, m := range margins {
		rssis[i] = sens + m
	}

	curves := map[string][]float64{}
	for ci, c := range []struct {
		name string
		spec string
	}{{"scenario", specStr}, {"clean", ""}} {
		cs, err := scenario.Parse(c.spec)
		if err != nil {
			return nil, err
		}
		// Synthesize the interference source once per curve; trials share
		// it read-only and only rebuild the cheap stage chain.
		var interfWave iq.Samples
		if cs.Interferer != "" {
			if interfWave, err = scenario.DefaultInterfererWaveform(cs.Interferer, rate); err != nil {
				return nil, err
			}
		}
		pers, err := runTrials(cfg.Workers, len(rssis), newLinkState(name),
			func(s *linkState, i int) (float64, error) {
				sc, err := cs.Build(scenario.Link{
					SampleRate: rate, RSSIdBm: rssis[i], FloorDBm: floor,
					InterfererWave: interfWave,
				})
				if err != nil {
					return 0, err
				}
				return s.linkPER(sc, TrialSeed(cfg.Seed+int64(ci)*131, i), packets, cfg.Adaptive)
			})
		if err != nil {
			return nil, err
		}
		curves[c.name] = pers
	}

	series := []Series{
		{Name: fmt.Sprintf("composed %s: %s", name, spec.String()), X: rssis, Y: percent(curves["scenario"])},
		{Name: "clean AWGN", X: rssis, Y: percent(curves["clean"])},
	}
	metrics := map[string]float64{
		"scn_p50_dBm":   kneeBelow(rssis, curves["scenario"], 0.5),
		"clean_p50_dBm": kneeBelow(rssis, curves["clean"], 0.5),
		"scn_sens_dBm":  sens,
	}
	metrics["scn_penalty_dB"] = metrics["scn_p50_dBm"] - metrics["clean_p50_dBm"]
	text := RenderXY(fmt.Sprintf("Composed scenario PER vs RSSI — %s victim (%s)", name, spec.String()),
		"RSSI (dBm)", "PER (%)", series, 64, 16)
	text += fmt.Sprintf("\n50%%-PER point: composed %.1f dBm vs clean %.1f dBm — penalty %.1f dB\n",
		metrics["scn_p50_dBm"], metrics["clean_p50_dBm"], metrics["scn_penalty_dB"])
	return &Result{ID: "scenario", Title: "Composed scenario PER", Text: text, Metrics: metrics}, nil
}

// kneeBelow returns the last x (scanning upward) at which the curve is
// still at or above the threshold — the highest RSSI that still fails —
// or the first x when the curve starts below it.
func kneeBelow(x, y []float64, threshold float64) float64 {
	out := x[0]
	for i := range x {
		if y[i] >= threshold {
			out = x[i]
		}
	}
	return out
}
