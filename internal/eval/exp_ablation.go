package eval

import (
	"fmt"
	"math"
	"time"

	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/lzo"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/testbed"
)

// Ablation studies for the design choices DESIGN.md calls out and the §7
// extensions the paper proposes. These go beyond the paper's figures; each
// quantifies one decision against its alternatives.

// AblationBroadcast compares sequential per-node programming (the paper's
// §3.4 AP) against the §7 broadcast MAC on the 20-node campus.
func AblationBroadcast(cfg Config) (*Result, error) {
	img := fpga.SynthMCUFirmware(78*1024, cfg.Seed)
	u, err := ota.BuildUpdate(ota.TargetMCU, img)
	if err != nil {
		return nil, err
	}

	// Sequential baseline: the Fig. 14 procedure; fleet time is the sum.
	campus := testbed.NewCampus(cfg.Seed)
	results := campus.ProgramAll(u, nil)
	var sequential time.Duration
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("sequential: node %d: %w", r.NodeID, r.Err)
		}
		sequential += r.Report.Duration
	}

	// Broadcast: shared transfer plus per-node repair.
	campus2 := testbed.NewCampus(cfg.Seed)
	targets := make([]ota.BroadcastTarget, 0, len(campus2.Nodes))
	for _, n := range campus2.Nodes {
		targets = append(targets, ota.BroadcastTarget{Node: n.OTA, RSSIdBm: campus2.RSSI(n)})
	}
	sess := ota.NewBroadcastSession(targets, cfg.Seed+1)
	brep, err := sess.ProgramFleet(u, nil)
	if err != nil {
		return nil, err
	}
	if n := brep.Failed(); n > 0 {
		return nil, fmt.Errorf("broadcast: %d nodes unprogrammed", n)
	}

	speedup := sequential.Seconds() / brep.FleetTime.Seconds()
	rows := [][]string{
		{"Sequential (paper §3.4)", fmt.Sprintf("%.0f s", sequential.Seconds()),
			fmt.Sprintf("%d", len(u.Chunks)*len(results)), "-"},
		{"Broadcast + repair (§7)", fmt.Sprintf("%.0f s", brep.FleetTime.Seconds()),
			fmt.Sprintf("%d", brep.BroadcastPackets), fmt.Sprintf("%d", brep.RepairPackets)},
	}
	text := RenderTable([]string{"Fleet MAC", "20-node fleet time", "Data packets", "Repairs"}, rows)
	text += fmt.Sprintf("\nbroadcasting the shared transfer programs the fleet %.1fx faster\n", speedup)
	return &Result{ID: "ablation-broadcast", Title: "Sequential vs broadcast programming", Text: text,
		Metrics: map[string]float64{
			"sequential_s": sequential.Seconds(),
			"broadcast_s":  brep.FleetTime.Seconds(),
			"speedup_x":    speedup,
		}}, nil
}

// AblationPacketSize reproduces the §5.3 design decision: "packets of 60 B
// balance the trade-off of protocol overhead versus range". It programs one
// node with different packet sizes at a strong and a sensitivity-level link.
func AblationPacketSize(cfg Config) (*Result, error) {
	img := fpga.SynthMCUFirmware(78*1024, cfg.Seed)
	sizes := []int{24, 40, 60, 120, 240}
	links := []struct {
		name string
		key  string
		rssi float64
	}{
		{"strong (-90 dBm)", "strong", -90},
		{"at range (-120.5 dBm)", "range", -120.5},
	}
	metrics := map[string]float64{}
	var rows [][]string
	for _, size := range sizes {
		u, err := ota.BuildUpdateOptions(ota.TargetMCU, img,
			ota.UpdateOptions{PacketSize: size, Compress: true})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d B", size), fmt.Sprintf("%d", len(u.Chunks))}
		for _, l := range links {
			node := newBenchNode(uint16(size))
			sess := ota.NewSession(node, l.rssi, cfg.Seed+int64(size))
			rep, err := sess.Program(u, nil)
			if err != nil {
				row = append(row, "failed")
				metrics[fmt.Sprintf("s_%d_%s", size, l.key)] = math.Inf(1)
				continue
			}
			row = append(row, fmt.Sprintf("%.0f s", rep.Duration.Seconds()))
			metrics[fmt.Sprintf("s_%d_%s", size, l.key)] = rep.Duration.Seconds()
		}
		rows = append(rows, row)
	}
	text := RenderTable([]string{"Packet", "Packets", links[0].name, links[1].name}, rows)
	text += "\nlarge packets win on strong links; at range their PER erases the gain — 60 B is the compromise (§5.3)\n"
	return &Result{ID: "ablation-packet", Title: "OTA packet-size trade-off", Text: text, Metrics: metrics}, nil
}

func newBenchNode(id uint16) *ota.Node {
	campus := testbed.NewCampus(int64(id) + 31)
	return campus.Nodes[0].OTA
}

// AblationCompression measures what miniLZO buys the OTA system: the same
// LoRa FPGA image shipped compressed versus stored.
func AblationCompression(cfg Config) (*Result, error) {
	design := fpga.LoRaTRXDesign(8)
	img := fpga.SynthBitstream(design)
	modes := []struct {
		name     string
		compress bool
	}{
		{"miniLZO blocks (§3.4)", true},
		{"stored (no compression)", false},
	}
	metrics := map[string]float64{}
	var rows [][]string
	for _, m := range modes {
		u, err := ota.BuildUpdateOptions(ota.TargetFPGA, img,
			ota.UpdateOptions{PacketSize: ota.DataPacketSize, Compress: m.compress})
		if err != nil {
			return nil, err
		}
		campus := testbed.NewCampus(cfg.Seed + 3)
		node := campus.Nodes[2]
		node.PMU.Ledger().Reset()
		sess := ota.NewSession(node.OTA, campus.RSSI(node), cfg.Seed+5)
		rep, err := sess.Program(u, design)
		if err != nil {
			return nil, err
		}
		energy := node.PMU.Ledger().Energy()
		rows = append(rows, []string{
			m.name,
			fmt.Sprintf("%.0f kB", float64(u.CompressedSize())/1024),
			fmt.Sprintf("%.0f s", rep.Duration.Seconds()),
			fmt.Sprintf("%.1f J", energy),
		})
		key := "stored"
		if m.compress {
			key = "lzo"
		}
		metrics[key+"_s"] = rep.Duration.Seconds()
		metrics[key+"_J"] = energy
	}
	text := RenderTable([]string{"Mode", "On-air bytes", "Update time", "Node energy"}, rows)
	text += fmt.Sprintf("\ncompression cuts update time %.1fx and node energy %.1fx\n",
		metrics["stored_s"]/metrics["lzo_s"], metrics["stored_J"]/metrics["lzo_J"])
	return &Result{ID: "ablation-compression", Title: "miniLZO vs raw transfer", Text: text, Metrics: metrics}, nil
}

// AblationBlockSize studies the §3.4 block-size choice: small blocks hurt
// the compression ratio, large blocks exceed the MCU's SRAM working set.
func AblationBlockSize(cfg Config) (*Result, error) {
	img := fpga.SynthBitstream(fpga.LoRaTRXDesign(8))
	// The MCU needs headroom beyond the block buffer: MAC state, radio
	// control and the decompressor's own working set (§5.2's 18% figure).
	const mcuReserve = 18 * mcu.SRAMSize / 100
	metrics := map[string]float64{}
	var rows [][]string
	for _, bs := range []int{5 * 1024, 15 * 1024, 30 * 1024, 60 * 1024} {
		blocks := lzo.CompressBlocks(img, bs)
		size := lzo.CompressedSize(blocks)
		feasible := bs+mcuReserve <= mcu.SRAMSize
		note := "fits SRAM"
		if !feasible {
			note = "exceeds SRAM with MAC resident"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d kB", bs/1024),
			fmt.Sprintf("%.1f kB", float64(size)/1024),
			note,
		})
		metrics[fmt.Sprintf("kB_%d", bs/1024)] = float64(size) / 1024
	}
	text := RenderTable([]string{"Block size", "Compressed image", "MCU feasibility"}, rows)
	text += "\n30 kB is the largest block that leaves the MAC resident in the 64 kB SRAM (§3.4)\n"
	return &Result{ID: "ablation-blocksize", Title: "Compression block size", Text: text, Metrics: metrics}, nil
}

// AblationRateAdaptation answers the §7 research question "Are there
// benefits of rate adaptation?": per-node uplink energy on the campus for
// fixed spreading factors versus ADR.
func AblationRateAdaptation(cfg Config) (*Result, error) {
	campus := testbed.NewCampus(cfg.Seed)
	const (
		bw       = 500e3
		payload  = 20
		uplinkTX = 0.0 // dBm: endpoints save energy on uplinks
		margin   = 3.0
	)
	strategies := []struct {
		name string
		key  string
		sf   func(rssi float64) int
	}{
		{"fixed SF7", "sf7", func(float64) int { return 7 }},
		{"fixed SF12", "sf12", func(float64) int { return 12 }},
		{"ADR (§7)", "adr", func(rssi float64) int {
			return lora.AdaptSF(rssi, bw, radio.SX1276NoiseFigureDB, margin)
		}},
	}
	metrics := map[string]float64{}
	var rows [][]string
	for _, s := range strategies {
		var totalEnergy float64
		delivered := 0
		for _, n := range campus.Nodes {
			// Uplink RSSI at the AP: node TX power replaces the AP's.
			rssi := campus.RSSI(n) - campus.APTXPowerDBm + uplinkTX
			sf := s.sf(rssi)
			p := lora.Params{SF: sf, BW: bw, CR: lora.CR45, PreambleLen: 8, SyncWord: 0x34,
				ExplicitHeader: true, CRC: true, OSR: 1}
			per := lora.PacketErrorRate(p, payload, rssi, radio.SX1276NoiseFigureDB)
			if per > 0.5 {
				continue // link effectively dead at this rate
			}
			delivered++
			attempts := 1 / (1 - per)
			energy := p.TimeOnAir(payload).Seconds() * radio.TXPowerW(uplinkTX) * attempts
			totalEnergy += energy
		}
		mean := math.Inf(1)
		if delivered > 0 {
			mean = totalEnergy / float64(delivered) * 1e3 // mJ
		}
		rows = append(rows, []string{
			s.name,
			fmt.Sprintf("%d/%d", delivered, len(campus.Nodes)),
			fmt.Sprintf("%.2f mJ", mean),
		})
		metrics[s.key+"_delivered"] = float64(delivered)
		metrics[s.key+"_mJ"] = mean
	}
	text := RenderTable([]string{"Strategy", "Nodes delivered", "Mean energy per uplink"}, rows)
	text += "\nADR delivers every node at near-SF7 energy: rate adaptation pays (§7)\n"
	return &Result{ID: "ablation-adr", Title: "Rate adaptation benefit", Text: text, Metrics: metrics}, nil
}
