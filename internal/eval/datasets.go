package eval

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/core"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// Static comparison data from the paper's Tables 1 and 2 and Fig. 2. The
// tinySDR rows are produced by the simulation models, not transcribed.

// PlatformRow is one platform of Table 1.
type PlatformRow struct {
	Name        string
	SleepPowerW float64 // negative = not available
	Standalone  bool
	OTA         bool
	CostUSD     float64
	MaxBWMHz    float64
	ADCBits     int
	SizeCm      string
}

// comparisonPlatforms are the non-tinySDR rows of Table 1.
func comparisonPlatforms() []PlatformRow {
	return []PlatformRow{
		{"USRP E310", 2.820, true, false, 3000, 30.72, 12, "6.8x13.3"},
		{"USRP B200mini", -1, false, false, 733, 30.72, 12, "5x8.3"},
		{"bladeRF 2.0", 0.717, true, false, 720, 30.72, 12, "6.3x12.7"},
		{"LimeSDR Mini", -1, false, false, 159, 30.72, 12, "3.1x6.9"},
		{"PlutoSDR", -1, false, false, 149, 20, 12, "7.9x11.7"},
		{"uSDR", 0.320, true, false, 150, 40, 8, "7x14.5"},
		{"GalioT", 0.350, true, false, 60, 14.4, 8, "2.5x7"},
	}
}

// Table1 renders the platform comparison with tinySDR's row measured from
// the device model.
func Table1(cfg Config) (*Result, error) {
	d := core.New(core.Config{ID: 1})
	d.Sleep()
	sleepW := d.SystemPowerW()

	rows := [][]string{}
	format := func(p PlatformRow) []string {
		sleep := "N/A"
		if p.SleepPowerW >= 0 {
			sleep = fmt.Sprintf("%.2f mW", p.SleepPowerW*1e3)
		}
		return []string{
			p.Name, sleep, yesNo(p.Standalone), yesNo(p.OTA),
			fmt.Sprintf("$%.0f", p.CostUSD),
			fmt.Sprintf("%.2f", p.MaxBWMHz),
			fmt.Sprintf("%d", p.ADCBits),
			p.SizeCm,
		}
	}
	for _, p := range comparisonPlatforms() {
		rows = append(rows, format(p))
	}
	tiny := PlatformRow{
		Name: "TinySDR", SleepPowerW: sleepW, Standalone: true, OTA: true,
		CostUSD: bomTotalUSD(), MaxBWMHz: radio.SampleRate / 1e6,
		ADCBits: radio.ADCBits, SizeCm: "3x5",
	}
	rows = append(rows, format(tiny))

	worstRatio := 1e18
	for _, p := range comparisonPlatforms() {
		if p.SleepPowerW > 0 {
			if r := p.SleepPowerW / sleepW; r < worstRatio {
				worstRatio = r
			}
		}
	}
	text := RenderTable(
		[]string{"Platform", "Sleep", "Standalone", "OTA", "Cost", "BW (MHz)", "ADC", "Size (cm)"},
		rows)
	text += fmt.Sprintf("\ntinySDR sleep power: %.1f µW — %.0fx below the best existing platform\n",
		sleepW*1e6, worstRatio)
	return &Result{
		ID: "table1", Title: "SDR platform comparison", Text: text,
		Metrics: map[string]float64{
			"tinysdr_sleep_uW":  sleepW * 1e6,
			"sleep_advantage_x": worstRatio,
			"tinysdr_cost_usd":  tiny.CostUSD,
		},
	}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// RadioModulePower is one platform of Fig. 2 (radio module draw only).
type RadioModulePower struct {
	Name       string
	TXPowerDBm float64
	TXW, RXW   float64
}

// Fig2 renders the per-platform radio module power comparison, with the
// tinySDR row taken from the AT86RF215 model.
func Fig2(cfg Config) (*Result, error) {
	rows := []RadioModulePower{
		{"UBX 40 (X310)", 14, 1.50, 1.20},
		{"USRP E310", 10, 0.94, 0.60},
		{"USRP B200", 10, 0.78, 0.50},
		{"bladeRF 2.0", 10, 0.75, 0.46},
		{"LimeSDR Mini", 10, 0.58, 0.38},
		{"Pluto SDR", 10, 0.55, 0.30},
		{"uSDR", 14, 0.40, 0.28},
		{"GalioT", -1e9, -1, 0.28}, // receive-only
	}
	tinyTX := radio.TXPowerW(14)
	tinyRX := 59e-3
	table := [][]string{}
	for _, r := range rows {
		tx := "no TX"
		if r.TXW >= 0 {
			tx = fmt.Sprintf("%.0f mW @ %.0f dBm", r.TXW*1e3, r.TXPowerDBm)
		}
		table = append(table, []string{r.Name, tx, fmt.Sprintf("%.0f mW", r.RXW*1e3)})
	}
	table = append(table, []string{"TinySDR",
		fmt.Sprintf("%.0f mW @ 14 dBm", tinyTX*1e3),
		fmt.Sprintf("%.0f mW", tinyRX*1e3)})
	text := RenderTable([]string{"Platform", "TX", "RX"}, table)
	text += fmt.Sprintf("\ntinySDR radio: %.0f mW TX @14 dBm, %.0f mW RX — ≈5x below gateway-class I/Q radios\n",
		tinyTX*1e3, tinyRX*1e3)
	return &Result{
		ID: "fig2", Title: "Radio module power", Text: text,
		Metrics: map[string]float64{
			"tinysdr_tx14_mW": tinyTX * 1e3,
			"tinysdr_rx_mW":   tinyRX * 1e3,
		},
	}, nil
}

// Table2 renders the I/Q radio chip comparison (§3.1.1).
func Table2(cfg Config) (*Result, error) {
	rows := [][]string{
		{"AD9361", "70-6000", "262", "$282"},
		{"AD9363", "325-3800", "262", "$123"},
		{"AD9364", "70-6000", "262", "$210"},
		{"LMS7002M", "10-3500", "378", "$110"},
		{"MAX2831", "2400-2500", "276", "$9"},
		{"SX1257", "862-1020", "54", "$7.5"},
		{"AT86RF215", "389.5-510, 779-1020, 2400-2483", "50", "$5.5"},
	}
	text := RenderTable([]string{"I/Q radio", "Frequency (MHz)", "RX power (mW)", "Cost"}, rows)
	text += "\nAT86RF215: the only chip covering both ISM bands under $10 and under 100 mW\n"
	return &Result{ID: "table2", Title: "I/Q radio modules", Text: text,
		Metrics: map[string]float64{"at86rf215_rx_mW": 50, "at86rf215_cost": 5.5}}, nil
}

// Table3 renders the power-domain inventory from the PMU configuration.
func Table3(cfg Config) (*Result, error) {
	var rows [][]string
	for _, d := range power.Domains() {
		comps := ""
		for i, c := range d.Components {
			if i > 0 {
				comps += ", "
			}
			comps += c
		}
		rows = append(rows, []string{
			d.Domain.String(), fmt.Sprintf("%.1f V", d.VoltageV), d.Regulator,
			fmt.Sprintf("%.2f µA", d.QuiescentA*1e6),
			fmt.Sprintf("%.2f µA", d.ShutdownA*1e6),
			comps,
		})
	}
	text := RenderTable([]string{"Domain", "Voltage", "Regulator", "Iq on", "Iq off", "Components"}, rows)
	return &Result{ID: "table3", Title: "Power domains", Text: text,
		Metrics: map[string]float64{"domains": float64(len(power.Domains()))}}, nil
}

// BOMLine is one Table 5 entry.
type BOMLine struct {
	Group, Component string
	PriceUSD         float64
}

// BOM returns the Table 5 cost breakdown at 1000 units.
func BOM() []BOMLine {
	return []BOMLine{
		{"DSP", "FPGA (LFE5U-25F)", 8.69},
		{"DSP", "Oscillator", 0.90},
		{"IQ front-end", "Radio (AT86RF215)", 5.08},
		{"IQ front-end", "Crystal", 0.53},
		{"IQ front-end", "2.4 GHz balun", 0.36},
		{"IQ front-end", "Sub-GHz balun", 0.30},
		{"Backbone", "Radio (SX1276)", 4.50},
		{"Backbone", "Crystal", 0.40},
		{"Backbone", "Flash memory", 1.60},
		{"MAC", "MCU (MSP432P401R)", 3.89},
		{"MAC", "Crystals", 0.68},
		{"RF", "Switch (ADG904)", 3.14},
		{"RF", "Sub-GHz PA (SE2435L)", 1.54},
		{"RF", "2.4 GHz PA (SKY66112)", 1.72},
		{"Power", "Regulators", 3.70},
		{"Support", "Passives and misc", 4.50},
		{"Production", "PCB fabrication", 3.00},
		{"Production", "Assembly", 10.00},
	}
}

func bomTotalUSD() float64 {
	var sum float64
	for _, l := range BOM() {
		sum += l.PriceUSD
	}
	return sum
}

// Table5 renders the cost breakdown and total.
func Table5(cfg Config) (*Result, error) {
	var rows [][]string
	for _, l := range BOM() {
		rows = append(rows, []string{l.Group, l.Component, fmt.Sprintf("$%.2f", l.PriceUSD)})
	}
	total := bomTotalUSD()
	rows = append(rows, []string{"Total", "", fmt.Sprintf("$%.2f", total)})
	text := RenderTable([]string{"Group", "Component", "Price"}, rows)
	return &Result{ID: "table5", Title: "Cost breakdown", Text: text,
		Metrics: map[string]float64{"total_usd": total}}, nil
}
