package eval

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"github.com/uwsdr/tinysdr/internal/par"
	"github.com/uwsdr/tinysdr/internal/phy"
	"github.com/uwsdr/tinysdr/internal/sim/scenario"
	"github.com/uwsdr/tinysdr/internal/trace"
)

// TraceReplay exercises the record/replay trace store end to end as a
// cross-version A/B experiment: record the -phy victim through the
// composed -scenario channel, round-trip the capture through an on-disk
// store (Put, GC, Get), replay it at the configured worker count AND at
// one worker, and require every replayed metric to be byte-identical to
// the recorded run. The table also reports what the store costs: raw
// capture size, lzo-compressed size on disk, and blob deduplication.
func TraceReplay(cfg Config) (*Result, error) {
	phyName := cfg.PHY
	if phyName == "" {
		phyName = "lora"
	}
	spec := cfg.Scenario
	if spec == "" {
		spec = "fading=rician:12,cfojitter=50"
	}
	packets := 16
	if cfg.Quick {
		packets = 6
	}

	tx, err := phy.New(phyName)
	if err != nil {
		return nil, err
	}
	rx, err := phy.New(phyName)
	if err != nil {
		return nil, err
	}
	parsed, err := scenario.Parse(spec)
	if err != nil {
		return nil, err
	}
	sc, err := parsed.Build(scenario.Link{
		SampleRate: rx.SampleRate(),
		RSSIdBm:    rx.SensitivityDBm() + 6,
		FloorDBm:   rx.NoiseFloorDBm(),
	})
	if err != nil {
		return nil, err
	}
	link, err := phy.Open(tx, rx, sc, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tr, err := trace.Record(link, trace.Meta{
		PHY:        phyName,
		Seed:       cfg.Seed,
		SampleRate: rx.SampleRate(),
		Bits:       13,
		Scenario:   spec,
		Payload:    []byte("tinysdr-phy-golden"),
	}, packets)
	if err != nil {
		return nil, err
	}

	// Round-trip through a throwaway on-disk store, including a GC pass
	// (which must remove nothing while the manifest is live).
	dir, err := os.MkdirTemp("", "tinysdr-trace-eval")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := trace.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	if err := store.Put("eval", tr); err != nil {
		return nil, err
	}
	removed, err := store.GC()
	if err != nil {
		return nil, err
	}
	if len(removed) != 0 {
		return nil, fmt.Errorf("eval: gc removed %d live blobs", len(removed))
	}
	stored, err := store.Get("eval")
	if err != nil {
		return nil, err
	}

	// The A/B gate proper: replay at the configured pool and at one
	// worker; both must reproduce the recorded metrics to the last bit.
	recorded := tr.Manifest.Stats()
	workerCounts := []int{par.ResolveWorkers(cfg.Workers), 1}
	for _, workers := range workerCounts {
		if err := trace.Verify(stored, workers); err != nil {
			return nil, fmt.Errorf("eval: replay at %d workers diverged: %w", workers, err)
		}
		st, err := trace.Replay(stored, workers)
		if err != nil {
			return nil, err
		}
		if math.Float64bits(st.PER) != math.Float64bits(recorded.PER) ||
			math.Float64bits(st.RSSIdBm) != math.Float64bits(recorded.RSSIdBm) {
			return nil, fmt.Errorf("eval: replay stats at %d workers not byte-identical", workers)
		}
	}

	rawBytes := 0
	for _, b := range stored.Blobs {
		rawBytes += len(b.Codes)
	}
	storedBytes := 0
	blobDir := filepath.Join(store.Dir(), "blobs")
	entries, err := os.ReadDir(blobDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		storedBytes += int(info.Size())
	}
	ratio := float64(rawBytes) / float64(storedBytes)
	dedup := packets - len(stored.Blobs)

	rows := [][]string{
		{"Victim / scenario", fmt.Sprintf("%s / %q", phyName, spec)},
		{"Packets recorded", fmt.Sprintf("%d (PER %.3f, RSSI %.2f dBm)", recorded.Packets, recorded.PER, recorded.RSSIdBm)},
		// The rendered text must itself be worker-count independent (the
		// runner's determinism contract covers full stdout), so the row
		// does not name the resolved pool size.
		{"Replay determinism", "byte-identical at the configured pool and at 1 worker"},
		{"Raw capture", fmt.Sprintf("%d bytes in %d blobs (%d deduplicated)", rawBytes, len(stored.Blobs), dedup)},
		{"On disk (lzo)", fmt.Sprintf("%d bytes, ratio %.2fx", storedBytes, ratio)},
	}
	text := RenderTable([]string{"Quantity", "Value"}, rows)
	return &Result{ID: "tracereplay", Title: "Trace record/replay A/B gate", Text: text,
		Metrics: map[string]float64{
			"packets":           float64(recorded.Packets),
			"per":               recorded.PER,
			"rssi_dBm":          recorded.RSSIdBm,
			"raw_bytes":         float64(rawBytes),
			"stored_bytes":      float64(storedBytes),
			"compression_ratio": ratio,
			"blobs":             float64(len(stored.Blobs)),
		}}, nil
}
