package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"

	"github.com/uwsdr/tinysdr/internal/fleet"
)

// FleetCrash is the control-plane chaos harness: it kill-and-restarts the
// journal-backed fleet server at every reachable journal-append boundary
// of a campaign's lifecycle and verifies that no crash point can lose a
// campaign or corrupt its result. For each crash point k the harness arms
// the server's deterministic kill switch (die immediately after the k-th
// journal record), schedules the reference campaign, lets the crash fire
// mid-execution, then reopens the state dir exactly as a restarted
// process would and waits the recovered campaign out. Three invariants
// are scored, and all must hold at every point:
//
//	survived   the campaign exists after restart and ends done/failed/
//	           canceled — never lost, never wedged
//	bit-equal  the recovered Result is byte-identical to an uninterrupted
//	           run of the same spec (the journal resume seam adds nothing
//	           and loses nothing)
//	min work   recovery re-executes only shards the journal does not
//	           already hold
//
// A final round crashes a server running several campaigns at once and
// requires every one of them to survive to its bit-identical result.
func FleetCrash(cfg Config) (*Result, error) {
	spec := fleet.Spec{
		Seed:      cfg.Seed,
		Nodes:     80,
		ShardSize: 20,
		Mode:      fleet.ModeBroadcast,
		Workers:   resolveWorkers(cfg.Workers),
	}
	if cfg.Quick {
		spec.Nodes = 40
	}
	shards := (spec.Nodes + spec.ShardSize - 1) / spec.ShardSize
	// Journal appends of one uninterrupted campaign: created, started, one
	// per shard, done. Crashing after the last append is a completed
	// campaign; every earlier point interrupts it somewhere real.
	appends := shards + 3

	golden, err := fleet.Run(spec)
	if err != nil {
		return nil, err
	}
	goldenJSON, err := json.Marshal(golden)
	if err != nil {
		return nil, err
	}

	var rows [][]string
	metrics := map[string]float64{}
	survived, bitEqual := 0, 0
	reexecuted := 0
	for k := 1; k <= appends; k++ {
		row, err := crashOnce(spec, k, goldenJSON)
		if err != nil {
			return nil, fmt.Errorf("eval: crash point %d: %w", k, err)
		}
		if row.survived {
			survived++
		}
		if row.bitEqual {
			bitEqual++
		}
		reexecuted += row.rerun
		rows = append(rows, []string{
			fmt.Sprintf("%d/%d", k, appends),
			row.phase,
			fmt.Sprintf("%d", row.shardsJournaled),
			fmt.Sprintf("%d", row.rerun),
			yesNo(row.survived),
			yesNo(row.bitEqual),
		})
	}
	metrics["crash_points"] = float64(appends)
	metrics["survived"] = float64(survived)
	metrics["bit_equal"] = float64(bitEqual)
	metrics["shards_reexecuted"] = float64(reexecuted)
	// The minimum possible re-execution: a crash between shard boundaries
	// loses at most the shards not yet journaled, summed over the sweep.
	minRerun := 0
	for k := 1; k <= appends; k++ {
		minRerun += shards - shardsJournaledAt(k, shards)
	}
	metrics["shards_reexecuted_min"] = float64(minRerun)

	multi, err := crashMultiCampaign(cfg, spec)
	if err != nil {
		return nil, err
	}
	metrics["multi_campaigns"] = float64(multi.total)
	metrics["multi_survived"] = float64(multi.survived)
	metrics["multi_bit_equal"] = float64(multi.bitEqual)

	text := RenderTable(
		[]string{"Crash after", "Phase", "Shards journaled", "Shards re-run", "Survived", "Bit-equal"}, rows)
	text += fmt.Sprintf(
		"\n%d-shard campaign, kill -9 after every journal append: %d/%d survived, %d/%d bit-equal, %d shards re-executed (floor %d)\n",
		shards, survived, appends, bitEqual, appends, reexecuted, minRerun)
	text += fmt.Sprintf(
		"multi-campaign round: %d campaigns through one crash, %d survived, %d bit-equal\n",
		multi.total, multi.survived, multi.bitEqual)
	if survived != appends || bitEqual != appends ||
		multi.survived != multi.total || multi.bitEqual != multi.total {
		return nil, fmt.Errorf("eval: fleetcrash invariant violated:\n%s", text)
	}
	return &Result{
		ID:      "fleetcrash",
		Title:   "Fleet crash harness: campaign durability across control-plane kills",
		Text:    text,
		Metrics: metrics,
	}, nil
}

type crashRow struct {
	phase           string
	shardsJournaled int
	rerun           int
	survived        bool
	bitEqual        bool
}

// shardsJournaledAt maps a crash point (appends so far) to how many
// shard-done records the journal holds: appends 1 and 2 are created and
// started, then one shard per append until done.
func shardsJournaledAt(k, shards int) int {
	done := k - 2
	if done < 0 {
		done = 0
	}
	if done > shards {
		done = shards
	}
	return done
}

func crashPhase(k, shards int) string {
	switch {
	case k == 1:
		return "after created"
	case k == 2:
		return "after started"
	case k <= shards+2:
		return fmt.Sprintf("after shard %d", k-3)
	default:
		return "after done"
	}
}

// crashOnce runs one kill/restart cycle at crash point k and scores it.
func crashOnce(spec fleet.Spec, k int, goldenJSON []byte) (crashRow, error) {
	shards := (spec.Nodes + spec.ShardSize - 1) / spec.ShardSize
	row := crashRow{phase: crashPhase(k, shards)}
	dir, err := os.MkdirTemp("", "tinysdr-fleetcrash")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)

	s1, err := fleet.OpenServer(dir)
	if err != nil {
		return row, err
	}
	s1.CrashAfterAppends(k)
	c, err := s1.Create(spec)
	if err != nil {
		return row, err
	}
	<-s1.Crashed()

	s2, err := fleet.OpenServer(dir)
	if err != nil {
		return row, fmt.Errorf("recovering state dir: %w", err)
	}
	defer s2.Drain(context.Background())
	recovered, ok := s2.Get(c.ID)
	if !ok {
		return row, nil // lost: survived stays false
	}
	row.shardsJournaled = shardsJournaledAt(k, shards)
	if recovered.Status != fleet.StatusDone {
		// Still in flight: the journaled shard count is the resume point.
		row.shardsJournaled = recovered.ShardsDone
	}
	row.rerun = shards - row.shardsJournaled
	if row.rerun < 0 {
		row.rerun = 0
	}
	fin, err := s2.Wait(context.Background(), c.ID)
	if err != nil {
		return row, err
	}
	switch fin.Status {
	case fleet.StatusDone, fleet.StatusFailed, fleet.StatusCanceled:
		row.survived = true
	}
	if fin.Status == fleet.StatusDone && fin.Result != nil {
		got, err := json.Marshal(fin.Result)
		if err != nil {
			return row, err
		}
		row.bitEqual = bytes.Equal(got, goldenJSON)
	}
	return row, nil
}

type multiRow struct{ total, survived, bitEqual int }

// crashMultiCampaign schedules several campaigns on one server, kills it
// mid-stream, and requires every campaign — running, queued, or done —
// to survive recovery to its bit-identical result.
func crashMultiCampaign(cfg Config, base fleet.Spec) (multiRow, error) {
	n := 4
	if cfg.Quick {
		n = 3
	}
	out := multiRow{total: n}
	specs := make([]fleet.Spec, n)
	goldens := make([][]byte, n)
	for i := range specs {
		specs[i] = base
		specs[i].Seed = base.Seed + int64(i)
		res, err := fleet.Run(specs[i])
		if err != nil {
			return out, err
		}
		if goldens[i], err = json.Marshal(res); err != nil {
			return out, err
		}
	}

	dir, err := os.MkdirTemp("", "tinysdr-fleetcrash-multi")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	s1, err := fleet.OpenServer(dir)
	if err != nil {
		return out, err
	}
	// Land the kill inside the second campaign's execution: past the first
	// campaign's full journal plus the creates that race ahead of it.
	shards := (base.Nodes + base.ShardSize - 1) / base.ShardSize
	s1.CrashAfterAppends(n + (shards + 2) + 2)
	ids := make([]string, n)
	for i, spec := range specs {
		c, err := s1.Create(spec)
		if err != nil {
			return out, err
		}
		ids[i] = c.ID
	}
	<-s1.Crashed()

	s2, err := fleet.OpenServer(dir)
	if err != nil {
		return out, fmt.Errorf("recovering multi-campaign state dir: %w", err)
	}
	defer s2.Drain(context.Background())
	for i, id := range ids {
		fin, err := s2.Wait(context.Background(), id)
		if err != nil {
			return out, err
		}
		switch fin.Status {
		case fleet.StatusDone, fleet.StatusFailed, fleet.StatusCanceled:
			out.survived++
		}
		if fin.Status == fleet.StatusDone && fin.Result != nil {
			got, err := json.Marshal(fin.Result)
			if err != nil {
				return out, err
			}
			if bytes.Equal(got, goldens[i]) {
				out.bitEqual++
			}
		}
	}
	return out, nil
}
