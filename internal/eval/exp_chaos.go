package eval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/uwsdr/tinysdr/internal/fault"
	"github.com/uwsdr/tinysdr/internal/fleet"
)

// DefaultChaosFaults is the base fault mix the chaos sweep scales when the
// CLI does not pass -faults: a little of every injectable kind, at rates
// where the self-healing protocol keeps most of the fleet programmed at 1x
// and visibly degrades by 4x.
const DefaultChaosFaults = "crash=0.0005,flashfail=0.01,bitrot=0.002,desync=0.03:4,duty=0.05,apoutage=0.002:8"

// ChaosQuorum is the completion fraction a chaos campaign targets: the
// campaign counts as met when 80% of the fleet programs, degrading
// gracefully where an all-or-nothing campaign would abort.
const ChaosQuorum = 0.8

// Chaos sweeps fault intensity against campaign completion and repair
// air-time overhead: the base fault spec (Config.Faults or the default mix)
// is scaled across intensities and each point runs a self-healing broadcast
// campaign (multi-round NACK repair, backoff, retry budgets) against a
// ChaosQuorum quorum. The 0x point runs the same healing protocol with no
// faults, so the overhead column isolates what the faults — not the
// protocol — cost in air bytes.
func Chaos(cfg Config) (*Result, error) {
	base := cfg.Faults
	if base == "" {
		base = DefaultChaosFaults
	}
	bspec, err := fault.Parse(base)
	if err != nil {
		return nil, err
	}
	if !bspec.Enabled() {
		return nil, fmt.Errorf("eval: chaos needs a fault spec that injects something (got %q)", base)
	}

	scales := []float64{0, 0.25, 0.5, 1, 2, 4}
	nodes := 60
	if cfg.Quick {
		scales = []float64{0, 1, 4}
		nodes = 20
	}

	run := func(x float64) (*fleet.Result, error) {
		spec := fleet.Spec{
			Seed:      cfg.Seed,
			Nodes:     nodes,
			ShardSize: 20,
			Mode:      fleet.ModeBroadcast,
			Workers:   resolveWorkers(cfg.Workers),
			Quorum:    ChaosQuorum,
			// A fixed nonzero budget keeps the 0x point on the healing
			// protocol (so overhead compares like with like) and caps how
			// hard the repair loop fights for a dying node.
			RetryBudget: 2048,
		}
		if x > 0 {
			spec.Faults = bspec.Scale(x).String()
		}
		return fleet.Run(spec)
	}

	baseline, err := run(0)
	if err != nil {
		return nil, err
	}

	var rows [][]string
	var sFrac, sOverhead Series
	sFrac.Name = "completion frac"
	sOverhead.Name = "air overhead (x)"
	metrics := map[string]float64{}
	classTotals := map[string]int{}
	for _, x := range scales {
		res := baseline
		if x > 0 {
			if res, err = run(x); err != nil {
				return nil, err
			}
		}
		overhead := float64(res.AirBytes) / float64(baseline.AirBytes)
		met := "no"
		if res.QuorumMet {
			met = "yes"
		}
		allOrNothing := "no"
		if res.Failed == 0 {
			allOrNothing = "yes"
		}
		var classes []string
		//lint:detok order-insensitive: classes are sorted below and classTotals addition commutes
		for c, n := range res.Failures {
			classes = append(classes, fmt.Sprintf("%s:%d", c, n))
			classTotals[c] += n
		}
		sort.Strings(classes)
		classCol := strings.Join(classes, " ")
		if classCol == "" {
			classCol = "-"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%gx", x),
			fmt.Sprintf("%d/%d", res.Completed, nodes),
			fmt.Sprintf("%.2f", res.CompletionFrac),
			met,
			allOrNothing,
			fmt.Sprintf("%.0f kB", float64(res.AirBytes)/1e3),
			fmt.Sprintf("%.2fx", overhead),
			classCol,
		})
		sFrac.X = append(sFrac.X, x)
		sFrac.Y = append(sFrac.Y, res.CompletionFrac)
		sOverhead.X = append(sOverhead.X, x)
		sOverhead.Y = append(sOverhead.Y, overhead)
		key := fmt.Sprintf("%g", x)
		metrics["completion_frac_"+key] = res.CompletionFrac
		metrics["air_overhead_x_"+key] = overhead
		if res.QuorumMet {
			metrics["quorum_met_"+key] = 1
		} else {
			metrics["quorum_met_"+key] = 0
		}
	}
	//lint:detok order-insensitive map-to-map transfer; metrics keys are sorted at render time
	for c, n := range classTotals {
		metrics["failures_"+strings.ReplaceAll(c, "-", "_")] = float64(n)
	}

	text := RenderXY(
		fmt.Sprintf("Chaos campaign vs fault intensity (%d nodes, quorum %.0f%%, base %s)",
			nodes, ChaosQuorum*100, bspec),
		"fault intensity (x base spec)", "completion frac / air overhead",
		[]Series{sFrac, sOverhead}, 64, 14)
	text += "\n" + RenderTable(
		[]string{"Intensity", "Completed", "Frac", "Quorum met", "All-or-nothing", "Air", "Overhead", "Failures by class"}, rows)
	text += "\nself-healing broadcast: multi-round NACK repair with backoff and retry budgets; quorum campaigns degrade gracefully where all-or-nothing campaigns abort\n"
	return &Result{ID: "chaos", Title: "Chaos: fault intensity vs completion and repair overhead", Text: text, Metrics: metrics}, nil
}
