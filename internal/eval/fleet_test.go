package eval

import "testing"

func TestFleetScaleSweep(t *testing.T) {
	r := runExp(t, "fleetscale")
	// The §7 claim at its smallest scale: broadcast beats N sequential
	// unicast transfers already at the paper's 20-node fleet.
	if b, u := r.Metrics["broadcast_s_20"], r.Metrics["unicast_s_20"]; b <= 0 || b >= u {
		t.Errorf("N=20: broadcast %.0f s vs unicast %.0f s", b, u)
	}
	if got := r.Metrics["speedup_x_20"]; got < 8 || got > 30 {
		t.Errorf("N=20 speedup = %.1fx, want 8-30x", got)
	}
	// The gap must widen with the fleet: one shared transfer amortizes
	// across more nodes.
	if r.Metrics["speedup_x_100"] <= r.Metrics["speedup_x_20"] {
		t.Error("speedup does not grow with fleet size")
	}
	// Air cost: unicast retransmits the image N times.
	if got := r.Metrics["air_ratio_x_100"]; got < 50 {
		t.Errorf("N=100 air ratio = %.1fx, want ~100x", got)
	}
}
