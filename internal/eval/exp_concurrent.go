package eval

import (
	"fmt"
	"math/rand"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/lora/concurrent"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// concurrentSetup builds the §6 experiment: SF8 at 125 and 250 kHz decoded
// from one 250 kHz stream.
func concurrentSetup() (p1, p2 lora.Params, rate float64) {
	p1 = lora.Params{SF: 8, BW: 125e3, CR: lora.CR45, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	p2 = p1
	p2.BW = 250e3
	return p1, p2, 250e3
}

// concurrentSER measures per-chain symbol error rates with both
// transmitters superposed at the given RSSIs.
func concurrentSER(symbols int, rssi1, rssi2 float64, seed int64) (ser1, ser2 float64, err error) {
	p1, p2, rate := concurrentSetup()
	dec, err := concurrent.NewDecoder(rate, []lora.Params{p1, p2})
	if err != nil {
		return 0, 0, err
	}
	tx1, err := concurrent.NewTransmitter(rate, p1)
	if err != nil {
		return 0, 0, err
	}
	tx2, err := concurrent.NewTransmitter(rate, p2)
	if err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	s1 := make([]int, symbols)
	s2 := make([]int, 2*symbols) // BW250 symbols are half as long
	for i := range s1 {
		s1[i] = rng.Intn(256)
	}
	for i := range s2 {
		s2[i] = rng.Intn(256)
	}
	w1, err := tx1.ModulateSymbols(s1)
	if err != nil {
		return 0, 0, err
	}
	w2, err := tx2.ModulateSymbols(s2)
	if err != nil {
		return 0, 0, err
	}
	// The transmitters are asynchronous: offset the BW250 stream by half
	// of one of its symbols so its boundaries fall mid-window for the
	// other chain, as in a real deployment.
	off2 := tx2.SymbolLen() / 2
	floor := channel.NoiseFloorDBm(rate, radio.NoiseFigureDB)
	ch := channel.NewAWGN(seed+1, floor)
	rx := ch.ApplyMulti(len(w1)+off2, []iq.Samples{w1, w2}, []float64{rssi1, rssi2}, []int{0, off2})
	got1 := dec.DemodAligned(rx)[0]
	got2 := dec.DemodAligned(rx[off2:])[1]

	count := func(got, want []int) float64 {
		errs := 0
		for i := range want {
			if i >= len(got) || got[i] != want[i] {
				errs++
			}
		}
		return float64(errs) / float64(len(want))
	}
	return count(got1, s1), count(got2, s2), nil
}

// Fig15a sweeps both concurrent transmissions at equal received power and
// reports per-configuration symbol error rates, quantifying the
// sensitivity loss relative to single-transmission demodulation.
func Fig15a(cfg Config) (*Result, error) {
	symbols := 250
	if cfg.Quick {
		symbols = 60
	}
	sens125 := lora.SensitivityDBm(8, 125e3, radio.NoiseFigureDB)
	// The experimental control: the same demodulator with the other
	// transmitter silenced gives the single-link baseline each
	// concurrent curve is compared against (the paper's Fig. 11 vs 15a).
	const off = -200 // effectively silent interferer
	// One trial per sweep point: concurrent pair plus the two single-link
	// controls, each with its own (seed, point) substream.
	type point struct{ ser1, ser2, solo1, solo2 float64 }
	margins := sweep(-8, 10, 1.75)
	pts, err := forTrials(cfg.Workers, len(margins), func(i int) (point, error) {
		m := margins[i]
		rssi := sens125 + m
		ser1, ser2, err := concurrentSER(symbols, rssi, rssi, cfg.Seed+int64(m*100))
		if err != nil {
			return point{}, err
		}
		s1, _, err := concurrentSER(symbols, rssi, off, cfg.Seed+int64(m*100)+7)
		if err != nil {
			return point{}, err
		}
		_, s2, err := concurrentSER(symbols, off, rssi, cfg.Seed+int64(m*100)+13)
		if err != nil {
			return point{}, err
		}
		return point{ser1, ser2, s1, s2}, nil
	})
	if err != nil {
		return nil, err
	}
	var x, y1, y2, solo1, solo2 []float64
	for i, p := range pts {
		x = append(x, sens125+margins[i])
		y1 = append(y1, p.ser1*100)
		y2 = append(y2, p.ser2*100)
		solo1 = append(solo1, p.solo1)
		solo2 = append(solo2, p.solo2)
	}
	series := []Series{
		{Name: "SF8, BW125kHz (concurrent)", X: x, Y: y1},
		{Name: "SF8, BW250kHz (concurrent)", X: x, Y: y2},
	}
	fracs := func(ys []float64) []float64 {
		out := make([]float64, len(ys))
		for i, v := range ys {
			out[i] = v / 100
		}
		return out
	}
	cSens125 := Interpolate(x, fracs(y1), 0.10)
	cSens250 := Interpolate(x, fracs(y2), 0.10)
	loss125 := cSens125 - Interpolate(x, solo1, 0.10)
	loss250 := cSens250 - Interpolate(x, solo2, 0.10)
	text := RenderXY("Concurrent orthogonal LoRa, equal received power (SER vs RSSI)",
		"RSSI (dBm)", "SER (%)", series, 64, 14)
	text += fmt.Sprintf("\nsensitivity loss vs single link: BW125 %.1f dB (paper ≈2 dB), BW250 %.1f dB (paper ≈0.5 dB)\n",
		loss125, loss250)
	return &Result{ID: "fig15a", Title: "Concurrent equal power", Text: text,
		Metrics: map[string]float64{
			"loss125_dB": loss125,
			"loss250_dB": loss250,
		}}, nil
}

// Fig15b fixes the BW125 transmission near its sensitivity and sweeps the
// BW250 interferer's power, showing where interference starts to dominate
// noise — the power-control requirement of §6.
func Fig15b(cfg Config) (*Result, error) {
	symbols := 250
	if cfg.Quick {
		symbols = 60
	}
	weak := lora.SensitivityDBm(8, 125e3, radio.NoiseFigureDB) + 3 // near concurrent sensitivity
	x := sweep(-130, -104, 3)
	sers, err := forTrials(cfg.Workers, len(x), func(i int) (float64, error) {
		ser1, _, err := concurrentSER(symbols, weak, x[i], cfg.Seed+int64(x[i]*10))
		return ser1, err
	})
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(sers))
	for i, s := range sers {
		y[i] = s * 100
	}
	series := []Series{{Name: fmt.Sprintf("SF8 BW125 @ %.0f dBm", weak), X: x, Y: y}}
	// Knee: the interferer power where SER first exceeds twice its
	// noise-dominated baseline.
	base := y[0]
	knee := x[len(x)-1]
	for i := range x {
		if y[i] > 2*base+2 {
			knee = x[i]
			break
		}
	}
	text := RenderXY("Concurrent LoRa with interference sweep (SER of weak BW125 link)",
		"interferer power (dBm)", "SER (%)", series, 64, 14)
	text += fmt.Sprintf("\nerror rate departs noise floor at ≈%.0f dBm interferer power (paper: -116 dBm)\n", knee)
	return &Result{ID: "fig15b", Title: "Concurrent interference sweep", Text: text,
		Metrics: map[string]float64{"knee_dBm": knee, "baseline_ser_pct": base}}, nil
}
