package eval

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/uwsdr/tinysdr/internal/ble"
	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/core"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/radio"
)

const bleSPS = 4 // 4 MHz I/Q interface at 1 Mbps

// bleSensThresholdBER is the bit error rate whose RSSI crossing defines the
// Fig. 12 sensitivity. The adaptive runner stops a BER point only once its
// Wilson interval excludes this threshold — resolving rates at the 1e-3
// scale needs the full bit budget near the crossing, and a plain epsilon
// rule would stop there early with a spurious zero.
const bleSensThresholdBER = 1e-3

// Fig12 measures BLE beacon BER vs RSSI: tinySDR's GFSK beacons received
// by the CC2650-class discriminator model.
func Fig12(cfg Config) (*Result, error) {
	bitsPerPoint := 20000
	if cfg.Quick {
		bitsPerPoint = 4000
	}
	mod, err := ble.NewModulator(bleSPS)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	bits := make([]int, bitsPerPoint)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	sig := mod.Modulate(bits)
	floor := channel.NoiseFloorDBm(mod.SampleRate(), radio.CC2650NoiseFigureDB)
	pad := bleSPS * 3 / 2

	// One trial per RSSI point; each worker's discriminator owns its own
	// scratch, and each point's noise derives only from (seed, RSSI).
	// Noise covers the whole waveform up front; the incremental StreamBits
	// path then filters and discriminates only as far as the adaptive
	// stopper actually reads, and its decisions are identical to a full
	// DemodBits pass — the adaptive BER is an exact prefix of the
	// fixed-budget one.
	type berState struct {
		demod *ble.Demodulator
		rx    iq.Samples
		one   []int // single-bit demod scratch
	}
	rssis := sweep(-102, -84, 2)
	bers, err := runTrials(cfg.Workers, len(rssis),
		func() (*berState, error) {
			demod, err := ble.NewDemodulator(bleSPS)
			if err != nil {
				return nil, err
			}
			return &berState{demod: demod, rx: make(iq.Samples, len(sig)), one: make([]int, 0, 1)}, nil
		},
		func(s *berState, i int) (float64, error) {
			rssi := rssis[i]
			ch := channel.NewAWGN(cfg.Seed+int64(rssi*10), floor)
			rx := ch.ApplyInto(s.rx, sig, rssi)
			s.demod.StreamReset()
			errs, n, err := cfg.Adaptive.runThreshold(bitsPerPoint, bleSensThresholdBER, func(k int) (bool, error) {
				got := s.demod.StreamBits(s.one, rx, pad, k, 1)
				if len(got) == 0 {
					return false, fmt.Errorf("eval: BLE waveform ends before bit %d", k)
				}
				return got[0] != bits[k], nil
			})
			if err != nil {
				return 0, err
			}
			return failRate(errs, n), nil
		})
	if err != nil {
		return nil, err
	}
	sens := Interpolate(rssis, bers, bleSensThresholdBER)
	series := []Series{{Name: "tinySDR BLE beacon", X: rssis, Y: bers}}
	text := RenderXY("BLE beacon evaluation (BER vs RSSI)",
		"RSSI (dBm)", "BER", series, 64, 14)
	text += fmt.Sprintf("\nsensitivity (BER 0.1%%): %.1f dBm — paper: -94 dBm, within 2 dB of the CC2650's %d dBm\n",
		sens, radio.CC2650SensitivityDBm)
	return &Result{ID: "fig12", Title: "BLE BER", Text: text,
		Metrics: map[string]float64{
			"sensitivity_dBm": sens,
			"cc2650_delta_dB": sens - radio.CC2650SensitivityDBm,
		}}, nil
}

// Fig13 runs one advertising burst on the device and measures the
// inter-beacon hop gaps on the simulated clock, plus the envelope view.
func Fig13(cfg Config) (*Result, error) {
	d := core.New(core.Config{ID: 1})
	beacon := ble.Beacon{AdvAddress: [6]byte{0xC0, 0xFF, 0xEE, 0x01, 0x02, 0x03}}
	if err := d.ConfigureBLE(beacon); err != nil {
		return nil, err
	}
	events, err := d.TransmitBeaconBurst(0)
	if err != nil {
		return nil, err
	}

	// Envelope-detector view of the burst (what the paper's oscilloscope
	// captured).
	adv, err := ble.NewAdvertiser(beacon, bleSPS)
	if err != nil {
		return nil, err
	}
	wave, _, err := adv.Burst()
	if err != nil {
		return nil, err
	}
	env := wave.Envelope()
	var s Series
	step := len(env) / 120
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(env); i += step {
		s.X = append(s.X, float64(i)/adv.Mod.SampleRate()*1e3)
		s.Y = append(s.Y, env[i])
	}
	s.Name = "envelope"

	var rows [][]string
	var gaps []time.Duration
	for i, e := range events {
		rows = append(rows, []string{
			fmt.Sprintf("ch %d (%.0f MHz)", e.Channel.Number, e.Channel.FreqHz/1e6),
			fmt.Sprintf("%.3f ms", ms(e.Start)), fmt.Sprintf("%.3f ms", ms(e.End)),
		})
		if i > 0 {
			gaps = append(gaps, e.Start-events[i-1].End)
		}
	}
	text := RenderXY("BLE beacon burst (envelope)", "time (ms)", "amplitude", []Series{s}, 64, 8)
	text += "\n" + RenderTable([]string{"Beacon", "Start", "End"}, rows)
	text += fmt.Sprintf("\nhop gaps: %v, %v (paper: 220 µs; iPhone 8: 350 µs)\n", gaps[0], gaps[1])
	return &Result{ID: "fig13", Title: "BLE burst timing", Text: text,
		Metrics: map[string]float64{
			"gap1_us": float64(gaps[0].Microseconds()),
			"gap2_us": float64(gaps[1].Microseconds()),
		}}, nil
}

// BLEBatteryLife simulates duty-cycled beaconing at one burst per second on
// a 1000 mAh battery, in the radio-bypass mode §3.1.1 enables (the
// AT86RF215's built-in FSK modulator generates the GFSK beacon, so the
// FPGA stays off), plus the FPGA-modulated mode as an ablation.
func BLEBatteryLife(cfg Config) (*Result, error) {
	beacon := ble.Beacon{AdvAddress: [6]byte{1, 2, 3, 4, 5, 6}}
	adv, err := ble.NewAdvertiser(beacon, bleSPS)
	if err != nil {
		return nil, err
	}
	airTime, err := adv.AirTime()
	if err != nil {
		return nil, err
	}

	cycle := func(useFPGA bool) (float64, error) {
		d := core.New(core.Config{ID: 1})
		d.Sleep()
		d.PMU.Ledger().Reset()
		start := d.Clock.Now()

		// Wake: MCU + radio; FPGA only in the ablation.
		d.PMU.WakeAll()
		d.MCU.SetState(mcu.StateActive)
		if useFPGA {
			boot, err := d.FPGA.Configure(fpga.BLEBeaconDesign())
			if err != nil {
				return 0, err
			}
			d.Clock.Advance(boot)
		}
		if _, err := d.Radio.Transition(radio.StateTRXOff); err != nil {
			return 0, err
		}
		d.Clock.Advance(radio.SetupTime)
		if _, err := d.Radio.SetFrequency(ble.AdvChannels[0].FreqHz); err != nil {
			return 0, err
		}
		if err := d.Radio.SetTXPower(0); err != nil {
			return 0, err
		}
		// Three beacons with 220 µs hops.
		for i := range ble.AdvChannels {
			if i > 0 {
				settle, err := d.Radio.SetFrequency(ble.AdvChannels[i].FreqHz)
				if err != nil {
					return 0, err
				}
				d.Clock.Advance(settle)
			}
			if _, err := d.Radio.Transition(radio.StateTX); err != nil {
				return 0, err
			}
			d.Clock.Advance(airTime)
			if _, err := d.Radio.Transition(radio.StateTRXOff); err != nil {
				return 0, err
			}
		}
		// Back to sleep for the rest of the second.
		d.Sleep()
		d.Clock.AdvanceTo(start + time.Second)
		return d.PMU.Ledger().Energy(), nil
	}

	bypassJ, err := cycle(false)
	if err != nil {
		return nil, err
	}
	fpgaJ, err := cycle(true)
	if err != nil {
		return nil, err
	}
	batt := power.DefaultBattery()
	bypassYears := power.Years(batt.Lifetime(bypassJ)) // 1 cycle per second -> J == W
	fpgaYears := power.Years(batt.Lifetime(fpgaJ))

	rows := [][]string{
		{"Radio-bypass mode (built-in FSK)", fmt.Sprintf("%.0f µJ", bypassJ*1e6),
			fmt.Sprintf("%.1f years", bypassYears)},
		{"FPGA-modulated mode (22 ms boot per wake)", fmt.Sprintf("%.0f µJ", fpgaJ*1e6),
			fmt.Sprintf("%.1f years", fpgaYears)},
	}
	text := RenderTable([]string{"Beacon mode", "Energy per 1 s cycle", "1000 mAh lifetime"}, rows)
	text += "\npaper: \"over 2 years on a 1000 mAh battery when transmitting once per second\"\n"
	return &Result{ID: "blebattery", Title: "BLE battery life", Text: text,
		Metrics: map[string]float64{
			"bypass_years":    bypassYears,
			"fpga_years":      fpgaYears,
			"bypass_cycle_uJ": bypassJ * 1e6,
		}}, nil
}
