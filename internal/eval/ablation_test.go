package eval

import (
	"math"
	"testing"
)

func TestAblationBroadcastSpeedup(t *testing.T) {
	r := runExp(t, "ablation-broadcast")
	// A 20-node fleet must see close to 20x from sharing the transfer;
	// repair and per-node overheads keep it below the ideal.
	if got := r.Metrics["speedup_x"]; got < 8 || got > 30 {
		t.Errorf("broadcast speedup = %.1fx, want 8-30x for 20 nodes", got)
	}
	if r.Metrics["broadcast_s"] >= r.Metrics["sequential_s"] {
		t.Error("broadcast slower than sequential")
	}
}

func TestAblationPacketSizeTradeoff(t *testing.T) {
	r := runExp(t, "ablation-packet")
	// Strong link: 240 B beats 24 B (overhead dominates).
	strong := func(size int) float64 { return r.Metrics[key(size, "strong")] }
	atRange := func(size int) float64 { return r.Metrics[key(size, "range")] }
	if strong(240) >= strong(24) {
		t.Errorf("on a strong link 240 B (%.0f s) must beat 24 B (%.0f s)", strong(240), strong(24))
	}
	// At range: 60 B must beat 240 B (PER dominates).
	if atRange(60) >= atRange(240) {
		t.Errorf("at range 60 B (%.0f s) must beat 240 B (%.0f s)", atRange(60), atRange(240))
	}
	// And the paper's 60 B must be within 25% of the best size at range.
	best := math.Inf(1)
	for _, s := range []int{24, 40, 60, 120, 240} {
		if v := atRange(s); v < best {
			best = v
		}
	}
	if atRange(60) > best*1.25 {
		t.Errorf("60 B is %.0f s at range; best size achieves %.0f s", atRange(60), best)
	}
}

func key(size int, link string) string {
	return "s_" + itoa(size) + "_" + link
}

func itoa(v int) string {
	switch v {
	case 24:
		return "24"
	case 40:
		return "40"
	case 60:
		return "60"
	case 120:
		return "120"
	case 240:
		return "240"
	}
	return "?"
}

func TestAblationCompressionGain(t *testing.T) {
	r := runExp(t, "ablation-compression")
	// The 579->99 kB compression should cut time and energy ~5-6x.
	gain := r.Metrics["stored_s"] / r.Metrics["lzo_s"]
	if gain < 4 || gain > 8 {
		t.Errorf("compression time gain = %.1fx, want ≈5.8x", gain)
	}
	eGain := r.Metrics["stored_J"] / r.Metrics["lzo_J"]
	if eGain < 4 || eGain > 8 {
		t.Errorf("compression energy gain = %.1fx", eGain)
	}
}

func TestAblationBlockSize(t *testing.T) {
	r := runExp(t, "ablation-blocksize")
	// Larger blocks compress at least as well (monotone non-increasing,
	// within noise).
	if r.Metrics["kB_5"] < r.Metrics["kB_30"]-1 {
		t.Errorf("5 kB blocks (%.1f kB) compress better than 30 kB blocks (%.1f kB)",
			r.Metrics["kB_5"], r.Metrics["kB_30"])
	}
	// All sizes stay in the calibrated regime.
	for _, k := range []string{"kB_5", "kB_15", "kB_30", "kB_60"} {
		if v := r.Metrics[k]; v < 80 || v > 130 {
			t.Errorf("%s = %.1f kB outside plausible range", k, v)
		}
	}
}

func TestAblationRateAdaptation(t *testing.T) {
	r := runExp(t, "ablation-adr")
	// ADR delivers every node; fixed SF7 strands the far ones.
	if got := r.Metrics["adr_delivered"]; got != 20 {
		t.Errorf("ADR delivered %.0f/20", got)
	}
	if got := r.Metrics["sf7_delivered"]; got >= 20 {
		t.Error("fixed SF7 should strand far nodes; campus too easy")
	}
	// ADR energy well below fixed SF12.
	if r.Metrics["adr_mJ"] >= r.Metrics["sf12_mJ"]/2 {
		t.Errorf("ADR %.2f mJ not clearly below SF12 %.2f mJ",
			r.Metrics["adr_mJ"], r.Metrics["sf12_mJ"])
	}
}
