package eval

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"github.com/uwsdr/tinysdr/internal/par"
)

func TestRunTrialsOrderAndStateIsolation(t *testing.T) {
	type state struct{ calls int }
	results, err := runTrials(8, 100,
		func() (*state, error) { return &state{}, nil },
		func(s *state, trial int) (int, error) {
			s.calls++
			return trial * trial, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i*i)
		}
	}
}

func TestRunTrialsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		_, err := forTrials(workers, 50, func(trial int) (int, error) {
			if trial%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial, nil
		})
		if err == nil || err.Error() != "trial 3 failed" {
			t.Fatalf("workers=%d: err = %v, want lowest-index trial 3", workers, err)
		}
	}
}

func TestRunTrialsZero(t *testing.T) {
	results, err := forTrials[int](4, 0, func(int) (int, error) {
		return 0, errors.New("must not run")
	})
	if err != nil || len(results) != 0 {
		t.Fatalf("got %v, %v", results, err)
	}
}

func TestSplitSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for trial := 0; trial < 1000; trial++ {
		s := TrialSeed(1, trial)
		if seen[s] {
			t.Fatalf("TrialSeed collision at trial %d", trial)
		}
		seen[s] = true
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("different parents must give different substreams")
	}
	if TrialSeed(1, 5) != par.SplitSeed(1, 5) {
		t.Error("TrialSeed must be the SplitSeed substream")
	}
}

func TestSweepEnumeration(t *testing.T) {
	got := sweep(-6, 8, 1.75)
	if len(got) == 0 || got[0] != -6 {
		t.Fatalf("sweep start = %v", got)
	}
	// Must match the legacy inline loop exactly, including float
	// accumulation, so ported experiments reproduce seed-identical curves.
	var want []float64
	for m := -6.0; m <= 8; m += 1.75 {
		want = append(want, m)
	}
	if len(got) != len(want) {
		t.Fatalf("sweep has %d points, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// metricsFingerprint renders a metrics map deterministically for
// byte-identical comparison.
func metricsFingerprint(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s=%x;", k, m[k])
	}
	return s
}

// TestParallelRunnerDeterministic is the tentpole acceptance test: the
// ported experiments must produce byte-identical Result.Metrics for 1, 4
// and 8 workers at a fixed seed.
func TestParallelRunnerDeterministic(t *testing.T) {
	for _, id := range []string{"fig11", "fig12", "fig15b"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		var want string
		var wantText string
		for _, workers := range []int{1, 4, 8} {
			r, err := e.Run(Config{Quick: true, Seed: 1, Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", id, workers, err)
			}
			got := metricsFingerprint(r.Metrics)
			if workers == 1 {
				want, wantText = got, r.Text
				continue
			}
			if got != want {
				t.Errorf("%s: metrics differ between 1 and %d workers:\n  1: %s\n  %d: %s",
					id, workers, want, workers, got)
			}
			if r.Text != wantText {
				t.Errorf("%s: rendered text differs between 1 and %d workers", id, workers)
			}
		}
	}
}

// TestFig14DeterministicAcrossWorkers covers the campus fleet fan-out.
func TestFig14DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fig14 is the slowest experiment")
	}
	e, _ := ByID("fig14")
	var want string
	for _, workers := range []int{1, 8} {
		r, err := e.Run(Config{Quick: true, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := metricsFingerprint(r.Metrics)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("fig14 metrics differ between 1 and %d workers:\n  %s\n  %s", workers, want, got)
		}
	}
}
