package sense

import (
	"bytes"
	"testing"
)

func quickSweep(workers int) SweepConfig {
	return SweepConfig{
		World:        quickWorld(),
		FFTSize:      64,
		Nodes:        60,
		Ticks:        4,
		Seed:         12345,
		Workers:      workers,
		ThresholdDBm: -85,
	}
}

// TestSweepDeterministicAcrossWorkers is the PR's core acceptance
// property scaled down for unit tests: the occupancy map is byte-
// identical at 1 and 8 workers.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	one, err := Sweep(quickSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Sweep(quickSweep(8))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.MapBytes, eight.MapBytes) {
		t.Fatal("occupancy map differs between 1 and 8 workers")
	}
	if one.Reports != 60*4 || eight.Reports != one.Reports {
		t.Fatalf("reports %d / %d", one.Reports, eight.Reports)
	}
	if one.WireBytes != int64(one.Reports*WireSize(64)) {
		t.Fatalf("wire bytes %d", one.WireBytes)
	}

	// The map reflects the sweep: full coverage, every cell counted once
	// per node.
	var m Map
	if err := m.UnmarshalBinary(one.MapBytes); err != nil {
		t.Fatal(err)
	}
	if m.Reports != uint64(one.Reports) {
		t.Fatalf("map reports %d", m.Reports)
	}
	for i := range m.Cells {
		if m.Cells[i].Count != 60 {
			t.Fatalf("cell %d count %d, want 60", i, m.Cells[i].Count)
		}
	}
	// The world has real emitters: some occupancy must show up somewhere.
	if s := m.Summarize(); !(s.Occupancy > 0) {
		t.Fatalf("sweep saw no occupancy: %+v", s)
	}
}

func TestSweepRejects(t *testing.T) {
	cfg := quickSweep(1)
	cfg.Nodes = 0
	if _, err := Sweep(cfg); err == nil {
		t.Error("zero nodes accepted")
	}
	cfg = quickSweep(1)
	cfg.FFTSize = 63
	if _, err := Sweep(cfg); err == nil {
		t.Error("bad FFT size accepted")
	}
	cfg = quickSweep(1)
	cfg.World.SampleRate = 0
	if _, err := Sweep(cfg); err == nil {
		t.Error("bad world accepted")
	}
}
