// Package sense is the crowd-sourced spectrum sensing subsystem: fleets
// of simulated mobile nodes measure the band through the chunked RX seam
// (phy.Stream feeding dsp.WelchStream), quantize their power spectra into
// compact binary reports, and an aggregator merges thousands of report
// streams into a time×frequency occupancy map.
//
// Everything a node emits is a pure function of (seed, node, tick): no
// wall clock, no global randomness, no cross-tick state — so a sweep's
// occupancy map is byte-identical at any worker count, the property the
// eval experiment and CI pin.
package sense

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Report wire format (all integers little-endian):
//
//	magic   "TSPR"
//	version u16  (1)
//	node    u32
//	tick    u32
//	rate    u64  (float64 bits, positive finite)
//	bins    u16  (1..MaxReportBins)
//	codes   bins × i16 (quarter-dB quantized PSD, DC-centered)
//	crc     u32  (IEEE CRC-32 of everything above)
//
// Parsing is strict and canonical, in the trace-manifest mold: any
// accepted input re-marshals to the identical bytes (the fuzz harness
// pins this), the bin count is validated against a hard cap before
// allocation, and trailing bytes or CRC mismatches are corruption.
const (
	reportMagic   = "TSPR"
	reportVersion = 1

	// MaxReportBins bounds one report's spectrum length (the largest FFT
	// a sensor plausibly runs), so a hostile report cannot demand a huge
	// allocation.
	MaxReportBins = 1 << 12
)

// CodeUnitDB is the quantization step of report power codes: quarter-dB
// ticks, so the full int16 range spans ±8192 dB — far beyond any physical
// power while keeping a 256-bin report at 540 bytes.
const CodeUnitDB = 0.25

// QuantizeDBm maps a power in dBm to its wire code, saturating at the
// int16 range (so -Inf, the empty-spectrum floor, becomes the minimum
// code). NaN also saturates low: an unmeasurable bin reads as floor.
func QuantizeDBm(p float64) int16 {
	q := math.Round(p / CodeUnitDB)
	if !(q > math.MinInt16) { // NaN and -Inf land here
		return math.MinInt16
	}
	if q > math.MaxInt16 {
		return math.MaxInt16
	}
	return int16(q)
}

// CodeToDBm maps a wire code back to dBm.
func CodeToDBm(c int16) float64 { return float64(c) * CodeUnitDB }

// Report is one node's quantized power spectrum for one tick.
type Report struct {
	// Node is the reporting node's index in the fleet.
	Node uint32
	// Tick is the measurement interval index; it selects the occupancy
	// map row the report lands in.
	Tick uint32
	// SampleRate is the measured bandwidth in Hz; the aggregator rejects
	// reports whose rate disagrees with its map.
	SampleRate float64
	// Codes is the quantized PSD, DC-centered like dsp.Spectrum.PowerDBm.
	Codes []int16
}

// WireSize returns the marshaled size of a report with the given bin
// count — what an ingest budget should charge per report.
func WireSize(bins int) int { return 4 + 2 + 4 + 4 + 8 + 2 + 2*bins + 4 }

// MarshalBinary renders the canonical wire form.
func (r *Report) MarshalBinary() ([]byte, error) {
	if len(r.Codes) == 0 || len(r.Codes) > MaxReportBins {
		return nil, fmt.Errorf("sense: report of %d bins outside [1, %d]", len(r.Codes), MaxReportBins)
	}
	if !(r.SampleRate > 0) || math.IsInf(r.SampleRate, 0) {
		return nil, fmt.Errorf("sense: report sample rate %g", r.SampleRate)
	}
	out := make([]byte, 0, WireSize(len(r.Codes)))
	out = append(out, reportMagic...)
	out = binary.LittleEndian.AppendUint16(out, reportVersion)
	out = binary.LittleEndian.AppendUint32(out, r.Node)
	out = binary.LittleEndian.AppendUint32(out, r.Tick)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(r.SampleRate))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(r.Codes)))
	for _, c := range r.Codes {
		out = binary.LittleEndian.AppendUint16(out, uint16(c))
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out)), nil
}

// UnmarshalBinary parses and validates a report. It never allocates
// proportionally to the declared bin count before validating it against
// the package cap.
func (r *Report) UnmarshalBinary(data []byte) error {
	rd := reader{data: data}
	if string(rd.take(4)) != reportMagic {
		return fmt.Errorf("sense: bad report magic")
	}
	if v := rd.u16(); v != reportVersion {
		return fmt.Errorf("sense: report version %d, want %d", v, reportVersion)
	}
	node := rd.u32()
	tick := rd.u32()
	rate := math.Float64frombits(rd.u64())
	bins := int(rd.u16())
	if rd.err != nil {
		return rd.err
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return fmt.Errorf("sense: report sample rate %g", rate)
	}
	if bins == 0 || bins > MaxReportBins {
		return fmt.Errorf("sense: report of %d bins outside [1, %d]", bins, MaxReportBins)
	}
	// The remaining length is fully determined now — check it before the
	// codes allocation.
	if want := 2*bins + 4; len(rd.data)-rd.off != want {
		return fmt.Errorf("sense: %d trailing report bytes, want %d", len(rd.data)-rd.off, want)
	}
	codes := make([]int16, bins)
	for i := range codes {
		codes[i] = int16(rd.u16())
	}
	crc := rd.u32()
	if rd.err != nil {
		return rd.err
	}
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != crc {
		return fmt.Errorf("sense: report CRC %08x, want %08x", crc, got)
	}
	*r = Report{Node: node, Tick: tick, SampleRate: rate, Codes: codes}
	return nil
}

// reader is a bounds-checked cursor; the first short read poisons it.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("sense: wire data truncated at byte %d", r.off)
		}
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
