package sense

import (
	"bytes"
	"sync"
	"testing"
)

func testAggregator(t *testing.T, budget int64) *Aggregator {
	t.Helper()
	m := testMap(t, 4, 8)
	a, err := NewAggregator(m, budget)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAggregator(t *testing.T) {
	if _, err := NewAggregator(nil, 0); err == nil {
		t.Error("nil map accepted")
	}
	a := testAggregator(t, 0)
	if s := a.Stats(); s.BudgetBytes != DefaultBudgetBytes {
		t.Fatalf("default budget %d", s.BudgetBytes)
	}
}

func TestAggregatorIngestWire(t *testing.T) {
	a := testAggregator(t, 0)
	wire, err := reportFor(1, 8, -300).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.IngestWire(wire); err != nil {
		t.Fatal(err)
	}
	if s := a.Stats(); s.Ingested != 1 || s.Rejected != 0 || s.Errored != 0 || s.InflightBytes != 0 {
		t.Fatalf("stats %+v", s)
	}
	if sum := a.Summarize(); sum.Reports != 1 {
		t.Fatalf("summary %+v", sum)
	}

	// Garbage counts as errored, not ingested.
	if err := a.IngestWire([]byte("junk")); err == nil {
		t.Fatal("garbage ingested")
	}
	// A valid report that doesn't fit the grid is errored too.
	off, _ := reportFor(99, 8, 0).MarshalBinary()
	if err := a.IngestWire(off); err == nil {
		t.Fatal("out-of-grid report ingested")
	}
	if s := a.Stats(); s.Errored != 2 {
		t.Fatalf("errored %d, want 2", s.Errored)
	}
}

func TestAggregatorBackpressure(t *testing.T) {
	a := testAggregator(t, 10)
	wire, _ := reportFor(0, 8, 0).MarshalBinary()
	err := a.IngestWire(wire)
	if !IsBackpressure(err) {
		t.Fatalf("want backpressure, got %v", err)
	}
	if s := a.Stats(); s.Rejected != 1 || s.Ingested != 0 {
		t.Fatalf("stats %+v", s)
	}

	// Admit/Release bracket the budget exactly.
	b := testAggregator(t, 100)
	if err := b.Admit(60); err != nil {
		t.Fatal(err)
	}
	if err := b.Admit(60); !IsBackpressure(err) {
		t.Fatalf("over-budget admit: %v", err)
	}
	b.Release(60)
	if err := b.Admit(60); err != nil {
		t.Fatalf("budget not released: %v", err)
	}
	b.Release(60)
	b.Release(60) // over-release clamps at zero
	if s := b.Stats(); s.InflightBytes != 0 {
		t.Fatalf("inflight %d", s.InflightBytes)
	}
}

// TestAggregatorConcurrentDeterminism: hammering the aggregator from many
// goroutines in scrambled order produces the same map bytes as serial
// ingest — the property that lets the sweep scale worker counts freely.
func TestAggregatorConcurrentDeterminism(t *testing.T) {
	var wires [][]byte
	for tick := 0; tick < 4; tick++ {
		for k := 0; k < 8; k++ {
			w, err := reportFor(tick, 8, int16(-500+37*k)).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			wires = append(wires, w)
		}
	}
	serial := testAggregator(t, 0)
	for _, w := range wires {
		if err := serial.IngestWire(w); err != nil {
			t.Fatal(err)
		}
	}
	want, err := serial.MapBytes()
	if err != nil {
		t.Fatal(err)
	}

	conc := testAggregator(t, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(wires); i += 8 {
				if err := conc.IngestWire(wires[i]); err != nil {
					t.Error(err)
				}
			}
		}(g)
	}
	wg.Wait()
	got, err := conc.MapBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concurrent ingest changed the map bytes")
	}
}
