package sense

import (
	"fmt"
	"io"
	"math"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/par"
	"github.com/uwsdr/tinysdr/internal/phy"
)

// Emitter is one transmitter in the sensed band. Its on/off schedule is a
// global property of the world — every node sees the same emitter active
// in the same ticks — while the received power is per-node, solved by
// that node's channel.Mobility link.
type Emitter struct {
	// FreqHz is the emitter's baseband offset from the sensed band's
	// center, within ±SampleRate/2.
	FreqHz float64
	// OffsetM displaces the emitter along the node's outbound ray, so
	// different emitters sit at different link distances.
	OffsetM float64
	// TxPowerDBm is the emitter's transmit power.
	TxPowerDBm float64
	// Duty is the fraction of ticks the emitter is on, in [0, 1]. The
	// schedule is drawn deterministically from (seed, emitter, tick).
	Duty float64
}

// World is the shared RF environment a sensing fleet moves through. Nodes
// are laid out on a radial line — node k starts at NodeStartM +
// k·NodeStepM and recedes at NodeSpeedMPS — so each (node, emitter) link
// is exactly a channel.Mobility trajectory through the log-distance
// field, tick time advancing the trajectory.
type World struct {
	// Model is the propagation field shared by every link.
	Model channel.LogDistance
	// SampleRate is the sensed bandwidth in Hz.
	SampleRate float64
	// NoiseFloorDBm is each node's integrated receiver noise floor.
	NoiseFloorDBm float64
	// TickSeconds is the trajectory time between measurement ticks.
	TickSeconds float64
	// TickSamples is how many samples a node captures per tick.
	TickSamples int
	// ChunkSamples is the chunk size sensors read through the phy.Stream
	// seam — the knob proving a sensor's working set is one chunk, not
	// the tick capture.
	ChunkSamples int
	// NodeStartM and NodeStepM lay the fleet out radially.
	NodeStartM, NodeStepM float64
	// NodeSpeedMPS is the fleet's radial speed (positive recedes).
	NodeSpeedMPS float64
	// Emitters is the transmitter population.
	Emitters []Emitter
}

// DefaultWorld is a 915 MHz ISM-band campus: three emitters of different
// powers, duty cycles and link distances over a 1 MHz sensed band, nodes
// walking outward from 30 m. It is the world the eval sweep and the CLI
// default to.
func DefaultWorld() World {
	return World{
		Model:         channel.LogDistance{FreqHz: 915e6, Exponent: 2.9},
		SampleRate:    1e6,
		NoiseFloorDBm: -95,
		TickSeconds:   0.5,
		TickSamples:   2048,
		ChunkSamples:  256,
		NodeStartM:    30,
		NodeStepM:     1.5,
		NodeSpeedMPS:  1.4,
		Emitters: []Emitter{
			{FreqHz: -250e3, OffsetM: 0, TxPowerDBm: 20, Duty: 0.9},
			{FreqHz: 125e3, OffsetM: 40, TxPowerDBm: 14, Duty: 0.5},
			{FreqHz: 375e3, OffsetM: 120, TxPowerDBm: 27, Duty: 0.2},
		},
	}
}

// Validate checks the world's invariants.
func (w *World) Validate() error {
	if !(w.SampleRate > 0) || math.IsInf(w.SampleRate, 0) {
		return fmt.Errorf("sense: world sample rate %g", w.SampleRate)
	}
	if w.TickSamples < 1 {
		return fmt.Errorf("sense: %d samples per tick", w.TickSamples)
	}
	if w.ChunkSamples < 1 {
		return fmt.Errorf("sense: %d samples per chunk", w.ChunkSamples)
	}
	if !(w.TickSeconds > 0) {
		return fmt.Errorf("sense: tick of %g seconds", w.TickSeconds)
	}
	if len(w.Emitters) == 0 {
		return fmt.Errorf("sense: world has no emitters")
	}
	for i, e := range w.Emitters {
		if math.Abs(e.FreqHz) > w.SampleRate/2 {
			return fmt.Errorf("sense: emitter %d at %g Hz outside ±%g", i, e.FreqHz, w.SampleRate/2)
		}
		if e.Duty < 0 || e.Duty > 1 {
			return fmt.Errorf("sense: emitter %d duty %g outside [0, 1]", i, e.Duty)
		}
	}
	return nil
}

// EmitterActive reports whether emitter j transmits during the given
// tick. The schedule is a pure function of (seed, j, tick) and carries no
// node dependence: an emitter is one physical transmitter, so the whole
// fleet agrees on when it is on.
func EmitterActive(seed int64, j, tick int, duty float64) bool {
	if duty >= 1 {
		return true
	}
	if duty <= 0 {
		return false
	}
	h := par.SplitSeed(par.SplitSeed(seed, ^int64(j)), int64(tick))
	return float64(uint64(h)>>11)/(1<<53) < duty
}

// Sensor measures the world on behalf of one node at a time: it
// synthesizes the node's received waveform tick by tick, streams it
// through the chunked RX seam into a Welch estimator, and quantizes the
// spectrum into a Report. A Sensor owns scratch (plan, stream, link
// stages) and is single-goroutine — the par worker-state idiom; give each
// worker its own and have it serve many nodes.
type Sensor struct {
	w    *World
	seed int64

	stream *dsp.WelchStream
	mobs   []*channel.Mobility
	noise  *channel.Noise
	tone   iq.Samples
	acc    iq.Samples
	chunk  iq.Samples
	psd    []float64
	rep    Report
}

// NewSensor returns a sensor over the world with the given FFT size. The
// seed is the sweep-level seed every node's measurements derive from.
func NewSensor(w *World, fftSize int, seed int64) (*Sensor, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !dsp.IsPowerOfTwo(fftSize) || fftSize > MaxReportBins {
		return nil, fmt.Errorf("sense: FFT size %d (want a power of two ≤ %d)", fftSize, MaxReportBins)
	}
	s := &Sensor{
		w:      w,
		seed:   seed,
		stream: dsp.NewWelchPlan(fftSize).Stream(),
		mobs:   make([]*channel.Mobility, len(w.Emitters)),
		noise:  channel.NewNoise(w.NoiseFloorDBm),
		tone:   make(iq.Samples, w.TickSamples),
		acc:    make(iq.Samples, w.TickSamples),
		chunk:  make(iq.Samples, w.ChunkSamples),
		psd:    make([]float64, fftSize),
		rep:    Report{SampleRate: w.SampleRate, Codes: make([]int16, fftSize)},
	}
	for j, e := range w.Emitters {
		s.mobs[j] = channel.NewMobility(w.Model, e.TxPowerDBm, 0, 0, 1, w.NodeSpeedMPS, w.SampleRate)
	}
	return s, nil
}

// Measure produces the node's report for one tick. The result is a pure
// function of (world, seed, node, tick) — ticks may be measured in any
// order by any worker. The returned Report views the sensor's scratch;
// marshal or copy it before the next Measure call.
func (s *Sensor) Measure(node, tick int) *Report {
	w := s.w
	nodeSeed := par.SplitSeed(s.seed, int64(node))
	tickSeed := par.SplitSeed(nodeSeed, int64(tick))
	t0 := float64(tick) * w.TickSeconds
	nodeStart := w.NodeStartM + float64(node)*w.NodeStepM + w.NodeSpeedMPS*t0

	for i := range s.acc {
		s.acc[i] = 0
	}
	for j, e := range w.Emitters {
		if !EmitterActive(s.seed, j, tick, e.Duty) {
			continue
		}
		// Unit tone at the emitter's offset; phase restarts each tick so
		// the measurement depends on nothing but (seed, node, tick).
		var nco dsp.NCO
		nco.SetFrequency(e.FreqHz / w.SampleRate)
		for i := range s.tone {
			s.tone[i] = nco.Next()
		}
		// The link is literally a Mobility trajectory: the node's radial
		// position at this tick sets the start distance, and the stage's
		// own block walk supplies within-tick motion.
		mob := s.mobs[j]
		mob.StartM = nodeStart + e.OffsetM
		mob.Reset(par.SplitSeed(tickSeed, int64(j)+1))
		mob.ApplyInto(s.tone, s.tone)
		s.acc.Add(s.tone)
	}
	s.noise.Reset(par.SplitSeed(tickSeed, 0))
	s.noise.ApplyInto(s.acc, s.acc)

	// Consume the capture through the chunked RX seam: the estimator only
	// ever sees ChunkSamples at a time, the contract hardware RX will hold.
	st := phy.StreamSamples("sense", w.SampleRate, s.acc)
	s.stream.Reset()
	for {
		n, err := st.ReadChunk(s.chunk)
		if err == io.EOF {
			break
		}
		s.stream.Extend(s.chunk[:n])
	}
	s.stream.FinishInto(s.psd, w.SampleRate)

	s.rep.Node = uint32(node)
	s.rep.Tick = uint32(tick)
	for i, p := range s.psd {
		s.rep.Codes[i] = QuantizeDBm(p)
	}
	return &s.rep
}
