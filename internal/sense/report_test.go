package sense

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleReport() *Report {
	codes := make([]int16, 64)
	for i := range codes {
		codes[i] = int16(i*7 - 200)
	}
	return &Report{Node: 42, Tick: 7, SampleRate: 1e6, Codes: codes}
}

func TestQuantizeDBm(t *testing.T) {
	cases := []struct {
		in   float64
		want int16
	}{
		{0, 0},
		{-30, -120},
		{-30.1, -120}, // rounds to nearest quarter dB
		{-30.13, -121},
		{0.25, 1},
		{math.Inf(-1), math.MinInt16},
		{math.Inf(1), math.MaxInt16},
		{math.NaN(), math.MinInt16},
		{1e9, math.MaxInt16},
		{-1e9, math.MinInt16},
	}
	for _, c := range cases {
		if got := QuantizeDBm(c.in); got != c.want {
			t.Errorf("QuantizeDBm(%g) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := CodeToDBm(-120); got != -30 {
		t.Errorf("CodeToDBm(-120) = %g", got)
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	wire, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != WireSize(len(r.Codes)) {
		t.Fatalf("wire size %d, want %d", len(wire), WireSize(len(r.Codes)))
	}
	var got Report
	if err := got.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if got.Node != r.Node || got.Tick != r.Tick || got.SampleRate != r.SampleRate {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range r.Codes {
		if got.Codes[i] != r.Codes[i] {
			t.Fatalf("code %d: %d != %d", i, got.Codes[i], r.Codes[i])
		}
	}
	// Canonical: accepted input re-marshals to identical bytes.
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, again) {
		t.Fatal("re-marshal differs")
	}
}

func TestReportMarshalRejects(t *testing.T) {
	r := sampleReport()
	r.Codes = nil
	if _, err := r.MarshalBinary(); err == nil {
		t.Error("empty codes accepted")
	}
	r = sampleReport()
	r.Codes = make([]int16, MaxReportBins+1)
	if _, err := r.MarshalBinary(); err == nil {
		t.Error("oversized codes accepted")
	}
	for _, rate := range []float64{0, -1, math.Inf(1), math.NaN()} {
		r = sampleReport()
		r.SampleRate = rate
		if _, err := r.MarshalBinary(); err == nil {
			t.Errorf("rate %g accepted", rate)
		}
	}
}

func TestReportUnmarshalRejectsCorruption(t *testing.T) {
	wire, err := sampleReport().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		b := f(append([]byte(nil), wire...))
		var r Report
		if err := r.UnmarshalBinary(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 99; return b })
	mutate("flipped code", func(b []byte) []byte { b[30] ^= 1; return b }) // CRC breaks
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-1] })
	mutate("trailing byte", func(b []byte) []byte { return append(b, 0) })
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("header only", func(b []byte) []byte { return b[:10] })

	// A declared bin count over the cap must be rejected before allocation
	// (the bins field sits at offset 22, after magic+version+node+tick+rate).
	huge := append([]byte(nil), wire...)
	huge[22], huge[23] = 0xFF, 0xFF
	var r Report
	if err := r.UnmarshalBinary(huge); err == nil || !strings.Contains(err.Error(), "bins") {
		t.Errorf("oversized bin count: %v", err)
	}
	// Zero bins likewise.
	zero := append([]byte(nil), wire...)
	zero[22], zero[23] = 0, 0
	if err := r.UnmarshalBinary(zero); err == nil {
		t.Error("zero bin count accepted")
	}
	// A bad rate must be caught even with a fixed-up CRC.
	bad := sampleReport()
	bad.SampleRate = 1 // marshal fine...
	w2, _ := bad.MarshalBinary()
	for i := 14; i < 22; i++ {
		w2[i] = 0xFF // ...then smash the rate to NaN; CRC now wrong too
	}
	if err := r.UnmarshalBinary(w2); err == nil {
		t.Error("NaN rate accepted")
	}
}

// FuzzReportUnmarshal pins memory-safety and the canonical-form contract:
// whatever bytes are accepted must re-marshal to the identical input.
func FuzzReportUnmarshal(f *testing.F) {
	wire, err := sampleReport().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	one := (&Report{Node: 1, Tick: 0, SampleRate: 250e3, Codes: []int16{-400}})
	w1, _ := one.MarshalBinary()
	f.Add(w1)
	f.Add([]byte("TSPR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Report
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted report fails to marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted report is not canonical:\n in  %x\n out %x", data, out)
		}
	})
}
