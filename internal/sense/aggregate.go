package sense

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBackpressure is returned when the aggregator's in-flight byte budget
// is exhausted — a slow consumer's signal to producers to back off.
// Callers detect it with errors.Is and retry; nothing is lost.
var ErrBackpressure = errors.New("sense: aggregator over its in-flight byte budget")

// DefaultBudgetBytes is the in-flight ingest budget when none is given:
// enough for thousands of outstanding 256-bin reports, small enough to
// bound the aggregator's memory regardless of producer count.
const DefaultBudgetBytes = 4 << 20

// Stats is an aggregator's ingest counter snapshot.
type Stats struct {
	// Ingested counts reports folded into the map.
	Ingested uint64 `json:"ingested"`
	// Rejected counts reports turned away by backpressure.
	Rejected uint64 `json:"rejected"`
	// Errored counts reports that failed parsing or didn't fit the grid.
	Errored uint64 `json:"errored"`
	// InflightBytes and BudgetBytes describe the admission window.
	InflightBytes int64 `json:"inflight_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"`
}

// Aggregator merges concurrent report streams into one occupancy Map with
// bounded memory. Admission control is a byte budget: a producer Admits
// its report's wire size before the bytes are buffered and the slot is
// Released once the report is folded in, so thousands of producers can
// push concurrently while the aggregator's working set stays under the
// budget. Determinism does not depend on arrival order — the map's
// integer-moment cells make every interleaving produce identical bits —
// so a plain mutex over the grid is both correct and reproducible.
type Aggregator struct {
	mu       sync.Mutex
	m        *Map
	budget   int64
	inflight int64
	stats    Stats
}

// NewAggregator wraps the map in an ingest service with the given
// in-flight byte budget (DefaultBudgetBytes when non-positive).
func NewAggregator(m *Map, budgetBytes int64) (*Aggregator, error) {
	if m == nil {
		return nil, fmt.Errorf("sense: aggregator needs a map")
	}
	if budgetBytes <= 0 {
		budgetBytes = DefaultBudgetBytes
	}
	return &Aggregator{m: m, budget: budgetBytes}, nil
}

// Admit reserves n bytes of the ingest budget, or fails with
// ErrBackpressure. Every successful Admit must be paired with a Release.
func (a *Aggregator) Admit(n int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight+int64(n) > a.budget {
		a.stats.Rejected++
		return fmt.Errorf("%w (%d in flight + %d over %d)", ErrBackpressure, a.inflight, n, a.budget)
	}
	a.inflight += int64(n)
	return nil
}

// Release returns n admitted bytes to the budget.
func (a *Aggregator) Release(n int) {
	a.mu.Lock()
	a.inflight -= int64(n)
	if a.inflight < 0 {
		a.inflight = 0
	}
	a.mu.Unlock()
}

// IngestWire admits, parses and folds in one marshaled report — the
// whole producer path in one call. The in-process API for sweeps; the
// HTTP endpoint splits the same steps around the body read.
func (a *Aggregator) IngestWire(data []byte) error {
	if err := a.Admit(len(data)); err != nil {
		return err
	}
	defer a.Release(len(data))
	var r Report
	if err := r.UnmarshalBinary(data); err != nil {
		a.mu.Lock()
		a.stats.Errored++
		a.mu.Unlock()
		return err
	}
	return a.Ingest(&r)
}

// Ingest folds one parsed report into the map.
func (a *Aggregator) Ingest(r *Report) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.m.Absorb(r); err != nil {
		a.stats.Errored++
		return err
	}
	a.stats.Ingested++
	return nil
}

// MapBytes marshals the current map — the canonical aggregation result
// the determinism sweep compares across worker counts.
func (a *Aggregator) MapBytes() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m.MarshalBinary()
}

// Summarize returns the current map's Summary.
func (a *Aggregator) Summarize() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m.Summarize()
}

// Stats returns the ingest counters.
func (a *Aggregator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.InflightBytes = a.inflight
	s.BudgetBytes = a.budget
	return s
}
