package sense

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postReport(t *testing.T, srv *httptest.Server, body []byte) *http.Response {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/reports", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHandlerIngestAndMap(t *testing.T) {
	a := testAggregator(t, 0)
	srv := httptest.NewServer(NewHandler(a))
	defer srv.Close()

	wire, err := reportFor(2, 8, -300).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if resp := postReport(t, srv, wire); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	// The served map equals the aggregator's own marshal.
	resp, err := srv.Client().Get(srv.URL + "/map")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	want, _ := a.MapBytes()
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("GET /map differs from MapBytes")
	}
	var m Map
	if err := m.UnmarshalBinary(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if m.Reports != 1 {
		t.Fatalf("served map has %d reports", m.Reports)
	}

	// Summary and stats decode as JSON.
	var sum Summary
	getJSON(t, srv, "/map/summary", &sum)
	if sum.Reports != 1 || sum.Bins != 8 {
		t.Fatalf("summary %+v", sum)
	}
	var st Stats
	getJSON(t, srv, "/stats", &st)
	if st.Ingested != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerRejections(t *testing.T) {
	a := testAggregator(t, 0)
	srv := httptest.NewServer(NewHandler(a))
	defer srv.Close()

	if resp := postReport(t, srv, []byte("not a report")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage status %d", resp.StatusCode)
	}
	// Valid wire form, wrong grid: unprocessable.
	off, _ := reportFor(99, 8, 0).MarshalBinary()
	if resp := postReport(t, srv, off); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-grid status %d", resp.StatusCode)
	}
	// A body over the report cap never reaches the parser.
	huge := make([]byte, WireSize(MaxReportBins)+1)
	if resp := postReport(t, srv, huge); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize status %d", resp.StatusCode)
	}
}

func TestHandlerBackpressure(t *testing.T) {
	a := testAggregator(t, 10)
	srv := httptest.NewServer(NewHandler(a))
	defer srv.Close()
	wire, _ := reportFor(0, 8, 0).MarshalBinary()
	resp := postReport(t, srv, wire)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["error"] == "" {
		t.Fatal("no error body")
	}
}
