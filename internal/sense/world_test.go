package sense

import (
	"bytes"
	"math"
	"testing"
)

// quickWorld shrinks the default world so unit tests stay fast.
func quickWorld() World {
	w := DefaultWorld()
	w.TickSamples = 512
	w.ChunkSamples = 96
	return w
}

func TestWorldValidate(t *testing.T) {
	good := quickWorld()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*World){
		func(w *World) { w.SampleRate = 0 },
		func(w *World) { w.SampleRate = math.Inf(1) },
		func(w *World) { w.TickSamples = 0 },
		func(w *World) { w.ChunkSamples = 0 },
		func(w *World) { w.TickSeconds = 0 },
		func(w *World) { w.Emitters = nil },
		func(w *World) { w.Emitters[0].FreqHz = w.SampleRate },
		func(w *World) { w.Emitters[0].Duty = 1.5 },
	}
	for i, mutate := range cases {
		w := quickWorld()
		w.Emitters = append([]Emitter(nil), w.Emitters...)
		mutate(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEmitterActive(t *testing.T) {
	if !EmitterActive(1, 0, 0, 1) || EmitterActive(1, 0, 0, 0) {
		t.Fatal("degenerate duties")
	}
	// The schedule is deterministic and roughly honors the duty cycle.
	on := 0
	const ticks = 2000
	for tick := 0; tick < ticks; tick++ {
		a := EmitterActive(7, 2, tick, 0.3)
		if a != EmitterActive(7, 2, tick, 0.3) {
			t.Fatal("schedule not deterministic")
		}
		if a {
			on++
		}
	}
	if frac := float64(on) / ticks; math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("duty 0.3 produced %g", frac)
	}
	// Different emitters get decorrelated schedules.
	same := 0
	for tick := 0; tick < ticks; tick++ {
		if EmitterActive(7, 0, tick, 0.5) == EmitterActive(7, 1, tick, 0.5) {
			same++
		}
	}
	if same == ticks {
		t.Fatal("emitter schedules identical")
	}
}

func TestNewSensorRejects(t *testing.T) {
	w := quickWorld()
	if _, err := NewSensor(&w, 100, 1); err == nil {
		t.Error("non-power-of-two FFT accepted")
	}
	if _, err := NewSensor(&w, MaxReportBins*2, 1); err == nil {
		t.Error("oversized FFT accepted")
	}
	bad := quickWorld()
	bad.TickSamples = 0
	if _, err := NewSensor(&bad, 64, 1); err == nil {
		t.Error("invalid world accepted")
	}
}

// TestSensorPureFunction pins the determinism contract: a report depends
// only on (seed, node, tick) — not on which sensor instance produced it
// or in what order it measured.
func TestSensorPureFunction(t *testing.T) {
	w := quickWorld()
	a, err := NewSensor(&w, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSensor(&w, 64, 99)
	if err != nil {
		t.Fatal(err)
	}
	// a measures in order; b interleaves other (node, tick) pairs first.
	wantWire := func(s *Sensor, node, tick int) []byte {
		wire, err := s.Measure(node, tick).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}
	w5t2 := wantWire(a, 5, 2)
	_ = wantWire(b, 0, 0)
	_ = wantWire(b, 5, 3)
	if !bytes.Equal(w5t2, wantWire(b, 5, 2)) {
		t.Fatal("report depends on measurement history")
	}
	// A different seed must change the measurement.
	c, _ := NewSensor(&w, 64, 100)
	if bytes.Equal(w5t2, wantWire(c, 5, 2)) {
		t.Fatal("seed does not reach the measurement")
	}
	// Different nodes see different spectra (different link distances).
	if bytes.Equal(wantWire(a, 0, 2), wantWire(a, 900, 2)) {
		t.Fatal("node index does not reach the measurement")
	}
}

// TestSensorPhysics sanity-checks the world model end to end: a
// always-on strong emitter shows up in the right bin for a near node,
// and occupancy decays with distance.
func TestSensorPhysics(t *testing.T) {
	w := quickWorld()
	w.Emitters = []Emitter{{FreqHz: 250e3, OffsetM: 0, TxPowerDBm: 20, Duty: 1}}
	w.Model.ShadowSigmaDB = 0
	const fft = 64
	s, err := NewSensor(&w, fft, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Measure(0, 0)

	// The emitter sits at +250 kHz of a 1 MHz band: bin fft/2 + fft/4.
	peakBin, peakQ := 0, int16(math.MinInt16)
	for i, c := range rep.Codes {
		if c > peakQ {
			peakBin, peakQ = i, c
		}
	}
	if want := fft/2 + fft/4; peakBin != want {
		t.Fatalf("peak in bin %d, want %d", peakBin, want)
	}
	// Free-space-ish sanity: received power matches the model's RSSI
	// within the quantizer + estimator slack.
	d := w.NodeStartM
	want := w.Model.RSSIdBm(20, 0, 0, d, 0)
	if got := CodeToDBm(peakQ); math.Abs(got-want) > 1.5 {
		t.Fatalf("peak %g dBm, model says %g", got, want)
	}

	// A node 100× further sees a weaker peak.
	far, _ := NewSensor(&w, fft, 3)
	farRep := far.Measure(2000, 0)
	_, farQ := 0, int16(math.MinInt16)
	for _, c := range farRep.Codes {
		if c > farQ {
			farQ = c
		}
	}
	if farQ >= peakQ {
		t.Fatalf("distance does not attenuate: near %d, far %d", peakQ, farQ)
	}
}

// TestSensorChunkInvariance: the chunk size a sensor streams through must
// not change the measurement (the WelchStream guarantee, exercised
// through the sensor's own path).
func TestSensorChunkInvariance(t *testing.T) {
	for _, chunk := range []int{1, 33, 512} {
		w := quickWorld()
		w.ChunkSamples = chunk
		s, err := NewSensor(&w, 64, 42)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := s.Measure(3, 1).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		ref := quickWorld()
		rs, _ := NewSensor(&ref, 64, 42)
		refWire, _ := rs.Measure(3, 1).MarshalBinary()
		if !bytes.Equal(wire, refWire) {
			t.Fatalf("chunk %d changes the measurement", chunk)
		}
	}
}
