package sense

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/uwsdr/tinysdr/internal/httpjson"
)

// NewHandler serves an aggregator over HTTP, next to the fleet campaign
// API in shape and helpers:
//
//	POST /reports      ingest one binary report (TSPR body)
//	GET  /map          the aggregated occupancy map (binary TSOM)
//	GET  /map/summary  the map condensed to JSON
//	GET  /stats        ingest counters as JSON
//
// A report body over the wire-size cap is rejected before buffering, and
// budget exhaustion surfaces as 429 so slow-consumer backpressure reaches
// remote producers through standard HTTP semantics.
func NewHandler(a *Aggregator) http.Handler {
	maxBody := int64(WireSize(MaxReportBins))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /reports", func(w http.ResponseWriter, r *http.Request) {
		n := int(r.ContentLength)
		if r.ContentLength < 0 || r.ContentLength > maxBody {
			httpjson.Error(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("sense: report body of %d bytes over %d", r.ContentLength, maxBody))
			return
		}
		// Admission happens before the body is buffered: the budget bounds
		// bytes held, not just bytes parsed.
		if err := a.Admit(n); err != nil {
			httpjson.Error(w, http.StatusTooManyRequests, err)
			return
		}
		defer a.Release(n)
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
		if err != nil {
			httpjson.Error(w, http.StatusBadRequest, fmt.Errorf("sense: reading report body: %w", err))
			return
		}
		var rep Report
		if err := rep.UnmarshalBinary(body); err != nil {
			httpjson.Error(w, http.StatusBadRequest, err)
			return
		}
		if err := a.Ingest(&rep); err != nil {
			httpjson.Error(w, http.StatusUnprocessableEntity, err)
			return
		}
		httpjson.Write(w, http.StatusAccepted, a.Stats())
	})
	mux.HandleFunc("GET /map", func(w http.ResponseWriter, r *http.Request) {
		b, err := a.MapBytes()
		if err != nil {
			httpjson.Error(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	})
	mux.HandleFunc("GET /map/summary", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, http.StatusOK, a.Summarize())
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, http.StatusOK, a.Stats())
	})
	return mux
}

// IsBackpressure reports whether an ingest error (local or decoded from
// an HTTP 429) is the backpressure signal.
func IsBackpressure(err error) bool { return errors.Is(err, ErrBackpressure) }
