package sense

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Occupancy map wire format (all integers little-endian):
//
//	magic   "TSOM"
//	version u16  (1)
//	rate    u64  (float64 bits, positive finite)
//	threshQ i16  (occupancy threshold, quarter-dB code)
//	ticks   u32  (1..MaxMapTicks)
//	bins    u16  (1..MaxReportBins; ticks×bins ≤ MaxMapCells)
//	reports u64
//	cells   ticks×bins × { count u32, occupied u32, sumQ i64,
//	                       sumSqQ u64, minQ i16, maxQ i16 }
//	crc     u32  (IEEE CRC-32 of everything above)
//
// Parsing is strict and canonical like the report format: dimensions are
// validated against hard caps before allocation, an empty cell must be
// all-zero, and any accepted input re-marshals to the identical bytes.
const (
	mapMagic   = "TSOM"
	mapVersion = 1

	// MaxMapTicks bounds a map's time rows.
	MaxMapTicks = 1 << 20
	// MaxMapCells bounds the total grid (512 MiB of cells), the real
	// allocation backstop since ticks×bins is what a hostile map declares.
	MaxMapCells = 1 << 24

	cellWireSize = 4 + 4 + 8 + 8 + 2 + 2
)

// Cell accumulates one (tick, bin) grid point's statistics across every
// report that covered it. The moments are exact integers over the
// quarter-dB code domain — the streaming-stats design choice that makes
// aggregation order-free: unlike floating-point Welford updates, integer
// sums are commutative AND associative, so any ingest order, worker
// count, or merge tree produces bit-identical cells. Mean and variance
// are derived on demand, which is the other half of the Welford bargain
// (no catastrophic cancellation: sums of ≤2^15-magnitude codes over ≤2^32
// reports stay exact in 64 bits).
type Cell struct {
	// Count is how many reports covered the cell.
	Count uint32
	// Occupied is how many of them read at or above the map's threshold.
	Occupied uint32
	// SumQ and SumSqQ are the exact first and second moments of the
	// quarter-dB codes.
	SumQ   int64
	SumSqQ uint64
	// MinQ and MaxQ are the extreme codes seen (zero when Count is 0).
	MinQ, MaxQ int16
}

// add folds one code into the cell.
func (c *Cell) add(code, threshQ int16) {
	if c.Count == 0 || code < c.MinQ {
		c.MinQ = code
	}
	if c.Count == 0 || code > c.MaxQ {
		c.MaxQ = code
	}
	c.Count++
	if code >= threshQ {
		c.Occupied++
	}
	c.SumQ += int64(code)
	c.SumSqQ += uint64(int64(code) * int64(code))
}

// merge folds another cell's accumulators into c.
func (c *Cell) merge(o Cell) {
	if o.Count == 0 {
		return
	}
	if c.Count == 0 || o.MinQ < c.MinQ {
		c.MinQ = o.MinQ
	}
	if c.Count == 0 || o.MaxQ > c.MaxQ {
		c.MaxQ = o.MaxQ
	}
	c.Count += o.Count
	c.Occupied += o.Occupied
	c.SumQ += o.SumQ
	c.SumSqQ += o.SumSqQ
}

// Occupancy is the fraction of covering reports at or above threshold.
func (c Cell) Occupancy() float64 {
	if c.Count == 0 {
		return 0
	}
	return float64(c.Occupied) / float64(c.Count)
}

// MeanDBm is the mean reported power; an uncovered cell reads -Inf.
func (c Cell) MeanDBm() float64 {
	if c.Count == 0 {
		return math.Inf(-1)
	}
	return float64(c.SumQ) / float64(c.Count) * CodeUnitDB
}

// StdDB is the population standard deviation of reported power in dB.
func (c Cell) StdDB() float64 {
	if c.Count == 0 {
		return 0
	}
	n := float64(c.Count)
	mean := float64(c.SumQ) / n
	v := float64(c.SumSqQ)/n - mean*mean
	if v < 0 { // guard the float rounding of the derived form
		v = 0
	}
	return math.Sqrt(v) * CodeUnitDB
}

// Map is a time×frequency occupancy grid: Ticks rows of Bins cells, row
// tick t holding the fleet's aggregated view of the band during tick t.
type Map struct {
	// Ticks and Bins are the grid dimensions.
	Ticks, Bins int
	// SampleRate is the sensed bandwidth; reports must match it exactly.
	SampleRate float64
	// ThresholdQ is the occupancy threshold as a quarter-dB code.
	ThresholdQ int16
	// Reports counts every report absorbed or merged in.
	Reports uint64
	// Cells is the row-major grid: Cells[t*Bins+b].
	Cells []Cell
}

// NewMap returns an empty grid. The threshold is given in dBm and
// quantized to the code domain so map and report occupancy agree exactly.
func NewMap(ticks, bins int, sampleRate, thresholdDBm float64) (*Map, error) {
	if ticks < 1 || ticks > MaxMapTicks {
		return nil, fmt.Errorf("sense: map of %d ticks outside [1, %d]", ticks, MaxMapTicks)
	}
	if bins < 1 || bins > MaxReportBins {
		return nil, fmt.Errorf("sense: map of %d bins outside [1, %d]", bins, MaxReportBins)
	}
	if ticks*bins > MaxMapCells {
		return nil, fmt.Errorf("sense: map of %d cells over %d", ticks*bins, MaxMapCells)
	}
	if !(sampleRate > 0) || math.IsInf(sampleRate, 0) {
		return nil, fmt.Errorf("sense: map sample rate %g", sampleRate)
	}
	return &Map{
		Ticks: ticks, Bins: bins,
		SampleRate: sampleRate,
		ThresholdQ: QuantizeDBm(thresholdDBm),
		Cells:      make([]Cell, ticks*bins),
	}, nil
}

// Cell returns the grid point for (tick, bin); it panics out of range.
func (m *Map) Cell(tick, bin int) *Cell {
	if tick < 0 || tick >= m.Ticks || bin < 0 || bin >= m.Bins {
		panic("sense: map cell out of range")
	}
	return &m.Cells[tick*m.Bins+bin]
}

// Absorb folds one report into the grid. The report's geometry must
// match: same sample rate, same bin count, tick inside the grid.
func (m *Map) Absorb(r *Report) error {
	if r.SampleRate != m.SampleRate {
		return fmt.Errorf("sense: report rate %g on a %g map", r.SampleRate, m.SampleRate)
	}
	if len(r.Codes) != m.Bins {
		return fmt.Errorf("sense: report of %d bins on a %d-bin map", len(r.Codes), m.Bins)
	}
	if int(r.Tick) >= m.Ticks {
		return fmt.Errorf("sense: report tick %d on a %d-tick map", r.Tick, m.Ticks)
	}
	row := m.Cells[int(r.Tick)*m.Bins : (int(r.Tick)+1)*m.Bins]
	for i, code := range r.Codes {
		row[i].add(code, m.ThresholdQ)
	}
	m.Reports++
	return nil
}

// Merge folds another map with identical geometry into m — the shard
// combiner. Because cells are exact integer moments, merging is
// commutative and associative: any merge tree yields the same bits.
func (m *Map) Merge(o *Map) error {
	if o.Ticks != m.Ticks || o.Bins != m.Bins ||
		o.SampleRate != m.SampleRate || o.ThresholdQ != m.ThresholdQ {
		return fmt.Errorf("sense: merging mismatched maps (%d×%d@%g/%d vs %d×%d@%g/%d)",
			o.Ticks, o.Bins, o.SampleRate, o.ThresholdQ,
			m.Ticks, m.Bins, m.SampleRate, m.ThresholdQ)
	}
	for i := range m.Cells {
		m.Cells[i].merge(o.Cells[i])
	}
	m.Reports += o.Reports
	return nil
}

// Summary condenses the grid for status endpoints and logs.
type Summary struct {
	// Ticks, Bins and Reports mirror the map.
	Ticks   int    `json:"ticks"`
	Bins    int    `json:"bins"`
	Reports uint64 `json:"reports"`
	// ThresholdDBm is the occupancy threshold.
	ThresholdDBm float64 `json:"threshold_dbm"`
	// Occupancy is the mean occupancy over covered cells.
	Occupancy float64 `json:"occupancy"`
	// PeakDBm is the strongest power any report saw, -Inf when empty.
	PeakDBm float64 `json:"peak_dbm"`
}

// Summarize computes the map's Summary.
func (m *Map) Summarize() Summary {
	s := Summary{
		Ticks: m.Ticks, Bins: m.Bins, Reports: m.Reports,
		ThresholdDBm: CodeToDBm(m.ThresholdQ),
		PeakDBm:      math.Inf(-1),
	}
	var covered, occ float64
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Count == 0 {
			continue
		}
		covered++
		occ += c.Occupancy()
		if p := CodeToDBm(c.MaxQ); p > s.PeakDBm {
			s.PeakDBm = p
		}
	}
	if covered > 0 {
		s.Occupancy = occ / covered
	}
	return s
}

// MarshalBinary renders the canonical wire form.
func (m *Map) MarshalBinary() ([]byte, error) {
	if m.Ticks < 1 || m.Ticks > MaxMapTicks || m.Bins < 1 || m.Bins > MaxReportBins ||
		m.Ticks*m.Bins > MaxMapCells || len(m.Cells) != m.Ticks*m.Bins {
		return nil, fmt.Errorf("sense: marshaling %d×%d map with %d cells", m.Ticks, m.Bins, len(m.Cells))
	}
	if !(m.SampleRate > 0) || math.IsInf(m.SampleRate, 0) {
		return nil, fmt.Errorf("sense: map sample rate %g", m.SampleRate)
	}
	out := make([]byte, 0, 36+cellWireSize*len(m.Cells))
	out = append(out, mapMagic...)
	out = binary.LittleEndian.AppendUint16(out, mapVersion)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(m.SampleRate))
	out = binary.LittleEndian.AppendUint16(out, uint16(m.ThresholdQ))
	out = binary.LittleEndian.AppendUint32(out, uint32(m.Ticks))
	out = binary.LittleEndian.AppendUint16(out, uint16(m.Bins))
	out = binary.LittleEndian.AppendUint64(out, m.Reports)
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Count == 0 && (c.Occupied != 0 || c.SumQ != 0 || c.SumSqQ != 0 || c.MinQ != 0 || c.MaxQ != 0) {
			return nil, fmt.Errorf("sense: cell %d has stats but no count", i)
		}
		if c.Occupied > c.Count {
			return nil, fmt.Errorf("sense: cell %d occupied %d of %d", i, c.Occupied, c.Count)
		}
		out = binary.LittleEndian.AppendUint32(out, c.Count)
		out = binary.LittleEndian.AppendUint32(out, c.Occupied)
		out = binary.LittleEndian.AppendUint64(out, uint64(c.SumQ))
		out = binary.LittleEndian.AppendUint64(out, c.SumSqQ)
		out = binary.LittleEndian.AppendUint16(out, uint16(c.MinQ))
		out = binary.LittleEndian.AppendUint16(out, uint16(c.MaxQ))
	}
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out)), nil
}

// UnmarshalBinary parses and validates a map. It never allocates
// proportionally to the declared grid before validating it against the
// package caps.
func (m *Map) UnmarshalBinary(data []byte) error {
	rd := reader{data: data}
	if string(rd.take(4)) != mapMagic {
		return fmt.Errorf("sense: bad map magic")
	}
	if v := rd.u16(); v != mapVersion {
		return fmt.Errorf("sense: map version %d, want %d", v, mapVersion)
	}
	rate := math.Float64frombits(rd.u64())
	threshQ := int16(rd.u16())
	ticks := int(rd.u32())
	bins := int(rd.u16())
	reports := rd.u64()
	if rd.err != nil {
		return rd.err
	}
	if !(rate > 0) || math.IsInf(rate, 0) {
		return fmt.Errorf("sense: map sample rate %g", rate)
	}
	if ticks == 0 || ticks > MaxMapTicks {
		return fmt.Errorf("sense: map of %d ticks outside [1, %d]", ticks, MaxMapTicks)
	}
	if bins == 0 || bins > MaxReportBins {
		return fmt.Errorf("sense: map of %d bins outside [1, %d]", bins, MaxReportBins)
	}
	if ticks*bins > MaxMapCells {
		return fmt.Errorf("sense: map of %d cells over %d", ticks*bins, MaxMapCells)
	}
	if want := cellWireSize*ticks*bins + 4; len(rd.data)-rd.off != want {
		return fmt.Errorf("sense: %d trailing map bytes, want %d", len(rd.data)-rd.off, want)
	}
	cells := make([]Cell, ticks*bins)
	for i := range cells {
		c := Cell{
			Count: rd.u32(), Occupied: rd.u32(),
			SumQ: int64(rd.u64()), SumSqQ: rd.u64(),
			MinQ: int16(rd.u16()), MaxQ: int16(rd.u16()),
		}
		if c.Count == 0 && (c.Occupied != 0 || c.SumQ != 0 || c.SumSqQ != 0 || c.MinQ != 0 || c.MaxQ != 0) {
			return fmt.Errorf("sense: cell %d has stats but no count", i)
		}
		if c.Occupied > c.Count {
			return fmt.Errorf("sense: cell %d occupied %d of %d", i, c.Occupied, c.Count)
		}
		if c.Count > 0 && c.MinQ > c.MaxQ {
			return fmt.Errorf("sense: cell %d min code %d over max %d", i, c.MinQ, c.MaxQ)
		}
		cells[i] = c
	}
	crc := rd.u32()
	if rd.err != nil {
		return rd.err
	}
	if got := crc32.ChecksumIEEE(data[:len(data)-4]); got != crc {
		return fmt.Errorf("sense: map CRC %08x, want %08x", crc, got)
	}
	*m = Map{
		Ticks: ticks, Bins: bins,
		SampleRate: rate, ThresholdQ: threshQ,
		Reports: reports, Cells: cells,
	}
	return nil
}
