package sense

import (
	"bytes"
	"math"
	"testing"
)

func testMap(t *testing.T, ticks, bins int) *Map {
	t.Helper()
	m, err := NewMap(ticks, bins, 1e6, -85)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func reportFor(tick int, bins int, base int16) *Report {
	codes := make([]int16, bins)
	for i := range codes {
		codes[i] = base + int16(i)
	}
	return &Report{Node: 1, Tick: uint32(tick), SampleRate: 1e6, Codes: codes}
}

func TestNewMapRejects(t *testing.T) {
	for _, c := range []struct{ ticks, bins int }{
		{0, 8}, {MaxMapTicks + 1, 8}, {8, 0}, {8, MaxReportBins + 1}, {MaxMapTicks, MaxReportBins},
	} {
		if _, err := NewMap(c.ticks, c.bins, 1e6, -85); err == nil {
			t.Errorf("%d×%d accepted", c.ticks, c.bins)
		}
	}
	if _, err := NewMap(4, 8, math.Inf(1), -85); err == nil {
		t.Error("infinite rate accepted")
	}
}

func TestMapAbsorbAndStats(t *testing.T) {
	m := testMap(t, 4, 8)
	// Threshold -85 dBm quantizes to -340; codes straddle it.
	r := reportFor(2, 8, -344) // codes -344..-337: 4 below, 4 at/above
	if err := m.Absorb(r); err != nil {
		t.Fatal(err)
	}
	if err := m.Absorb(r); err != nil {
		t.Fatal(err)
	}
	if m.Reports != 2 {
		t.Fatalf("reports %d", m.Reports)
	}
	c := m.Cell(2, 0)
	if c.Count != 2 || c.Occupied != 0 || c.MinQ != -344 || c.MaxQ != -344 {
		t.Fatalf("cell 0: %+v", *c)
	}
	if got := m.Cell(2, 4).Occupancy(); got != 1 {
		t.Fatalf("occupancy %g at the threshold code", got)
	}
	if got := c.MeanDBm(); got != -86 {
		t.Fatalf("mean %g, want -86", got)
	}
	if got := c.StdDB(); got != 0 {
		t.Fatalf("std %g of identical codes", got)
	}
	if got := m.Cell(0, 0).MeanDBm(); !math.IsInf(got, -1) {
		t.Fatalf("uncovered cell mean %g", got)
	}
	if got := m.Cell(0, 0).StdDB(); got != 0 {
		t.Fatalf("uncovered cell std %g", got)
	}

	// Spread codes: std of {-344, -336} is 4 codes = 1 dB around -85.
	r2 := reportFor(2, 8, -336)
	if err := m.Absorb(r2); err != nil {
		t.Fatal(err)
	}
	c = m.Cell(2, 0)
	if mean := c.MeanDBm(); math.Abs(mean-(-85.33333333333333)) > 1e-12 {
		t.Fatalf("mean %g", mean)
	}
	if sd := c.StdDB(); math.Abs(sd-math.Sqrt(128.0/9)*0.25) > 1e-12 {
		t.Fatalf("std %g", sd)
	}
}

func TestMapAbsorbRejects(t *testing.T) {
	m := testMap(t, 4, 8)
	bad := reportFor(0, 8, 0)
	bad.SampleRate = 2e6
	if err := m.Absorb(bad); err == nil {
		t.Error("rate mismatch accepted")
	}
	if err := m.Absorb(reportFor(0, 4, 0)); err == nil {
		t.Error("bin mismatch accepted")
	}
	if err := m.Absorb(reportFor(4, 8, 0)); err == nil {
		t.Error("out-of-range tick accepted")
	}
	if m.Reports != 0 {
		t.Fatalf("rejected reports counted: %d", m.Reports)
	}
}

func TestMapCellPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	testMap(t, 2, 2).Cell(2, 0)
}

// TestMapMergeEquivalence pins the order-free property: absorbing a
// report set directly, sharding it across two maps merged either way, or
// absorbing in reverse all produce identical bytes.
func TestMapMergeEquivalence(t *testing.T) {
	reports := []*Report{
		reportFor(0, 8, -400), reportFor(1, 8, -300), reportFor(0, 8, -350),
		reportFor(3, 8, -500), reportFor(1, 8, -320), reportFor(2, 8, 100),
	}
	whole := testMap(t, 4, 8)
	for _, r := range reports {
		if err := whole.Absorb(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := whole.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	reversed := testMap(t, 4, 8)
	for i := len(reports) - 1; i >= 0; i-- {
		if err := reversed.Absorb(reports[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := reversed.MarshalBinary(); !bytes.Equal(got, want) {
		t.Fatal("reverse-order absorb differs")
	}

	a, b := testMap(t, 4, 8), testMap(t, 4, 8)
	for i, r := range reports {
		var err error
		if i%2 == 0 {
			err = a.Absorb(r)
		} else {
			err = b.Absorb(r)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.MarshalBinary(); !bytes.Equal(got, want) {
		t.Fatal("sharded merge differs")
	}
}

func TestMapMergeRejectsMismatch(t *testing.T) {
	m := testMap(t, 4, 8)
	o := testMap(t, 4, 4)
	if err := m.Merge(o); err == nil {
		t.Error("bin mismatch merged")
	}
	o2, _ := NewMap(4, 8, 1e6, -60)
	if err := m.Merge(o2); err == nil {
		t.Error("threshold mismatch merged")
	}
}

func TestMapMarshalRoundTrip(t *testing.T) {
	m := testMap(t, 3, 8)
	for _, r := range []*Report{reportFor(0, 8, -300), reportFor(2, 8, -200)} {
		if err := m.Absorb(r); err != nil {
			t.Fatal(err)
		}
	}
	wire, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Map
	if err := got.UnmarshalBinary(wire); err != nil {
		t.Fatal(err)
	}
	if got.Ticks != m.Ticks || got.Bins != m.Bins || got.Reports != m.Reports ||
		got.ThresholdQ != m.ThresholdQ || got.SampleRate != m.SampleRate {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.Cells {
		if got.Cells[i] != m.Cells[i] {
			t.Fatalf("cell %d: %+v != %+v", i, got.Cells[i], m.Cells[i])
		}
	}
	again, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, again) {
		t.Fatal("re-marshal differs")
	}
}

func TestMapUnmarshalRejectsCorruption(t *testing.T) {
	m := testMap(t, 2, 4)
	if err := m.Absorb(reportFor(1, 4, -100)); err != nil {
		t.Fatal(err)
	}
	wire, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		var mm Map
		if err := mm.UnmarshalBinary(f(append([]byte(nil), wire...))); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b })
	mutate("bad version", func(b []byte) []byte { b[4] = 9; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("trailing", func(b []byte) []byte { return append(b, 1) })
	mutate("flipped cell", func(b []byte) []byte { b[40] ^= 1; return b })
	// Huge declared dims must be rejected before allocation: ticks at 16.
	mutate("huge ticks", func(b []byte) []byte {
		b[16], b[17], b[18], b[19] = 0xFF, 0xFF, 0xFF, 0xFF
		return b
	})
	mutate("zero bins", func(b []byte) []byte { b[20], b[21] = 0, 0; return b })

	// A stats-without-count cell fails marshal and unmarshal validation.
	bad := testMap(t, 1, 1)
	bad.Cells[0].SumQ = 5
	if _, err := bad.MarshalBinary(); err == nil {
		t.Error("ghost-stats cell marshaled")
	}
	bad.Cells[0] = Cell{Count: 1, Occupied: 2}
	if _, err := bad.MarshalBinary(); err == nil {
		t.Error("occupied>count cell marshaled")
	}
}

func TestMapSummarize(t *testing.T) {
	m := testMap(t, 2, 4)
	if s := m.Summarize(); s.Occupancy != 0 || !math.IsInf(s.PeakDBm, -1) {
		t.Fatalf("empty summary: %+v", s)
	}
	// One report fully above threshold in tick 0.
	if err := m.Absorb(reportFor(0, 4, 0)); err != nil {
		t.Fatal(err)
	}
	s := m.Summarize()
	if s.Reports != 1 || s.Occupancy != 1 {
		t.Fatalf("summary: %+v", s)
	}
	if s.PeakDBm != CodeToDBm(3) {
		t.Fatalf("peak %g", s.PeakDBm)
	}
	if s.ThresholdDBm != -85 {
		t.Fatalf("threshold %g", s.ThresholdDBm)
	}
}
