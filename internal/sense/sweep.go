package sense

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/par"
)

// SweepConfig drives a simulated sensing campaign: Nodes mobile sensors
// measuring Ticks intervals of the World, reports crossing the real wire
// format into one aggregator.
type SweepConfig struct {
	// World is the shared RF environment.
	World World
	// FFTSize is each sensor's spectral resolution (power of two).
	FFTSize int
	// Nodes and Ticks set the campaign size: Nodes×Ticks reports.
	Nodes, Ticks int
	// Seed derives every measurement; same seed, same map bits.
	Seed int64
	// Workers sizes the pool (par.ResolveWorkers semantics). The result
	// is byte-identical at any worker count.
	Workers int
	// ThresholdDBm is the occupancy decision threshold.
	ThresholdDBm float64
}

// SweepResult is a campaign's outcome.
type SweepResult struct {
	// MapBytes is the canonical marshaled occupancy map — the bytes the
	// determinism gate compares across worker counts.
	MapBytes []byte
	// Reports is how many reports were ingested (Nodes×Ticks).
	Reports int
	// WireBytes is the total marshaled report volume that crossed the
	// ingest path.
	WireBytes int64
}

// Sweep runs the campaign: each worker owns one Sensor and serves nodes
// from the shared par pool, marshaling every (node, tick) report through
// the wire format into the aggregator — the same bytes a remote node
// would POST. Reports are pure functions of (seed, node, tick) and map
// cells are order-free integer moments, so the returned map is
// bit-reproducible at any worker count.
func Sweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Nodes < 1 || cfg.Ticks < 1 {
		return nil, fmt.Errorf("sense: sweep of %d nodes × %d ticks", cfg.Nodes, cfg.Ticks)
	}
	m, err := NewMap(cfg.Ticks, cfg.FFTSize, cfg.World.SampleRate, cfg.ThresholdDBm)
	if err != nil {
		return nil, err
	}
	// The sweep's producers are lock-step with ingestion (each worker
	// folds its report in before measuring the next), so the budget only
	// needs one in-flight report per worker; size it generously.
	budget := int64(WireSize(cfg.FFTSize)) * int64(par.ResolveWorkers(cfg.Workers)+1) * 2
	agg, err := NewAggregator(m, budget)
	if err != nil {
		return nil, err
	}

	bytesPerNode, err := par.Trials(cfg.Workers, cfg.Nodes,
		func() (*Sensor, error) { return NewSensor(&cfg.World, cfg.FFTSize, cfg.Seed) },
		func(s *Sensor, node int) (int64, error) {
			var total int64
			for tick := 0; tick < cfg.Ticks; tick++ {
				wire, err := s.Measure(node, tick).MarshalBinary()
				if err != nil {
					return 0, fmt.Errorf("sense: node %d tick %d: %w", node, tick, err)
				}
				if err := agg.IngestWire(wire); err != nil {
					return 0, fmt.Errorf("sense: node %d tick %d: %w", node, tick, err)
				}
				total += int64(len(wire))
			}
			return total, nil
		})
	if err != nil {
		return nil, err
	}
	var wireBytes int64
	for _, b := range bytesPerNode {
		wireBytes += b
	}
	mapBytes, err := agg.MapBytes()
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		MapBytes:  mapBytes,
		Reports:   cfg.Nodes * cfg.Ticks,
		WireBytes: wireBytes,
	}, nil
}
