package lora

import (
	"errors"
	"fmt"
)

// Frame assembly: payload bytes <-> chirp symbol values (§4.1, Fig. 5).
//
// The symbol stream is organized in blocks. The first block always encodes
// at coding rate 4/8 with sfApp = SF-2 ("reduced rate"): its 8 symbols carry
// the explicit header (5 nibbles) plus the first payload nibbles. Subsequent
// blocks encode at the configured CR with sfApp = SF (or SF-2 when
// LowDataRateOptimize is set) and yield 4+CR symbols each.
//
// Reduced-rate symbols carry their bits in the top SF-2 positions (value
// << 2), so ±1 FFT-bin errors cannot corrupt them — the property that makes
// the header more robust than the payload.

// MaxPayload is the longest LoRa payload in bytes.
const MaxPayload = 255

// headerNibbleCount is the explicit header size: length (2 nibbles),
// flags (1), checksum (2).
const headerNibbleCount = 5

// Header is the decoded explicit PHY header.
type Header struct {
	PayloadLen int
	CR         CodingRate
	HasCRC     bool
}

func (p Params) firstBlockApp() int { return p.SF - 2 }

func (p Params) payloadBlockApp() int {
	if p.LowDataRateOptimize {
		return p.SF - 2
	}
	return p.SF
}

// nibbles converts payload (+CRC) into the transport nibble stream:
// whitened payload low-nibble first, then the unwhitened CRC.
func (p Params) nibbles(payload []byte) []byte {
	white := whiten(append([]byte(nil), payload...))
	out := make([]byte, 0, 2*len(payload)+4)
	for _, b := range white {
		out = append(out, b&0xF, b>>4)
	}
	if p.CRC {
		c := crc16(payload)
		out = append(out, byte(c)&0xF, byte(c)>>4&0xF, byte(c>>8)&0xF, byte(c>>12))
	}
	return out
}

// assembleNibbles reverses nibbles: strips and checks the CRC, de-whitens.
func (p Params) assembleNibbles(nibs []byte, payloadLen int) (payload []byte, crcOK bool, err error) {
	need := 2 * payloadLen
	if p.CRC {
		need += 4
	}
	if len(nibs) < need {
		return nil, false, fmt.Errorf("lora: %d nibbles for %d-byte payload", len(nibs), payloadLen)
	}
	payload = make([]byte, payloadLen)
	for i := range payload {
		payload[i] = nibs[2*i]&0xF | nibs[2*i+1]<<4
	}
	whiten(payload)
	crcOK = true
	if p.CRC {
		c := uint16OfNibble(nibs[2*payloadLen]) |
			uint16OfNibble(nibs[2*payloadLen+1])<<4 |
			uint16OfNibble(nibs[2*payloadLen+2])<<8 |
			uint16OfNibble(nibs[2*payloadLen+3])<<12
		crcOK = c == crc16(payload)
	}
	return payload, crcOK, nil
}

func uint16OfNibble(b byte) uint16 { return uint16(b & 0xF) }

// headerNibbles encodes the explicit header for a payload length.
func (p Params) headerNibbles(payloadLen int) []byte {
	n0 := byte(payloadLen >> 4)
	n1 := byte(payloadLen & 0xF)
	flag := byte(0)
	if p.CRC {
		flag = 1
	}
	n2 := byte(p.CR)<<1 | flag
	chk := headerChecksum(n0, n1, n2)
	return []byte{n0, n1, n2, chk >> 4, chk & 0xF}
}

func parseHeader(nibs []byte) (Header, error) {
	if len(nibs) < headerNibbleCount {
		return Header{}, errors.New("lora: truncated header")
	}
	n0, n1, n2 := nibs[0]&0xF, nibs[1]&0xF, nibs[2]&0xF
	chk := nibs[3]&0xF<<4 | nibs[4]&0xF
	if headerChecksum(n0, n1, n2) != chk {
		return Header{}, errors.New("lora: header checksum mismatch")
	}
	h := Header{
		PayloadLen: int(n0)<<4 | int(n1),
		CR:         CodingRate(n2 >> 1),
		HasCRC:     n2&1 == 1,
	}
	if h.CR < CR45 || h.CR > CR48 {
		return Header{}, fmt.Errorf("lora: header advertises invalid CR %d", int(h.CR))
	}
	return h, nil
}

// encodeBlocks converts the transport nibble stream into symbol values.
func (p Params) encodeBlocks(payload []byte) ([]int, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("lora: payload %d exceeds %d bytes", len(payload), MaxPayload)
	}
	nibs := p.nibbles(payload)
	if p.ExplicitHeader {
		nibs = append(p.headerNibbles(len(payload)), nibs...)
	}

	var symbols []int
	// Block 1: CR 4/8, reduced rate.
	app1 := p.firstBlockApp()
	block := make([]uint16, app1)
	for k := 0; k < app1; k++ {
		var nb byte
		if k < len(nibs) {
			nb = nibs[k]
		}
		block[k] = hammingEncode(nb, CR48)
	}
	for _, s := range interleaveBlock(block, 8) {
		symbols = append(symbols, grayDecode(s)<<2)
	}
	nibs = nibs[min(app1, len(nibs)):]

	// Payload blocks at the configured rate.
	app := p.payloadBlockApp()
	shift := p.SF - app
	w := p.CR.CodewordBits()
	for len(nibs) > 0 {
		block = make([]uint16, app)
		for k := 0; k < app; k++ {
			var nb byte
			if k < len(nibs) {
				nb = nibs[k]
			}
			block[k] = hammingEncode(nb, p.CR)
		}
		for _, s := range interleaveBlock(block, w) {
			symbols = append(symbols, grayDecode(s)<<uint(shift))
		}
		nibs = nibs[min(app, len(nibs)):]
	}
	return symbols, nil
}

// decodeFirstBlock recovers the nibbles of block 1 from its 8 symbols.
// fecOK reports whether every codeword decoded consistently.
func (p Params) decodeFirstBlock(symbols []int) (nibs []byte, fecOK bool, err error) {
	if len(symbols) < 8 {
		return nil, false, errors.New("lora: first block truncated")
	}
	app := p.firstBlockApp()
	raw := make([]int, 8)
	for i, s := range symbols[:8] {
		raw[i] = grayEncode(s>>2) & (1<<uint(app) - 1)
	}
	fecOK = true
	for _, cw := range deinterleaveBlock(raw, app) {
		nb, ok := hammingDecode(cw, CR48)
		if !ok {
			fecOK = false
		}
		nibs = append(nibs, nb)
	}
	return nibs, fecOK, nil
}

// decodePayloadBlocks recovers nibbles from the post-header symbol stream.
func (p Params) decodePayloadBlocks(symbols []int) (nibs []byte, fecOK bool) {
	app := p.payloadBlockApp()
	shift := p.SF - app
	w := p.CR.CodewordBits()
	fecOK = true
	for start := 0; start+w <= len(symbols); start += w {
		raw := make([]int, w)
		for i, s := range symbols[start : start+w] {
			raw[i] = grayEncode(s>>uint(shift)) & (1<<uint(app) - 1)
		}
		for _, cw := range deinterleaveBlock(raw, app) {
			nb, ok := hammingDecode(cw, p.CR)
			if !ok {
				fecOK = false
			}
			nibs = append(nibs, nb)
		}
	}
	return nibs, fecOK
}

// symbolCountFor returns how many payload-section symbols a packet carries,
// derived from the block layout (it equals the Semtech air-time formula).
func (p Params) symbolCountFor(payloadLen int) int {
	nibbles := 2 * payloadLen
	if p.CRC {
		nibbles += 4
	}
	if p.ExplicitHeader {
		nibbles += headerNibbleCount
	}
	inFirst := min(nibbles, p.firstBlockApp())
	rest := nibbles - inFirst
	app := p.payloadBlockApp()
	blocks := (rest + app - 1) / app
	return 8 + blocks*p.CR.CodewordBits()
}
