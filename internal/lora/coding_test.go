package lora

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHammingRoundTripAllRates(t *testing.T) {
	for _, cr := range []CodingRate{CR45, CR46, CR47, CR48} {
		for n := 0; n < 16; n++ {
			cw := hammingEncode(byte(n), cr)
			if cw >= 1<<uint(cr.CodewordBits()) {
				t.Fatalf("CR %v: codeword %#x wider than %d bits", cr, cw, cr.CodewordBits())
			}
			got, ok := hammingDecode(cw, cr)
			if !ok || got != byte(n) {
				t.Fatalf("CR %v nibble %d: decode = %d, ok=%v", cr, n, got, ok)
			}
		}
	}
}

func TestHammingSingleErrorCorrection(t *testing.T) {
	// CR 4/7 and 4/8 must correct every single-bit error.
	for _, cr := range []CodingRate{CR47, CR48} {
		for n := 0; n < 16; n++ {
			cw := hammingEncode(byte(n), cr)
			for bit := 0; bit < cr.CodewordBits(); bit++ {
				got, ok := hammingDecode(cw^(1<<uint(bit)), cr)
				if !ok || got != byte(n) {
					t.Fatalf("CR %v nibble %d bit %d: got %d ok=%v", cr, n, bit, got, ok)
				}
			}
		}
	}
}

func TestHammingSingleErrorDetection(t *testing.T) {
	// CR 4/5 must flag any single-bit error.
	for n := 0; n < 16; n++ {
		cw := hammingEncode(byte(n), CR45)
		for bit := 0; bit < 5; bit++ {
			if _, ok := hammingDecode(cw^(1<<uint(bit)), CR45); ok {
				t.Fatalf("CR 4/5 nibble %d bit %d: error not detected", n, bit)
			}
		}
	}
}

func TestHammingDoubleErrorDetectionCR48(t *testing.T) {
	// (8,4) flags double errors rather than miscorrecting silently.
	detected := 0
	total := 0
	for n := 0; n < 16; n++ {
		cw := hammingEncode(byte(n), CR48)
		for b1 := 0; b1 < 8; b1++ {
			for b2 := b1 + 1; b2 < 8; b2++ {
				total++
				if _, ok := hammingDecode(cw^(1<<uint(b1))^(1<<uint(b2)), CR48); !ok {
					detected++
				}
			}
		}
	}
	if detected != total {
		t.Errorf("double errors detected %d/%d, want all", detected, total)
	}
}

func TestCodingRateStrings(t *testing.T) {
	if CR45.String() != "4/5" || CR48.String() != "4/8" {
		t.Error("coding rate strings wrong")
	}
	if CR45.CodewordBits() != 5 || CR48.CodewordBits() != 8 {
		t.Error("codeword widths wrong")
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CCITT (init 0x0000) of "123456789" is 0x31C3.
	if got := crc16([]byte("123456789")); got != 0x31C3 {
		t.Errorf("crc16 = %#04x, want 0x31C3", got)
	}
	if got := crc16(nil); got != 0 {
		t.Errorf("crc16(nil) = %#04x, want 0", got)
	}
}

func TestCRC16DetectsCorruption(t *testing.T) {
	f := func(data []byte, idx int, flip byte) bool {
		if len(data) == 0 || flip == 0 {
			return true
		}
		idx = (idx%len(data) + len(data)) % len(data)
		orig := crc16(data)
		mut := append([]byte(nil), data...)
		mut[idx] ^= flip
		return crc16(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWhitenInvolution(t *testing.T) {
	f := func(data []byte) bool {
		orig := append([]byte(nil), data...)
		whiten(data)
		whiten(data)
		return bytes.Equal(data, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWhitenBreaksRuns(t *testing.T) {
	// Whitening an all-zero payload must produce balanced bits.
	data := make([]byte, 512)
	whiten(data)
	ones := 0
	for _, b := range data {
		for i := 0; i < 8; i++ {
			ones += int(b>>i) & 1
		}
	}
	frac := float64(ones) / (512 * 8)
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("whitened ones fraction = %v, want ~0.5", frac)
	}
}

func TestWhitenSequencePeriodic(t *testing.T) {
	// PN9 has period 511 bits; the byte sequence must not be trivially
	// repeating at short lags.
	seq := whitenSequence(128)
	for lag := 1; lag <= 8; lag++ {
		same := 0
		for i := lag; i < len(seq); i++ {
			if seq[i] == seq[i-lag] {
				same++
			}
		}
		if same > len(seq)/4 {
			t.Errorf("whitening sequence repeats at lag %d", lag)
		}
	}
}

func TestGrayRoundTrip(t *testing.T) {
	for v := 0; v < 4096; v++ {
		if got := grayDecode(grayEncode(v)); got != v {
			t.Fatalf("gray round trip %d -> %d", v, got)
		}
	}
}

func TestGrayAdjacencyProperty(t *testing.T) {
	// Consecutive values differ in exactly one bit after Gray encoding —
	// the property that makes ±1 FFT-bin errors single-bit errors.
	for v := 0; v < 1023; v++ {
		diff := grayEncode(v) ^ grayEncode(v+1)
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("gray(%d)^gray(%d) = %b, want single bit", v, v+1, diff)
		}
	}
}

func TestHeaderChecksumDiscriminates(t *testing.T) {
	base := headerChecksum(1, 2, 3)
	if headerChecksum(1, 2, 4) == base && headerChecksum(2, 2, 3) == base {
		t.Error("checksum does not discriminate nibble changes")
	}
	// All-zero header must not checksum to zero (mask property).
	if headerChecksum(0, 0, 0) == 0 {
		t.Error("all-zero header self-consistent")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRand(seed)
		for _, sfApp := range []int{4, 5, 6, 7, 8, 10, 12} {
			for _, w := range []int{5, 6, 7, 8} {
				cws := make([]uint16, sfApp)
				for i := range cws {
					cws[i] = uint16(rng.Intn(1 << uint(w)))
				}
				syms := interleaveBlock(cws, w)
				for _, s := range syms {
					if s >= 1<<uint(sfApp) {
						return false
					}
				}
				back := deinterleaveBlock(syms, sfApp)
				for i := range cws {
					if back[i] != cws[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInterleaveSpreadsSymbolErrors(t *testing.T) {
	// Corrupting one symbol must touch at most one bit per codeword —
	// the diagonal property that lets Hamming correct it.
	cws := []uint16{0x55, 0xAA, 0x0F, 0xF0, 0x33, 0xCC, 0x99, 0x66}
	syms := interleaveBlock(cws, 8)
	syms[3] ^= 0xFF // clobber one symbol completely
	back := deinterleaveBlock(syms, 8)
	for i := range cws {
		diff := back[i] ^ cws[i]
		bits := 0
		for diff != 0 {
			bits += int(diff & 1)
			diff >>= 1
		}
		if bits > 1 {
			t.Fatalf("codeword %d got %d flipped bits from one bad symbol", i, bits)
		}
	}
}
