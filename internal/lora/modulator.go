package lora

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Modulator is the Fig. 6a LoRa modulator: Packet Generator (frame assembly
// into symbol values) feeding the Chirp Generator (phase-continuous CSS
// synthesis on the FPGA's phase-accumulator/LUT datapath).
type Modulator struct {
	p Params
}

// NewModulator returns a modulator for the given parameters.
func NewModulator(p Params) (*Modulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Modulator{p: p}, nil
}

// Params returns the modulator configuration.
func (m *Modulator) Params() Params { return m.p }

// Symbols encodes a payload into the packet's chirp-shift values (payload
// section only: header block + payload blocks).
func (m *Modulator) Symbols(payload []byte) ([]int, error) {
	return m.p.encodeBlocks(payload)
}

// Modulate produces the complete baseband packet waveform of Fig. 5:
// preamble upchirps, two sync symbols, 2.25 SFD downchirps, then the
// encoded payload symbols. The waveform is phase-continuous throughout.
func (m *Modulator) Modulate(payload []byte) (iq.Samples, error) {
	symbols, err := m.Symbols(payload)
	if err != nil {
		return nil, err
	}
	st := dsp.NewChirpStream(m.p.chirpGen())
	sLen := m.p.chirpGen().SymbolLen()
	total := (m.p.PreambleLen+2)*sLen + sLen*9/4 + len(symbols)*sLen
	out := make(iq.Samples, 0, total)

	for i := 0; i < m.p.PreambleLen; i++ {
		out = append(out, st.Upchirp(0)...)
	}
	s1, s2 := m.p.syncShifts()
	out = append(out, st.Upchirp(s1)...)
	out = append(out, st.Upchirp(s2)...)
	out = append(out, st.Downchirp()...)
	out = append(out, st.Downchirp()...)
	out = append(out, st.Symbol(0, true, sLen/4)...)
	for _, sym := range symbols {
		if sym < 0 || sym >= m.p.NumChips() {
			return nil, fmt.Errorf("lora: symbol value %d out of range", sym)
		}
		out = append(out, st.Upchirp(sym)...)
	}
	return out, nil
}

// ModulateSymbols produces a waveform of raw chirp symbols with the given
// shifts and no framing — the §5.2/§6 chirp-symbol-error experiments
// transmit streams like this.
func (m *Modulator) ModulateSymbols(shifts []int) (iq.Samples, error) {
	st := dsp.NewChirpStream(m.p.chirpGen())
	sLen := m.p.chirpGen().SymbolLen()
	out := make(iq.Samples, 0, len(shifts)*sLen)
	for _, sym := range shifts {
		if sym < 0 || sym >= m.p.NumChips() {
			return nil, fmt.Errorf("lora: symbol value %d out of range", sym)
		}
		out = append(out, st.Upchirp(sym)...)
	}
	return out, nil
}
