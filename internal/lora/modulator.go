package lora

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Modulator is the Fig. 6a LoRa modulator: Packet Generator (frame assembly
// into symbol values) feeding the Chirp Generator (phase-continuous CSS
// synthesis on the FPGA's phase-accumulator/LUT datapath).
type Modulator struct {
	p Params
}

// NewModulator returns a modulator for the given parameters.
func NewModulator(p Params) (*Modulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Modulator{p: p}, nil
}

// Params returns the modulator configuration.
func (m *Modulator) Params() Params { return m.p }

// Symbols encodes a payload into the packet's chirp-shift values (payload
// section only: header block + payload blocks).
func (m *Modulator) Symbols(payload []byte) ([]int, error) {
	return m.p.encodeBlocks(payload)
}

// Modulate produces the complete baseband packet waveform of Fig. 5:
// preamble upchirps, two sync symbols, 2.25 SFD downchirps, then the
// encoded payload symbols. The waveform is phase-continuous throughout.
func (m *Modulator) Modulate(payload []byte) (iq.Samples, error) {
	return m.ModulateInto(nil, payload)
}

// ModulateInto is Modulate synthesizing into dst's capacity: dst is resized
// (reallocating only when too small) and every chirp is written in place, so
// a steady-state caller reusing one buffer sees no waveform allocation.
func (m *Modulator) ModulateInto(dst iq.Samples, payload []byte) (iq.Samples, error) {
	symbols, err := m.Symbols(payload)
	if err != nil {
		return nil, err
	}
	st := dsp.NewChirpStream(m.p.chirpGen())
	sLen := m.p.chirpGen().SymbolLen()
	quarter := sLen / 4
	total := (m.p.PreambleLen+4)*sLen + quarter + len(symbols)*sLen
	if cap(dst) < total {
		//lint:allocok amortized growth; the Link waveform cache modulates once per sweep point
		dst = make(iq.Samples, total)
	}
	out := dst[:total]

	off := 0
	//lint:allocok non-escaping slice-window closure; TX path amortized by the waveform cache
	next := func(n int) iq.Samples {
		w := out[off : off+n]
		off += n
		return w
	}
	for i := 0; i < m.p.PreambleLen; i++ {
		st.SymbolInto(next(sLen), 0, false)
	}
	s1, s2 := m.p.syncShifts()
	st.SymbolInto(next(sLen), s1, false)
	st.SymbolInto(next(sLen), s2, false)
	st.SymbolInto(next(sLen), 0, true)
	st.SymbolInto(next(sLen), 0, true)
	st.SymbolInto(next(quarter), 0, true)
	for _, sym := range symbols {
		if sym < 0 || sym >= m.p.NumChips() {
			//lint:allocok error guard formats only on a corrupt symbol table, never in a sweep
			return nil, fmt.Errorf("lora: symbol value %d out of range", sym)
		}
		st.SymbolInto(next(sLen), sym, false)
	}
	return out, nil
}

// ModulateSymbols produces a waveform of raw chirp symbols with the given
// shifts and no framing — the §5.2/§6 chirp-symbol-error experiments
// transmit streams like this.
func (m *Modulator) ModulateSymbols(shifts []int) (iq.Samples, error) {
	st := dsp.NewChirpStream(m.p.chirpGen())
	sLen := m.p.chirpGen().SymbolLen()
	out := make(iq.Samples, 0, len(shifts)*sLen)
	for _, sym := range shifts {
		if sym < 0 || sym >= m.p.NumChips() {
			return nil, fmt.Errorf("lora: symbol value %d out of range", sym)
		}
		out = append(out, st.Upchirp(sym)...)
	}
	return out, nil
}
