package lora

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{SF: 5, BW: 125e3, CR: CR45, PreambleLen: 10, OSR: 1},
		{SF: 13, BW: 125e3, CR: CR45, PreambleLen: 10, OSR: 1},
		{SF: 8, BW: 123e3, CR: CR45, PreambleLen: 10, OSR: 1},
		{SF: 8, BW: 125e3, CR: 0, PreambleLen: 10, OSR: 1},
		{SF: 8, BW: 125e3, CR: 5, PreambleLen: 10, OSR: 1},
		{SF: 8, BW: 125e3, CR: CR45, PreambleLen: 2, OSR: 1},
		{SF: 8, BW: 125e3, CR: CR45, PreambleLen: 10, OSR: 3},
		{SF: 6, BW: 125e3, CR: CR45, PreambleLen: 10, OSR: 1, ExplicitHeader: true},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestSymbolTimingAndRates(t *testing.T) {
	p := DefaultParams() // SF8 BW125
	// Tsym = 256/125k = 2.048 ms.
	if got := p.SymbolDuration().Microseconds(); got != 2048 {
		t.Errorf("symbol duration = %d µs, want 2048", got)
	}
	// Raw rate = 8 * 125000/256 = 3906.25 b/s; the paper's "3.12 kbps"
	// is this rate after 4/5 coding.
	if got := p.RawBitRate(); got != 3906.25 {
		t.Errorf("raw rate = %v, want 3906.25", got)
	}
	if got := p.BitRate(); got != 3125 {
		t.Errorf("coded rate = %v, want 3125 (paper: 3.12 kbps)", got)
	}
}

func TestPayloadSymbolsMatchesSemtechFormula(t *testing.T) {
	// Known value: SF7, CR 4/5, 10-byte payload, CRC, explicit -> 28.
	p := Params{SF: 7, BW: 125e3, CR: CR45, PreambleLen: 8, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	if got := p.payloadSymbols(10); got != 28 {
		t.Errorf("SF7 CR1 PL10 = %d symbols, want 28", got)
	}
}

func TestBlockLayoutEqualsAirtimeFormula(t *testing.T) {
	// The actual block layout must produce exactly the symbol count the
	// Semtech air-time formula predicts, for every configuration.
	f := func(plRaw uint8, sfRaw, crRaw uint8, crcOn, ldro bool) bool {
		sf := 7 + int(sfRaw)%6 // 7..12
		cr := CodingRate(1 + int(crRaw)%4)
		p := Params{SF: sf, BW: 125e3, CR: cr, PreambleLen: 8, SyncWord: 0x12,
			ExplicitHeader: true, CRC: crcOn, LowDataRateOptimize: ldro, OSR: 1}
		return p.symbolCountFor(int(plRaw)) == p.payloadSymbols(int(plRaw))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodeBlocksSymbolRange(t *testing.T) {
	p := DefaultParams()
	syms, err := p.encodeBlocks(bytes.Repeat([]byte{0xA7}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != p.symbolCountFor(50) {
		t.Errorf("symbol count = %d, want %d", len(syms), p.symbolCountFor(50))
	}
	for i, s := range syms {
		if s < 0 || s >= p.NumChips() {
			t.Fatalf("symbol %d = %d out of range", i, s)
		}
	}
	// Header-block symbols are reduced rate: multiples of 4.
	for i := 0; i < 8; i++ {
		if syms[i]%4 != 0 {
			t.Errorf("header symbol %d = %d not a multiple of 4", i, syms[i])
		}
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	p := DefaultParams()
	if _, err := p.encodeBlocks(make([]byte, 256)); err == nil {
		t.Error("256-byte payload accepted")
	}
}

func TestFrameRoundTripCleanSymbols(t *testing.T) {
	// Encode then decode through the block layer with no channel errors,
	// across SFs, CRs and payload sizes.
	for _, sf := range []int{7, 8, 10, 12} {
		for _, cr := range []CodingRate{CR45, CR46, CR47, CR48} {
			for _, n := range []int{0, 1, 3, 17, 64, 255} {
				p := Params{SF: sf, BW: 125e3, CR: cr, PreambleLen: 10, SyncWord: 0x12,
					ExplicitHeader: true, CRC: true, OSR: 1}
				payload := make([]byte, n)
				rng := newTestRand(int64(sf*1000 + int(cr)*100 + n))
				rng.Read(payload)

				syms, err := p.encodeBlocks(payload)
				if err != nil {
					t.Fatal(err)
				}
				nibs, fecOK, err := p.decodeFirstBlock(syms[:8])
				if err != nil || !fecOK {
					t.Fatalf("SF%d %v n=%d: first block %v fec=%v", sf, cr, n, err, fecOK)
				}
				hdr, err := parseHeader(nibs)
				if err != nil {
					t.Fatalf("SF%d %v n=%d: header: %v", sf, cr, n, err)
				}
				if hdr.PayloadLen != n || hdr.CR != cr || !hdr.HasCRC {
					t.Fatalf("header = %+v", hdr)
				}
				body, fecOK2 := p.decodePayloadBlocks(syms[8:])
				if !fecOK2 {
					t.Fatal("payload FEC flagged on clean symbols")
				}
				got, crcOK, err := p.assembleNibbles(append(nibs[headerNibbleCount:], body...), n)
				if err != nil {
					t.Fatal(err)
				}
				if !crcOK {
					t.Fatalf("SF%d %v n=%d: CRC failed on clean round trip", sf, cr, n)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("SF%d %v n=%d: payload mismatch", sf, cr, n)
				}
			}
		}
	}
}

func TestFrameSurvivesOneCorruptSymbolAtCR48(t *testing.T) {
	// With CR 4/8, one fully corrupted payload symbol must be corrected.
	p := Params{SF: 9, BW: 125e3, CR: CR48, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	payload := []byte("tinysdr!")
	syms, err := p.encodeBlocks(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one symbol of the second block (payload region).
	syms[9] ^= 0b110100
	nibs, _, err := p.decodeFirstBlock(syms[:8])
	if err != nil {
		t.Fatal(err)
	}
	body, _ := p.decodePayloadBlocks(syms[8:])
	got, crcOK, err := p.assembleNibbles(append(nibs[headerNibbleCount:], body...), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !crcOK || !bytes.Equal(got, payload) {
		t.Errorf("CR 4/8 failed to correct a single corrupt symbol: crc=%v got=%q", crcOK, got)
	}
}

func TestHeaderRobustToPlusMinusOneBinError(t *testing.T) {
	// Reduced-rate header symbols ignore the bottom two bits, so ±1 bin
	// errors must not affect the header at all.
	p := DefaultParams()
	syms, err := p.encodeBlocks([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		syms[i] = (syms[i] + 1) % p.NumChips()
	}
	nibs, fecOK, err := p.decodeFirstBlock(syms[:8])
	if err != nil || !fecOK {
		t.Fatalf("first block: %v fec=%v", err, fecOK)
	}
	hdr, err := parseHeader(nibs)
	if err != nil {
		t.Fatalf("header after ±1 bin errors: %v", err)
	}
	if hdr.PayloadLen != 3 {
		t.Errorf("payload len = %d", hdr.PayloadLen)
	}
}

func TestParseHeaderRejectsCorruption(t *testing.T) {
	p := DefaultParams()
	h := p.headerNibbles(42)
	if _, err := parseHeader(h); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), h...)
	bad[0] ^= 0x3
	if _, err := parseHeader(bad); err == nil {
		t.Error("corrupt header accepted")
	}
	if _, err := parseHeader(h[:3]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestTimeOnAirKnownConfigurations(t *testing.T) {
	// SF9 BW500, the OTA-adjacent configuration of §5.2: Tsym = 1.024 ms.
	p := Params{SF: 9, BW: 500e3, CR: CR45, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	toa := p.TimeOnAir(32)
	// preamble 10+4.25 = 14.25 syms + payload syms.
	wantSyms := 14.25 + float64(p.payloadSymbols(32))
	wantUs := wantSyms * 1024
	if got := float64(toa.Microseconds()); got < wantUs-2 || got > wantUs+2 {
		t.Errorf("TimeOnAir = %v µs, want %v", got, wantUs)
	}
	// Longer payloads take longer; higher SF takes longer.
	if p.TimeOnAir(64) <= p.TimeOnAir(16) {
		t.Error("time on air not monotonic in payload")
	}
}

func TestSyncShifts(t *testing.T) {
	p := DefaultParams()
	s1, s2 := p.syncShifts()
	if s1 == s2 {
		t.Error("sync shifts must differ for 0x12")
	}
	if s1%8 != 0 || s2%8 != 0 {
		t.Error("sync shifts must be multiples of 8")
	}
}
