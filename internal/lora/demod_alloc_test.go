package lora

import (
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// TestDemodWindowZeroAllocs pins the scratch-arena contract: once a
// Demodulator is constructed, demodulating a window costs zero heap
// allocations (dechirp, FFT, magnitudes and fold all run in the arena).
func TestDemodWindowZeroAllocs(t *testing.T) {
	for _, osr := range []int{1, 2} {
		p := DefaultParams()
		p.OSR = osr
		d, err := NewDemodulator(p)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewModulator(p)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := m.ModulateSymbols([]int{37})
		if err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(100, func() { d.demodWindow(sig) }); n != 0 {
			t.Errorf("OSR %d: demodWindow allocates %.0f times per op, want 0", osr, n)
		}
		if n := testing.AllocsPerRun(100, func() { d.downPeak(sig) }); n != 0 {
			t.Errorf("OSR %d: downPeak allocates %.0f times per op, want 0", osr, n)
		}
	}
}

// TestFilterZeroAllocsSteadyState verifies the FIR front end reuses its
// scratch after the first (growing) call.
func TestFilterZeroAllocsSteadyState(t *testing.T) {
	p := DefaultParams()
	p.OSR = 2
	d, err := NewDemodulator(p)
	if err != nil {
		t.Fatal(err)
	}
	sig := make(iq.Samples, 4096)
	d.Filter(sig) // grow the arena once
	if n := testing.AllocsPerRun(20, func() { d.Filter(sig) }); n != 0 {
		t.Errorf("Filter allocates %.0f times per op in steady state, want 0", n)
	}
}

// TestDemodAlignedSymbolsAmortizedAllocs bounds the whole aligned-symbol
// demod loop to the single output-slice allocation.
func TestDemodAlignedSymbolsAmortizedAllocs(t *testing.T) {
	p := DefaultParams()
	d, err := NewDemodulator(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	shifts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sig, err := m.ModulateSymbols(shifts)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() { d.DemodAlignedSymbols(sig) }); n > 1 {
		t.Errorf("DemodAlignedSymbols allocates %.0f times per call, want <= 1 (output slice)", n)
	}
}

// TestDemodAlignedSymbolsIntoZeroAllocs pins the caller-scratch variant the
// composed-scenario sweeps use: with a capacity-sized dst the whole aligned
// demod loop is allocation-free.
func TestDemodAlignedSymbolsIntoZeroAllocs(t *testing.T) {
	p := DefaultParams()
	d, err := NewDemodulator(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	shifts := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sig, err := m.ModulateSymbols(shifts)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int, 0, len(shifts))
	got := d.DemodAlignedSymbolsInto(dst, sig)
	for i := range shifts {
		if got[i] != shifts[i] {
			t.Fatalf("symbol %d = %d, want %d", i, got[i], shifts[i])
		}
	}
	if n := testing.AllocsPerRun(20, func() { d.DemodAlignedSymbolsInto(dst, sig) }); n != 0 {
		t.Errorf("DemodAlignedSymbolsInto allocates %.0f times per call, want 0", n)
	}
}

func BenchmarkDemodWindow(b *testing.B) {
	p := DefaultParams()
	d, err := NewDemodulator(p)
	if err != nil {
		b.Fatal(err)
	}
	m, err := NewModulator(p)
	if err != nil {
		b.Fatal(err)
	}
	sig, err := m.ModulateSymbols([]int{37})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.demodWindow(sig)
	}
}
