package lora

// Hamming forward error correction over nibbles (§4.1 transport chain).
// LoRa encodes each 4-bit nibble into a 4+CR bit codeword:
//
//	4/5: one overall parity bit (error detection)
//	4/6: two parity bits (detection)
//	4/7: Hamming(7,4) (corrects any single bit)
//	4/8: Hamming(8,4) (corrects one bit, detects two)
//
// Codeword layout, LSB first: d0 d1 d2 d3 [parity bits].

func parity(v uint16) uint16 {
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// hammingEncode encodes a nibble at the given coding rate.
func hammingEncode(nibble byte, cr CodingRate) uint16 {
	d := uint16(nibble & 0xF)
	d0, d1, d2, d3 := d&1, (d>>1)&1, (d>>2)&1, (d>>3)&1
	p1 := d0 ^ d1 ^ d3
	p2 := d0 ^ d2 ^ d3
	p3 := d1 ^ d2 ^ d3
	switch cr {
	case CR45:
		return d | (d0^d1^d2^d3)<<4
	case CR46:
		return d | p1<<4 | p2<<5
	case CR47:
		return d | p1<<4 | p2<<5 | p3<<6
	case CR48:
		cw := d | p1<<4 | p2<<5 | p3<<6
		return cw | parity(cw)<<7
	default:
		panic("lora: invalid coding rate")
	}
}

// hammingDecode decodes a codeword, correcting single-bit errors when the
// rate supports it. ok reports whether the codeword was consistent (after
// any correction).
func hammingDecode(cw uint16, cr CodingRate) (nibble byte, ok bool) {
	switch cr {
	case CR45:
		return byte(cw & 0xF), parity(cw&0x1F) == 0
	case CR46:
		d := cw & 0xF
		d0, d1, d2, d3 := d&1, (d>>1)&1, (d>>2)&1, (d>>3)&1
		okP := (d0^d1^d3) == (cw>>4)&1 && (d0^d2^d3) == (cw>>5)&1
		return byte(d), okP
	case CR47:
		corrected, _, recovered := correct74(cw & 0x7F)
		return corrected, recovered
	case CR48:
		overall := parity(cw & 0xFF)
		corrected, hadErr, recovered := correct74(cw & 0x7F)
		if !recovered {
			return corrected, false
		}
		if hadErr && overall == 0 {
			// Syndrome reported an error but overall parity is
			// clean: a double error the (8,4) code detects.
			return corrected, false
		}
		return corrected, true
	default:
		panic("lora: invalid coding rate")
	}
}

// correct74 corrects a Hamming(7,4) codeword. hadErr reports whether a bit
// was flipped; recovered is false only for syndromes that cannot occur from
// a single-bit error (impossible for (7,4): every nonzero syndrome maps to
// one position, so recovered is always true here).
func correct74(cw uint16) (nibble byte, hadErr, recovered bool) {
	d0, d1, d2, d3 := cw&1, (cw>>1)&1, (cw>>2)&1, (cw>>3)&1
	p1, p2, p3 := (cw>>4)&1, (cw>>5)&1, (cw>>6)&1
	s1 := p1 ^ d0 ^ d1 ^ d3
	s2 := p2 ^ d0 ^ d2 ^ d3
	s3 := p3 ^ d1 ^ d2 ^ d3
	syndrome := s1 | s2<<1 | s3<<2
	// Map syndrome to the erroneous bit position in our layout.
	// s1 covers {d0,d1,d3,p1}; s2 covers {d0,d2,d3,p2}; s3 covers {d1,d2,d3,p3}.
	var flip uint16
	switch syndrome {
	case 0b000:
		return byte(cw & 0xF), false, true
	case 0b011:
		flip = 1 << 0 // d0: in s1+s2
	case 0b101:
		flip = 1 << 1 // d1: in s1+s3
	case 0b110:
		flip = 1 << 2 // d2: in s2+s3
	case 0b111:
		flip = 1 << 3 // d3: in all
	case 0b001:
		flip = 1 << 4 // p1 only
	case 0b010:
		flip = 1 << 5 // p2 only
	case 0b100:
		flip = 1 << 6 // p3 only
	}
	cw ^= flip
	return byte(cw & 0xF), true, true
}

// crc16 computes the CCITT CRC-16 (poly 0x1021) over data — the payload CRC
// of the LoRa frame (Fig. 5).
func crc16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// headerChecksum computes the 8-bit checksum protecting the explicit
// header's three nibbles.
func headerChecksum(n0, n1, n2 byte) byte {
	c := n0<<4 | n1
	c ^= n2<<2 | n2>>2
	c ^= 0xA5 // fixed mask so an all-zero header is not self-consistent
	return c
}

// whitening: LoRa scrambles payload bytes with a PN9 sequence so the air
// waveform has no long runs. LFSR x^9 + x^5 + 1, seed 0x1FF.
func whitenSequence(n int) []byte {
	out := make([]byte, n)
	state := uint16(0x1FF)
	for i := range out {
		var b byte
		for bit := 0; bit < 8; bit++ {
			b |= byte(state&1) << bit
			fb := (state & 1) ^ ((state >> 5) & 1)
			state = state>>1 | fb<<8
		}
		out[i] = b
	}
	return out
}

// whiten XORs data with the PN9 sequence in place and returns it; the
// operation is an involution (apply twice to recover).
func whiten(data []byte) []byte {
	seq := whitenSequence(len(data))
	for i := range data {
		data[i] ^= seq[i]
	}
	return data
}

// grayEncode returns the Gray code of v.
func grayEncode(v int) int { return v ^ (v >> 1) }

// grayDecode inverts grayEncode.
func grayDecode(g int) int {
	v := g
	for s := 1; s < 32; s <<= 1 {
		v ^= v >> s
	}
	return v
}
