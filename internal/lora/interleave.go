package lora

// Diagonal interleaving (§4.1 transport chain). One block takes sfApp
// codewords of w bits (sfApp = SF, or SF-2 for reduced-rate blocks; w =
// 4+CR) and emits w symbols of sfApp bits. Bit j of codeword k lands in
// symbol j at bit position k, with a diagonal rotation over codewords so a
// corrupted symbol spreads at most one bit into each codeword.

// interleaveBlock maps sfApp codewords into w symbol values.
func interleaveBlock(cws []uint16, w int) []int {
	sfApp := len(cws)
	syms := make([]int, w)
	for j := 0; j < w; j++ {
		var sym int
		for k := 0; k < sfApp; k++ {
			bit := (cws[(j+k)%sfApp] >> uint(j)) & 1
			sym |= int(bit) << uint(k)
		}
		syms[j] = sym
	}
	return syms
}

// deinterleaveBlock inverts interleaveBlock.
func deinterleaveBlock(syms []int, sfApp int) []uint16 {
	w := len(syms)
	cws := make([]uint16, sfApp)
	for j := 0; j < w; j++ {
		for k := 0; k < sfApp; k++ {
			bit := uint16(syms[j]>>uint(k)) & 1
			cws[(j+k)%sfApp] |= bit << uint(j)
		}
	}
	return cws
}
