package lora

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// Golden-vector conformance: small fixed-seed IQ captures committed under
// testdata/ pin both directions of the modem. The TX test re-modulates and
// compares byte-exact against the capture, so any DSP change that bends
// the waveform fails loudly; the RX test demodulates the committed capture
// and requires the exact expected payload, so receiver refactors cannot
// silently trade away correctness.
//
// Regenerate after an *intentional* waveform change with:
//
//	go test ./internal/lora -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite golden IQ captures from the current modulator")

// goldenBits and goldenFullScale fix the capture quantization: the
// radio's 13-bit converter model at a 2.0 full scale (unit-amplitude
// chirps sit at half scale, clear of clipping).
const (
	goldenBits      = 13
	goldenFullScale = 2.0
)

// goldenPayload is the packet every LoRa capture carries.
var goldenPayload = []byte{0xA5, 0x5A, 0x3C}

// goldenCases are the committed captures: the paper's SF8/BW125 case study
// on the critically-sampled path, and an SF7/BW250 OSR-2 capture that
// keeps the front-end FIR in the loop.
var goldenCases = []struct {
	name string
	p    Params
}{
	{"golden_sf8_bw125_osr1", Params{SF: 8, BW: 125e3, CR: CR45, PreambleLen: 10,
		SyncWord: 0x12, ExplicitHeader: true, CRC: true, OSR: 1}},
	{"golden_sf7_bw250_osr2", Params{SF: 7, BW: 250e3, CR: CR47, PreambleLen: 8,
		SyncWord: 0x34, ExplicitHeader: true, CRC: true, OSR: 2}},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".iq")
}

func TestGoldenModulatorWaveforms(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			mod, err := NewModulator(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			sig, err := mod.Modulate(goldenPayload)
			if err != nil {
				t.Fatal(err)
			}
			got := iq.EncodeInt16(sig, goldenBits, goldenFullScale)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name), got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d samples, %d bytes)", goldenPath(tc.name), len(sig), len(got))
				return
			}
			want, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatalf("missing golden capture (regenerate with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				diff := 0
				for i := range min(len(got), len(want)) {
					if got[i] != want[i] {
						diff = i
						break
					}
				}
				t.Fatalf("modulator waveform diverges from golden capture at byte %d (of %d/%d); "+
					"if the change is intentional, regenerate with -update-golden", diff, len(got), len(want))
			}
		})
	}
}

func TestGoldenCaptureDemodulatesExactly(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatalf("missing golden capture (regenerate with -update-golden): %v", err)
			}
			sig, err := iq.DecodeInt16(raw, goldenBits, goldenFullScale)
			if err != nil {
				t.Fatal(err)
			}
			demod, err := NewDemodulator(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			pkt, err := demod.Receive(sig)
			if err != nil {
				t.Fatalf("golden capture no longer decodes: %v", err)
			}
			if !pkt.CRCOK || !pkt.FECOK {
				t.Errorf("golden capture decodes with CRCOK=%v FECOK=%v", pkt.CRCOK, pkt.FECOK)
			}
			if !bytes.Equal(pkt.Payload, goldenPayload) {
				t.Errorf("golden payload = %x, want %x", pkt.Payload, goldenPayload)
			}
			if pkt.Header.PayloadLen != len(goldenPayload) || pkt.Header.CR != tc.p.CR {
				t.Errorf("golden header = %+v", pkt.Header)
			}
		})
	}
}

// TestGoldenCaptureSymbolExact pins the aligned-demod path bit-for-bit:
// the raw chirp symbols recovered from the payload section of the capture
// must equal the modulator's encoded symbol stream exactly.
func TestGoldenCaptureSymbolExact(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := os.ReadFile(goldenPath(tc.name))
			if err != nil {
				t.Fatal(err)
			}
			sig, err := iq.DecodeInt16(raw, goldenBits, goldenFullScale)
			if err != nil {
				t.Fatal(err)
			}
			mod, err := NewModulator(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := mod.Symbols(goldenPayload)
			if err != nil {
				t.Fatal(err)
			}
			demod, err := NewDemodulator(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			// Payload symbols start after preamble + 2 sync + 2.25 SFD.
			sLen := tc.p.chirpGen().SymbolLen()
			start := (tc.p.PreambleLen+2)*sLen + sLen*9/4
			got := demod.DemodAlignedSymbols(sig[start:])
			if len(got) < len(want) {
				t.Fatalf("capture holds %d payload symbols, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("payload symbol %d = %d, want %d", i, got[i], want[i])
				}
			}
		})
	}
}
