package lora

import (
	"fmt"
	"math"
)

// Analytic link model for MAC-scale simulations (the OTA protocol and the
// campus testbed), where simulating every sample of a 150-second firmware
// transfer would be wasteful. The model is a logistic waterfall anchored at
// the Semtech demodulator SNR limits; the sample-level experiments
// (Figs. 10/11) validate that the real demodulator's waterfall sits where
// this model says it does.

// SNRLimitDB returns the demodulation SNR threshold for a spreading factor
// (Semtech datasheet: -5 dB at SF6, stepping -2.5 dB per SF).
func SNRLimitDB(sf int) float64 {
	if sf < 6 || sf > 12 {
		panic(fmt.Sprintf("lora: SF%d outside 6..12", sf))
	}
	return -5 - 2.5*float64(sf-6)
}

// SensitivityDBm returns the receive sensitivity for a configuration and
// receiver noise figure: thermal floor + NF + SNR limit. With NF 7 and
// SF8/BW125 this is the -126 dBm of the paper and the SX1276 datasheet.
func SensitivityDBm(sf int, bwHz, noiseFigureDB float64) float64 {
	return -174 + 10*math.Log10(bwHz) + noiseFigureDB + SNRLimitDB(sf)
}

// symbolErrorRate maps SNR margin (dB above the demodulation limit) to
// chirp-symbol error probability. The waterfall steepness (≈1.2 dB scale)
// and the anchor (PER ≈ 10% at zero margin for a ~70-symbol packet) follow
// the measured behaviour of CSS demodulators.
func symbolErrorRate(marginDB float64) float64 {
	return 0.5 * math.Erfc(marginDB/1.2+2.1)
}

// PacketErrorRate returns the probability that a packet of n payload bytes
// fails at the given RSSI for a receiver with the given noise figure.
func PacketErrorRate(p Params, n int, rssiDBm, noiseFigureDB float64) float64 {
	margin := rssiDBm - SensitivityDBm(p.SF, p.BW, noiseFigureDB)
	ser := symbolErrorRate(margin)
	// FEC correction: CR >= 4/7 corrects one bad bit per codeword, which
	// in symbol terms tolerates isolated symbol errors; approximate by
	// discounting the symbol error rate.
	if p.CR >= CR47 {
		ser *= 0.6
	}
	nsym := float64(p.payloadSymbols(n)) + float64(p.PreambleLen) + 4.25
	per := 1 - math.Pow(1-ser, nsym)
	if per < 0 {
		return 0
	}
	if per > 1 {
		return 1
	}
	return per
}
