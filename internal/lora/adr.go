package lora

// Rate adaptation (§7 poses "Are there benefits of rate adaptation?").
// AdaptSF implements the standard LoRaWAN ADR decision: pick the fastest
// spreading factor whose sensitivity still leaves the requested margin at
// the observed RSSI. Lower SF means shorter airtime and less energy per
// packet; higher SF buys sensitivity.

// MinAdaptSF is the lowest SF rate adaptation selects: SF6 requires the
// implicit-header mode, so adaptive links start at SF7.
const MinAdaptSF = 7

// AdaptSF returns the lowest SF in [MinAdaptSF, 12] whose link margin
// (RSSI − sensitivity) is at least marginDB, or 12 when even the slowest
// rate lacks margin.
func AdaptSF(rssiDBm, bwHz, noiseFigureDB, marginDB float64) int {
	for sf := MinAdaptSF; sf <= 12; sf++ {
		if rssiDBm-SensitivityDBm(sf, bwHz, noiseFigureDB) >= marginDB {
			return sf
		}
	}
	return 12
}
