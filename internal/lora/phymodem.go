package lora

import (
	"errors"
	"time"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Modem bundles the LoRa modulator, demodulator and one radio profile into
// the protocol-agnostic PHY contract of internal/phy (it satisfies
// phy.Modem structurally, keeping this package free of the registry). Both
// SensitivityDBm and NoiseFloorDBm derive from the same profile, so a link
// built on a Modem cannot mix noise figures.
//
// Like the Demodulator it wraps, a Modem owns scratch arenas and is NOT
// safe for concurrent use; give each goroutine its own instance.
type Modem struct {
	mod     *Modulator
	demod   *Demodulator
	profile channel.RadioProfile
}

// NewModem returns a LoRa modem for the parameters, calibrated against the
// given receive chain. The packet pipeline carries the payload length in
// the explicit header, so implicit-header configurations are rejected here
// rather than failing on every received packet.
func NewModem(p Params, profile channel.RadioProfile) (*Modem, error) {
	if !p.ExplicitHeader {
		return nil, errors.New("lora: modem requires explicit header (implicit RX needs an out-of-band length)")
	}
	mod, err := NewModulator(p)
	if err != nil {
		return nil, err
	}
	demod, err := NewDemodulator(p)
	if err != nil {
		return nil, err
	}
	return &Modem{mod: mod, demod: demod, profile: profile}, nil
}

// Name implements phy.Modem.
func (m *Modem) Name() string { return "lora" }

// Params returns the modem's PHY configuration.
func (m *Modem) Params() Params { return m.mod.Params() }

// SampleRate implements phy.Modem.
func (m *Modem) SampleRate() float64 { return m.mod.Params().SampleRate() }

// Airtime implements phy.Modem: the on-air duration of a packet with an
// n-byte payload.
func (m *Modem) Airtime(payloadBytes int) time.Duration {
	return m.mod.Params().TimeOnAir(payloadBytes)
}

// Radio implements phy.Modem.
func (m *Modem) Radio() channel.RadioProfile { return m.profile }

// SensitivityDBm implements phy.Modem: thermal floor + the profile's noise
// figure + the Semtech demodulation SNR limit for the spreading factor.
func (m *Modem) SensitivityDBm() float64 {
	p := m.mod.Params()
	return SensitivityDBm(p.SF, p.BW, m.profile.NoiseFigureDB)
}

// NoiseFloorDBm implements phy.Modem: the profile's floor integrated over
// the modem's sampled bandwidth.
func (m *Modem) NoiseFloorDBm() float64 {
	return m.profile.NoiseFloorDBm(m.mod.Params().SampleRate())
}

// ModulateInto implements phy.Modem, synthesizing the packet waveform into
// dst's capacity.
func (m *Modem) ModulateInto(dst iq.Samples, payload []byte) (iq.Samples, error) {
	return m.mod.ModulateInto(dst, payload)
}

// errCRC reports a received packet whose payload CRC failed.
var errCRC = errors.New("lora: payload CRC failed")

// DemodulateFrom implements phy.Modem: it locates and decodes one packet in
// sig and appends its payload to dst[:0]. A failed payload CRC is an error —
// the Link pipeline counts it as a lost packet, like hardware would drop it.
func (m *Modem) DemodulateFrom(dst []byte, sig iq.Samples) ([]byte, error) {
	pkt, err := m.demod.Receive(sig)
	if err != nil {
		return nil, err
	}
	if m.mod.Params().CRC && !pkt.CRCOK {
		return nil, errCRC
	}
	//lint:allocok appends into caller capacity; steady state pinned by the AllocsPerRun contracts
	return append(dst[:0], pkt.Payload...), nil
}

// DemodAlignedSymbolsInto exposes the aligned chirp-symbol hot path through
// the modem (phy.SymbolStreamer): with a capacity-sized dst the loop is
// allocation-free, preserving the 0 allocs/op sweep contract behind the
// interface.
func (m *Modem) DemodAlignedSymbolsInto(dst []int, sig iq.Samples) []int {
	return m.demod.DemodAlignedSymbolsInto(dst, sig)
}
