package lora

import (
	"bytes"
	"math"
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

func mustModem(t *testing.T, p Params) (*Modulator, *Demodulator) {
	t.Helper()
	m, err := NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDemodulator(p)
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestModulateWaveformLength(t *testing.T) {
	p := DefaultParams()
	m, _ := mustModem(t, p)
	payload := []byte{1, 2, 3}
	sig, err := m.Modulate(payload)
	if err != nil {
		t.Fatal(err)
	}
	sLen := p.NumChips() * p.OSR
	want := (p.PreambleLen+2)*sLen + sLen*9/4 + p.symbolCountFor(len(payload))*sLen
	if len(sig) != want {
		t.Errorf("waveform length = %d, want %d", len(sig), want)
	}
	// Air time consistency: samples / rate == TimeOnAir.
	gotSec := float64(len(sig)) / p.SampleRate()
	wantSec := p.TimeOnAir(len(payload)).Seconds()
	if math.Abs(gotSec-wantSec) > 1e-9 {
		t.Errorf("waveform duration %v s, formula %v s", gotSec, wantSec)
	}
}

func TestModulateConstantEnvelope(t *testing.T) {
	m, _ := mustModem(t, DefaultParams())
	sig, _ := m.Modulate([]byte("abc"))
	for i, x := range sig {
		if r := math.Hypot(real(x), imag(x)); math.Abs(r-1) > 0.01 {
			t.Fatalf("sample %d envelope %v", i, r)
		}
	}
}

func TestLoopbackCleanChannel(t *testing.T) {
	for _, sf := range []int{7, 8, 12} {
		p := Params{SF: sf, BW: 125e3, CR: CR45, PreambleLen: 10, SyncWord: 0x12,
			ExplicitHeader: true, CRC: true, OSR: 1}
		m, d := mustModem(t, p)
		payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42}
		sig, err := m.Modulate(payload)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := d.Receive(sig)
		if err != nil {
			t.Fatalf("SF%d: %v", sf, err)
		}
		if !bytes.Equal(pkt.Payload, payload) {
			t.Fatalf("SF%d: payload %x != %x", sf, pkt.Payload, payload)
		}
		if !pkt.CRCOK || !pkt.FECOK {
			t.Fatalf("SF%d: crc=%v fec=%v", sf, pkt.CRCOK, pkt.FECOK)
		}
		if pkt.Header.PayloadLen != len(payload) {
			t.Fatalf("SF%d: header len %d", sf, pkt.Header.PayloadLen)
		}
	}
}

func TestLoopbackWithLeadingAndTrailingNoise(t *testing.T) {
	p := DefaultParams()
	m, d := mustModem(t, p)
	payload := []byte("over-the-air")
	sig, _ := m.Modulate(payload)

	ch := channel.NewAWGN(99, -60)        // quiet channel, strong signal
	lead := ch.Noise(3*p.NumChips() + 37) // unaligned offset
	tail := ch.Noise(2 * p.NumChips())
	buf := append(append(lead, sig.Clone().ScaleToDBm(-30)...), tail...)
	buf.Add(ch.Noise(len(buf)))

	pkt, err := d.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, payload) {
		t.Fatalf("payload %q != %q", pkt.Payload, payload)
	}
	// Start estimate should land within one symbol of the true start.
	if diff := pkt.StartSample - len(lead); diff < -p.NumChips() || diff > p.NumChips() {
		t.Errorf("start estimate %d, true %d", pkt.StartSample, len(lead))
	}
}

func TestLoopbackAllSampleOffsets(t *testing.T) {
	// The sync must work for any chip offset of the packet within the
	// buffer, not just lucky alignments.
	p := Params{SF: 7, BW: 125e3, CR: CR45, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	m, d := mustModem(t, p)
	payload := []byte{7, 7, 7}
	sig, _ := m.Modulate(payload)
	ch := channel.NewAWGN(5, -70)
	for _, off := range []int{0, 1, 17, 63, 64, 65, 100, 127} {
		buf := make(iq.Samples, off+len(sig)+128)
		copy(buf[off:], sig.Clone().ScaleToDBm(-40))
		buf.Add(ch.Noise(len(buf)))
		pkt, err := d.Receive(buf)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if !bytes.Equal(pkt.Payload, payload) || !pkt.CRCOK {
			t.Fatalf("offset %d: bad decode", off)
		}
	}
}

func TestLoopbackOSR2WithFIR(t *testing.T) {
	// The oversampled path exercises the 14-tap FIR front end.
	p := Params{SF: 8, BW: 125e3, CR: CR46, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 2}
	m, d := mustModem(t, p)
	payload := []byte{9, 8, 7, 6}
	sig, _ := m.Modulate(payload)
	ch := channel.NewAWGN(17, -70)
	buf := make(iq.Samples, 512+len(sig)+512)
	copy(buf[512:], sig.Clone().ScaleToDBm(-40))
	buf.Add(ch.Noise(len(buf)))
	pkt, err := d.Receive(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, payload) || !pkt.CRCOK {
		t.Fatal("OSR2 decode failed")
	}
}

func TestImplicitHeaderLoopback(t *testing.T) {
	p := Params{SF: 8, BW: 250e3, CR: CR47, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: false, CRC: true, OSR: 1}
	m, d := mustModem(t, p)
	payload := []byte{0xCA, 0xFE}
	sig, _ := m.Modulate(payload)
	pkt, err := d.ReceiveImplicit(sig, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, payload) || !pkt.CRCOK {
		t.Fatalf("implicit decode: %x crc=%v", pkt.Payload, pkt.CRCOK)
	}
	// Receive (explicit) must refuse implicit configs.
	if _, err := d.Receive(sig); err == nil {
		t.Error("explicit Receive accepted implicit config")
	}
}

func TestReceiveOnPureNoiseFails(t *testing.T) {
	p := DefaultParams()
	_, d := mustModem(t, p)
	ch := channel.NewAWGN(123, -100)
	if _, err := d.Receive(ch.Noise(60 * p.NumChips())); err == nil {
		t.Error("packet decoded from pure noise")
	}
}

func TestReceiveTruncatedPacket(t *testing.T) {
	p := DefaultParams()
	m, d := mustModem(t, p)
	sig, _ := m.Modulate([]byte("truncate me please"))
	if _, err := d.Receive(sig[:len(sig)/2]); err == nil {
		t.Error("truncated packet decoded")
	}
}

func TestDemodAlignedSymbolsExact(t *testing.T) {
	p := DefaultParams()
	m, d := mustModem(t, p)
	shifts := []int{0, 1, 100, 255, 128, 37}
	sig, err := m.ModulateSymbols(shifts)
	if err != nil {
		t.Fatal(err)
	}
	got := d.DemodAlignedSymbols(sig)
	if len(got) != len(shifts) {
		t.Fatalf("got %d symbols", len(got))
	}
	for i := range shifts {
		if got[i] != shifts[i] {
			t.Errorf("symbol %d: %d != %d", i, got[i], shifts[i])
		}
	}
}

func TestModulateSymbolsRejectsOutOfRange(t *testing.T) {
	m, _ := mustModem(t, DefaultParams())
	if _, err := m.ModulateSymbols([]int{256}); err == nil {
		t.Error("out-of-range symbol accepted")
	}
	if _, err := m.ModulateSymbols([]int{-1}); err == nil {
		t.Error("negative symbol accepted")
	}
}

func TestSymbolDemodAtModerateSNR(t *testing.T) {
	// At SNR = -5 dB (5 dB above the SF8 limit) symbol errors must be rare.
	p := DefaultParams()
	m, d := mustModem(t, p)
	rng := newTestRand(314)
	shifts := make([]int, 200)
	for i := range shifts {
		shifts[i] = rng.Intn(p.NumChips())
	}
	sig, _ := m.ModulateSymbols(shifts)
	ch := channel.NewAWGN(7, -116) // floor for 125 kHz NF 7
	rx := ch.Apply(sig, -121)      // SNR -5 dB
	got := d.DemodAlignedSymbols(rx)
	errs := 0
	for i := range shifts {
		if got[i] != shifts[i] {
			errs++
		}
	}
	if errs > 4 {
		t.Errorf("symbol errors = %d/200 at SNR -5 dB, want <= 4", errs)
	}
}

func TestSymbolDemodFailsFarBelowSensitivity(t *testing.T) {
	// At SNR = -25 dB (15 dB below the limit) demodulation must collapse.
	p := DefaultParams()
	m, d := mustModem(t, p)
	rng := newTestRand(99)
	shifts := make([]int, 100)
	for i := range shifts {
		shifts[i] = rng.Intn(p.NumChips())
	}
	sig, _ := m.ModulateSymbols(shifts)
	ch := channel.NewAWGN(8, -116)
	rx := ch.Apply(sig, -141)
	got := d.DemodAlignedSymbols(rx)
	errs := 0
	for i := range shifts {
		if got[i] != shifts[i] {
			errs++
		}
	}
	if errs < 50 {
		t.Errorf("symbol errors = %d/100 at SNR -25 dB; channel model too optimistic", errs)
	}
}

func TestIdealAndLUTWaveformsBothDecode(t *testing.T) {
	// The SX1276 stand-in (ideal waveform) and the tinySDR LUT datapath
	// must both decode with the same demodulator.
	for _, ideal := range []bool{false, true} {
		p := DefaultParams()
		p.Ideal = ideal
		m, d := mustModem(t, p)
		sig, _ := m.Modulate([]byte{1, 2, 3})
		if _, err := d.Receive(sig); err != nil {
			t.Errorf("ideal=%v: %v", ideal, err)
		}
	}
}

func BenchmarkModulateSF8(b *testing.B) {
	m, _ := NewModulator(DefaultParams())
	payload := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Modulate(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReceiveSF8(b *testing.B) {
	p := DefaultParams()
	m, _ := NewModulator(p)
	d, _ := NewDemodulator(p)
	sig, _ := m.Modulate(make([]byte, 32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Receive(sig); err != nil {
			b.Fatal(err)
		}
	}
}
