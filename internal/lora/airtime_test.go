package lora

import (
	"math"
	"testing"
	"time"
)

// Golden air-time values cross-checked against the Semtech LoRa calculator
// (AN1200.13), 8-symbol preamble, explicit header, CRC on, no LDRO.
func TestTimeOnAirGoldenValues(t *testing.T) {
	cases := []struct {
		sf      int
		bw      float64
		cr      CodingRate
		payload int
		wantMS  float64
	}{
		// SF7 BW125 CR4/5 8B: 23 payload syms -> 35.25 x 1.024 ms.
		{7, 125e3, CR45, 8, 36.10},
		// SF9 BW125 CR4/5 16B: 28 payload syms -> 40.25 x 4.096 ms.
		{9, 125e3, CR45, 16, 164.86},
		// SF12 BW125 CR4/5 12B: 18 payload syms -> 30.25 x 32.768 ms.
		{12, 125e3, CR45, 12, 991.23},
		// SF8 BW500 CR4/6 60B: the OTA backbone packet.
		{8, 500e3, CR46, 60, 59.52},
		// SF10 BW250 CR4/8 24B: 48 payload syms -> 60.25 x 4.096 ms.
		{10, 250e3, CR48, 24, 246.78},
	}
	for _, c := range cases {
		p := Params{SF: c.sf, BW: c.bw, CR: c.cr, PreambleLen: 8, SyncWord: 0x12,
			ExplicitHeader: true, CRC: true, OSR: 1}
		got := p.TimeOnAir(c.payload).Seconds() * 1e3
		if math.Abs(got-c.wantMS) > c.wantMS*0.005 {
			t.Errorf("SF%d BW%.0fk %v %dB: %.2f ms, want %.2f", c.sf, c.bw/1e3, c.cr, c.payload, got, c.wantMS)
		}
	}
}

func TestTimeOnAirLDRO(t *testing.T) {
	// Low-data-rate optimization lengthens packets (fewer bits/symbol).
	base := Params{SF: 12, BW: 125e3, CR: CR45, PreambleLen: 8, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1}
	ldro := base
	ldro.LowDataRateOptimize = true
	if ldro.TimeOnAir(32) <= base.TimeOnAir(32) {
		t.Error("LDRO must lengthen the packet")
	}
}

func TestSymbolDurationAcrossConfigs(t *testing.T) {
	cases := []struct {
		sf   int
		bw   float64
		want time.Duration
	}{
		{7, 125e3, 1024 * time.Microsecond},
		{12, 125e3, 32768 * time.Microsecond},
		{9, 500e3, 1024 * time.Microsecond},
		{8, 250e3, 1024 * time.Microsecond},
	}
	for _, c := range cases {
		p := Params{SF: c.sf, BW: c.bw, CR: CR45, PreambleLen: 8, SyncWord: 0x12, OSR: 1, CRC: true, ExplicitHeader: true}
		if got := p.SymbolDuration(); got != c.want {
			t.Errorf("SF%d/BW%.0fk: %v, want %v", c.sf, c.bw/1e3, got, c.want)
		}
	}
}

func TestPHYRatesPaperRange(t *testing.T) {
	// §4.1: "PHY-layer rates of BW/2^SF x SF", spanning ~11 bps to 37.5 kbps
	// over the LoRa configuration space.
	slow := Params{SF: 12, BW: 7812.5, CR: CR45, PreambleLen: 8, SyncWord: 0x12, OSR: 1}
	fast := Params{SF: 6, BW: 500e3, CR: CR45, PreambleLen: 8, SyncWord: 0x12, OSR: 1}
	if r := slow.RawBitRate(); r > 25 {
		t.Errorf("slowest rate = %.1f bps, want tens of bps", r)
	}
	if r := fast.RawBitRate(); math.Abs(r-46875) > 1 {
		t.Errorf("fastest rate = %.0f bps, want 46875", r)
	}
}

func TestSensitivityTable(t *testing.T) {
	// Datasheet anchors at NF 7.
	cases := []struct {
		sf   int
		bw   float64
		want float64
	}{
		{7, 125e3, -123.5},
		{8, 125e3, -126},
		{10, 125e3, -131},
		{12, 125e3, -136},
		{8, 500e3, -120},
	}
	for _, c := range cases {
		if got := SensitivityDBm(c.sf, c.bw, 7); math.Abs(got-c.want) > 0.1 {
			t.Errorf("SF%d/BW%.0fk: %.1f, want %.1f", c.sf, c.bw/1e3, got, c.want)
		}
	}
}

func TestSNRLimitBounds(t *testing.T) {
	if SNRLimitDB(6) != -5 || SNRLimitDB(12) != -20 {
		t.Error("SNR limit anchors wrong")
	}
	for _, bad := range []int{5, 13} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SF%d accepted", bad)
				}
			}()
			SNRLimitDB(bad)
		}()
	}
}

func TestPacketErrorRateShape(t *testing.T) {
	p := DefaultParams()
	sens := SensitivityDBm(p.SF, p.BW, 7)
	// Monotone decreasing in RSSI.
	prev := 1.1
	for _, m := range []float64{-6, -3, 0, 3, 6} {
		per := PacketErrorRate(p, 32, sens+m, 7)
		if per > prev {
			t.Fatalf("PER not monotone at margin %v", m)
		}
		prev = per
	}
	// Anchors: ~1 far below, ~0 far above, ~10% near sensitivity.
	if per := PacketErrorRate(p, 32, sens-10, 7); per < 0.99 {
		t.Errorf("PER at -10 dB margin = %v", per)
	}
	if per := PacketErrorRate(p, 32, sens+10, 7); per > 1e-6 {
		t.Errorf("PER at +10 dB margin = %v", per)
	}
	mid := PacketErrorRate(p, 3, sens, 7)
	if mid < 0.02 || mid > 0.4 {
		t.Errorf("PER at sensitivity = %v, want ≈0.1", mid)
	}
	// Longer payloads fail more.
	if PacketErrorRate(p, 200, sens, 7) <= PacketErrorRate(p, 10, sens, 7) {
		t.Error("PER not increasing with payload length")
	}
	// FEC-capable rates do better.
	p48 := p
	p48.CR = CR48
	if PacketErrorRate(p48, 32, sens, 7) >= PacketErrorRate(p, 32, sens, 7) {
		t.Error("CR 4/8 not better than 4/5 at sensitivity")
	}
}

func TestAdaptSF(t *testing.T) {
	const bw, nf, margin = 125e3, 7.0, 3.0
	// Strong link: fastest rate.
	if got := AdaptSF(-80, bw, nf, margin); got != MinAdaptSF {
		t.Errorf("strong link SF = %d, want %d", got, MinAdaptSF)
	}
	// Dead link: slowest rate as last resort.
	if got := AdaptSF(-150, bw, nf, margin); got != 12 {
		t.Errorf("dead link SF = %d, want 12", got)
	}
	// Monotone: weaker links never get faster rates.
	prev := MinAdaptSF
	for rssi := -80.0; rssi >= -140; rssi-- {
		sf := AdaptSF(rssi, bw, nf, margin)
		if sf < prev {
			t.Fatalf("SF decreased from %d to %d at %.0f dBm", prev, sf, rssi)
		}
		prev = sf
	}
	// The chosen SF honors the margin where possible.
	for _, rssi := range []float64{-100, -115, -125, -130} {
		sf := AdaptSF(rssi, bw, nf, margin)
		if sf > MinAdaptSF {
			// The next-faster rate must violate the margin.
			if rssi-SensitivityDBm(sf-1, bw, nf) >= margin {
				t.Errorf("at %.0f dBm, SF%d chosen but SF%d had margin", rssi, sf, sf-1)
			}
		}
		if sf < 12 && rssi-SensitivityDBm(sf, bw, nf) < margin {
			t.Errorf("at %.0f dBm, SF%d lacks the margin", rssi, sf)
		}
	}
}
