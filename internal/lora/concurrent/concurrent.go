// Package concurrent implements the §6 research study: decoding multiple
// concurrent LoRa transmissions with different chirp slopes on one IoT
// endpoint. Chirps with different (SF, BW) slopes are near-orthogonal
// (slope = BW²/2^SF), so parallel dechirp+FFT chains — one per
// configuration, as synthesized in fpga.ConcurrentRXDesign — can separate
// them from a single I/Q stream.
package concurrent

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
)

// Decoder runs one demodulation chain per LoRa configuration against a
// shared sample stream at a common rate.
type Decoder struct {
	sampleRate float64
	chains     []*chain
}

type chain struct {
	params lora.Params
	demod  *lora.Demodulator
}

// NewDecoder builds a decoder for the given configurations. Every
// configuration's bandwidth must divide the common sample rate by a power
// of two (the per-chain oversampling ratio).
func NewDecoder(sampleRate float64, configs []lora.Params) (*Decoder, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("concurrent: no configurations")
	}
	d := &Decoder{sampleRate: sampleRate}
	for i, p := range configs {
		osr := sampleRate / p.BW
		if osr != float64(int(osr)) || !dsp.IsPowerOfTwo(int(osr)) {
			return nil, fmt.Errorf("concurrent: config %d: rate %v not a power-of-two multiple of BW %v", i, sampleRate, p.BW)
		}
		p.OSR = int(osr)
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("concurrent: config %d: %w", i, err)
		}
		demod, err := lora.NewDemodulator(p)
		if err != nil {
			return nil, err
		}
		d.chains = append(d.chains, &chain{params: p, demod: demod})
	}
	return d, nil
}

// SampleRate returns the decoder's common input rate.
func (d *Decoder) SampleRate() float64 { return d.sampleRate }

// Configs returns the per-chain parameters (with resolved OSR).
func (d *Decoder) Configs() []lora.Params {
	out := make([]lora.Params, len(d.chains))
	for i, c := range d.chains {
		out[i] = c.params
	}
	return out
}

// Slope returns the chirp slope BW²/2^SF of chain i, the quantity whose
// difference makes two configurations orthogonal (§6).
func (d *Decoder) Slope(i int) float64 {
	p := d.chains[i].params
	return p.BW * p.BW / float64(p.NumChips())
}

// DemodAligned demodulates symbol-aligned streams for every chain from the
// shared buffer. Chain i sees its own symbol grid (symbol lengths differ
// across configurations).
func (d *Decoder) DemodAligned(sig iq.Samples) [][]int {
	out := make([][]int, len(d.chains))
	for i, c := range d.chains {
		out[i] = c.demod.DemodAlignedSymbols(sig)
	}
	return out
}

// Transmitter pairs a modulator with its symbol stream for experiment
// construction.
type Transmitter struct {
	Params lora.Params
	mod    *lora.Modulator
}

// NewTransmitter returns a transmitter whose waveform is produced at the
// common sample rate (OSR = rate/BW).
func NewTransmitter(sampleRate float64, p lora.Params) (*Transmitter, error) {
	osr := sampleRate / p.BW
	if osr != float64(int(osr)) || !dsp.IsPowerOfTwo(int(osr)) {
		return nil, fmt.Errorf("concurrent: rate %v not a power-of-two multiple of BW %v", sampleRate, p.BW)
	}
	p.OSR = int(osr)
	mod, err := lora.NewModulator(p)
	if err != nil {
		return nil, err
	}
	return &Transmitter{Params: p, mod: mod}, nil
}

// ModulateSymbols produces the raw symbol stream waveform.
func (t *Transmitter) ModulateSymbols(shifts []int) (iq.Samples, error) {
	return t.mod.ModulateSymbols(shifts)
}

// SymbolLen returns samples per symbol at the common rate.
func (t *Transmitter) SymbolLen() int {
	return t.Params.NumChips() * t.Params.OSR
}
