package concurrent

import (
	"math/rand"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/radio"
)

// paperConfigs returns the §6 experiment setup: both SF8, bandwidths 125
// and 250 kHz, decoded at a common 250 kHz rate.
func paperConfigs() (lora.Params, lora.Params, float64) {
	p1 := lora.Params{SF: 8, BW: 125e3, CR: lora.CR45, PreambleLen: 10, SyncWord: 0x12, CRC: true, ExplicitHeader: true, OSR: 1}
	p2 := lora.Params{SF: 8, BW: 250e3, CR: lora.CR45, PreambleLen: 10, SyncWord: 0x12, CRC: true, ExplicitHeader: true, OSR: 1}
	return p1, p2, 250e3
}

func TestNewDecoderValidation(t *testing.T) {
	p1, p2, rate := paperConfigs()
	if _, err := NewDecoder(rate, []lora.Params{p1, p2}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDecoder(rate, nil); err == nil {
		t.Error("empty config set accepted")
	}
	// 3x bandwidth multiple is not a power of two.
	p3 := p1
	p3.BW = 125e3
	if _, err := NewDecoder(375e3, []lora.Params{p3}); err == nil {
		t.Error("non-power-of-two rate multiple accepted")
	}
}

func TestSlopesDiffer(t *testing.T) {
	p1, p2, rate := paperConfigs()
	d, err := NewDecoder(rate, []lora.Params{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	// BW250 has 4x the slope of BW125 at equal SF — the orthogonality
	// basis of §6.
	if r := d.Slope(1) / d.Slope(0); r != 4 {
		t.Errorf("slope ratio = %v, want 4", r)
	}
}

func randShifts(rng *rand.Rand, n, numChips int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(numChips)
	}
	return out
}

func countErrors(got, want []int) int {
	errs := 0
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			errs++
		}
	}
	return errs
}

func TestConcurrentSeparationHighSNR(t *testing.T) {
	// Two equal-power concurrent transmissions at high SNR must decode
	// with zero symbol errors on both chains.
	p1, p2, rate := paperConfigs()
	dec, err := NewDecoder(rate, []lora.Params{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	tx1, err := NewTransmitter(rate, p1)
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := NewTransmitter(rate, p2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	s1 := randShifts(rng, 20, 256)
	s2 := randShifts(rng, 40, 256) // BW250 symbols are half as long
	w1, _ := tx1.ModulateSymbols(s1)
	w2, _ := tx2.ModulateSymbols(s2)

	floor := channel.NoiseFloorDBm(rate, radio.NoiseFigureDB)
	ch := channel.NewAWGN(2, floor)
	rx := ch.ApplyMulti(len(w1), []iq.Samples{w1, w2}, []float64{-80, -80}, []int{0, 0})

	got := dec.DemodAligned(rx)
	if e := countErrors(got[0], s1); e != 0 {
		t.Errorf("chain 0 (BW125): %d errors at -80 dBm", e)
	}
	if e := countErrors(got[1], s2); e != 0 {
		t.Errorf("chain 1 (BW250): %d errors at -80 dBm", e)
	}
}

func TestConcurrentNearSensitivityLosesFewDB(t *testing.T) {
	// §6/Fig. 15a: concurrent demodulation costs ~2 dB (BW125) and
	// ~0.5 dB (BW250) of sensitivity. At 5 dB above single-link
	// sensitivity, both chains should still be mostly correct.
	p1, p2, rate := paperConfigs()
	dec, _ := NewDecoder(rate, []lora.Params{p1, p2})
	tx1, _ := NewTransmitter(rate, p1)
	tx2, _ := NewTransmitter(rate, p2)
	rng := rand.New(rand.NewSource(3))
	s1 := randShifts(rng, 60, 256)
	s2 := randShifts(rng, 120, 256)
	w1, _ := tx1.ModulateSymbols(s1)
	w2, _ := tx2.ModulateSymbols(s2)

	floor := channel.NoiseFloorDBm(rate, radio.NoiseFigureDB)
	ch := channel.NewAWGN(4, floor)
	sens1 := lora.SensitivityDBm(8, 125e3, radio.NoiseFigureDB)
	rx := ch.ApplyMulti(len(w1), []iq.Samples{w1, w2}, []float64{sens1 + 5, sens1 + 5 + 3}, []int{0, 0})

	got := dec.DemodAligned(rx)
	if e := countErrors(got[0], s1); e > len(s1)/5 {
		t.Errorf("chain 0: %d/%d errors at sensitivity+5", e, len(s1))
	}
	if e := countErrors(got[1], s2); e > len(s2)/5 {
		t.Errorf("chain 1: %d/%d errors", e, len(s2))
	}
}

func TestStrongInterfererDegradesWeakLink(t *testing.T) {
	// Fig. 15b: with BW125 fixed near sensitivity, raising the BW250
	// power far above it must push the BW125 chain into errors — the
	// power-control lesson of §6.
	p1, p2, rate := paperConfigs()
	dec, _ := NewDecoder(rate, []lora.Params{p1, p2})
	tx1, _ := NewTransmitter(rate, p1)
	tx2, _ := NewTransmitter(rate, p2)
	rng := rand.New(rand.NewSource(5))
	s1 := randShifts(rng, 50, 256)
	s2 := randShifts(rng, 100, 256)
	w1, _ := tx1.ModulateSymbols(s1)
	w2, _ := tx2.ModulateSymbols(s2)

	floor := channel.NoiseFloorDBm(rate, radio.NoiseFigureDB)
	weak := lora.SensitivityDBm(8, 125e3, radio.NoiseFigureDB) + 3

	quiet := channel.NewAWGN(6, floor).ApplyMulti(len(w1), []iq.Samples{w1, w2}, []float64{weak, weak - 100}, []int{0, 0})
	loud := channel.NewAWGN(6, floor).ApplyMulti(len(w1), []iq.Samples{w1, w2}, []float64{weak, weak + 25}, []int{0, 0})

	eQuiet := countErrors(dec.DemodAligned(quiet)[0], s1)
	eLoud := countErrors(dec.DemodAligned(loud)[0], s1)
	if eLoud <= eQuiet {
		t.Errorf("strong interferer did not degrade weak link: %d vs %d errors", eLoud, eQuiet)
	}
}

func TestConfigsReportResolvedOSR(t *testing.T) {
	p1, p2, rate := paperConfigs()
	d, _ := NewDecoder(rate, []lora.Params{p1, p2})
	cfgs := d.Configs()
	if cfgs[0].OSR != 2 || cfgs[1].OSR != 1 {
		t.Errorf("OSRs = %d, %d; want 2, 1", cfgs[0].OSR, cfgs[1].OSR)
	}
}
