package lora

import (
	"bytes"
	"testing"
)

// Native go test -fuzz harnesses for the LoRa header and transport decode
// chain — the first code that touches symbol values recovered from the
// air, so arbitrary inputs must produce clean errors, never panics, and
// everything accepted must round-trip.

// FuzzParseHeader drives the explicit-header parser with arbitrary nibble
// streams and pins the encode/parse round trip for valid headers.
func FuzzParseHeader(f *testing.F) {
	p := DefaultParams()
	f.Add(p.headerNibbles(3), true)
	f.Add(p.headerNibbles(255), true)
	f.Add([]byte{0xF, 0xF, 0xF, 0xF, 0xF}, false)
	f.Add([]byte{}, false)
	f.Fuzz(func(t *testing.T, nibs []byte, _ bool) {
		hdr, err := parseHeader(nibs)
		if err != nil {
			return
		}
		if hdr.PayloadLen < 0 || hdr.PayloadLen > MaxPayload {
			t.Fatalf("accepted header with payload length %d", hdr.PayloadLen)
		}
		if hdr.CR < CR45 || hdr.CR > CR48 {
			t.Fatalf("accepted header with CR %d", int(hdr.CR))
		}
		// Re-encode with matching params: the first five nibbles must
		// reproduce exactly (parseHeader masks to the low nibble).
		q := DefaultParams()
		q.CR = hdr.CR
		q.CRC = hdr.HasCRC
		enc := q.headerNibbles(hdr.PayloadLen)
		for i := range enc {
			if enc[i] != nibs[i]&0xF {
				t.Fatalf("header round trip diverges at nibble %d: %x vs %x", i, enc, nibs[:5])
			}
		}
	})
}

// FuzzDecodeSymbolStream drives the full first-block + payload-block
// decode chain with arbitrary symbol values, the way a hostile or garbled
// transmission would.
func FuzzDecodeSymbolStream(f *testing.F) {
	p := DefaultParams()
	if syms, err := p.encodeBlocks([]byte{0xA5, 0x5A, 0x3C}); err == nil {
		buf := make([]byte, len(syms))
		for i, s := range syms {
			buf[i] = byte(s)
		}
		f.Add(buf, uint8(3))
	}
	f.Add([]byte{1, 2, 3}, uint8(0))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, lenByte uint8) {
		p := DefaultParams()
		syms := make([]int, len(raw))
		for i, b := range raw {
			syms[i] = int(b) % p.NumChips()
		}
		if len(syms) < 8 {
			return
		}
		nibs, _, err := p.decodeFirstBlock(syms[:8])
		if err != nil {
			return
		}
		body, _ := p.decodePayloadBlocks(syms[8:])
		all := append(nibs[headerNibbleCount:], body...)
		// assembleNibbles must handle any advertised length cleanly.
		payload, _, err := p.assembleNibbles(all, int(lenByte))
		if err != nil {
			return
		}
		if len(payload) != int(lenByte) {
			t.Fatalf("assembled %d bytes for advertised length %d", len(payload), lenByte)
		}
	})
}

// FuzzModulateRoundTrip modulates arbitrary short payloads and requires
// the clean-channel demodulator to recover them exactly — the modem
// equivalent of a compression round-trip fuzz.
func FuzzModulateRoundTrip(f *testing.F) {
	f.Add([]byte{0xA5})
	f.Add([]byte("tinysdr"))
	f.Add(bytes.Repeat([]byte{0x00}, 16))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > 32 {
			return // bound the waveform size for fuzz throughput
		}
		p := DefaultParams()
		mod, err := NewModulator(p)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := mod.Modulate(payload)
		if err != nil {
			t.Fatal(err)
		}
		demod, err := NewDemodulator(p)
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := demod.Receive(sig)
		if err != nil {
			t.Fatalf("clean round trip failed for %x: %v", payload, err)
		}
		if !pkt.CRCOK || !bytes.Equal(pkt.Payload, payload) {
			t.Fatalf("payload %x decoded as %x (CRCOK=%v)", payload, pkt.Payload, pkt.CRCOK)
		}
	})
}
