// Package lora implements the LoRa physical layer from scratch, following
// the architecture tinySDR runs on its FPGA (Fig. 6): a CSS chirp modulator
// and an FFT demodulator, together with the full transport chain — whitening,
// Hamming forward error correction, diagonal interleaving, Gray mapping,
// explicit header, and payload CRC.
//
// The modulator and demodulator operate on complex baseband sample buffers
// at OSR samples per chip, the stream the FPGA sees after its front-end
// decimates the radio's 4 MHz interface to the protocol bandwidth.
package lora

import (
	"fmt"
	"math"
	"time"

	"github.com/uwsdr/tinysdr/internal/dsp"
)

// CodingRate is a LoRa coding rate 4/(4+CR).
type CodingRate int

// The four LoRa coding rates.
const (
	CR45 CodingRate = 1 // 4/5: single parity, detect-only
	CR46 CodingRate = 2 // 4/6: two parity bits, detect-only
	CR47 CodingRate = 3 // 4/7: Hamming(7,4), corrects one bit
	CR48 CodingRate = 4 // 4/8: Hamming(8,4), corrects one, detects two
)

// String renders the rate as the conventional fraction.
func (c CodingRate) String() string { return fmt.Sprintf("4/%d", 4+int(c)) }

// CodewordBits returns the encoded width of one nibble.
func (c CodingRate) CodewordBits() int { return 4 + int(c) }

// Valid bandwidths in Hz (the Semtech set the paper quotes: 7.8125 kHz to
// 500 kHz; tinySDR's 4 MHz front end covers all of them).
var validBWs = map[float64]bool{
	7812.5: true, 10400: true, 15600: true, 20800: true, 31250: true,
	41700: true, 62500: true, 125000: true, 250000: true, 500000: true,
}

// Params configures one LoRa PHY instance.
type Params struct {
	// SF is the spreading factor, 6..12: bits per chirp symbol.
	SF int
	// BW is the chirp bandwidth in Hz.
	BW float64
	// CR is the coding rate for payload blocks (the header always uses 4/8).
	CR CodingRate
	// PreambleLen is the number of base upchirps before the sync word.
	// tinySDR uses 10 (Fig. 5); the OTA system uses 8 (§5.3).
	PreambleLen int
	// SyncWord selects the two sync symbols following the preamble.
	SyncWord byte
	// ExplicitHeader includes the PHY header (length, CR, CRC flag).
	ExplicitHeader bool
	// CRC appends a 16-bit payload CRC.
	CRC bool
	// LowDataRateOptimize encodes payload blocks at SF-2 bits per symbol,
	// required by the standard at long symbol times.
	LowDataRateOptimize bool
	// OSR is samples per chip for the waveform (power of two >= 1).
	OSR int
	// Ideal selects infinite-precision chirps (comparator silicon) instead
	// of tinySDR's 13-bit LUT datapath.
	Ideal bool
}

// DefaultParams returns the paper's LoRa case-study configuration:
// SF8, 125 kHz, CR 4/5, explicit header, CRC, 10-symbol preamble.
func DefaultParams() Params {
	return Params{
		SF: 8, BW: 125e3, CR: CR45, PreambleLen: 10, SyncWord: 0x12,
		ExplicitHeader: true, CRC: true, OSR: 1,
	}
}

// Validate checks the configuration against protocol and implementation
// limits.
func (p Params) Validate() error {
	if p.SF < 6 || p.SF > 12 {
		return fmt.Errorf("lora: SF%d outside 6..12", p.SF)
	}
	if !validBWs[p.BW] {
		return fmt.Errorf("lora: bandwidth %v Hz not a LoRa bandwidth", p.BW)
	}
	if p.CR < CR45 || p.CR > CR48 {
		return fmt.Errorf("lora: coding rate %d outside 1..4", int(p.CR))
	}
	if p.PreambleLen < 6 || p.PreambleLen > 65535 {
		return fmt.Errorf("lora: preamble length %d outside 6..65535", p.PreambleLen)
	}
	if p.OSR < 1 || !dsp.IsPowerOfTwo(p.OSR) {
		return fmt.Errorf("lora: OSR %d must be a power of two", p.OSR)
	}
	if p.SF == 6 && p.ExplicitHeader {
		return fmt.Errorf("lora: SF6 supports implicit header only")
	}
	return nil
}

// chirpGen returns the configured chirp generator.
func (p Params) chirpGen() dsp.ChirpGen {
	return dsp.ChirpGen{SF: p.SF, OSR: p.OSR, Ideal: p.Ideal}
}

// NumChips returns chips per symbol, 2^SF.
func (p Params) NumChips() int { return 1 << p.SF }

// SampleRate returns the waveform sample rate in Hz.
func (p Params) SampleRate() float64 { return p.BW * float64(p.OSR) }

// SymbolDuration returns the chirp symbol time 2^SF/BW.
func (p Params) SymbolDuration() time.Duration {
	return time.Duration(float64(p.NumChips()) / p.BW * float64(time.Second))
}

// RawBitRate returns the PHY rate before coding: SF x BW / 2^SF, the
// BW/2^SF x SF expression of §4.1.
func (p Params) RawBitRate() float64 {
	return float64(p.SF) * p.BW / float64(p.NumChips())
}

// BitRate returns the effective payload bit rate including the coding rate.
func (p Params) BitRate() float64 {
	return p.RawBitRate() * 4 / float64(4+int(p.CR))
}

// payloadSymbols returns the number of payload-section symbols for a payload
// of n bytes, per the Semtech air-time formula. The first block (8 symbols)
// is always present.
func (p Params) payloadSymbols(n int) int {
	de := 0
	if p.LowDataRateOptimize {
		de = 1
	}
	ih := 0
	if !p.ExplicitHeader {
		ih = 1
	}
	crc := 0
	if p.CRC {
		crc = 1
	}
	num := 8*n - 4*p.SF + 28 + 16*crc - 20*ih
	den := 4 * (p.SF - 2*de)
	extra := 0
	if num > 0 {
		extra = int(math.Ceil(float64(num)/float64(den))) * (int(p.CR) + 4)
	}
	return 8 + extra
}

// TimeOnAir returns the full packet duration for a payload of n bytes:
// preamble + sync + SFD + payload symbols.
func (p Params) TimeOnAir(n int) time.Duration {
	tSym := float64(p.NumChips()) / p.BW
	preamble := (float64(p.PreambleLen) + 4.25) * tSym // sync(2) + SFD(2.25)
	payload := float64(p.payloadSymbols(n)) * tSym
	return time.Duration((preamble + payload) * float64(time.Second))
}

// syncShifts returns the two sync-symbol cyclic shifts derived from the
// sync word (one nibble per symbol, scaled by 8 as in commercial silicon).
func (p Params) syncShifts() (int, int) {
	n := p.NumChips()
	return (int(p.SyncWord>>4) * 8) % n, (int(p.SyncWord&0xF) * 8) % n
}
