package lora

import (
	"errors"
	"fmt"

	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Demodulator is the Fig. 6b LoRa demodulator: 14-tap FIR low-pass, dechirp
// by a locally generated reference (Complex Multiplier), FFT, and peak
// detection (Symbol Detector), followed by the transport decode chain.
//
// A Demodulator owns a scratch arena sized to one symbol so the per-window
// pipeline (dechirp → FFT → magnitudes → fold) runs with zero heap
// allocations. It is therefore NOT safe for concurrent use; give each
// goroutine its own Demodulator (construction is deterministic, so all
// copies behave identically).
type Demodulator struct {
	p      Params
	up     iq.Samples // base upchirp reference
	down   iq.Samples // base downchirp reference
	fir    *dsp.FIR
	symLen int
	plan   *dsp.FFTPlan

	// Scratch arena, reused across windows.
	de     iq.Samples // dechirped symbol FFT, symLen
	folded []float64  // folded decision bins, NumChips
	filt   iq.Samples // FIR output, grown to the largest signal seen
}

// preambleDetectRatio is the peak-to-mean FFT power ratio above which a
// dechirped window counts as a preamble tone. It trades false preamble
// locks against sensitivity; 8 keeps the false-positive rate on pure noise
// below 1e-3 per window while detecting preambles below the demodulation
// SNR limit.
const preambleDetectRatio = 8.0

// minPreambleWindows is how many consecutive stable windows declare a
// preamble. The scan sees PreambleLen-1 full windows in the worst
// alignment; 5 works for the standard 8-symbol preamble and up.
const minPreambleWindows = 5

// Packet is a received LoRa frame.
type Packet struct {
	// Payload is the decoded payload.
	Payload []byte
	// Header is the decoded explicit header (zero value for implicit RX).
	Header Header
	// CRCOK reports whether the payload CRC verified (true when absent).
	CRCOK bool
	// FECOK reports whether every codeword decoded without uncorrectable
	// errors.
	FECOK bool
	// StartSample is the estimated index of the preamble start within the
	// buffer handed to Receive.
	StartSample int
}

// NewDemodulator returns a demodulator for the given parameters. The
// references are always generated on the exact (ideal) datapath: the
// receiver's numeric precision is set by the FFT, not the TX LUT.
func NewDemodulator(p Params) (*Demodulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	gen := p.chirpGen()
	gen.Ideal = true
	d := &Demodulator{
		p:      p,
		up:     gen.Upchirp(0),
		down:   gen.Downchirp(),
		symLen: gen.SymbolLen(),
		plan:   dsp.NewFFTPlan(gen.SymbolLen()),
		de:     make(iq.Samples, gen.SymbolLen()),
		folded: make([]float64, p.NumChips()),
	}
	if p.OSR > 1 {
		// The paper's 14-tap FIR low-pass suppresses out-of-band noise
		// ahead of the oversampled dechirp.
		d.fir = dsp.NewLowpass(14, 0.5/float64(p.OSR)*0.9)
	}
	return d, nil
}

// Params returns the demodulator configuration.
func (d *Demodulator) Params() Params { return d.p }

// Filter applies the front-end FIR (a no-op at OSR 1, where the signal is
// critically sampled). The returned buffer is the demodulator's scratch:
// it stays valid until the next Filter/Receive call on this Demodulator.
func (d *Demodulator) Filter(sig iq.Samples) iq.Samples {
	if d.fir == nil {
		return sig
	}
	if cap(d.filt) < len(sig) {
		d.filt = make(iq.Samples, len(sig))
	}
	return d.fir.FilterInto(d.filt[:len(sig)], sig)
}

// demodWindow dechirps one symbol-length window against the upchirp
// reference and returns the detected shift, its folded peak power, and the
// mean folded bin power. The whole pipeline is two fused passes
// (DechirpTransformInto, then FoldPeakInto) over the scratch arena: zero
// heap allocations per call.
func (d *Demodulator) demodWindow(w iq.Samples) (shift int, peak, mean float64) {
	d.plan.DechirpTransformInto(d.de, w, d.up)
	shift, peak, sum := dsp.FoldPeakInto(d.folded, d.de)
	return shift, peak, sum / float64(len(d.folded))
}

// downPeak dechirps a window against the downchirp reference, returning the
// folded peak power — used for SFD detection (the up/down comparison of
// §4.1). The fold makes the comparison symmetric with demodWindow's upchirp
// peak: at OSR > 1 both candidates sum their two image bins instead of only
// the upchirp side (the old PeakBin rescan read single unfolded bins).
// Like demodWindow it runs in the scratch arena.
func (d *Demodulator) downPeak(w iq.Samples) float64 {
	d.plan.DechirpTransformInto(d.de, w, d.down)
	_, p, _ := dsp.FoldPeakInto(d.folded, d.de)
	return p
}

// DemodAlignedSymbols demodulates a stream of symbol-aligned raw chirps
// (no framing), as the chirp-symbol-error-rate experiments do.
func (d *Demodulator) DemodAlignedSymbols(sig iq.Samples) []int {
	return d.DemodAlignedSymbolsInto(make([]int, 0, len(sig)/d.symLen), sig)
}

// DemodAlignedSymbolsInto is DemodAlignedSymbols writing into caller
// scratch: dst is truncated and appended to, so a capacity-sized dst makes
// the whole aligned demod loop allocation-free — the contract the composed
// channel-scenario sweeps rely on.
func (d *Demodulator) DemodAlignedSymbolsInto(dst []int, sig iq.Samples) []int {
	sig = d.Filter(sig)
	n := len(sig) / d.symLen
	dst = dst[:0]
	for i := 0; i < n; i++ {
		shift, _, _ := d.demodWindow(sig[i*d.symLen : (i+1)*d.symLen])
		//lint:allocok appends into caller capacity; TestDemodAlignedSymbolsZeroAllocs pins 0 allocs/op
		dst = append(dst, shift)
	}
	return dst
}

// chipDist is the cyclic distance between two shifts in chips.
func (d *Demodulator) chipDist(a, b int) int {
	n := d.p.NumChips()
	diff := (a - b + n) % n
	if diff > n/2 {
		diff = n - diff
	}
	return diff
}

// findPreamble scans sig in symbol-length steps for a run of stable
// dechirped tones. It returns the index of the first sample of the aligned
// preamble symbol grid and the window index where the run was confirmed.
func (d *Demodulator) findPreamble(sig iq.Samples) (alignedStart int, confirmedAt int, err error) {
	s := d.symLen
	run := 0
	lastShift := -10
	for w := 0; (w+1)*s <= len(sig); w++ {
		shift, peak, mean := d.demodWindow(sig[w*s : (w+1)*s])
		if mean > 0 && peak/mean >= preambleDetectRatio && (run == 0 || d.chipDist(shift, lastShift) <= 1) {
			run++
			lastShift = shift
			if run >= minPreambleWindows {
				// Window offset within the preamble symbol: the
				// detected shift b maps to a start delay of
				// (N - b) mod N chips.
				tau := ((d.p.NumChips() - shift) % d.p.NumChips()) * d.p.OSR
				start := (w-run+1)*s + tau
				return start, w, nil
			}
		} else if mean > 0 && peak/mean >= preambleDetectRatio {
			run = 1
			lastShift = shift
		} else {
			run = 0
			lastShift = -10
		}
	}
	return 0, 0, errors.New("lora: no preamble found")
}

// Receive locates and decodes one explicit-header packet in sig.
func (d *Demodulator) Receive(sig iq.Samples) (*Packet, error) {
	if !d.p.ExplicitHeader {
		return nil, errors.New("lora: Receive requires explicit header; use ReceiveImplicit")
	}
	return d.receive(sig, -1)
}

// ReceiveImplicit decodes an implicit-header packet of known payload length.
func (d *Demodulator) ReceiveImplicit(sig iq.Samples, payloadLen int) (*Packet, error) {
	if payloadLen <= 0 || payloadLen > MaxPayload {
		return nil, fmt.Errorf("lora: implicit payload length %d", payloadLen)
	}
	return d.receive(sig, payloadLen)
}

func (d *Demodulator) receive(sig iq.Samples, implicitLen int) (*Packet, error) {
	sig = d.Filter(sig)
	s := d.symLen
	start, _, err := d.findPreamble(sig)
	if err != nil {
		return nil, err
	}

	// Walk the aligned symbol grid: remaining preamble, sync, SFD.
	s1, s2 := d.p.syncShifts()
	w := start / s
	if start%s != 0 {
		w++ // first full window on the aligned grid
	}
	gridOff := start % s
	window := func(i int) (iq.Samples, bool) {
		lo := i*s + gridOff
		hi := lo + s
		if lo < 0 || hi > len(sig) {
			return nil, false
		}
		return sig[lo:hi], true
	}

	// Find the sync pair within a bounded horizon.
	horizon := d.p.PreambleLen + 8
	syncAt := -1
	for i := w; i < w+horizon; i++ {
		win, ok := window(i)
		if !ok {
			return nil, errors.New("lora: buffer ends inside preamble")
		}
		shift, _, _ := d.demodWindow(win)
		if d.chipDist(shift, s1) <= 1 {
			next, ok := window(i + 1)
			if !ok {
				return nil, errors.New("lora: buffer ends at sync word")
			}
			nshift, _, _ := d.demodWindow(next)
			if d.chipDist(nshift, s2) <= 1 {
				syncAt = i
				break
			}
		}
	}
	if syncAt < 0 {
		return nil, errors.New("lora: sync word not found")
	}

	// Verify the SFD: the window after sync2 must correlate with the
	// downchirp more strongly than with the upchirp.
	sfd, ok := window(syncAt + 2)
	if !ok {
		return nil, errors.New("lora: buffer ends at SFD")
	}
	_, upP, _ := d.demodWindow(sfd)
	if d.downPeak(sfd) <= upP {
		return nil, errors.New("lora: SFD downchirp not detected")
	}

	// Payload starts 2.25 symbols after the SFD head.
	payloadStart := (syncAt+2)*s + gridOff + s*9/4
	readSym := func(i int) (int, error) {
		lo := payloadStart + i*s
		if lo+s > len(sig) {
			return 0, errors.New("lora: buffer ends inside payload")
		}
		shift, _, _ := d.demodWindow(sig[lo : lo+s])
		return shift, nil
	}

	// Header block: always the first 8 symbols.
	first := make([]int, 8)
	for i := range first {
		v, err := readSym(i)
		if err != nil {
			return nil, err
		}
		first[i] = v
	}
	firstNibs, fecOK, err := d.p.decodeFirstBlock(first)
	if err != nil {
		return nil, err
	}

	pkt := &Packet{StartSample: start, FECOK: fecOK}
	params := d.p
	var bodyNibs []byte
	if implicitLen >= 0 {
		params.ExplicitHeader = false
		pkt.Header = Header{PayloadLen: implicitLen, CR: params.CR, HasCRC: params.CRC}
		bodyNibs = firstNibs
	} else {
		hdr, err := parseHeader(firstNibs)
		if err != nil {
			return nil, err
		}
		pkt.Header = hdr
		params.CR = hdr.CR
		params.CRC = hdr.HasCRC
		bodyNibs = firstNibs[headerNibbleCount:]
	}

	total := params.symbolCountFor(pkt.Header.PayloadLen)
	rest := make([]int, 0, total-8)
	for i := 8; i < total; i++ {
		v, err := readSym(i)
		if err != nil {
			return nil, err
		}
		rest = append(rest, v)
	}
	nibs, fecOK2 := params.decodePayloadBlocks(rest)
	pkt.FECOK = pkt.FECOK && fecOK2
	payload, crcOK, err := params.assembleNibbles(append(bodyNibs, nibs...), pkt.Header.PayloadLen)
	if err != nil {
		return nil, err
	}
	pkt.Payload = payload
	pkt.CRCOK = crcOK
	return pkt, nil
}
