package httpjson

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
)

func TestWrite(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 201, map[string]int{"n": 3})
	if rec.Code != 201 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["n"] != 3 {
		t.Fatalf("body %v", got)
	}
}

func TestError(t *testing.T) {
	rec := httptest.NewRecorder()
	Error(rec, 418, errors.New("boom"))
	if rec.Code != 418 {
		t.Fatalf("status %d", rec.Code)
	}
	var got map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["error"] != "boom" {
		t.Fatalf("body %v", got)
	}
}
