// Package httpjson holds the JSON response helpers shared by the HTTP
// APIs in this repo — the fleet campaign server and the sense ingest
// server — so every endpoint renders bodies and errors identically
// instead of each server growing its own copy.
package httpjson

import (
	"encoding/json"
	"net/http"
)

// Write renders v as indented JSON with the given status code.
func Write(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Error renders err as the canonical {"error": "..."} body.
func Error(w http.ResponseWriter, code int, err error) {
	Write(w, code, map[string]string{"error": err.Error()})
}
