// Package iq provides complex baseband sample types and the power/amplitude
// conversions used throughout the tinySDR simulation.
//
// Conventions:
//   - A sample is a complex128 whose squared magnitude is instantaneous power
//     in milliwatts. An amplitude of 1.0 therefore corresponds to 0 dBm.
//   - Sample rates are in hertz, frequencies in hertz, powers in dBm unless a
//     name says otherwise.
//
// The package also models the 13-bit ADC/DAC datapath of the AT86RF215 radio
// used on the tinySDR board: see Quantize.
package iq

import "math"

// Samples is a buffer of complex baseband samples.
type Samples []complex128

// Clone returns a copy of s.
func (s Samples) Clone() Samples {
	c := make(Samples, len(s))
	copy(c, s)
	return c
}

// Power returns the mean power of the buffer in linear units (milliwatts).
// It returns 0 for an empty buffer.
func (s Samples) Power() float64 {
	if len(s) == 0 {
		return 0
	}
	var acc float64
	for _, x := range s {
		re, im := real(x), imag(x)
		acc += re*re + im*im
	}
	return acc / float64(len(s))
}

// PowerDBm returns the mean power of the buffer in dBm.
// It returns -inf for an empty or all-zero buffer.
func (s Samples) PowerDBm() float64 {
	return WattsToDBm(s.Power() / 1e3)
}

// Scale multiplies every sample by the real gain g, in place, and returns s.
func (s Samples) Scale(g float64) Samples {
	for i := range s {
		s[i] *= complex(g, 0)
	}
	return s
}

// ScaleToDBm rescales the buffer so its mean power equals the given level in
// dBm, in place, and returns s. A zero-power buffer is returned unchanged.
func (s Samples) ScaleToDBm(dbm float64) Samples {
	p := s.Power()
	if p == 0 {
		return s
	}
	target := DBmToMilliwatts(dbm)
	return s.Scale(math.Sqrt(target / p))
}

// Add adds o into s element-wise, in place, up to the shorter length, and
// returns s. This models superposition of concurrent transmissions.
func (s Samples) Add(o Samples) Samples {
	n := min(len(s), len(o))
	for i := 0; i < n; i++ {
		s[i] += o[i]
	}
	return s
}

// AddAt adds o into s starting at sample offset, clipping to s's bounds.
func (s Samples) AddAt(offset int, o Samples) Samples {
	if offset < 0 {
		o = o[min(-offset, len(o)):]
		offset = 0
	}
	for i := 0; i < len(o) && offset+i < len(s); i++ {
		s[offset+i] += o[i]
	}
	return s
}

// Envelope returns the magnitude of each sample (units of sqrt(mW)).
func (s Samples) Envelope() []float64 {
	env := make([]float64, len(s))
	for i, x := range s {
		env[i] = math.Hypot(real(x), imag(x))
	}
	return env
}

// DBmToMilliwatts converts dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts milliwatts to dBm. Zero or negative input yields -inf.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DBmToWatts converts dBm to watts.
func DBmToWatts(dbm float64) float64 { return DBmToMilliwatts(dbm) / 1e3 }

// WattsToDBm converts watts to dBm. Zero or negative input yields -inf.
func WattsToDBm(w float64) float64 { return MilliwattsToDBm(w * 1e3) }

// DBmToAmplitude returns the sample amplitude whose power is the given dBm
// level under the package's 1.0 == 0 dBm convention.
func DBmToAmplitude(dbm float64) float64 { return math.Sqrt(DBmToMilliwatts(dbm)) }

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }
