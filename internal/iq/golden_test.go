package iq

import (
	"math"
	"testing"
)

func TestInt16CodecRoundTrip(t *testing.T) {
	s := make(Samples, 257)
	for i := range s {
		ang := 2 * math.Pi * float64(i) / 32
		s[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	enc := EncodeInt16(s, 13, 2.0)
	if len(enc) != 4*len(s) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), 4*len(s))
	}
	dec, err := DecodeInt16(enc, 13, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(s) {
		t.Fatalf("decoded %d samples, want %d", len(dec), len(s))
	}
	// One quantization step at 13 bits over a 2.0 full scale.
	step := 2.0 / 4096
	for i := range s {
		if math.Abs(real(dec[i])-real(s[i])) > step || math.Abs(imag(dec[i])-imag(s[i])) > step {
			t.Fatalf("sample %d: %v -> %v exceeds one step", i, s[i], dec[i])
		}
	}
	// Decoding the encoding of the decoding must be a fixed point: codes
	// survive the round trip exactly.
	enc2 := EncodeInt16(dec, 13, 2.0)
	for i := range enc {
		if enc[i] != enc2[i] {
			t.Fatalf("codec not idempotent at byte %d", i)
		}
	}
}

func TestDecodeInt16RejectsRaggedInput(t *testing.T) {
	if _, err := DecodeInt16(make([]byte, 6), 13, 2.0); err == nil {
		t.Error("ragged capture accepted")
	}
}

func TestDecodeInt16IntoMatchesDecode(t *testing.T) {
	s := make(Samples, 64)
	for i := range s {
		s[i] = complex(math.Sin(float64(i)/5), math.Cos(float64(i)/7))
	}
	enc := EncodeInt16(s, 13, 2.0)
	want, err := DecodeInt16(enc, 13, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	dst := make(Samples, len(s))
	DecodeInt16Into(dst, enc, 13, 2.0)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("sample %d: Into %v, Decode %v", i, dst[i], want[i])
		}
	}
	if allocs := testing.AllocsPerRun(100, func() {
		DecodeInt16Into(dst, enc, 13, 2.0)
	}); allocs != 0 {
		t.Errorf("DecodeInt16Into allocates %.0f objects/op, want 0", allocs)
	}
}

func TestDecodeInt16IntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DecodeInt16Into(make(Samples, 3), make([]byte, 8), 13, 2.0)
}
