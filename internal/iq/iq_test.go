package iq

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPowerOfKnownSignal(t *testing.T) {
	// A constant amplitude-1 signal has power 1 mW == 0 dBm.
	s := make(Samples, 100)
	for i := range s {
		s[i] = 1
	}
	if got := s.Power(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Power() = %v, want 1", got)
	}
	if got := s.PowerDBm(); !almostEqual(got, 0, 1e-9) {
		t.Errorf("PowerDBm() = %v, want 0", got)
	}
}

func TestPowerEmptyBuffer(t *testing.T) {
	var s Samples
	if got := s.Power(); got != 0 {
		t.Errorf("Power() of empty = %v, want 0", got)
	}
	if got := s.PowerDBm(); !math.IsInf(got, -1) {
		t.Errorf("PowerDBm() of empty = %v, want -inf", got)
	}
}

func TestScaleToDBm(t *testing.T) {
	s := make(Samples, 256)
	for i := range s {
		phase := 2 * math.Pi * float64(i) / 16
		s[i] = cmplx.Exp(complex(0, phase)) * 3.7
	}
	for _, want := range []float64{-120, -50, 0, 14} {
		s.ScaleToDBm(want)
		if got := s.PowerDBm(); !almostEqual(got, want, 1e-9) {
			t.Errorf("after ScaleToDBm(%v), PowerDBm() = %v", want, got)
		}
	}
}

func TestScaleToDBmZeroSignal(t *testing.T) {
	s := make(Samples, 8) // all zero
	s.ScaleToDBm(0)       // must not produce NaN
	for i, x := range s {
		if cmplx.IsNaN(x) {
			t.Fatalf("sample %d is NaN after scaling zero buffer", i)
		}
	}
}

func TestAddSuperposition(t *testing.T) {
	a := Samples{1, 2, 3}
	b := Samples{10, 20, 30, 40}
	a.Add(b)
	want := Samples{11, 22, 33}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("a[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestAddAt(t *testing.T) {
	s := make(Samples, 5)
	s.AddAt(2, Samples{1, 1, 1, 1, 1}) // clips at the end
	want := Samples{0, 0, 1, 1, 1}
	for i := range want {
		if s[i] != want[i] {
			t.Errorf("s[%d] = %v, want %v", i, s[i], want[i])
		}
	}
	s2 := make(Samples, 3)
	s2.AddAt(-2, Samples{5, 6, 7, 8}) // negative offset clips the head
	want2 := Samples{7, 8, 0}
	for i := range want2 {
		if s2[i] != want2[i] {
			t.Errorf("s2[%d] = %v, want %v", i, s2[i], want2[i])
		}
	}
}

func TestConversionsRoundTrip(t *testing.T) {
	f := func(dbm float64) bool {
		dbm = math.Mod(dbm, 200) // keep in a physical range
		back := MilliwattsToDBm(DBmToMilliwatts(dbm))
		return almostEqual(back, dbm, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDBmToWattsKnownValues(t *testing.T) {
	cases := []struct{ dbm, watts float64 }{
		{0, 1e-3},
		{30, 1},
		{-30, 1e-6},
		{14, 25.118864315095822e-3},
	}
	for _, c := range cases {
		if got := DBmToWatts(c.dbm); !almostEqual(got, c.watts, c.watts*1e-9) {
			t.Errorf("DBmToWatts(%v) = %v, want %v", c.dbm, got, c.watts)
		}
	}
}

func TestDBRoundTrip(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 100)
		return almostEqual(DB(FromDB(db)), db, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAmplitudePowerConsistency(t *testing.T) {
	// A buffer filled with DBmToAmplitude(p) must measure p dBm.
	for _, p := range []float64{-126, -94, -30, 0, 14, 30} {
		s := make(Samples, 64)
		amp := DBmToAmplitude(p)
		for i := range s {
			s[i] = complex(amp, 0)
		}
		if got := s.PowerDBm(); !almostEqual(got, p, 1e-9) {
			t.Errorf("PowerDBm() = %v, want %v", got, p)
		}
	}
}

func TestEnvelope(t *testing.T) {
	s := Samples{complex(3, 4), complex(0, -2)}
	env := s.Envelope()
	if !almostEqual(env[0], 5, 1e-12) || !almostEqual(env[1], 2, 1e-12) {
		t.Errorf("Envelope() = %v, want [5 2]", env)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	// Quantizing twice must equal quantizing once.
	s := make(Samples, 257)
	for i := range s {
		s[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*1.3)) * 0.9
	}
	once := Quantize(s.Clone(), ADCBits, 1.0)
	twice := Quantize(once.Clone(), ADCBits, 1.0)
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("sample %d changed on second quantization: %v vs %v", i, once[i], twice[i])
		}
	}
}

func TestQuantizeErrorBound(t *testing.T) {
	// Max quantization error for in-range samples is half a step.
	s := make(Samples, 1000)
	for i := range s {
		s[i] = complex(math.Sin(float64(i)*0.1)*0.8, math.Cos(float64(i)*0.23)*0.8)
	}
	orig := s.Clone()
	Quantize(s, ADCBits, 1.0)
	step := 1.0 / 4096
	for i := range s {
		if math.Abs(real(s[i])-real(orig[i])) > step/2+1e-15 {
			t.Fatalf("sample %d I error exceeds half step", i)
		}
		if math.Abs(imag(s[i])-imag(orig[i])) > step/2+1e-15 {
			t.Fatalf("sample %d Q error exceeds half step", i)
		}
	}
}

func TestQuantizeClipping(t *testing.T) {
	s := Samples{complex(2.0, -2.0)}
	Quantize(s, ADCBits, 1.0)
	if real(s[0]) > 1.0 || imag(s[0]) < -1.0 {
		t.Errorf("clipping failed: %v", s[0])
	}
}

func TestQuantizeSNR(t *testing.T) {
	// 13-bit quantization of a full-scale tone should give SNR near
	// 6.02*13 + 1.76 ~= 80 dB. Allow generous margin.
	n := 4096
	s := make(Samples, n)
	for i := range s {
		ph := 2 * math.Pi * 371 * float64(i) / float64(n)
		s[i] = cmplx.Exp(complex(0, ph)) * 0.9
	}
	q := Quantize(s.Clone(), ADCBits, 1.0)
	var errPow float64
	for i := range s {
		d := q[i] - s[i]
		errPow += real(d)*real(d) + imag(d)*imag(d)
	}
	errPow /= float64(n)
	snr := DB(s.Power() / errPow)
	if snr < 70 {
		t.Errorf("13-bit quantization SNR = %.1f dB, want > 70 dB", snr)
	}
}

func TestQuantizeCodeRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		v = math.Mod(v, 1.0) // in range
		code := QuantizeCode(v, ADCBits, 1.0)
		if code < -4096 || code > 4095 {
			return false
		}
		back := CodeToValue(code, ADCBits, 1.0)
		return math.Abs(back-v) <= 1.0/4096
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizeCodeClips(t *testing.T) {
	if got := QuantizeCode(10, ADCBits, 1.0); got != 4095 {
		t.Errorf("positive clip = %d, want 4095", got)
	}
	if got := QuantizeCode(-10, ADCBits, 1.0); got != -4096 {
		t.Errorf("negative clip = %d, want -4096", got)
	}
}
