package iq

import (
	"encoding/binary"
	"fmt"
)

// Int16 I/Q serialization for golden-vector captures: each sample is one
// little-endian int16 I code followed by one int16 Q code, quantized
// through the same mid-tread converter model as the radio datapath
// (QuantizeCode). The format is deliberately bit-exact and
// platform-independent, so committed captures pin the modulators — any
// DSP change that bends a waveform shows up as a byte diff.

// EncodeInt16 serializes samples as little-endian int16 I/Q code pairs at
// the given converter resolution and full scale.
func EncodeInt16(s Samples, bits int, fullScale float64) []byte {
	out := make([]byte, 0, 4*len(s))
	for _, x := range s {
		out = binary.LittleEndian.AppendUint16(out, uint16(int16(QuantizeCode(real(x), bits, fullScale))))
		out = binary.LittleEndian.AppendUint16(out, uint16(int16(QuantizeCode(imag(x), bits, fullScale))))
	}
	return out
}

// DecodeInt16 inverts EncodeInt16.
func DecodeInt16(data []byte, bits int, fullScale float64) (Samples, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("iq: capture of %d bytes is not int16 I/Q pairs", len(data))
	}
	out := make(Samples, len(data)/4)
	for i := range out {
		re := int16(binary.LittleEndian.Uint16(data[4*i:]))
		im := int16(binary.LittleEndian.Uint16(data[4*i+2:]))
		out[i] = complex(CodeToValue(int32(re), bits, fullScale), CodeToValue(int32(im), bits, fullScale))
	}
	return out, nil
}
