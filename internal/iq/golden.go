package iq

import (
	"encoding/binary"
	"fmt"
)

// Int16 I/Q serialization for golden-vector captures: each sample is one
// little-endian int16 I code followed by one int16 Q code, quantized
// through the same mid-tread converter model as the radio datapath
// (QuantizeCode). The format is deliberately bit-exact and
// platform-independent, so committed captures pin the modulators — any
// DSP change that bends a waveform shows up as a byte diff.

// EncodeInt16 serializes samples as little-endian int16 I/Q code pairs at
// the given converter resolution and full scale.
func EncodeInt16(s Samples, bits int, fullScale float64) []byte {
	out := make([]byte, 0, 4*len(s))
	for _, x := range s {
		out = binary.LittleEndian.AppendUint16(out, uint16(int16(QuantizeCode(real(x), bits, fullScale))))
		out = binary.LittleEndian.AppendUint16(out, uint16(int16(QuantizeCode(imag(x), bits, fullScale))))
	}
	return out
}

// DecodeInt16 inverts EncodeInt16.
func DecodeInt16(data []byte, bits int, fullScale float64) (Samples, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("iq: capture of %d bytes is not int16 I/Q pairs", len(data))
	}
	out := make(Samples, len(data)/4)
	DecodeInt16Into(out, data, bits, fullScale)
	return out, nil
}

// DecodeInt16Into decodes data into dst, whose length must be exactly
// len(data)/4 with data a whole number of int16 I/Q pairs (it panics
// otherwise — length mismatches on the replay hot path are caller bugs,
// not data errors, which DecodeInt16 screens first). It performs no
// allocation, so a replay source can stream packets through one scratch
// buffer.
func DecodeInt16Into(dst Samples, data []byte, bits int, fullScale float64) {
	if len(data)%4 != 0 || len(dst) != len(data)/4 {
		panic(fmt.Sprintf("iq: decode of %d bytes into %d samples", len(data), len(dst)))
	}
	for i := range dst {
		re := int16(binary.LittleEndian.Uint16(data[4*i:]))
		im := int16(binary.LittleEndian.Uint16(data[4*i+2:]))
		dst[i] = complex(CodeToValue(int32(re), bits, fullScale), CodeToValue(int32(im), bits, fullScale))
	}
}
