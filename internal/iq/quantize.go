package iq

import "math"

// ADCBits is the resolution of the AT86RF215 I/Q interface: 13 bits per
// component (one sign bit plus 12 magnitude bits), as carried in the LVDS
// I/Q word format of the radio.
const ADCBits = 13

// Quantize rounds each I and Q component to a signed mid-tread quantizer with
// the given number of bits, clipping at fullScale. It operates in place and
// returns s. With bits=13 this models the AT86RF215 converter datapath.
func Quantize(s Samples, bits int, fullScale float64) Samples {
	if bits <= 1 || fullScale <= 0 {
		return s
	}
	levels := float64(int64(1) << (bits - 1)) // e.g. 4096 for 13 bits
	step := fullScale / levels
	for i, x := range s {
		s[i] = complex(quantizeReal(real(x), step, fullScale), quantizeReal(imag(x), step, fullScale))
	}
	return s
}

func quantizeReal(v, step, fullScale float64) float64 {
	if v > fullScale-step {
		v = fullScale - step
	} else if v < -fullScale {
		v = -fullScale
	}
	return math.Round(v/step) * step
}

// QuantizeCode converts a component value to its signed integer code for the
// given bit width, clipping to the representable range. It is the integer
// form used when framing samples into LVDS I/Q words.
func QuantizeCode(v float64, bits int, fullScale float64) int32 {
	levels := float64(int64(1) << (bits - 1))
	code := math.Round(v / fullScale * levels)
	maxCode := levels - 1
	if code > maxCode {
		code = maxCode
	} else if code < -levels {
		code = -levels
	}
	return int32(code)
}

// CodeToValue converts a signed integer code back to a component value.
func CodeToValue(code int32, bits int, fullScale float64) float64 {
	levels := float64(int64(1) << (bits - 1))
	return float64(code) / levels * fullScale
}
