// Package backscatter implements the low-power backscatter building blocks
// §7 of the TinySDR paper proposes: the platform's single-tone generator
// serves as the exciter, and its I/Q receiver decodes tag reflections —
// replacing the custom readers that ambient-backscatter systems otherwise
// require.
//
// The model follows the classic subcarrier architecture: the exciter emits
// a continuous tone; the tag switches its antenna impedance at a subcarrier
// frequency, amplitude-modulating the reflection with its bits (OOK over
// the subcarrier); the reader sees the strong exciter tone at DC plus the
// tag's sidebands at ±subcarrier, isolates a sideband by mixing and
// low-pass filtering, and slices bits with an integrate-and-dump detector.
package backscatter

import (
	"fmt"
	"math"

	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Config describes one backscatter link.
type Config struct {
	// SampleRate is the reader's I/Q rate (the platform's 4 MHz).
	SampleRate float64
	// SubcarrierHz is the tag's switching frequency; it offsets the tag
	// signal away from the exciter's DC self-interference.
	SubcarrierHz float64
	// BitRate is the tag data rate; SubcarrierHz must be an integer
	// multiple so each bit holds whole subcarrier cycles.
	BitRate float64
}

// Validate checks the configuration's internal consistency.
func (c Config) Validate() error {
	if c.SampleRate <= 0 || c.SubcarrierHz <= 0 || c.BitRate <= 0 {
		return fmt.Errorf("backscatter: non-positive parameter in %+v", c)
	}
	if c.SubcarrierHz >= c.SampleRate/2 {
		return fmt.Errorf("backscatter: subcarrier %v beyond Nyquist of %v", c.SubcarrierHz, c.SampleRate)
	}
	if c.SubcarrierHz < 4*c.BitRate {
		return fmt.Errorf("backscatter: subcarrier %v too slow for bit rate %v", c.SubcarrierHz, c.BitRate)
	}
	if spb := c.SampleRate / c.BitRate; spb != math.Trunc(spb) {
		return fmt.Errorf("backscatter: samples per bit %v not integral", spb)
	}
	// Whole subcarrier cycles per bit make the per-bit correlation
	// exactly orthogonal to the exciter's DC self-interference.
	if cyc := c.SubcarrierHz / c.BitRate; cyc != math.Trunc(cyc) {
		return fmt.Errorf("backscatter: %v subcarrier cycles per bit not integral", cyc)
	}
	return nil
}

// SamplesPerBit returns the reader samples spanning one tag bit.
func (c Config) SamplesPerBit() int { return int(c.SampleRate / c.BitRate) }

// DefaultConfig is a 100 kHz subcarrier, 10 kbps link at the platform's
// 4 MHz interface.
func DefaultConfig() Config {
	return Config{SampleRate: 4e6, SubcarrierHz: 100e3, BitRate: 10e3}
}

// Tag models a backscatter endpoint: it reflects the exciter carrier with
// the given reflection magnitude, switching at the subcarrier during '1'
// bits (OOK).
type Tag struct {
	Config Config
	// Reflection is the amplitude ratio of the reflected signal at the
	// reader relative to unit carrier (path loss to tag and back plus
	// antenna efficiency). Typical values are far below one.
	Reflection float64
}

// Backscatter returns the tag's contribution at the reader for a unit
// carrier: a square-wave subcarrier during '1' bits, silence during '0's.
func (t *Tag) Backscatter(bits []int) (iq.Samples, error) {
	if err := t.Config.Validate(); err != nil {
		return nil, err
	}
	if t.Reflection <= 0 || t.Reflection > 1 {
		return nil, fmt.Errorf("backscatter: reflection %v outside (0, 1]", t.Reflection)
	}
	spb := t.Config.SamplesPerBit()
	out := make(iq.Samples, len(bits)*spb)
	for i, b := range bits {
		if b == 0 {
			continue
		}
		for k := 0; k < spb; k++ {
			n := i*spb + k
			// Square-wave impedance switching at the subcarrier.
			phase := math.Mod(t.Config.SubcarrierHz*float64(n)/t.Config.SampleRate, 1)
			v := t.Reflection
			if phase >= 0.5 {
				v = -t.Reflection
			}
			out[n] = complex(v, 0)
		}
	}
	return out, nil
}

// Reader decodes tag bits from the I/Q stream, which contains the exciter's
// self-interference at DC plus the tag sidebands.
type Reader struct {
	Config Config
}

// NewReader returns a reader for the configuration.
func NewReader(c Config) (*Reader, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &Reader{Config: c}, nil
}

// Demodulate recovers nbits bits starting at the buffer's beginning. The
// detector correlates each bit window against the subcarrier (one DFT bin
// per bit). Because every bit spans an integer number of subcarrier
// cycles, the correlation is exactly orthogonal to the exciter's DC leak,
// however strong — the property that lets a tinySDR read tags without a
// dedicated self-interference canceller.
func (r *Reader) Demodulate(rx iq.Samples, nbits int) ([]int, error) {
	spb := r.Config.SamplesPerBit()
	if len(rx) < nbits*spb {
		return nil, fmt.Errorf("backscatter: %d samples for %d bits", len(rx), nbits)
	}
	fNorm := r.Config.SubcarrierHz / r.Config.SampleRate
	energies := make([]float64, nbits)
	for i := 0; i < nbits; i++ {
		var acc complex128
		for k := 0; k < spb; k++ {
			n := i*spb + k
			ang := -2 * math.Pi * fNorm * float64(n)
			acc += rx[n] * complex(math.Cos(ang), math.Sin(ang))
		}
		energies[i] = real(acc)*real(acc) + imag(acc)*imag(acc)
	}
	// Threshold midway between the low and high clusters.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range energies {
		lo = math.Min(lo, e)
		hi = math.Max(hi, e)
	}
	thr := (lo + hi) / 2
	bits := make([]int, nbits)
	for i, e := range energies {
		if e > thr {
			bits[i] = 1
		}
	}
	return bits, nil
}

// Excite produces the reader's transmit tone at unit amplitude — the
// single-tone generator the platform already has (Fig. 8).
func Excite(c Config, samples int) iq.Samples {
	return dsp.NewNCO(0).Generate(samples)
}
