package backscatter

import (
	"math/rand"
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

func randomBits(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	bits := make([]int, n)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	// Guarantee both symbols appear so the threshold is well defined.
	bits[0], bits[1] = 0, 1
	return bits
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SampleRate: 0, SubcarrierHz: 1e5, BitRate: 1e4},
		{SampleRate: 4e6, SubcarrierHz: 3e6, BitRate: 1e4},  // beyond Nyquist
		{SampleRate: 4e6, SubcarrierHz: 2e4, BitRate: 1e4},  // subcarrier too slow
		{SampleRate: 4e6, SubcarrierHz: 1e5, BitRate: 3000}, // non-integral spb
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestTagValidation(t *testing.T) {
	tag := &Tag{Config: DefaultConfig(), Reflection: 0}
	if _, err := tag.Backscatter([]int{1}); err == nil {
		t.Error("zero reflection accepted")
	}
	tag.Reflection = 2
	if _, err := tag.Backscatter([]int{1}); err == nil {
		t.Error("gain > 1 accepted")
	}
}

// link assembles reader RX: exciter leak + tag reflection + noise.
func link(t *testing.T, bits []int, reflection, leakAmp float64, floorDBm float64, seed int64) iq.Samples {
	t.Helper()
	cfg := DefaultConfig()
	tag := &Tag{Config: cfg, Reflection: reflection}
	reflected, err := tag.Backscatter(bits)
	if err != nil {
		t.Fatal(err)
	}
	rx := Excite(cfg, len(reflected)).Scale(leakAmp)
	rx.Add(reflected)
	if floorDBm > -300 {
		rx.Add(channel.NewAWGN(seed, floorDBm).Noise(len(rx)))
	}
	return rx
}

func TestLoopbackCleanChannel(t *testing.T) {
	bits := randomBits(64, 1)
	rx := link(t, bits, 0.01, 1.0, -301, 0) // 40 dB carrier leak over tag, no noise
	r, err := NewReader(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Demodulate(rx, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d wrong (clean channel)", i)
		}
	}
}

func TestLoopbackStrongSelfInterference(t *testing.T) {
	// 60 dB carrier-to-tag ratio: the subcarrier offset must still
	// separate the tag from the exciter leak.
	bits := randomBits(48, 2)
	rx := link(t, bits, 0.001, 1.0, -301, 0)
	r, _ := NewReader(DefaultConfig())
	got, err := r.Demodulate(rx, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("%d/%d errors at 60 dB self-interference", errs, len(bits))
	}
}

func TestLoopbackWithNoise(t *testing.T) {
	// Tag signal ~-40 dBm equivalent, noise floor -90: comfortable SNR.
	bits := randomBits(64, 3)
	rx := link(t, bits, 0.01, 1.0, -90, 7)
	r, _ := NewReader(DefaultConfig())
	got, err := r.Demodulate(rx, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs > 1 {
		t.Errorf("%d/%d errors at high SNR", errs, len(bits))
	}
}

func TestWeakTagFails(t *testing.T) {
	// A tag buried in noise must produce errors — the link has limits.
	bits := randomBits(64, 4)
	rx := link(t, bits, 1e-5, 1.0, -60, 9)
	r, _ := NewReader(DefaultConfig())
	got, err := r.Demodulate(rx, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got[i] != bits[i] {
			errs++
		}
	}
	if errs < 8 {
		t.Errorf("only %d errors with tag 50 dB under the noise; model too optimistic", errs)
	}
}

func TestDemodulateShortBuffer(t *testing.T) {
	r, _ := NewReader(DefaultConfig())
	if _, err := r.Demodulate(make(iq.Samples, 100), 64); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestNewReaderRejectsBadConfig(t *testing.T) {
	if _, err := NewReader(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}
