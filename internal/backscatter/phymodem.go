package backscatter

import (
	"errors"
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/iq"
)

// Modem adapts the backscatter link to the protocol-agnostic PHY contract
// of internal/phy (satisfied structurally). Its waveform is what the
// READER receives on air: the exciter's self-interference leak at DC plus
// the tag's subcarrier reflection carrying the payload bits — the
// composite a co-located receiver also sees, which is why the registry's
// canonical backscatter interference is exciter-dominated CW.
type Modem struct {
	// Config is the subcarrier link configuration.
	Config Config
	// ExciterLeak is the amplitude of the exciter tone at the reader
	// relative to unit carrier (imperfect isolation; the per-bit
	// correlation is exactly orthogonal to it).
	ExciterLeak float64
	// Reflection is the tag's reflected amplitude ratio at the reader.
	Reflection float64

	reader  *Reader
	profile channel.RadioProfile
	// tag is the reflection model ModulateInto drives; refreshed by value
	// from the public fields on every call so the hot path never
	// allocates one.
	tag Tag
}

// Default modem constants: a strong exciter leak 20 dB above carrier-half
// and a -26 dB tag reflection, the regime the §7 reader proposal targets.
const (
	DefaultExciterLeak = 0.5
	DefaultReflection  = 0.05
)

// backscatterDetectionSNRdB is the per-bit correlation SNR needed for
// reliable slicing, over the bit-rate noise bandwidth.
const backscatterDetectionSNRdB = 10

// errEmptyPayload is a sentinel so the ModulateInto hot path rejects empty
// payloads without formatting an error.
var errEmptyPayload = errors.New("backscatter: empty payload")

// NewModem returns a backscatter modem for the configuration, calibrated
// against the given receive chain.
func NewModem(c Config, profile channel.RadioProfile) (*Modem, error) {
	reader, err := NewReader(c)
	if err != nil {
		return nil, err
	}
	return &Modem{
		Config:      c,
		ExciterLeak: DefaultExciterLeak,
		Reflection:  DefaultReflection,
		reader:      reader,
		profile:     profile,
	}, nil
}

// Name implements phy.Modem.
func (m *Modem) Name() string { return "backscatter" }

// SampleRate implements phy.Modem.
func (m *Modem) SampleRate() float64 { return m.Config.SampleRate }

// Airtime implements phy.Modem: n bytes of tag bits at the tag bit rate.
func (m *Modem) Airtime(payloadBytes int) time.Duration {
	return time.Duration(float64(payloadBytes*8) / m.Config.BitRate * float64(time.Second))
}

// Radio implements phy.Modem.
func (m *Modem) Radio() channel.RadioProfile { return m.profile }

// sidebandShareDB returns how far the tag sideband sits below the composite
// waveform's mean power: the composite is leak power plus the subcarrier
// sideband (reflection amplitude squared at 50% '1'-bit duty).
func (m *Modem) sidebandShareDB() float64 {
	sideband := m.Reflection * m.Reflection / 2
	total := m.ExciterLeak*m.ExciterLeak + sideband
	return iq.DB(total / sideband)
}

// SensitivityDBm implements phy.Modem: the minimum composite received
// power at which the tag sideband still clears the per-bit correlation SNR
// — the profile's floor over the bit-rate bandwidth, plus the detection
// SNR, plus the sideband's share below the composite.
func (m *Modem) SensitivityDBm() float64 {
	return m.profile.NoiseFloorDBm(m.Config.BitRate) + backscatterDetectionSNRdB + m.sidebandShareDB()
}

// NoiseFloorDBm implements phy.Modem: the profile's floor integrated over
// the reader's full sampled bandwidth.
func (m *Modem) NoiseFloorDBm() float64 {
	return m.profile.NoiseFloorDBm(m.Config.SampleRate)
}

// ModulateInto implements phy.Modem: the reader-side composite for a
// payload, appended to dst[:0] (reusing its capacity for the final
// waveform; the tag reflection itself is synthesized fresh per call, which
// sweeps amortize through the Link pipeline's waveform cache).
func (m *Modem) ModulateInto(dst iq.Samples, payload []byte) (iq.Samples, error) {
	if len(payload) == 0 {
		return nil, errEmptyPayload
	}
	m.tag = Tag{Config: m.Config, Reflection: m.Reflection}
	reflected, err := m.tag.Backscatter(bitsFromBytes(payload))
	if err != nil {
		return nil, err
	}
	if cap(dst) < len(reflected) {
		//lint:allocok amortized growth; the Link waveform cache reuses dst across a sweep
		dst = make(iq.Samples, len(reflected))
	}
	out := dst[:len(reflected)]
	leak := complex(m.ExciterLeak, 0)
	for i, x := range reflected {
		out[i] = leak + x
	}
	return out, nil
}

// DemodulateFrom implements phy.Modem: it slices every whole byte of tag
// bits in sig and appends them to dst[:0]. The frame length is implicit in
// the record length, like an implicit-header LoRa receive.
func (m *Modem) DemodulateFrom(dst []byte, sig iq.Samples) ([]byte, error) {
	nbits := len(sig) / m.Config.SamplesPerBit()
	nbits -= nbits % 8
	if nbits == 0 {
		//lint:allocok error guard formats only when the receive already failed
		return nil, fmt.Errorf("backscatter: %d samples hold no whole payload byte", len(sig))
	}
	bits, err := m.reader.Demodulate(sig, nbits)
	if err != nil {
		return nil, err
	}
	return appendBytesFromBits(dst[:0], bits), nil
}

// bitsFromBytes expands payload bytes MSB-first into tag bits.
func bitsFromBytes(payload []byte) []int {
	bits := make([]int, 0, len(payload)*8)
	for _, b := range payload {
		for i := 7; i >= 0; i-- {
			bits = append(bits, int(b>>i)&1)
		}
	}
	return bits
}

// appendBytesFromBits packs MSB-first bits back into bytes.
func appendBytesFromBits(dst []byte, bits []int) []byte {
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for k := 0; k < 8; k++ {
			b = b<<1 | byte(bits[i+k]&1)
		}
		dst = append(dst, b)
	}
	return dst
}
