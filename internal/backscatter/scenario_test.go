package backscatter

import (
	"testing"

	"github.com/uwsdr/tinysdr/internal/channel"
)

// TestReaderUnderComposedScenario wires the backscatter receive path to
// the composable scenario engine: the tag reflection (under the exciter's
// DC leak) passes through flat Rician fading, a small oscillator offset
// and receiver noise, and the reader must still slice the bits. The
// subcarrier correlation tolerates a common complex fading gain — it
// scales every bit energy equally — so a working link at 30 dB SNR must
// survive almost every fading draw.
func TestReaderUnderComposedScenario(t *testing.T) {
	cfg := DefaultConfig()
	bits := randomBits(48, 5)
	tag := &Tag{Config: cfg, Reflection: 0.05}
	reflected, err := tag.Backscatter(bits)
	if err != nil {
		t.Fatal(err)
	}
	clean := Excite(cfg, len(reflected)).Scale(0.5) // exciter self-interference
	clean.Add(reflected)

	// Fading + a 200 Hz oscillator offset (tiny against the 100 kHz
	// subcarrier) + noise well below the sideband power.
	sc := channel.NewScenario(
		channel.NewFlatFading(8),
		channel.NewCFO(200, 0, 0, cfg.SampleRate),
		channel.NewNoise(-60),
	)
	reader, err := NewReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	const trials = 10
	for k := 0; k < trials; k++ {
		sc.Reset(1, k)
		got, err := reader.Demodulate(sc.Apply(clean), len(bits))
		if err != nil {
			t.Fatal(err)
		}
		errs := 0
		for i := range bits {
			if got[i] != bits[i] {
				errs++
			}
		}
		if errs == 0 {
			good++
		}
	}
	if good < trials*7/10 {
		t.Errorf("only %d/%d trials decoded error-free under the composed scenario", good, trials)
	}
}
