package fleet

// Client tests: the retrying HTTP client must carry a campaign across a
// control-plane kill/restart — create idempotently, poll through the
// outage, and hand back a Result byte-identical to a local run.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// serveOn serves srv's API on ln until the returned stop func runs.
func serveOn(ln net.Listener, srv *Server) (stop func()) {
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		hs.Serve(ln)
	}()
	return func() {
		hs.Close()
		<-done
	}
}

// TestClientSurvivesServerRestart is the client half of the crash story:
// kill the control plane at a deterministic mid-campaign journal append,
// restart it on the same address from the same state dir, and require the
// client's create/wait/fetch sequence — started before the kill — to
// complete with a Result byte-identical to a local run.
func TestClientSurvivesServerRestart(t *testing.T) {
	golden, err := Run(crashSpec)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Kill after the first shard-done record: mid-campaign, resumable.
	s1.CrashAfterAppends(3)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	stop1 := serveOn(ln, s1)

	cl := NewClient("http://"+addr, 1)
	// Shrink the retry/poll pacing so the outage window costs test time in
	// milliseconds, not the production defaults' seconds.
	cl.backoffBase, cl.backoffCap, cl.poll = time.Millisecond, 20*time.Millisecond, 5*time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Create(ctx, "restart-soak", crashSpec); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Wait for the armed crash, then restart on the same address while the
	// client is mid-WaitDone.
	waited := make(chan error, 1)
	go func() {
		_, err := cl.WaitDone(ctx, "restart-soak")
		waited <- err
	}()
	select {
	case <-s1.Crashed():
	case <-ctx.Done():
		t.Fatalf("crash point never fired")
	}
	stop1()

	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer s2.Drain(context.Background())
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer serveOn(ln2, s2)()

	if err := <-waited; err != nil {
		t.Fatalf("WaitDone across restart: %v", err)
	}
	res, err := cl.Result(ctx, "restart-soak")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	got, want := resultJSON(t, res), resultJSON(t, golden)
	if !bytes.Equal(got, want) {
		t.Errorf("client result across restart differs from local run\n got: %s\nwant: %s", got, want)
	}
}

// TestClientCreateIdempotent pins the idempotency key over HTTP: a
// re-sent create with the same id+spec lands on the existing campaign,
// and a conflicting spec is a hard 409, not a retry.
func TestClientCreateIdempotent(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, 1)
	cl.backoffBase, cl.backoffCap, cl.poll = time.Millisecond, 20*time.Millisecond, 5*time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c1, err := cl.Create(ctx, "idem", crashSpec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	c2, err := cl.Create(ctx, "idem", crashSpec)
	if err != nil {
		t.Fatalf("re-create: %v", err)
	}
	if c1.ID != "idem" || c2.ID != "idem" {
		t.Fatalf("campaign ids %q, %q, want idem", c1.ID, c2.ID)
	}
	other := crashSpec
	other.Seed++
	if _, err := cl.Create(ctx, "idem", other); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Fatalf("conflicting create error %v, want a 409", err)
	}
	if _, err := cl.Create(ctx, "", crashSpec); err == nil {
		t.Fatalf("client accepted an empty idempotency key")
	}
}

// TestClientWaitCancelAndList smoke-tests the remaining verbs end to end.
func TestClientWaitCancelAndList(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL, 1)
	cl.backoffBase, cl.backoffCap, cl.poll = time.Millisecond, 20*time.Millisecond, 5*time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Create(ctx, "a", crashSpec); err != nil {
		t.Fatalf("create: %v", err)
	}
	// Queue a big second campaign and cancel it while pending.
	big := Spec{Seed: 3, Nodes: 2000, ShardSize: 20}
	if _, err := cl.Create(ctx, "b", big); err != nil {
		t.Fatalf("create b: %v", err)
	}
	cb, err := cl.Cancel(ctx, "b")
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if cb.Status != StatusCanceled {
		t.Fatalf("canceled campaign status %s", cb.Status)
	}
	ca, err := cl.WaitDone(ctx, "a")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if ca.Status != StatusDone {
		t.Fatalf("campaign a ended %s (%s)", ca.Status, ca.Error)
	}
	list, err := cl.List(ctx)
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list) != 2 {
		t.Fatalf("listed %d campaigns, want 2", len(list))
	}
	if _, err := cl.Result(ctx, "b"); err == nil {
		t.Fatalf("Result on a canceled campaign did not error")
	}
	if _, err := cl.Get(ctx, "ghost"); err == nil {
		t.Fatalf("Get on an unknown campaign did not error")
	}
}

// TestClientRetriesExhaust pins the failure mode when the server never
// comes back: a bounded number of attempts, then the last network error.
func TestClientRetriesExhaust(t *testing.T) {
	// A listener that is immediately closed: connection refused for all.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cl := NewClient("http://"+addr, 1)
	cl.attempts = 3
	cl.backoffBase, cl.backoffCap = time.Millisecond, 2*time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := cl.Get(ctx, "x"); err == nil {
		t.Fatalf("Get against a dead server did not error")
	}
	// A canceled context must cut the retry loop immediately.
	canceledCtx, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := cl.Get(canceledCtx, "x"); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled-context error %v, want context.Canceled", err)
	}
}

// TestClientRetriesOn5xx pins the status classification: 5xx retries
// until the server heals, 4xx is the caller's answer immediately.
func TestClientRetriesOn5xx(t *testing.T) {
	fails := 2
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= fails {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]string{"error": "transient"})
			return
		}
		json.NewEncoder(w).Encode(&Campaign{ID: "x", Status: StatusDone})
	}))
	defer ts.Close()
	cl := NewClient(ts.URL, 1)
	cl.backoffBase, cl.backoffCap = time.Millisecond, 2*time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c, err := cl.Get(ctx, "x")
	if err != nil {
		t.Fatalf("Get through 5xx: %v", err)
	}
	if c.ID != "x" || calls != fails+1 {
		t.Fatalf("got id=%q after %d calls, want x after %d", c.ID, calls, fails+1)
	}
}
