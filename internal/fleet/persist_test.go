package fleet

// Durability tests for the journal-backed server: crash/recovery at every
// journal-append boundary, resumable execution at the shard seam, drain
// semantics, idempotent create, and ID allocation across restarts. The
// governing invariant is TestResumeBitIdentical: however a campaign's
// execution is interrupted, the recovered Result must be byte-identical to
// an uninterrupted run of the same spec.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/journal"
)

// crashSpec is the reference campaign for crash sweeps: 2 shards, so its
// full journal is exactly 5 records (created, started, 2 shard-dones,
// done) and every prefix is a reachable crash point.
var crashSpec = Spec{Seed: 7, Nodes: 40, ShardSize: 20, Mode: ModeBroadcast}

func resultJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshaling result: %v", err)
	}
	return data
}

// waitTerminal waits for the campaign with a bounded context so a hung
// recovery fails the test instead of timing it out.
func waitTerminal(t *testing.T, s *Server, id string) *Campaign {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	return c
}

// TestResumeBitIdentical is the durability gate: kill the server after
// every possible journal append of a campaign's lifecycle, recover from
// the journal, and require the resumed campaign's Result to be
// byte-identical to an uninterrupted run. A recovered campaign must also
// only re-execute shards the journal does not already hold.
func TestResumeBitIdentical(t *testing.T) {
	golden, err := Run(crashSpec)
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	goldenJSON := resultJSON(t, golden)

	// 5 total appends; crashing after the 5th is a completed campaign.
	for crashAt := 1; crashAt <= 5; crashAt++ {
		t.Run(fmt.Sprintf("crash-after-append-%d", crashAt), func(t *testing.T) {
			dir := t.TempDir()
			s1, err := OpenServer(dir)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			s1.CrashAfterAppends(crashAt)
			c, err := s1.Create(crashSpec)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			select {
			case <-s1.Crashed():
			case <-time.After(time.Minute):
				t.Fatalf("crash point %d never fired", crashAt)
			}
			// The killed server's runner may still be unwinding; recovery
			// must not depend on it. Reopen the state dir as a new process
			// would.
			s2, err := OpenServer(dir)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			defer s2.Drain(context.Background())
			got, ok := s2.Get(c.ID)
			if !ok {
				t.Fatalf("campaign %s lost across the crash", c.ID)
			}
			if crashAt == 5 && got.Status != StatusDone {
				t.Fatalf("fully journaled campaign recovered as %s, want %s", got.Status, StatusDone)
			}
			fin := waitTerminal(t, s2, c.ID)
			if fin.Status != StatusDone {
				t.Fatalf("recovered campaign ended %s (%s), want %s", fin.Status, fin.Error, StatusDone)
			}
			if resumed := resultJSON(t, fin.Result); !bytes.Equal(resumed, goldenJSON) {
				t.Errorf("resumed result differs from uninterrupted run\n got: %s\nwant: %s", resumed, goldenJSON)
			}
		})
	}
}

// TestRecoverResumesOnlyMissingShards pins the resume seam: a campaign
// recovered with journaled shards must keep those exact results (the
// journal is the authority, not a re-execution).
func TestRecoverResumesOnlyMissingShards(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Kill after the first shard-done record (created, started, shard).
	s1.CrashAfterAppends(3)
	c, err := s1.Create(crashSpec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	<-s1.Crashed()

	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer s2.Drain(context.Background())
	fin := waitTerminal(t, s2, c.ID)
	if fin.Status != StatusDone {
		t.Fatalf("recovered campaign ended %s, want done", fin.Status)
	}
	// Drain compacts; the compacted journal of a done campaign is exactly
	// created + done — the shard-done records were consumed by the merge.
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	j, recs, err := journal.Open(filepath.Join(dir, JournalName))
	if err != nil {
		t.Fatalf("reading compacted journal: %v", err)
	}
	j.Close()
	if len(recs) != 2 || recs[0].Type != recCreated || recs[1].Type != recDone {
		types := make([]uint8, len(recs))
		for i, r := range recs {
			types[i] = r.Type
		}
		t.Fatalf("compacted journal records %v, want [created done]", types)
	}
}

// TestIDAllocationSurvivesRestart pins the high-water fix: a recovered
// server must allocate past every journaled ID, including client-supplied
// IDs that squat in the server's own c<N> namespace.
func TestIDAllocationSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c1, err := s1.Create(crashSpec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if c1.ID != "c1" {
		t.Fatalf("first ID %q, want c1", c1.ID)
	}
	// A client-supplied ID deep in the server namespace must raise the
	// counter too.
	if _, _, err := s1.CreateID("c41", crashSpec); err != nil {
		t.Fatalf("client-ID create: %v", err)
	}
	waitTerminal(t, s1, "c41")
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Drain(context.Background())
	c3, err := s2.Create(crashSpec)
	if err != nil {
		t.Fatalf("create after restart: %v", err)
	}
	if c3.ID != "c42" {
		t.Fatalf("post-restart ID %q, want c42 (past the journaled high water)", c3.ID)
	}
	if _, ok := s2.Get("c1"); !ok {
		t.Fatalf("campaign c1 lost across restart")
	}
}

func TestIDHighWater(t *testing.T) {
	cases := []struct {
		id   string
		want int
	}{
		{"c1", 1}, {"c41", 41}, {"c0", 0}, {"c007", 0}, {"c-3", 0},
		{"x9", 0}, {"c", 0}, {"c9z", 0}, {"soak", 0},
	}
	for _, tc := range cases {
		if got := idHighWater(tc.id); got != tc.want {
			t.Errorf("idHighWater(%q) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

// TestIdempotentCreate pins the client-supplied-ID contract: same ID and
// spec returns the existing campaign, same ID with a different spec is
// ErrSpecConflict, and malformed IDs are rejected outright.
func TestIdempotentCreate(t *testing.T) {
	s := NewServer()
	c1, created, err := s.CreateID("soak", crashSpec)
	if err != nil || !created {
		t.Fatalf("first create: created=%v err=%v", created, err)
	}
	c2, created, err := s.CreateID("soak", crashSpec)
	if err != nil {
		t.Fatalf("idempotent re-create: %v", err)
	}
	if created || c2.ID != c1.ID {
		t.Fatalf("re-create returned created=%v id=%q, want existing %q", created, c2.ID, c1.ID)
	}
	other := crashSpec
	other.Seed++
	if _, _, err := s.CreateID("soak", other); !errors.Is(err, ErrSpecConflict) {
		t.Fatalf("conflicting spec error %v, want ErrSpecConflict", err)
	}
	for _, bad := range []string{"has space", "sla/sh", string(make([]byte, 65))} {
		if _, _, err := s.CreateID(bad, crashSpec); err == nil {
			t.Errorf("CreateID(%q) accepted a malformed id", bad)
		}
	}
	waitTerminal(t, s, "soak")
	// Idempotent create against a finished campaign still returns it.
	c3, created, err := s.CreateID("soak", crashSpec)
	if err != nil || created {
		t.Fatalf("re-create after done: created=%v err=%v", created, err)
	}
	if c3.Status != StatusDone {
		t.Fatalf("re-create after done returned status %s", c3.Status)
	}
}

// TestDrainStopsAdmitting pins drain's admission contract and that a
// drained server's journal reopens cleanly.
func TestDrainStopsAdmitting(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := s.Create(crashSpec); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := s.Create(crashSpec); !errors.Is(err, ErrDraining) {
		t.Fatalf("create on drained server: %v, want ErrDraining", err)
	}
	// Idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer s2.Drain(context.Background())
	fin := waitTerminal(t, s2, "c1")
	if fin.Status != StatusDone {
		t.Fatalf("campaign after drain+reopen: %s, want done", fin.Status)
	}
}

// TestDrainCutsAtShardBoundary drains mid-campaign and requires the
// campaign to come back resumable and finish byte-identical after reopen.
// The drain lands at a nondeterministic shard, which is exactly the
// point: whatever the cut, the journal carries the campaign across.
func TestDrainCutsAtShardBoundary(t *testing.T) {
	golden, err := Run(Spec{Seed: 11, Nodes: 200, ShardSize: 20, Mode: ModeBroadcast})
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c, err := s1.Create(golden.Spec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Let at least one shard land, then drain.
	for {
		got, _ := s1.Get(c.ID)
		if got.ShardsDone > 0 || got.Status == StatusDone {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Drain(context.Background())
	fin := waitTerminal(t, s2, c.ID)
	if fin.Status != StatusDone {
		t.Fatalf("resumed campaign ended %s, want done", fin.Status)
	}
	if got, want := resultJSON(t, fin.Result), resultJSON(t, golden); !bytes.Equal(got, want) {
		t.Errorf("drained-and-resumed result differs from uninterrupted run")
	}
}

// TestCancelJournaledTerminal pins that a user cancel is a journaled
// terminal state: it survives restart as canceled, never re-runs.
func TestCancelJournaledTerminal(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Queue two campaigns; the second waits on the run slot, so canceling
	// it exercises the canceled-while-pending path deterministically.
	a, err := s1.Create(crashSpec)
	if err != nil {
		t.Fatalf("create a: %v", err)
	}
	b, err := s1.Create(Spec{Seed: 13, Nodes: 2000, ShardSize: 20})
	if err != nil {
		t.Fatalf("create b: %v", err)
	}
	canceled, err := s1.Cancel(b.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if canceled.Status != StatusCanceled {
		t.Fatalf("canceled campaign status %s", canceled.Status)
	}
	waitTerminal(t, s1, a.ID)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Drain(context.Background())
	got, ok := s2.Get(b.ID)
	if !ok || got.Status != StatusCanceled {
		t.Fatalf("canceled campaign recovered as %v (found=%v), want canceled", got, ok)
	}
}

// TestDrainCreateCancelStress hammers a journal-backed server with
// concurrent creates, cancels, and a drain, then requires (a) no campaign
// is lost, (b) the journal replays cleanly, and (c) every admitted
// campaign reaches a terminal state after reopen. Run under -race this is
// the control plane's interleaving gate.
func TestDrainCreateCancelStress(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const creators = 8
	var mu sync.Mutex
	var admitted []string
	var wg sync.WaitGroup
	for g := 0; g < creators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				spec := crashSpec
				spec.Seed = int64(g*100 + i)
				id := fmt.Sprintf("stress-%d-%d", g, i)
				c, _, err := s1.CreateID(id, spec)
				if errors.Is(err, ErrDraining) {
					return // drain won the race; stop admitting
				}
				if err != nil {
					t.Errorf("create %s: %v", id, err)
					return
				}
				mu.Lock()
				admitted = append(admitted, c.ID)
				mu.Unlock()
				if i%3 == 1 {
					if _, err := s1.Cancel(c.ID); err != nil {
						t.Errorf("cancel %s: %v", c.ID, err)
					}
				}
			}
		}(g)
	}
	// Drain concurrently with the create/cancel storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		if err := s1.Drain(context.Background()); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	wg.Wait()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("final drain: %v", err)
	}

	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("reopen after stress: %v", err)
	}
	defer s2.Drain(context.Background())
	for _, id := range admitted {
		fin := waitTerminal(t, s2, id)
		switch fin.Status {
		case StatusDone, StatusCanceled:
		default:
			t.Errorf("campaign %s ended %s (%s), want done or canceled", id, fin.Status, fin.Error)
		}
	}
}

// TestOpenServerRejectsCorruptJournal pins strict replay: a CRC-valid
// journal whose records are semantically impossible (shard for an unknown
// campaign) must refuse to open rather than guess.
func TestOpenServerRejectsCorruptJournal(t *testing.T) {
	dir := t.TempDir()
	buf := journal.Header()
	rec, err := marshalRecord(recStarted, startedRecord{ID: "ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if buf, err = journal.AppendFrame(buf, rec); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, JournalName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenServer(dir); err == nil {
		t.Fatalf("OpenServer accepted a journal referencing an unknown campaign")
	}
}

// TestCompactionCanonical pins that compaction is a fixed point: opening
// and re-opening a state dir must leave the journal bytes unchanged once
// the state is stable.
func TestCompactionCanonical(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	c, err := s1.Create(crashSpec)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	waitTerminal(t, s1, c.ID)
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	path := filepath.Join(dir, JournalName)
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenServer(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("compaction is not canonical: journal bytes changed across a no-op open/drain cycle")
	}
}
