package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/uwsdr/tinysdr/internal/ota"
)

// chaosSpec is the canonical faulted campaign for the chaos tests.
func chaosSpec(workers int) Spec {
	return Spec{
		Seed: 13, Nodes: 60, Mode: ModeBroadcast, ImageKB: 8, Workers: workers,
		Faults: "crash=0.0005,flashfail=0.01,bitrot=0.002,desync=0.03:4,duty=0.05,apoutage=0.002:8",
		Quorum: 0.5,
	}
}

func TestChaosCampaignByteIdenticalAcrossWorkers(t *testing.T) {
	// The tentpole acceptance bar: a faulted campaign's full JSON report —
	// per-node outcomes, fault counters, failure classes, quorum verdict —
	// is byte-identical at 1 and 8 workers.
	run := func(workers int) []byte {
		res, err := Run(chaosSpec(workers))
		if err != nil {
			t.Fatal(err)
		}
		// Workers is part of the spec, not the outcome.
		res.Spec.Workers = 0
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	one := run(1)
	eight := run(8)
	if !bytes.Equal(one, eight) {
		t.Error("chaos campaign reports differ between 1 and 8 workers")
	}
}

func TestChaosCampaignClassifiesFailures(t *testing.T) {
	res, err := Run(chaosSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Failed != len(res.Nodes) {
		t.Errorf("completed %d + failed %d != %d nodes", res.Completed, res.Failed, len(res.Nodes))
	}
	sum := 0
	for class, n := range res.Failures {
		if class == "" {
			t.Error("failure recorded without a class")
		}
		sum += n
	}
	if sum != res.Failed {
		t.Errorf("taxonomy sums to %d, failed = %d", sum, res.Failed)
	}
	crashes, flashFaults := 0, 0
	for _, n := range res.Nodes {
		crashes += n.Crashes
		flashFaults += n.FlashFaults
	}
	if flashFaults == 0 {
		t.Error("no flash faults absorbed at flashfail=0.01 over a 60-node fleet")
	}
	_ = crashes // crash draws are rare by design; counted but not required
}

func TestQuorumDegradationMatrix(t *testing.T) {
	// Across rising fault intensity, a quorum campaign must degrade
	// gracefully: QuorumMet stays true while the completion fraction holds
	// above the bar, and the all-or-nothing criterion (Failed == 0) fails
	// first. Monotone completion is not required (fault draws differ per
	// intensity), but the bookkeeping must stay consistent at every point.
	base := "flashfail=0.01,desync=0.03:4,duty=0.05"
	cases := []struct {
		faults string
		quorum float64
	}{
		{"", 0.9},
		{base, 0.5},
		{"flashfail=0.02,desync=0.06:4,duty=0.1", 0.5},
		{"flashfail=0.04,desync=0.12:4,duty=0.2", 0.25},
	}
	for _, c := range cases {
		spec := Spec{
			Seed: 5, Nodes: 20, Mode: ModeBroadcast, ImageKB: 8,
			Faults: c.faults, Quorum: c.quorum, RetryBudget: 1024,
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("faults %q: %v", c.faults, err)
		}
		wantMet := res.CompletionFrac >= c.quorum
		if res.QuorumMet != wantMet {
			t.Errorf("faults %q: QuorumMet = %v at completion %.2f, quorum %.2f",
				c.faults, res.QuorumMet, res.CompletionFrac, c.quorum)
		}
		if res.Failed == 0 != (res.CompletionFrac == 1) {
			t.Errorf("faults %q: failed %d vs completion %.2f inconsistent",
				c.faults, res.Failed, res.CompletionFrac)
		}
	}

	// The degradation claim itself: at an intensity where all-or-nothing
	// aborts (failures exist), the quorum campaign still counts as met.
	res, err := Run(Spec{
		Seed: 13, Nodes: 60, Mode: ModeBroadcast, ImageKB: 8,
		Faults: "crash=0.0005,flashfail=0.01,bitrot=0.002,desync=0.03:4,duty=0.05,apoutage=0.002:8",
		Quorum: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Skip("no failures at this intensity; strengthen the spec")
	}
	if !res.QuorumMet {
		t.Errorf("quorum campaign not met at completion %.2f", res.CompletionFrac)
	}
}

func TestHealingDisabledKeepsLegacyResults(t *testing.T) {
	// The back-compat bar: with no faults and no retry budget the campaign
	// must take the historical single-pass broadcast path — byte-identical
	// results to a spec that never heard of the chaos fields.
	legacy, err := Run(smallSpec(40, ModeBroadcast, 0))
	if err != nil {
		t.Fatal(err)
	}
	withFields := smallSpec(40, ModeBroadcast, 0)
	withFields.Quorum = 0.9 // quorum alone must not switch protocols
	quorumOnly, err := Run(withFields)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(legacy.Nodes)
	b, _ := json.Marshal(quorumOnly.Nodes)
	if !bytes.Equal(a, b) {
		t.Error("a quorum-only spec changed per-node results on the legacy path")
	}
}

func TestChaosSpecValidation(t *testing.T) {
	bad := []Spec{
		{Nodes: 10, Faults: "warp=1"},
		{Nodes: 10, Faults: "crash=2"},
		{Nodes: 10, Quorum: 1.5},
		{Nodes: 10, Quorum: -0.1},
		{Nodes: 10, RetryBudget: -1},
		{Nodes: 10, Mode: ModeUnicast, Faults: "crash=0.01"},
		{Nodes: 10, Mode: ModeUnicast, RetryBudget: 9},
	}
	for _, s := range bad {
		if _, err := Run(s); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, chaosSpec(1))
	if err == nil {
		t.Fatal("canceled campaign ran to completion")
	}
	if !strings.Contains(err.Error(), "canceled") && !strings.Contains(err.Error(), ota.ErrCanceled.Error()) {
		t.Errorf("cancellation error %q", err)
	}
}

func TestUnicastFailureClassification(t *testing.T) {
	// Unicast failures (link retries exhausted) must classify as
	// unreachable in the taxonomy maps.
	res, err := Run(Spec{Seed: 2, Nodes: 40, ShardSize: 40, Mode: ModeUnicast, ImageKB: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.Err != "" && n.Class != string(ota.FailUnreachable) {
			t.Errorf("node %d class %q, want %q", n.ID, n.Class, ota.FailUnreachable)
		}
	}
}
