// Package fleet is the campaign control plane for programming
// arbitrary-size tinySDR fleets over the air — the step from the paper's
// 20-node campus (§5.3) toward a testbed service that schedules firmware
// rollouts across many deployments at once.
//
// A campaign shards the fleet into fixed-size cells, one access point per
// cell (the paper's campus is one such cell), and programs the cells
// concurrently across a deterministic worker pool. Each cell runs either
// the §3.4 sequential-unicast sessions or the §7 broadcast+repair protocol,
// with per-node retry and failure tracking. Every cell derives its geometry
// and protocol randomness from (campaign seed, shard index) alone, so a
// campaign's per-node results are bit-identical for any worker count.
package fleet

import (
	"context"
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/fault"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/par"
	"github.com/uwsdr/tinysdr/internal/testbed"
)

// Mode selects a campaign's programming protocol.
type Mode string

// Campaign protocols.
const (
	// ModeUnicast programs each cell's nodes one at a time with the §3.4
	// acknowledged sessions; a cell's time is the sum of its sessions.
	ModeUnicast Mode = "unicast"
	// ModeBroadcast programs each cell with the §7 broadcast MAC: every
	// chunk once to BroadcastAddr, then per-node unicast repair.
	ModeBroadcast Mode = "broadcast"
)

// Image kinds a campaign can distribute (the §5.3 firmware set).
const (
	ImageLoRa = "lora" // LoRa modem FPGA bitstream
	ImageBLE  = "ble"  // BLE beacon FPGA bitstream
	ImageMCU  = "mcu"  // MCU firmware
)

// DefaultImageKB is the §5.3 MCU firmware size.
const DefaultImageKB = 78

// MaxImageKB bounds a campaign's MCU image: nothing larger fits a node's
// firmware flash region.
const MaxImageKB = ota.RegionSize / 1024

// Spec describes one campaign. The zero value plus Nodes is runnable:
// defaults are a broadcast campaign shipping the 78 kB MCU image in
// campus-sized cells.
type Spec struct {
	// Name labels the campaign in listings.
	Name string `json:"name,omitempty"`
	// Seed drives all campaign randomness (geometry, channels, losses).
	Seed int64 `json:"seed"`
	// Nodes is the fleet size.
	Nodes int `json:"nodes"`
	// ShardSize is the nodes per AP cell; 0 means the paper's 20-node
	// campus. The partition is fixed by the spec, never by the pool size.
	ShardSize int `json:"shard_size,omitempty"`
	// Mode is the programming protocol; empty means ModeBroadcast.
	Mode Mode `json:"mode,omitempty"`
	// Image is the firmware kind; empty means ImageMCU.
	Image string `json:"image,omitempty"`
	// ImageKB sizes the MCU image; 0 means DefaultImageKB. FPGA images
	// are always full bitstreams.
	ImageKB int `json:"image_kb,omitempty"`
	// Workers bounds the host worker pool; 0 means all CPUs. Results are
	// bit-identical for every value.
	Workers int `json:"workers,omitempty"`

	// Faults injects deterministic faults from the internal/fault grammar
	// (e.g. "crash=0.02,flashfail=0.01,desync=0.05:4"). A non-empty spec
	// switches broadcast cells onto the self-healing campaign protocol
	// (multi-round NACK repair, backoff, retry budgets); empty keeps the
	// historical single-pass protocol byte-identical.
	Faults string `json:"faults,omitempty"`
	// Quorum is the node-completion fraction at which the campaign counts
	// as met; 0 means all-or-nothing (every node must program). With a
	// quorum below 1 a chaos campaign degrades gracefully instead of
	// aborting.
	Quorum float64 `json:"quorum,omitempty"`
	// RetryBudget caps per-node repair transmissions in the self-healing
	// protocol; 0 means the protocol default. Setting it (like Faults)
	// selects the self-healing protocol for broadcast cells.
	RetryBudget int `json:"retry_budget,omitempty"`
}

// healing reports whether broadcast cells run the self-healing protocol.
func (s Spec) healing() bool { return s.Faults != "" || s.RetryBudget != 0 }

// normalize fills defaults and validates, returning the runnable spec.
func (s Spec) normalize() (Spec, error) {
	if s.Nodes < 1 {
		return s, fmt.Errorf("fleet: campaign needs at least one node (got %d)", s.Nodes)
	}
	if s.Nodes > 65000 {
		return s, fmt.Errorf("fleet: %d nodes exceeds the 65000-node address space", s.Nodes)
	}
	if s.ShardSize == 0 {
		s.ShardSize = testbed.DefaultNodeCount
	}
	if s.ShardSize < 1 {
		return s, fmt.Errorf("fleet: shard size %d", s.ShardSize)
	}
	if s.Mode == "" {
		s.Mode = ModeBroadcast
	}
	if s.Mode != ModeUnicast && s.Mode != ModeBroadcast {
		return s, fmt.Errorf("fleet: unknown mode %q", s.Mode)
	}
	if s.Image == "" {
		s.Image = ImageMCU
	}
	if s.Image != ImageLoRa && s.Image != ImageBLE && s.Image != ImageMCU {
		return s, fmt.Errorf("fleet: unknown image %q", s.Image)
	}
	if s.ImageKB == 0 {
		s.ImageKB = DefaultImageKB
	}
	// The flash staging region bounds any shippable image; rejecting here
	// keeps an API caller from making the scheduler synthesize huge (or,
	// via overflow, negative-length) images.
	if s.ImageKB < 1 || s.ImageKB > MaxImageKB {
		return s, fmt.Errorf("fleet: image size %d kB outside [1, %d]", s.ImageKB, MaxImageKB)
	}
	if _, err := fault.Parse(s.Faults); err != nil {
		return s, err
	}
	if s.Quorum < 0 || s.Quorum > 1 {
		return s, fmt.Errorf("fleet: quorum %g outside [0, 1]", s.Quorum)
	}
	if s.RetryBudget < 0 {
		return s, fmt.Errorf("fleet: retry budget %d", s.RetryBudget)
	}
	if s.healing() && s.Mode != ModeBroadcast {
		return s, fmt.Errorf("fleet: fault injection and retry budgets need mode %q", ModeBroadcast)
	}
	return s, nil
}

// buildImage synthesizes the campaign's firmware.
func buildImage(s Spec) (img []byte, target ota.Target, design *fpga.Design) {
	switch s.Image {
	case ImageLoRa:
		design = fpga.LoRaTRXDesign(8)
		return fpga.SynthBitstream(design), ota.TargetFPGA, design
	case ImageBLE:
		design = fpga.BLEBeaconDesign()
		return fpga.SynthBitstream(design), ota.TargetFPGA, design
	default:
		return fpga.SynthMCUFirmware(s.ImageKB*1024, s.Seed), ota.TargetMCU, nil
	}
}

// NodeResult is one node's campaign outcome.
type NodeResult struct {
	// ID is the node's global 1-based index across the fleet.
	ID int `json:"id"`
	// Shard is the node's cell.
	Shard int `json:"shard"`
	// DeviceID is the node's OTA address within its cell.
	DeviceID uint16 `json:"device_id"`
	// DistanceM is the node's range from its cell's AP.
	DistanceM float64 `json:"distance_m"`
	// RSSIdBm is the downlink received power.
	RSSIdBm float64 `json:"rssi_dbm"`
	// Duration is the node's own programming time (nanoseconds in JSON).
	Duration time.Duration `json:"duration_ns"`
	// EnergyJ is the node-side energy spent on the update.
	EnergyJ float64 `json:"energy_j"`
	// Retries counts unicast retransmissions or broadcast repair
	// transmissions spent on this node.
	Retries int `json:"retries"`
	// Err is the node's failure, empty on success.
	Err string `json:"error,omitempty"`
	// Class is the failure taxonomy for Err (ota.FailureClass): crashed,
	// flash-fault, unreachable, exhausted-retries or protocol.
	Class string `json:"failure_class,omitempty"`
	// Crashes and FlashFaults count the injected faults this node
	// absorbed (chaos campaigns only).
	Crashes     int `json:"crashes,omitempty"`
	FlashFaults int `json:"flash_faults,omitempty"`
}

// Result is a completed campaign.
type Result struct {
	// Spec is the normalized campaign spec that ran.
	Spec Spec `json:"spec"`
	// Shards is the number of AP cells.
	Shards int `json:"shards"`
	// FleetTime is the campaign wall time: cells program concurrently, so
	// it is the slowest cell's time (nanoseconds in JSON).
	FleetTime time.Duration `json:"fleet_time_ns"`
	// AirBytes is the total AP-transmitted data bytes across all cells.
	AirBytes int `json:"air_bytes"`
	// DataPackets counts data transmissions (broadcast chunks, repairs,
	// and unicast data frames) across all cells.
	DataPackets int `json:"data_packets"`
	// Failed is the number of nodes that could not be programmed.
	Failed int `json:"failed"`
	// Completed is the number of fully programmed nodes; CompletionFrac
	// is Completed over the fleet size.
	Completed      int     `json:"completed"`
	CompletionFrac float64 `json:"completion_frac"`
	// QuorumMet reports whether CompletionFrac reached the spec's quorum
	// (all-or-nothing when Spec.Quorum is 0) — the campaign-level
	// success criterion under faults.
	QuorumMet bool `json:"quorum_met"`
	// Failures counts failed nodes by taxonomy class (empty when every
	// node programmed).
	Failures map[string]int `json:"failures,omitempty"`
	// Nodes holds every node's outcome in global ID order.
	Nodes []NodeResult `json:"nodes"`
}

// ShardResult is one AP cell's contribution to a campaign — the unit of
// resumable execution. Each shard is a pure function of (spec, shard
// index), so a persisted ShardResult substitutes exactly for re-running
// its cell; the fleet server journals one as each shard completes and a
// recovered campaign re-executes only the missing ones.
type ShardResult struct {
	// Shard is the cell's index in the campaign's partition.
	Shard int `json:"shard"`
	// Elapsed is the cell's own programming time (nanoseconds in JSON).
	Elapsed time.Duration `json:"elapsed_ns"`
	// AirBytes and DataPackets are the cell's AP transmission totals.
	AirBytes    int `json:"air_bytes"`
	DataPackets int `json:"data_packets"`
	// Nodes holds the cell's per-node outcomes in global ID order.
	Nodes []NodeResult `json:"nodes"`
}

// Run executes a campaign synchronously and returns the per-node results.
// The shard partition and every seed derive from the spec alone, and shards
// fan out across the par pool with positional results, so the outcome is
// bit-identical for any Workers value.
func Run(spec Spec) (*Result, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cancellation: a canceled context aborts the
// campaign between shards and between self-healing repair rounds, so a
// hung or heavily-faulted campaign cannot run away from its controller.
func RunContext(ctx context.Context, spec Spec) (*Result, error) {
	return RunResumable(ctx, spec, nil, nil)
}

// numShards is the campaign's cell count for a normalized spec.
func numShards(spec Spec) int {
	return (spec.Nodes + spec.ShardSize - 1) / spec.ShardSize
}

// RunResumable is RunContext with a durability seam: shards already in
// done are not re-executed (their persisted results substitute for the
// run), and onShard — when non-nil — observes each freshly-executed
// shard's result as it completes, before the campaign finishes. onShard is
// called from worker goroutines, possibly concurrently; the caller
// serializes. An onShard error aborts the campaign (the control plane
// treats a failed journal write as fatal rather than running ahead of its
// log).
//
// The merged Result is byte-identical to an uninterrupted run: shards are
// merged in partition order whether they came from done or from this
// execution, which is exactly the positional order of the non-resumed
// fan-out.
func RunResumable(ctx context.Context, spec Spec, done map[int]ShardResult, onShard func(ShardResult) error) (*Result, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	shards := numShards(spec)
	// Walk the partition in index order (not the map) so validation,
	// copying, and the missing-shard scan are all deterministic; a key
	// outside [0, shards) shows up as a count mismatch at the end.
	var missing []int
	all := make(map[int]ShardResult, shards)
	resumed := 0
	for s := 0; s < shards; s++ {
		sr, ok := done[s]
		if !ok {
			missing = append(missing, s)
			continue
		}
		if sr.Shard != s {
			return nil, fmt.Errorf("fleet: resumed shard %d carries index %d", s, sr.Shard)
		}
		all[s] = sr
		resumed++
	}
	if resumed != len(done) {
		return nil, fmt.Errorf("fleet: resumed shards outside the campaign's %d-shard partition", shards)
	}
	if len(missing) > 0 {
		img, target, design := buildImage(spec)
		u, err := ota.BuildUpdate(target, img)
		if err != nil {
			return nil, err
		}
		// With a single cell the pool has nothing to fan over, so the cell's
		// unicast sessions use it instead; per-node results are independent
		// of pool sizing either way (see internal/par).
		innerWorkers := 1
		if shards == 1 {
			innerWorkers = par.ResolveWorkers(spec.Workers)
		}
		outs, err := par.Do(par.ResolveWorkers(spec.Workers), len(missing), func(i int) (ShardResult, error) {
			if err := ctx.Err(); err != nil {
				return ShardResult{}, fmt.Errorf("fleet: campaign canceled: %w", err)
			}
			s := missing[i]
			size := spec.ShardSize
			if s == shards-1 {
				size = spec.Nodes - s*spec.ShardSize
			}
			sr, err := runShard(ctx, spec, u, design, s, size, innerWorkers)
			if err != nil {
				return sr, err
			}
			if onShard != nil {
				if err := onShard(sr); err != nil {
					return sr, err
				}
			}
			return sr, nil
		})
		if err != nil {
			return nil, err
		}
		for i, out := range outs {
			all[missing[i]] = out
		}
	}
	return mergeShards(spec, all), nil
}

// mergeShards folds a complete shard set into the campaign Result. Merging
// walks the partition in shard order, so the outcome does not depend on
// which shards were resumed from a journal and which just ran.
func mergeShards(spec Spec, all map[int]ShardResult) *Result {
	shards := numShards(spec)
	res := &Result{Spec: spec, Shards: shards}
	for s := 0; s < shards; s++ {
		out := all[s]
		if out.Elapsed > res.FleetTime {
			res.FleetTime = out.Elapsed
		}
		res.AirBytes += out.AirBytes
		res.DataPackets += out.DataPackets
		res.Nodes = append(res.Nodes, out.Nodes...)
	}
	for _, n := range res.Nodes {
		if n.Err != "" {
			res.Failed++
			if res.Failures == nil {
				res.Failures = map[string]int{}
			}
			res.Failures[n.Class]++
		}
	}
	res.Completed = len(res.Nodes) - res.Failed
	res.CompletionFrac = float64(res.Completed) / float64(len(res.Nodes))
	quorum := spec.Quorum
	if quorum == 0 {
		quorum = 1
	}
	res.QuorumMet = res.CompletionFrac >= quorum
	return res
}

// shardSeeds derives a cell's geometry and protocol seeds. Two SplitMix64
// streams per shard keep the channel realization and the loss draws
// decorrelated from each other and from every other cell.
func shardSeeds(seed int64, shard int) (campusSeed, protoSeed int64) {
	return par.SplitSeed(seed, int64(2*shard)), par.SplitSeed(seed, int64(2*shard+1))
}

// faultSeed derives a cell's fault-plan stream, decorrelated from the
// geometry and protocol streams of shardSeeds (which use streams 2s and
// 2s+1; the 1<<20 offset clears them for any shard count).
func faultSeed(seed int64, shard int) int64 {
	return par.SplitSeed(seed, int64(1<<20)+int64(shard))
}

// runShard programs one AP cell. workers sizes the host pool for the cell's
// unicast sessions (simulated time is unaffected: the AP's schedule is
// sequential on each node's own clock either way).
func runShard(ctx context.Context, spec Spec, u *ota.Update, design *fpga.Design, shard, size, workers int) (ShardResult, error) {
	campusSeed, protoSeed := shardSeeds(spec.Seed, shard)
	campus := testbed.NewCampusN(campusSeed, size)
	base := shard * spec.ShardSize
	out := ShardResult{Shard: shard}

	switch spec.Mode {
	case ModeUnicast:
		// The cell's AP programs its nodes one after another, so the cell
		// time is the sum of the per-node sessions (failures included —
		// the AP spent that air time before giving up).
		results := campus.ProgramAllWorkers(u, design, workers)
		for i, r := range results {
			node := campus.Nodes[i]
			nr := NodeResult{
				ID: base + i + 1, Shard: shard, DeviceID: r.NodeID,
				DistanceM: r.Distance, RSSIdBm: r.RSSIdBm,
				Duration: node.Clock.Now(),
				EnergyJ:  node.PMU.Ledger().Energy(),
			}
			if r.Err != nil {
				nr.Err = r.Err.Error()
				// A unicast session only fails by running out of link
				// retries: the node never completed an exchange.
				nr.Class = string(ota.FailUnreachable)
			} else {
				nr.Retries = r.Report.Retransmissions
				out.AirBytes += r.Report.AirBytes
				out.DataPackets += r.Report.DataPackets + r.Report.Retransmissions
			}
			out.Elapsed += nr.Duration
			out.Nodes = append(out.Nodes, nr)
		}

	case ModeBroadcast:
		targets := make([]ota.BroadcastTarget, len(campus.Nodes))
		for i, n := range campus.Nodes {
			n.PMU.Ledger().Reset()
			targets[i] = ota.BroadcastTarget{Node: n.OTA, RSSIdBm: campus.RSSI(n)}
		}
		sess := ota.NewBroadcastSession(targets, protoSeed)
		var rep *ota.BroadcastReport
		var err error
		if spec.healing() {
			// Chaos / self-healing path: the fault plan and the NACK-driven
			// repair protocol. Faults may be empty (budget-only specs run
			// the healing protocol with a nil plan).
			var plan *fault.Plan
			if spec.Faults != "" {
				fspec, ferr := fault.Parse(spec.Faults)
				if ferr != nil {
					return out, ferr
				}
				plan = fault.NewPlan(fspec, faultSeed(spec.Seed, shard))
			}
			rep, err = sess.ProgramFleetHealing(u, design, ota.HealConfig{
				Plan:        plan,
				RetryBudget: spec.RetryBudget,
				Canceled:    func() bool { return ctx.Err() != nil },
			})
		} else {
			rep, err = sess.ProgramFleet(u, design)
		}
		if err != nil {
			return out, fmt.Errorf("fleet: shard %d: %w", shard, err)
		}
		out.Elapsed = rep.FleetTime
		out.AirBytes = rep.AirBytes
		out.DataPackets = rep.BroadcastPackets + rep.RepairPackets
		for i, p := range rep.PerNode {
			node := campus.Nodes[i]
			nr := NodeResult{
				ID: base + i + 1, Shard: shard, DeviceID: p.NodeID,
				DistanceM: node.Distance(), RSSIdBm: targets[i].RSSIdBm,
				Duration: p.Duration, EnergyJ: node.PMU.Ledger().Energy(),
				Retries: p.Repairs,
			}
			if p.Err != nil {
				nr.Err = p.Err.Error()
				nr.Class = string(p.Class)
			}
			nr.Crashes = p.Crashes
			nr.FlashFaults = p.FlashFaults
			out.Nodes = append(out.Nodes, nr)
		}
	}
	return out, nil
}
