package fleet

// The campaign journal: how Server state becomes durable. Every lifecycle
// transition appends one record to an internal/journal write-ahead log
// before the in-memory state moves, and startup replays the log to
// recover. Records are JSON payloads inside the journal's CRC-sealed
// binary frames — encoding/json renders struct fields in declaration
// order and sorts map keys, so a given state always journals to the same
// bytes and compaction snapshots are canonical. Records carry no
// wall-clock timestamps: replaying a journal is a pure function of its
// bytes.
//
// Record sequence per campaign (type tags below):
//
//	created   {id, spec}        spec already normalized
//	started   {id}              execution began; at most once
//	shard-done{id, result}      one per completed shard, any order
//	done      {id, result}      terminal: the merged campaign Result
//	failed    {id, error}       terminal
//	canceled  {id, error}       terminal
//
// Replay is strict: records for unknown campaigns, duplicate or
// out-of-range shards, transitions after a terminal record, or malformed
// payloads reject the journal — inside a CRC-valid record those are
// writer bugs, not torn writes, and recovery must not guess. Compaction
// (on open and on drain) rewrites the log as its minimal equivalent:
// created + terminal for finished campaigns, created [+ started +
// shard-dones] for live ones, in creation order.

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"github.com/uwsdr/tinysdr/internal/journal"
)

// Journal record types.
const (
	recCreated   uint8 = 1
	recStarted   uint8 = 2
	recShardDone uint8 = 3
	recDone      uint8 = 4
	recFailed    uint8 = 5
	recCanceled  uint8 = 6
)

type createdRecord struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
}

type startedRecord struct {
	ID string `json:"id"`
}

type shardDoneRecord struct {
	ID     string      `json:"id"`
	Result ShardResult `json:"result"`
}

type doneRecord struct {
	ID     string  `json:"id"`
	Result *Result `json:"result"`
}

type errorRecord struct {
	ID    string `json:"id"`
	Error string `json:"error,omitempty"`
}

// campaignState is one campaign's full server-side state: the published
// Campaign plus the execution machinery that never leaves the server.
type campaignState struct {
	c    *Campaign
	done chan struct{}
	// userCtx is canceled by Cancel; runCtx additionally by drain or kill,
	// so completion can tell a user cancellation (terminal, journaled)
	// from a control-plane shutdown (campaign stays resumable).
	userCtx    context.Context
	userCancel context.CancelFunc
	runCtx     context.Context
	runCancel  context.CancelFunc
	// started mirrors the journal: true once a started record exists, so
	// a resumed campaign does not journal it twice.
	started bool
	// shards holds the journaled per-shard results of a non-terminal
	// campaign — the resume set. Cleared on terminal transition.
	shards map[int]ShardResult
}

// recoveredState is a journal replayed into campaign states.
type recoveredState struct {
	order  []string
	states map[string]*campaignState
	nextID int
}

// idHighWater parses server-allocated "c<N>" identifiers so a recovered
// server's counter resumes past every journaled ID instead of restarting
// at zero and colliding.
func idHighWater(id string) int {
	if !strings.HasPrefix(id, "c") {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil || n < 0 || id[1] == '0' && n != 0 {
		return 0
	}
	return n
}

// replayRecords folds a journal into recovered campaign state. Campaigns
// without a terminal record come back StatusPending with their journaled
// shard results attached, ready to resume.
func replayRecords(recs []journal.Record) (*recoveredState, error) {
	st := &recoveredState{states: make(map[string]*campaignState)}
	get := func(id string) (*campaignState, error) {
		cs, ok := st.states[id]
		if !ok {
			return nil, fmt.Errorf("fleet: journal references unknown campaign %q", id)
		}
		if cs.c.Status != StatusPending {
			return nil, fmt.Errorf("fleet: journal transitions campaign %q after its terminal %s", id, cs.c.Status)
		}
		return cs, nil
	}
	for i, rec := range recs {
		switch rec.Type {
		case recCreated:
			var r createdRecord
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("fleet: journal record %d: %w", i, err)
			}
			if r.ID == "" {
				return nil, fmt.Errorf("fleet: journal record %d: empty campaign id", i)
			}
			if _, ok := st.states[r.ID]; ok {
				return nil, fmt.Errorf("fleet: journal re-creates campaign %q", r.ID)
			}
			norm, err := r.Spec.normalize()
			if err != nil {
				return nil, fmt.Errorf("fleet: journaled campaign %q: %w", r.ID, err)
			}
			st.states[r.ID] = &campaignState{
				c:      &Campaign{ID: r.ID, Spec: norm, Status: StatusPending},
				shards: make(map[int]ShardResult),
			}
			st.order = append(st.order, r.ID)
			if hw := idHighWater(r.ID); hw > st.nextID {
				st.nextID = hw
			}
		case recStarted:
			var r startedRecord
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("fleet: journal record %d: %w", i, err)
			}
			cs, err := get(r.ID)
			if err != nil {
				return nil, err
			}
			if cs.started {
				return nil, fmt.Errorf("fleet: journal starts campaign %q twice", r.ID)
			}
			cs.started = true
		case recShardDone:
			var r shardDoneRecord
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("fleet: journal record %d: %w", i, err)
			}
			cs, err := get(r.ID)
			if err != nil {
				return nil, err
			}
			if !cs.started {
				return nil, fmt.Errorf("fleet: journal completes a shard of unstarted campaign %q", r.ID)
			}
			n := numShards(cs.c.Spec)
			if s := r.Result.Shard; s < 0 || s >= n {
				return nil, fmt.Errorf("fleet: journaled shard %d outside campaign %q's %d-shard partition", s, r.ID, n)
			}
			if _, dup := cs.shards[r.Result.Shard]; dup {
				return nil, fmt.Errorf("fleet: journal completes shard %d of campaign %q twice", r.Result.Shard, r.ID)
			}
			cs.shards[r.Result.Shard] = r.Result
		case recDone:
			var r doneRecord
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("fleet: journal record %d: %w", i, err)
			}
			cs, err := get(r.ID)
			if err != nil {
				return nil, err
			}
			if r.Result == nil {
				return nil, fmt.Errorf("fleet: journaled done record for %q has no result", r.ID)
			}
			cs.c.Status = StatusDone
			cs.c.Result = r.Result
			cs.shards = nil
		case recFailed, recCanceled:
			var r errorRecord
			if err := json.Unmarshal(rec.Data, &r); err != nil {
				return nil, fmt.Errorf("fleet: journal record %d: %w", i, err)
			}
			cs, err := get(r.ID)
			if err != nil {
				return nil, err
			}
			if rec.Type == recFailed {
				cs.c.Status = StatusFailed
			} else {
				cs.c.Status = StatusCanceled
			}
			cs.c.Error = r.Error
			cs.shards = nil
		default:
			return nil, fmt.Errorf("fleet: journal record %d has unknown type %d", i, rec.Type)
		}
	}
	return st, nil
}

// marshalRecord renders one journal record; the payload shapes are fixed
// structs, so marshaling cannot fail for reachable values.
func marshalRecord(typ uint8, v any) (journal.Record, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return journal.Record{}, err
	}
	return journal.Record{Type: typ, Data: data}, nil
}

// snapshotRecordsLocked renders the server's current state as a minimal
// canonical journal — the compaction image. Campaigns appear in creation
// order; a live campaign's shard records appear in shard order, so the
// same state always compacts to the same bytes.
func (s *Server) snapshotRecordsLocked() ([]journal.Record, error) {
	var out []journal.Record
	emit := func(typ uint8, v any) error {
		rec, err := marshalRecord(typ, v)
		if err != nil {
			return err
		}
		out = append(out, rec)
		return nil
	}
	for _, id := range s.order {
		cs := s.states[id]
		if err := emit(recCreated, createdRecord{ID: id, Spec: cs.c.Spec}); err != nil {
			return nil, err
		}
		switch cs.c.Status {
		case StatusDone:
			if err := emit(recDone, doneRecord{ID: id, Result: cs.c.Result}); err != nil {
				return nil, err
			}
		case StatusFailed:
			if err := emit(recFailed, errorRecord{ID: id, Error: cs.c.Error}); err != nil {
				return nil, err
			}
		case StatusCanceled:
			if err := emit(recCanceled, errorRecord{ID: id, Error: cs.c.Error}); err != nil {
				return nil, err
			}
		default:
			if cs.started {
				if err := emit(recStarted, startedRecord{ID: id}); err != nil {
					return nil, err
				}
				for sh := 0; sh < numShards(cs.c.Spec); sh++ {
					sr, ok := cs.shards[sh]
					if !ok {
						continue
					}
					if err := emit(recShardDone, shardDoneRecord{ID: id, Result: sr}); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return out, nil
}
