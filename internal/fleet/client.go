package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Client is the retrying HTTP client of the campaign API — the CLI's
// remote mode and anything else that must drive a campaign across a
// control-plane restart. Every request carries a per-request timeout and
// transient failures (network errors, 5xx, 429) retry on capped
// exponential backoff with deterministic seeded jitter. Creation is
// idempotent: the client always supplies the campaign ID, so a create
// retried across a crash or timeout can only ever land the campaign once
// (the server answers a duplicate with the existing campaign).
//
// Methods are safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	// attempts bounds tries per request; backoff doubles from backoffBase
	// to backoffCap between them.
	attempts    int
	backoffBase time.Duration
	backoffCap  time.Duration
	// poll is WaitDone's status-poll interval.
	poll time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// Client tuning defaults.
const (
	defaultAttempts    = 10
	defaultTimeout     = 30 * time.Second
	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffCap  = 3 * time.Second
	defaultPoll        = 150 * time.Millisecond
)

// NewClient returns a campaign API client for the server at base (e.g.
// "http://127.0.0.1:8080"). seed drives the retry/poll jitter — and only
// the jitter: campaign results never depend on it.
func NewClient(base string, seed int64) *Client {
	return &Client{
		base:        strings.TrimSuffix(base, "/"),
		hc:          &http.Client{Timeout: defaultTimeout},
		attempts:    defaultAttempts,
		backoffBase: defaultBackoffBase,
		backoffCap:  defaultBackoffCap,
		poll:        defaultPoll,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// jittered spreads d over [d/2, d) so a fleet of retrying clients does not
// stampede a restarting server in lockstep.
func (c *Client) jittered(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)))
}

// retryable classifies a response status: server-side trouble is worth
// retrying, anything else is the caller's answer.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// apiError unwraps the canonical {"error": "..."} body.
func apiError(code int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("fleet: server status %d: %s", code, e.Error)
	}
	return fmt.Errorf("fleet: server status %d", code)
}

// do runs one API request with retries and decodes a 2xx body into out
// (when non-nil). body is re-serialized per attempt, so retries are safe.
func (c *Client) do(ctx context.Context, method, path string, body, out any) (int, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return 0, err
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.attempts; attempt++ {
		if attempt > 0 {
			backoff := c.backoffBase << (attempt - 1)
			if backoff > c.backoffCap {
				backoff = c.backoffCap
			}
			select {
			case <-time.After(c.jittered(backoff)):
			case <-ctx.Done():
				return 0, fmt.Errorf("fleet: %s %s: %w (last: %v)", method, path, ctx.Err(), lastErr)
			}
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return 0, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, fmt.Errorf("fleet: %s %s: %w", method, path, ctx.Err())
			}
			lastErr = err // network: connection refused/reset, timeout
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if retryable(resp.StatusCode) {
			lastErr = apiError(resp.StatusCode, data)
			continue
		}
		if resp.StatusCode >= 300 {
			return resp.StatusCode, apiError(resp.StatusCode, data)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return resp.StatusCode, fmt.Errorf("fleet: decoding %s %s: %w", method, path, err)
			}
		}
		return resp.StatusCode, nil
	}
	return 0, fmt.Errorf("fleet: %s %s: %d attempts failed: %w", method, path, c.attempts, lastErr)
}

// Create schedules a campaign under the client-supplied id (the
// idempotency key; it must be non-empty). Re-invoking with the same id and
// spec — including transparent retries after a timeout or server restart —
// returns the already-scheduled campaign instead of a duplicate.
func (c *Client) Create(ctx context.Context, id string, spec Spec) (*Campaign, error) {
	if id == "" {
		return nil, fmt.Errorf("fleet: client creates need a campaign id (the idempotency key)")
	}
	req := struct {
		ID string `json:"id"`
		Spec
	}{ID: id, Spec: spec}
	var out Campaign
	if _, err := c.do(ctx, http.MethodPost, "/campaigns", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Get returns a campaign's status summary.
func (c *Client) Get(ctx context.Context, id string) (*Campaign, error) {
	var out Campaign
	if _, err := c.do(ctx, http.MethodGet, "/campaigns/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// List returns every campaign's summary.
func (c *Client) List(ctx context.Context) ([]*Campaign, error) {
	var out []*Campaign
	if _, err := c.do(ctx, http.MethodGet, "/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel requests a campaign's cancellation and returns it once settled.
func (c *Client) Cancel(ctx context.Context, id string) (*Campaign, error) {
	var out Campaign
	if _, err := c.do(ctx, http.MethodDelete, "/campaigns/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Nodes returns a done campaign's per-node results.
func (c *Client) Nodes(ctx context.Context, id string) ([]NodeResult, error) {
	var out []NodeResult
	if _, err := c.do(ctx, http.MethodGet, "/campaigns/"+id+"/nodes", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// WaitDone polls until the campaign reaches a terminal state (done,
// failed, or canceled) and returns it. The poll rides the same retry
// machinery as everything else, so it survives a control-plane restart
// mid-campaign — exactly the soak the fleet-crash harness runs.
func (c *Client) WaitDone(ctx context.Context, id string) (*Campaign, error) {
	for {
		camp, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		switch camp.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return camp, nil
		}
		select {
		case <-time.After(c.jittered(c.poll)):
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: waiting for campaign %q: %w", id, ctx.Err())
		}
	}
}

// Result assembles a done campaign's full Result — the summary plus the
// per-node payload — byte-equivalent to running the same spec locally
// with Run.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	camp, err := c.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	if camp.Status != StatusDone || camp.Result == nil {
		return nil, fmt.Errorf("fleet: campaign %q is %s (%s); results need status %s",
			id, camp.Status, camp.Error, StatusDone)
	}
	nodes, err := c.Nodes(ctx, id)
	if err != nil {
		return nil, err
	}
	res := *camp.Result
	res.Nodes = nodes
	return &res, nil
}
