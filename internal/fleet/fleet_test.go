package fleet

import (
	"reflect"
	"testing"

	"github.com/uwsdr/tinysdr/internal/testbed"
)

// smallSpec keeps campaign tests fast: an 8 kB MCU image is ~50 chunks.
func smallSpec(nodes int, mode Mode, workers int) Spec {
	return Spec{Seed: 42, Nodes: nodes, Mode: mode, ImageKB: 8, Workers: workers}
}

func TestRunBroadcastCampaign(t *testing.T) {
	res, err := Run(smallSpec(100, ModeBroadcast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 100 {
		t.Fatalf("nodes = %d, want 100", len(res.Nodes))
	}
	if res.Shards != 5 {
		t.Errorf("shards = %d, want 5 (20-node cells)", res.Shards)
	}
	if res.Failed != 0 {
		for _, n := range res.Nodes {
			if n.Err != "" {
				t.Errorf("node %d (shard %d, %.1f dBm): %s", n.ID, n.Shard, n.RSSIdBm, n.Err)
			}
		}
	}
	for i, n := range res.Nodes {
		if n.ID != i+1 {
			t.Fatalf("node %d has global ID %d", i, n.ID)
		}
		if n.Duration <= 0 || n.EnergyJ <= 0 {
			t.Errorf("node %d: duration %v, energy %v", n.ID, n.Duration, n.EnergyJ)
		}
	}
	if res.FleetTime <= 0 || res.AirBytes <= 0 || res.DataPackets <= 0 {
		t.Errorf("empty campaign totals: %+v", res)
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	// The control-plane contract: a seeded campaign's per-node results are
	// bit-identical for any worker count.
	for _, mode := range []Mode{ModeBroadcast, ModeUnicast} {
		one, err := Run(smallSpec(100, mode, 1))
		if err != nil {
			t.Fatal(err)
		}
		eight, err := Run(smallSpec(100, mode, 8))
		if err != nil {
			t.Fatal(err)
		}
		// Workers is part of the spec, not the outcome; align it before
		// the exact comparison.
		eight.Spec.Workers = one.Spec.Workers
		if !reflect.DeepEqual(one, eight) {
			t.Errorf("%s campaign differs between 1 and 8 workers", mode)
		}
	}
}

func TestBroadcastCampaignBeatsUnicast(t *testing.T) {
	// The §7 claim at fleet scale: one broadcast transfer plus repair beats
	// N sequential transfers in both air bytes and fleet time.
	b, err := Run(smallSpec(40, ModeBroadcast, 0))
	if err != nil {
		t.Fatal(err)
	}
	u, err := Run(smallSpec(40, ModeUnicast, 0))
	if err != nil {
		t.Fatal(err)
	}
	if b.FleetTime >= u.FleetTime {
		t.Errorf("broadcast fleet time %v not below unicast %v", b.FleetTime, u.FleetTime)
	}
	if b.AirBytes >= u.AirBytes {
		t.Errorf("broadcast air bytes %d not below unicast %d", b.AirBytes, u.AirBytes)
	}
}

func TestShardPartitionIndependentOfWorkers(t *testing.T) {
	// 50 nodes in 20-node cells: shards of 20, 20, 10; device IDs restart
	// per cell while global IDs stay unique.
	res, err := Run(smallSpec(50, ModeBroadcast, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 3 {
		t.Fatalf("shards = %d", res.Shards)
	}
	counts := map[int]int{}
	for _, n := range res.Nodes {
		counts[n.Shard]++
	}
	if counts[0] != 20 || counts[1] != 20 || counts[2] != 10 {
		t.Errorf("shard sizes = %v", counts)
	}
	if last := res.Nodes[len(res.Nodes)-1]; last.ID != 50 || last.DeviceID != 10 {
		t.Errorf("last node ID %d device %d", last.ID, last.DeviceID)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Nodes: 0},
		{Nodes: -3},
		{Nodes: 70000},
		{Nodes: 10, Mode: "multicast"},
		{Nodes: 10, Image: "dsp"},
		{Nodes: 10, ShardSize: -1},
		{Nodes: 10, ImageKB: -4},
		{Nodes: 10, ImageKB: MaxImageKB + 1},
		{Nodes: 10, ImageKB: 9_100_000_000_000_000_000 / 1024}, // would overflow ImageKB*1024
	}
	for _, s := range bad {
		if _, err := Run(s); err == nil {
			t.Errorf("spec %+v accepted", s)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	s, err := Spec{Nodes: 5}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode != ModeBroadcast || s.Image != ImageMCU ||
		s.ShardSize != testbed.DefaultNodeCount || s.ImageKB != DefaultImageKB {
		t.Errorf("defaults not applied: %+v", s)
	}
}

func TestSingleNodeCampaign(t *testing.T) {
	res, err := Run(smallSpec(1, ModeUnicast, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 || res.Shards != 1 {
		t.Fatalf("%d nodes in %d shards", len(res.Nodes), res.Shards)
	}
	if res.Nodes[0].Err != "" {
		t.Errorf("single node failed: %s", res.Nodes[0].Err)
	}
}
