package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/uwsdr/tinysdr/internal/httpjson"
	"github.com/uwsdr/tinysdr/internal/journal"
)

// Status is a campaign's lifecycle state.
type Status string

// Campaign states.
const (
	StatusPending  Status = "pending"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Campaign is one scheduled fleet rollout.
type Campaign struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status Status `json:"status"`
	// ShardsDone is the count of journaled shard results of a running
	// campaign — the resume point a restart would pick up from. Zero once
	// the campaign is terminal (the Result carries the totals then).
	ShardsDone int `json:"shards_done,omitempty"`
	// Error holds the campaign-level failure for StatusFailed (per-node
	// failures live in Result.Nodes and leave the campaign StatusDone).
	Error string `json:"error,omitempty"`
	// Result is set once the campaign reaches StatusDone.
	Result *Result `json:"result,omitempty"`
}

// MaxCampaigns bounds the campaigns a server retains; creation is rejected
// beyond it. Every completed campaign keeps its per-node results in memory,
// so the cap is the server's memory backstop.
const MaxCampaigns = 1000

// JournalName is the campaign journal's file name inside a state dir.
const JournalName = "campaigns.journal"

// Sentinel errors of the campaign API.
var (
	// ErrDraining rejects creation on a server that is shutting down.
	ErrDraining = errors.New("fleet: server is draining, not admitting campaigns")
	// ErrSpecConflict rejects an idempotent create whose client-supplied
	// ID already names a campaign with a different spec.
	ErrSpecConflict = errors.New("fleet: campaign id already exists with a different spec")

	// errKilled aborts in-flight work after a (simulated) control-plane
	// kill; nothing observes it because the process is considered dead.
	errKilled = errors.New("fleet: server killed")
)

// Server schedules campaigns and serves their state over a JSON API. The
// zero value is not usable; call NewServer (in-memory) or OpenServer
// (journal-backed, crash-recoverable).
type Server struct {
	mu     sync.Mutex
	states map[string]*campaignState
	order  []string // creation order, for listings and compaction
	nextID int
	// j is the write-ahead campaign journal; nil for an in-memory server.
	// Every lifecycle transition appends a record before the in-memory
	// state moves (see persist.go).
	j *journal.Journal
	// draining stops admissions; killed simulates SIGKILL (journal closed
	// abruptly, no further transitions journaled or applied).
	draining bool
	killed   bool
	// crashAfter counts journal appends until a simulated kill fires; 0
	// disables. crashed closes when a kill (real or simulated) happens.
	crashAfter int
	crashed    chan struct{}
	// wg tracks campaign runner goroutines so Drain can wait them out.
	wg sync.WaitGroup
	// runSlot serializes campaign execution: each campaign already fans
	// out across the whole worker pool, so queued campaigns wait in
	// StatusPending instead of oversubscribing the host.
	runSlot chan struct{}
}

// NewServer returns an empty in-memory campaign scheduler: campaigns die
// with the process. Use OpenServer for the crash-recoverable variant.
func NewServer() *Server {
	return &Server{
		states:  make(map[string]*campaignState),
		crashed: make(chan struct{}),
		runSlot: make(chan struct{}, 1),
	}
}

// OpenServer returns a journal-backed campaign scheduler rooted at
// stateDir (created if missing). An existing journal is replayed: terminal
// campaigns come back with their results, and interrupted ones re-enqueue
// and resume from their last journaled shard — a campaign is only ever
// re-executed at shard granularity, and the resumed Result is
// byte-identical to an uninterrupted run. The replayed journal is
// compacted in place before the server starts admitting work.
func OpenServer(stateDir string) (*Server, error) {
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return nil, err
	}
	j, recs, err := journal.Open(filepath.Join(stateDir, JournalName))
	if err != nil {
		return nil, err
	}
	recovered, err := replayRecords(recs)
	if err != nil {
		j.Close()
		return nil, err
	}
	s := NewServer()
	s.j = j
	s.nextID = recovered.nextID
	s.order = recovered.order
	for _, id := range s.order {
		cs := recovered.states[id]
		s.states[id] = cs
		cs.done = make(chan struct{})
		if cs.c.Status == StatusPending {
			cs.userCtx, cs.userCancel = context.WithCancel(context.Background())
			cs.runCtx, cs.runCancel = context.WithCancel(cs.userCtx)
		} else {
			// Terminal: nothing to run, nothing to cancel.
			cs.userCancel, cs.runCancel = func() {}, func() {}
			close(cs.done)
		}
	}
	snap, err := s.snapshotRecordsLocked()
	if err != nil {
		j.Close()
		return nil, err
	}
	if err := j.Compact(snap); err != nil {
		j.Close()
		return nil, err
	}
	// Re-enqueue interrupted campaigns in creation order, behind the same
	// run slot a fresh create uses.
	for _, id := range s.order {
		cs := s.states[id]
		if cs.c.Status == StatusPending {
			s.wg.Add(1)
			go s.run(cs)
		}
	}
	return s, nil
}

// snapshot copies a campaign's current state (Result is immutable once
// published, so a shallow copy is safe to hand out).
func (cs *campaignState) snapshot() *Campaign {
	cp := *cs.c
	cp.ShardsDone = len(cs.shards)
	return &cp
}

// summary is the snapshot with per-node results stripped — listings and
// status polls stay small even for thousand-node campaigns.
func summary(c *Campaign) *Campaign {
	cp := *c
	if cp.Result != nil {
		r := *cp.Result
		r.Nodes = nil
		cp.Result = &r
	}
	return &cp
}

// appendLocked journals one record, honoring the kill switches: a killed
// server appends nothing and reports errKilled so callers stop. Fires the
// simulated-crash countdown armed by CrashAfterAppends.
func (s *Server) appendLocked(typ uint8, v any) error {
	if s.j == nil {
		return nil
	}
	if s.killed {
		return errKilled
	}
	rec, err := marshalRecord(typ, v)
	if err != nil {
		return err
	}
	if err := s.j.Append(rec); err != nil {
		return err
	}
	if s.crashAfter > 0 {
		s.crashAfter--
		if s.crashAfter == 0 {
			s.killLocked()
		}
	}
	return nil
}

// validateCampaignID bounds client-supplied campaign IDs: they travel in
// URL paths and journal records, so keep them short and unambiguous.
func validateCampaignID(id string) error {
	if len(id) == 0 || len(id) > 64 {
		return fmt.Errorf("fleet: campaign id of %d bytes outside [1, 64]", len(id))
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("fleet: campaign id %q: only letters, digits, '-', '_', '.'", id)
		}
	}
	return nil
}

// Create validates the spec, registers a campaign under a server-assigned
// ID, and starts it on a background goroutine. The returned snapshot is
// StatusPending or later.
func (s *Server) Create(spec Spec) (*Campaign, error) {
	c, _, err := s.CreateID("", spec)
	return c, err
}

// CreateID is Create with an optional client-supplied campaign ID — the
// idempotency key of the retrying fleet.Client: re-sending a create with
// the same ID and spec returns the existing campaign (created=false)
// instead of scheduling a duplicate, and the same ID with a different spec
// is ErrSpecConflict. An empty id asks the server to allocate one.
func (s *Server) CreateID(id string, spec Spec) (c *Campaign, created bool, err error) {
	norm, err := spec.normalize()
	if err != nil {
		return nil, false, err
	}
	if id != "" {
		if err := validateCampaignID(id); err != nil {
			return nil, false, err
		}
	}
	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	if id != "" {
		if cs, ok := s.states[id]; ok {
			snap := cs.snapshot()
			s.mu.Unlock()
			if snap.Spec != norm {
				return nil, false, fmt.Errorf("%w: %q", ErrSpecConflict, id)
			}
			return snap, false, nil
		}
	}
	if len(s.states) >= MaxCampaigns {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("fleet: server at its %d-campaign capacity", MaxCampaigns)
	}
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("c%d", s.nextID)
	} else if hw := idHighWater(id); hw > s.nextID {
		// A client-supplied ID in the server's own namespace raises the
		// counter so later allocations cannot collide with it.
		s.nextID = hw
	}
	cs := &campaignState{
		c:      &Campaign{ID: id, Spec: norm, Status: StatusPending},
		done:   make(chan struct{}),
		shards: make(map[int]ShardResult),
	}
	cs.userCtx, cs.userCancel = context.WithCancel(context.Background())
	cs.runCtx, cs.runCancel = context.WithCancel(cs.userCtx)
	if err := s.appendLocked(recCreated, createdRecord{ID: id, Spec: norm}); err != nil {
		s.mu.Unlock()
		return nil, false, fmt.Errorf("fleet: journaling campaign %q: %w", id, err)
	}
	s.states[id] = cs
	s.order = append(s.order, id)
	snap := cs.snapshot()
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(cs)
	return snap, true, nil
}

// run executes one campaign behind the run slot, journaling every
// transition. It is the only writer of the campaign's status after
// creation.
func (s *Server) run(cs *campaignState) {
	defer s.wg.Done()
	defer close(cs.done)

	// Wait for the run slot, bailing if the campaign is canceled, drained,
	// or killed while still queued.
	select {
	case s.runSlot <- struct{}{}:
		defer func() { <-s.runSlot }()
	case <-cs.runCtx.Done():
	}

	s.mu.Lock()
	if err := cs.runCtx.Err(); err != nil {
		if cs.userCtx.Err() != nil {
			// Canceled while still pending in the queue: never runs.
			cs.c.Status = StatusCanceled
			cs.c.Error = "fleet: campaign canceled before it started"
			cs.shards = nil
			// A failed terminal append surfaces on the next replay as a
			// still-pending campaign — safe, it just runs again.
			_ = s.appendLocked(recCanceled, errorRecord{ID: cs.c.ID, Error: cs.c.Error})
		}
		// Drained or killed while pending: stays pending in the journal
		// and re-enqueues on the next OpenServer.
		s.mu.Unlock()
		return
	}
	cs.c.Status = StatusRunning
	var jerr error
	if !cs.started {
		if jerr = s.appendLocked(recStarted, startedRecord{ID: cs.c.ID}); jerr == nil {
			cs.started = true
		}
	}
	resume := make(map[int]ShardResult, len(cs.shards))
	for sh := 0; sh < numShards(cs.c.Spec); sh++ {
		if sr, ok := cs.shards[sh]; ok {
			resume[sh] = sr
		}
	}
	id, spec := cs.c.ID, cs.c.Spec
	s.mu.Unlock()

	var res *Result
	if jerr == nil {
		res, jerr = RunResumable(cs.runCtx, spec, resume, func(sr ShardResult) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if err := s.appendLocked(recShardDone, shardDoneRecord{ID: id, Result: sr}); err != nil {
				return err
			}
			cs.shards[sr.Shard] = sr
			return nil
		})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.killed:
		// Simulated dead process: no further transitions. The journal
		// holds created/started/shard-done records; restart resumes.
	case jerr != nil && cs.userCtx.Err() != nil:
		cs.c.Status = StatusCanceled
		cs.c.Error = jerr.Error()
		cs.shards = nil
		_ = s.appendLocked(recCanceled, errorRecord{ID: id, Error: cs.c.Error})
	case jerr != nil && cs.runCtx.Err() != nil && s.draining:
		// Drained: cut at the shard boundary, stays StatusRunning in the
		// journal (started + shard-dones) so a restart resumes it.
	case jerr != nil:
		cs.c.Status = StatusFailed
		cs.c.Error = jerr.Error()
		cs.shards = nil
		_ = s.appendLocked(recFailed, errorRecord{ID: id, Error: cs.c.Error})
	default:
		if err := s.appendLocked(recDone, doneRecord{ID: id, Result: res}); err != nil {
			if s.killed {
				// The kill landed on this very append; treat as crashed.
				return
			}
			cs.c.Status = StatusFailed
			cs.c.Error = err.Error()
			cs.shards = nil
			return
		}
		cs.c.Status = StatusDone
		cs.c.Result = res
		cs.shards = nil
	}
}

// Cancel requests a campaign's cancellation: a pending campaign never
// starts, a running one aborts between shards and repair rounds, and a
// terminal one is left untouched. It returns the campaign's snapshot after
// the cancellation settles.
func (s *Server) Cancel(id string) (*Campaign, error) {
	s.mu.Lock()
	cs, ok := s.states[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown campaign %q", id)
	}
	cs.userCancel()
	return s.Wait(context.Background(), id)
}

// Get returns a campaign's current snapshot.
func (s *Server) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.states[id]
	if !ok {
		return nil, false
	}
	return cs.snapshot(), true
}

// Wait blocks until the campaign reaches a terminal state and returns it,
// or until ctx is done (returning the context's error), so API callers can
// bound how long they block on a queued or slow campaign. On a draining or
// killed server Wait returns once the campaign settles, which may leave it
// non-terminal (resumable after restart).
func (s *Server) Wait(ctx context.Context, id string) (*Campaign, error) {
	s.mu.Lock()
	cs, ok := s.states[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown campaign %q", id)
	}
	select {
	case <-cs.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("fleet: waiting for campaign %q: %w", id, ctx.Err())
	}
	c, _ := s.Get(id)
	return c, nil
}

// List returns summaries of every campaign, sorted by ID (server-assigned
// IDs sort in creation order).
func (s *Server) List() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, summary(s.states[id].snapshot()))
	}
	sort.Slice(out, func(i, j int) bool {
		return len(out[i].ID) < len(out[j].ID) ||
			(len(out[i].ID) == len(out[j].ID) && out[i].ID < out[j].ID)
	})
	return out
}

// Drain gracefully shuts the control plane down: stop admitting campaigns
// (Create returns ErrDraining), interrupt running campaigns at their next
// shard boundary — completed shards stay journaled, the campaign stays
// resumable — wait for every runner to settle, then compact and close the
// journal. ctx bounds the wait; an expired ctx abandons the compaction
// (the journal is still consistent, just uncompacted — exactly what a kill
// would leave). Drain is idempotent and a no-op on a killed server.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining || s.killed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for _, id := range s.order {
		s.states[id].runCancel()
	}
	s.mu.Unlock()

	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-ctx.Done():
		return fmt.Errorf("fleet: drain: %w", ctx.Err())
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j == nil || s.killed {
		return nil
	}
	snap, err := s.snapshotRecordsLocked()
	if err != nil {
		return err
	}
	if err := s.j.Compact(snap); err != nil {
		return err
	}
	return s.j.Close()
}

// killLocked is the simulated SIGKILL: the journal closes abruptly exactly
// where it is, every runner's context is cut, and no further state
// transition is journaled or applied — the process is considered dead.
func (s *Server) killLocked() {
	if s.killed {
		return
	}
	s.killed = true
	for _, id := range s.order {
		s.states[id].runCancel()
	}
	if s.j != nil {
		s.j.Close()
	}
	close(s.crashed)
}

// Kill simulates a control-plane SIGKILL for chaos testing: in-flight
// campaigns are cut immediately (mid-shard work is discarded — only
// journaled shards survive, as with a real kill) and the server stops
// journaling. The state dir is left exactly as `kill -9` would leave it;
// OpenServer on it must recover every campaign.
func (s *Server) Kill() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killLocked()
}

// CrashAfterAppends arms the deterministic crash point of the fleetcrash
// chaos harness: the server Kills itself immediately after the n-th
// journal record append from now. Arm it before creating campaigns; n <= 0
// disarms.
func (s *Server) CrashAfterAppends(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		s.crashAfter = 0
		return
	}
	s.crashAfter = n
}

// Crashed closes when the server kills itself (Kill or an armed
// CrashAfterAppends firing) — the chaos harness's signal to "restart".
func (s *Server) Crashed() <-chan struct{} { return s.crashed }

// Handler returns the JSON API:
//
//	POST   /campaigns        create a campaign from a Spec body; an
//	                         optional "id" field is the idempotency key
//	                         (201 created, 200 existing, 409 spec conflict,
//	                         503 draining)
//	GET    /campaigns        list campaign summaries
//	GET    /campaigns/{id}   one campaign's status and summary
//	GET    /campaigns/{id}/nodes  the per-node results (once done)
//	DELETE /campaigns/{id}   cancel a pending or running campaign
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			ID string `json:"id"`
			Spec
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpjson.Error(w, http.StatusBadRequest, fmt.Errorf("fleet: bad spec: %w", err))
			return
		}
		c, created, err := s.CreateID(req.ID, req.Spec)
		switch {
		case errors.Is(err, ErrDraining):
			httpjson.Error(w, http.StatusServiceUnavailable, err)
			return
		case errors.Is(err, ErrSpecConflict):
			httpjson.Error(w, http.StatusConflict, err)
			return
		case err != nil:
			httpjson.Error(w, http.StatusBadRequest, err)
			return
		}
		code := http.StatusCreated
		if !created {
			code = http.StatusOK
		}
		httpjson.Write(w, code, c)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, fmt.Errorf("fleet: unknown campaign %q", r.PathValue("id")))
			return
		}
		httpjson.Write(w, http.StatusOK, summary(c))
	})
	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpjson.Error(w, http.StatusNotFound, err)
			return
		}
		httpjson.Write(w, http.StatusOK, summary(c))
	})
	mux.HandleFunc("GET /campaigns/{id}/nodes", func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, fmt.Errorf("fleet: unknown campaign %q", r.PathValue("id")))
			return
		}
		if c.Result == nil {
			httpjson.Error(w, http.StatusConflict,
				fmt.Errorf("fleet: campaign %q is %s; per-node results need status %s", c.ID, c.Status, StatusDone))
			return
		}
		httpjson.Write(w, http.StatusOK, c.Result.Nodes)
	})
	return mux
}
