package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"github.com/uwsdr/tinysdr/internal/httpjson"
)

// Status is a campaign's lifecycle state.
type Status string

// Campaign states.
const (
	StatusPending  Status = "pending"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Campaign is one scheduled fleet rollout.
type Campaign struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status Status `json:"status"`
	// Error holds the campaign-level failure for StatusFailed (per-node
	// failures live in Result.Nodes and leave the campaign StatusDone).
	Error string `json:"error,omitempty"`
	// Result is set once the campaign reaches StatusDone.
	Result *Result `json:"result,omitempty"`
}

// MaxCampaigns bounds the campaigns a server retains; creation is rejected
// beyond it. Every completed campaign keeps its per-node results in memory,
// so the cap is the server's memory backstop.
const MaxCampaigns = 1000

// Server schedules campaigns and serves their state over a JSON API. The
// zero value is not usable; call NewServer.
type Server struct {
	mu        sync.Mutex
	campaigns map[string]*Campaign
	done      map[string]chan struct{}
	cancels   map[string]context.CancelFunc
	nextID    int
	// runSlot serializes campaign execution: each campaign already fans
	// out across the whole worker pool, so queued campaigns wait in
	// StatusPending instead of oversubscribing the host.
	runSlot chan struct{}
}

// NewServer returns an empty campaign scheduler.
func NewServer() *Server {
	return &Server{
		campaigns: make(map[string]*Campaign),
		done:      make(map[string]chan struct{}),
		cancels:   make(map[string]context.CancelFunc),
		runSlot:   make(chan struct{}, 1),
	}
}

// snapshot copies a campaign's current state (Result is immutable once
// published, so a shallow copy is safe to hand out).
func (c *Campaign) snapshot() *Campaign {
	cp := *c
	return &cp
}

// summary is the snapshot with per-node results stripped — listings and
// status polls stay small even for thousand-node campaigns.
func (c *Campaign) summary() *Campaign {
	cp := *c
	if cp.Result != nil {
		r := *cp.Result
		r.Nodes = nil
		cp.Result = &r
	}
	return &cp
}

// Create validates the spec, registers a campaign, and starts it on a
// background goroutine. The returned snapshot is StatusPending or later.
func (s *Server) Create(spec Spec) (*Campaign, error) {
	norm, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(s.campaigns) >= MaxCampaigns {
		s.mu.Unlock()
		return nil, fmt.Errorf("fleet: server at its %d-campaign capacity", MaxCampaigns)
	}
	s.nextID++
	c := &Campaign{ID: fmt.Sprintf("c%d", s.nextID), Spec: norm, Status: StatusPending}
	ch := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	s.campaigns[c.ID] = c
	s.done[c.ID] = ch
	s.cancels[c.ID] = cancel
	snap := c.snapshot()
	s.mu.Unlock()

	go func() {
		s.runSlot <- struct{}{}
		defer func() { <-s.runSlot }()
		s.mu.Lock()
		if ctx.Err() != nil {
			// Canceled while still pending in the queue: never runs.
			c.Status = StatusCanceled
			c.Error = "fleet: campaign canceled before it started"
			s.mu.Unlock()
			close(ch)
			return
		}
		c.Status = StatusRunning
		s.mu.Unlock()
		res, err := RunContext(ctx, norm)
		s.mu.Lock()
		switch {
		case err != nil && ctx.Err() != nil:
			c.Status = StatusCanceled
			c.Error = err.Error()
		case err != nil:
			c.Status = StatusFailed
			c.Error = err.Error()
		default:
			c.Status = StatusDone
			c.Result = res
		}
		s.mu.Unlock()
		close(ch)
	}()
	return snap, nil
}

// Cancel requests a campaign's cancellation: a pending campaign never
// starts, a running one aborts between shards and repair rounds, and a
// terminal one is left untouched. It returns the campaign's snapshot after
// the cancellation settles.
func (s *Server) Cancel(id string) (*Campaign, error) {
	s.mu.Lock()
	cancel, ok := s.cancels[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown campaign %q", id)
	}
	cancel()
	return s.Wait(context.Background(), id)
}

// Get returns a campaign's current snapshot.
func (s *Server) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	if !ok {
		return nil, false
	}
	return c.snapshot(), true
}

// Wait blocks until the campaign reaches a terminal state and returns it,
// or until ctx is done (returning the context's error), so API callers can
// bound how long they block on a queued or slow campaign.
func (s *Server) Wait(ctx context.Context, id string) (*Campaign, error) {
	s.mu.Lock()
	ch, ok := s.done[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown campaign %q", id)
	}
	select {
	case <-ch:
	case <-ctx.Done():
		return nil, fmt.Errorf("fleet: waiting for campaign %q: %w", id, ctx.Err())
	}
	c, _ := s.Get(id)
	return c, nil
}

// List returns summaries of every campaign in creation order.
func (s *Server) List() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, 0, len(s.campaigns))
	//lint:detok order-insensitive: the summaries are sorted by ID before returning
	for _, c := range s.campaigns {
		out = append(out, c.summary())
	}
	sort.Slice(out, func(i, j int) bool {
		return len(out[i].ID) < len(out[j].ID) ||
			(len(out[i].ID) == len(out[j].ID) && out[i].ID < out[j].ID)
	})
	return out
}

// Handler returns the JSON API:
//
//	POST   /campaigns        create a campaign from a Spec body
//	GET    /campaigns        list campaign summaries
//	GET    /campaigns/{id}   one campaign's status and summary
//	GET    /campaigns/{id}/nodes  the per-node results (once done)
//	DELETE /campaigns/{id}   cancel a pending or running campaign
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpjson.Error(w, http.StatusBadRequest, fmt.Errorf("fleet: bad spec: %w", err))
			return
		}
		c, err := s.Create(spec)
		if err != nil {
			httpjson.Error(w, http.StatusBadRequest, err)
			return
		}
		httpjson.Write(w, http.StatusCreated, c)
	})
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		httpjson.Write(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, fmt.Errorf("fleet: unknown campaign %q", r.PathValue("id")))
			return
		}
		httpjson.Write(w, http.StatusOK, c.summary())
	})
	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			httpjson.Error(w, http.StatusNotFound, err)
			return
		}
		httpjson.Write(w, http.StatusOK, c.summary())
	})
	mux.HandleFunc("GET /campaigns/{id}/nodes", func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			httpjson.Error(w, http.StatusNotFound, fmt.Errorf("fleet: unknown campaign %q", r.PathValue("id")))
			return
		}
		if c.Result == nil {
			httpjson.Error(w, http.StatusConflict,
				fmt.Errorf("fleet: campaign %q is %s; per-node results need status %s", c.ID, c.Status, StatusDone))
			return
		}
		httpjson.Write(w, http.StatusOK, c.Result.Nodes)
	})
	return mux
}
