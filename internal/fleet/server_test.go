package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func postCampaign(t *testing.T, ts *httptest.Server, spec Spec) Campaign {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var c Campaign
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	return c
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// runCampaignOverHTTP drives a campaign through the JSON API end to end and
// returns the raw per-node results payload.
func runCampaignOverHTTP(t *testing.T, srv *Server, spec Spec) []byte {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := postCampaign(t, ts, spec)
	if c.ID == "" || (c.Status != StatusPending && c.Status != StatusRunning) {
		t.Fatalf("created campaign %+v", c)
	}
	if _, err := srv.Wait(context.Background(), c.ID); err != nil {
		t.Fatal(err)
	}

	var got Campaign
	if code := getJSON(t, ts.URL+"/campaigns/"+c.ID, &got); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if got.Status != StatusDone {
		t.Fatalf("campaign %s: %s (%s)", c.ID, got.Status, got.Error)
	}
	if got.Result == nil || got.Result.Nodes != nil {
		t.Fatal("status summary must include the result without per-node payload")
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + c.ID + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nodes: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	spec := Spec{Seed: 7, Nodes: 100, Mode: ModeBroadcast, ImageKB: 8}
	raw := runCampaignOverHTTP(t, NewServer(), spec)
	var nodes []NodeResult
	if err := json.Unmarshal(raw, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 100 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Err != "" {
			t.Errorf("node %d: %s", n.ID, n.Err)
		}
	}
}

func TestHTTPCampaignBitIdenticalAcrossWorkers(t *testing.T) {
	// The acceptance bar: a seeded 100-node broadcast campaign through the
	// HTTP API yields byte-identical per-node results for 1 and 8 workers.
	spec := Spec{Seed: 11, Nodes: 100, Mode: ModeBroadcast, ImageKB: 8}
	spec.Workers = 1
	one := runCampaignOverHTTP(t, NewServer(), spec)
	spec.Workers = 8
	eight := runCampaignOverHTTP(t, NewServer(), spec)
	if !bytes.Equal(one, eight) {
		t.Error("per-node results differ between 1 and 8 workers")
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Invalid spec rejected.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader([]byte(`{"nodes":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero-node spec: status %d", resp.StatusCode)
	}

	// Unknown campaign.
	if code := getJSON(t, ts.URL+"/campaigns/c99", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/campaigns/c99/nodes", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign nodes: status %d", code)
	}
}

func TestHTTPList(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		c := postCampaign(t, ts, Spec{Seed: int64(i), Nodes: 4, ShardSize: 4, ImageKB: 8, Workers: 1})
		ids = append(ids, c.ID)
	}
	for _, id := range ids {
		if _, err := srv.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	var list []Campaign
	if code := getJSON(t, ts.URL+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d campaigns", len(list))
	}
	for i, c := range list {
		if want := fmt.Sprintf("c%d", i+1); c.ID != want {
			t.Errorf("list[%d] = %s, want %s", i, c.ID, want)
		}
		if c.Status != StatusDone {
			t.Errorf("campaign %s status %s", c.ID, c.Status)
		}
		if c.Result != nil && c.Result.Nodes != nil {
			t.Error("listing must not carry per-node payloads")
		}
	}
}

func TestHTTPCancelQueuedCampaign(t *testing.T) {
	// The run slot serializes campaigns, so a second POST while the first
	// runs sits in StatusPending — canceling it must settle as canceled
	// without ever running, and the first campaign must finish untouched.
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := postCampaign(t, ts, Spec{Seed: 1, Nodes: 200, Mode: ModeBroadcast, ImageKB: 8})
	second := postCampaign(t, ts, Spec{Seed: 2, Nodes: 200, Mode: ModeBroadcast, ImageKB: 8})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/"+second.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got Campaign
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if got.Status != StatusCanceled && got.Status != StatusDone {
		t.Fatalf("canceled campaign status %s (%s)", got.Status, got.Error)
	}

	done, err := srv.Wait(context.Background(), first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Errorf("first campaign status %s (%s)", done.Status, done.Error)
	}
}

func TestHTTPCancelUnknownCampaign(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns/c42", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown: status %d", resp.StatusCode)
	}
}

func TestCancelAfterDoneLeavesResult(t *testing.T) {
	srv := NewServer()
	c, err := srv.Create(Spec{Seed: 3, Nodes: 4, ShardSize: 4, ImageKB: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(context.Background(), c.ID); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Cancel(c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Result == nil {
		t.Errorf("terminal campaign mutated by cancel: %s", got.Status)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	srv := NewServer()
	// Hold the run slot so the waited-on campaign never finishes.
	blocker, err := srv.Create(Spec{Seed: 4, Nodes: 400, Mode: ModeBroadcast, ImageKB: 8})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Create(Spec{Seed: 5, Nodes: 400, Mode: ModeBroadcast, ImageKB: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Wait(ctx, queued.ID); err == nil {
		t.Error("Wait returned without the campaign finishing")
	}
	// Drain so the test does not leak the running goroutine.
	if _, err := srv.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Wait(context.Background(), blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestServerConcurrentCancelStress hammers the campaign map from every API
// surface at once — creates, cancels, polls, listings and waits racing each
// other — so `go test -race` covers the lifecycle transitions (especially
// cancel-before-start versus cancel-mid-run) that single-campaign tests
// serialize away.
func TestServerConcurrentCancelStress(t *testing.T) {
	srv := NewServer()
	const campaigns = 12

	var wg sync.WaitGroup
	ids := make(chan string, campaigns)
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := srv.Create(Spec{Seed: int64(i), Nodes: 8, ShardSize: 4, ImageKB: 4, Workers: 1})
			if err != nil {
				t.Error(err)
				return
			}
			ids <- c.ID
			if i%2 == 0 {
				// Half the campaigns are canceled while pending or running.
				if _, err := srv.Cancel(c.ID); err != nil {
					t.Error(err)
				}
			}
			if _, err := srv.Wait(context.Background(), c.ID); err != nil {
				t.Error(err)
			}
		}(i)
	}

	// Readers churn the map while the lifecycle goroutines run.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range srv.List() {
					if _, ok := srv.Get(c.ID); !ok {
						t.Errorf("listed campaign %q vanished", c.ID)
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	close(ids)

	for id := range ids {
		c, ok := srv.Get(id)
		if !ok {
			t.Fatalf("campaign %q lost", id)
		}
		switch c.Status {
		case StatusDone, StatusCanceled:
		default:
			t.Errorf("campaign %q not terminal after Wait: %s (error %q)", id, c.Status, c.Error)
		}
	}
	if got := len(srv.List()); got != campaigns {
		t.Errorf("List returned %d campaigns, want %d", got, campaigns)
	}
}
