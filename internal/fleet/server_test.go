package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func postCampaign(t *testing.T, ts *httptest.Server, spec Spec) Campaign {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var c Campaign
	if err := json.NewDecoder(resp.Body).Decode(&c); err != nil {
		t.Fatal(err)
	}
	return c
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// runCampaignOverHTTP drives a campaign through the JSON API end to end and
// returns the raw per-node results payload.
func runCampaignOverHTTP(t *testing.T, srv *Server, spec Spec) []byte {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := postCampaign(t, ts, spec)
	if c.ID == "" || (c.Status != StatusPending && c.Status != StatusRunning) {
		t.Fatalf("created campaign %+v", c)
	}
	if _, err := srv.Wait(c.ID); err != nil {
		t.Fatal(err)
	}

	var got Campaign
	if code := getJSON(t, ts.URL+"/campaigns/"+c.ID, &got); code != http.StatusOK {
		t.Fatalf("get: status %d", code)
	}
	if got.Status != StatusDone {
		t.Fatalf("campaign %s: %s (%s)", c.ID, got.Status, got.Error)
	}
	if got.Result == nil || got.Result.Nodes != nil {
		t.Fatal("status summary must include the result without per-node payload")
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + c.ID + "/nodes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nodes: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestHTTPCampaignLifecycle(t *testing.T) {
	spec := Spec{Seed: 7, Nodes: 100, Mode: ModeBroadcast, ImageKB: 8}
	raw := runCampaignOverHTTP(t, NewServer(), spec)
	var nodes []NodeResult
	if err := json.Unmarshal(raw, &nodes); err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 100 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	for _, n := range nodes {
		if n.Err != "" {
			t.Errorf("node %d: %s", n.ID, n.Err)
		}
	}
}

func TestHTTPCampaignBitIdenticalAcrossWorkers(t *testing.T) {
	// The acceptance bar: a seeded 100-node broadcast campaign through the
	// HTTP API yields byte-identical per-node results for 1 and 8 workers.
	spec := Spec{Seed: 11, Nodes: 100, Mode: ModeBroadcast, ImageKB: 8}
	spec.Workers = 1
	one := runCampaignOverHTTP(t, NewServer(), spec)
	spec.Workers = 8
	eight := runCampaignOverHTTP(t, NewServer(), spec)
	if !bytes.Equal(one, eight) {
		t.Error("per-node results differ between 1 and 8 workers")
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Invalid spec rejected.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader([]byte(`{"nodes":0}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("zero-node spec: status %d", resp.StatusCode)
	}

	// Unknown campaign.
	if code := getJSON(t, ts.URL+"/campaigns/c99", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/campaigns/c99/nodes", nil); code != http.StatusNotFound {
		t.Errorf("unknown campaign nodes: status %d", code)
	}
}

func TestHTTPList(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		c := postCampaign(t, ts, Spec{Seed: int64(i), Nodes: 4, ShardSize: 4, ImageKB: 8, Workers: 1})
		ids = append(ids, c.ID)
	}
	for _, id := range ids {
		if _, err := srv.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	var list []Campaign
	if code := getJSON(t, ts.URL+"/campaigns", &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list) != 3 {
		t.Fatalf("listed %d campaigns", len(list))
	}
	for i, c := range list {
		if want := fmt.Sprintf("c%d", i+1); c.ID != want {
			t.Errorf("list[%d] = %s, want %s", i, c.ID, want)
		}
		if c.Status != StatusDone {
			t.Errorf("campaign %s status %s", c.ID, c.Status)
		}
		if c.Result != nil && c.Result.Nodes != nil {
			t.Error("listing must not carry per-node payloads")
		}
	}
}
