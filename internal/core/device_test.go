package core

import (
	"bytes"
	"math"
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/ble"
	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/radio"
)

func TestSleepPowerMatchesPaper(t *testing.T) {
	// §5.1: measured total system sleep power is 30 µW.
	d := New(Config{ID: 1})
	d.Sleep()
	got := d.SystemPowerW()
	if math.Abs(got-30e-6) > 3e-6 {
		t.Errorf("sleep power = %.1f µW, want 30 ±3", got*1e6)
	}
	if !d.Asleep() {
		t.Error("device not asleep")
	}
}

func TestSleepIsTenThousandTimesBelowSDRs(t *testing.T) {
	// Table 1's headline: 10,000x lower sleep power than existing SDRs
	// (bladeRF 2.0: 717 mW).
	d := New(Config{ID: 1})
	d.Sleep()
	if ratio := 0.717 / d.SystemPowerW(); ratio < 10000 {
		t.Errorf("sleep advantage = %.0fx, want >= 10000x", ratio)
	}
}

func TestWakeTimingTable4(t *testing.T) {
	d := New(Config{ID: 1})
	d.Sleep()
	before := d.Clock.Now()
	wake, err := d.Wake(fpga.LoRaTRXDesign(8))
	if err != nil {
		t.Fatal(err)
	}
	// Table 4: sleep -> radio operation is 22 ms, dominated by FPGA boot.
	if wake < 20*time.Millisecond || wake > 24*time.Millisecond {
		t.Errorf("wake = %v, want ≈22 ms", wake)
	}
	if got := d.Clock.Now() - before; got != wake {
		t.Errorf("clock advanced %v, wake reported %v", got, wake)
	}
	if d.Asleep() {
		t.Error("still asleep after wake")
	}
}

func TestMeasureOperationTimings(t *testing.T) {
	got, err := MeasureOperationTimings()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want time.Duration
		tol       time.Duration
	}{
		{"sleep-to-radio", got.SleepToRadio, 22 * time.Millisecond, 2 * time.Millisecond},
		{"radio-setup", got.RadioSetup, 1200 * time.Microsecond, 0},
		{"tx-to-rx", got.TXToRX, 45 * time.Microsecond, 0},
		{"rx-to-tx", got.RXToTX, 11 * time.Microsecond, 0},
		{"freq-switch", got.FreqSwitch, 220 * time.Microsecond, 0},
	}
	for _, c := range checks {
		diff := c.got - c.want
		if diff < -c.tol || diff > c.tol {
			t.Errorf("%s = %v, want %v (Table 4)", c.name, c.got, c.want)
		}
	}
}

func TestLoRaEndToEndBetweenDevices(t *testing.T) {
	// Two devices over an AWGN link: the full platform path (FPGA modem,
	// radio DAC/ADC, channel) must deliver the payload.
	p := lora.DefaultParams()
	tx := New(Config{ID: 1})
	rx := New(Config{ID: 2})
	if err := tx.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	if err := rx.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello from tinysdr")
	air, err := tx.TransmitLoRa(payload, -13) // the paper's Fig. 10 drive level
	if err != nil {
		t.Fatal(err)
	}
	ch := channel.NewAWGN(1, channel.NoiseFloorDBm(p.BW, radio.NoiseFigureDB))
	pkt, err := rx.ReceiveLoRa(ch.Apply(air, -100))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pkt.Payload, payload) || !pkt.CRCOK {
		t.Fatalf("payload %q crc=%v", pkt.Payload, pkt.CRCOK)
	}
}

func TestLoRaTransmitPowerState(t *testing.T) {
	// §5.2: LoRa TX at 14 dBm draws ≈287 mW system-wide.
	d := New(Config{ID: 1})
	if err := d.ConfigureLoRa(lora.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TransmitLoRa([]byte{1, 2, 3}, 14); err != nil {
		t.Fatal(err)
	}
	got := d.SystemPowerW()
	if got < 0.27 || got > 0.31 {
		t.Errorf("TX system power = %.1f mW, want ≈287", got*1e3)
	}
	// Radio share ≈179 mW.
	if r := d.PMU.Ledger().Power("iq-radio"); r < 0.17 || r > 0.19 {
		t.Errorf("radio share = %.1f mW, want ≈179", r*1e3)
	}
}

func TestLoRaReceivePowerState(t *testing.T) {
	// §5.2: LoRa RX draws ≈186 mW with the radio at 59 mW.
	d := New(Config{ID: 1})
	p := lora.DefaultParams()
	if err := d.ConfigureLoRa(p); err != nil {
		t.Fatal(err)
	}
	tx := New(Config{ID: 2})
	tx.ConfigureLoRa(p)
	air, _ := tx.TransmitLoRa([]byte{1}, 0)
	if _, err := d.ReceiveLoRa(air); err != nil {
		t.Fatal(err)
	}
	got := d.SystemPowerW()
	if got < 0.17 || got > 0.21 {
		t.Errorf("RX system power = %.1f mW, want ≈186", got*1e3)
	}
	if r := d.PMU.Ledger().Power("iq-radio"); math.Abs(r-59e-3) > 1e-3 {
		t.Errorf("radio share = %.1f mW, want 59", r*1e3)
	}
}

func TestBLEBeaconBurstTiming(t *testing.T) {
	d := New(Config{ID: 3})
	if err := d.ConfigureBLE(ble.Beacon{AdvAddress: [6]byte{1, 2, 3, 4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	events, err := d.TransmitBeaconBurst(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	// Fig. 13: inter-beacon gaps within a burst are ≈220 µs (retune) plus
	// the RX/TX turnaround.
	for i := 1; i < 3; i++ {
		gap := events[i].Start - events[i-1].End
		if gap < 220*time.Microsecond || gap > 300*time.Microsecond {
			t.Errorf("gap %d = %v, want ≈220 µs", i, gap)
		}
	}
	// Channels in the advertising order.
	if events[0].Channel.Number != 37 || events[2].Channel.Number != 39 {
		t.Error("wrong channel order")
	}
}

func TestConfigureRequiresAwake(t *testing.T) {
	d := New(Config{ID: 1})
	d.Sleep()
	if err := d.ConfigureLoRa(lora.DefaultParams()); err == nil {
		t.Error("configure while asleep accepted")
	}
	if err := d.ConfigureBLE(ble.Beacon{}); err == nil {
		t.Error("BLE configure while asleep accepted")
	}
}

func TestTransmitRequiresConfiguration(t *testing.T) {
	d := New(Config{ID: 1})
	if _, err := d.TransmitLoRa([]byte{1}, 0); err == nil {
		t.Error("TX without configuration accepted")
	}
	if _, err := d.ReceiveLoRa(nil); err == nil {
		t.Error("RX without configuration accepted")
	}
	if _, err := d.TransmitBeaconBurst(0); err == nil {
		t.Error("beacon without configuration accepted")
	}
}

func TestSDCardRecording(t *testing.T) {
	d := New(Config{ID: 4})
	if _, err := d.RecordSamples(100); err == nil {
		t.Fatal("recording without a card accepted")
	}
	d.AttachSDCard(4 << 20)
	before := d.Clock.Now()
	n, err := d.RecordSamples(400_000) // 0.1 s of the 4 MHz stream
	if err != nil {
		t.Fatal(err)
	}
	if n != 400_000*4 {
		t.Errorf("recorded %d bytes", n)
	}
	if d.SDUsed() != n {
		t.Errorf("card used = %d", d.SDUsed())
	}
	// Real-time capture: the clock advances by the sample duration plus
	// the radio's wake-up (1.2 ms setup from sleep).
	wall := d.Clock.Now() - before
	want := 100 * time.Millisecond
	if wall < want || wall > want+2*time.Millisecond {
		t.Errorf("capture took %v, want ≈%v (real time)", wall, want)
	}
	// Filling the card must fail cleanly.
	if _, err := d.RecordSamples(1 << 20); err == nil {
		t.Error("overflowing capture accepted")
	}
	if _, err := d.RecordSamples(-1); err == nil {
		t.Error("negative capture accepted")
	}
}

func TestDutyCycleEnergyBudget(t *testing.T) {
	// One wake/TX/sleep cycle: the sleep phase must dominate total time
	// but contribute almost no energy — the §5.1 argument for 30 µW.
	d := New(Config{ID: 1})
	d.Sleep()
	d.PMU.Ledger().Reset()
	d.Clock.Advance(10 * time.Second) // sleeping
	sleepEnergy := d.PMU.Ledger().Energy()
	if _, err := d.Wake(fpga.LoRaTRXDesign(8)); err != nil {
		t.Fatal(err)
	}
	if err := d.ConfigureLoRa(lora.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TransmitLoRa(make([]byte, 12), 14); err != nil {
		t.Fatal(err)
	}
	total := d.PMU.Ledger().Energy()
	activeEnergy := total - sleepEnergy
	if sleepEnergy > 0.4e-3 {
		t.Errorf("10 s sleep cost %.2f mJ, want ≈0.3", sleepEnergy*1e3)
	}
	if activeEnergy < 10*sleepEnergy {
		t.Errorf("active energy %.2f mJ not dominant over sleep %.2f mJ", activeEnergy*1e3, sleepEnergy*1e3)
	}
}
