// Package core assembles the tinySDR platform (Fig. 3) from its component
// models: the AT86RF215 I/Q radio, the LFE5U-25F FPGA, the MSP432 MCU, the
// SX1276 OTA backbone, external flash, the RF front ends, and the
// seven-domain power management unit — all sharing one simulated clock and
// one energy ledger.
//
// Device is the object the public tinysdr package wraps: it executes the
// platform's operating procedures (duty-cycled sleep/wake, LoRa TX/RX, BLE
// advertising, OTA reception) with the timing of Table 4 and the power
// behaviour of §5.
package core

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/ble"
	"github.com/uwsdr/tinysdr/internal/flash"
	"github.com/uwsdr/tinysdr/internal/fpga"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/mcu"
	"github.com/uwsdr/tinysdr/internal/ota"
	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/radio"
	"github.com/uwsdr/tinysdr/internal/sim"
)

// Config selects the device identity.
type Config struct {
	// ID is the OTA device address.
	ID uint16
}

// Device is one tinySDR board.
type Device struct {
	Clock    *sim.Clock
	PMU      *power.PMU
	MCU      *mcu.MCU
	FPGA     *fpga.FPGA
	Radio    *radio.AT86RF215
	Backbone *radio.SX1276
	Flash    *flash.Flash
	FE900    *radio.FrontEnd
	FE2400   *radio.FrontEnd
	OTA      *ota.Node

	asleep bool
	sd     *flash.SDCard

	loraParams lora.Params
	loraMod    *lora.Modulator
	loraDemod  *lora.Demodulator

	bleBeacon *ble.Advertiser
}

// New powers up a device: MCU running, radios asleep, FPGA unconfigured —
// the state after a cold boot.
func New(cfg Config) *Device {
	clock := sim.NewClock()
	pmu := power.NewPMU(clock)
	d := &Device{
		Clock:    clock,
		PMU:      pmu,
		MCU:      mcu.New(pmu),
		FPGA:     fpga.New(pmu),
		Radio:    radio.NewAT86RF215(pmu),
		Backbone: radio.NewSX1276(pmu),
		Flash:    flash.New(),
		FE900:    radio.NewSE2435L(pmu),
		FE2400:   radio.NewSKY66112(pmu),
	}
	d.OTA = ota.NewNode(cfg.ID, clock, d.Backbone, d.MCU, d.Flash, d.FPGA)
	return d
}

// Sleep enters the §5.1 deep-sleep state: radios off, FPGA rails gated
// (configuration lost), front ends asleep, MCU in LPM3 with only the wakeup
// timer, PMU domains V2-V7 disabled.
func (d *Device) Sleep() {
	d.Radio.Transition(radio.StateSleep)
	d.Backbone.Transition(radio.StateSleep)
	d.FPGA.PowerOff()
	d.FE900.PowerOff()
	d.FE2400.PowerOff()
	d.MCU.SetState(mcu.StateLPM3)
	d.PMU.Sleep()
	d.asleep = true
}

// Asleep reports whether the device is in deep sleep.
func (d *Device) Asleep() bool { return d.asleep }

// SystemPowerW returns the instantaneous battery draw.
func (d *Device) SystemPowerW() float64 { return d.PMU.Ledger().TotalPower() }

// Wake leaves deep sleep and boots the FPGA with the given design. The I/Q
// radio setup (1.2 ms) runs in parallel with the FPGA's 22 ms flash boot
// (§5.1), so the wake latency is the FPGA configuration time. It returns
// the elapsed wake duration.
func (d *Device) Wake(design *fpga.Design) (time.Duration, error) {
	d.PMU.WakeAll()
	d.MCU.SetState(mcu.StateActive)
	bootTime, err := d.FPGA.Configure(design)
	if err != nil {
		return 0, err
	}
	radioTime, err := d.Radio.Transition(radio.StateTRXOff)
	if err != nil {
		return 0, err
	}
	wake := max(bootTime, radioTime)
	d.Clock.Advance(wake)
	d.asleep = false
	return wake, nil
}

// ConfigureLoRa loads the LoRa transceiver design and instantiates the
// modem for the given parameters. The device must be awake.
func (d *Device) ConfigureLoRa(p lora.Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if d.asleep {
		return fmt.Errorf("core: configure while asleep")
	}
	mod, err := lora.NewModulator(p)
	if err != nil {
		return err
	}
	demod, err := lora.NewDemodulator(p)
	if err != nil {
		return err
	}
	if d.FPGA.State() != fpga.StateRunning || d.FPGA.Design().Name != fpga.LoRaTRXDesign(p.SF).Name {
		boot, err := d.FPGA.Configure(fpga.LoRaTRXDesign(p.SF))
		if err != nil {
			return err
		}
		d.Clock.Advance(boot)
	}
	d.loraParams = p
	d.loraMod = mod
	d.loraDemod = demod
	return nil
}

// LoRaParams returns the configured modem parameters.
func (d *Device) LoRaParams() lora.Params { return d.loraParams }

// TransmitLoRa modulates and transmits one packet at the given output
// power, returning the on-air waveform. The clock advances by the radio
// turnaround and the packet's time on air.
func (d *Device) TransmitLoRa(payload []byte, txPowerDBm float64) (iq.Samples, error) {
	if d.loraMod == nil {
		return nil, fmt.Errorf("core: LoRa not configured")
	}
	if err := d.Radio.SetTXPower(txPowerDBm); err != nil {
		return nil, err
	}
	turn, err := d.Radio.Transition(radio.StateTX)
	if err != nil {
		return nil, err
	}
	d.Clock.Advance(turn)
	// Clock-gate the demodulator half of the TRX image while transmitting.
	if err := d.FPGA.GateTo(fpga.LoRaTXDesign(d.loraParams.SF)); err != nil {
		return nil, err
	}
	bb, err := d.loraMod.Modulate(payload)
	if err != nil {
		return nil, err
	}
	air, err := d.Radio.Transmit(bb)
	if err != nil {
		return nil, err
	}
	d.Clock.Advance(d.loraParams.TimeOnAir(len(payload)))
	return air, nil
}

// ReceiveLoRa captures a waveform through the radio's AGC/ADC chain and
// demodulates it. The clock advances by the capture duration.
func (d *Device) ReceiveLoRa(air iq.Samples) (*lora.Packet, error) {
	if d.loraDemod == nil {
		return nil, fmt.Errorf("core: LoRa not configured")
	}
	turn, err := d.Radio.Transition(radio.StateRX)
	if err != nil {
		return nil, err
	}
	d.Clock.Advance(turn)
	// Clock-gate the modulator half while receiving.
	if err := d.FPGA.GateTo(fpga.LoRaRXDesign(d.loraParams.SF)); err != nil {
		return nil, err
	}
	captured, err := d.Radio.Capture(air)
	if err != nil {
		return nil, err
	}
	d.Clock.Advance(time.Duration(float64(len(air)) / d.loraParams.SampleRate() * float64(time.Second)))
	return d.loraDemod.Receive(captured)
}

// ConfigureBLE loads the BLE beacon design and tunes to the 2.4 GHz band.
func (d *Device) ConfigureBLE(b ble.Beacon) error {
	if d.asleep {
		return fmt.Errorf("core: configure while asleep")
	}
	adv, err := ble.NewAdvertiser(b, 4) // 4 SPS at 1 Mbps = the 4 MHz interface
	if err != nil {
		return err
	}
	if d.FPGA.State() != fpga.StateRunning || d.FPGA.Design().Name != fpga.BLEBeaconDesign().Name {
		boot, err := d.FPGA.Configure(fpga.BLEBeaconDesign())
		if err != nil {
			return err
		}
		d.Clock.Advance(boot)
	}
	if _, err := d.Radio.Transition(radio.StateTRXOff); err != nil {
		return err
	}
	settle, err := d.Radio.SetFrequency(ble.AdvChannels[0].FreqHz)
	if err != nil {
		return err
	}
	d.Clock.Advance(settle)
	d.bleBeacon = adv
	return nil
}

// TransmitBeaconBurst advertises once on all three channels, hopping with
// the radio's 220 µs retune (Fig. 13). It returns the per-channel events
// stamped on the device clock.
func (d *Device) TransmitBeaconBurst(txPowerDBm float64) ([]ble.BeaconEvent, error) {
	if d.bleBeacon == nil {
		return nil, fmt.Errorf("core: BLE not configured")
	}
	if err := d.Radio.SetTXPower(txPowerDBm); err != nil {
		return nil, err
	}
	airTime, err := d.bleBeacon.AirTime()
	if err != nil {
		return nil, err
	}
	var events []ble.BeaconEvent
	for i, ch := range ble.AdvChannels {
		if i > 0 {
			settle, err := d.Radio.SetFrequency(ch.FreqHz)
			if err != nil {
				return nil, err
			}
			d.Clock.Advance(settle)
		}
		turn, err := d.Radio.Transition(radio.StateTX)
		if err != nil {
			return nil, err
		}
		d.Clock.Advance(turn)
		start := d.Clock.Now()
		d.Clock.Advance(airTime)
		events = append(events, ble.BeaconEvent{Channel: ch, Start: start, End: d.Clock.Now()})
		if _, err := d.Radio.Transition(radio.StateTRXOff); err != nil {
			return nil, err
		}
	}
	// Return to the first advertising channel for the next burst.
	settle, err := d.Radio.SetFrequency(ble.AdvChannels[0].FreqHz)
	if err != nil {
		return nil, err
	}
	d.Clock.Advance(settle)
	return events, nil
}

// AttachSDCard mounts a microSD card of the given capacity on the FPGA's
// SPI interface (§3.2.2).
func (d *Device) AttachSDCard(capacityBytes int) {
	d.sd = flash.NewSDCard(capacityBytes)
}

// RecordSamples streams a live I/Q capture to the microSD card in real
// time, as the §3.2.2 design supports: samples pass through the FPGA FIFO
// and out the SPI block at 104 Mbps, which keeps up with the 4 MHz stream.
// The clock advances by the capture duration. It returns the bytes written.
func (d *Device) RecordSamples(n int) (int, error) {
	if d.sd == nil {
		return 0, fmt.Errorf("core: no SD card attached")
	}
	if n <= 0 {
		return 0, fmt.Errorf("core: non-positive capture length %d", n)
	}
	if d.Radio.State() != radio.StateRX {
		turn, err := d.Radio.Transition(radio.StateRX)
		if err != nil {
			return 0, err
		}
		d.Clock.Advance(turn)
	}
	if !flash.CanSustainIQStream() {
		return 0, fmt.Errorf("core: SPI mode cannot sustain the I/Q stream")
	}
	// 26 payload bits per sample, padded to 32-bit words on the card.
	bytes := n * 4
	if err := d.sd.Append(bytes); err != nil {
		return 0, err
	}
	d.Clock.Advance(time.Duration(float64(n) / radio.SampleRate * float64(time.Second)))
	return bytes, nil
}

// SDUsed returns the bytes recorded to the attached card (0 when absent).
func (d *Device) SDUsed() int {
	if d.sd == nil {
		return 0
	}
	return d.sd.Used()
}

// OperationTimings reproduces Table 4 by executing each transition on the
// device and measuring it on the simulated clock.
type OperationTimings struct {
	SleepToRadio time.Duration
	RadioSetup   time.Duration
	TXToRX       time.Duration
	RXToTX       time.Duration
	FreqSwitch   time.Duration
}

// MeasureOperationTimings runs the Table 4 transitions on a scratch device.
func MeasureOperationTimings() (OperationTimings, error) {
	d := New(Config{ID: 0xFFFF})
	var t OperationTimings

	d.Sleep()
	wake, err := d.Wake(fpga.LoRaTRXDesign(8))
	if err != nil {
		return t, err
	}
	t.SleepToRadio = wake
	t.RadioSetup = radio.SetupTime

	if _, err := d.Radio.Transition(radio.StateTX); err != nil {
		return t, err
	}
	t.TXToRX, err = d.Radio.Transition(radio.StateRX)
	if err != nil {
		return t, err
	}
	t.RXToTX, err = d.Radio.Transition(radio.StateTX)
	if err != nil {
		return t, err
	}
	t.FreqSwitch, err = d.Radio.SetFrequency(915e6)
	if err != nil {
		return t, err
	}
	return t, nil
}
