package core
