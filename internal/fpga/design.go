package fpga

import "fmt"

// Module is one synthesized block of a design, with its resource cost.
type Module struct {
	Name      string
	LUTs      int
	BRAMBytes int
}

// Design is a set of modules synthesized into one bitstream.
type Design struct {
	Name    string
	Modules []Module
}

// LUTs returns the design's total logic usage.
func (d *Design) LUTs() int {
	var n int
	for _, m := range d.Modules {
		n += m.LUTs
	}
	return n
}

// BRAMBytes returns the design's total embedded-RAM usage.
func (d *Design) BRAMBytes() int {
	var n int
	for _, m := range d.Modules {
		n += m.BRAMBytes
	}
	return n
}

// UtilizationPct returns LUT utilization as the truncated percentage the
// paper's Table 6 reports.
func (d *Design) UtilizationPct() int { return d.LUTs() * 100 / TotalLUTs }

// Fit checks the design against the LFE5U-25F budgets.
func (d *Design) Fit() error {
	if l := d.LUTs(); l > TotalLUTs {
		return fmt.Errorf("fpga: design %q needs %d LUTs, part has %d", d.Name, l, TotalLUTs)
	}
	if b := d.BRAMBytes(); b > TotalBRAMBytes {
		return fmt.Errorf("fpga: design %q needs %d BRAM bytes, part has %d", d.Name, b, TotalBRAMBytes)
	}
	return nil
}

// Module library. LUT costs are the synthesis results implied by the paper's
// utilization tables: the per-SF FFT costs are fixed by Table 6 once the
// shared datapath blocks are accounted for, the modulator matches the
// SF-independent 976 LUTs (4%), and the BLE chain totals 3%.

// fftLUTs is the Lattice FFT IP cost for a 2^SF-point transform (Table 6:
// RX total minus the 1430-LUT shared receive datapath).
var fftLUTs = map[int]int{
	6:  1226,
	7:  1240,
	8:  1270,
	9:  1312,
	10: 1356,
	11: 1364,
	12: 1388,
}

func mustFFT(sf int) Module {
	l, ok := fftLUTs[sf]
	if !ok {
		panic(fmt.Sprintf("fpga: no FFT core for SF%d", sf))
	}
	return Module{Name: fmt.Sprintf("fft_%dpt", 1<<sf), LUTs: l, BRAMBytes: (1 << sf) * 8}
}

// Shared blocks of the receive datapath (Fig. 6b).
func rxFrontEnd() []Module {
	return []Module{
		{Name: "iq_deserializer", LUTs: 180},
		{Name: "fir_lowpass_14tap", LUTs: 420},
		{Name: "sample_buffer", LUTs: 130, BRAMBytes: 32 * 1024},
	}
}

// Per-configuration decode chain (dechirp reference, multiplier, detector).
func rxChain(sf int) []Module {
	return []Module{
		{Name: "chirp_generator", LUTs: 350, BRAMBytes: 4 * 1024},
		{Name: "complex_multiplier", LUTs: 160},
		{Name: "symbol_detector", LUTs: 190},
		mustFFT(sf),
	}
}

// LoRaTXDesign is the Fig. 6a modulator. Its cost is independent of SF
// (976 LUTs, 4%): the chirp generator's phase accumulator covers all
// spreading factors with no additional logic.
func LoRaTXDesign(sf int) *Design {
	return &Design{
		Name: fmt.Sprintf("lora-tx-sf%d", sf),
		Modules: []Module{
			{Name: "packet_generator", LUTs: 280, BRAMBytes: 2 * 1024},
			{Name: "chirp_generator", LUTs: 350, BRAMBytes: 4 * 1024},
			{Name: "iq_serializer", LUTs: 180},
			{Name: "tx_pll", LUTs: 60},
			{Name: "tx_control", LUTs: 106},
		},
	}
}

// LoRaRXDesign is the Fig. 6b demodulator for one spreading factor
// (Table 6: 2656-2818 LUTs, 10-11%).
func LoRaRXDesign(sf int) *Design {
	d := &Design{Name: fmt.Sprintf("lora-rx-sf%d", sf)}
	d.Modules = append(d.Modules, rxFrontEnd()...)
	d.Modules = append(d.Modules, rxChain(sf)...)
	return d
}

// LoRaTRXDesign combines modulator and demodulator — the image the OTA
// system ships for the LoRa case study (the 99 kB compressed update).
func LoRaTRXDesign(sf int) *Design {
	d := &Design{Name: fmt.Sprintf("lora-trx-sf%d", sf)}
	d.Modules = append(d.Modules, LoRaTXDesign(sf).Modules...)
	d.Modules = append(d.Modules, LoRaRXDesign(sf).Modules...)
	return d
}

// BLEBeaconDesign is the full baseband BLE beacon generator of §4.2
// (3% of the part).
func BLEBeaconDesign() *Design {
	return &Design{
		Name: "ble-beacon",
		Modules: []Module{
			{Name: "pdu_generator", LUTs: 84, BRAMBytes: 256},
			{Name: "crc24_lfsr", LUTs: 60},
			{Name: "whitening_lfsr", LUTs: 45},
			{Name: "gaussian_filter", LUTs: 180},
			{Name: "phase_integrator", LUTs: 60},
			{Name: "sincos_lut", LUTs: 120, BRAMBytes: 4 * 1024},
			{Name: "iq_serializer", LUTs: 180},
		},
	}
}

// SingleToneDesign is the Fig. 8 test modulator: an NCO streaming to the
// LVDS serializer.
func SingleToneDesign() *Design {
	return &Design{
		Name: "single-tone",
		Modules: []Module{
			{Name: "nco", LUTs: 180, BRAMBytes: 4 * 1024},
			{Name: "iq_serializer", LUTs: 180},
			{Name: "tx_control", LUTs: 40},
		},
	}
}

// ConcurrentRXDesign is the §6 research-study image: two parallel decode
// chains behind one shared front end. The second chain time-interleaves its
// butterflies through the first chain's FFT block RAM, saving 541 LUTs
// relative to a standalone core; the total lands at 17% of the part.
func ConcurrentRXDesign(sf1, sf2 int) *Design {
	d := &Design{Name: fmt.Sprintf("lora-concurrent-sf%d-sf%d", sf1, sf2)}
	d.Modules = append(d.Modules, rxFrontEnd()...)
	d.Modules = append(d.Modules, rxChain(sf1)...)
	second := rxChain(sf2)
	fft := &second[len(second)-1]
	fft.Name += "_shared"
	fft.LUTs -= 541
	fft.BRAMBytes = 0 // reuses chain-1 buffers
	d.Modules = append(d.Modules, second...)
	return d
}
