package fpga

import (
	"fmt"

	"github.com/uwsdr/tinysdr/internal/iq"
)

// sampleBytes is the storage cost of one I/Q sample in embedded RAM: two
// 13-bit components padded to 32 bits, matching the LVDS word layout.
const sampleBytes = 4

// FIFO is the embedded-SRAM sample buffer between the I/Q deserializer and
// the signal-processing blocks (§3.2.2). Capacity is bounded by the 126 kB
// of block RAM.
type FIFO struct {
	buf   iq.Samples
	head  int
	count int
}

// NewFIFO returns a FIFO holding capacityBytes of samples. It fails if the
// request exceeds the embedded RAM budget.
func NewFIFO(capacityBytes int) (*FIFO, error) {
	if capacityBytes <= 0 || capacityBytes > TotalBRAMBytes {
		return nil, fmt.Errorf("fpga: FIFO of %d bytes exceeds %d-byte embedded RAM", capacityBytes, TotalBRAMBytes)
	}
	return &FIFO{buf: make(iq.Samples, capacityBytes/sampleBytes)}, nil
}

// Cap returns the capacity in samples.
func (f *FIFO) Cap() int { return len(f.buf) }

// Len returns the number of buffered samples.
func (f *FIFO) Len() int { return f.count }

// Push appends one sample; it reports false on overflow (the hardware
// asserts an overflow flag and drops the sample).
func (f *FIFO) Push(s complex128) bool {
	if f.count == len(f.buf) {
		return false
	}
	f.buf[(f.head+f.count)%len(f.buf)] = s
	f.count++
	return true
}

// PushAll pushes a buffer, returning how many samples fit.
func (f *FIFO) PushAll(s iq.Samples) int {
	for i, x := range s {
		if !f.Push(x) {
			return i
		}
	}
	return len(s)
}

// Pop removes and returns the oldest sample; ok is false when empty.
func (f *FIFO) Pop() (s complex128, ok bool) {
	if f.count == 0 {
		return 0, false
	}
	s = f.buf[f.head]
	f.head = (f.head + 1) % len(f.buf)
	f.count--
	return s, true
}

// PopAll drains the FIFO into a new buffer.
func (f *FIFO) PopAll() iq.Samples {
	out := make(iq.Samples, 0, f.count)
	for {
		s, ok := f.Pop()
		if !ok {
			return out
		}
		out = append(out, s)
	}
}
