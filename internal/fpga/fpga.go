// Package fpga models the Lattice LFE5U-25F on tinySDR: its LUT and
// block-RAM budgets, SRAM-based configuration from external flash over quad
// SPI (the 22 ms boot of Table 4), per-design power draw, and the embedded
// FIFO the sample pipeline uses.
//
// The package also contains the module library whose LUT costs reproduce
// Table 6 (FPGA utilization for the LoRa modem at each spreading factor),
// and a synthetic bitstream generator whose compressibility tracks design
// utilization, which drives the OTA results of §5.3.
package fpga

import (
	"fmt"
	"time"

	"github.com/uwsdr/tinysdr/internal/flash"
	"github.com/uwsdr/tinysdr/internal/power"
)

// LFE5U-25F budgets.
const (
	// TotalLUTs is the logic capacity of the LFE5U-25F (24 k logic units).
	TotalLUTs = 24288
	// TotalBRAMBytes is the embedded SRAM: 1008 Kb = 126 kB, the paper's
	// "SRAM can buffer up to 126 kB".
	TotalBRAMBytes = 126 * 1024
	// BitstreamSize is the raw configuration image size: 579 kB (§3.1.2).
	BitstreamSize = 579 * 1024
	// PLLClockHz is the transmit clock the FPGA's PLL generates for the
	// LVDS double-data-rate interface.
	PLLClockHz = 64e6
)

// configInitOverhead is configuration logic time beyond the quad-SPI read;
// together they give the 22 ms boot the paper measures.
const configInitOverhead = 3100 * time.Microsecond

// Power model, calibrated jointly with the radio and MCU models against the
// paper's end-to-end measurements (Fig. 9 and §5.2):
//   - staticPowerW covers core leakage, the LVDS I/O bank, PLL and clock
//     tree of a configured, clocked device.
//   - dynamicPowerPerLUT scales with occupied logic; the 21 mW gap the
//     paper reports between single (11%) and concurrent (17%) LoRa
//     demodulation fixes it at ≈14.7 µW/LUT.
const (
	staticPowerW       = 66e-3
	dynamicPowerPerLUT = 14.7e-6
	configPowerW       = 25e-3
)

// State is the FPGA operating state.
type State int

const (
	// StateOff means the V2/V3/V4 rails are gated; SRAM configuration is
	// lost, which is why wake-up requires a flash reboot.
	StateOff State = iota
	// StateConfiguring means the device is self-loading from flash.
	StateConfiguring
	// StateRunning means a design is loaded and clocked.
	StateRunning
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateConfiguring:
		return "configuring"
	case StateRunning:
		return "running"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// FPGA is one LFE5U-25F instance.
type FPGA struct {
	sink       power.Sink
	state      State
	design     *Design
	activeLUTs int
}

// New returns a powered-off FPGA reporting power to sink.
func New(sink power.Sink) *FPGA {
	f := &FPGA{sink: sink}
	f.sink.SetPower("fpga", 0)
	return f
}

// State returns the current state.
func (f *FPGA) State() State { return f.state }

// Design returns the loaded design, or nil when unconfigured.
func (f *FPGA) Design() *Design {
	if f.state != StateRunning {
		return nil
	}
	return f.design
}

// ConfigTime is the boot duration: the quad-SPI bitstream read plus
// configuration logic overhead. With the real image size this is ≈22 ms,
// Table 4's "Sleep to Radio Operation" dominator.
func ConfigTime() time.Duration {
	return flash.QuadReadTime(BitstreamSize) + configInitOverhead
}

// Configure loads a design, checking its resource demands against the part.
// It returns the boot duration; the caller owns advancing the simulation
// clock (models never advance time themselves).
func (f *FPGA) Configure(d *Design) (time.Duration, error) {
	if d == nil {
		return 0, fmt.Errorf("fpga: nil design")
	}
	if err := d.Fit(); err != nil {
		return 0, err
	}
	f.state = StateRunning
	f.design = d
	f.activeLUTs = d.LUTs()
	f.refreshPower()
	return ConfigTime(), nil
}

func (f *FPGA) refreshPower() {
	f.sink.SetPower("fpga", staticPowerW+float64(f.activeLUTs)*dynamicPowerPerLUT)
}

// GateTo clock-gates the configured design down to the subset of logic the
// given sub-design represents, so only the active datapath draws dynamic
// power (e.g. the modulator chain during transmit while the demodulator
// sits idle). Passing nil restores the full design.
func (f *FPGA) GateTo(sub *Design) error {
	if f.state != StateRunning {
		return fmt.Errorf("fpga: gate while %v", f.state)
	}
	if sub == nil {
		f.activeLUTs = f.design.LUTs()
	} else {
		if sub.LUTs() > f.design.LUTs() {
			return fmt.Errorf("fpga: gated subset %q (%d LUTs) exceeds design %q (%d LUTs)",
				sub.Name, sub.LUTs(), f.design.Name, f.design.LUTs())
		}
		f.activeLUTs = sub.LUTs()
	}
	f.refreshPower()
	return nil
}

// PowerOff gates the FPGA rails. The configuration is lost (SRAM part).
func (f *FPGA) PowerOff() {
	f.state = StateOff
	f.design = nil
	f.sink.SetPower("fpga", 0)
}

// PowerW returns the draw of a configured device running design d; it is
// exposed for the evaluation harness's power breakdowns.
func PowerW(d *Design) float64 {
	return staticPowerW + float64(d.LUTs())*dynamicPowerPerLUT
}
