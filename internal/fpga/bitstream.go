package fpga

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
)

// Synthetic bitstream generation. We cannot ship Lattice's proprietary
// images, so the generator builds 579 kB configuration files whose
// *compressibility structure* matches real ECP5 images:
//
//   - a global configuration region that every design carries (I/O banks,
//     the LVDS interface, clock tree, PLL dividers) — high-entropy and
//     roughly constant;
//   - per-LUT configuration frames for mapped logic — high-entropy, in
//     proportion to design utilization;
//   - unused frames — zeros, which LZO collapses.
//
// The region sizes are calibrated against the paper's §5.3 measurements
// (LoRa image compresses 579→99 kB at ~15% utilization, BLE 579→40 kB at
// 3%), giving intercept ≈27 kB and slope ≈475 kB per unit utilization.
const (
	globalConfigBytes = 23 * 1024
	bytesPerUtilUnit  = 451 * 1024
	frameSize         = 128
	framePayload      = frameSize - 4
	bodyStart         = 32 * 1024
)

// SynthBitstream generates the configuration image for a design. The same
// design always yields the same image (seeded by design name), so OTA
// transfers are reproducible.
func SynthBitstream(d *Design) []byte {
	img := make([]byte, BitstreamSize)
	h := fnv.New64a()
	h.Write([]byte(d.Name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	// Preamble: device ID and image header.
	copy(img, []byte("LFE5U-25F-6BG256C\x00BITSTREAM\x00"))
	binary.LittleEndian.PutUint32(img[28:], uint32(d.LUTs()))

	// Global configuration region: always-present high-entropy content.
	rng.Read(img[64 : 64+globalConfigBytes])

	// Logic frames: utilization-proportional high-entropy frames spread
	// evenly across the frame space; everything else stays zero.
	util := float64(d.LUTs()) / float64(TotalLUTs)
	usedBytes := int(util * bytesPerUtilUnit)
	usedFrames := usedBytes / framePayload
	totalFrames := (BitstreamSize - bodyStart) / frameSize
	if usedFrames > totalFrames {
		usedFrames = totalFrames
	}
	if usedFrames > 0 {
		stride := float64(totalFrames) / float64(usedFrames)
		for k := 0; k < usedFrames; k++ {
			fi := int(float64(k) * stride)
			off := bodyStart + fi*frameSize
			img[off] = 0xA5
			img[off+1] = byte(fi >> 8)
			img[off+2] = byte(fi)
			img[off+3] = byte(fi>>8) ^ byte(fi) ^ 0xA5
			rng.Read(img[off+4 : off+frameSize])
		}
	}
	return img
}

// SynthMCUFirmware generates a synthetic MSP432 firmware image of the given
// size, structured like real Cortex-M binaries: a vector table, a code
// region of repetitive opcode patterns, a high-entropy literal/data pool,
// and a zero-filled tail. The mix is calibrated to the paper's 78→24 kB
// compression result (§5.3).
func SynthMCUFirmware(size int, seed int64) []byte {
	img := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))

	// Vector table: 64 word-aligned handler addresses in a narrow range.
	for i := 0; i < 64 && i*4+4 <= size; i++ {
		binary.LittleEndian.PutUint32(img[i*4:], 0x01000000|uint32(rng.Intn(1<<16))<<2|1)
	}

	// Code region (~64% of the image): compiled code is dominated by
	// repeated idioms (prologues, epilogues, call sequences); model it as
	// draws from a pool of pre-generated basic blocks so LZ finds long
	// matches, as it does on real binaries.
	codeEnd := size * 64 / 100
	blocks := make([][]byte, 48)
	for i := range blocks {
		b := make([]byte, 48+rng.Intn(96))
		rng.Read(b)
		blocks[i] = b
	}
	for off := 256; off < codeEnd; {
		b := blocks[rng.Intn(len(blocks))]
		n := copy(img[off:min(off+len(b), codeEnd)], b)
		off += n
	}

	// Literal pool / calibration tables (~22%): high entropy.
	poolEnd := size * 86 / 100
	rng.Read(img[codeEnd:poolEnd])

	// The rest stays zero (.bss template / padding).
	return img
}
