package fpga

import (
	"bytes"
	"testing"

	"github.com/uwsdr/tinysdr/internal/lzo"
)

func TestBitstreamSizeAndDeterminism(t *testing.T) {
	d := LoRaTRXDesign(8)
	a := SynthBitstream(d)
	if len(a) != BitstreamSize {
		t.Fatalf("bitstream size = %d, want %d", len(a), BitstreamSize)
	}
	b := SynthBitstream(d)
	if !bytes.Equal(a, b) {
		t.Error("bitstream generation not deterministic")
	}
	// Different designs give different images.
	c := SynthBitstream(BLEBeaconDesign())
	if bytes.Equal(a, c) {
		t.Error("distinct designs produced identical bitstreams")
	}
}

func TestBitstreamCompressionMatchesPaper(t *testing.T) {
	// §5.3: the LoRa image compresses to ≈99 kB, the BLE image to ≈40 kB.
	// Accept ±15% — the paper itself notes the ratio varies with content.
	cases := []struct {
		design *Design
		wantKB float64
	}{
		{LoRaTRXDesign(8), 99},
		{BLEBeaconDesign(), 40},
	}
	for _, c := range cases {
		img := SynthBitstream(c.design)
		blocks := lzo.CompressBlocks(img, 30*1024)
		gotKB := float64(lzo.CompressedSize(blocks)) / 1024
		if gotKB < c.wantKB*0.85 || gotKB > c.wantKB*1.15 {
			t.Errorf("%s: compressed = %.1f kB, want %.0f ±15%%", c.design.Name, gotKB, c.wantKB)
		}
		// And the blocks must reassemble exactly.
		back, err := lzo.DecompressBlocks(blocks)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, img) {
			t.Fatalf("%s: image corrupted by block pipeline", c.design.Name)
		}
	}
}

func TestBitstreamCompressionMonotonicInUtilization(t *testing.T) {
	// More logic -> bigger compressed image.
	small := lzo.CompressedSize(lzo.CompressBlocks(SynthBitstream(SingleToneDesign()), 30*1024))
	mid := lzo.CompressedSize(lzo.CompressBlocks(SynthBitstream(LoRaRXDesign(8)), 30*1024))
	big := lzo.CompressedSize(lzo.CompressBlocks(SynthBitstream(ConcurrentRXDesign(8, 8)), 30*1024))
	if !(small < mid && mid < big) {
		t.Errorf("compressed sizes not monotonic: %d, %d, %d", small, mid, big)
	}
}

func TestMCUFirmwareCompressionMatchesPaper(t *testing.T) {
	// §5.3: 78 kB MCU programs compress to ≈24 kB.
	img := SynthMCUFirmware(78*1024, 42)
	if len(img) != 78*1024 {
		t.Fatalf("firmware size = %d", len(img))
	}
	blocks := lzo.CompressBlocks(img, 30*1024)
	gotKB := float64(lzo.CompressedSize(blocks)) / 1024
	if gotKB < 24*0.8 || gotKB > 24*1.2 {
		t.Errorf("MCU firmware compressed = %.1f kB, want 24 ±20%%", gotKB)
	}
}

func TestMCUFirmwareDeterministicBySeed(t *testing.T) {
	a := SynthMCUFirmware(4096, 7)
	b := SynthMCUFirmware(4096, 7)
	if !bytes.Equal(a, b) {
		t.Error("firmware not deterministic")
	}
	if bytes.Equal(a, SynthMCUFirmware(4096, 8)) {
		t.Error("different seeds identical")
	}
}
