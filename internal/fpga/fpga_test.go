package fpga

import (
	"testing"
	"time"

	"github.com/uwsdr/tinysdr/internal/power"
	"github.com/uwsdr/tinysdr/internal/sim"
)

func TestTable6LoRaRXUtilization(t *testing.T) {
	// Table 6 ground truth: LUTs and truncated percentages per SF.
	want := map[int]struct{ luts, pct int }{
		6:  {2656, 10},
		7:  {2670, 10},
		8:  {2700, 11},
		9:  {2742, 11},
		10: {2786, 11},
		11: {2794, 11},
		12: {2818, 11},
	}
	for sf, w := range want {
		d := LoRaRXDesign(sf)
		if got := d.LUTs(); got != w.luts {
			t.Errorf("SF%d RX LUTs = %d, want %d", sf, got, w.luts)
		}
		if got := d.UtilizationPct(); got != w.pct {
			t.Errorf("SF%d RX utilization = %d%%, want %d%%", sf, got, w.pct)
		}
	}
}

func TestTable6LoRaTXUtilization(t *testing.T) {
	for sf := 6; sf <= 12; sf++ {
		d := LoRaTXDesign(sf)
		if got := d.LUTs(); got != 976 {
			t.Errorf("SF%d TX LUTs = %d, want 976 (SF-independent)", sf, got)
		}
		if got := d.UtilizationPct(); got != 4 {
			t.Errorf("SF%d TX utilization = %d%%, want 4%%", sf, got)
		}
	}
}

func TestBLEDesignUtilization(t *testing.T) {
	d := BLEBeaconDesign()
	if got := d.UtilizationPct(); got != 3 {
		t.Errorf("BLE utilization = %d%% (%d LUTs), want 3%%", got, d.LUTs())
	}
}

func TestConcurrentDesignUtilization(t *testing.T) {
	// §6: parallel demodulation of two configurations uses 17%.
	d := ConcurrentRXDesign(8, 8)
	if got := d.UtilizationPct(); got != 17 {
		t.Errorf("concurrent utilization = %d%% (%d LUTs), want 17%%", got, d.LUTs())
	}
}

func TestDesignsLeaveRoomForCustomLogic(t *testing.T) {
	// The paper's point: even RX+TX together leave most of the part free.
	d := LoRaTRXDesign(12)
	if err := d.Fit(); err != nil {
		t.Fatal(err)
	}
	if free := TotalLUTs - d.LUTs(); free < TotalLUTs/2 {
		t.Errorf("only %d LUTs free after LoRa TRX", free)
	}
}

func TestFitRejectsOversizedDesign(t *testing.T) {
	d := &Design{Name: "huge", Modules: []Module{{Name: "blob", LUTs: TotalLUTs + 1}}}
	if err := d.Fit(); err == nil {
		t.Error("oversized design accepted")
	}
	d2 := &Design{Name: "ram-hog", Modules: []Module{{Name: "buf", LUTs: 10, BRAMBytes: TotalBRAMBytes + 1}}}
	if err := d2.Fit(); err == nil {
		t.Error("RAM-oversized design accepted")
	}
}

func TestConfigureLifecycle(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	f := New(p)
	if f.State() != StateOff {
		t.Fatal("FPGA must start off")
	}
	if f.Design() != nil {
		t.Fatal("no design when off")
	}
	d, err := f.Configure(LoRaRXDesign(8))
	if err != nil {
		t.Fatal(err)
	}
	// Table 4: boot is 22 ms.
	if d < 20*time.Millisecond || d > 24*time.Millisecond {
		t.Errorf("config time = %v, want ≈22 ms", d)
	}
	if f.State() != StateRunning || f.Design() == nil {
		t.Error("FPGA not running after configure")
	}
	f.PowerOff()
	if f.State() != StateOff || f.Design() != nil {
		t.Error("SRAM FPGA must lose its design on power-off")
	}
}

func TestConfigureRejectsNilAndOversized(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	f := New(p)
	if _, err := f.Configure(nil); err == nil {
		t.Error("nil design accepted")
	}
	huge := &Design{Name: "huge", Modules: []Module{{Name: "x", LUTs: TotalLUTs * 2}}}
	if _, err := f.Configure(huge); err == nil {
		t.Error("oversized design accepted")
	}
	if f.State() != StateOff {
		t.Error("failed configure must leave FPGA off")
	}
}

func TestPowerScalesWithUtilization(t *testing.T) {
	p := power.NewPMU(sim.NewClock())
	f := New(p)
	f.Configure(SingleToneDesign())
	tone := p.Ledger().Power("fpga")
	f.Configure(ConcurrentRXDesign(8, 8))
	conc := p.Ledger().Power("fpga")
	if conc <= tone {
		t.Errorf("concurrent draw %v <= tone draw %v", conc, tone)
	}
	// §5.2/§6 calibration: the gap between single RX (11%) and concurrent
	// (17%) should be ≈21 mW.
	f.Configure(LoRaRXDesign(8))
	single := p.Ledger().Power("fpga")
	gap := conc - single
	if gap < 15e-3 || gap > 27e-3 {
		t.Errorf("concurrent - single gap = %v W, want ≈21 mW", gap)
	}
	f.PowerOff()
	if got := p.Ledger().Power("fpga"); got != 0 {
		t.Errorf("off draw = %v, want 0", got)
	}
}

func TestFIFO(t *testing.T) {
	f, err := NewFIFO(64)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cap() != 16 {
		t.Fatalf("cap = %d samples, want 16", f.Cap())
	}
	for i := 0; i < 16; i++ {
		if !f.Push(complex(float64(i), 0)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if f.Push(99) {
		t.Error("overflow push succeeded")
	}
	if f.Len() != 16 {
		t.Errorf("len = %d", f.Len())
	}
	for i := 0; i < 16; i++ {
		s, ok := f.Pop()
		if !ok || real(s) != float64(i) {
			t.Fatalf("pop %d = %v, %v", i, s, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Error("pop from empty succeeded")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f, _ := NewFIFO(16) // 4 samples
	for round := 0; round < 10; round++ {
		f.Push(complex(float64(round), 0))
		s, ok := f.Pop()
		if !ok || real(s) != float64(round) {
			t.Fatalf("round %d: %v %v", round, s, ok)
		}
	}
}

func TestFIFOPushAllPopAll(t *testing.T) {
	f, _ := NewFIFO(16)
	n := f.PushAll(make([]complex128, 10))
	if n != 4 {
		t.Errorf("PushAll accepted %d, want 4", n)
	}
	if got := f.PopAll(); len(got) != 4 {
		t.Errorf("PopAll returned %d", len(got))
	}
}

func TestFIFOBudget(t *testing.T) {
	if _, err := NewFIFO(TotalBRAMBytes + 1); err == nil {
		t.Error("FIFO beyond embedded RAM accepted")
	}
	if _, err := NewFIFO(0); err == nil {
		t.Error("zero FIFO accepted")
	}
	// The paper's 126 kB maximum buffer must be constructible.
	f, err := NewFIFO(TotalBRAMBytes)
	if err != nil {
		t.Fatal(err)
	}
	if f.Cap() != TotalBRAMBytes/4 {
		t.Errorf("max FIFO = %d samples", f.Cap())
	}
}

func TestStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateOff.String() != "off" || StateConfiguring.String() != "configuring" {
		t.Error("state names wrong")
	}
}

func TestBRAMAccounting(t *testing.T) {
	d := LoRaRXDesign(12)
	if d.BRAMBytes() <= 0 {
		t.Error("RX design must use block RAM")
	}
	if err := d.Fit(); err != nil {
		t.Errorf("SF12 RX must fit: %v", err)
	}
}
