package sim

import (
	"testing"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock must start at 0")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(22 * time.Microsecond)
	if got := c.Now(); got != 5*time.Millisecond+22*time.Microsecond {
		t.Errorf("Now() = %v", got)
	}
}

func TestClockRejectsNegative(t *testing.T) {
	c := NewClock()
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance must panic")
		}
	}()
	c.Advance(-time.Nanosecond)
}

func TestClockAdvanceToRejectsPast(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past must panic")
		}
	}()
	c.AdvanceTo(time.Millisecond)
}

func TestSchedulerOrdering(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	var order []int
	s.At(30*time.Microsecond, func() { order = append(order, 3) })
	s.At(10*time.Microsecond, func() { order = append(order, 1) })
	s.At(20*time.Microsecond, func() { order = append(order, 2) })
	s.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v", order)
	}
	if c.Now() != 30*time.Microsecond {
		t.Errorf("clock = %v, want 30us", c.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler(NewClock())
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.At(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestSchedulerSelfReschedule(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.After(time.Second, tick)
		}
	}
	s.After(time.Second, tick)
	s.Run(100)
	if count != 5 {
		t.Errorf("ticks = %d, want 5", count)
	}
	if c.Now() != 5*time.Second {
		t.Errorf("clock = %v, want 5s", c.Now())
	}
}

func TestSchedulerRunBound(t *testing.T) {
	s := NewScheduler(NewClock())
	var loop func()
	loop = func() { s.After(time.Nanosecond, loop) }
	s.After(time.Nanosecond, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("runaway loop must panic")
		}
	}()
	s.Run(50)
}

func TestSchedulerRejectsPast(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	s := NewScheduler(c)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past must panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestRunUntil(t *testing.T) {
	c := NewClock()
	s := NewScheduler(c)
	ran := 0
	s.At(time.Second, func() { ran++ })
	s.At(3*time.Second, func() { ran++ })
	s.RunUntil(2 * time.Second)
	if ran != 1 {
		t.Errorf("ran %d events, want 1", ran)
	}
	if c.Now() != 2*time.Second {
		t.Errorf("clock = %v, want 2s", c.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d, want 1", s.Pending())
	}
}
