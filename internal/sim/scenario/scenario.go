package scenario

// Scenario wiring: this file turns a compact textual spec (the CLI's
// -scenario flag) plus a link description into a composed channel.Scenario,
// running any registered PHY's live modulator (internal/phy) to synthesize
// co-channel interference. It lives in sim rather than channel so the
// channel engine stays free of protocol dependencies.

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/uwsdr/tinysdr/internal/ble"
	"github.com/uwsdr/tinysdr/internal/channel"
	"github.com/uwsdr/tinysdr/internal/dsp"
	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/phy"
)

// SpeedOfLight is used to convert mobility speed to Doppler shift.
const SpeedOfLight = 299792458.0

// DopplerHz returns the carrier shift for a radial speed (positive speed =
// receding = negative shift).
func DopplerHz(speedMPS, carrierHz float64) float64 {
	return -speedMPS / SpeedOfLight * carrierHz
}

// Resample converts sig from srcRate to dstRate by linear interpolation,
// low-pass filtering first when decimating so out-of-band energy does not
// alias into the destination band. It is a scenario-construction helper,
// not a hot-path primitive.
func Resample(sig iq.Samples, srcRate, dstRate float64) iq.Samples {
	if len(sig) == 0 || srcRate <= 0 || dstRate <= 0 || srcRate == dstRate {
		return sig.Clone()
	}
	src := sig
	if dstRate < srcRate {
		src = dsp.NewLowpass(63, 0.45*dstRate/srcRate).Filter(sig)
	}
	n := int(float64(len(sig)) * dstRate / srcRate)
	if n < 1 {
		n = 1
	}
	out := make(iq.Samples, n)
	ratio := srcRate / dstRate
	for i := range out {
		pos := float64(i) * ratio
		i0 := int(pos)
		if i0 >= len(src)-1 {
			out[i] = src[len(src)-1]
			continue
		}
		frac := pos - float64(i0)
		out[i] = src[i0]*complex(1-frac, 0) + src[i0+1]*complex(frac, 0)
	}
	return out
}

// LoRaInterfererWaveform modulates one packet from a live LoRa modulator
// and resamples it to the victim link's rate.
func LoRaInterfererWaveform(p lora.Params, payload []byte, dstRate float64) (iq.Samples, error) {
	mod, err := lora.NewModulator(p)
	if err != nil {
		return nil, err
	}
	sig, err := mod.Modulate(payload)
	if err != nil {
		return nil, err
	}
	return Resample(sig, p.SampleRate(), dstRate), nil
}

// BLEInterfererWaveform modulates one advertising beacon from a live GFSK
// modulator and resamples it to the victim link's rate.
func BLEInterfererWaveform(b ble.Beacon, sps, advChannel int, dstRate float64) (iq.Samples, error) {
	mod, err := ble.NewModulator(sps)
	if err != nil {
		return nil, err
	}
	sig, err := mod.ModulateBeacon(b, advChannel)
	if err != nil {
		return nil, err
	}
	return Resample(sig, mod.SampleRate(), dstRate), nil
}

// interfererPayload is the canonical payload every registered PHY
// modulates for its interference waveform. The LoRa kind keeps the 6-byte
// packet it has always injected (same on-air length and symbol content as
// the PR-3 waveform; the committed coexistence numbers were re-measured
// for PR 4's radio-profile fix regardless), newer kinds share a readable
// canonical payload.
func interfererPayload(kind string) []byte {
	if kind == "lora" {
		return []byte{0xC0, 0xEE, 0x57, 0xA7, 0x10, 0x4E}
	}
	return []byte("tinysdr-coex")
}

// DefaultInterfererWaveform builds the canonical interference waveform for
// any registered PHY at the link rate: the protocol's registry modem
// transmits the canonical payload and the result is resampled to the
// victim rate. It is the single definition shared by Spec.Build and the
// eval coexistence sweep, so the CLI's -scenario interference and the
// committed sweep curves never diverge.
func DefaultInterfererWaveform(kind string, dstRate float64) (iq.Samples, error) {
	m, err := phy.New(kind)
	if err != nil {
		return nil, fmt.Errorf("sim: interferer: %w", err)
	}
	sig, err := m.ModulateInto(nil, interfererPayload(kind))
	if err != nil {
		return nil, fmt.Errorf("sim: interferer %s: %w", kind, err)
	}
	return Resample(sig, m.SampleRate(), dstRate), nil
}

// Link describes the victim link a scenario is built for.
type Link struct {
	// SampleRate is the victim receiver's baseband rate.
	SampleRate float64
	// RSSIdBm is the mean received signal power for static links.
	RSSIdBm float64
	// FloorDBm is the integrated receiver noise floor.
	FloorDBm float64
	// CarrierHz converts mobility speed to Doppler (default 915 MHz).
	CarrierHz float64
	// PathModel, TxPowerDBm, TxGainDB and StartM describe the trajectory
	// for mobile scenarios (SpeedMPS > 0 in the spec, or a moving
	// endpoint with speed 0 standing still inside a shadowed field).
	PathModel  channel.LogDistance
	TxPowerDBm float64
	TxGainDB   float64
	StartM     float64
	// InterfererWave, when non-nil, is a prebuilt interference waveform
	// already at SampleRate; Build uses it instead of synthesizing
	// DefaultInterfererWaveform, so sweeps can modulate and resample the
	// source once and share it read-only across trials.
	InterfererWave iq.Samples
}

// Spec is the parsed form of a -scenario string: which impairments
// to compose, independent of any one link's rates and budgets.
type Spec struct {
	// FadingKind is "", "rayleigh" or "rician".
	FadingKind string
	// FadingKdB is the Rician K factor in dB.
	FadingKdB float64
	// FadingTaps / FadingSpacing / FadingDecayDB shape the delay profile;
	// one tap means flat fading.
	FadingTaps    int
	FadingSpacing int
	FadingDecayDB float64

	// CFOHz, CFOJitterHz and DriftPPM configure the oscillator stage.
	CFOHz       float64
	CFOJitterHz float64
	DriftPPM    float64

	// Interferer is "" or any registered PHY name (phy.Names());
	// InterfererDBm its received power; InterfererFreqHz its carrier
	// offset from the victim.
	Interferer       string
	InterfererDBm    float64
	InterfererFreqHz float64

	// DropoutProb is the per-trial probability of an RX dropout burst;
	// DropoutDepthDB its attenuation (0 means the stage default).
	DropoutProb    float64
	DropoutDepthDB float64

	// SpeedMPS selects a mobile trajectory: Doppler on the CFO stage and
	// per-packet path-loss ramping through Link.PathModel.
	SpeedMPS float64

	// Mobile forces the Mobility stage even at speed 0 (static endpoint
	// in a shadowed log-distance field).
	Mobile bool
}

// Parse parses the compact comma-separated scenario grammar:
//
//	fading=rayleigh[:taps] | fading=rician:KdB[:taps]
//	cfo=HZ  cfojitter=HZ  drift=PPM
//	interferer=KIND:DBM[:FREQHZ]   (KIND: any registered PHY — phy.Names())
//	dropout=PROB[:DEPTHDB]
//	speed=MPS  mobile
//
// e.g. "fading=rician:10,cfo=200,drift=20,interferer=lora:-110".
func Parse(s string) (*Spec, error) {
	spec := &Spec{FadingTaps: 1, FadingSpacing: 1, FadingDecayDB: 6}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, _ := strings.Cut(part, "=")
		args := strings.Split(val, ":")
		num := func(i int) (float64, error) {
			if i >= len(args) || args[i] == "" {
				return 0, fmt.Errorf("sim: scenario term %q missing argument %d", part, i+1)
			}
			return strconv.ParseFloat(args[i], 64)
		}
		// Trailing arguments are rejected, not dropped: a user guessing
		// at the grammar must get an error, never a silently different
		// channel.
		atMost := func(n int) error {
			if len(args) > n {
				return fmt.Errorf("sim: scenario term %q has %d arguments, at most %d allowed", part, len(args), n)
			}
			return nil
		}
		var err error
		switch key {
		case "fading":
			spec.FadingKind = args[0]
			switch args[0] {
			case "rayleigh":
				if err = atMost(2); err == nil && len(args) > 1 {
					var taps float64
					if taps, err = num(1); err == nil {
						spec.FadingTaps = int(taps)
					}
				}
			case "rician":
				if err = atMost(3); err != nil {
					break
				}
				if spec.FadingKdB, err = num(1); err == nil && len(args) > 2 {
					var taps float64
					if taps, err = num(2); err == nil {
						spec.FadingTaps = int(taps)
					}
				}
			default:
				err = fmt.Errorf("sim: unknown fading kind %q", args[0])
			}
		case "cfo":
			if err = atMost(1); err == nil {
				spec.CFOHz, err = num(0)
			}
		case "cfojitter":
			if err = atMost(1); err == nil {
				spec.CFOJitterHz, err = num(0)
			}
		case "drift":
			if err = atMost(1); err == nil {
				spec.DriftPPM, err = num(0)
			}
		case "interferer":
			spec.Interferer = args[0]
			if !phy.Registered(spec.Interferer) {
				err = fmt.Errorf("sim: unknown interferer kind %q (registered: %v)", args[0], phy.Names())
				break
			}
			if err = atMost(3); err != nil {
				break
			}
			if spec.InterfererDBm, err = num(1); err == nil && len(args) > 2 {
				spec.InterfererFreqHz, err = num(2)
			}
		case "dropout":
			if err = atMost(2); err != nil {
				break
			}
			if spec.DropoutProb, err = num(0); err != nil {
				break
			}
			if spec.DropoutProb < 0 || spec.DropoutProb > 1 {
				err = fmt.Errorf("sim: dropout probability %g outside [0, 1]", spec.DropoutProb)
				break
			}
			if len(args) > 1 {
				if spec.DropoutDepthDB, err = num(1); err == nil && spec.DropoutDepthDB <= 0 {
					err = fmt.Errorf("sim: dropout depth %g dB must be positive", spec.DropoutDepthDB)
				}
			}
		case "speed":
			if err = atMost(1); err == nil {
				spec.SpeedMPS, err = num(0)
			}
		case "mobile":
			// A bare flag: reject values so "mobile=false" cannot
			// silently enable it.
			if val != "" {
				err = fmt.Errorf("sim: mobile takes no argument")
				break
			}
			spec.Mobile = true
		default:
			err = fmt.Errorf("sim: unknown scenario term %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("sim: bad scenario term %q: %w", part, err)
		}
	}
	return spec, nil
}

// String renders the spec back into the Parse grammar.
func (s *Spec) String() string {
	var parts []string
	switch s.FadingKind {
	case "rayleigh":
		parts = append(parts, fmt.Sprintf("fading=rayleigh:%d", s.FadingTaps))
	case "rician":
		parts = append(parts, fmt.Sprintf("fading=rician:%g:%d", s.FadingKdB, s.FadingTaps))
	}
	if s.CFOHz != 0 {
		parts = append(parts, fmt.Sprintf("cfo=%g", s.CFOHz))
	}
	if s.CFOJitterHz != 0 {
		parts = append(parts, fmt.Sprintf("cfojitter=%g", s.CFOJitterHz))
	}
	if s.DriftPPM != 0 {
		parts = append(parts, fmt.Sprintf("drift=%g", s.DriftPPM))
	}
	if s.Interferer != "" {
		parts = append(parts, fmt.Sprintf("interferer=%s:%g:%g", s.Interferer, s.InterfererDBm, s.InterfererFreqHz))
	}
	if s.DropoutProb != 0 {
		if s.DropoutDepthDB != 0 {
			parts = append(parts, fmt.Sprintf("dropout=%g:%g", s.DropoutProb, s.DropoutDepthDB))
		} else {
			parts = append(parts, fmt.Sprintf("dropout=%g", s.DropoutProb))
		}
	}
	if s.SpeedMPS != 0 {
		parts = append(parts, fmt.Sprintf("speed=%g", s.SpeedMPS))
	}
	if s.Mobile {
		parts = append(parts, "mobile")
	}
	if len(parts) == 0 {
		return "clean"
	}
	return strings.Join(parts, ",")
}

// Build composes the spec into a channel scenario for one link. The stage
// order is the physical path: link budget (Gain, or Mobility for moving
// endpoints), fading, oscillator CFO/drift (plus Doppler at speed), live
// interference, then receiver noise.
func (s *Spec) Build(link Link) (*channel.Scenario, error) {
	if link.SampleRate <= 0 {
		return nil, fmt.Errorf("sim: scenario link needs a sample rate")
	}
	carrier := link.CarrierHz
	if carrier == 0 {
		carrier = 915e6
	}
	var stages []channel.Stage

	if s.SpeedMPS != 0 || s.Mobile {
		model := link.PathModel
		if model.FreqHz == 0 {
			model = channel.LogDistance{FreqHz: carrier, Exponent: 2.9}
		}
		start := link.StartM
		if start <= 0 {
			start = 1
		}
		stages = append(stages, channel.NewMobility(model, link.TxPowerDBm,
			link.TxGainDB, 0, start, s.SpeedMPS, link.SampleRate))
	} else {
		stages = append(stages, channel.NewGain(link.RSSIdBm))
	}

	if s.FadingKind != "" {
		k := 0.0
		if s.FadingKind == "rician" {
			k = iq.FromDB(s.FadingKdB)
		}
		if s.FadingTaps <= 1 {
			stages = append(stages, channel.NewFlatFading(k))
		} else {
			taps := channel.ExponentialTaps(s.FadingTaps, s.FadingSpacing, s.FadingDecayDB)
			stages = append(stages, channel.NewFading(taps, k))
		}
	}

	cfo := s.CFOHz + DopplerHz(s.SpeedMPS, carrier)
	if cfo != 0 || s.CFOJitterHz != 0 || s.DriftPPM != 0 {
		stages = append(stages, channel.NewCFO(cfo, s.CFOJitterHz, s.DriftPPM, link.SampleRate))
	}

	if s.Interferer != "" {
		wave := link.InterfererWave
		if len(wave) == 0 {
			var err error
			if wave, err = DefaultInterfererWaveform(s.Interferer, link.SampleRate); err != nil {
				return nil, err
			}
		}
		it := channel.NewInterferer(s.Interferer, wave, s.InterfererDBm, len(wave)/2)
		it.FreqOffsetHz = s.InterfererFreqHz
		it.SampleRate = link.SampleRate
		stages = append(stages, it)
	}

	if s.DropoutProb > 0 {
		// After the signal path, before the receiver noise: the signal
		// vanishes during the burst but the noise floor persists.
		stages = append(stages, channel.NewDropout(s.DropoutProb, s.DropoutDepthDB))
	}

	stages = append(stages, channel.NewNoise(link.FloorDBm))
	return channel.NewScenario(stages...), nil
}
