package scenario

import (
	"math"
	"strings"
	"testing"

	"github.com/uwsdr/tinysdr/internal/iq"
	"github.com/uwsdr/tinysdr/internal/lora"
	"github.com/uwsdr/tinysdr/internal/phy"
)

func TestParseFull(t *testing.T) {
	spec, err := Parse("fading=rician:10:3,cfo=200,cfojitter=50,drift=20,interferer=lora:-110:25000,speed=30")
	if err != nil {
		t.Fatal(err)
	}
	if spec.FadingKind != "rician" || spec.FadingKdB != 10 || spec.FadingTaps != 3 {
		t.Errorf("fading = %+v", spec)
	}
	if spec.CFOHz != 200 || spec.CFOJitterHz != 50 || spec.DriftPPM != 20 {
		t.Errorf("oscillator = %+v", spec)
	}
	if spec.Interferer != "lora" || spec.InterfererDBm != -110 || spec.InterfererFreqHz != 25000 {
		t.Errorf("interferer = %+v", spec)
	}
	if spec.SpeedMPS != 30 {
		t.Errorf("speed = %v", spec.SpeedMPS)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"fading=weird",
		"interferer=wifi:-90",
		"interferer=lora", // missing power
		"cfo=abc",
		"nonsense=1",
		"fading=rician", // missing K
		"mobile=false",  // bare flag: a value must not silently enable it
		"cfo=200:50",    // trailing arguments must error, not drop
		"fading=rayleigh:3:9",
		"interferer=lora:-100:0:7",
		"speed=30:60",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseEmptyAndRoundTrip(t *testing.T) {
	spec, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if spec.String() != "clean" {
		t.Errorf("empty spec renders %q", spec.String())
	}
	spec, err = Parse("fading=rayleigh:2,drift=5,interferer=ble:-95")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", spec.String(), err)
	}
	if *back != *spec {
		t.Errorf("round trip: %+v != %+v", back, spec)
	}
}

func TestResamplePreservesToneFrequency(t *testing.T) {
	const src = 500e3
	const dst = 125e3
	n := 4096
	sig := make(iq.Samples, n)
	for i := range sig {
		ang := 2 * math.Pi * 10e3 / src * float64(i)
		sig[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	out := Resample(sig, src, dst)
	if got, want := len(out), n/4; got != want {
		t.Fatalf("resampled length %d, want %d", got, want)
	}
	// The 10 kHz tone must land at 10 kHz of the new rate: measure by
	// average phase increment over the filter's settled region.
	var acc float64
	for i := 256; i < len(out); i++ {
		p := out[i] * complex(real(out[i-1]), -imag(out[i-1]))
		acc += math.Atan2(imag(p), real(p))
	}
	gotHz := acc / float64(len(out)-256) / (2 * math.Pi) * dst
	if math.Abs(gotHz-10e3) > 100 {
		t.Errorf("tone at %v Hz after resample, want 10000", gotHz)
	}
}

func TestInterfererWaveformBuilders(t *testing.T) {
	// Every registered PHY must synthesize a usable interference waveform
	// at a foreign victim rate — the registry is the grammar's source of
	// truth, so a new protocol registration is automatically a new
	// interferer kind.
	for _, kind := range phy.Names() {
		w, err := DefaultInterfererWaveform(kind, 125e3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(w) == 0 || w.Power() == 0 {
			t.Errorf("empty %s interferer waveform", kind)
		}
	}
	if _, err := DefaultInterfererWaveform("wifi", 125e3); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestParseAcceptsAnyRegisteredInterferer(t *testing.T) {
	for _, kind := range phy.Names() {
		spec, err := Parse("interferer=" + kind + ":-100")
		if err != nil {
			t.Fatalf("%s rejected: %v", kind, err)
		}
		sc, err := spec.Build(Link{SampleRate: 125e3, RSSIdBm: -110, FloorDBm: -117})
		if err != nil {
			t.Fatalf("%s build: %v", kind, err)
		}
		if want := "gain→interferer(" + kind + ")→noise"; sc.String() != want {
			t.Errorf("%s composition = %q, want %q", kind, sc.String(), want)
		}
	}
}

func TestBuildComposesExpectedStages(t *testing.T) {
	spec, err := Parse("fading=rician:10,cfo=200,drift=20,interferer=lora:-110")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Build(Link{SampleRate: 125e3, RSSIdBm: -118, FloorDBm: -116})
	if err != nil {
		t.Fatal(err)
	}
	want := "gain→fading→cfo→interferer(lora)→noise"
	if got := sc.String(); got != want {
		t.Errorf("composition = %q, want %q", got, want)
	}
	// Mobile link swaps Gain for Mobility and adds Doppler.
	spec, _ = Parse("speed=30")
	sc, err = spec.Build(Link{SampleRate: 125e3, FloorDBm: -116,
		TxPowerDBm: 14, TxGainDB: 6, StartM: 500})
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.String(); !strings.HasPrefix(got, "mobility→cfo") {
		t.Errorf("mobile composition = %q, want mobility→cfo→…", got)
	}
	if _, err := spec.Build(Link{}); err == nil {
		t.Error("zero sample rate accepted")
	}
	// A bare "mobile" parses and swaps in the Mobility stage at speed 0.
	spec, err = Parse("mobile")
	if err != nil || !spec.Mobile {
		t.Fatalf("bare mobile flag: spec=%+v err=%v", spec, err)
	}
}

func TestBuildUsesPrebuiltInterfererWave(t *testing.T) {
	spec, err := Parse("interferer=lora:-100")
	if err != nil {
		t.Fatal(err)
	}
	// A tiny prebuilt waveform must be used as-is: the interference
	// region in the output is exactly its length.
	wave := make(iq.Samples, 32)
	for i := range wave {
		wave[i] = 1
	}
	sc, err := spec.Build(Link{SampleRate: 125e3, RSSIdBm: -120, FloorDBm: -200, InterfererWave: wave})
	if err != nil {
		t.Fatal(err)
	}
	sc.Reset(1, 0)
	out := sc.Apply(make(iq.Samples, 4096))
	strong := 0
	for _, x := range out {
		// Interference at -100 dBm is ~1e-5 amplitude; the -200 dBm
		// noise floor sits five orders of magnitude below it.
		if real(x)*real(x)+imag(x)*imag(x) > 1e-12 {
			strong++
		}
	}
	if strong != len(wave) {
		t.Errorf("interference spans %d samples, want the prebuilt %d", strong, len(wave))
	}
}

// TestScenarioEndToEndLoRaDecode closes the loop through the real receive
// path: a LoRa packet through a mild composed scenario must still decode.
func TestScenarioEndToEndLoRaDecode(t *testing.T) {
	p := lora.DefaultParams()
	mod, err := lora.NewModulator(p)
	if err != nil {
		t.Fatal(err)
	}
	demod, err := lora.NewDemodulator(p)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xA5, 0x5A, 0x3C}
	sig, err := mod.Modulate(payload)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Parse("fading=rician:12,cfo=100,drift=10,interferer=ble:-130")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Build(Link{SampleRate: p.SampleRate(), RSSIdBm: -110, FloorDBm: -116.0})
	if err != nil {
		t.Fatal(err)
	}
	ok := 0
	const packets = 10
	for k := 0; k < packets; k++ {
		sc.Reset(1, k)
		pkt, err := demod.Receive(sc.Apply(sig))
		if err == nil && pkt.CRCOK && string(pkt.Payload) == string(payload) {
			ok++
		}
	}
	// -110 dBm is 16 dB above sensitivity; mild impairments must leave
	// the large majority of packets intact.
	if ok < packets*7/10 {
		t.Errorf("only %d/%d packets decoded under mild composed scenario", ok, packets)
	}
}

func TestDopplerSign(t *testing.T) {
	if d := DopplerHz(30, 915e6); d >= 0 || math.Abs(d+91.6) > 1 {
		t.Errorf("doppler at 30 m/s receding = %v Hz, want ≈-91.6", d)
	}
}

func TestParseDropout(t *testing.T) {
	spec, err := Parse("dropout=0.25:30")
	if err != nil {
		t.Fatal(err)
	}
	if spec.DropoutProb != 0.25 || spec.DropoutDepthDB != 30 {
		t.Errorf("dropout = %+v", spec)
	}
	// Depth optional: the stage default applies downstream.
	spec, err = Parse("dropout=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.DropoutProb != 0.1 || spec.DropoutDepthDB != 0 {
		t.Errorf("dropout = %+v", spec)
	}
	for _, bad := range []string{
		"dropout",          // no value
		"dropout=2",        // probability out of range
		"dropout=-0.1",     // negative
		"dropout=0.1:0",    // zero depth must be spelled by omission
		"dropout=0.1:-3",   // negative depth
		"dropout=0.1:30:4", // trailing argument
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Round trip through String, with and without the explicit depth.
	for _, in := range []string{"dropout=0.25:30", "dropout=0.1", "fading=rayleigh:2,dropout=0.5:20"} {
		spec, err := Parse(in)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(spec.String())
		if err != nil || *back != *spec {
			t.Errorf("round trip %q -> %q: %+v err %v", in, spec.String(), back, err)
		}
	}
}

func TestBuildComposesDropout(t *testing.T) {
	spec, err := Parse("interferer=lora:-110,dropout=0.3:25")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := spec.Build(Link{SampleRate: 125e3, RSSIdBm: -110, FloorDBm: -117})
	if err != nil {
		t.Fatal(err)
	}
	// After the signal path, before receiver noise: the signal vanishes in
	// the burst but the noise floor persists.
	if want := "gain→interferer(lora)→dropout→noise"; sc.String() != want {
		t.Errorf("composition = %q, want %q", sc.String(), want)
	}
}
