// Package sim provides the simulated time base and event scheduler shared by
// the tinySDR hardware models. All latency and energy results in the
// evaluation are integrals over this clock, never over wall time, so every
// experiment is deterministic and independent of host speed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a monotonically advancing simulated clock. The zero value starts
// at t=0 and is ready to use.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock starting at t=0.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative: simulated
// hardware cannot travel backwards in time, and a negative delta always
// indicates a model bug.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to absolute time t, which must not be in the past.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards from %v to %v", c.now, t))
	}
	c.now = t
}

// event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker preserving scheduling order
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler runs callbacks at simulated times, advancing a Clock as it goes.
// It is the discrete-event core used by the OTA protocol, the testbed, and
// the duty-cycle simulations.
type Scheduler struct {
	clock *Clock
	queue eventQueue
	seq   uint64
}

// NewScheduler returns a scheduler driving the given clock.
func NewScheduler(clock *Clock) *Scheduler {
	return &Scheduler{clock: clock}
}

// Clock returns the scheduler's clock.
func (s *Scheduler) Clock() *Clock { return s.clock }

// At schedules fn at absolute simulated time t. Scheduling in the past panics.
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.clock.Now() {
		panic(fmt.Sprintf("sim: event scheduled in the past (%v < %v)", t, s.clock.Now()))
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current simulated time.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.clock.Now()+d, fn)
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return s.queue.Len() }

// Step runs the earliest event, advancing the clock to its time. It returns
// false if the queue is empty.
func (s *Scheduler) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.clock.AdvanceTo(e.at)
	e.fn()
	return true
}

// Run executes events until the queue is empty. The maxEvents bound guards
// against runaway self-rescheduling loops; Run panics when it is exceeded.
func (s *Scheduler) Run(maxEvents int) {
	for i := 0; s.Step(); i++ {
		if i >= maxEvents {
			panic(fmt.Sprintf("sim: scheduler exceeded %d events", maxEvents))
		}
	}
}

// RunUntil executes events with time <= deadline, then advances the clock to
// exactly the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.Step()
	}
	if s.clock.Now() < deadline {
		s.clock.AdvanceTo(deadline)
	}
}
