// Package lorawan implements the LoRa MAC layer tinySDR runs on its MCU
// (§4.1): LoRaWAN 1.0 frame encoding with AES-128 payload encryption and
// AES-CMAC message integrity, plus both The Things Network activation
// methods — over-the-air activation (OTAA) with the join procedure, and
// activation by personalization (ABP).
package lorawan

import (
	"crypto/aes"
	"crypto/subtle"
)

// cmac computes AES-CMAC (RFC 4493) over msg with a 16-byte key.
func cmac(key [16]byte, msg []byte) [16]byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // 16-byte key cannot fail
	}
	k1, k2 := subkeys(key)

	n := (len(msg) + 15) / 16
	complete := n > 0 && len(msg)%16 == 0
	if n == 0 {
		n = 1
	}

	var x [16]byte
	for i := 0; i < n-1; i++ {
		xorInto(&x, msg[i*16:(i+1)*16])
		block.Encrypt(x[:], x[:])
	}

	var last [16]byte
	if complete {
		copy(last[:], msg[(n-1)*16:])
		for i := range last {
			last[i] ^= k1[i]
		}
	} else {
		rem := msg[(n-1)*16:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := range last {
			last[i] ^= k2[i]
		}
	}
	xorInto(&x, last[:])
	block.Encrypt(x[:], x[:])
	return x
}

func xorInto(x *[16]byte, b []byte) {
	for i := 0; i < 16; i++ {
		x[i] ^= b[i]
	}
}

// subkeys derives the RFC 4493 K1/K2 subkeys.
func subkeys(key [16]byte) (k1, k2 [16]byte) {
	block, _ := aes.NewCipher(key[:])
	var l [16]byte
	block.Encrypt(l[:], l[:])
	k1 = shiftLeft(l)
	if l[0]&0x80 != 0 {
		k1[15] ^= 0x87
	}
	k2 = shiftLeft(k1)
	if k1[0]&0x80 != 0 {
		k2[15] ^= 0x87
	}
	return k1, k2
}

func shiftLeft(in [16]byte) (out [16]byte) {
	var carry byte
	for i := 15; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	return out
}

// micEqual compares MICs in constant time.
func micEqual(a, b [4]byte) bool {
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}
