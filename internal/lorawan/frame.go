package lorawan

import (
	"crypto/aes"
	"encoding/binary"
	"fmt"
)

// MType is the LoRaWAN message type (MHDR bits 7..5).
type MType byte

// LoRaWAN 1.0 message types.
const (
	MTypeJoinRequest MType = iota
	MTypeJoinAccept
	MTypeUnconfirmedUp
	MTypeUnconfirmedDown
	MTypeConfirmedUp
	MTypeConfirmedDown
)

// String names the message type.
func (m MType) String() string {
	names := [...]string{"join-request", "join-accept", "unconfirmed-up",
		"unconfirmed-down", "confirmed-up", "confirmed-down"}
	if int(m) < len(names) {
		return names[m]
	}
	return fmt.Sprintf("MType(%d)", byte(m))
}

// Direction of a data message, as used in crypto block construction.
type Direction byte

// Link directions.
const (
	Uplink   Direction = 0
	Downlink Direction = 1
)

// DevAddr is the 32-bit device address.
type DevAddr uint32

// Session holds the security context of an activated device.
type Session struct {
	DevAddr DevAddr
	NwkSKey [16]byte
	AppSKey [16]byte
	// FCntUp / FCntDown are the next frame counters.
	FCntUp   uint32
	FCntDown uint32
}

// DataFrame is a LoRaWAN data message before encoding.
type DataFrame struct {
	MType      MType
	DevAddr    DevAddr
	FCnt       uint32
	FPort      byte
	ADR        bool
	ACK        bool
	FRMPayload []byte
}

// maxFRMPayload bounds application payloads (regional caps are tighter;
// this is the structural limit).
const maxFRMPayload = 222

// Encode produces the PHYPayload: MHDR | FHDR | FPort | encrypted payload |
// MIC. It encrypts with AppSKey (data port) and signs with NwkSKey.
func (f *DataFrame) Encode(s *Session) ([]byte, error) {
	switch f.MType {
	case MTypeUnconfirmedUp, MTypeConfirmedUp, MTypeUnconfirmedDown, MTypeConfirmedDown:
	default:
		return nil, fmt.Errorf("lorawan: %v is not a data message type", f.MType)
	}
	if len(f.FRMPayload) > maxFRMPayload {
		return nil, fmt.Errorf("lorawan: payload %d exceeds %d", len(f.FRMPayload), maxFRMPayload)
	}
	dir := f.direction()
	out := []byte{byte(f.MType) << 5}
	out = binary.LittleEndian.AppendUint32(out, uint32(f.DevAddr))
	fctrl := byte(0)
	if f.ADR {
		fctrl |= 0x80
	}
	if f.ACK {
		fctrl |= 0x20
	}
	out = append(out, fctrl)
	out = binary.LittleEndian.AppendUint16(out, uint16(f.FCnt))
	out = append(out, f.FPort)
	enc := encryptPayload(s.AppSKey, f.DevAddr, f.FCnt, dir, f.FRMPayload)
	out = append(out, enc...)
	mic := dataMIC(s.NwkSKey, f.DevAddr, f.FCnt, dir, out)
	return append(out, mic[:]...), nil
}

func (f *DataFrame) direction() Direction {
	if f.MType == MTypeUnconfirmedDown || f.MType == MTypeConfirmedDown {
		return Downlink
	}
	return Uplink
}

// DecodeData parses and verifies a data PHYPayload against a session. The
// expected direction disambiguates the frame-counter space. fcntHint
// provides the upper 16 bits of the counter (0 for fresh sessions).
func DecodeData(s *Session, phy []byte, dir Direction, fcntHint uint32) (*DataFrame, error) {
	if len(phy) < 1+7+1+4 {
		return nil, fmt.Errorf("lorawan: frame of %d bytes too short", len(phy))
	}
	mtype := MType(phy[0] >> 5)
	switch mtype {
	case MTypeUnconfirmedUp, MTypeConfirmedUp:
		if dir != Uplink {
			return nil, fmt.Errorf("lorawan: %v in downlink stream", mtype)
		}
	case MTypeUnconfirmedDown, MTypeConfirmedDown:
		if dir != Downlink {
			return nil, fmt.Errorf("lorawan: %v in uplink stream", mtype)
		}
	default:
		return nil, fmt.Errorf("lorawan: %v is not a data message", mtype)
	}
	body := phy[:len(phy)-4]
	var gotMIC [4]byte
	copy(gotMIC[:], phy[len(phy)-4:])

	devAddr := DevAddr(binary.LittleEndian.Uint32(phy[1:5]))
	if devAddr != s.DevAddr {
		return nil, fmt.Errorf("lorawan: frame for %08x, session %08x", uint32(devAddr), uint32(s.DevAddr))
	}
	fctrl := phy[5]
	if n := int(fctrl & 0x0F); n != 0 {
		return nil, fmt.Errorf("lorawan: FOpts unsupported in this profile (len %d)", n)
	}
	fcnt16 := binary.LittleEndian.Uint16(phy[6:8])
	fcnt := fcntHint&0xFFFF0000 | uint32(fcnt16)

	wantMIC := dataMIC(s.NwkSKey, devAddr, fcnt, dir, body)
	if !micEqual(gotMIC, wantMIC) {
		return nil, fmt.Errorf("lorawan: MIC mismatch")
	}
	f := &DataFrame{
		MType: mtype, DevAddr: devAddr, FCnt: fcnt,
		ADR: fctrl&0x80 != 0, ACK: fctrl&0x20 != 0,
	}
	f.FPort = phy[8]
	f.FRMPayload = encryptPayload(s.AppSKey, devAddr, fcnt, dir, phy[9:len(phy)-4])
	return f, nil
}

// encryptPayload applies the LoRaWAN CTR-style payload cipher; it is its
// own inverse.
func encryptPayload(key [16]byte, addr DevAddr, fcnt uint32, dir Direction, payload []byte) []byte {
	block, _ := aes.NewCipher(key[:])
	out := make([]byte, len(payload))
	var a [16]byte
	a[0] = 0x01
	a[5] = byte(dir)
	binary.LittleEndian.PutUint32(a[6:], uint32(addr))
	binary.LittleEndian.PutUint32(a[10:], fcnt)
	var s [16]byte
	for i := 0; i < len(payload); i += 16 {
		a[15] = byte(i/16 + 1)
		block.Encrypt(s[:], a[:])
		for j := 0; j < 16 && i+j < len(payload); j++ {
			out[i+j] = payload[i+j] ^ s[j]
		}
	}
	return out
}

// dataMIC computes the 4-byte MIC over B0 | msg.
func dataMIC(key [16]byte, addr DevAddr, fcnt uint32, dir Direction, msg []byte) [4]byte {
	b0 := make([]byte, 16, 16+len(msg))
	b0[0] = 0x49
	b0[5] = byte(dir)
	binary.LittleEndian.PutUint32(b0[6:], uint32(addr))
	binary.LittleEndian.PutUint32(b0[10:], fcnt)
	b0[15] = byte(len(msg))
	full := cmac(key, append(b0, msg...))
	var mic [4]byte
	copy(mic[:], full[:4])
	return mic
}
